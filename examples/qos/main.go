// QoS: per-flow differentiation with AC/DC's β-modified DCTCP law
// (Equation 1) and with hard RWND clamps — the §3.4 mechanisms. Three
// tenants share one bottleneck: gold (β=1), silver (β=0.5), and a
// bandwidth-capped scavenger (RWND clamped to 2 segments).
package main

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

func main() {
	guest := tcpstack.DefaultConfig() // tenants all run stock CUBIC

	mkACDC := func(policy core.Policy) *core.Config {
		cfg := core.DefaultConfig()
		cfg.FlowPolicy = func(core.FlowKey) core.Policy { return policy }
		return &cfg
	}
	gold := core.DefaultPolicy() // β = 1: plain DCTCP
	silver := core.DefaultPolicy()
	silver.Beta = 0.5
	scavenger := core.DefaultPolicy()
	scavenger.RwndClampBytes = 2 * 8960 // hard cap: two segments per RTT

	policies := []*core.Config{mkACDC(gold), mkACDC(silver), mkACDC(scavenger)}
	names := []string{"gold   (β=1.0)", "silver (β=0.5)", "capped (2 MSS)"}

	net := topo.Star(4, topo.Options{
		Guest: guest,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
		ACDCFor: func(host int) *core.Config {
			if host < len(policies) {
				return policies[host]
			}
			c := core.DefaultConfig()
			return &c
		},
	})

	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, 3)
	for i := range flows {
		flows[i] = workload.Bulk(m, i, 3)
	}
	net.Sim.RunFor(150 * sim.Millisecond)
	t0 := net.Sim.Now()
	start := make([]int64, 3)
	for i, f := range flows {
		start[i] = f.Delivered()
	}
	net.Sim.RunFor(300 * sim.Millisecond)

	fmt.Println("three tenants (all stock CUBIC guests) sharing one 10G port:")
	span := (net.Sim.Now() - t0).Seconds()
	for i, f := range flows {
		rate := float64(f.Delivered()-start[i]) * 8 / span
		fmt.Printf("  %-16s %6.2f Gbps\n", names[i], rate/1e9)
	}
	fmt.Println("\nThe operator set all of this in the vSwitch — the tenants'")
	fmt.Println("TCP stacks are untouched and unaware.")
}
