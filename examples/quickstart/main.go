// Quickstart: two hosts and a switch. The guest stack is plain CUBIC with
// no ECN — exactly the kind of tenant stack a datacenter operator cannot
// change — and AC/DC in the vSwitch enforces DCTCP on its behalf. The
// program prints what the guest sees (an ordinary TCP connection) and what
// the vSwitch did (ECT marking, PACK feedback, RWND rewrites).
package main

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

func main() {
	// Guest stacks: CUBIC, ECN off (the operator does not control them).
	guest := tcpstack.DefaultConfig()
	guest.CC = "cubic"
	guest.ECN = tcpstack.ECNOff

	// The operator's side: DCTCP in the vSwitch, WRED/ECN marking at the
	// switch with a 90KB threshold.
	acdc := core.DefaultConfig()

	net := topo.Star(3, topo.Options{
		Guest: guest,
		ACDC:  &acdc,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	})

	// Two bulk flows into host 2 congest its downlink; a prober measures
	// the RTT a latency-sensitive app would see through the same port.
	m := workload.NewManager(net)
	f1 := workload.Bulk(m, 0, 2)
	f2 := workload.Bulk(m, 1, 2)
	prober := workload.NewProber(m, 0, 2)
	net.Sim.RunFor(50 * sim.Millisecond) // warm up
	prober.Start()
	net.Sim.RunFor(200 * sim.Millisecond)
	prober.Stop()

	fmt.Println("guest view (host 0):")
	fmt.Printf("  connection: %d bytes acked, srtt=%v\n",
		f1.Cli.AckedBytes, sim.Time(f1.Cli.SRTT()))
	fmt.Printf("  throughput: f1=%.2f Gbps, f2=%.2f Gbps (sharing one 10G port)\n",
		float64(f1.Delivered())*8/net.Sim.Now().Seconds()/1e9,
		float64(f2.Delivered())*8/net.Sim.Now().Seconds()/1e9)
	fmt.Printf("  RTT through the congested port: p50=%.0fµs p99=%.0fµs\n",
		prober.Samples.Percentile(50)/1e3, prober.Samples.Percentile(99)/1e3)

	v := net.ACDC[0]
	fmt.Println("\nvSwitch view (host 0's AC/DC module):")
	fmt.Printf("  flows tracked:        %d\n", v.Table.Len())
	fmt.Printf("  RWND rewrites:        %d (enforcing the virtual DCTCP window)\n", v.Stats().RwndRewrites)
	fmt.Printf("  PACK feedback recv'd: %d\n", v.Stats().PacksConsumed)
	recvSide := net.ACDC[2]
	fmt.Printf("  PACKs attached @recv: %d\n", recvSide.Stats().PacksAttached)

	sw := net.Switches[0]
	fmt.Printf("\nfabric: CE marks=%d, drops=%d, max queue=%dB (threshold %dB)\n",
		sw.Port(2).Stats.Marks, sw.TotalDrops(),
		sw.Port(2).Stats.MaxQueueBytes, topo.DefaultMarkThreshold)
	fmt.Println("\nWithout AC/DC these CUBIC flows would fill the 9MB shared buffer")
	fmt.Println("(milliseconds of queueing); with it they behave like DCTCP.")
}
