// Incast: the paper's §5.2 many-to-one scenario — 40 senders blast one
// receiver, the situation that melts partition/aggregate applications.
// The example runs the same fan-in under plain CUBIC, native DCTCP, and
// AC/DC-over-CUBIC, and prints throughput, fairness, RTT, and drops.
package main

import (
	"fmt"

	"acdc/internal/experiments"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

func main() {
	const fanIn = 40
	fmt.Printf("%d-to-1 incast on a 48-port 10G switch, 9MB shared buffer\n\n", fanIn)
	table := stats.NewTable("scheme", "per-flow Mbps", "fairness", "RTT p50", "RTT p99.9", "drops")

	schemes := []experiments.Scheme{
		experiments.SchemeCUBIC(9000),
		experiments.SchemeDCTCP(9000),
		experiments.SchemeACDC(9000, "cubic", tcpstack.ECNOff),
	}
	for _, scheme := range schemes {
		net := topo.Star(fanIn+2, topo.Options{
			Guest: scheme.Guest, ACDC: scheme.ACDC, RED: scheme.RED,
		})
		m := workload.NewManager(net)
		senders := make([]int, fanIn)
		for i := range senders {
			senders[i] = i
		}
		prober := workload.NewProber(m, fanIn+1, fanIn)
		flows := workload.Incast(m, senders, fanIn)
		net.Sim.RunFor(100 * sim.Millisecond)
		prober.Start()
		t0 := net.Sim.Now()
		start := make([]int64, len(flows))
		for i, f := range flows {
			start[i] = f.Delivered()
		}
		net.Sim.RunFor(200 * sim.Millisecond)
		prober.Stop()

		rates := make([]float64, len(flows))
		span := (net.Sim.Now() - t0).Seconds()
		var total float64
		for i, f := range flows {
			rates[i] = float64(f.Delivered()-start[i]) * 8 / span
			total += rates[i]
		}
		table.Row(scheme.Name,
			fmt.Sprintf("%.0f", total/float64(fanIn)/1e6),
			stats.JainFairness(rates),
			fmt.Sprintf("%.2fms", prober.Samples.Percentile(50)/1e6),
			fmt.Sprintf("%.2fms", prober.Samples.Percentile(99.9)/1e6),
			net.TotalDrops())
	}
	fmt.Println(table)
	fmt.Println("AC/DC gives unmodified CUBIC guests DCTCP's incast behaviour:")
	fmt.Println("zero drops and millisecond-to-microsecond RTT reduction.")
}
