// Mixedstacks: the paper's motivating unfairness (Figure 1) and its fix
// (Figure 17). Five tenants run five different TCP congestion controls on
// one fabric; aggressive stacks (Illinois, HighSpeed) dominate while
// delay-based Vegas starves. Attaching AC/DC makes the same zoo of stacks
// share like five DCTCP flows.
package main

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

var ccs = []string{"illinois", "cubic", "reno", "vegas", "highspeed"}

func run(withACDC bool) ([]float64, float64) {
	guestFor := func(host int) *tcpstack.Config {
		g := tcpstack.DefaultConfig()
		if host < len(ccs) {
			g.CC = ccs[host]
		}
		return &g
	}
	o := topo.Options{
		Guest:    tcpstack.DefaultConfig(),
		GuestFor: guestFor,
	}
	if withACDC {
		ac := core.DefaultConfig()
		o.ACDC = &ac
		o.RED = netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold}
	}
	net := topo.Dumbbell(5, o)
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, 5)
	for i := range flows {
		flows[i] = workload.Bulk(m, i, 5+i)
	}
	net.Sim.RunFor(100 * sim.Millisecond)
	t0 := net.Sim.Now()
	start := make([]int64, 5)
	for i, f := range flows {
		start[i] = f.Delivered()
	}
	net.Sim.RunFor(300 * sim.Millisecond)
	span := (net.Sim.Now() - t0).Seconds()
	rates := make([]float64, 5)
	for i, f := range flows {
		rates[i] = float64(f.Delivered()-start[i]) * 8 / span / 1e9
	}
	return rates, stats.JainFairness(rates)
}

func main() {
	fmt.Println("five tenants, five different TCP stacks, one 10G bottleneck")
	fmt.Println()
	before, fBefore := run(false)
	after, fAfter := run(true)

	t := stats.NewTable("stack", "native Gbps", "under AC/DC Gbps")
	for i, cc := range ccs {
		t.Row(cc, before[i], after[i])
	}
	fmt.Println(t)
	fmt.Printf("Jain fairness: native %.3f → AC/DC %.3f\n", fBefore, fAfter)
}
