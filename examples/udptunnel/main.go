// Udptunnel: the paper's §3.3 future work, implemented — DCTCP-friendly
// UDP tunnels in the vSwitch. A congestion-control-free UDP blaster shares
// a port with a TCP tenant; without the tunnel it tramples the fabric, with
// it the vSwitch runs DCTCP on the datagrams' behalf.
package main

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/udp"
	"acdc/internal/workload"
)

func run(tunnel bool) {
	ac := core.DefaultConfig()
	ac.UDPTunnel = tunnel
	net := topo.Star(3, topo.Options{
		Guest: tcpstack.DefaultConfig(),
		ACDC:  &ac,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	})
	eps := make([]*udp.Endpoint, 3)
	for i := range eps {
		eps[i] = udp.NewEndpoint(net.Sim, net.Hosts[i])
	}
	m := workload.NewManager(net)
	tcp := workload.Bulk(m, 0, 2)
	var udpBytes int64
	eps[2].OnRecv = func(_ packet.Addr, _, _ uint16, n int) { udpBytes += int64(n) }
	eps[1].Blast(net.Addr(2), 6000, 7000, 8960, 9e9, 300*sim.Millisecond)
	net.Sim.RunFor(300 * sim.Millisecond)

	secs := net.Sim.Now().Seconds()
	mode := "without tunnel"
	if tunnel {
		mode = "with tunnel   "
	}
	fmt.Printf("%s  TCP %.2f Gbps | UDP %.2f Gbps | fabric drops %d | tunnel drops %d\n",
		mode,
		float64(tcp.Delivered())*8/secs/1e9,
		float64(udpBytes)*8/secs/1e9,
		net.TotalDrops(),
		net.ACDC[1].Stats().PolicingDrops)
}

func main() {
	fmt.Println("a 9 Gbps UDP blaster (no congestion control) vs a TCP tenant on one 10G port:")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("The tunnel admits datagrams through a virtual DCTCP window and returns")
	fmt.Println("vSwitch-generated feedback; excess load is shed at the edge, not the fabric.")
}
