// Adminclient: driving a live acdcd from a controller. The program starts a
// daemon in-process (the same internal/daemon machinery cmd/acdcd wraps),
// points the admin Client at it, and walks the control loop an operator's
// controller would run: wait for readiness, watch flows appear, stream a
// per-flow policy update (plus a hostile one the daemon must reject), scrape
// metrics to confirm the install landed, and warm-restart a vSwitch without
// losing flow state. Against a real daemon, replace the httptest server with
// daemon.NewClient("http://127.0.0.1:7654", nil).
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"acdc/internal/daemon"
)

func main() {
	// An in-process daemon: 1 virtual second per wall second, background
	// bulk traffic so there are flows to steer.
	d := daemon.New(daemon.Config{Hosts: 3, Scale: 1.0, Workload: true})
	d.Start()
	defer d.Stop()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	c := daemon.NewClient(srv.URL, nil)
	if err := c.Ready(); err != nil {
		log.Fatalf("daemon not ready: %v", err)
	}

	// Flows appear as the background workload opens connections.
	var flows []daemon.FlowInfo
	for len(flows) == 0 {
		time.Sleep(10 * time.Millisecond)
		var err error
		if flows, err = c.Flows(0); err != nil {
			log.Fatalf("list flows: %v", err)
		}
	}
	f := flows[0]
	fmt.Printf("host 0 tracks %s:%d -> %s:%d\n", f.Src, f.SPort, f.Dst, f.DPort)

	// Stream two policy updates: a valid per-flow override (gentler backoff,
	// 1MB RWND clamp) and a hostile β=3 that Eq. 1 would turn into window
	// growth on congestion. The daemon applies the first and rejects the
	// second — one result per update, in order.
	results, err := c.SendPolicies(
		daemon.PolicyUpdate{Host: 0, Src: f.Src, Dst: f.Dst, SPort: f.SPort, DPort: f.DPort,
			Beta: 0.5, RwndClampBytes: 1 << 20},
		daemon.PolicyUpdate{Host: 0, Src: f.Src, Dst: f.Dst, SPort: f.SPort, DPort: f.DPort,
			Beta: 3},
	)
	if err != nil {
		log.Fatalf("send policies: %v", err)
	}
	for _, r := range results {
		if r.OK {
			fmt.Printf("update %d installed: beta=%g clamp=%dB\n",
				r.Index, r.Installed.Beta, r.Installed.RwndClampBytes)
		} else {
			fmt.Printf("update %d rejected: %s\n", r.Index, r.Error)
		}
	}

	// The install shows up on the metrics scrape.
	text, err := c.Metrics()
	if err != nil {
		log.Fatalf("scrape: %v", err)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "policy_installs_total") {
			fmt.Println("scrape:", line)
		}
	}

	// Warm restart host 0: snapshot, restart, resync — flows survive.
	if err := c.Restart(0, true); err != nil {
		log.Fatalf("warm restart: %v", err)
	}
	st, err := c.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("warm restart done at virtual %s; %d flows tracked, degraded=%q\n",
		st.SimNow, st.Flows, st.Degraded)
}
