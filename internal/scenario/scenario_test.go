package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"acdc/internal/sim"
)

// tinySpec is a fast two-scheme scenario used by the runner tests.
func tinySpec() Spec {
	return Spec{
		Name: "tiny",
		Topo: TopoSpec{Kind: "dumbbell", Hosts: 2},
		Workloads: []WorkloadSpec{
			{Kind: "bulk-pairs"},
			{Kind: "prober", From: 0, To: 2},
		},
		Schemes: []string{"cubic", "acdc"},
		Audit:   true,
		Warmup:  Duration(2 * sim.Millisecond),
		Measure: Duration(8 * sim.Millisecond),
		Checks: []Check{
			{Metric: "tput_avg_gbps", Min: fp(0.5)},
			{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
		},
	}
}

func TestCatalogValidates(t *testing.T) {
	specs := Catalog()
	if len(specs) < 8 {
		t.Fatalf("catalog has %d scenarios, issue requires ≥ 8", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("catalog %s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate catalog name %s", s.Name)
		}
		names[s.Name] = true
		// Every catalog entry must carry a smoke shape and at least one check,
		// or CI's reduced run silently loses coverage.
		if s.Smoke == nil {
			t.Errorf("catalog %s: no smoke override", s.Name)
		}
		if len(s.Checks) == 0 {
			t.Errorf("catalog %s: no invariant checks", s.Name)
		}
	}
	for _, want := range []string{"baseline", "incast-heavy", "high-load", "degraded-latency",
		"lossy-link", "feedback-blackout", "rolling-restart", "mixed-tenant",
		"fabric-incast", "ecmp-imbalance", "tor-failure", "gray-spine"} {
		if !names[want] {
			t.Errorf("catalog missing required scenario %s", want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := tinySpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no-name", func(s *Spec) { s.Name = "" }},
		{"bad-topo", func(s *Spec) { s.Topo.Kind = "torus" }},
		{"no-workloads", func(s *Spec) { s.Workloads = nil }},
		{"bad-scheme", func(s *Spec) { s.Schemes = []string{"bbr"} }},
		{"bad-kind", func(s *Spec) { s.Workloads[0].Kind = "warp" }},
		{"prober-oob", func(s *Spec) { s.Workloads[1].To = 99 }},
		{"prober-self", func(s *Spec) { s.Workloads[1].To = 0 }},
		{"bad-faults", func(s *Spec) { s.Faults = "gremlins" }},
		{"bad-restart", func(s *Spec) { s.Restart = "hot@never" }},
		{"bad-fabric", func(s *Spec) { s.Fabric = "meteor,link=x" }},
		{"bad-smoke-fabric", func(s *Spec) { s.Smoke = &Adjust{Fabric: "gray,loss=0.5"} }},
		{"fattree-odd-k", func(s *Spec) { s.Topo = TopoSpec{Kind: "fattree", K: 3} }},
		{"fattree-neg-hpt", func(s *Spec) { s.Topo = TopoSpec{Kind: "fattree", K: 4, HostsPerTor: -1} }},
		{"check-no-metric", func(s *Spec) { s.Checks = []Check{{Min: fp(1)}} }},
		{"check-wrong-scheme", func(s *Spec) { s.Checks = []Check{{Scheme: "dctcp", Metric: "x"}} }},
		{"check-inverted", func(s *Spec) { s.Checks = []Check{{Metric: "x", Min: fp(2), Max: fp(1)}} }},
		{"bad-smoke", func(s *Spec) { s.Smoke = &Adjust{Workloads: []WorkloadSpec{{Kind: "warp"}}} }},
		{"incast-too-wide", func(s *Spec) {
			s.Topo = TopoSpec{Kind: "star", Hosts: 4}
			s.Workloads = []WorkloadSpec{{Kind: "incast", Senders: 4}}
		}},
		{"stride-self-conn", func(s *Spec) {
			s.Topo = TopoSpec{Kind: "star", Hosts: 8}
			s.Workloads = []WorkloadSpec{{Kind: "stride"}}
		}},
		{"churn-too-big", func(s *Spec) {
			s.Topo = TopoSpec{Kind: "star", Hosts: 4}
			s.Workloads = []WorkloadSpec{{Kind: "tenant-churn", Tenants: 3, HostsPerTenant: 4}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinySpec()
			_ = base
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	type box struct {
		D Duration `json:"d"`
	}
	for _, tc := range []struct {
		in   string
		want Duration
	}{
		{`{"d":"1.5ms"}`, Duration(1500 * sim.Microsecond)},
		{`{"d":"200us"}`, Duration(200 * sim.Microsecond)},
		{`{"d":50000}`, Duration(50000)},
	} {
		var b box
		if err := json.Unmarshal([]byte(tc.in), &b); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if b.D != tc.want {
			t.Fatalf("%s: got %d, want %d", tc.in, b.D, tc.want)
		}
		out, _ := json.Marshal(b)
		var b2 box
		if err := json.Unmarshal(out, &b2); err != nil || b2.D != b.D {
			t.Fatalf("round trip %s → %s lost value (%v)", tc.in, out, err)
		}
	}
	var b box
	if err := json.Unmarshal([]byte(`{"d":"soon"}`), &b); err == nil {
		t.Fatal("accepted non-duration string")
	}
}

func TestLoadSpecsFile(t *testing.T) {
	spec := tinySpec()
	data, err := json.Marshal([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "specs.json")
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "tiny" {
		t.Fatalf("loaded %+v", specs)
	}
	// A single object (not an array) must load too.
	one, _ := json.Marshal(spec)
	if err := writeFile(path, one); err != nil {
		t.Fatal(err)
	}
	if specs, err = LoadSpecs(path); err != nil || len(specs) != 1 {
		t.Fatalf("single-object load: %v, %d specs", err, len(specs))
	}
	if _, err := ParseSpecs([]byte(`{"name":""}`)); err == nil {
		t.Fatal("ParseSpecs accepted an invalid spec")
	}
	if _, err := ParseSpecs([]byte(`"nope"`)); err == nil {
		t.Fatal("ParseSpecs accepted a non-spec")
	}
}

func TestRunTinySuite(t *testing.T) {
	results, err := Run([]Spec{tinySpec()}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Schemes) != 2 {
		t.Fatalf("shape: %d results", len(results))
	}
	for _, sr := range results[0].Schemes {
		if len(sr.CheckFailures) != 0 {
			t.Errorf("%s checks failed: %v", sr.Scheme, sr.CheckFailures)
		}
		if sr.Metrics["tput_avg_gbps"] <= 0 {
			t.Errorf("%s: no throughput measured", sr.Scheme)
		}
		if sr.Metrics["rtt_n"] <= 0 {
			t.Errorf("%s: no probe samples", sr.Scheme)
		}
	}
	// AC/DC must export fleet telemetry (merged via metrics.Merge) and the
	// stable ctr_ namespace; CUBIC must not.
	var cubic, acdc *SchemeResult
	for _, sr := range results[0].Schemes {
		switch sr.Scheme {
		case "cubic":
			cubic = sr
		case "acdc":
			acdc = sr
		}
	}
	if acdc.Telemetry.Counter("rwnd_rewrites_total") == 0 {
		t.Error("acdc telemetry has no rwnd rewrites")
	}
	if _, ok := acdc.Metrics["ctr_rwnd_rewrites_total"]; !ok {
		t.Error("acdc metrics missing ctr_ namespace")
	}
	if _, ok := cubic.Metrics["ctr_rwnd_rewrites_total"]; ok {
		t.Error("cubic run has vSwitch counters")
	}
}

func TestRunDeterministicAndParallelInvariant(t *testing.T) {
	run := func(workers int) []*Result {
		r, err := Run([]Spec{tinySpec()}, SuiteConfig{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b, par := run(1), run(1), run(4)
	for i := range a {
		for j := range a[i].Schemes {
			if !reflect.DeepEqual(a[i].Schemes[j].Metrics, b[i].Schemes[j].Metrics) {
				t.Fatalf("rerun diverged: %v vs %v", a[i].Schemes[j].Metrics, b[i].Schemes[j].Metrics)
			}
			if !reflect.DeepEqual(a[i].Schemes[j].Metrics, par[i].Schemes[j].Metrics) {
				t.Fatalf("parallel run diverged: %v vs %v", a[i].Schemes[j].Metrics, par[i].Schemes[j].Metrics)
			}
		}
	}
	// A different seed must actually change the numbers — on a spec that
	// consults the PRNG (the clean tiny spec is deliberately noise-free, so
	// fault injection supplies the randomness here).
	n1, err := Run([]Spec{noisySpec()}, SuiteConfig{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Run([]Spec{noisySpec()}, SuiteConfig{Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(n1[0].Schemes[0].Metrics, n2[0].Schemes[0].Metrics) {
		t.Fatal("different seeds produced identical metrics")
	}
}

// noisySpec is tinySpec with random loss injected, so the seed matters.
func noisySpec() Spec {
	s := tinySpec()
	s.Name = "tiny-noisy"
	s.Faults = "loss"
	s.Checks = nil
	return s
}

func TestTrialsAggregate(t *testing.T) {
	s := noisySpec()
	s.Trials = 2
	s.Schemes = []string{"acdc"}
	results, err := Run([]Spec{s}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sr := results[0].Schemes[0]
	if len(sr.PerTrial) != 2 {
		t.Fatalf("got %d trials", len(sr.PerTrial))
	}
	if reflect.DeepEqual(sr.PerTrial[0], sr.PerTrial[1]) {
		t.Fatal("distinct trial seeds produced identical metrics")
	}
	want := (sr.PerTrial[0]["rtt_p50_ms"] + sr.PerTrial[1]["rtt_p50_ms"]) / 2
	if got := sr.Metrics["rtt_p50_ms"]; !close(got, want) {
		t.Fatalf("aggregate rtt_p50_ms %g, want trial mean %g", got, want)
	}
	// Telemetry merges across trials: two trials ≈ two single-trial sums.
	if float64(sr.Telemetry.Counter("rwnd_rewrites_total")) <= sr.PerTrial[0]["ctr_rwnd_rewrites_total"] {
		t.Fatal("telemetry not merged across trials")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestChecksGateResults(t *testing.T) {
	s := tinySpec()
	s.Checks = []Check{{Metric: "tput_avg_gbps", Min: fp(1e9)}, {Metric: "no_such_metric", Max: fp(1)}}
	results, err := Run([]Spec{s}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range results[0].Schemes {
		if len(sr.CheckFailures) != 2 {
			t.Fatalf("%s: %d failures (want impossible bound + absent metric): %v",
				sr.Scheme, len(sr.CheckFailures), sr.CheckFailures)
		}
	}
	if results[0].CheckFailures() != 4 {
		t.Fatalf("total failures %d, want 4", results[0].CheckFailures())
	}
}

// TestBaselinePerturbationRegresses is the acceptance-criteria test: bless a
// run, perturb one blessed value beyond its tolerance band, and the diff must
// report a regression (the condition cmd/acdcsuite maps to a nonzero exit).
func TestBaselinePerturbationRegresses(t *testing.T) {
	results, err := Run([]Spec{tinySpec()}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var f BaselineFile
	f.Bless("full", 1, results)

	if regs := f.Diff("full", 1, results, true); len(regs) != 0 {
		t.Fatalf("clean rerun against its own bless regressed: %v", regs)
	}

	// Perturb: double the blessed throughput — far outside the 10% band.
	f.Modes["full"]["tiny"]["acdc"]["tput_avg_gbps"] *= 2
	regs := f.Diff("full", 1, results, true)
	if len(regs) != 1 || regs[0].Kind != "drift" || regs[0].Metric != "tput_avg_gbps" {
		t.Fatalf("perturbed baseline: got %v, want one tput drift", regs)
	}

	// An exact-band metric regresses on any change at all.
	f.Modes["full"]["tiny"]["acdc"]["tput_avg_gbps"] /= 2
	f.Modes["full"]["tiny"]["acdc"]["audit_violations"] = 1
	if regs := f.Diff("full", 1, results, true); len(regs) != 1 || regs[0].Metric != "audit_violations" {
		t.Fatalf("audit_violations band not exact: %v", regs)
	}
}

func TestBaselineMissingStaleAndSeed(t *testing.T) {
	results, err := Run([]Spec{tinySpec()}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var f BaselineFile
	f.Bless("full", 1, results)

	// Remove one entry → "missing" (new metric with no baseline).
	delete(f.Modes["full"]["tiny"]["acdc"], "rtt_p50_ms")
	regs := f.Diff("full", 1, results, true)
	if len(regs) != 1 || regs[0].Kind != "missing" {
		t.Fatalf("want one missing regression, got %v", regs)
	}

	// Add a phantom entry → "stale", but only on complete runs.
	f.Bless("full", 1, results)
	f.Modes["full"]["tiny"]["acdc"]["ghost_metric"] = 42
	if regs := f.Diff("full", 1, results, true); len(regs) != 1 || regs[0].Kind != "stale" {
		t.Fatalf("want one stale regression, got %v", regs)
	}
	if regs := f.Diff("full", 1, results, false); len(regs) != 0 {
		t.Fatalf("partial run flagged stale entries: %v", regs)
	}

	// Mode isolation: smoke baselines don't gate full runs.
	var g BaselineFile
	g.Bless("smoke", 1, results)
	if regs := g.Diff("full", 1, results, false); len(regs) == 0 {
		t.Fatal("diff against an empty mode reported nothing (want missing entries)")
	}

	// Seed mismatch is itself a regression.
	f.Bless("full", 1, results)
	if regs := f.Diff("full", 2, results, false); len(regs) == 0 || regs[0].Metric != "seed" {
		t.Fatalf("seed mismatch not flagged: %v", regs)
	}
}

func TestBlessRoundTripsThroughDisk(t *testing.T) {
	results, err := Run([]Spec{tinySpec()}, SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var f BaselineFile
	f.Comment = "test"
	f.Bless("smoke", 1, results)
	path := filepath.Join(t.TempDir(), "base.json")
	if err := SaveBaselines(path, &f); err != nil {
		t.Fatal(err)
	}
	g, err := LoadBaselines(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := g.Diff("smoke", 1, results, true); len(regs) != 0 {
		t.Fatalf("disk round trip regressed: %v", regs)
	}
	// Saving twice must be byte-identical (stable key order).
	path2 := filepath.Join(t.TempDir(), "base2.json")
	if err := SaveBaselines(path2, g); err != nil {
		t.Fatal(err)
	}
	a, b := mustRead(t, path), mustRead(t, path2)
	if a != b {
		t.Fatal("re-saved baseline file differs byte-wise")
	}
}

func TestToleranceBands(t *testing.T) {
	for _, tc := range []struct {
		metric   string
		abs, rel float64
	}{
		{"audit_violations", 0, 0},
		{"fairness", 0.05, 0},
		{"tput_avg_gbps", 0.05, 0.10},
		{"rtt_p999_ms", 0.05, 0.60},
		{"mice_p50_ms", 0.02, 0.25},
		{"ctr_rwnd_rewrites_total", 2, 0.35},
		{"fabric_failovers", 2, 0.35},
		{"rtt_n", 2, 0.25},
		{"churn_departures", 2, 0.25},
		{"something_else", 0.01, 0.25},
	} {
		abs, rel := Tolerance(tc.metric)
		if abs != tc.abs || rel != tc.rel {
			t.Errorf("Tolerance(%s) = (%g, %g), want (%g, %g)", tc.metric, abs, rel, tc.abs, tc.rel)
		}
	}
}

func TestCatalogByName(t *testing.T) {
	specs, err := CatalogByName("lossy-link", "baseline")
	if err != nil || len(specs) != 2 || specs[0].Name != "lossy-link" || specs[1].Name != "baseline" {
		t.Fatalf("got %v, %v", specs, err)
	}
	if _, err := CatalogByName("warp-core"); err == nil {
		t.Fatal("unknown name accepted")
	}
	all, err := CatalogByName()
	if err != nil || len(all) != len(Catalog()) {
		t.Fatalf("empty selection: %d specs, %v", len(all), err)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
