// Package scenario is the declarative scenario suite: named, reproducible
// experiment setups whose results are gated against checked-in baselines.
//
// A [Spec] is plain data — JSON-serializable, loadable from a config file via
// [LoadSpecs] — composing the repo's building blocks:
//
//   - a topology from internal/topo ([TopoSpec]: star, dumbbell, parking lot)
//   - a workload mix from internal/workload ([WorkloadSpec]: bulk pairs,
//     incast, prober, partition/aggregate, stride, trace-driven, flash-crowd,
//     tenant-churn)
//   - a fault profile and vSwitch restart plan from internal/faults (the
//     same syntax as acdcsim's -faults/-restart flags)
//   - expected-invariant assertions ([Check]) backed by internal/audit and
//     the runner's metric namespace
//
// [Run] executes the scenarios × schemes × trials matrix through the
// experiments.Sweep worker pool — each scheme×trial in its own simulator, so
// parallel and sequential runs produce identical results — and aggregates
// per-trial fleet telemetry with metrics.Merge.
//
// # Regression gating
//
// [BaselineFile] holds blessed metric values per mode ("full", "smoke") →
// scenario → scheme → metric. [BaselineFile.Diff] compares a run against the
// blessed values using per-metric tolerance bands ([Tolerance]): exact for
// audit_violations, tight for throughput, widest for tail percentiles. The
// simulator is deterministic given the seed, so rerunning an unchanged tree
// reproduces every blessed value exactly; a diff is a real behaviour change,
// to be either fixed or re-blessed ([BaselineFile.Bless]).
//
// [Catalog] is the built-in suite (see SCENARIOS.md for the runbook and
// EXPERIMENTS.md for per-scenario documentation); cmd/acdcsuite is the CLI.
package scenario
