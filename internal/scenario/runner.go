package scenario

import (
	"fmt"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/experiments"
	"acdc/internal/faults"
	"acdc/internal/metrics"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/trace"
	"acdc/internal/workload"
)

// SuiteConfig parameterizes a suite run.
type SuiteConfig struct {
	// Seed is the base simulation seed; trial t of every scenario runs with
	// Seed+t so schemes are compared on identical randomness (default 1).
	Seed int64
	// Smoke applies each spec's smoke overrides (reduced CI configuration).
	Smoke bool
	// Backend, when non-empty, overrides every spec's enforcement backend
	// (core.BackendNames) so one catalog run compares mechanisms head to
	// head. Baselines are blessed for the default backend only; non-default
	// runs should skip the baseline diff and gate on Checks + audit instead.
	Backend string
	// Workers is the experiments.Sweep worker count (0 = one per CPU,
	// 1 = sequential).
	Workers int
	// Progress, when non-nil, receives one line per finished scheme×trial.
	Progress func(format string, args ...any)
}

// Mode names the baseline mode key for the config.
func (c SuiteConfig) Mode() string {
	if c.Smoke {
		return "smoke"
	}
	return "full"
}

// SchemeResult is one scheme's aggregated outcome for a scenario.
type SchemeResult struct {
	// Scheme is the scheme key ("cubic", "dctcp", "acdc").
	Scheme string
	// Metrics are the scenario's headline numbers, averaged across trials.
	// The namespace (present keys depend on the workload mix and scheme):
	//
	//	tput_avg_gbps, fairness         tracked long-lived flows
	//	rtt_p50_ms/_p99_ms/_p999_ms/_n  prober samples
	//	mice_*/bg_*                     FCT-workload completions (ms)
	//	flash_p50_ms/_p999_ms/_n/_waves flash-crowd request FCTs
	//	qct_p50_ms/_p999_ms/_n          partition/aggregate query times
	//	churn_departures/_arrivals      tenant-churn events
	//	drop_rate                       fabric drops / (drops+sent)
	//	audit_violations                invariant-auditor total (0 = clean)
	//	ce_fraction, ctr_*              fleet datapath counters (AC/DC only)
	Metrics map[string]float64
	// PerTrial holds each trial's metrics (PerTrial[t] → trial t).
	PerTrial []map[string]float64
	// Telemetry is the metrics.Merge of every trial's final fleet snapshot
	// (empty for schemes without AC/DC vSwitches).
	Telemetry metrics.Snapshot
	// CheckFailures lists violated expected-invariant Checks (empty = pass).
	CheckFailures []string
}

// Result is one scenario's outcome across its schemes.
type Result struct {
	// Spec is the *effective* spec (defaults and smoke overrides applied).
	Spec Spec
	// Schemes holds one aggregated result per scheme, in spec order.
	Schemes []*SchemeResult
}

// CheckFailures counts assertion failures across all schemes.
func (r *Result) CheckFailures() int {
	n := 0
	for _, s := range r.Schemes {
		n += len(s.CheckFailures)
	}
	return n
}

// Run executes the scenarios × schemes × trials matrix through the
// experiments.Sweep worker pool and returns one Result per scenario, in
// input order. Specs are validated first; an invalid spec fails the whole
// run before any simulation starts.
func Run(specs []Spec, cfg SuiteConfig) ([]*Result, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if _, err := core.ParseBackend(cfg.Backend); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	effective := make([]Spec, 0, len(specs))
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if cfg.Smoke {
			s = s.ForSmoke()
		} else {
			s = s.withDefaults()
		}
		if cfg.Backend != "" {
			s.Backend = cfg.Backend
		}
		effective = append(effective, s)
	}

	// Flatten the matrix into Sweep jobs. Each job runs one scheme×trial in
	// its own simulator; per-job outputs land in index-addressed slices, so
	// parallel runs aggregate identically to sequential ones.
	type key struct{ spec, scheme, trial int }
	var keys []key
	var jobs []experiments.Job
	var snaps []metrics.Snapshot
	for si := range effective {
		s := effective[si]
		for pi, scheme := range s.Schemes {
			for t := 0; t < s.Trials; t++ {
				idx := len(jobs)
				scheme, t := scheme, t
				keys = append(keys, key{si, pi, t})
				jobs = append(jobs, experiments.Job{Exp: experiments.Experiment{
					ID: fmt.Sprintf("%s/%s#%d", s.Name, scheme, t+1),
					Run: func(experiments.RunConfig) *experiments.Result {
						m, snap := runTrial(s, scheme, cfg.Seed+int64(t))
						snaps[idx] = snap
						return &experiments.Result{Metrics: m}
					},
				}})
			}
		}
	}
	snaps = make([]metrics.Snapshot, len(jobs))

	results := experiments.Sweep(jobs, cfg.Workers, func(i int, r *experiments.Result) {
		if cfg.Progress != nil {
			cfg.Progress("  done %s", jobs[i].Exp.ID)
		}
	})

	// Group trials back into per-scenario, per-scheme aggregates.
	out := make([]*Result, len(effective))
	for i := range effective {
		out[i] = &Result{Spec: effective[i]}
		for _, scheme := range effective[i].Schemes {
			out[i].Schemes = append(out[i].Schemes, &SchemeResult{
				Scheme: scheme, Metrics: map[string]float64{},
			})
		}
	}
	for idx, k := range keys {
		sr := out[k.spec].Schemes[k.scheme]
		sr.PerTrial = append(sr.PerTrial, results[idx].Metrics)
		sr.Telemetry = metrics.Merge(sr.Telemetry, snaps[idx])
	}
	for _, r := range out {
		for _, sr := range r.Schemes {
			for _, trial := range sr.PerTrial {
				for k, v := range trial {
					sr.Metrics[k] += v / float64(len(sr.PerTrial))
				}
			}
			sr.CheckFailures = evalChecks(r.Spec, sr)
		}
	}
	return out, nil
}

// evalChecks evaluates the spec's expected-invariant assertions against one
// scheme's aggregated metrics.
func evalChecks(s Spec, sr *SchemeResult) []string {
	var fails []string
	backend := s.Backend
	if backend == "" {
		backend = core.DefaultBackend
	}
	for _, c := range s.Checks {
		if c.Scheme != "" && c.Scheme != sr.Scheme {
			continue
		}
		if c.Backend != "" && c.Backend != backend {
			continue
		}
		v, ok := sr.Metrics[c.Metric]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: metric %s absent (want %s)", sr.Scheme, c.Metric, c.bound()))
			continue
		}
		if (c.Min != nil && v < *c.Min) || (c.Max != nil && v > *c.Max) {
			fails = append(fails, fmt.Sprintf("%s: %s = %g outside %s", sr.Scheme, c.Metric, v, c.bound()))
		}
	}
	return fails
}

// schemeFor builds the experiments.Scheme for a scheme key.
func schemeFor(key string, mtu int, minRwnd int64) experiments.Scheme {
	switch key {
	case "dctcp":
		return experiments.SchemeDCTCP(mtu)
	case "acdc":
		s := experiments.SchemeACDC(mtu, "cubic", tcpstack.ECNOff)
		if minRwnd > 0 {
			s.ACDC.MinRwndBytes = minRwnd
		}
		return s
	default:
		return experiments.SchemeCUBIC(mtu)
	}
}

// trialState accumulates one trial's live drivers and measured flows.
type trialState struct {
	net     *topo.Net
	m       *workload.Manager
	flows   []*workload.Messenger // rate-tracked long-lived flows
	probers []*workload.Prober
	fcts    workload.FCTs // stride/trace FCT accumulator (shared)
	flash   []*workload.FlashCrowd
	churn   []*workload.TenantChurn
	pa      []*workload.PartitionAggregate
}

// runTrial builds one net, drives the workload mix through warmup+measure,
// and returns the trial's metrics plus the final fleet telemetry snapshot.
func runTrial(s Spec, schemeKey string, seed int64) (map[string]float64, metrics.Snapshot) {
	scheme := schemeFor(schemeKey, s.MTU, s.MinRwndBytes)
	opts := topo.Options{
		LinkRate:    s.Topo.LinkRate,
		LinkDelay:   s.Topo.LinkDelay.D(),
		BufferBytes: s.Topo.BufferBytes,
		Guest:       scheme.Guest,
		ACDC:        scheme.ACDC,
		RED:         scheme.RED,
		Seed:        seed,
		Backend:     s.Backend,
	}
	if s.Faults != "" {
		p, _ := faults.Parse(s.Faults) // validated upfront
		opts.Faults = &p
	}
	if s.Restart != "" {
		p, _ := faults.ParseRestart(s.Restart)
		opts.Restart = &p
	}
	if s.Fabric != "" {
		opts.Fabric, _ = faults.ParseDomains(s.Fabric) // validated upfront
	}
	if s.Audit {
		opts.Audit = &audit.Config{MaxLog: 8}
	}

	st := &trialState{}
	switch s.Topo.Kind {
	case "dumbbell":
		st.net = topo.Dumbbell(s.Topo.Hosts, opts)
	case "parkinglot":
		st.net = topo.ParkingLot(opts)
	case "fattree":
		st.net = topo.FatTree(topo.FatTreeConfig{K: s.Topo.K, HostsPerTor: s.Topo.HostsPerTor}, opts)
	default:
		st.net = topo.Star(s.Topo.Hosts, opts)
	}
	st.m = workload.NewManager(st.net)
	hosts := len(st.net.Hosts)

	if fp := compileFlowPolicy(s.Policies, st.net); fp != nil {
		for _, v := range st.net.ACDC {
			if v != nil {
				v.Cfg.FlowPolicy = fp
			}
		}
	}

	for _, w := range s.Workloads {
		st.launch(s, w, hosts)
	}

	st.net.Sim.RunFor(s.Warmup.D())
	for _, p := range st.probers {
		p.Start()
	}
	start := make([]int64, len(st.flows))
	for i, f := range st.flows {
		start[i] = f.Delivered()
	}
	st.net.Sim.RunFor(s.Measure.D())
	for _, p := range st.probers {
		p.Stop()
	}
	for _, f := range st.flash {
		f.Stop()
	}
	for _, c := range st.churn {
		c.Stop()
	}
	for _, pa := range st.pa {
		pa.Stop()
	}

	return st.collect(s, start)
}

// launch wires one workload element into the trial.
func (st *trialState) launch(s Spec, w WorkloadSpec, hosts int) {
	switch w.Kind {
	case "bulk-pairs":
		pairs := s.Topo.Hosts
		if s.Topo.Kind == "parkinglot" {
			// Parking lot: the five senders each flood the single receiver.
			for i := 1; i < hosts; i++ {
				st.flows = append(st.flows, workload.Bulk(st.m, i, 0))
			}
			return
		}
		for i := 0; i < pairs; i++ {
			st.flows = append(st.flows, workload.Bulk(st.m, i, pairs+i))
		}
	case "incast":
		senders := make([]int, w.Senders)
		for i := range senders {
			senders[i] = i
		}
		st.flows = append(st.flows, workload.Incast(st.m, senders, w.Senders)...)
	case "prober":
		st.probers = append(st.probers, workload.NewProber(st.m, w.From, w.To))
	case "partagg":
		workers := make([]int, w.Senders)
		for i := range workers {
			workers[i] = i
		}
		shard := w.Bytes
		if shard == 0 {
			shard = 32 << 10
		}
		pa := workload.NewPartitionAggregate(st.m, w.Senders, workers, shard)
		pa.Run(w.Period.D())
		st.pa = append(st.pa, pa)
	case "stride":
		n := w.Hosts
		if n == 0 {
			n = hosts
		}
		cfg := workload.StrideConfig{N: n, BgBytes: w.Bytes, MiceBytes: w.MiceBytes, MicePeriod: w.Period.D()}
		if cfg.BgBytes == 0 {
			cfg.BgBytes = 8 << 20
		}
		if cfg.MiceBytes == 0 {
			cfg.MiceBytes = 16 << 10
		}
		if cfg.MicePeriod == 0 {
			cfg.MicePeriod = 2 * sim.Millisecond
		}
		workload.Stride(st.m, cfg, &st.fcts)
	case "trace":
		n := w.Hosts
		if n == 0 {
			n = hosts
		}
		d := trace.WebSearch()
		if w.Dist == "data-mining" {
			d = trace.DataMining()
		}
		cfg := workload.TraceConfig{N: n, AppsPerServer: 3, Dist: d, MiceCutoff: 10 << 10}
		workload.TraceDriven(st.m, cfg, &st.fcts)
	case "flash-crowd":
		senders := make([]int, w.Senders)
		for i := range senders {
			senders[i] = i
		}
		f := workload.NewFlashCrowd(st.m, workload.FlashCrowdConfig{
			Senders: senders, Hot: w.Senders, Bytes: w.Bytes, Period: w.Period.D(),
		})
		f.Start()
		st.flash = append(st.flash, f)
	case "tenant-churn":
		c := workload.NewTenantChurn(st.m, TenantChurnConfigOf(w))
		c.Start()
		st.churn = append(st.churn, c)
	}
}

// compileFlowPolicy turns a spec's policy list into the core FlowPolicy
// callback: first matching entry wins, no match falls back to the default.
// The returned policy is routed through the Sanitized choke point — the same
// clamp as live installs and snapshot restore — so even a policy body that
// bypassed Spec.Validate (a hand-built spec, a future field) cannot hand the
// enforcement math a hostile β or an unknown VCC. Returns nil when the spec
// declares no policies, leaving the vSwitch default untouched.
func compileFlowPolicy(policies []PolicySpec, net *topo.Net) func(core.FlowKey) core.Policy {
	if len(policies) == 0 {
		return nil
	}
	hostOf := make(map[packet.Addr]int, len(net.Hosts))
	for i := range net.Hosts {
		hostOf[net.Addr(i)] = i
	}
	return func(k core.FlowKey) core.Policy {
		for _, ps := range policies {
			if ps.SrcHost != nil {
				if h, ok := hostOf[k.Src]; !ok || h != *ps.SrcHost {
					continue
				}
			}
			if ps.DstHost != nil {
				if h, ok := hostOf[k.Dst]; !ok || h != *ps.DstHost {
					continue
				}
			}
			return ps.policy().Sanitized()
		}
		return core.DefaultPolicy()
	}
}

// TenantChurnConfigOf maps a workload spec onto the tenant-churn driver's
// config (shared between validation and launch so the two can't diverge).
func TenantChurnConfigOf(w WorkloadSpec) workload.TenantChurnConfig {
	return workload.TenantChurnConfig{
		Tenants:        w.Tenants,
		HostsPerTenant: w.HostsPerTenant,
		BgBytes:        w.Bytes,
		MiceBytes:      w.MiceBytes,
		MicePeriod:     w.Period.D(),
		ChurnPeriod:    w.ChurnPeriod.D(),
	}
}

// headlineCounters are the fleet counters exported as ctr_* metrics for
// baselining and checks. Lazy counters that never fired read as 0, so the
// key set is stable across runs.
var headlineCounters = []string{
	"rwnd_rewrites_total",
	"flows_resynced_total",
	"flows_adopted_midstream_total",
	"vswitch_restarts_total",
	"snapshot_restore_total",
	"snapshot_corrupt_total",
	"fail_open_total",
	"feedback_timeouts_total",
	"flows_evicted_total",
	"fault_drops_total",
	"fault_feedback_drops_total",
	"fault_feedback_strips_total",
	"backend_unknown_total",
	"pace_queued_total",
	"pace_released_total",
	"pace_drops_total",
	"adaptive_k_adjusts_total",
}

// fabricCounters map fabric_* metric keys onto FabricSnapshot counter names.
// Emitted (with zeros for counters that never fired) only on fabrics —
// multi-path topologies or single-path ones with armed fault domains — so
// classic scenarios keep their exact pre-fabric metric namespace.
var fabricCounters = [][2]string{
	{"fabric_link_downs", "fabric_link_downs_total"},
	{"fabric_link_ups", "fabric_link_ups_total"},
	{"fabric_failovers", "ecmp_failovers_total"},
	{"fabric_blackholes", "ecmp_blackholes_total"},
	{"fabric_gray_drops", "fabric_gray_drops_total"},
	{"fabric_drops_queue", "link_drops_total{reason=queue}"},
	{"fabric_drops_fault", "link_drops_total{reason=fault}"},
	{"fabric_drops_down", "link_drops_total{reason=down}"},
}

// collect derives the trial's metric map and fleet snapshot.
func (st *trialState) collect(s Spec, start []int64) (map[string]float64, metrics.Snapshot) {
	out := map[string]float64{}
	ms := func(smp *stats.Sample, prefix string) {
		out[prefix+"_p50_ms"] = smp.Percentile(50) / 1e6
		out[prefix+"_p999_ms"] = smp.Percentile(99.9) / 1e6
		out[prefix+"_n"] = float64(smp.N())
	}

	if len(st.flows) > 0 {
		rates := make([]float64, len(st.flows))
		for i, f := range st.flows {
			rates[i] = float64(f.Delivered()-start[i]) * 8 / s.Measure.D().Seconds() / 1e9
		}
		var total float64
		for _, r := range rates {
			total += r
		}
		out["tput_avg_gbps"] = total / float64(len(rates))
		out["fairness"] = stats.JainFairness(rates)
	}
	if len(st.probers) > 0 {
		var all stats.Sample
		for _, p := range st.probers {
			for _, pt := range p.Samples.CDF(p.Samples.N()) {
				all.Add(pt[0])
			}
		}
		out["rtt_p50_ms"] = all.Percentile(50) / 1e6
		out["rtt_p99_ms"] = all.Percentile(99) / 1e6
		out["rtt_p999_ms"] = all.Percentile(99.9) / 1e6
		out["rtt_n"] = float64(all.N())
	}
	if st.fcts.Mice.N() > 0 || st.fcts.Background.N() > 0 {
		ms(&st.fcts.Mice, "mice")
		out["bg_p50_ms"] = st.fcts.Background.Percentile(50) / 1e6
		out["bg_n"] = float64(st.fcts.Background.N())
	}
	if len(st.churn) > 0 {
		var mice, bg stats.Sample
		var dep, arr float64
		for _, c := range st.churn {
			merge(&mice, &c.FCTs.Mice)
			merge(&bg, &c.FCTs.Background)
			dep += float64(c.Departures)
			arr += float64(c.Arrivals)
		}
		ms(&mice, "mice")
		out["bg_p50_ms"] = bg.Percentile(50) / 1e6
		out["bg_n"] = float64(bg.N())
		out["churn_departures"] = dep
		out["churn_arrivals"] = arr
	}
	if len(st.flash) > 0 {
		var fct stats.Sample
		var waves float64
		for _, f := range st.flash {
			merge(&fct, &f.FCT)
			waves += float64(f.Waves)
		}
		ms(&fct, "flash")
		out["flash_waves"] = waves
	}
	if len(st.pa) > 0 {
		var qct stats.Sample
		for _, pa := range st.pa {
			merge(&qct, &pa.QCT)
		}
		ms(&qct, "qct")
	}

	out["drop_rate"] = st.net.DropRate()
	out["audit_violations"] = float64(st.net.AuditViolations())

	snap, ok := fleetSnapshot(st.net)
	if ok {
		if rx := snap.Counter("rx_data_bytes_total"); rx > 0 {
			out["ce_fraction"] = float64(snap.Counter("rx_ce_bytes_total")) / float64(rx)
		}
		for _, name := range headlineCounters {
			out["ctr_"+name] = float64(snap.Counter(name))
		}
	}
	if st.net.HasFabric() {
		fsnap := st.net.FabricSnapshot()
		for _, kv := range fabricCounters {
			out[kv[0]] = float64(fsnap.Counter(kv[1]))
		}
		snap = metrics.Merge(snap, fsnap)
	}
	return out, snap
}

// merge copies every observation of src into dst.
func merge(dst, src *stats.Sample) {
	for _, pt := range src.CDF(src.N()) {
		dst.Add(pt[0])
	}
}

// fleetSnapshot merges every attached vSwitch's registry (plus the fault
// injector's, when active) into one view — the per-trial telemetry the suite
// aggregates across trials with metrics.Merge. ok is false for schemes
// without AC/DC modules.
func fleetSnapshot(net *topo.Net) (metrics.Snapshot, bool) {
	var snaps []metrics.Snapshot
	for _, v := range net.ACDC {
		if v != nil && v.Metrics.Registry() != nil {
			snaps = append(snaps, v.Metrics.Snapshot())
		}
	}
	if len(snaps) == 0 {
		return metrics.Snapshot{}, false
	}
	if net.Faults != nil {
		snaps = append(snaps, net.Faults.Registry().Snapshot())
	}
	return metrics.Merge(snaps...), true
}
