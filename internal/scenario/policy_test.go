package scenario

import (
	"strings"
	"testing"

	"acdc/internal/core"
	"acdc/internal/sim"
	"acdc/internal/topo"
)

func ip(v int) *int { return &v }

// policySpec returns a valid single-policy spec the validation tests mutate.
func policySpec() Spec {
	s := tinySpec()
	s.Policies = []PolicySpec{{Beta: fp(0.5), RwndClampBytes: 1 << 20}}
	return s
}

// TestPolicySpecValidation is the regression test for hostile scenario-spec
// policies: a config file carrying β outside [0,1], a negative clamp, an
// unknown VCC, or an out-of-range host matcher must be rejected at load —
// the same contract the daemon's live policy stream enforces.
func TestPolicySpecValidation(t *testing.T) {
	if err := policySpec().Validate(); err != nil {
		t.Fatalf("valid policy spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*PolicySpec)
		want string
	}{
		{"hostile beta", func(p *PolicySpec) { p.Beta = fp(3) }, "beta"},
		{"negative beta", func(p *PolicySpec) { p.Beta = fp(-0.25) }, "beta"},
		{"negative clamp", func(p *PolicySpec) { p.RwndClampBytes = -1 }, "clamp"},
		{"unknown vcc", func(p *PolicySpec) { p.VCC = "cubic++" }, "vcc"},
		{"src host range", func(p *PolicySpec) { p.SrcHost = ip(99) }, "src_host"},
		{"dst host range", func(p *PolicySpec) { p.DstHost = ip(-1) }, "dst_host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := policySpec()
			tc.mut(&s.Policies[0])
			err := s.Validate()
			if err == nil {
				t.Fatal("hostile policy spec validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCompileFlowPolicyMatchesAndSanitizes exercises the compiled callback
// directly: host matchers select by the flow's data direction, first match
// wins, and the returned policy has been through the Sanitized choke point —
// a hostile β that skipped Validate comes out clamped, never raw.
func TestCompileFlowPolicyMatchesAndSanitizes(t *testing.T) {
	net := topo.Star(3, topo.Options{})
	pol := compileFlowPolicy([]PolicySpec{
		{SrcHost: ip(0), Beta: fp(3)}, // hostile: bypassed Validate on purpose
		{DstHost: ip(2), Disable: true},
	}, net)
	if pol == nil {
		t.Fatal("compileFlowPolicy returned nil for a non-empty policy list")
	}

	from0 := pol(core.FlowKey{Src: net.Addr(0), Dst: net.Addr(1)})
	if from0.Beta != 1 {
		t.Errorf("hostile β=3 reached the enforcement math as %v (want clamped to 1)", from0.Beta)
	}
	if to2 := pol(core.FlowKey{Src: net.Addr(1), Dst: net.Addr(2)}); !to2.Disable {
		t.Errorf("dst matcher missed: got %+v", to2)
	}
	// First match wins: src 0 → dst 2 hits the src rule, not the disable.
	if both := pol(core.FlowKey{Src: net.Addr(0), Dst: net.Addr(2)}); both.Disable {
		t.Errorf("policy order not respected: got %+v", both)
	}
	if def := pol(core.FlowKey{Src: net.Addr(1), Dst: net.Addr(0)}); def != core.DefaultPolicy() {
		t.Errorf("unmatched flow got %+v, want the default policy", def)
	}

	if compileFlowPolicy(nil, net) != nil {
		t.Error("empty policy list should leave the vSwitch default untouched")
	}
}

// TestPolicySpecDisablesEnforcement runs the same trial with and without a
// blanket Disable policy: with it, AC/DC must never rewrite a window; without
// it, enforcement is active. The hostile-β variant (clamped to plain DCTCP by
// the choke point) must leave the auditor clean.
func TestPolicySpecDisablesEnforcement(t *testing.T) {
	base := Spec{
		Name: "policy-e2e",
		Topo: TopoSpec{Kind: "dumbbell", Hosts: 2},
		Workloads: []WorkloadSpec{
			{Kind: "bulk-pairs"},
		},
		Schemes: []string{"acdc"},
		Audit:   true,
		Warmup:  Duration(2 * sim.Millisecond),
		Measure: Duration(8 * sim.Millisecond),
	}.withDefaults()

	m, _ := runTrial(base, "acdc", 1)
	if m["ctr_rwnd_rewrites_total"] == 0 {
		t.Fatal("baseline trial never rewrote a window; the comparison is vacuous")
	}

	off := base
	off.Policies = []PolicySpec{{Disable: true}}
	m, _ = runTrial(off, "acdc", 1)
	if got := m["ctr_rwnd_rewrites_total"]; got != 0 {
		t.Errorf("Disable policy still rewrote %v windows", got)
	}

	hostile := base
	hostile.Policies = []PolicySpec{{Beta: fp(3)}} // bypasses Validate
	m, _ = runTrial(hostile, "acdc", 1)
	if got := m["audit_violations"]; got != 0 {
		t.Errorf("hostile β through the spec path tripped %v audit violations", got)
	}
	if m["ctr_rwnd_rewrites_total"] == 0 {
		t.Error("clamped hostile policy should still enforce (β=1)")
	}
}
