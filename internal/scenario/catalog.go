package scenario

import (
	"fmt"
	"strings"

	"acdc/internal/faults"
	"acdc/internal/sim"
)

// fp returns a pointer bound for Check literals.
func fp(v float64) *float64 { return &v }

func d(v sim.Duration) Duration { return Duration(v) }

// Catalog returns the built-in scenario suite, in run order. Each entry is a
// complete Spec with a smoke variant (reduced CI shape) and the invariant
// checks that must hold for the scenario to count as healthy; numeric drift
// within a healthy run is tracked by the baseline diff instead.
//
// The catalog deliberately spans the paper's figures (dumbbell, incast,
// concurrent stride) and the regimes the figures skip: degraded fabrics,
// lost feedback, vSwitch restarts mid-traffic, multi-tenant churn, flash
// crowds, and k-ary fat-trees under ECMP with link failures, flaps, and
// gray loss.
func Catalog() []Spec {
	return []Spec{
		{
			Name:  "baseline",
			Title: "Dumbbell bulk pairs + RTT prober on a clean fabric",
			Paper: "Figure 8 (§5.1): AC/DC matches DCTCP's RTT at CUBIC's throughput",
			Topo:  TopoSpec{Kind: "dumbbell", Hosts: 5},
			Workloads: []WorkloadSpec{
				{Kind: "bulk-pairs"},
				{Kind: "prober", From: 0, To: 5},
			},
			Audit: true,
			Checks: []Check{
				// CUBIC is exempt: its unfairness on a shared bottleneck is
				// the paper's Figure 1 motivation, not a suite defect.
				{Scheme: "dctcp", Metric: "fairness", Min: fp(0.8)},
				{Scheme: "acdc", Metric: "fairness", Min: fp(0.8)},
				{Metric: "tput_avg_gbps", Min: fp(1.0)},
				// CUBIC's buffer-filling RTT leaves very few ping-pong rounds
				// in a short window; ≥1 still proves the prober stayed alive.
				{Metric: "rtt_n", Min: fp(1)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
				// Healthy runs never hand the vSwitch an unknown backend name.
				{Scheme: "acdc", Metric: "ctr_backend_unknown_total", Max: fp(0)},
			},
			Smoke: &Adjust{
				Hosts: 2, Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "bulk-pairs"},
					{Kind: "prober", From: 0, To: 2},
				},
			},
		},
		{
			Name:  "incast-heavy",
			Title: "16:1 incast into one downlink with a prober riding through it",
			Paper: "Figures 18–19 (§5.2): incast fan-in with the byte-granularity RWND floor",
			Topo:  TopoSpec{Kind: "star", Hosts: 18},
			Workloads: []WorkloadSpec{
				{Kind: "incast", Senders: 16},
				{Kind: "prober", From: 17, To: 16},
			},
			MinRwndBytes: (9000 - 40) / 2,
			Audit:        true,
			Warmup:       d(10 * sim.Millisecond),
			Measure:      d(30 * sim.Millisecond),
			Checks: []Check{
				{Metric: "rtt_n", Min: fp(1)},
				{Scheme: "acdc", Metric: "fairness", Min: fp(0.9)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
				// The RWND rewrite is the enforcement act only for the
				// backends that enforce via the window; pace throttles at
				// egress instead, so its enforcement trace is released
				// (token-clocked) segments.
				{Scheme: "acdc", Metric: "ctr_rwnd_rewrites_total", Min: fp(1), Backend: "dctcp-cut"},
				{Scheme: "acdc", Metric: "ctr_rwnd_rewrites_total", Min: fp(1), Backend: "adaptive-k"},
				{Scheme: "acdc", Metric: "ctr_pace_released_total", Min: fp(1), Backend: "pace"},
			},
			Smoke: &Adjust{
				Hosts: 6, Warmup: d(5 * sim.Millisecond), Measure: d(10 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "incast", Senders: 4},
					{Kind: "prober", From: 5, To: 4},
				},
			},
		},
		{
			Name:  "high-load",
			Title: "Concurrent-stride mix: standing 4:1 background load + periodic mice",
			Paper: "Figure 21 (§5.2): mice FCTs under the concurrent-stride workload",
			Topo:  TopoSpec{Kind: "star", Hosts: 17},
			Workloads: []WorkloadSpec{
				{Kind: "stride"},
			},
			Audit:   true,
			Warmup:  d(10 * sim.Millisecond),
			Measure: d(40 * sim.Millisecond),
			Checks: []Check{
				{Metric: "mice_n", Min: fp(50)},
				{Metric: "bg_n", Min: fp(1)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{
				Hosts: 9, Warmup: d(5 * sim.Millisecond), Measure: d(10 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "stride", Bytes: 2 << 20},
				},
			},
		},
		{
			Name:  "degraded-latency",
			Title: "Dumbbell under per-packet jitter (loaded but undamaged fabric)",
			Paper: "beyond the figures: §4 enforcement when RTT estimates wobble",
			Topo:  TopoSpec{Kind: "dumbbell", Hosts: 3},
			Workloads: []WorkloadSpec{
				{Kind: "bulk-pairs"},
				{Kind: "prober", From: 0, To: 3},
			},
			Faults: "jitter",
			Audit:  true,
			Checks: []Check{
				{Metric: "fairness", Min: fp(0.7)},
				// Jittered ACK clocking costs AC/DC real throughput; the check
				// only asserts the fabric stays usable, the baseline tracks it.
				{Metric: "tput_avg_gbps", Min: fp(0.5)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond)},
		},
		{
			Name:  "lossy-link",
			Title: "Dumbbell with 1% random loss (recovery paths under real drops)",
			Paper: "beyond the figures: §3.1 loss recovery under injected drops",
			Topo:  TopoSpec{Kind: "dumbbell", Hosts: 3},
			Workloads: []WorkloadSpec{
				{Kind: "bulk-pairs"},
				{Kind: "prober", From: 0, To: 3},
			},
			Faults: "loss",
			Audit:  true,
			Checks: []Check{
				{Metric: "tput_avg_gbps", Min: fp(0.2)},
				{Scheme: "acdc", Metric: "ctr_fault_drops_total", Min: fp(1)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond)},
		},
		{
			Name:  "feedback-blackout",
			Title: "AC/DC with every PACK/FACK dropped: fail-open must hold",
			Paper: "beyond the figures: §3.2 feedback channel loss tolerance",
			Topo:  TopoSpec{Kind: "dumbbell", Hosts: 3},
			Workloads: []WorkloadSpec{
				{Kind: "bulk-pairs"},
				{Kind: "prober", From: 0, To: 3},
			},
			Schemes: []string{"acdc"},
			Faults:  "feedback-loss",
			Audit:   true,
			Checks: []Check{
				{Metric: "tput_avg_gbps", Min: fp(0.5)},
				// PACK rides on data ACKs here, so blackout shows up as option
				// strips rather than whole-packet feedback drops.
				{Metric: "ctr_fault_feedback_strips_total", Min: fp(1)},
				{Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond)},
		},
		{
			Name:  "rolling-restart",
			Title: "Warm vSwitch restarts every 10ms while traffic flows",
			Paper: "beyond the figures: deployability — upgrades without draining",
			Topo:  TopoSpec{Kind: "dumbbell", Hosts: 3},
			Workloads: []WorkloadSpec{
				{Kind: "bulk-pairs"},
				{Kind: "prober", From: 0, To: 3},
			},
			Schemes: []string{"acdc"},
			Restart: "warm@5ms,every=10ms,down=20us",
			Audit:   true,
			Trials:  2,
			Checks: []Check{
				{Metric: "tput_avg_gbps", Min: fp(1.0)},
				{Metric: "ctr_vswitch_restarts_total", Min: fp(2)},
				{Metric: "ctr_flows_resynced_total", Min: fp(1)},
				{Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond)},
		},
		{
			Name:  "mixed-tenant",
			Title: "Three churning tenants sharing the fabric with a partition/aggregate app",
			Paper: "beyond the figures: the shared-cloud setting of §1 under tenant churn",
			Topo:  TopoSpec{Kind: "star", Hosts: 12},
			Workloads: []WorkloadSpec{
				{Kind: "tenant-churn", Tenants: 3, HostsPerTenant: 4},
				{Kind: "partagg", Senders: 5, Period: d(2 * sim.Millisecond)},
			},
			Audit: true,
			Checks: []Check{
				{Metric: "churn_departures", Min: fp(1)},
				{Metric: "mice_n", Min: fp(10)},
				{Metric: "qct_n", Min: fp(3)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{
				Hosts: 6, Warmup: d(5 * sim.Millisecond), Measure: d(20 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "tenant-churn", Tenants: 2, HostsPerTenant: 2},
					{Kind: "partagg", Senders: 3, Period: d(2 * sim.Millisecond)},
				},
			},
		},
		{
			Name:  "flash-crowd",
			Title: "Periodic request waves from 12 senders into one hot host",
			Paper: "beyond the figures: transient incast (§5.2's pattern, bursty in time)",
			Topo:  TopoSpec{Kind: "star", Hosts: 14},
			Workloads: []WorkloadSpec{
				{Kind: "flash-crowd", Senders: 12},
				{Kind: "prober", From: 13, To: 12},
			},
			Audit: true,
			Checks: []Check{
				{Metric: "flash_waves", Min: fp(5)},
				{Metric: "rtt_n", Min: fp(10)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{
				Hosts: 6, Warmup: d(5 * sim.Millisecond), Measure: d(15 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "flash-crowd", Senders: 4},
					{Kind: "prober", From: 5, To: 4},
				},
			},
		},
		{
			Name:  "fabric-incast",
			Title: "Cross-pod 12:1 incast converging on one fat-tree ToR downlink",
			Paper: "beyond the figures: §5.2's incast pattern at fabric scale (k=4 fat-tree)",
			Topo:  TopoSpec{Kind: "fattree", K: 4},
			Workloads: []WorkloadSpec{
				{Kind: "incast", Senders: 12},
				{Kind: "prober", From: 15, To: 12},
			},
			MinRwndBytes: (9000 - 40) / 2,
			Audit:        true,
			Warmup:       d(10 * sim.Millisecond),
			Measure:      d(30 * sim.Millisecond),
			Checks: []Check{
				{Metric: "rtt_n", Min: fp(1)},
				{Scheme: "acdc", Metric: "fairness", Min: fp(0.8)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
				// A clean fabric must stay clean: no failure-path counters.
				{Metric: "fabric_link_downs", Max: fp(0)},
				{Metric: "fabric_blackholes", Max: fp(0)},
			},
			Smoke: &Adjust{
				Warmup: d(5 * sim.Millisecond), Measure: d(10 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "incast", Senders: 6},
					{Kind: "prober", From: 15, To: 6},
				},
			},
		},
		{
			Name:  "ecmp-imbalance",
			Title: "Concurrent stride across all four pods: ECMP hash spread under load",
			Paper: "beyond the figures: §2's multi-path fabrics, where hash imbalance skews enforcement",
			Topo:  TopoSpec{Kind: "fattree", K: 4},
			Workloads: []WorkloadSpec{
				{Kind: "stride"},
			},
			Audit:   true,
			Warmup:  d(10 * sim.Millisecond),
			Measure: d(30 * sim.Millisecond),
			Checks: []Check{
				{Metric: "mice_n", Min: fp(20)},
				{Metric: "bg_n", Min: fp(1)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
				{Metric: "fabric_blackholes", Max: fp(0)},
			},
			Smoke: &Adjust{
				Warmup: d(5 * sim.Millisecond), Measure: d(10 * sim.Millisecond),
				Workloads: []WorkloadSpec{
					{Kind: "stride", Bytes: 2 << 20},
				},
			},
		},
		{
			Name:  "tor-failure",
			Title: "ToR dies mid-transfer while a core uplink flaps: ECMP must fail over",
			Paper: "beyond the figures: enforcement surviving the fabric's own fault domains",
			Topo:  TopoSpec{Kind: "fattree", K: 4},
			Workloads: []WorkloadSpec{
				{Kind: "stride"},
			},
			Fabric:  "switch-down@25ms,switch=p3-tor1,for=5ms;flap@15ms,link=p0-agg0>core0,down=300us,up=2ms,count=3",
			Audit:   true,
			Warmup:  d(10 * sim.Millisecond),
			Measure: d(40 * sim.Millisecond),
			Checks: []Check{
				{Metric: "mice_n", Min: fp(10)},
				{Metric: "fabric_failovers", Min: fp(1)},
				// switch-down severs all 8 of p3-tor1's links + 3 flap edges.
				{Metric: "fabric_link_downs", Min: fp(4)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{
				Warmup: d(5 * sim.Millisecond), Measure: d(20 * sim.Millisecond),
				Fabric: "switch-down@10ms,switch=p3-tor1,for=2ms;flap@6ms,link=p0-agg0>core0,down=200us,up=1ms,count=3",
			},
		},
		{
			Name:  "gray-spine",
			Title: "Silent 2% gray loss on every core0 downlink for most of the run",
			Paper: "beyond the figures: gray failures the fabric never reports",
			Topo:  TopoSpec{Kind: "fattree", K: 4},
			Workloads: []WorkloadSpec{
				{Kind: "stride"},
				{Kind: "prober", From: 0, To: 12},
			},
			Fabric:  "gray@10ms,link=core0>*,loss=0.02,for=35ms",
			Audit:   true,
			Warmup:  d(10 * sim.Millisecond),
			Measure: d(30 * sim.Millisecond),
			Checks: []Check{
				{Metric: "fabric_gray_drops", Min: fp(1)},
				{Metric: "mice_n", Min: fp(10)},
				{Scheme: "acdc", Metric: "audit_violations", Max: fp(0)},
			},
			Smoke: &Adjust{
				Warmup: d(5 * sim.Millisecond), Measure: d(10 * sim.Millisecond),
				Fabric: "gray@5ms,link=core0>*,loss=0.02,for=8ms",
				Workloads: []WorkloadSpec{
					{Kind: "stride", Bytes: 2 << 20},
					{Kind: "prober", From: 0, To: 12},
				},
			},
		},
	}
}

// CatalogByName returns the named catalog scenarios, in catalog order when
// names is empty (the whole suite) and in the given order otherwise.
func CatalogByName(names ...string) ([]Spec, error) {
	all := Catalog()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Spec, len(all))
	for _, s := range all {
		byName[s.Name] = s
	}
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			catalogNames := make([]string, 0, len(all))
			for _, c := range all {
				catalogNames = append(catalogNames, c.Name)
			}
			if near := faults.Nearest(n, catalogNames); near != "" {
				return nil, fmt.Errorf("scenario: unknown scenario %q (did you mean %q?)", n, near)
			}
			return nil, fmt.Errorf("scenario: unknown scenario %q (run with `list` for the catalog)", n)
		}
		out = append(out, s)
	}
	return out, nil
}

// CatalogHelp renders the catalog as an aligned listing for `-scenario list`
// style flag help, mirroring faults.ProfilesHelp and faults.RestartHelp.
func CatalogHelp() string {
	var b strings.Builder
	b.WriteString("scenarios (acdcsuite [names...]):\n")
	for _, s := range Catalog() {
		fmt.Fprintf(&b, "  %-18s %s\n", s.Name, s.Title)
		fmt.Fprintf(&b, "  %-18s   schemes=%s  paper: %s\n", "", strings.Join(s.withDefaults().Schemes, ","), s.Paper)
	}
	return b.String()
}
