package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// BaselineFile is the checked-in regression gate: expected metric values per
// mode ("full", "smoke") → scenario → scheme → metric. The simulator is
// deterministic given the seed, so a rerun of an unchanged tree reproduces
// every value exactly; the tolerance bands exist to absorb *intended* code
// evolution, not run-to-run noise.
type BaselineFile struct {
	// Comment documents how to regenerate ("acdcsuite -bless ...").
	Comment string `json:"comment,omitempty"`
	// Seed is the base seed the baselines were blessed with; runs gate only
	// against baselines blessed at the same seed.
	Seed  int64                         `json:"seed"`
	Modes map[string]map[string]SchemeB `json:"modes"`
}

// SchemeB maps scheme key → metric → blessed value for one scenario.
type SchemeB map[string]map[string]float64

// LoadBaselines reads a baseline file.
func LoadBaselines(path string) (*BaselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	var f BaselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("scenario: bad baseline file %s: %v", path, err)
	}
	return &f, nil
}

// SaveBaselines writes the file with stable formatting (sorted keys, so
// re-blessing an unchanged tree produces a byte-identical file).
func SaveBaselines(path string, f *BaselineFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Bless records the results as mode's new baselines, replacing that mode's
// previous entries and leaving other modes untouched.
func (f *BaselineFile) Bless(mode string, seed int64, results []*Result) {
	if f.Modes == nil {
		f.Modes = map[string]map[string]SchemeB{}
	}
	f.Seed = seed
	m := map[string]SchemeB{}
	for _, r := range results {
		sb := SchemeB{}
		for _, sr := range r.Schemes {
			vals := make(map[string]float64, len(sr.Metrics))
			for k, v := range sr.Metrics {
				// Round to 6 significant-ish decimals so the JSON stays diffable.
				vals[k] = math.Round(v*1e6) / 1e6
			}
			sb[sr.Scheme] = vals
		}
		m[r.Spec.Name] = sb
	}
	f.Modes[mode] = m
}

// Tolerance returns the (absolute, relative) band for a metric: a measured
// value passes when |got-base| ≤ max(abs, rel·|base|). Bands are matched on
// the metric name, widest for tail percentiles (legitimately the most
// volatile under code evolution) and exact for invariant counts.
func Tolerance(metric string) (abs, rel float64) {
	switch {
	case metric == "audit_violations":
		return 0, 0 // invariants are exact: any violation is a regression
	case metric == "fairness":
		return 0.05, 0
	case metric == "drop_rate":
		return 0.003, 0.5
	case metric == "ce_fraction":
		return 0.1, 0.3
	case metric == "tput_avg_gbps":
		return 0.05, 0.10
	case strings.Contains(metric, "_p999_"):
		return 0.05, 0.60
	case strings.Contains(metric, "_p99_"):
		return 0.05, 0.50
	case strings.Contains(metric, "_p50_"):
		return 0.02, 0.25
	case strings.HasPrefix(metric, "ctr_"):
		return 2, 0.35
	case strings.HasPrefix(metric, "fabric_"):
		return 2, 0.35
	case strings.HasSuffix(metric, "_n") || metric == "flash_waves",
		strings.HasPrefix(metric, "churn_"):
		return 2, 0.25
	default:
		return 0.01, 0.25
	}
}

// Regression is one baseline violation.
type Regression struct {
	Scenario, Scheme, Metric string
	// Kind is "drift" (outside the band), "missing" (no baseline entry —
	// bless to add it), or "stale" (baseline entry with no measurement).
	Kind      string
	Base, Got float64
}

func (r Regression) String() string {
	where := r.Scenario + "/" + r.Scheme + "/" + r.Metric
	switch r.Kind {
	case "missing":
		return fmt.Sprintf("%s: no baseline for measured value %g (re-bless to add)", where, r.Got)
	case "stale":
		return fmt.Sprintf("%s: baseline %g has no measured counterpart (re-bless to drop)", where, r.Base)
	}
	abs, rel := Tolerance(r.Metric)
	return fmt.Sprintf("%s: got %g, baseline %g (band ±max(%g, %g%%))",
		where, r.Got, r.Base, abs, rel*100)
}

// Diff gates results against mode's baselines. complete marks a run of the
// entire catalog: only then are unmatched baseline entries reported as stale
// (a partial run legitimately skips scenarios). A nonzero return is the CI
// failure condition.
func (f *BaselineFile) Diff(mode string, seed int64, results []*Result, complete bool) []Regression {
	var regs []Regression
	base := f.Modes[mode]
	if base == nil {
		base = map[string]SchemeB{}
	}
	if f.Seed != seed {
		regs = append(regs, Regression{Scenario: "(suite)", Scheme: "-", Metric: "seed",
			Kind: "drift", Base: float64(f.Seed), Got: float64(seed)})
	}
	seen := map[string]bool{}
	for _, r := range results {
		for _, sr := range r.Schemes {
			bm := base[r.Spec.Name][sr.Scheme]
			for _, k := range sortedMetricKeys(sr.Metrics) {
				got := sr.Metrics[k]
				seen[r.Spec.Name+"\x00"+sr.Scheme+"\x00"+k] = true
				bv, ok := bm[k]
				if !ok {
					regs = append(regs, Regression{r.Spec.Name, sr.Scheme, k, "missing", 0, got})
					continue
				}
				abs, rel := Tolerance(k)
				if diff := math.Abs(got - bv); diff > math.Max(abs, rel*math.Abs(bv)) {
					regs = append(regs, Regression{r.Spec.Name, sr.Scheme, k, "drift", bv, got})
				}
			}
		}
	}
	if complete {
		for scn, sb := range base {
			for scheme, bm := range sb {
				for k, bv := range bm {
					if !seen[scn+"\x00"+scheme+"\x00"+k] {
						regs = append(regs, Regression{scn, scheme, k, "stale", bv, 0})
					}
				}
			}
		}
		sort.Slice(regs, func(i, j int) bool {
			a, b := regs[i], regs[j]
			if a.Scenario != b.Scenario {
				return a.Scenario < b.Scenario
			}
			if a.Scheme != b.Scheme {
				return a.Scheme < b.Scheme
			}
			return a.Metric < b.Metric
		})
	}
	return regs
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
