package scenario_test

import (
	"fmt"

	"acdc/internal/scenario"
	"acdc/internal/sim"
)

// A scenario is plain data: compose a topology, workloads, a fault plan, and
// the invariants that must hold, then hand it to Run.
func ExampleRun() {
	spec := scenario.Spec{
		Name: "example",
		Topo: scenario.TopoSpec{Kind: "dumbbell", Hosts: 2},
		Workloads: []scenario.WorkloadSpec{
			{Kind: "bulk-pairs"},
			{Kind: "prober", From: 0, To: 2},
		},
		Schemes: []string{"acdc"},
		Audit:   true,
		Warmup:  scenario.Duration(2 * sim.Millisecond),
		Measure: scenario.Duration(8 * sim.Millisecond),
		Checks: []scenario.Check{
			{Metric: "audit_violations", Max: ptr(0.0)},
		},
	}
	results, err := scenario.Run([]scenario.Spec{spec}, scenario.SuiteConfig{Seed: 1, Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sr := results[0].Schemes[0]
	fmt.Printf("scheme=%s checks_failed=%d audit_violations=%v throughput_measured=%v\n",
		sr.Scheme, len(sr.CheckFailures), sr.Metrics["audit_violations"], sr.Metrics["tput_avg_gbps"] > 0)
	// Output:
	// scheme=acdc checks_failed=0 audit_violations=0 throughput_measured=true
}

// Specs load from small JSON config files; durations are human-readable
// strings and every spec is validated on load.
func ExampleParseSpecs() {
	specs, err := scenario.ParseSpecs([]byte(`{
		"name": "from-config",
		"topo": {"kind": "star", "hosts": 6},
		"workloads": [{"kind": "incast", "senders": 4}],
		"schemes": ["acdc"],
		"faults": "loss",
		"measure": "10ms"
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := specs[0]
	fmt.Printf("%s: %s over %d hosts, faults=%s, measure=%s\n",
		s.Name, s.Workloads[0].Kind, s.Topo.Hosts, s.Faults, s.Measure)
	// Output:
	// from-config: incast over 6 hosts, faults=loss, measure=10ms
}

// Validate catches structural errors before any simulation runs.
func ExampleSpec_Validate() {
	bad := scenario.Spec{
		Name:      "oops",
		Topo:      scenario.TopoSpec{Kind: "star", Hosts: 4},
		Workloads: []scenario.WorkloadSpec{{Kind: "incast", Senders: 4}},
	}
	fmt.Println(bad.Validate())
	// Output:
	// scenario oops: workload 0: incast: 4 senders + receiver exceed 4 hosts
}

// Tolerance is the per-metric regression band: a measured value passes when
// |got-base| ≤ max(abs, rel·|base|).
func ExampleTolerance() {
	for _, m := range []string{"audit_violations", "tput_avg_gbps", "rtt_p999_ms"} {
		abs, rel := scenario.Tolerance(m)
		fmt.Printf("%s: abs=%g rel=%g\n", m, abs, rel)
	}
	// Output:
	// audit_violations: abs=0 rel=0
	// tput_avg_gbps: abs=0.05 rel=0.1
	// rtt_p999_ms: abs=0.05 rel=0.6
}

func ptr(v float64) *float64 { return &v }
