package scenario

import (
	"testing"

	"acdc/internal/core"
)

// TestSmokeSuiteMatchesCheckedInBaselines is the in-tree copy of the CI gate:
// run the whole catalog in smoke mode at the blessed seed and diff against
// the repo's committed baselines. The simulator is deterministic, so this
// passes byte-identically on an unchanged tree; if it fails, either fix the
// regression or — for an intended change — re-bless:
//
//	go run ./cmd/acdcsuite -bless && go run ./cmd/acdcsuite -smoke -bless
func TestSmokeSuiteMatchesCheckedInBaselines(t *testing.T) {
	f, err := LoadBaselines("../../SUITE_baselines.json")
	if err != nil {
		t.Fatalf("checked-in baselines unreadable: %v", err)
	}
	results, err := Run(Catalog(), SuiteConfig{Seed: f.Seed, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, sr := range r.Schemes {
			for _, fail := range sr.CheckFailures {
				t.Errorf("%s: invariant check failed: %s", r.Spec.Name, fail)
			}
		}
	}
	for _, reg := range f.Diff("smoke", f.Seed, results, true) {
		t.Errorf("baseline regression: %s", reg.String())
	}
}

// TestBackendSmokeMatrix runs the catalog in smoke mode under every
// enforcement backend. The universal gate is the packet-level auditor:
// pace and adaptive-k change *how* the virtual window is imposed, not
// *whether* the datapath stays conservation- and ordering-clean, so a
// single audit violation under any backend is a real bug, not tuning.
// Spec invariant checks are additionally enforced for dctcp-cut (exact
// parity with the default-backend gate); the catalog's numeric bounds are
// calibrated for that mechanism, and pace's probe-driven rate estimator
// needs full-length runs to converge — at full duration all three backends
// clear every check (`acdcsuite -backend <b> -no-baseline` exits 0), which
// is the comparison EXPERIMENTS.md reports. Baselines are NOT diffed here:
// headline numbers legitimately differ across mechanisms.
func TestBackendSmokeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("3-backend catalog sweep; run without -short (CI backend-matrix job)")
	}
	for _, b := range core.BackendNames() {
		b := b
		t.Run(b, func(t *testing.T) {
			results, err := Run(Catalog(), SuiteConfig{Seed: 1, Smoke: true, Backend: b})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				for _, sr := range r.Schemes {
					for _, fail := range sr.CheckFailures {
						if b == core.DefaultBackend {
							t.Errorf("%s/%s [%s]: invariant check failed: %s",
								r.Spec.Name, sr.Scheme, b, fail)
						} else {
							t.Logf("%s/%s [%s]: calibrated check differs in smoke mode: %s",
								r.Spec.Name, sr.Scheme, b, fail)
						}
					}
					if av := sr.Metrics["audit_violations"]; av != 0 {
						t.Errorf("%s/%s [%s]: %v audit violations",
							r.Spec.Name, sr.Scheme, b, av)
					}
				}
			}
		})
	}
}
