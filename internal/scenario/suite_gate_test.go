package scenario

import (
	"testing"
)

// TestSmokeSuiteMatchesCheckedInBaselines is the in-tree copy of the CI gate:
// run the whole catalog in smoke mode at the blessed seed and diff against
// the repo's committed baselines. The simulator is deterministic, so this
// passes byte-identically on an unchanged tree; if it fails, either fix the
// regression or — for an intended change — re-bless:
//
//	go run ./cmd/acdcsuite -bless && go run ./cmd/acdcsuite -smoke -bless
func TestSmokeSuiteMatchesCheckedInBaselines(t *testing.T) {
	f, err := LoadBaselines("../../SUITE_baselines.json")
	if err != nil {
		t.Fatalf("checked-in baselines unreadable: %v", err)
	}
	results, err := Run(Catalog(), SuiteConfig{Seed: f.Seed, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, sr := range r.Schemes {
			for _, fail := range sr.CheckFailures {
				t.Errorf("%s: invariant check failed: %s", r.Spec.Name, fail)
			}
		}
	}
	for _, reg := range f.Diff("smoke", f.Seed, results, true) {
		t.Errorf("baseline regression: %s", reg.String())
	}
}
