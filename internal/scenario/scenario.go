package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/sim"
	"acdc/internal/topo"
)

// Duration is a sim.Duration that marshals to/from human-readable strings
// ("50ms", "200us") so scenario specs stay legible as config files. Plain
// JSON numbers are accepted too and read as nanoseconds.
type Duration sim.Duration

// D converts to the simulator's duration type.
func (d Duration) D() sim.Duration { return sim.Duration(d) }

// String renders time.Duration syntax ("1.5ms").
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON accepts "50ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", s, err)
		}
		*d = Duration(td.Nanoseconds())
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string or ns number: %s", b)
	}
	*d = Duration(n)
	return nil
}

// TopoSpec declares the fabric a scenario runs on. It maps one-to-one onto
// the internal/topo builders; link/buffer fields of zero take the paper's
// testbed defaults (10 Gbps, 5µs, 9MB shared buffer).
type TopoSpec struct {
	// Kind is "star", "dumbbell", "parkinglot", or "fattree".
	Kind string `json:"kind"`
	// Hosts is the star's host count or the dumbbell's sender/receiver pair
	// count; ignored for the fixed-shape parking lot and for fat-trees
	// (whose host count follows from K and HostsPerTor).
	Hosts int `json:"hosts,omitempty"`
	// K is the fat-tree arity (even, default 4); fattree only.
	K int `json:"k,omitempty"`
	// HostsPerTor oversubscribes each fat-tree ToR (default K/2, the
	// rearrangeably non-blocking shape); fattree only.
	HostsPerTor int `json:"hosts_per_tor,omitempty"`
	// LinkRate overrides every link's rate in bits/sec.
	LinkRate int64 `json:"link_rate,omitempty"`
	// LinkDelay overrides the per-link one-way propagation delay.
	LinkDelay Duration `json:"link_delay,omitempty"`
	// BufferBytes overrides each switch's shared buffer.
	BufferBytes int `json:"buffer_bytes,omitempty"`
}

// WorkloadSpec declares one traffic element. Kind selects the driver in
// internal/workload; the other fields parameterize it (unused fields are
// ignored by kinds that don't need them).
type WorkloadSpec struct {
	// Kind is one of:
	//
	//	bulk-pairs    one long-lived flow per dumbbell pair (dumbbell only)
	//	incast        Senders long-lived flows into one receiver (star)
	//	prober        sockperf-style RTT ping-pong From → To
	//	partagg       partition/aggregate fan-out with QCT measurement
	//	stride        the §5.2 concurrent-stride mix (background + mice)
	//	trace         closed-loop trace-driven mix over Dist
	//	flash-crowd   periodic request waves from Senders hosts into Hot
	//	tenant-churn  multi-tenant background+mice with arrivals/departures
	Kind string `json:"kind"`

	// Senders is the fan-in (incast, partagg, flash-crowd): hosts 0..Senders-1
	// send; the receiver/hot host is host Senders.
	Senders int `json:"senders,omitempty"`
	// From/To are the prober's endpoints.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Bytes is the element's message/shard size (driver-specific default).
	Bytes int64 `json:"bytes,omitempty"`
	// MiceBytes is the mice size for stride/tenant-churn.
	MiceBytes int64 `json:"mice_bytes,omitempty"`
	// Period is the element's repeat interval (mice period, wave period,
	// query spacing — driver-specific default).
	Period Duration `json:"period,omitempty"`
	// Hosts bounds how many hosts the element spans (stride/trace N;
	// default: the whole topology).
	Hosts int `json:"hosts,omitempty"`
	// Dist is the trace distribution: "web-search" or "data-mining".
	Dist string `json:"dist,omitempty"`
	// Tenants and HostsPerTenant shape the tenant-churn element.
	Tenants        int `json:"tenants,omitempty"`
	HostsPerTenant int `json:"hosts_per_tenant,omitempty"`
	// ChurnPeriod is the tenant-churn arrival/departure interval.
	ChurnPeriod Duration `json:"churn_period,omitempty"`
}

// PolicySpec declares one per-flow differentiation policy (§3.4) a scenario
// installs on every AC/DC vSwitch before traffic starts. Matching is by host
// index of the flow's data direction; a spec with no matcher applies to every
// flow, and the first matching entry wins. Values are rejected at spec
// validation (a config file can say no) and the compiled callback still
// routes through core.Policy.Sanitized — the same choke point as live
// installs and snapshot restore — so a policy that skips validation cannot
// reach the enforcement math either.
type PolicySpec struct {
	// SrcHost / DstHost restrict the policy to flows whose data-direction
	// source / destination is that host index (nil matches any host).
	SrcHost *int `json:"src_host,omitempty"`
	DstHost *int `json:"dst_host,omitempty"`

	// Beta is Equation 1's priority in [0,1]; nil keeps the default 1.
	Beta *float64 `json:"beta,omitempty"`
	// RwndClampBytes caps the enforced window (0 = no cap).
	RwndClampBytes int64 `json:"rwnd_clamp_bytes,omitempty"`
	// VCC overrides the virtual CC algorithm ("" = vSwitch default).
	VCC string `json:"vcc,omitempty"`
	// Backend overrides the enforcement backend ("" = vSwitch default; see
	// core.BackendNames).
	Backend string `json:"backend,omitempty"`
	// Disable exempts matching flows from enforcement entirely.
	Disable bool `json:"disable,omitempty"`
}

// policy maps the spec onto the core policy type (unvalidated).
func (p PolicySpec) policy() core.Policy {
	pol := core.DefaultPolicy()
	if p.Beta != nil {
		pol.Beta = *p.Beta
	}
	pol.RwndClampBytes = p.RwndClampBytes
	pol.VCC = p.VCC
	pol.Backend = p.Backend
	pol.Disable = p.Disable
	return pol
}

// validate checks matcher ranges and the policy body against the same rules
// the daemon's live policy stream enforces.
func (p PolicySpec) validate(hosts int) error {
	for _, h := range []struct {
		name string
		v    *int
	}{{"src_host", p.SrcHost}, {"dst_host", p.DstHost}} {
		if h.v != nil && (*h.v < 0 || *h.v >= hosts) {
			return fmt.Errorf("%s %d outside [0,%d)", h.name, *h.v, hosts)
		}
	}
	// Policy.Validate deliberately skips the backend name (runtime surfaces
	// must fail open mid-stream), but a config file is a surface that can say
	// no, so reject typos with a suggestion here.
	if _, err := core.ParseBackend(p.Backend); err != nil {
		return err
	}
	return p.policy().Validate()
}

// Check is one expected-invariant assertion over a scenario's aggregated
// per-scheme metrics: the named metric must lie in [Min, Max] (either bound
// optional). Checks express what must hold for the scenario to be *valid* —
// traffic flowed, the auditor stayed clean, drops stayed at zero — as
// opposed to the baseline diff, which tracks drift in what the numbers *are*.
type Check struct {
	// Scheme restricts the check to one scheme key ("cubic", "dctcp",
	// "acdc"); empty applies it to every scheme the scenario runs.
	Scheme string `json:"scheme,omitempty"`
	// Backend restricts the check to runs whose effective enforcement backend
	// (suite override > spec > dctcp-cut default) matches; empty applies it
	// under every backend. Mechanism-specific invariants (e.g. "the RWND
	// rewrite counter moved") only hold for the mechanism that implements
	// them, so they pin themselves here instead of failing the others.
	Backend string `json:"backend,omitempty"`
	// Metric is the metric key (see runner.go for the namespace).
	Metric string   `json:"metric"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`
}

// bound formats the check's interval for reports.
func (c Check) bound() string {
	switch {
	case c.Min != nil && c.Max != nil:
		return fmt.Sprintf("[%g, %g]", *c.Min, *c.Max)
	case c.Min != nil:
		return fmt.Sprintf("≥ %g", *c.Min)
	case c.Max != nil:
		return fmt.Sprintf("≤ %g", *c.Max)
	default:
		return "(unbounded)"
	}
}

// Adjust is the smoke-mode override set: any non-zero field replaces the
// spec's full-mode value so CI can run the whole catalog at a fraction of
// the cost while keeping the same shape.
type Adjust struct {
	Hosts   int      `json:"hosts,omitempty"`
	Trials  int      `json:"trials,omitempty"`
	Warmup  Duration `json:"warmup,omitempty"`
	Measure Duration `json:"measure,omitempty"`
	// Workloads, when non-empty, replaces the workload list wholesale (for
	// scaling element fan-ins along with the host count).
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Fabric, when non-empty, replaces the fabric fault-domain plan (fault
	// times usually need rescaling along with the warmup/measure windows).
	Fabric string `json:"fabric,omitempty"`
	// Policies, when non-empty, replaces the policy list wholesale (host
	// matchers usually need rescaling along with the host count).
	Policies []PolicySpec `json:"policies,omitempty"`
}

// Spec is one declarative scenario: a topology, a workload mix, an optional
// fault/restart plan, the schemes to run it under, and the invariant checks
// that must hold. Specs are plain data — JSON-serializable so scenarios can
// live in small config files as well as in the built-in catalog.
type Spec struct {
	// Name is the scenario's catalog key (kebab-case).
	Name string `json:"name"`
	// Title is the one-line human description.
	Title string `json:"title,omitempty"`
	// Paper names the figure/section this scenario generalizes.
	Paper string `json:"paper,omitempty"`

	Topo      TopoSpec       `json:"topo"`
	Workloads []WorkloadSpec `json:"workloads"`
	// Policies are per-flow differentiation policies installed on every
	// AC/DC vSwitch before traffic starts (no effect on other schemes).
	Policies []PolicySpec `json:"policies,omitempty"`

	// Schemes are the enforcement configurations to compare: "cubic",
	// "dctcp", "acdc" (default: all three).
	Schemes []string `json:"schemes,omitempty"`
	// MTU is the guest MTU (default 9000, the testbed's jumbo frames).
	MTU int `json:"mtu,omitempty"`
	// MinRwndBytes overrides AC/DC's RWND floor (the §5.2 byte-granularity
	// knob; 0 keeps core.DefaultConfig's floor).
	MinRwndBytes int64 `json:"min_rwnd_bytes,omitempty"`
	// Backend selects the enforcement backend on every AC/DC vSwitch
	// ("" = dctcp-cut; see core.BackendNames). SuiteConfig.Backend overrides
	// it suite-wide for head-to-head mechanism comparisons.
	Backend string `json:"backend,omitempty"`

	// Faults is a fault profile in faults.Parse syntax ("loss",
	// "drop=0.01,jitter=50us"); empty injects nothing.
	Faults string `json:"faults,omitempty"`
	// Restart is a vSwitch restart plan in faults.ParseRestart syntax
	// ("warm@1ms,every=5ms"); empty leaves the restart machinery cold.
	Restart string `json:"restart,omitempty"`
	// Fabric is a fabric fault-domain plan in faults.ParseDomains syntax
	// ("switch-down@25ms,switch=p3-tor1,for=5ms"); empty leaves the link
	// lifecycle machinery cold. Times are absolute simulation times, so plans
	// are written against the warmup+measure window.
	Fabric string `json:"fabric,omitempty"`
	// Audit, when true, attaches the invariant auditor (internal/audit) to
	// every AC/DC vSwitch and exports audit_violations as a metric.
	Audit bool `json:"audit,omitempty"`

	// Trials is how many seeds to run per scheme (default 1); trial t uses
	// seed base+t and metrics are aggregated across trials.
	Trials int `json:"trials,omitempty"`
	// Warmup runs before measurement starts (default 20ms simulated).
	Warmup Duration `json:"warmup,omitempty"`
	// Measure is the measurement window (default 50ms simulated).
	Measure Duration `json:"measure,omitempty"`

	Checks []Check `json:"checks,omitempty"`
	// Smoke, when non-nil, overrides fields in smoke mode (reduced CI runs).
	Smoke *Adjust `json:"smoke,omitempty"`
}

// SchemeKeys are the recognized scheme names, in report order.
var SchemeKeys = []string{"cubic", "dctcp", "acdc"}

// withDefaults fills unset fields.
func (s Spec) withDefaults() Spec {
	if len(s.Schemes) == 0 {
		s.Schemes = append([]string(nil), SchemeKeys...)
	}
	if s.MTU == 0 {
		s.MTU = 9000
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Warmup == 0 {
		s.Warmup = Duration(20 * sim.Millisecond)
	}
	if s.Measure == 0 {
		s.Measure = Duration(50 * sim.Millisecond)
	}
	return s
}

// ForSmoke returns the spec with its Smoke overrides applied (and defaults
// filled); without a Smoke block only Trials is forced to 1. The scenario
// keeps its name, so smoke results are baselined under a separate mode key
// rather than a separate catalog.
func (s Spec) ForSmoke() Spec {
	s = s.withDefaults()
	s.Trials = 1
	a := s.Smoke
	if a == nil {
		return s
	}
	if a.Hosts > 0 {
		s.Topo.Hosts = a.Hosts
	}
	if a.Trials > 0 {
		s.Trials = a.Trials
	}
	if a.Warmup > 0 {
		s.Warmup = a.Warmup
	}
	if a.Measure > 0 {
		s.Measure = a.Measure
	}
	if len(a.Workloads) > 0 {
		s.Workloads = a.Workloads
	}
	if len(a.Policies) > 0 {
		s.Policies = a.Policies
	}
	if a.Fabric != "" {
		s.Fabric = a.Fabric
	}
	return s
}

// Validate checks the spec for structural errors: unknown kinds or schemes,
// malformed fault/restart plans, out-of-range host references. It is run on
// every catalog entry by the package tests and on every loaded config file
// before a suite run.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	hosts, err := s.hostCount()
	if err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario %s: no workloads", s.Name)
	}
	for _, k := range s.Schemes {
		if k != "cubic" && k != "dctcp" && k != "acdc" {
			return fmt.Errorf("scenario %s: unknown scheme %q (have %s)",
				s.Name, k, strings.Join(SchemeKeys, ", "))
		}
	}
	if _, err := core.ParseBackend(s.Backend); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	for i, w := range s.Workloads {
		if err := w.validate(s.Topo.Kind, hosts); err != nil {
			return fmt.Errorf("scenario %s: workload %d: %v", s.Name, i, err)
		}
	}
	for i, p := range s.Policies {
		if err := p.validate(hosts); err != nil {
			return fmt.Errorf("scenario %s: policy %d: %v", s.Name, i, err)
		}
	}
	if s.Faults != "" {
		if _, err := faults.Parse(s.Faults); err != nil {
			return fmt.Errorf("scenario %s: %v", s.Name, err)
		}
	}
	if s.Restart != "" {
		if _, err := faults.ParseRestart(s.Restart); err != nil {
			return fmt.Errorf("scenario %s: %v", s.Name, err)
		}
	}
	if s.Fabric != "" {
		if _, err := faults.ParseDomains(s.Fabric); err != nil {
			return fmt.Errorf("scenario %s: %v", s.Name, err)
		}
	}
	for _, c := range s.Checks {
		if c.Metric == "" {
			return fmt.Errorf("scenario %s: check without a metric", s.Name)
		}
		if c.Scheme != "" && !contains(s.Schemes, c.Scheme) {
			return fmt.Errorf("scenario %s: check on scheme %q the scenario does not run", s.Name, c.Scheme)
		}
		if _, err := core.ParseBackend(c.Backend); err != nil {
			return fmt.Errorf("scenario %s: check %s: %v", s.Name, c.Metric, err)
		}
		if c.Min != nil && c.Max != nil && *c.Min > *c.Max {
			return fmt.Errorf("scenario %s: check %s has min %g > max %g", s.Name, c.Metric, *c.Min, *c.Max)
		}
	}
	if s.Smoke != nil {
		sm := s.ForSmoke()
		sm.Smoke = nil // the smoke variant is validated exactly once
		if err := sm.Validate(); err != nil {
			return fmt.Errorf("scenario %s (smoke): %v", s.Name, err)
		}
	}
	return nil
}

// hostCount resolves the topology's addressable host count.
func (s Spec) hostCount() (int, error) {
	switch s.Topo.Kind {
	case "star":
		if s.Topo.Hosts < 2 {
			return 0, fmt.Errorf("star needs ≥ 2 hosts, have %d", s.Topo.Hosts)
		}
		return s.Topo.Hosts, nil
	case "dumbbell":
		if s.Topo.Hosts < 1 {
			return 0, fmt.Errorf("dumbbell needs ≥ 1 pair, have %d", s.Topo.Hosts)
		}
		return 2 * s.Topo.Hosts, nil
	case "parkinglot":
		return 6, nil // fixed shape: 1 receiver + 5 senders
	case "fattree":
		cfg := topo.FatTreeConfig{K: s.Topo.K, HostsPerTor: s.Topo.HostsPerTor}
		if k := s.Topo.K; k != 0 && (k < 2 || k%2 != 0) {
			return 0, fmt.Errorf("fattree K must be even and ≥ 2, have %d", k)
		}
		if s.Topo.HostsPerTor < 0 {
			return 0, fmt.Errorf("fattree hosts_per_tor must be ≥ 0, have %d", s.Topo.HostsPerTor)
		}
		return cfg.Hosts(), nil
	default:
		return 0, fmt.Errorf("unknown topo kind %q (want star, dumbbell, parkinglot, fattree)", s.Topo.Kind)
	}
}

// validate checks one workload element against the topology.
func (w WorkloadSpec) validate(topoKind string, hosts int) error {
	switch w.Kind {
	case "bulk-pairs":
		if topoKind != "dumbbell" {
			return fmt.Errorf("bulk-pairs needs a dumbbell topology")
		}
	case "incast", "partagg", "flash-crowd":
		if w.Senders < 1 {
			return fmt.Errorf("%s needs senders ≥ 1", w.Kind)
		}
		if w.Senders+1 > hosts {
			return fmt.Errorf("%s: %d senders + receiver exceed %d hosts", w.Kind, w.Senders, hosts)
		}
	case "prober":
		if w.From == w.To {
			return fmt.Errorf("prober needs distinct endpoints")
		}
		if w.From < 0 || w.To < 0 || w.From >= hosts || w.To >= hosts {
			return fmt.Errorf("prober endpoints %d→%d outside [0,%d)", w.From, w.To, hosts)
		}
	case "stride":
		n := w.Hosts
		if n == 0 {
			n = hosts
		}
		if n > hosts {
			return fmt.Errorf("stride over %d hosts exceeds topology's %d", n, hosts)
		}
		// Stride wires host i's mice to (i+8) mod n and background to
		// (i+1..4) mod n; n must not map any host onto itself.
		if n <= 4 || n == 8 {
			return fmt.Errorf("stride needs n > 4 and n ≠ 8 (self-connections), have %d", n)
		}
	case "trace":
		if w.Dist != "web-search" && w.Dist != "data-mining" {
			return fmt.Errorf("trace dist %q (want web-search or data-mining)", w.Dist)
		}
		n := w.Hosts
		if n == 0 {
			n = hosts
		}
		if n < 2 || n > hosts {
			return fmt.Errorf("trace over %d hosts (topology has %d)", n, hosts)
		}
	case "tenant-churn":
		cfg := TenantChurnConfigOf(w)
		if cfg.Hosts() > hosts {
			return fmt.Errorf("tenant-churn needs %d hosts, topology has %d", cfg.Hosts(), hosts)
		}
	default:
		return fmt.Errorf("unknown workload kind %q", w.Kind)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// LoadSpecs reads scenario specs from a JSON config file: either a single
// spec object or an array of them. Every spec is validated.
func LoadSpecs(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	return ParseSpecs(data)
}

// ParseSpecs decodes and validates one spec or an array of specs.
func ParseSpecs(data []byte) ([]Spec, error) {
	var many []Spec
	if err := json.Unmarshal(data, &many); err != nil {
		var one Spec
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			return nil, fmt.Errorf("scenario: config is neither a spec nor a spec array: %v", err)
		}
		many = []Spec{one}
	}
	for _, s := range many {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return many, nil
}
