package audit

import (
	"strings"
	"testing"

	"acdc/internal/core"
	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// auditVSwitch builds a real vSwitch (paper defaults: MarkECT, StripECN,
// EnforceRwnd) with an attached auditor, for the packet-level rules that
// need v.Cfg and v.Metrics.
func auditVSwitch(t *testing.T, cfg Config) (*core.VSwitch, *Auditor) {
	t.Helper()
	s := sim.New(1)
	h := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	v := core.Attach(s, h, core.DefaultConfig())
	return v, Attach(v, cfg)
}

func key() core.FlowKey {
	return core.FlowKey{
		Src: packet.MakeAddr(10, 0, 0, 1), Dst: packet.MakeAddr(10, 0, 0, 2),
		SPort: 1000, DPort: 2000,
	}
}

// goodAck is a baseline AckEvent that violates nothing; each rule's case
// perturbs exactly one aspect of it.
func goodAck() core.AckEvent {
	return core.AckEvent{
		Key:        key(),
		PrevSndUna: 100, PrevSndNxt: 200, SndUna: 150, SndNxt: 200,
		HaveFeedback: true, CreditedTotal: 1000, CreditedMarked: 400,
		Alpha: 0.5, AlphaUpdated: true, AlphaFrac: 0.4,
		CwndBytes: 20000, MinRwnd: 8960, WScale: 7, WScaleKnown: true,
		Enforce: true, Enforced: 20000,
		OrigWnd: 500, NewWnd: 156, Overwrote: true,
	}
}

func tcpPkt(wnd uint16, ecn packet.ECN, payload int) *packet.Packet {
	return packet.Build(packet.MakeAddr(10, 0, 0, 2), packet.MakeAddr(10, 0, 0, 1),
		ecn, packet.TCPFields{
			SrcPort: 2000, DstPort: 1000, Seq: 1, Ack: 1,
			Flags: packet.FlagACK, Window: wnd,
		}, payload)
}

// TestSelfTestCorpus seeds one deliberate violation of every rule and checks
// that the auditor catches each one — and nothing else.
func TestSelfTestCorpus(t *testing.T) {
	cases := []struct {
		rule   Rule
		inject func(v *core.VSwitch, a *Auditor)
	}{
		{RuleRwndWidened, func(v *core.VSwitch, a *Auditor) {
			// Ingress ACK whose window field grew across the traversal.
			p := tcpPkt(200, packet.NotECT, 0)
			pre := v.CapturePre(p)
			pre.Wnd = 100
			a.PacketEvent(v, core.AuditIngress, pre, p, nil, true)
		}},
		{RuleRwndExceeds, func(v *core.VSwitch, a *Auditor) {
			// Enforcement wrote a field that descales far beyond the window.
			e := goodAck()
			e.NewWnd = 400 // 400<<7 = 51200 > enforced 20000
			a.AckEvent(v, e)
		}},
		{RuleECTMissing, func(v *core.VSwitch, a *Auditor) {
			// Egress data segment left without an ECN-capable codepoint.
			p := tcpPkt(500, packet.NotECT, 1000)
			pre := v.CapturePre(p)
			a.PacketEvent(v, core.AuditEgress, pre, p, nil, true)
		}},
		{RuleCELeaked, func(v *core.VSwitch, a *Auditor) {
			// CE made it through to the guest despite StripECN.
			p := tcpPkt(500, packet.CE, 1000)
			pre := v.CapturePre(p)
			a.PacketEvent(v, core.AuditIngress, pre, p, nil, true)
		}},
		{RuleFeedbackCred, func(v *core.VSwitch, a *Auditor) {
			// Credited more marked bytes than delivered bytes.
			e := goodAck()
			e.CreditedMarked = e.CreditedTotal + 1
			a.AckEvent(v, e)
		}},
		{RuleAlphaRange, func(v *core.VSwitch, a *Auditor) {
			e := goodAck()
			e.Alpha = 1.5
			a.AckEvent(v, e)
		}},
		{RuleCutFactor, func(v *core.VSwitch, a *Auditor) {
			// The β>1 bug mechanism: factor above 1 grows the window on
			// congestion.
			a.CutEvent(v, core.CutEvent{
				Key: key(), Alg: "dctcp", Alpha: 0.5, Beta: 3,
				Factor: 1.25, PrevCwnd: 20000, NewCwnd: 25000,
			})
		}},
		{RuleVCwndRange, func(v *core.VSwitch, a *Auditor) {
			e := goodAck()
			e.CwndBytes = float64(e.MinRwnd) / 2
			a.AckEvent(v, e)
		}},
		{RuleSeqOrder, func(v *core.VSwitch, a *Auditor) {
			e := goodAck()
			e.SndUna = e.PrevSndUna - 1 // snd_una regressed
			a.AckEvent(v, e)
		}},
		{RulePoliceWindow, func(v *core.VSwitch, a *Auditor) {
			// Dropped a segment that fit the enforced window plus slack.
			a.PoliceEvent(v, core.PoliceEvent{
				Key: key(), SegEnd: 15000, SndUna: 0,
				Enforced: 20000, Slack: 2000, Dropped: true,
			})
		}},
		{RuleResyncRewrite, func(v *core.VSwitch, a *Auditor) {
			e := goodAck()
			e.Resyncing = true // conservative mode must not rewrite
			a.AckEvent(v, e)
		}},
	}
	for _, tc := range cases {
		t.Run(string(tc.rule), func(t *testing.T) {
			var lines []string
			v, a := auditVSwitch(t, Config{Logf: func(f string, args ...any) {
				lines = append(lines, f)
			}})
			tc.inject(v, a)
			if got := a.Count(tc.rule); got != 1 {
				t.Fatalf("rule %s: violations = %d, want 1 (all: %v)",
					tc.rule, got, a.Violations())
			}
			if a.Total() != 1 {
				t.Fatalf("rule %s tripped other rules too: %v", tc.rule, a.Violations())
			}
			vio := a.Violations()
			if len(vio) != 1 || !strings.Contains(vio[0], string(tc.rule)) {
				t.Fatalf("violation log %v does not name rule %s", vio, tc.rule)
			}
			// The lazy counter must have joined the registry under the
			// audit_violations_total{rule=...} name.
			name := "audit_violations_total{rule=" + string(tc.rule) + "}"
			if got := v.Metrics.Snapshot().Counters[name]; got != 1 {
				t.Fatalf("registry counter %s = %d, want 1", name, got)
			}
		})
	}
}

// TestCleanEventsNoViolations runs the baseline event through every hook and
// expects silence — and, because the counters are lazy, a registry with no
// audit_* names at all.
func TestCleanEventsNoViolations(t *testing.T) {
	v, a := auditVSwitch(t, Config{})
	a.AckEvent(v, goodAck())
	a.CutEvent(v, core.CutEvent{
		Key: key(), Alg: "dctcp", Alpha: 0.5, Beta: 1,
		Factor: 0.75, PrevCwnd: 20000, NewCwnd: 15000,
	})
	a.PoliceEvent(v, core.PoliceEvent{
		Key: key(), SegEnd: 30000, SndUna: 0,
		Enforced: 20000, Slack: 2000, Dropped: true,
	})
	p := tcpPkt(100, packet.ECT0, 1000)
	a.PacketEvent(v, core.AuditEgress, v.CapturePre(p), p, nil, true)
	q := tcpPkt(100, packet.NotECT, 0)
	a.PacketEvent(v, core.AuditIngress, v.CapturePre(q), q, nil, true)
	if a.Total() != 0 {
		t.Fatalf("clean events produced violations: %v", a.Violations())
	}
	for _, name := range v.Metrics.Registry().Names() {
		if strings.HasPrefix(name, "audit_") {
			t.Fatalf("clean run registered audit counter %s", name)
		}
	}
}

// TestFailOpenWaivesPacketRules: a traversal that took a fail-open path (the
// fail_open_total counter moved) legitimately passes packets untouched, so
// packet invariants must not fire.
func TestFailOpenWaivesPacketRules(t *testing.T) {
	v, a := auditVSwitch(t, Config{Panic: true})
	p := tcpPkt(500, packet.CE, 1000) // CE toward the guest...
	pre := v.CapturePre(p)
	v.Metrics.FailOpen.Inc() // ...but the traversal failed open
	a.PacketEvent(v, core.AuditIngress, pre, p, nil, true)
}

// TestNonAuditablePacketsIgnored: packets the datapath itself would fail open
// on (non-TCP, malformed) carry Auditable=false and are exempt.
func TestNonAuditablePacketsIgnored(t *testing.T) {
	v, a := auditVSwitch(t, Config{Panic: true})
	a.PacketEvent(v, core.AuditIngress, core.PacketPre{}, tcpPkt(1, packet.CE, 0), nil, true)
}

// TestPanicMode: with Panic set the first violation panics with a message
// naming the rule.
func TestPanicMode(t *testing.T) {
	v, a := auditVSwitch(t, Config{Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, string(RuleAlphaRange)) {
			t.Fatalf("panic %v does not name the rule", r)
		}
	}()
	e := goodAck()
	e.Alpha = -0.1
	a.AckEvent(v, e)
}

// TestMaxLogBounds: counting continues past MaxLog but logging stops.
func TestMaxLogBounds(t *testing.T) {
	var n int
	v, a := auditVSwitch(t, Config{MaxLog: 2, Logf: func(string, ...any) { n++ }})
	e := goodAck()
	e.Alpha = 2
	for i := 0; i < 5; i++ {
		a.AckEvent(v, e)
	}
	if a.Count(RuleAlphaRange) != 5 {
		t.Fatalf("count = %d, want 5", a.Count(RuleAlphaRange))
	}
	if n != 2 || len(a.Violations()) != 2 {
		t.Fatalf("logged %d lines, %d kept; want 2 each", n, len(a.Violations()))
	}
}

// TestNilRegistry: an auditor over a metrics-disabled vSwitch still counts
// in its own atomics.
func TestNilRegistry(t *testing.T) {
	a := New((*metrics.Registry)(nil), Config{Logf: func(string, ...any) {}})
	a.CutEvent(nil, core.CutEvent{Key: key(), Alg: "dctcp", Factor: 1.5})
	if a.Count(RuleCutFactor) != 1 {
		t.Fatalf("count = %d, want 1", a.Count(RuleCutFactor))
	}
}

// TestSamplingChecksSubsetOfPacketEvents pins the 1-in-N budget: with
// Sample=4, only a quarter of violating ACK events are counted.
func TestSamplingChecksSubsetOfPacketEvents(t *testing.T) {
	v, a := auditVSwitch(t, Config{Sample: 4, MaxLog: 1})
	const n = 400
	for i := 0; i < n; i++ {
		e := goodAck()
		e.Alpha = 1.5 // violates RuleAlphaRange every time
		a.AckEvent(v, e)
	}
	got := a.Count(RuleAlphaRange)
	if got != n/4 {
		t.Fatalf("Sample=4 counted %d of %d violating events, want %d", got, n, n/4)
	}
}

// TestSamplingAlwaysChecksStateTransitions pins the safety property sampling
// must not cost: cut and policing events carry the hostile-β class of defect
// and are checked regardless of Sample.
func TestSamplingAlwaysChecksStateTransitions(t *testing.T) {
	v, a := auditVSwitch(t, Config{Sample: 1 << 20, MaxLog: 1})
	const n = 50
	for i := 0; i < n; i++ {
		a.CutEvent(v, core.CutEvent{
			Key: key(), Alg: "dctcp", Alpha: 0.5, Beta: 3,
			Factor: 1.25, PrevCwnd: 20000, NewCwnd: 25000,
		})
		a.PoliceEvent(v, core.PoliceEvent{
			Key: key(), SegEnd: 15000, SndUna: 0,
			Enforced: 20000, Slack: 2000, Dropped: true,
		})
	}
	if got := a.Count(RuleCutFactor); got != n {
		t.Fatalf("cut events sampled away: %d of %d counted", got, n)
	}
	if got := a.Count(RulePoliceWindow); got != n {
		t.Fatalf("policing events sampled away: %d of %d counted", got, n)
	}
}
