// Package audit is the datapath invariant oracle: a pluggable checker that
// attaches to a core.VSwitch and verifies, on every packet and enforcement
// state transition, the properties the paper's whole value proposition rests
// on (§3.1–§3.4, Equation 1, Figure 5):
//
//   - the RWND field is never rewritten wider, and a rewrite never exceeds
//     min(original RWND, virtual CWND) under the learned window scale;
//   - egress data segments leave ECN-capable (ECT) when marking is on;
//   - CE never leaks to the guest when stripping is on;
//   - the cumulative PACK/FACK feedback credited into the α window is
//     monotone with marked ≤ total;
//   - α ∈ [0,1] and the Eq. 1 marked fraction ∈ [0,1];
//   - the multiplicative-decrease factor ∈ [0,1], and for DCTCP with
//     β ∈ [0,1] within [1−α, 1−α/2];
//   - the virtual window stays within [minRwnd, 65535≪wscale];
//   - snd_una ≤ snd_nxt and both are monotone;
//   - policing never drops an in-window segment;
//   - resyncing (conservative-mode) flows are never rewritten or policed.
//
// Violations increment per-rule audit_violations_total counters in the
// vSwitch's own metrics registry — lazily, so an audit-clean run's telemetry
// stays byte-identical to a run without the auditor — log the flow key and a
// packet summary, and optionally panic (test mode: the chaos and restart
// suites run with Panic set so any violation fails the build immediately).
//
// The auditor is an oracle, not a second enforcement path: it re-derives
// each invariant from the event data core hands it, so a regression in the
// enforcement code trips the corresponding rule instead of slipping through.
package audit

import (
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"

	"acdc/internal/core"
	"acdc/internal/metrics"
	"acdc/internal/packet"
)

// Rule names one audited invariant; the per-rule violation counter is
// audit_violations_total{rule=<Rule>}.
type Rule string

// The audit rules, mapped to their paper sections in DESIGN.md §5b.
const (
	RuleRwndWidened   Rule = "rwnd_widened"     // §3.3: RWND rewritten wider than the guest advertised
	RuleRwndExceeds   Rule = "rwnd_exceeds"     // §3.3: rewrite above min(orig, vCWND) under wscale
	RuleECTMissing    Rule = "ect_missing"      // §3.2: egress data segment left without ECT
	RuleCELeaked      Rule = "ce_leaked"        // §3.2: CE reached the guest despite stripping
	RuleFeedbackCred  Rule = "feedback_credit"  // §3.2: non-monotone or marked>total feedback credited
	RuleAlphaRange    Rule = "alpha_range"      // Fig 5: α or its Eq. 1 input outside [0,1]
	RuleCutFactor     Rule = "cut_factor"       // Eq. 1: cut factor outside [1−α, 1−α/2] (β∈[0,1])
	RuleVCwndRange    Rule = "vcwnd_range"      // §3.3: virtual CWND outside [minRwnd, 65535≪wscale]
	RuleSeqOrder      Rule = "seq_order"        // §3.1: snd_una/snd_nxt regressed or crossed
	RulePoliceWindow  Rule = "police_in_window" // §3.3: policing dropped an in-window segment
	RuleResyncRewrite Rule = "resync_rewrite"   // resync.go: conservative-mode flow enforced anyway
)

// Rules lists every audited invariant (stable order, for self-tests and docs).
func Rules() []Rule {
	return []Rule{
		RuleRwndWidened, RuleRwndExceeds, RuleECTMissing, RuleCELeaked,
		RuleFeedbackCred, RuleAlphaRange, RuleCutFactor, RuleVCwndRange,
		RuleSeqOrder, RulePoliceWindow, RuleResyncRewrite,
	}
}

// eps absorbs float rounding in the Eq. 1 bound checks.
const eps = 1e-9

// Config parameterizes an auditor.
type Config struct {
	// Panic makes the first violation panic with the formatted report (test
	// mode: chaos suites run with this set so CI fails loudly).
	Panic bool
	// Logf receives one formatted line per logged violation. Nil logs to the
	// standard logger (stderr).
	Logf func(format string, args ...any)
	// MaxLog bounds the number of violations logged (counters keep counting
	// past it). 0 means the default of 32.
	MaxLog int
	// Sample, when > 1, checks only every Sample-th packet and ACK event —
	// the long-lived service mode runs the auditor continuously, and 1-in-N
	// sampling keeps its cost a budget line instead of a tax on every
	// packet. State-transition events (window cuts, policing drops) are
	// ALWAYS checked: they are rare, and they carry the invariants a
	// sampled packet stream could miss entirely (a hostile β shows up in
	// every cut, not in every packet). 0 or 1 means check everything.
	Sample int
}

// Auditor implements core.Auditor: it checks every event against the rule
// set and records violations. One Auditor audits one VSwitch (its counters
// live in that vSwitch's registry). All methods are concurrency-safe.
type Auditor struct {
	cfg Config

	// Per-rule violation counts: lazy registry counters for telemetry plus
	// plain atomics so tests (and DisableMetrics configs) can still read
	// exact counts.
	lazy  map[Rule]*metrics.LazyCounter
	local map[Rule]*atomic.Int64
	total atomic.Int64
	seq   atomic.Uint64 // sampling sequence for PacketEvent/AckEvent

	mu     sync.Mutex
	logged int
	recent []string // first MaxLog formatted violations, for tests/reports
}

// Attach builds an Auditor over v's metrics registry and installs it as the
// vSwitch's audit hook. Call before traffic flows.
func Attach(v *core.VSwitch, cfg Config) *Auditor {
	a := New(v.Metrics.Registry(), cfg)
	v.Audit = a
	return a
}

// New builds an Auditor whose violation counters register (lazily) in reg.
// reg may be nil: counting then happens only in the auditor's own atomics.
func New(reg *metrics.Registry, cfg Config) *Auditor {
	if cfg.MaxLog == 0 {
		cfg.MaxLog = 32
	}
	a := &Auditor{cfg: cfg,
		lazy:  make(map[Rule]*metrics.LazyCounter, len(Rules())),
		local: make(map[Rule]*atomic.Int64, len(Rules()))}
	for _, r := range Rules() {
		a.lazy[r] = reg.Lazy("audit_violations_total{rule=" + string(r) + "}")
		a.local[r] = new(atomic.Int64)
	}
	return a
}

// violate records one violation of rule. The formatted report includes the
// rule name so a panic or log line is self-describing.
func (a *Auditor) violate(rule Rule, format string, args ...any) {
	a.local[rule].Add(1)
	a.total.Add(1)
	a.lazy[rule].Inc()
	msg := fmt.Sprintf("audit: %s: %s", rule, fmt.Sprintf(format, args...))
	if a.cfg.Panic {
		panic(msg)
	}
	a.mu.Lock()
	if a.logged < a.cfg.MaxLog {
		a.logged++
		a.recent = append(a.recent, msg)
		a.mu.Unlock()
		if a.cfg.Logf != nil {
			a.cfg.Logf("%s", msg)
		} else {
			log.Print(msg)
		}
		return
	}
	a.mu.Unlock()
}

// sampled reports whether this packet/ACK event falls in the 1-in-Sample
// check budget. Atomic so concurrent datapaths share one sequence.
func (a *Auditor) sampled() bool {
	if a.cfg.Sample <= 1 {
		return true
	}
	return a.seq.Add(1)%uint64(a.cfg.Sample) == 0
}

// Total returns the number of violations recorded across all rules.
func (a *Auditor) Total() int64 { return a.total.Load() }

// Count returns the number of violations of one rule.
func (a *Auditor) Count(rule Rule) int64 {
	c, ok := a.local[rule]
	if !ok {
		return 0
	}
	return c.Load()
}

// Violations returns the logged violation reports (bounded by MaxLog).
func (a *Auditor) Violations() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.recent))
	copy(out, a.recent)
	return out
}

// --- core.Auditor implementation ---

// PacketEvent checks the packet-level invariants: no window widening on the
// packet that traversed the vSwitch, ECT on egress, no CE toward the guest.
func (a *Auditor) PacketEvent(v *core.VSwitch, dir core.AuditDir, pre core.PacketPre,
	out, extra *packet.Packet, outIsInput bool) {
	if !pre.Auditable {
		return
	}
	if !a.sampled() {
		return
	}
	if v.Metrics.FailOpen.Value() != pre.FailOpenBefore {
		// The traversal took a documented fail-open path (e.g. flow table at
		// capacity): the packet legitimately passed through untouched.
		return
	}
	switch dir {
	case core.AuditEgress:
		if v.Cfg.MarkECT {
			a.checkECT(out, pre)
			a.checkECT(extra, pre)
		}
	case core.AuditIngress:
		if out == nil {
			return // consumed (FACK): nothing reaches the guest
		}
		ip := out.IP()
		if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
			return
		}
		t := ip.TCP()
		if !t.Valid() {
			return
		}
		if outIsInput && t.Window() > pre.Wnd {
			a.violate(RuleRwndWidened,
				"%s: window %d rewritten wider to %d (flags %#x payload %d)",
				dir, pre.Wnd, t.Window(), pre.Flags, pre.Payload)
		}
		if v.Cfg.StripECN && ip.ECN() == packet.CE {
			a.violate(RuleCELeaked,
				"%s: CE reached the guest (in ECN %v, flags %#x payload %d)",
				dir, pre.ECN, pre.Flags, pre.Payload)
		}
	}
}

// checkECT flags a valid egress TCP packet that left without an ECN-capable
// codepoint while §3.2 marking is on.
func (a *Auditor) checkECT(p *packet.Packet, pre core.PacketPre) {
	if p == nil {
		return
	}
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return
	}
	if ip.ECN() == packet.NotECT {
		a.violate(RuleECTMissing,
			"egress segment left NotECT with MarkECT on (flags %#x payload %d)",
			pre.Flags, pre.Payload)
	}
}

// AckEvent checks the sender-module invariants after one ACK pass.
func (a *Auditor) AckEvent(v *core.VSwitch, e core.AckEvent) {
	if !a.sampled() {
		return
	}
	// §3.1 connection tracking: absolute sequence state never regresses and
	// never inverts.
	if e.SndUna < e.PrevSndUna || e.SndNxt < e.PrevSndNxt || e.SndUna > e.SndNxt {
		a.violate(RuleSeqOrder,
			"%v: snd_una %d→%d snd_nxt %d→%d",
			e.Key, e.PrevSndUna, e.SndUna, e.PrevSndNxt, e.SndNxt)
	}
	// §3.2 feedback: the credited deltas must be sane — a ≥2^31 credit means
	// a cumulative regression (peer restart) was credited instead of
	// re-baselined; marked > total means an impossible report entered the α
	// window.
	if e.HaveFeedback {
		if e.CreditedTotal >= 1<<31 || e.CreditedMarked >= 1<<31 {
			a.violate(RuleFeedbackCred,
				"%v: non-monotone feedback credited (total +%d, marked +%d)",
				e.Key, e.CreditedTotal, e.CreditedMarked)
		} else if e.CreditedMarked > e.CreditedTotal {
			a.violate(RuleFeedbackCred,
				"%v: marked delta %d exceeds total delta %d",
				e.Key, e.CreditedMarked, e.CreditedTotal)
		}
	}
	// Figure 5 / Eq. 1: α and its input fraction live in [0,1].
	if math.IsNaN(e.Alpha) || e.Alpha < 0 || e.Alpha > 1 {
		a.violate(RuleAlphaRange, "%v: α = %v", e.Key, e.Alpha)
	}
	if e.AlphaUpdated && (math.IsNaN(e.AlphaFrac) || e.AlphaFrac < 0 || e.AlphaFrac > 1) {
		a.violate(RuleAlphaRange, "%v: Eq.1 marked fraction = %v", e.Key, e.AlphaFrac)
	}
	// §3.3: the virtual window is bounded below by the enforcement floor and
	// above by the largest value the RWND field can express.
	if math.IsNaN(e.CwndBytes) || math.IsInf(e.CwndBytes, 0) ||
		e.CwndBytes < float64(e.MinRwnd)-eps ||
		(e.WScaleKnown && e.CwndBytes > float64(int64(65535)<<e.WScale)+eps) {
		a.violate(RuleVCwndRange,
			"%v: vCWND %v outside [%d, 65535<<%d]",
			e.Key, e.CwndBytes, e.MinRwnd, e.WScale)
	}
	// §3.3 enforcement: a rewrite only ever narrows, and the written field,
	// descaled, never exceeds the enforced window (modulo the one-granule
	// floor the field encoding forces when enforced >> wscale rounds to 0).
	if e.Overwrote {
		if e.Resyncing {
			a.violate(RuleResyncRewrite,
				"%v: RWND rewritten while resyncing (%d→%d)",
				e.Key, e.OrigWnd, e.NewWnd)
		}
		if e.NewWnd > e.OrigWnd {
			a.violate(RuleRwndWidened,
				"%v: enforcement widened RWND %d→%d", e.Key, e.OrigWnd, e.NewWnd)
		}
		granule := int64(1) << e.WScale
		if scaled := int64(e.NewWnd) << e.WScale; scaled > e.Enforced && scaled > granule {
			a.violate(RuleRwndExceeds,
				"%v: wrote %d<<%d = %d > enforced %d",
				e.Key, e.NewWnd, e.WScale, scaled, e.Enforced)
		}
	}
}

// CutEvent checks one multiplicative decrease against Equation 1.
func (a *Auditor) CutEvent(v *core.VSwitch, e core.CutEvent) {
	if math.IsNaN(e.Factor) || e.Factor < -eps || e.Factor > 1+eps {
		a.violate(RuleCutFactor, "%v: cut factor %v outside [0,1] (α=%v β=%v loss=%v)",
			e.Key, e.Factor, e.Alpha, e.Beta, e.Loss)
		return
	}
	// Equation 1 for the DCTCP law with β ∈ [0,1]: 1−α ≤ factor ≤ 1−α/2.
	if e.Alg == "dctcp" && e.Beta >= 0 && e.Beta <= 1 &&
		e.Alpha >= 0 && e.Alpha <= 1 {
		if e.Factor < 1-e.Alpha-eps || e.Factor > 1-e.Alpha/2+eps {
			a.violate(RuleCutFactor,
				"%v: Eq.1 factor %v outside [1−α, 1−α/2] = [%v, %v] (β=%v)",
				e.Key, e.Factor, 1-e.Alpha, 1-e.Alpha/2, e.Beta)
		}
	}
}

// PoliceEvent checks that §3.3 policing only drops segments genuinely beyond
// the enforced window plus slack, and never polices a conservative-mode flow.
func (a *Auditor) PoliceEvent(v *core.VSwitch, e core.PoliceEvent) {
	if !e.Dropped {
		return
	}
	if e.Resyncing {
		a.violate(RulePoliceWindow,
			"%v: policed while resyncing (segEnd %d snd_una %d)",
			e.Key, e.SegEnd, e.SndUna)
		return
	}
	if e.SegEnd-e.SndUna <= e.Enforced+e.Slack {
		a.violate(RulePoliceWindow,
			"%v: dropped in-window segment: segEnd−snd_una %d ≤ enforced %d + slack %d",
			e.Key, e.SegEnd-e.SndUna, e.Enforced, e.Slack)
	}
}

var _ core.Auditor = (*Auditor)(nil)
