// Package stats provides the measurement primitives the evaluation harness
// uses: percentile/CDF summaries, Jain's fairness index, EWMAs, and
// windowed throughput meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations for percentile and CDF queries.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[len(s.xs)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation (0 if fewer than 2 obs).
func (s *Sample) Stddev() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Returns 0 on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	s.sort()
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s.xs[0]
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s.xs[n-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median is Percentile(50).
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDF returns up to points (x, F(x)) pairs summarizing the empirical CDF,
// suitable for plotting or table dumps.
func (s *Sample) CDF(points int) [][2]float64 {
	s.sort()
	n := len(s.xs)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points
		if idx > n {
			idx = n
		}
		out = append(out, [2]float64{s.xs[idx-1], float64(idx) / float64(n)})
	}
	return out
}

// FractionBelow returns the empirical P(X <= x).
func (s *Sample) FractionBelow(x float64) float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// Summary renders "p50=… p99=… p99.9=… max=…" with a unit divisor, e.g.
// pass 1e6 to print milliseconds from nanosecond observations.
func (s *Sample) Summary(div float64, unit string) string {
	return fmt.Sprintf("n=%d p50=%.3f%s p99=%.3f%s p99.9=%.3f%s max=%.3f%s",
		s.N(), s.Percentile(50)/div, unit, s.Percentile(99)/div, unit,
		s.Percentile(99.9)/div, unit, s.Max()/div, unit)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// JainFairness computes Jain's fairness index (sum x)^2 / (n * sum x^2),
// which is 1 for perfectly equal allocations and 1/n for a single hog.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// EWMA is an exponentially weighted moving average with weight g for new
// observations: v ← (1-g)·v + g·x. DCTCP's α estimator uses g = 1/16.
type EWMA struct {
	G     float64
	v     float64
	valid bool
}

// Update folds x into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.valid {
		e.v = x
		e.valid = true
	} else {
		e.v = (1-e.G)*e.v + e.G*x
	}
	return e.v
}

// Value returns the current average (0 before the first update).
func (e *EWMA) Value() float64 { return e.v }

// Valid reports whether at least one update occurred.
func (e *EWMA) Valid() bool { return e.valid }

// Meter measures throughput: bytes accumulated between marks.
type Meter struct {
	Bytes     int64
	startNS   int64
	lastNS    int64
	intervals []float64 // bits per second per Mark window
}

// NewMeter starts a meter at time now (ns).
func NewMeter(nowNS int64) *Meter {
	return &Meter{startNS: nowNS, lastNS: nowNS}
}

// Account adds n bytes at the current time (time is supplied at Mark).
func (m *Meter) Account(n int) { m.Bytes += int64(n) }

// Mark closes the current window at nowNS and records its average bit rate.
func (m *Meter) Mark(nowNS int64) {
	dt := nowNS - m.lastNS
	if dt <= 0 {
		return
	}
	bits := float64(m.Bytes) * 8
	m.intervals = append(m.intervals, bits/(float64(dt)/1e9))
	m.Bytes = 0
	m.lastNS = nowNS
}

// Rates returns the per-window bit rates recorded by Mark.
func (m *Meter) Rates() []float64 { return m.intervals }

// TotalRate returns the average bit rate from meter start to nowNS, counting
// both closed windows and the open one. Requires external byte total.
type TotalMeter struct {
	Bytes   int64
	StartNS int64
}

// Rate returns average bits/sec over [StartNS, nowNS].
func (t *TotalMeter) Rate(nowNS int64) float64 {
	dt := nowNS - t.StartNS
	if dt <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / (float64(dt) / 1e9)
}

// Gbps formats a bit rate in Gbit/s with 2 decimals.
func Gbps(bps float64) string { return fmt.Sprintf("%.2fGbps", bps/1e9) }

// Mbps formats a bit rate in Mbit/s with 1 decimal.
func Mbps(bps float64) string { return fmt.Sprintf("%.1fMbps", bps/1e6) }

// Table is a minimal fixed-width text table writer for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(cols ...string) *Table { return &Table{header: cols} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(vals ...any) {
	r := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			r[i] = fmt.Sprintf("%.3f", x)
		default:
			r[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, r)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < w[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
