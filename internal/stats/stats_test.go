package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 {
		t.Fatal("empty sample should return zeros")
	}
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 || !almost(s.Mean(), 3) {
		t.Fatalf("basics: n=%d min=%v max=%v mean=%v", s.N(), s.Min(), s.Max(), s.Mean())
	}
	if !almost(s.Median(), 3) {
		t.Fatalf("median = %v", s.Median())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	if !almost(s.Percentile(0), 1) || !almost(s.Percentile(100), 4) {
		t.Fatal("extremes wrong")
	}
	// p50 of 1..4 with linear interpolation: rank 1.5 → 2.5
	if !almost(s.Percentile(50), 2.5) {
		t.Fatalf("p50 = %v, want 2.5", s.Percentile(50))
	}
	if !almost(s.Percentile(25), 1.75) {
		t.Fatalf("p25 = %v, want 1.75", s.Percentile(25))
	}
}

func TestPercentileAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(1) // must re-sort
	if s.Min() != 1 {
		t.Fatal("sample did not resort after Add")
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.Add(2)
	if s.Stddev() != 0 {
		t.Fatal("stddev of single obs should be 0")
	}
	s.Add(4)
	s.Add(4)
	s.Add(4)
	s.Add(5)
	s.Add(5)
	s.Add(7)
	s.Add(9)
	if !almost(s.Stddev(), 2) {
		t.Fatalf("stddev = %v, want 2", s.Stddev())
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if !almost(cdf[9][1], 1.0) {
		t.Fatalf("last CDF point F=%v", cdf[9][1])
	}
	if !almost(cdf[0][0], 10) || !almost(cdf[0][1], 0.1) {
		t.Fatalf("first CDF point = %v", cdf[0])
	}
	if s.CDF(0) != nil {
		t.Fatal("CDF(0) should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if !almost(s.FractionBelow(5), 0.5) {
		t.Fatalf("F(5) = %v", s.FractionBelow(5))
	}
	if !almost(s.FractionBelow(0.5), 0) || !almost(s.FractionBelow(10), 1) {
		t.Fatal("tails wrong")
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1e6)
	got := s.Summary(1e6, "ms")
	if !strings.Contains(got, "p50=1.000ms") {
		t.Fatalf("Summary = %q", got)
	}
}

func TestJainFairness(t *testing.T) {
	if !almost(JainFairness([]float64{1, 1, 1, 1}), 1) {
		t.Fatal("equal allocation should be 1")
	}
	got := JainFairness([]float64{1, 0, 0, 0})
	if !almost(got, 0.25) {
		t.Fatalf("single hog of 4 = %v, want 0.25", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

// Property: Jain's index is always in (1/n, 1] for nonzero allocations and
// scale-invariant.
func TestJainProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1) // strictly positive
		}
		if len(xs) == 0 {
			return true
		}
		j := JainFairness(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * 7.5
		}
		return almost(j, JainFairness(scaled))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev-1e-9 || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{G: 0.5}
	if e.Valid() || e.Value() != 0 {
		t.Fatal("zero EWMA should be invalid")
	}
	e.Update(10)
	if !almost(e.Value(), 10) {
		t.Fatalf("first update = %v", e.Value())
	}
	e.Update(0)
	if !almost(e.Value(), 5) {
		t.Fatalf("second update = %v, want 5", e.Value())
	}
	// Converges toward a constant input.
	for i := 0; i < 100; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-6 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(0)
	m.Account(1250) // 10000 bits
	m.Mark(1e9)     // over 1s → 10 kbps
	m.Account(2500)
	m.Mark(2e9)
	rates := m.Rates()
	if len(rates) != 2 || !almost(rates[0], 10000) || !almost(rates[1], 20000) {
		t.Fatalf("rates = %v", rates)
	}
	// Zero-width window is ignored.
	m.Mark(2e9)
	if len(m.Rates()) != 2 {
		t.Fatal("zero-width window recorded")
	}
}

func TestTotalMeter(t *testing.T) {
	tm := TotalMeter{Bytes: 125_000_000, StartNS: 0}
	if !almost(tm.Rate(1e9), 1e9) {
		t.Fatalf("rate = %v, want 1e9", tm.Rate(1e9))
	}
	if tm.Rate(0) != 0 {
		t.Fatal("zero-span rate should be 0")
	}
}

func TestRateFormatting(t *testing.T) {
	if Gbps(9.87e9) != "9.87Gbps" {
		t.Fatalf("Gbps = %q", Gbps(9.87e9))
	}
	if Mbps(214.3e6) != "214.3Mbps" {
		t.Fatalf("Mbps = %q", Mbps(214.3e6))
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "tput")
	tb.Row("cubic", 1.98)
	tb.Row("dctcp", 2.0)
	s := tb.String()
	if !strings.Contains(s, "cubic") || !strings.Contains(s, "1.980") {
		t.Fatalf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}
