// Package daemon turns the batch simulator into a long-lived service: a
// continuously advancing simulation (wall-clock paced, with bounded catch-up)
// plus a localhost HTTP admin API for streaming per-flow policy updates,
// scraping metrics, checkpointing and warm-restarting vSwitches, and probing
// health. cmd/acdcd is the thin binary around it; internal/soak reuses the
// same machinery to hammer the control plane in tests.
//
// # Threading model
//
// The simulation is single-threaded by contract (internal/sim), so the
// daemon runs it on one dedicated goroutine — the sim loop — that alternates
// pacer advances with commands drained from a bounded queue. Admin handlers
// run on net/http's goroutines and touch the simulation in exactly two ways:
//
//   - Race-safe calls (InstallPolicy, SaveSnapshot, RestoreSnapshot, Detach,
//     Reattach, metrics/flow reads) go direct: the core layer makes these
//     safe against in-flight datapath batches.
//   - Everything that manipulates simulator timers (Restart) is marshaled
//     onto the sim loop through the command queue. A full queue is a
//     transient apply failure: enqueue retries with bounded backoff and only
//     then reports the overload to the client (HTTP 503).
//
// # Degradation
//
// The daemon degrades instead of dying: audit violations or a climbing
// fail-open counter flip readiness to "degraded" (HTTP 503 on /readyz with
// the reason) while the datapath, the admin API, and metrics keep serving.
package daemon

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/experiments"
	"acdc/internal/faults"
	"acdc/internal/metrics"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// Config parameterizes a daemon.
type Config struct {
	// Hosts is the star-topology size (default 4).
	Hosts int
	// Seed seeds the simulation (default 1).
	Seed int64
	// Scale is virtual nanoseconds advanced per wall nanosecond. Simulating
	// a 10G fabric in real time is far beyond one core, so the default runs
	// the virtual clock at 1/20 wall speed (0.05); operators size it to
	// their topology.
	Scale float64
	// MaxCatchUp bounds the virtual time replayed after a stall (default
	// 50ms virtual). Beyond it the pacer forgives lag — the daemon runs
	// slightly behind rather than freezing to replay.
	MaxCatchUp sim.Duration
	// Tick is the wall interval between pacer advances (default 2ms).
	Tick time.Duration
	// AuditSample attaches the datapath invariant auditor with 1-in-N
	// sampling (default 64; state transitions are always checked). 0 keeps
	// the default; negative disables auditing entirely.
	AuditSample int
	// FailOpenLimit is the fail_open_total count (summed over hosts) at
	// which readiness degrades (default 10000).
	FailOpenLimit int64
	// QueueDepth bounds the sim-loop command queue (default 64).
	QueueDepth int
	// Workload, when true, drives continuous background bulk traffic so the
	// service has live flows without an external driver (default off; the
	// binary turns it on).
	Workload bool
	// Backend selects the default enforcement backend on every vSwitch
	// ("" = dctcp-cut; see core.BackendNames). The binary validates the name
	// at startup with core.ParseBackend; an unknown name that slips through
	// anyway fails open to the default at Attach.
	Backend string
	// Tune, when set, adjusts the AC/DC datapath config (a private copy)
	// before the fabric is built — e.g. the soak harness shortens
	// IdleTimeout so churned flows age out within the run.
	Tune func(*core.Config)
	// Faults, when non-nil and enabled, installs a deterministic fault
	// injector on every link. Flip regimes later with SetFaultProfile.
	Faults *faults.Profile
	// Fabric, when non-empty, arms fabric fault domains (link/switch outages,
	// flaps, gray loss; see faults.ParseDomains) on the service topology.
	// Star link names are "h<i>.up"/"h<i>.down". Armed domains flip the
	// status report and /metrics into fabric mode (extra counters appear).
	Fabric []faults.FaultDomain
	// AdminToken, when non-empty, requires `Authorization: Bearer <token>`
	// on every mutating admin endpoint (the POST surface: policy, snapshot
	// save/restore, restart). Read-only probes stay open so health checks
	// and scrapes work unauthenticated. Empty leaves the API open —
	// acceptable only on a loopback bind, which cmd/acdcd enforces.
	AdminToken string
}

func (c Config) withDefaults() Config {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.MaxCatchUp <= 0 {
		c.MaxCatchUp = 50 * sim.Millisecond
	}
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.AuditSample == 0 {
		c.AuditSample = 64
	}
	if c.FailOpenLimit <= 0 {
		c.FailOpenLimit = 10000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// ErrBusy reports a command queue that stayed full through every retry — the
// sim loop is overloaded or stalled; the client should back off and retry.
var ErrBusy = errors.New("daemon: sim loop busy (command queue full)")

// ErrStopped reports a daemon that is shutting down.
var ErrStopped = errors.New("daemon: stopped")

// Daemon is one running service instance.
type Daemon struct {
	cfg   Config
	net   *topo.Net
	pacer *sim.Pacer

	cmds chan func()
	quit chan struct{}
	done chan struct{}

	started time.Time
	stopped atomic.Bool

	// Control-plane op counters (admin surface, not datapath metrics).
	policyUpdates  atomic.Int64
	policyRejects  atomic.Int64
	restarts       atomic.Int64
	enqueueRetries atomic.Int64
}

// New builds the daemon's simulated fabric (a star of cfg.Hosts hosts with
// AC/DC attached everywhere, DCTCP-marking switches) and its pacer. The sim
// loop does not run until Start.
func New(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	scheme := experiments.SchemeACDC(tcpstack.DefaultConfig().MTU, "cubic", tcpstack.ECNOff)
	acdcCfg := *scheme.ACDC
	acdcCfg.Backend = cfg.Backend
	if cfg.Tune != nil {
		cfg.Tune(&acdcCfg)
	}
	opts := topo.Options{
		Guest:  scheme.Guest,
		ACDC:   &acdcCfg,
		RED:    scheme.RED,
		Seed:   cfg.Seed,
		Faults: cfg.Faults,
		Fabric: cfg.Fabric,
	}
	if cfg.AuditSample > 0 {
		opts.Audit = &audit.Config{Sample: cfg.AuditSample}
	}
	net := topo.Star(cfg.Hosts, opts)
	d := &Daemon{
		cfg:   cfg,
		net:   net,
		pacer: sim.NewPacer(net.Sim, cfg.Scale, cfg.MaxCatchUp),
		cmds:  make(chan func(), cfg.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Workload {
		d.startWorkload()
	}
	return d
}

// Net exposes the underlying fabric (tests, soak harness).
func (d *Daemon) Net() *topo.Net { return d.net }

// startWorkload opens a ring of persistent bulk connections (host i → i+1)
// and keeps them topped up from a self-rescheduling sim event, so the
// service always has live flows to enforce on.
func (d *Daemon) startWorkload() {
	m := workload.NewManager(d.net)
	flows := make([]*workload.Messenger, 0, d.cfg.Hosts)
	for i := 0; i < d.cfg.Hosts; i++ {
		flows = append(flows, m.Open(i, (i+1)%d.cfg.Hosts))
	}
	const chunk = 1 << 20
	var refill func()
	refill = func() {
		for _, f := range flows {
			f.SendBulk(chunk)
		}
		d.net.Sim.ScheduleFunc(10*sim.Millisecond, refill)
	}
	d.net.Sim.ScheduleFunc(0, refill)
}

// Start launches the sim loop. Stop shuts it down.
func (d *Daemon) Start() {
	d.started = time.Now()
	go d.loop()
}

// Stop shuts the sim loop down and waits for it to exit. Idempotent.
func (d *Daemon) Stop() {
	if d.stopped.CompareAndSwap(false, true) {
		close(d.quit)
		d.net.Sim.Stop() // interrupt a long catch-up Run mid-advance
	}
	<-d.done
}

// loop is the sim goroutine: wall-paced advances interleaved with marshaled
// commands.
func (d *Daemon) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.quit:
			return
		case fn := <-d.cmds:
			fn()
		case <-ticker.C:
			d.pacer.Advance()
			d.drain()
		}
	}
}

// drain runs queued commands without blocking, so a burst of admin ops does
// not wait a full tick each.
func (d *Daemon) drain() {
	for {
		select {
		case fn := <-d.cmds:
			fn()
		default:
			return
		}
	}
}

// enqueue submits fn to the sim loop with bounded retry+backoff: a full
// queue is transient (the loop drains every tick), so the daemon absorbs
// short bursts before surfacing ErrBusy.
func (d *Daemon) enqueue(fn func()) error {
	backoff := d.cfg.Tick
	for attempt := 0; attempt < 4; attempt++ {
		if d.stopped.Load() {
			return ErrStopped
		}
		select {
		case d.cmds <- fn:
			return nil
		default:
		}
		d.enqueueRetries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
	}
	return ErrBusy
}

// Exec marshals fn onto the sim loop and waits for it to run — the door for
// operations the core layers restrict to the simulation goroutine (Restart,
// fault-profile flips, workload control). fn must not block, or the whole
// service stalls. A full queue surfaces as ErrBusy after bounded retries.
func (d *Daemon) Exec(fn func()) error {
	ran := make(chan struct{})
	err := d.enqueue(func() {
		defer close(ran)
		fn()
	})
	if err != nil {
		return err
	}
	select {
	case <-ran:
		return nil
	case <-d.done:
		return ErrStopped
	}
}

// vswitch resolves a host index to its AC/DC module.
func (d *Daemon) vswitch(host int) (*core.VSwitch, error) {
	if host < 0 || host >= len(d.net.ACDC) {
		return nil, fmt.Errorf("daemon: host %d out of range [0,%d)", host, len(d.net.ACDC))
	}
	v := d.net.ACDC[host]
	if v == nil {
		return nil, fmt.Errorf("daemon: host %d has no AC/DC module", host)
	}
	return v, nil
}

// InstallPolicy validates and installs a live per-flow policy on one host's
// vSwitch. Race-safe: no marshaling needed.
func (d *Daemon) InstallPolicy(host int, k core.FlowKey, p core.Policy) (core.Policy, error) {
	v, err := d.vswitch(host)
	if err != nil {
		return core.Policy{}, err
	}
	installed, err := v.InstallPolicy(k, p)
	if err != nil {
		d.policyRejects.Add(1)
		return core.Policy{}, err
	}
	d.policyUpdates.Add(1)
	return installed, nil
}

// ClearPolicy removes a live override.
func (d *Daemon) ClearPolicy(host int, k core.FlowKey) (bool, error) {
	v, err := d.vswitch(host)
	if err != nil {
		return false, err
	}
	return v.ClearPolicy(k), nil
}

// SaveSnapshot checkpoints one host's flow table.
func (d *Daemon) SaveSnapshot(host int) ([]byte, error) {
	v, err := d.vswitch(host)
	if err != nil {
		return nil, err
	}
	return v.SaveSnapshot(), nil
}

// RestoreSnapshot installs a checkpoint into one host's flow table. A decode
// failure fails open on the vSwitch and is returned to the client.
func (d *Daemon) RestoreSnapshot(host int, data []byte) error {
	v, err := d.vswitch(host)
	if err != nil {
		return err
	}
	return v.RestoreSnapshot(data)
}

// Restart warm- or cold-restarts one host's vSwitch. Restart manipulates sim
// timers, so it is marshaled onto the sim loop; a saturated queue surfaces
// as ErrBusy after bounded retries.
func (d *Daemon) Restart(host int, warm bool) error {
	v, err := d.vswitch(host)
	if err != nil {
		return err
	}
	var snap []byte
	if warm {
		snap = v.SaveSnapshot()
	}
	if err := d.Exec(func() { v.Restart(snap) }); err != nil {
		return err
	}
	d.restarts.Add(1)
	return nil
}

// SetFaultProfile flips the link fault regime. It errors when the daemon was
// built without Config.Faults (no injector is attached to flip).
func (d *Daemon) SetFaultProfile(p faults.Profile) error {
	in := d.net.Faults
	if in == nil {
		return errors.New("daemon: no fault injector configured")
	}
	return d.Exec(func() { in.SetProfile(p) })
}

// MetricsSnapshot merges every host's datapath registry into one view. Each
// host's flow-table shape gauges (occupancy, shard max, imbalance) are
// refreshed first so a Prometheus scrape sees the table as of this scrape,
// not as of the last control-plane visit. When fabric fault domains are
// armed, the fabric's link-lifecycle and ECMP counters ride along, so one
// scrape correlates injected outages with the datapath reaction.
func (d *Daemon) MetricsSnapshot() metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, len(d.net.ACDC)+1)
	for _, v := range d.net.ACDC {
		if v != nil {
			v.UpdateTableGauges()
			snaps = append(snaps, v.Metrics.Snapshot())
		}
	}
	if d.net.HasFabric() {
		snaps = append(snaps, d.net.FabricSnapshot())
	}
	return metrics.Merge(snaps...)
}

// FlowInfo is one tracked flow as the admin API reports it.
type FlowInfo struct {
	Host      int     `json:"host"`
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	SPort     uint16  `json:"sport"`
	DPort     uint16  `json:"dport"`
	CwndBytes float64 `json:"cwnd_bytes"`
	Alpha     float64 `json:"alpha"`
	SndUna    int64   `json:"snd_una"`
	SndNxt    int64   `json:"snd_nxt"`
	Resyncing bool    `json:"resyncing,omitempty"`
}

// Flows lists tracked flows; host < 0 lists every host.
func (d *Daemon) Flows(host int) ([]FlowInfo, error) {
	if host >= len(d.net.ACDC) {
		return nil, fmt.Errorf("daemon: host %d out of range [0,%d)", host, len(d.net.ACDC))
	}
	var out []FlowInfo
	for i, v := range d.net.ACDC {
		if v == nil || (host >= 0 && i != host) {
			continue
		}
		i := i
		v.Table.Range(func(f *core.Flow) {
			s := f.Snapshot()
			out = append(out, FlowInfo{
				Host: i,
				Src:  f.Key.Src.String(), Dst: f.Key.Dst.String(),
				SPort: f.Key.SPort, DPort: f.Key.DPort,
				CwndBytes: s.CwndBytes, Alpha: s.Alpha,
				SndUna: s.SndUna, SndNxt: s.SndNxt,
				Resyncing: s.Resyncing,
			})
		})
	}
	return out, nil
}

// Status is the admin status report.
type Status struct {
	SimNow         string  `json:"sim_now"`
	SimNowNanos    int64   `json:"sim_now_nanos"`
	ForgivenNanos  int64   `json:"forgiven_nanos"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Hosts          int     `json:"hosts"`
	Flows          int     `json:"flows"`
	PolicyUpdates  int64   `json:"policy_updates"`
	PolicyRejects  int64   `json:"policy_rejects"`
	Restarts       int64   `json:"restarts"`
	EnqueueRetries int64   `json:"enqueue_retries"`
	AuditTotal     int64   `json:"audit_violations"`
	FailOpen       int64   `json:"fail_open"`
	// Flow-table shape, worst case across hosts: the longest single shard and
	// the highest imbalance (1000·max/mean shard length; 1000 = perfectly
	// balanced). A climbing imbalance flags a degenerate key distribution
	// before it shows up as tail latency.
	TableShardMax          int   `json:"table_shard_max"`
	TableImbalancePermille int64 `json:"table_shard_imbalance_permille"`
	PressureSweeps         int64 `json:"pressure_sweeps"`
	// Fabric health, present only when fault domains are armed (omitempty
	// keeps a fabric-free daemon's status JSON unchanged): cumulative link
	// outage events, ECMP failovers/blackholes, and gray-loss drops.
	FabricLinkDowns  int64  `json:"fabric_link_downs,omitempty"`
	FabricLinkUps    int64  `json:"fabric_link_ups,omitempty"`
	FabricFailovers  int64  `json:"fabric_failovers,omitempty"`
	FabricBlackholes int64  `json:"fabric_blackholes,omitempty"`
	FabricGrayDrops  int64  `json:"fabric_gray_drops,omitempty"`
	Degraded         string `json:"degraded,omitempty"`
}

// StatusNow assembles the current status. Everything it reads is
// goroutine-safe (atomic sim clock, sharded table, atomic counters). As a
// side effect it republishes each host's table-shape gauges, so a /status
// poll keeps the Prometheus view fresh too.
func (d *Daemon) StatusNow() Status {
	now := d.net.Sim.Now()
	flows := 0
	var failOpen, sweeps, imb int64
	shardMax := 0
	for _, v := range d.net.ACDC {
		if v != nil {
			shape := v.UpdateTableGauges()
			flows += shape.Flows
			if shape.ShardMax > shardMax {
				shardMax = shape.ShardMax
			}
			if shape.ImbalancePermille > imb {
				imb = shape.ImbalancePermille
			}
			failOpen += v.Metrics.FailOpen.Value()
			sweeps += v.Metrics.PressureSweeps.Value()
		}
	}
	st := Status{
		SimNow:         now.String(),
		SimNowNanos:    int64(now),
		ForgivenNanos:  int64(d.pacer.Forgiven()),
		UptimeSeconds:  time.Since(d.started).Seconds(),
		Hosts:          d.cfg.Hosts,
		Flows:          flows,
		PolicyUpdates:  d.policyUpdates.Load(),
		PolicyRejects:  d.policyRejects.Load(),
		Restarts:       d.restarts.Load(),
		EnqueueRetries: d.enqueueRetries.Load(),
		AuditTotal:     d.net.AuditViolations(),
		FailOpen:       failOpen,

		TableShardMax:          shardMax,
		TableImbalancePermille: imb,
		PressureSweeps:         sweeps,
		Degraded:               d.DegradedReason(),
	}
	if d.net.HasFabric() {
		snap := d.net.FabricSnapshot()
		st.FabricLinkDowns = snap.Counter("fabric_link_downs_total")
		st.FabricLinkUps = snap.Counter("fabric_link_ups_total")
		st.FabricFailovers = snap.Counter("ecmp_failovers_total")
		st.FabricBlackholes = snap.Counter("ecmp_blackholes_total")
		st.FabricGrayDrops = snap.Counter("fabric_gray_drops_total")
	}
	return st
}

// DegradedReason reports why the daemon is degraded, or "" when ready. The
// daemon never exits on these conditions — a vSwitch that fails open or
// trips the auditor is worth keeping alive for diagnosis — but readiness
// reflects them so an orchestrator can drain traffic away.
func (d *Daemon) DegradedReason() string {
	if n := d.net.AuditViolations(); n > 0 {
		return fmt.Sprintf("audit: %d invariant violations", n)
	}
	var failOpen int64
	for _, v := range d.net.ACDC {
		if v != nil {
			failOpen += v.Metrics.FailOpen.Value()
		}
	}
	if failOpen >= d.cfg.FailOpenLimit {
		return fmt.Sprintf("fail-open: %d packets passed unenforced (limit %d)",
			failOpen, d.cfg.FailOpenLimit)
	}
	return ""
}
