package daemon

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/sim"
)

// startDaemon runs a small paced daemon with background traffic and an
// httptest admin server, and tears both down with the test.
func startDaemon(t *testing.T, cfg Config) (*Daemon, *Client) {
	t.Helper()
	if cfg.Hosts == 0 {
		cfg.Hosts = 2
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Tick == 0 {
		cfg.Tick = time.Millisecond
	}
	d := New(cfg)
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Stop()
	})
	return d, NewClient(srv.URL, nil)
}

// waitFor polls cond for up to 2 seconds of wall time.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDaemonAdvancesAndServes(t *testing.T) {
	d, c := startDaemon(t, Config{Workload: true})
	if err := c.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := c.Ready(); err != nil {
		t.Fatalf("readyz: %v", err)
	}
	// The pacer must keep the virtual clock moving with wall time.
	waitFor(t, "virtual time to advance", func() bool {
		return d.Net().Sim.Now() > 10*sim.Millisecond
	})
	// With the background workload on, flows appear and metrics count.
	waitFor(t, "flows to be tracked", func() bool {
		flows, err := c.Flows(-1)
		return err == nil && len(flows) > 0
	})
	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"egress_segments_total", "flow_table_size"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.SimNowNanos == 0 || st.Hosts != 2 || st.Degraded != "" {
		t.Fatalf("status = %+v", st)
	}
}

func TestPolicyStreamMixedResults(t *testing.T) {
	d, c := startDaemon(t, Config{Workload: true})
	waitFor(t, "flows", func() bool {
		flows, err := c.Flows(0)
		return err == nil && len(flows) > 0
	})
	flows, _ := c.Flows(0)
	f := flows[0]

	results, err := c.SendPolicies(
		PolicyUpdate{Host: 0, Src: f.Src, Dst: f.Dst, SPort: f.SPort, DPort: f.DPort,
			Beta: 0.5, RwndClampBytes: 1 << 20},
		PolicyUpdate{Host: 0, Src: f.Src, Dst: f.Dst, SPort: f.SPort, DPort: f.DPort,
			Beta: 3}, // hostile: must be rejected, not clamped silently
		PolicyUpdate{Host: 0, Src: "not-an-addr", Dst: f.Dst, Beta: 1},
		PolicyUpdate{Host: 99, Src: f.Src, Dst: f.Dst, Beta: 1},
	)
	if err != nil {
		t.Fatalf("SendPolicies (one valid update): %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %+v, want 4 entries", results)
	}
	if !results[0].OK || results[0].Installed == nil || results[0].Installed.Beta != 0.5 {
		t.Fatalf("valid update result = %+v", results[0])
	}
	for i := 1; i < 4; i++ {
		if results[i].OK {
			t.Fatalf("update %d accepted: %+v", i, results[i])
		}
	}
	if !strings.Contains(results[1].Error, "beta") {
		t.Fatalf("hostile β rejection reason = %q", results[1].Error)
	}
	st := d.StatusNow()
	if st.PolicyUpdates != 1 || st.PolicyRejects != 1 {
		t.Fatalf("updates/rejects = %d/%d, want 1/1", st.PolicyUpdates, st.PolicyRejects)
	}
	// The installed override is live on the vSwitch.
	k, _ := (PolicyUpdate{Src: f.Src, Dst: f.Dst, SPort: f.SPort, DPort: f.DPort}).key()
	if p, ok := d.Net().ACDC[0].PolicyOverride(k); !ok || p.Beta != 0.5 {
		t.Fatalf("override not live: %+v ok=%v", p, ok)
	}
}

func TestPolicyStreamAllFailedIs400(t *testing.T) {
	_, c := startDaemon(t, Config{})
	results, err := c.SendPolicies(
		PolicyUpdate{Host: 0, Src: "10.0.0.1", Dst: "10.0.0.2", Beta: -1},
	)
	if err == nil {
		t.Fatal("all-failed stream did not error")
	}
	if len(results) != 1 || results[0].OK {
		t.Fatalf("results = %+v", results)
	}
}

func TestSnapshotRoundTripAndRestart(t *testing.T) {
	d, c := startDaemon(t, Config{Workload: true})
	waitFor(t, "flows on host 0", func() bool {
		return d.Net().ACDC[0].FlowCount() > 0
	})
	snap, err := c.SaveSnapshot(0)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := c.RestoreSnapshot(0, snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := c.RestoreSnapshot(0, []byte("garbage")); err == nil {
		t.Fatal("corrupt restore did not error")
	}
	if err := c.Restart(0, true); err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	if err := c.Restart(0, false); err != nil {
		t.Fatalf("cold restart: %v", err)
	}
	st := d.Net().ACDC[0].Stats()
	if st.Restarts != 2 || st.SnapshotSaves < 2 || st.SnapshotRestores < 2 || st.SnapshotCorrupt != 1 {
		t.Fatalf("restart accounting: %+v", st)
	}
	// The restarted vSwitch keeps enforcing: flows re-appear.
	waitFor(t, "flows after restart", func() bool {
		return d.Net().ACDC[0].FlowCount() > 0
	})
}

func TestReadyzDegradesOnAuditViolation(t *testing.T) {
	d, c := startDaemon(t, Config{})
	if err := c.Ready(); err != nil {
		t.Fatalf("readyz before violation: %v", err)
	}
	// Seed one invariant violation directly through the auditor's public
	// event API: a β=3 cut whose factor exceeds 1 (the window grew on
	// congestion) — exactly the defect class the auditor exists to catch.
	v := d.Net().ACDC[0]
	d.Net().Audits[0].CutEvent(v, core.CutEvent{
		Key: core.FlowKey{SPort: 1, DPort: 2},
		Alg: "dctcp", Alpha: 0.5, Beta: 3,
		Factor: 1.25, PrevCwnd: 20000, NewCwnd: 25000,
	})
	err := c.Ready()
	if err == nil {
		t.Fatal("readyz stayed ready after an audit violation")
	}
	if !strings.Contains(err.Error(), "audit") {
		t.Fatalf("degraded reason = %v", err)
	}
	// Liveness is unaffected: the daemon degrades, it does not die.
	if err := c.Health(); err != nil {
		t.Fatalf("healthz while degraded: %v", err)
	}
	if d.StatusNow().Degraded == "" {
		t.Fatal("status does not report degradation")
	}
}

func TestRestartBusyQueueSurfacesAfterRetries(t *testing.T) {
	d, c := startDaemon(t, Config{QueueDepth: 1, Tick: time.Millisecond})
	// Stall the sim loop on a blocked command, then fill the queue: the
	// next marshaled op must exhaust its retries and surface 503.
	unblock := make(chan struct{})
	if err := d.enqueue(func() { <-unblock }); err != nil {
		t.Fatalf("stall enqueue: %v", err)
	}
	waitFor(t, "loop to pick up the stall", func() bool {
		// Queue drained means the loop is now blocked inside the command.
		return len(d.cmds) == 0
	})
	if err := d.enqueue(func() {}); err != nil {
		t.Fatalf("fill enqueue: %v", err)
	}
	start := time.Now()
	err := c.Restart(0, false)
	if err == nil {
		t.Fatal("restart succeeded against a stalled sim loop")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("stalled-loop restart error = %v, want 503", err)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("restart failed after %v — no retry/backoff happened", elapsed)
	}
	if d.StatusNow().EnqueueRetries == 0 {
		t.Fatal("no enqueue retries recorded")
	}
	close(unblock)
	// The loop recovers: the queued no-op drains and new ops succeed.
	waitFor(t, "loop recovery", func() bool {
		return c.Restart(0, false) == nil
	})
}

func TestFlowsWatchStreams(t *testing.T) {
	_, c := startDaemon(t, Config{Workload: true})
	data, err := c.do("GET", "/v1/flows/watch?every=20ms&for=100ms", nil)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines < 3 {
		t.Fatalf("watch produced %d snapshots over 100ms at 20ms, want ≥3", lines)
	}
}

func TestStopIsIdempotentAndInterruptsLoop(t *testing.T) {
	d := New(Config{Hosts: 2, Scale: 1.0, Tick: time.Millisecond, Workload: true})
	d.Start()
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	d.Stop() // second Stop must not panic or hang
	if err := d.Exec(func() {}); err == nil {
		t.Fatal("exec succeeded after Stop")
	}
}

func TestAdminTokenGatesMutatingEndpoints(t *testing.T) {
	d, c := startDaemon(t, Config{Workload: true, AdminToken: "sekrit"})
	waitFor(t, "flows on host 0", func() bool {
		return d.Net().ACDC[0].FlowCount() > 0
	})
	// Read-only probes stay open: health checks and scrapes need no token.
	if err := c.Health(); err != nil {
		t.Fatalf("healthz without token: %v", err)
	}
	if _, err := c.Status(); err != nil {
		t.Fatalf("status without token: %v", err)
	}
	if _, err := c.Metrics(); err != nil {
		t.Fatalf("metrics without token: %v", err)
	}
	// Every mutating endpoint rejects a missing token with 401.
	for _, try := range []func() error{
		func() error {
			_, err := c.SendPolicies(PolicyUpdate{Host: 0, Src: "10.0.0.1", Dst: "10.0.0.2", Beta: 0.5})
			return err
		},
		func() error { _, err := c.SaveSnapshot(0); return err },
		func() error { return c.RestoreSnapshot(0, []byte("x")) },
		func() error { return c.Restart(0, true) },
	} {
		err := try()
		if err == nil || !strings.Contains(err.Error(), "401") {
			t.Fatalf("mutating endpoint without token: %v, want 401", err)
		}
	}
	// A wrong token is rejected the same way, not treated as missing-only.
	if err := c.WithToken("wrong").Restart(0, true); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("restart with wrong token: %v, want 401", err)
	}
	// The right token opens the full surface.
	ac := c.WithToken("sekrit")
	snap, err := ac.SaveSnapshot(0)
	if err != nil {
		t.Fatalf("save with token: %v", err)
	}
	if err := ac.RestoreSnapshot(0, snap); err != nil {
		t.Fatalf("restore with token: %v", err)
	}
	if err := ac.Restart(0, true); err != nil {
		t.Fatalf("restart with token: %v", err)
	}
}

func TestNoTokenLeavesEndpointsOpen(t *testing.T) {
	// The loopback deployment path: no token configured, everything serves.
	d, c := startDaemon(t, Config{Workload: true})
	waitFor(t, "flows on host 0", func() bool {
		return d.Net().ACDC[0].FlowCount() > 0
	})
	if err := c.Restart(0, true); err != nil {
		t.Fatalf("restart on open daemon: %v", err)
	}
}

func TestLoopbackAddr(t *testing.T) {
	for _, tc := range []struct {
		addr string
		want bool
	}{
		{"127.0.0.1:7654", true},
		{"127.9.3.4:80", true},
		{"localhost:7654", true},
		{"[::1]:7654", true},
		{"0.0.0.0:7654", false},
		{"10.1.2.3:7654", false},
		{":7654", false},          // all interfaces
		{"[::]:7654", false},      // all interfaces, v6
		{"example.com:80", false}, // non-IP hostnames are not provably loopback
	} {
		if got := LoopbackAddr(tc.addr); got != tc.want {
			t.Errorf("LoopbackAddr(%q) = %v, want %v", tc.addr, got, tc.want)
		}
	}
}

func TestStatusAndMetricsSurfaceFabric(t *testing.T) {
	// Arm a finite flap on h0's uplink: the status report and the metrics
	// scrape must grow fabric counters, which a fabric-free daemon omits.
	doms, err := faults.ParseDomains("flap@2ms,link=h0.up,down=500us,up=1ms,count=2")
	if err != nil {
		t.Fatalf("ParseDomains: %v", err)
	}
	d, c := startDaemon(t, Config{Workload: true, Fabric: doms})
	waitFor(t, "flap to fire", func() bool {
		return d.StatusNow().FabricLinkDowns >= 2
	})
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.FabricLinkDowns < 2 || st.FabricLinkUps < 2 {
		t.Fatalf("fabric counters in status = downs %d ups %d, want ≥2 each",
			st.FabricLinkDowns, st.FabricLinkUps)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{"fabric_link_downs_total", "link_down_events_total{link=h0.up}"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, text)
		}
	}

	// And the fabric-free daemon stays quiet: no fabric keys in either view.
	d2, c2 := startDaemon(t, Config{Workload: true})
	if st2 := d2.StatusNow(); st2.FabricLinkDowns != 0 {
		t.Fatalf("fabric-free daemon reports fabric downs: %+v", st2)
	}
	text2, err := c2.Metrics()
	if err != nil {
		t.Fatalf("metrics (fabric-free): %v", err)
	}
	if strings.Contains(text2, "fabric_") || strings.Contains(text2, "link_down_events_total") {
		t.Fatalf("fabric-free metrics scrape grew fabric keys:\n%s", text2)
	}
}
