package daemon

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"acdc/internal/core"
	"acdc/internal/packet"
)

// The admin API. Everything is localhost-plumbing-grade: JSON in/out, bind
// to loopback (or set Config.AdminToken and bearer-auth the mutating
// surface), stable paths:
//
//	GET  /healthz             liveness (200 while the process serves)
//	GET  /readyz              readiness (503 + reason while degraded)
//	GET  /status              Status JSON
//	GET  /metrics             merged datapath metrics, text encoding
//	GET  /v1/flows[?host=i]   tracked flows
//	GET  /v1/flows/watch      NDJSON flow snapshots (?every=100ms&for=2s)
//	POST /v1/policy           one PolicyUpdate or an NDJSON stream of them
//	POST /v1/snapshot/save    ?host=i → snapshot bytes (octet-stream)
//	POST /v1/snapshot/restore ?host=i, body = snapshot bytes
//	POST /v1/restart          ?host=i&mode=warm|cold
//
// Apply failures map to status codes: validation → 400, overload (ErrBusy
// after bounded retry+backoff) → 503, unknown host → 404.

// PolicyUpdate is one streamed policy operation.
type PolicyUpdate struct {
	Host  int    `json:"host"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
	SPort uint16 `json:"sport"`
	DPort uint16 `json:"dport"`

	Beta           float64 `json:"beta"`
	RwndClampBytes int64   `json:"rwnd_clamp_bytes,omitempty"`
	VCC            string  `json:"vcc,omitempty"`
	// Backend selects the enforcement backend for matching flows
	// ("" = vSwitch default). Unknown names are NOT a stream error: the
	// vSwitch fails open to the default and counts backend_unknown_total,
	// so one typo cannot wedge a controller's NDJSON stream mid-flight.
	Backend string `json:"backend,omitempty"`
	Disable bool   `json:"disable,omitempty"`
	// Clear removes the override instead of installing one.
	Clear bool `json:"clear,omitempty"`
}

// PolicyResult reports one update's outcome in the response stream.
type PolicyResult struct {
	Index     int          `json:"index"`
	OK        bool         `json:"ok"`
	Error     string       `json:"error,omitempty"`
	Installed *core.Policy `json:"installed,omitempty"`
	Cleared   bool         `json:"cleared,omitempty"`
}

// ParseAddr parses a dotted-quad IPv4 address into a packet.Addr.
func ParseAddr(s string) (packet.Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q is not dotted-quad", s)
	}
	var b [4]byte
	for i, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q: octet %q: %v", s, p, err)
		}
		b[i] = byte(n)
	}
	return packet.MakeAddr(b[0], b[1], b[2], b[3]), nil
}

func (u PolicyUpdate) key() (core.FlowKey, error) {
	src, err := ParseAddr(u.Src)
	if err != nil {
		return core.FlowKey{}, err
	}
	dst, err := ParseAddr(u.Dst)
	if err != nil {
		return core.FlowKey{}, err
	}
	return core.FlowKey{Src: src, Dst: dst, SPort: u.SPort, DPort: u.DPort}, nil
}

func (u PolicyUpdate) policy() core.Policy {
	return core.Policy{
		Beta:           u.Beta,
		RwndClampBytes: u.RwndClampBytes,
		VCC:            u.VCC,
		Backend:        u.Backend,
		Disable:        u.Disable,
	}
}

// Handler returns the admin API handler. With Config.AdminToken set, every
// mutating (POST) endpoint requires `Authorization: Bearer <token>`; the
// read-only probes (health, readiness, status, metrics, flows) stay open so
// orchestrators and scrapers work without credentials.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", d.handleReady)
	mux.HandleFunc("GET /status", d.handleStatus)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/flows", d.handleFlows)
	mux.HandleFunc("GET /v1/flows/watch", d.handleFlowsWatch)
	mux.HandleFunc("POST /v1/policy", d.requireToken(d.handlePolicy))
	mux.HandleFunc("POST /v1/snapshot/save", d.requireToken(d.handleSnapshotSave))
	mux.HandleFunc("POST /v1/snapshot/restore", d.requireToken(d.handleSnapshotRestore))
	mux.HandleFunc("POST /v1/restart", d.requireToken(d.handleRestart))
	return mux
}

// requireToken gates a mutating handler on the configured bearer token. A
// daemon without one (loopback deployments) passes through untouched. The
// comparison is constant-time so the token can't be guessed byte by byte
// off response timing.
func (d *Daemon) requireToken(h http.HandlerFunc) http.HandlerFunc {
	if d.cfg.AdminToken == "" {
		return h
	}
	want := []byte(d.cfg.AdminToken)
	return func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="acdcd admin"`)
			http.Error(w, "missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

// LoopbackAddr reports whether a listen address is loopback-only. The empty
// host ("":7654") binds every interface and is NOT loopback. cmd/acdcd uses
// this to refuse exposing the unauthenticated admin API beyond the machine.
func LoopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr // no port — treat the whole string as the host
	}
	if host == "" {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

func (d *Daemon) handleReady(w http.ResponseWriter, r *http.Request) {
	if reason := d.DegradedReason(); reason != "" {
		http.Error(w, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.StatusNow())
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, d.MetricsSnapshot().Text())
}

// hostParam parses ?host=; required reports whether the endpoint needs it.
func hostParam(r *http.Request, required bool) (int, error) {
	s := r.URL.Query().Get("host")
	if s == "" {
		if required {
			return 0, errors.New("missing required ?host= parameter")
		}
		return -1, nil
	}
	return strconv.Atoi(s)
}

func (d *Daemon) handleFlows(w http.ResponseWriter, r *http.Request) {
	host, err := hostParam(r, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flows, err := d.Flows(host)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, flows)
}

// handleFlowsWatch streams flow snapshots as NDJSON arrays, one line per
// interval, until ?for= elapses (default 1s, capped at 30s).
func (d *Daemon) handleFlowsWatch(w http.ResponseWriter, r *http.Request) {
	host, err := hostParam(r, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	every, dur := 100*time.Millisecond, time.Second
	if s := r.URL.Query().Get("every"); s != "" {
		if every, err = time.ParseDuration(s); err != nil || every <= 0 {
			http.Error(w, "bad ?every=", http.StatusBadRequest)
			return
		}
	}
	if s := r.URL.Query().Get("for"); s != "" {
		if dur, err = time.ParseDuration(s); err != nil || dur <= 0 {
			http.Error(w, "bad ?for=", http.StatusBadRequest)
			return
		}
	}
	if dur > 30*time.Second {
		dur = 30 * time.Second
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	deadline := time.Now().Add(dur)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		flows, err := d.Flows(host)
		if err != nil {
			return
		}
		if flows == nil {
			flows = []FlowInfo{}
		}
		if enc.Encode(flows) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if time.Now().After(deadline) {
			return
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		case <-d.done:
			return
		}
	}
}

// handlePolicy consumes one PolicyUpdate or an NDJSON stream of them and
// responds with one PolicyResult per update. The stream is applied in order;
// a malformed or rejected update is reported in its result and does not
// abort the rest (the controller decides what to do with partial failures).
func (d *Daemon) handlePolicy(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	var results []PolicyResult
	for i := 0; ; i++ {
		var u PolicyUpdate
		if err := dec.Decode(&u); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			results = append(results, PolicyResult{
				Index: i, Error: "decode: " + err.Error(),
			})
			break // the stream is unparseable past this point
		}
		results = append(results, d.applyUpdate(i, u))
	}
	if len(results) == 0 {
		http.Error(w, "empty policy stream", http.StatusBadRequest)
		return
	}
	// One bad update in a batch is a partial failure: report 400 only when
	// everything failed, 200 with per-update results otherwise.
	allFailed := true
	for _, res := range results {
		if res.OK {
			allFailed = false
			break
		}
	}
	if allFailed {
		w.WriteHeader(http.StatusBadRequest)
	}
	writeJSON(w, results)
}

func (d *Daemon) applyUpdate(i int, u PolicyUpdate) PolicyResult {
	k, err := u.key()
	if err != nil {
		return PolicyResult{Index: i, Error: err.Error()}
	}
	if u.Clear {
		cleared, err := d.ClearPolicy(u.Host, k)
		if err != nil {
			return PolicyResult{Index: i, Error: err.Error()}
		}
		return PolicyResult{Index: i, OK: true, Cleared: cleared}
	}
	installed, err := d.InstallPolicy(u.Host, k, u.policy())
	if err != nil {
		return PolicyResult{Index: i, Error: err.Error()}
	}
	return PolicyResult{Index: i, OK: true, Installed: &installed}
}

func (d *Daemon) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	host, err := hostParam(r, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := d.SaveSnapshot(host)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(snap)
}

func (d *Daemon) handleSnapshotRestore(w http.ResponseWriter, r *http.Request) {
	host, err := hostParam(r, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := d.RestoreSnapshot(host, data); err != nil {
		// The vSwitch already failed open (fresh table); tell the client
		// its snapshot was rejected.
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	io.WriteString(w, "restored\n")
}

func (d *Daemon) handleRestart(w http.ResponseWriter, r *http.Request) {
	host, err := hostParam(r, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "warm"
	}
	if mode != "warm" && mode != "cold" {
		http.Error(w, "mode must be warm or cold", http.StatusBadRequest)
		return
	}
	if err := d.Restart(host, mode == "warm"); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	fmt.Fprintf(w, "%s restart done\n", mode)
}

// statusFor maps daemon errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "out of range"),
		strings.Contains(err.Error(), "no AC/DC module"):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
