package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the admin API client — what a controller process (or the
// examples/adminclient walkthrough) uses to drive a running acdcd. The zero
// value is not usable; construct with NewClient.
//
// Every method maps to one endpoint and returns the daemon's error text on
// non-2xx responses, so callers see the same rejection reasons the server
// logs (a policy with β>1 fails with the Validate message, an overloaded
// sim loop with ErrBusy's).
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses a 10-second-timeout
// default.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: base, http: httpClient}
}

// WithToken returns a copy of the client that sends the bearer token a
// hardened daemon (Config.AdminToken) requires on mutating endpoints.
func (c *Client) WithToken(token string) *Client {
	cp := *c
	cp.token = token
	return &cp
}

// do issues a request and decodes errors uniformly.
func (c *Client) do(method, path string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return data, fmt.Errorf("daemon: %s %s: %s: %s",
			method, path, resp.Status, bytes.TrimSpace(data))
	}
	return data, nil
}

// Health probes liveness.
func (c *Client) Health() error {
	_, err := c.do(http.MethodGet, "/healthz", nil)
	return err
}

// Ready probes readiness; a degraded daemon returns an error carrying the
// reason.
func (c *Client) Ready() error {
	_, err := c.do(http.MethodGet, "/readyz", nil)
	return err
}

// Status fetches the daemon status report.
func (c *Client) Status() (Status, error) {
	data, err := c.do(http.MethodGet, "/status", nil)
	if err != nil {
		return Status{}, err
	}
	var s Status
	return s, json.Unmarshal(data, &s)
}

// Metrics scrapes the merged datapath metrics in the text encoding.
func (c *Client) Metrics() (string, error) {
	data, err := c.do(http.MethodGet, "/metrics", nil)
	return string(data), err
}

// Flows lists tracked flows; host < 0 lists every host.
func (c *Client) Flows(host int) ([]FlowInfo, error) {
	path := "/v1/flows"
	if host >= 0 {
		path += "?host=" + strconv.Itoa(host)
	}
	data, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var flows []FlowInfo
	return flows, json.Unmarshal(data, &flows)
}

// SendPolicies streams updates to the daemon (NDJSON) and returns one result
// per update, in order. A rejected update appears in its result; the call
// itself errors only when every update failed or the request could not be
// made.
func (c *Client) SendPolicies(updates ...PolicyUpdate) ([]PolicyResult, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, u := range updates {
		if err := enc.Encode(u); err != nil {
			return nil, err
		}
	}
	data, err := c.do(http.MethodPost, "/v1/policy", &buf)
	var results []PolicyResult
	if len(data) > 0 {
		// Even a 400 response carries per-update results when the stream
		// parsed; surface them alongside the error.
		_ = json.Unmarshal(data, &results)
	}
	return results, err
}

// SaveSnapshot checkpoints one host's flow table and returns the bytes.
func (c *Client) SaveSnapshot(host int) ([]byte, error) {
	return c.do(http.MethodPost, "/v1/snapshot/save?host="+strconv.Itoa(host), nil)
}

// RestoreSnapshot installs a checkpoint on one host.
func (c *Client) RestoreSnapshot(host int, snap []byte) error {
	_, err := c.do(http.MethodPost,
		"/v1/snapshot/restore?host="+strconv.Itoa(host), bytes.NewReader(snap))
	return err
}

// Restart warm- or cold-restarts one host's vSwitch.
func (c *Client) Restart(host int, warm bool) error {
	mode := "cold"
	if warm {
		mode = "warm"
	}
	_, err := c.do(http.MethodPost,
		"/v1/restart?host="+strconv.Itoa(host)+"&mode="+mode, nil)
	return err
}
