package workload

import (
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/trace"
)

func starNet(n int) *topo.Net {
	return topo.Star(n, topo.Options{
		Guest: tcpstack.DefaultConfig(),
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	})
}

func TestMessengerFCT(t *testing.T) {
	net := topo.Star(2, topo.Options{Guest: tcpstack.DefaultConfig()})
	m := NewManager(net)
	ms := m.Open(0, 1)
	var fcts []sim.Duration
	ms.SendMessage(100_000, func(fct sim.Duration) { fcts = append(fcts, fct) })
	ms.SendMessage(50_000, func(fct sim.Duration) { fcts = append(fcts, fct) })
	net.Sim.RunFor(50 * sim.Millisecond)
	if len(fcts) != 2 {
		t.Fatalf("completed %d messages, want 2", len(fcts))
	}
	if fcts[0] <= 0 || fcts[1] <= 0 {
		t.Fatalf("non-positive FCTs: %v", fcts)
	}
	if ms.Delivered() != 150_000 {
		t.Fatalf("delivered %d", ms.Delivered())
	}
}

func TestMessengerOrderedCompletion(t *testing.T) {
	net := topo.Star(2, topo.Options{Guest: tcpstack.DefaultConfig()})
	m := NewManager(net)
	ms := m.Open(0, 1)
	var order []int64
	ms.OnMessage = func(size int64) { order = append(order, size) }
	for _, sz := range []int64{1000, 2000, 3000} {
		ms.SendMessage(sz, nil)
	}
	net.Sim.RunFor(20 * sim.Millisecond)
	if len(order) != 3 || order[0] != 1000 || order[1] != 2000 || order[2] != 3000 {
		t.Fatalf("completion order: %v", order)
	}
}

func TestProberMeasuresRTT(t *testing.T) {
	net := topo.Star(2, topo.Options{Guest: tcpstack.DefaultConfig()})
	m := NewManager(net)
	p := NewProber(m, 0, 1)
	p.Start()
	net.Sim.RunFor(20 * sim.Millisecond)
	p.Stop()
	if p.Samples.N() < 10 {
		t.Fatalf("only %d RTT samples", p.Samples.N())
	}
	// Uncongested base RTT: a few tens of microseconds; surely under 1ms.
	if med := p.Samples.Median(); med < 10_000 || med > 1_000_000 {
		t.Fatalf("median RTT %vns implausible", med)
	}
}

func TestProberSeesQueueing(t *testing.T) {
	// RTT through a congested (drop-tail, CUBIC) bottleneck must far exceed
	// the uncongested RTT — the Figure 2 mechanism. Two senders overload
	// the receiver's downlink (a single sender is NIC-bound and queueless).
	net := topo.Star(4, topo.Options{Guest: tcpstack.DefaultConfig()})
	m := NewManager(net)
	quiet := NewProber(m, 0, 2)
	quiet.Start()
	net.Sim.RunFor(10 * sim.Millisecond)
	quiet.Stop()
	base := quiet.Samples.Median()

	Bulk(m, 1, 2) // two bulk flows congest host 2's downlink
	Bulk(m, 3, 2)
	net.Sim.RunFor(20 * sim.Millisecond) // let the standing queue build
	loaded := NewProber(m, 0, 2)
	loaded.Start()
	net.Sim.Schedule(40*sim.Millisecond, loaded.Stop)
	net.Sim.RunFor(60 * sim.Millisecond)
	if loaded.Samples.N() == 0 {
		t.Fatal("no loaded samples")
	}
	if loaded.Samples.Median() < 5*base {
		t.Fatalf("loaded RTT %.0fns not ≫ base %.0fns", loaded.Samples.Median(), base)
	}
}

func TestIncastRatesFairAndSaturating(t *testing.T) {
	net := topo.Star(9, topo.Options{Guest: tcpstack.DefaultConfig()})
	m := NewManager(net)
	senders := []int{0, 1, 2, 3, 4, 5, 6, 7}
	flows := Incast(m, senders, 8)
	t0 := net.Sim.Now()
	net.Sim.RunFor(80 * sim.Millisecond)
	rates := Rates(flows, t0, net.Sim.Now())
	var total float64
	for _, r := range rates {
		total += r
	}
	if total < 8e9 {
		t.Fatalf("aggregate %.2f Gbps, want near 10", total/1e9)
	}
}

func TestStrideWorkloadCompletesMice(t *testing.T) {
	net := starNet(17)
	m := NewManager(net)
	var fcts FCTs
	cfg := StrideConfig{N: 17, BgBytes: 4 << 20, MiceBytes: 16 << 10, MicePeriod: 2 * sim.Millisecond}
	Stride(m, cfg, &fcts)
	net.Sim.RunFor(60 * sim.Millisecond)
	if fcts.Mice.N() < 17*10 {
		t.Fatalf("only %d mice completed", fcts.Mice.N())
	}
	if fcts.Background.N() == 0 {
		t.Fatal("no background transfers completed")
	}
}

func TestShuffleRunsToCompletion(t *testing.T) {
	net := starNet(5)
	m := NewManager(net)
	var fcts FCTs
	done := false
	cfg := ShuffleConfig{N: 5, BgBytes: 1 << 20, Concurrency: 2, MiceBytes: 16 << 10, MicePeriod: 2 * sim.Millisecond}
	Shuffle(m, cfg, &fcts, func() { done = true })
	net.Sim.RunFor(2 * sim.Second)
	if !done {
		t.Fatalf("shuffle incomplete: %d background FCTs of %d", fcts.Background.N(), 5*4)
	}
	if fcts.Background.N() != 5*4 {
		t.Fatalf("background transfers %d, want 20", fcts.Background.N())
	}
}

func TestTraceDrivenClassifiesMice(t *testing.T) {
	net := starNet(6)
	m := NewManager(net)
	var fcts FCTs
	cfg := TraceConfig{N: 6, AppsPerServer: 2, Dist: trace.WebSearch(), MiceCutoff: 10 << 10}
	TraceDriven(m, cfg, &fcts)
	net.Sim.RunFor(150 * sim.Millisecond)
	if fcts.Mice.N()+fcts.Background.N() < 50 {
		t.Fatalf("too few completions: mice=%d bg=%d", fcts.Mice.N(), fcts.Background.N())
	}
	if fcts.Mice.N() == 0 || fcts.Background.N() == 0 {
		t.Fatalf("classification degenerate: mice=%d bg=%d", fcts.Mice.N(), fcts.Background.N())
	}
}

func TestOpenPanicsOnSelfConnection(t *testing.T) {
	net := starNet(2)
	m := NewManager(net)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Open(1, 1)
}
