// Package workload drives traffic through a topo.Net the way the paper's
// benchmark tools do, and measures what the paper measures — flow completion
// times at the receiver, application-level RTT, and per-flow delivered bytes.
//
// # Connection plumbing
//
// Everything is built on two primitives:
//
//   - Manager owns the listen/dial plumbing: every host listens on one port,
//     and accepted connections are matched back to the Messenger that dialed
//     them. Open(from, to) returns a persistent one-direction stream.
//   - Messenger is a message-oriented view of that stream: SendMessage
//     queues n bytes and reports the flow completion time when the
//     *receiver's* in-order delivered count crosses the message boundary
//     (the paper's "simple TCP application ... to measure FCTs"); SendBulk
//     queues untracked bytes for long-lived background flows.
//
// # Drivers
//
// On top of those, one driver per traffic pattern used by the evaluation
// (§5.2) and the scenario suite (internal/scenario):
//
//   - Bulk / Incast: long-lived flows; the many-to-one §5.2 incast.
//   - Prober: sockperf-style ping-pong RTT probe (Figures 2, 8, 16, 19, 20).
//   - PartitionAggregate: query fan-out/fan-in with query-completion times,
//     the application behind incast (Vasudevan et al.).
//   - Stride / Shuffle / TraceDriven: the §5.2 macro-workloads over the
//     paper's parameters or the web-search/data-mining size distributions.
//   - FlashCrowd: periodic near-synchronized request waves against one hot
//     host — transient incast with a completion-tail that exposes schemes
//     needing standing queues or RTOs to absorb bursts.
//   - TenantChurn: disjoint tenant host-groups running background+mice
//     traffic while tenants depart and re-arrive with fresh connections —
//     the flow-table lifecycle (setup, idle GC, re-adoption) under
//     continuously shifting load.
//
// # Determinism
//
// Drivers draw any randomness (start offsets, shuffle orders) from the
// simulation's own seeded RNG (Net.Sim.Rand()), never from package math/rand
// or wall time, so a fixed topology seed replays the identical packet-level
// run — the property the scenario suite's regression baselines depend on.
package workload
