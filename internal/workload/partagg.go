package workload

import (
	"acdc/internal/sim"
	"acdc/internal/stats"
)

// PartitionAggregate models the application behind incast (the paper's §5.2
// motivation, after Vasudevan et al. [67]): an aggregator fans a query out
// to N workers, each replies with a fixed-size shard, and the query
// completes when the last shard arrives. Query completion time (QCT) is
// dominated by the slowest worker — exactly what switch drops and RTO
// stalls destroy.
type PartitionAggregate struct {
	m          *Manager
	workers    []*Messenger // aggregator → worker (query direction)
	replies    []*Messenger // worker → aggregator (shard direction)
	ShardBytes int64
	QueryBytes int64

	// QCT collects query completion times.
	QCT stats.Sample
	// Queries counts completed queries.
	Queries int

	pending  int
	started  sim.Time
	stopped  bool
	interval sim.Duration
}

// NewPartitionAggregate wires an aggregator (host agg) to the given workers
// with persistent connections in both directions.
func NewPartitionAggregate(m *Manager, agg int, workers []int, shardBytes int64) *PartitionAggregate {
	pa := &PartitionAggregate{m: m, ShardBytes: shardBytes, QueryBytes: 64}
	for _, w := range workers {
		w := w
		q := m.Open(agg, w)
		r := m.Open(w, agg)
		// When the query message reaches the worker, it sends its shard.
		q.OnMessage = func(int64) {
			r.SendMessage(pa.ShardBytes, func(sim.Duration) { pa.shardDone() })
		}
		pa.workers = append(pa.workers, q)
		pa.replies = append(pa.replies, r)
	}
	return pa
}

// Run issues queries back to back (spacing ≥ interval between completions
// and the next fan-out; 0 = closed loop).
func (pa *PartitionAggregate) Run(interval sim.Duration) {
	pa.interval = interval
	pa.issue()
}

// Stop ends the run after the in-flight query.
func (pa *PartitionAggregate) Stop() { pa.stopped = true }

func (pa *PartitionAggregate) issue() {
	if pa.stopped {
		return
	}
	pa.started = pa.m.Net.Sim.Now()
	pa.pending = len(pa.workers)
	for _, q := range pa.workers {
		q.SendMessage(pa.QueryBytes, nil)
	}
}

func (pa *PartitionAggregate) shardDone() {
	pa.pending--
	if pa.pending > 0 {
		return
	}
	pa.QCT.Add(float64(pa.m.Net.Sim.Now() - pa.started))
	pa.Queries++
	if pa.interval > 0 {
		pa.m.Net.Sim.Schedule(pa.interval, pa.issue)
	} else {
		pa.issue()
	}
}
