package workload

// Dedicated tests for the messenger/prober primitives' traffic shapes and
// for the flash-crowd and tenant-churn drivers, including determinism under
// a fixed seed — the property the scenario suite's baselines rest on.

import (
	"fmt"
	"testing"

	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
)

func seededStar(n int, seed int64) *topo.Net {
	return topo.Star(n, topo.Options{Guest: tcpstack.DefaultConfig(), Seed: seed})
}

func TestMessengerShapes(t *testing.T) {
	cases := []struct {
		name  string
		sizes []int64
		// wantDelivered is the receiver-side in-order byte count after the
		// run; every tracked message must have completed.
		wantDelivered int64
	}{
		{"single-small", []int64{1000}, 1000},
		{"single-large", []int64{1 << 20}, 1 << 20},
		{"back-to-back-mixed", []int64{64 << 10, 100, 256 << 10, 1}, (64 << 10) + 100 + (256 << 10) + 1},
		{"many-mice", []int64{100, 100, 100, 100, 100, 100, 100, 100}, 800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := seededStar(2, 1)
			m := NewManager(net)
			ms := m.Open(0, 1)
			var fcts []sim.Duration
			var sizes []int64
			ms.OnMessage = func(size int64) { sizes = append(sizes, size) }
			for _, sz := range tc.sizes {
				ms.SendMessage(sz, func(fct sim.Duration) { fcts = append(fcts, fct) })
			}
			net.Sim.RunFor(200 * sim.Millisecond)
			if len(fcts) != len(tc.sizes) {
				t.Fatalf("completed %d of %d messages", len(fcts), len(tc.sizes))
			}
			if got := ms.Delivered(); got != tc.wantDelivered {
				t.Fatalf("delivered %d, want %d", got, tc.wantDelivered)
			}
			for i, sz := range tc.sizes {
				if sizes[i] != sz {
					t.Fatalf("OnMessage order %v, want %v", sizes, tc.sizes)
				}
			}
			// FCTs on one connection are cumulative: each message waits for
			// its predecessors, so completion times must be non-decreasing.
			for i := 1; i < len(fcts); i++ {
				if fcts[i] < fcts[i-1]-sim.Duration(0) && fcts[i] <= 0 {
					t.Fatalf("FCT %d (%v) negative", i, fcts[i])
				}
			}
		})
	}
}

func TestMessengerBulkUntracked(t *testing.T) {
	net := seededStar(2, 1)
	m := NewManager(net)
	ms := m.Open(0, 1)
	fired := false
	ms.OnMessage = func(int64) { fired = true }
	ms.SendBulk(1 << 20)
	net.Sim.RunFor(50 * sim.Millisecond)
	if ms.Delivered() != 1<<20 {
		t.Fatalf("delivered %d, want %d", ms.Delivered(), 1<<20)
	}
	if fired {
		t.Fatal("bulk bytes must not fire message callbacks")
	}
}

func TestProberShapes(t *testing.T) {
	cases := []struct {
		name    string
		spacing sim.Duration
		bytes   int64
		// maxSamples bounds the sample count for spaced probing (one probe
		// per spacing interval at most).
		maxSamples int
	}{
		{"back-to-back", 0, 0, 0},
		{"spaced-1ms", sim.Millisecond, 0, 25},
		{"big-probe", 0, 8 << 10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := seededStar(2, 1)
			m := NewManager(net)
			p := NewProber(m, 0, 1)
			p.Spacing = tc.spacing
			if tc.bytes != 0 {
				p.MsgBytes = tc.bytes
			}
			p.Start()
			net.Sim.RunFor(20 * sim.Millisecond)
			p.Stop()
			if p.Samples.N() < 5 {
				t.Fatalf("only %d samples", p.Samples.N())
			}
			if tc.maxSamples > 0 && p.Samples.N() > tc.maxSamples {
				t.Fatalf("%d samples exceed the spacing bound %d", p.Samples.N(), tc.maxSamples)
			}
			// One exchange in flight on an idle fabric: every sample is a
			// plausible base RTT, well under a millisecond.
			if min, max := p.Samples.Min(), p.Samples.Max(); min <= 0 || max > 2e6 {
				t.Fatalf("sample range [%.0f, %.0f]ns implausible on idle fabric", min, max)
			}
		})
	}
}

func TestFlashCrowdShapes(t *testing.T) {
	cases := []struct {
		name    string
		senders int
		bytes   int64
		period  sim.Duration
		runFor  sim.Duration
		// minWaves/minFCTs are loose lower bounds; exact counts are pinned
		// by the determinism test below.
		minWaves int
	}{
		{"small-crowd", 4, 16 << 10, 2 * sim.Millisecond, 20 * sim.Millisecond, 8},
		{"wide-crowd", 12, 64 << 10, 5 * sim.Millisecond, 30 * sim.Millisecond, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := seededStar(tc.senders+1, 1)
			m := NewManager(net)
			senders := make([]int, tc.senders)
			for i := range senders {
				senders[i] = i
			}
			f := NewFlashCrowd(m, FlashCrowdConfig{
				Senders: senders, Hot: tc.senders, Bytes: tc.bytes, Period: tc.period,
			})
			f.Start()
			net.Sim.RunFor(tc.runFor)
			f.Stop()
			net.Sim.RunFor(tc.runFor) // drain the in-flight wave
			if f.Waves < tc.minWaves {
				t.Fatalf("only %d waves, want ≥ %d", f.Waves, tc.minWaves)
			}
			// Every issued request eventually completes: waves × senders.
			if want := f.Waves * tc.senders; f.FCT.N() != want {
				t.Fatalf("%d FCTs, want %d (%d waves × %d senders)", f.FCT.N(), want, f.Waves, tc.senders)
			}
			if f.FCT.Min() <= 0 {
				t.Fatalf("non-positive FCT: %v", f.FCT.Min())
			}
		})
	}
}

func TestFlashCrowdCongestsHotHost(t *testing.T) {
	// The wave tail must exceed a lone request's FCT — otherwise the driver
	// isn't actually producing transient incast on the hot downlink.
	net := seededStar(17, 1)
	m := NewManager(net)
	lone := NewFlashCrowd(m, FlashCrowdConfig{Senders: []int{0}, Hot: 16, Bytes: 64 << 10, Period: 2 * sim.Millisecond})
	lone.Start()
	net.Sim.RunFor(10 * sim.Millisecond)
	lone.Stop()
	net.Sim.RunFor(10 * sim.Millisecond)

	net2 := seededStar(17, 1)
	m2 := NewManager(net2)
	senders := make([]int, 16)
	for i := range senders {
		senders[i] = i
	}
	crowd := NewFlashCrowd(m2, FlashCrowdConfig{Senders: senders, Hot: 16, Bytes: 64 << 10, Period: 2 * sim.Millisecond})
	crowd.Start()
	net2.Sim.RunFor(10 * sim.Millisecond)
	crowd.Stop()
	net2.Sim.RunFor(10 * sim.Millisecond)

	if crowd.FCT.Percentile(99) < 2*lone.FCT.Percentile(99) {
		t.Fatalf("crowd p99 %.0fns not ≫ lone p99 %.0fns — no transient incast",
			crowd.FCT.Percentile(99), lone.FCT.Percentile(99))
	}
}

func TestTenantChurnShapes(t *testing.T) {
	cases := []struct {
		name string
		cfg  TenantChurnConfig
	}{
		{"default-3x4", TenantChurnConfig{BgBytes: 1 << 20}},
		{"two-tenants-min-group", TenantChurnConfig{Tenants: 2, HostsPerTenant: 2, BgBytes: 512 << 10}},
		{"no-churn", TenantChurnConfig{Tenants: 2, HostsPerTenant: 3, BgBytes: 1 << 20, ChurnPeriod: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			noChurn := cfg.ChurnPeriod < 0
			net := seededStar(cfg.Hosts(), 1)
			m := NewManager(net)
			w := NewTenantChurn(m, cfg)
			w.Start()
			net.Sim.RunFor(60 * sim.Millisecond)
			w.Stop()
			if w.FCTs.Mice.N() == 0 || w.FCTs.Background.N() == 0 {
				t.Fatalf("degenerate FCTs: mice=%d bg=%d", w.FCTs.Mice.N(), w.FCTs.Background.N())
			}
			if noChurn {
				if w.Departures != 0 || w.Arrivals != 0 {
					t.Fatalf("churn disabled but saw %d departures / %d arrivals", w.Departures, w.Arrivals)
				}
			} else if w.Departures == 0 {
				t.Fatal("no departures in 60ms with 10ms churn period")
			}
		})
	}
}

func TestTenantChurnTooFewHostsPanics(t *testing.T) {
	net := seededStar(3, 1)
	m := NewManager(net)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTenantChurn(m, TenantChurnConfig{Tenants: 2, HostsPerTenant: 4})
}

// driverFingerprint runs every driver on one fabric and folds the observable
// outputs into a comparable string.
func driverFingerprint(seed int64) string {
	cfg := TenantChurnConfig{Tenants: 2, HostsPerTenant: 3, BgBytes: 1 << 20}
	net := seededStar(12, seed)
	m := NewManager(net)
	w := NewTenantChurn(m, cfg)
	w.Start()
	f := NewFlashCrowd(m, FlashCrowdConfig{Senders: []int{6, 7, 8}, Hot: 9, Bytes: 32 << 10, Period: 3 * sim.Millisecond})
	f.Start()
	p := NewProber(m, 10, 11)
	p.Start()
	net.Sim.RunFor(40 * sim.Millisecond)
	return fmt.Sprintf("mice=%d/%.0f bg=%d/%.0f waves=%d fct=%d/%.0f probes=%d/%.0f churn=%d+%d",
		w.FCTs.Mice.N(), w.FCTs.Mice.Percentile(50),
		w.FCTs.Background.N(), w.FCTs.Background.Percentile(50),
		f.Waves, f.FCT.N(), f.FCT.Percentile(99),
		p.Samples.N(), p.Samples.Percentile(50),
		w.Departures, w.Arrivals)
}

func TestDriversDeterministicUnderFixedSeed(t *testing.T) {
	a, b := driverFingerprint(7), driverFingerprint(7)
	if a != b {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	if c := driverFingerprint(8); c == a {
		t.Fatalf("different seeds produced identical fingerprints: %s", a)
	}
}
