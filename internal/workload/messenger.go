package workload

import (
	"fmt"

	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
)

// Manager owns the connection plumbing on one Net: every host listens on a
// common port, and accepted connections are matched back to the Messenger
// that dialed them.
type Manager struct {
	Net  *topo.Net
	Port uint16

	pending map[connID]*Messenger
}

type connID struct {
	addr packet.Addr
	port uint16
}

// NewManager installs listeners on every host.
func NewManager(net *topo.Net) *Manager {
	m := &Manager{Net: net, Port: 5001, pending: make(map[connID]*Messenger)}
	for i := range net.Hosts {
		m.listenOn(i)
	}
	return m
}

func (m *Manager) listenOn(i int) {
	m.Net.Stacks[i].Listen(m.Port, func(c *tcpstack.Conn) {
		raddr, rport := c.RemoteAddr()
		id := connID{raddr, rport}
		ms, ok := m.pending[id]
		if !ok {
			return // unknown connection; leave it unused
		}
		delete(m.pending, id)
		ms.attachServer(c)
	})
}

// Open dials a persistent connection from host `from` to host `to` and
// returns its Messenger.
func (m *Manager) Open(from, to int) *Messenger {
	if from == to {
		panic(fmt.Sprintf("workload: self-connection on host %d", from))
	}
	cli := m.Net.Stacks[from].Dial(m.Net.Addr(to), m.Port)
	ms := &Messenger{Sim: m.Net.Sim, Cli: cli, From: from, To: to}
	m.pending[connID{m.Net.Addr(from), cli.LocalPort()}] = ms
	return ms
}

// message is one tracked application message in flight.
type message struct {
	end     int64 // cumulative delivered-bytes offset that completes it
	size    int64
	started sim.Time
	done    func(fct sim.Duration)
}

// Messenger is a one-direction message stream over a persistent TCP
// connection: the client writes messages back to back and completion is
// observed at the *receiver*, when the in-order delivered byte count crosses
// each message boundary (the paper's "simple TCP application ... to measure
// FCTs"). Measuring at the receiver makes an FCT include every delay the
// paper cares about — queueing on both the data and ACK path, loss recovery,
// and RTO stalls — not just the sender's last write.
//
// Messages on one Messenger complete strictly in send order (TCP delivers in
// order), so a queued message's FCT includes the time spent waiting behind
// its predecessors; drivers that need independent timings (e.g. Prober) use
// a dedicated connection. The zero message count is fine: a Messenger used
// only via SendBulk tracks Delivered() without per-message accounting.
type Messenger struct {
	Sim      *sim.Simulator
	Cli      *tcpstack.Conn
	From, To int

	srv    *tcpstack.Conn
	queued int64
	msgs   []message
	// OnMessage fires at the receiver when a tracked message fully arrives.
	OnMessage func(size int64)
}

func (ms *Messenger) attachServer(c *tcpstack.Conn) {
	ms.srv = c
	c.OnRecv = func(int) { ms.checkComplete() }
	ms.checkComplete()
}

// Srv returns the server-side connection (nil before accept).
func (ms *Messenger) Srv() *tcpstack.Conn { return ms.srv }

// SendMessage queues one tracked message of n bytes; done (optional) runs at
// the receiver with the flow completion time.
func (ms *Messenger) SendMessage(n int64, done func(fct sim.Duration)) {
	ms.queued += n
	ms.msgs = append(ms.msgs, message{
		end: ms.queued, size: n, started: ms.Sim.Now(), done: done,
	})
	ms.Cli.Send(n)
}

// SendBulk queues untracked bytes (long-lived background flows).
func (ms *Messenger) SendBulk(n int64) {
	ms.queued += n
	ms.Cli.Send(n)
}

func (ms *Messenger) checkComplete() {
	if ms.srv == nil {
		return
	}
	for len(ms.msgs) > 0 && ms.srv.Delivered >= ms.msgs[0].end {
		msg := ms.msgs[0]
		ms.msgs = ms.msgs[1:]
		if msg.done != nil {
			msg.done(ms.Sim.Now() - msg.started)
		}
		if ms.OnMessage != nil {
			ms.OnMessage(msg.size)
		}
	}
}

// Delivered returns bytes delivered in order at the receiver.
func (ms *Messenger) Delivered() int64 {
	if ms.srv == nil {
		return 0
	}
	return ms.srv.Delivered
}
