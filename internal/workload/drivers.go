package workload

import (
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/trace"
)

// FCTs separates mice and background completion-time samples the way §5.2's
// figures do.
type FCTs struct {
	Mice       stats.Sample
	Background stats.Sample
}

// Bulk starts one untracked long-lived flow and returns its messenger.
func Bulk(m *Manager, from, to int) *Messenger {
	ms := m.Open(from, to)
	ms.SendBulk(1 << 42)
	return ms
}

// Incast starts n senders blasting one receiver (the §5.2 many-to-one
// experiment). Hosts 0..n-1 send, host `recv` receives. Returns the flows.
func Incast(m *Manager, senders []int, recv int) []*Messenger {
	flows := make([]*Messenger, 0, len(senders))
	for _, s := range senders {
		flows = append(flows, Bulk(m, s, recv))
	}
	return flows
}

// Rates returns each flow's average delivered rate in bits/sec over [t0, now].
func Rates(flows []*Messenger, t0, now sim.Time) []float64 {
	out := make([]float64, len(flows))
	span := (now - t0).Seconds()
	if span <= 0 {
		return out
	}
	for i, f := range flows {
		out[i] = float64(f.Delivered()) * 8 / span
	}
	return out
}

// StrideConfig parameterizes the concurrent-stride workload. The paper runs
// 17 servers for 10 minutes with 512MB background flows and 16KB mice every
// 100ms; defaults here are time-scaled so the dynamics (many overlapping
// background flows + latency-sensitive mice) are preserved at simulable cost.
type StrideConfig struct {
	N          int          // servers (paper: 17)
	BgBytes    int64        // background transfer size (paper: 512MB)
	MiceBytes  int64        // mice message size (paper: 16KB)
	MicePeriod sim.Duration // paper: 100ms
}

// DefaultStride returns the paper's parameters.
func DefaultStride() StrideConfig {
	return StrideConfig{N: 17, BgBytes: 512 << 20, MiceBytes: 16 << 10, MicePeriod: 100 * sim.Millisecond}
}

// Stride launches the concurrent-stride workload: server i sends BgBytes to
// servers [i+1, i+4] mod N sequentially in a loop, and MiceBytes to server
// (i+8) mod N every MicePeriod.
func Stride(m *Manager, cfg StrideConfig, fcts *FCTs) {
	n := cfg.N
	for i := 0; i < n; i++ {
		i := i
		// Background: four concurrent streams (one per destination), each
		// sending BgBytes transfers back to back — the "concurrent" in
		// concurrent stride. Every host's downlink sees a standing 4:1 load.
		for j := 0; j < 4; j++ {
			conn := m.Open(i, (i+1+j)%n)
			var next func()
			next = func() {
				conn.SendMessage(cfg.BgBytes, func(fct sim.Duration) {
					fcts.Background.Add(float64(fct))
					next()
				})
			}
			next()
		}

		// Mice: periodic small messages to i+8.
		mice := m.Open(i, (i+8)%n)
		var tick func()
		tick = func() {
			mice.SendMessage(cfg.MiceBytes, func(fct sim.Duration) {
				fcts.Mice.Add(float64(fct))
			})
			m.Net.Sim.Schedule(cfg.MicePeriod, tick)
		}
		offset := sim.Duration(m.Net.Sim.Rand().Int63n(int64(cfg.MicePeriod)))
		m.Net.Sim.Schedule(offset, tick)
	}
}

// ShuffleConfig parameterizes the shuffle workload: every server sends
// BgBytes to every other server in random order, at most Concurrency
// transfers at a time, plus the same mice pattern as stride.
type ShuffleConfig struct {
	N           int
	BgBytes     int64
	Concurrency int
	MiceBytes   int64
	MicePeriod  sim.Duration
}

// DefaultShuffle returns the paper's parameters.
func DefaultShuffle() ShuffleConfig {
	return ShuffleConfig{N: 17, BgBytes: 512 << 20, Concurrency: 2, MiceBytes: 16 << 10, MicePeriod: 100 * sim.Millisecond}
}

// Shuffle launches the shuffle workload. onDone (optional) fires when every
// server finishes its transfer list.
func Shuffle(m *Manager, cfg ShuffleConfig, fcts *FCTs, onDone func()) {
	n := cfg.N
	remaining := n
	for i := 0; i < n; i++ {
		i := i
		order := m.Net.Sim.Rand().Perm(n - 1)
		dsts := make([]int, 0, n-1)
		for _, o := range order {
			d := o
			if d >= i {
				d++
			}
			dsts = append(dsts, d)
		}
		idx := 0
		var launch func()
		active := 0
		launch = func() {
			for active < cfg.Concurrency && idx < len(dsts) {
				d := dsts[idx]
				idx++
				active++
				ms := m.Open(i, d)
				ms.SendMessage(cfg.BgBytes, func(fct sim.Duration) {
					fcts.Background.Add(float64(fct))
					active--
					if idx < len(dsts) {
						launch()
					} else if active == 0 {
						remaining--
						if remaining == 0 && onDone != nil {
							onDone()
						}
					}
				})
			}
		}
		launch()

		mice := m.Open(i, (i+8)%n)
		var tick func()
		tick = func() {
			mice.SendMessage(cfg.MiceBytes, func(fct sim.Duration) {
				fcts.Mice.Add(float64(fct))
			})
			m.Net.Sim.Schedule(cfg.MicePeriod, tick)
		}
		m.Net.Sim.Schedule(sim.Duration(m.Net.Sim.Rand().Int63n(int64(cfg.MicePeriod))), tick)
	}
}

// TraceConfig parameterizes the trace-driven workload: AppsPerServer closed-
// loop applications per server, each holding a connection to every other
// server, drawing message sizes from Dist and sending each to a uniformly
// random destination in sequence.
type TraceConfig struct {
	N             int
	AppsPerServer int // paper: 5
	Dist          *trace.Dist
	// MiceCutoff classifies a message as mice for FCT reporting (paper: 10KB).
	MiceCutoff int64
}

// DefaultTrace returns the paper's parameters over the given distribution.
func DefaultTrace(d *trace.Dist) TraceConfig {
	return TraceConfig{N: 17, AppsPerServer: 5, Dist: d, MiceCutoff: 10 << 10}
}

// TraceDriven launches the trace-driven workload.
func TraceDriven(m *Manager, cfg TraceConfig, fcts *FCTs) {
	rng := m.Net.Sim.Rand()
	for i := 0; i < cfg.N; i++ {
		for a := 0; a < cfg.AppsPerServer; a++ {
			// Each app owns one connection per destination.
			conns := make(map[int]*Messenger, cfg.N-1)
			for d := 0; d < cfg.N; d++ {
				if d != i {
					conns[d] = m.Open(i, d)
				}
			}
			var next func()
			next = func() {
				size := cfg.Dist.Sample(rng)
				d := rng.Intn(cfg.N - 1)
				if d >= i {
					d++
				}
				conns[d].SendMessage(size, func(fct sim.Duration) {
					if size < cfg.MiceCutoff {
						fcts.Mice.Add(float64(fct))
					} else {
						fcts.Background.Add(float64(fct))
					}
					next()
				})
			}
			// Stagger app start times to avoid synchronized bursts.
			m.Net.Sim.Schedule(sim.Duration(rng.Int63n(int64(sim.Millisecond))), next)
		}
	}
}
