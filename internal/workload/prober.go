package workload

import (
	"acdc/internal/sim"
	"acdc/internal/stats"
)

// Prober measures application-level TCP round-trip time the way sockperf's
// ping-pong mode does: a small request, a small immediate response on the
// same connection, next request only after the response arrives. Exactly one
// exchange is ever in flight, so each sample is an isolated round trip whose
// value is dominated by the queues the probe crosses — which is what the
// paper's RTT CDFs (Figures 2, 8, 16, 19, 20) show.
//
// The connection should be dialed *before* the fabric is congested (the
// paper's sockperf connections are long-lived): NewProber performs the dial,
// Start sends the first probe. Samples are in nanoseconds; divide by 1e6 for
// the milliseconds the figures use. Spacing throttles the probe rate; the
// default back-to-back mode yields the most samples but never more than one
// outstanding exchange, so the probe itself does not congest the path.
type Prober struct {
	ms      *Messenger
	Samples *stats.Sample
	// Spacing inserts idle time between a response and the next request;
	// zero = back-to-back (sockperf default).
	Spacing sim.Duration
	// MsgBytes is the probe size (default 64, sockperf's default payload).
	MsgBytes int64

	respEnd int64
	started sim.Time
	stopped bool
}

// NewProber creates a prober over a fresh connection from → to.
func NewProber(m *Manager, from, to int) *Prober {
	p := &Prober{ms: m.Open(from, to), Samples: &stats.Sample{}, MsgBytes: 64}
	// Response tracking: each server reply adds MsgBytes to the client-side
	// delivered stream.
	p.ms.Cli.OnRecv = func(int) { p.onResponse() }
	p.ms.OnMessage = func(int64) {
		// Request fully arrived at server: send the pong.
		p.respEnd += p.MsgBytes
		p.ms.Srv().Send(p.MsgBytes)
	}
	return p
}

// Start begins probing.
func (p *Prober) Start() { p.sendProbe() }

// Stop ends probing after the in-flight exchange.
func (p *Prober) Stop() { p.stopped = true }

func (p *Prober) sendProbe() {
	if p.stopped {
		return
	}
	p.started = p.ms.Sim.Now()
	p.ms.SendMessage(p.MsgBytes, nil)
}

func (p *Prober) onResponse() {
	if p.ms.Cli.Delivered >= p.respEnd && p.respEnd > 0 {
		p.Samples.Add(float64(p.ms.Sim.Now() - p.started))
		if p.Spacing > 0 {
			p.ms.Sim.Schedule(p.Spacing, p.sendProbe)
		} else {
			p.sendProbe()
		}
	}
}
