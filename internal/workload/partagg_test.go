package workload

import (
	"testing"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
)

func TestPartitionAggregateCompletesQueries(t *testing.T) {
	net := starNet(9)
	m := NewManager(net)
	pa := NewPartitionAggregate(m, 8, []int{0, 1, 2, 3, 4, 5, 6, 7}, 64<<10)
	pa.Run(0)
	net.Sim.RunFor(100 * sim.Millisecond)
	pa.Stop()
	if pa.Queries < 5 {
		t.Fatalf("only %d queries completed", pa.Queries)
	}
	if pa.QCT.Min() <= 0 {
		t.Fatal("non-positive QCT")
	}
}

func TestPartitionAggregateQCTUnderSchemes(t *testing.T) {
	// The incast story at the application level: synchronized 32-worker
	// fan-in with 256KB shards. CUBIC's drop-tail losses inflate tail QCT;
	// AC/DC over the same CUBIC guests must pull the tail back down.
	run := func(acdcOn bool) *PartitionAggregate {
		g := tcpstack.DefaultConfig() // CUBIC, no ECN
		o := topo.Options{Guest: g, Seed: 5}
		if acdcOn {
			ac := core.DefaultConfig()
			o.ACDC = &ac
			o.RED = netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold}
		}
		net := topo.Star(33, o)
		m := NewManager(net)
		workers := make([]int, 32)
		for i := range workers {
			workers[i] = i
		}
		pa := NewPartitionAggregate(m, 32, workers, 256<<10)
		pa.Run(0)
		net.Sim.RunFor(400 * sim.Millisecond)
		pa.Stop()
		return pa
	}
	cubic := run(false)
	acdc := run(true)
	t.Logf("CUBIC: n=%d p50=%.2fms p99=%.2fms", cubic.Queries,
		cubic.QCT.Percentile(50)/1e6, cubic.QCT.Percentile(99)/1e6)
	t.Logf("AC/DC: n=%d p50=%.2fms p99=%.2fms", acdc.Queries,
		acdc.QCT.Percentile(50)/1e6, acdc.QCT.Percentile(99)/1e6)
	if cubic.Queries == 0 || acdc.Queries == 0 {
		t.Fatal("no queries completed")
	}
	// AC/DC must not be worse at the tail, and usually is far better.
	if acdc.QCT.Percentile(99) > cubic.QCT.Percentile(99)*1.1 {
		t.Fatalf("AC/DC tail QCT %.2fms worse than CUBIC %.2fms",
			acdc.QCT.Percentile(99)/1e6, cubic.QCT.Percentile(99)/1e6)
	}
	// And it should complete at least as many queries in the same time.
	if acdc.Queries < cubic.Queries {
		t.Fatalf("AC/DC completed %d < CUBIC %d", acdc.Queries, cubic.Queries)
	}
}
