package workload

import (
	"acdc/internal/sim"
	"acdc/internal/stats"
)

// FlashCrowdConfig parameterizes the flash-crowd workload: periodic waves in
// which every sender in the crowd hits one hot host with a short request at
// (almost) the same instant. It is the bursty cousin of incast — instead of
// long-lived flows standing on the bottleneck, the congestion appears from
// nothing, slams the hot host's downlink for one request's worth of bytes,
// and vanishes until the next wave. What matters is the request completion
// tail: a scheme that needs a standing queue (or a retransmission timeout)
// to absorb the wave shows up immediately at p99.9.
type FlashCrowdConfig struct {
	// Senders are the crowd's host indices.
	Senders []int
	// Hot is the host every request targets.
	Hot int
	// Bytes is the request size (default 64KB — a small object fetch).
	Bytes int64
	// Period is the time between wave starts (default 5ms).
	Period sim.Duration
	// Spread staggers each sender's request uniformly in [0, Spread) within
	// a wave (default 100µs): real crowds are near- but not perfectly
	// synchronized. Offsets are drawn from the simulation RNG, so a fixed
	// seed replays the identical arrival pattern.
	Spread sim.Duration
}

// withDefaults fills unset fields.
func (c FlashCrowdConfig) withDefaults() FlashCrowdConfig {
	if c.Bytes == 0 {
		c.Bytes = 64 << 10
	}
	if c.Period == 0 {
		c.Period = 5 * sim.Millisecond
	}
	if c.Spread == 0 {
		c.Spread = 100 * sim.Microsecond
	}
	return c
}

// FlashCrowd drives the flash-crowd workload over persistent connections
// (one per sender, dialed up front so the waves measure data-path behaviour,
// not handshakes). FCT collects per-request completion times; Waves counts
// waves issued so far.
type FlashCrowd struct {
	// FCT collects one completion-time sample per delivered request.
	FCT stats.Sample
	// Waves counts waves issued (including the in-flight one).
	Waves int

	m       *Manager
	cfg     FlashCrowdConfig
	conns   []*Messenger
	stopped bool
}

// NewFlashCrowd dials one persistent connection per sender to the hot host
// and returns the (not yet started) workload.
func NewFlashCrowd(m *Manager, cfg FlashCrowdConfig) *FlashCrowd {
	cfg = cfg.withDefaults()
	f := &FlashCrowd{m: m, cfg: cfg}
	for _, s := range cfg.Senders {
		f.conns = append(f.conns, m.Open(s, cfg.Hot))
	}
	return f
}

// Start issues the first wave immediately and re-arms every Period.
func (f *FlashCrowd) Start() { f.wave() }

// Stop ends the workload after the in-flight wave.
func (f *FlashCrowd) Stop() { f.stopped = true }

func (f *FlashCrowd) wave() {
	if f.stopped {
		return
	}
	f.Waves++
	rng := f.m.Net.Sim.Rand()
	for _, c := range f.conns {
		c := c
		offset := sim.Duration(rng.Int63n(int64(f.cfg.Spread)))
		f.m.Net.Sim.Schedule(offset, func() {
			c.SendMessage(f.cfg.Bytes, func(fct sim.Duration) {
				f.FCT.Add(float64(fct))
			})
		})
	}
	f.m.Net.Sim.Schedule(f.cfg.Period, f.wave)
}
