package workload

import (
	"acdc/internal/sim"
)

// TenantChurnConfig parameterizes the multi-tenant-churn workload: several
// tenants each own a disjoint group of hosts and run their own background +
// mice traffic inside the group, while tenants keep arriving and departing.
// Each departure idles a tenant's connections (flows go quiet and age out of
// the vSwitch flow tables); each arrival dials a *fresh* set of connections
// (new flows churn the tables). The workload therefore exercises exactly the
// state-lifecycle paths a shared production vSwitch lives on — flow setup,
// idle GC, midstream adoption after restarts — under continuously shifting
// load, instead of the fixed flow population the paper's figures use.
type TenantChurnConfig struct {
	// Tenants is the tenant count (default 3).
	Tenants int
	// HostsPerTenant is each tenant's group size (default 4, minimum 2).
	// Tenant t owns hosts [t*HostsPerTenant, (t+1)*HostsPerTenant).
	HostsPerTenant int
	// BgBytes is the background message size sent host→next-host around each
	// tenant's ring, back to back (default 2MB).
	BgBytes int64
	// MiceBytes is the mice message size (default 16KB).
	MiceBytes int64
	// MicePeriod spaces each host's mice messages (default 2ms).
	MicePeriod sim.Duration
	// ChurnPeriod is the time between churn events (default 10ms; negative
	// disables churn, leaving all tenants active — a plain multi-tenant
	// mix). Events round-robin the tenants: an active tenant departs, a
	// departed one re-arrives with fresh connections.
	ChurnPeriod sim.Duration
}

// withDefaults fills unset fields.
func (c TenantChurnConfig) withDefaults() TenantChurnConfig {
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	if c.HostsPerTenant == 0 {
		c.HostsPerTenant = 4
	}
	if c.HostsPerTenant < 2 {
		c.HostsPerTenant = 2
	}
	if c.BgBytes == 0 {
		c.BgBytes = 2 << 20
	}
	if c.MiceBytes == 0 {
		c.MiceBytes = 16 << 10
	}
	if c.MicePeriod == 0 {
		c.MicePeriod = 2 * sim.Millisecond
	}
	if c.ChurnPeriod == 0 {
		c.ChurnPeriod = 10 * sim.Millisecond
	}
	return c
}

// Hosts returns the host count the configured workload needs
// (Tenants × HostsPerTenant); build the topology at least this large.
func (c TenantChurnConfig) Hosts() int {
	c = c.withDefaults()
	return c.Tenants * c.HostsPerTenant
}

// tenant is one tenant's live state: its generation counter invalidates the
// send loops of a departed epoch, so a departure needs no per-connection
// bookkeeping — stale loops see a newer generation and stop.
type tenant struct {
	active bool
	gen    int
}

// TenantChurn drives the multi-tenant-churn workload. FCTs collects mice and
// background completion times across all tenants; Departures and Arrivals
// count churn events.
type TenantChurn struct {
	// FCTs collects mice/background completion times over every tenant.
	FCTs FCTs
	// Departures and Arrivals count churn events applied so far.
	Departures, Arrivals int

	m       *Manager
	cfg     TenantChurnConfig
	tenants []tenant
	next    int // round-robin churn cursor
	stopped bool
}

// NewTenantChurn builds the (not yet started) workload over hosts
// [0, cfg.Hosts()) of m's Net.
func NewTenantChurn(m *Manager, cfg TenantChurnConfig) *TenantChurn {
	cfg = cfg.withDefaults()
	if n := len(m.Net.Hosts); n < cfg.Hosts() {
		panic("workload: tenant-churn needs more hosts than the topology has")
	}
	return &TenantChurn{m: m, cfg: cfg, tenants: make([]tenant, cfg.Tenants)}
}

// Start activates every tenant and begins the churn schedule.
func (tc *TenantChurn) Start() {
	for t := range tc.tenants {
		tc.activate(t)
	}
	if tc.cfg.ChurnPeriod > 0 {
		tc.m.Net.Sim.Schedule(tc.cfg.ChurnPeriod, tc.churn)
	}
}

// Stop freezes the workload: no further churn events, and every tenant's
// send loops end at the next message boundary.
func (tc *TenantChurn) Stop() {
	tc.stopped = true
	for t := range tc.tenants {
		tc.tenants[t].active = false
		tc.tenants[t].gen++
	}
}

// churn applies one round-robin churn event and re-arms.
func (tc *TenantChurn) churn() {
	if tc.stopped {
		return
	}
	t := tc.next
	tc.next = (tc.next + 1) % len(tc.tenants)
	if tc.tenants[t].active {
		// Departure: bump the generation so the tenant's loops go quiet at
		// their next message boundary and its flows idle out of the tables.
		tc.tenants[t].active = false
		tc.tenants[t].gen++
		tc.Departures++
	} else {
		tc.activate(t)
		tc.Arrivals++
	}
	tc.m.Net.Sim.Schedule(tc.cfg.ChurnPeriod, tc.churn)
}

// activate (re)starts tenant t with fresh connections.
func (tc *TenantChurn) activate(t int) {
	tc.tenants[t].active = true
	gen := tc.tenants[t].gen
	h := tc.cfg.HostsPerTenant
	base := t * h
	rng := tc.m.Net.Sim.Rand()
	for i := 0; i < h; i++ {
		src := base + i
		// Background ring: src → next host in the group, messages back to back.
		bg := tc.m.Open(src, base+(i+1)%h)
		var nextBg func()
		nextBg = func() {
			if tc.tenants[t].gen != gen {
				return
			}
			bg.SendMessage(tc.cfg.BgBytes, func(fct sim.Duration) {
				tc.FCTs.Background.Add(float64(fct))
				nextBg()
			})
		}
		nextBg()

		// Mice: periodic small messages to the host after the ring neighbour
		// (the neighbour itself when the group only has two hosts).
		mice := tc.m.Open(src, base+(i+min(2, h-1))%h)
		var tick func()
		tick = func() {
			if tc.tenants[t].gen != gen {
				return
			}
			mice.SendMessage(tc.cfg.MiceBytes, func(fct sim.Duration) {
				tc.FCTs.Mice.Add(float64(fct))
			})
			tc.m.Net.Sim.Schedule(tc.cfg.MicePeriod, tick)
		}
		tc.m.Net.Sim.Schedule(sim.Duration(rng.Int63n(int64(tc.cfg.MicePeriod))), tick)
	}
}
