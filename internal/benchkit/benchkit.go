// Package benchkit holds the datapath-overhead benchmark fixture shared by
// the repo-root Figure 11/12 benchmarks (`go test -bench`) and the
// cmd/acdcbench reporting binary, so both measure exactly the same loop.
package benchkit

import (
	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// OverheadBench is per-flow template traffic through one AC/DC vSwitch with
// an established flow table: the paper's Figure 11 (sender side) and Figure
// 12 (receiver side) per-segment overhead measurement.
type OverheadBench struct {
	V      *core.VSwitch
	Pool   *packet.Pool     // the host's packet pool (steady-state clones are free)
	Data   []*packet.Packet // egress data segments, Train per flow (sender side)
	Acks   []*packet.Packet // ingress ACK with PACK per flow (sender side)
	InData []*packet.Packet // ingress data, Train per flow (receiver side)
	OutAck []*packet.Packet // egress ACK per flow (receiver side)

	// Train is how many back-to-back segments each flow contributes to the
	// stream before it moves to the next flow — the shape a ring drain of a
	// sender's cwnd burst (or a GRO-coalesced receive) hands the datapath.
	// Data/InData hold Train templates per flow (index f*Train+j) so a train
	// is distinct in-order segments, not one buffer aliased. Train is 1 for
	// the classic fixtures, whose *Round methods index Data by flow directly.
	Train int

	payload uint32 // data segment payload length (sequence bump per round)

	sCur, rCur int // stream cursors (packet position) for the *Stream methods

	// Reusable batch scratch for the *RoundBatch methods, so the batch path
	// is as allocation-free as the per-packet one.
	ps    []*packet.Packet
	pairs []*packet.Packet
}

// NewOverheadBench builds the fixture with nFlows established flows.
func NewOverheadBench(nFlows int) *OverheadBench {
	return NewOverheadBenchCfg(nFlows, nil)
}

// NewOverheadBenchCfg is NewOverheadBench with a Config hook, for ablations
// that flip datapath features (metrics, policing, …).
func NewOverheadBenchCfg(nFlows int, mutate func(*core.Config)) *OverheadBench {
	return newOverheadBench(nFlows, 1, mutate)
}

// NewOverheadBenchTrains is NewOverheadBench with train-length control for
// the *Stream methods: successive stream positions visit each flow train
// times before moving on, modelling burst arrivals. Use the Stream methods
// (not the per-flow Round methods) on a fixture with train > 1.
func NewOverheadBenchTrains(nFlows, train int) *OverheadBench {
	return newOverheadBench(nFlows, train, nil)
}

func newOverheadBench(nFlows, train int, mutate func(*core.Config)) *OverheadBench {
	s := sim.New(1)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.Pool = packet.NewPool()
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	cfg := core.DefaultConfig()
	cfg.MTU = 1500 // the paper reports 1.5KB MTU (worst case: most packets)
	if mutate != nil {
		mutate(&cfg)
	}
	v := core.Attach(s, host, cfg)

	if train < 1 {
		train = 1
	}
	ob := &OverheadBench{V: v, Pool: host.Pool, payload: 1460, Train: train}
	for i := 0; i < nFlows; i++ {
		la := host.Addr
		ra := packet.MakeAddr(10, 0, byte(1+i/250), byte(1+i%250))
		sport := uint16(30000 + i%20000)
		// Establish state via the real datapath: egress SYN, ingress SYN-ACK.
		syn := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1000, Flags: packet.FlagSYN,
			Window: 65535, Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.Egress(syn)
		synack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5000, Ack: 1001,
			Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
			Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.Ingress(synack)

		// Train templates are staggered by one payload each; every use bumps
		// by train*payload, so the interleaved stream stays in order.
		for j := 0; j < train; j++ {
			ob.Data = append(ob.Data, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sport, DstPort: 5001, Seq: 1001 + uint32(j)*1460, Ack: 5001,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
			}, 1460))
		}
		ack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5001, Ack: 1001,
			Flags: packet.FlagACK, Window: 65535,
		}, 0)
		var opt [packet.PACKOptionLen]byte
		packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: 1460, MarkedBytes: 0})
		ack.Buf = packet.InsertTCPOption(ack.Buf, opt[:])
		ob.Acks = append(ob.Acks, ack)

		// Receiver-module traffic for the reverse direction.
		for j := 0; j < train; j++ {
			ob.InData = append(ob.InData, packet.Build(ra, la, packet.ECT0, packet.TCPFields{
				SrcPort: 5001, DstPort: sport, Seq: 5001 + uint32(j)*1460, Ack: 1001,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
			}, 1460))
		}
		ob.OutAck = append(ob.OutAck, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1001, Ack: 6461,
			Flags: packet.FlagACK, Window: 65535,
		}, 0))
	}
	return ob
}

// TierPayload is the data-segment payload used by the flow-count tiers:
// small enough that a million flows' worth of template packets stays within
// a modest memory budget, while the datapath work per packet (lookup, lock,
// option rewrite, accounting) is unchanged.
const TierPayload = 128

// NewTierBench builds a sender-side fixture with nFlows established flows
// for the 100k/1M-flow tiers. It differs from NewOverheadBench in scale
// only: unique private addressing good for 16M flows, TierPayload-byte
// segments, and no receiver-side templates (halving fixture memory). Only
// SenderRound/SenderRoundBatch may be used on the result.
func NewTierBench(nFlows int) *OverheadBench {
	s := sim.New(1)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.Pool = packet.NewPool()
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	cfg := core.DefaultConfig()
	cfg.MTU = 1500
	v := core.Attach(s, host, cfg)

	ob := &OverheadBench{V: v, Pool: host.Pool, payload: TierPayload}
	ob.Data = make([]*packet.Packet, 0, nFlows)
	ob.Acks = make([]*packet.Packet, 0, nFlows)
	la := host.Addr
	const sport = uint16(30000)
	for i := 0; i < nFlows; i++ {
		// First octet 11 keeps tier peers disjoint from the local 10.0.0.1.
		ra := packet.MakeAddr(11, byte(i>>16), byte(i>>8), byte(i))
		syn := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1000, Flags: packet.FlagSYN,
			Window: 65535, Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.EgressPath(syn)
		synack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5000, Ack: 1001,
			Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
			Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.IngressPath(synack)

		ob.Data = append(ob.Data, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1001, Ack: 5001,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
		}, TierPayload))
		ack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5001, Ack: 1001,
			Flags: packet.FlagACK, Window: 65535,
		}, 0)
		var opt [packet.PACKOptionLen]byte
		packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: TierPayload, MarkedBytes: 0})
		ack.Buf = packet.InsertTCPOption(ack.Buf, opt[:])
		ob.Acks = append(ob.Acks, ack)
	}
	// Prime one data/ACK round per flow so per-flow lazy state (the
	// inactivity timer and its callback closure, feedback baselines) exists
	// before measurement — at tier scale a benchmark run visits most flows
	// only once, so first-touch allocations would never amortize away.
	for i := 0; i < nFlows; i++ {
		ob.SenderRound(i)
	}
	return ob
}

// BumpSeq advances a data packet's sequence number so connection tracking
// does real work each round (and fixes the checksum like a real sender —
// incrementally, so fixture overhead stays out of the measured datapath).
func BumpSeq(p *packet.Packet, delta uint32) {
	t := p.TCP()
	t.SetSeq(t.Seq() + delta)
}

// CloneIngress runs one pooled round trip through the ingress path: clone a
// template from the pool, process it, release whatever comes out. This is
// the steady-state shape of the real datapath (every packet a host
// terminates goes back to the same pool it was built from).
func (ob *OverheadBench) CloneIngress(tmpl *packet.Packet) {
	q := ob.Pool.Clone(tmpl)
	out, extra := ob.V.IngressPath(q)
	if out == nil && extra == nil {
		ob.Pool.Put(q)
		return
	}
	ob.Pool.Put(out)
	ob.Pool.Put(extra)
}

// CloneEgress is CloneIngress for the egress path.
func (ob *OverheadBench) CloneEgress(tmpl *packet.Packet) {
	q := ob.Pool.Clone(tmpl)
	out, extra := ob.V.EgressPath(q)
	if out == nil && extra == nil {
		return // egress hooks may retain; templates here never are, GC takes it
	}
	ob.Pool.Put(out)
	ob.Pool.Put(extra)
}

// SenderRound is one Figure 11 iteration for flow f: egress one data
// segment, ingress one PACK-carrying ACK.
func (ob *OverheadBench) SenderRound(f int) {
	BumpSeq(ob.Data[f], ob.payload)
	ob.V.EgressPath(ob.Data[f])
	BumpSeq(ob.Acks[f], 0)
	ob.CloneIngress(ob.Acks[f])
}

// ReceiverRound is one Figure 12 iteration for flow f: ingress one data
// segment, egress one ACK (PACK attach in place).
func (ob *OverheadBench) ReceiverRound(f int) {
	BumpSeq(ob.InData[f], ob.payload)
	ob.V.IngressPath(ob.InData[f])
	ob.CloneEgress(ob.OutAck[f])
}

// SenderRoundBatch is k SenderRound iterations for flows [start, start+k)
// (mod nFlows) through the batch path: one egress burst of data segments,
// one ingress burst of PACK-carrying ACKs. Packet-for-packet it does the
// same work as k calls to SenderRound.
func (ob *OverheadBench) SenderRoundBatch(start, k int) {
	n := len(ob.Data)
	ob.ps = ob.ps[:0]
	for j := 0; j < k; j++ {
		f := (start + j) % n
		BumpSeq(ob.Data[f], ob.payload)
		ob.ps = append(ob.ps, ob.Data[f])
	}
	ob.pairs = ob.V.EgressBatch(ob.ps, ob.pairs[:0])
	// Outputs are the in-place rewritten templates; nothing pooled to release.

	ob.ps = ob.ps[:0]
	for j := 0; j < k; j++ {
		f := (start + j) % n
		BumpSeq(ob.Acks[f], 0)
		ob.ps = append(ob.ps, ob.Pool.Clone(ob.Acks[f]))
	}
	ob.pairs = ob.V.IngressBatch(ob.ps, ob.pairs[:0])
	for j, q := range ob.ps {
		out, extra := ob.pairs[2*j], ob.pairs[2*j+1]
		if out == nil && extra == nil {
			ob.Pool.Put(q)
			continue
		}
		ob.Pool.Put(out)
		ob.Pool.Put(extra)
	}
}

// ReceiverRoundBatch is k ReceiverRound iterations through the batch path:
// one ingress burst of data segments, one egress burst of ACKs.
func (ob *OverheadBench) ReceiverRoundBatch(start, k int) {
	n := len(ob.InData)
	ob.ps = ob.ps[:0]
	for j := 0; j < k; j++ {
		f := (start + j) % n
		BumpSeq(ob.InData[f], ob.payload)
		ob.ps = append(ob.ps, ob.InData[f])
	}
	ob.pairs = ob.V.IngressBatch(ob.ps, ob.pairs[:0])
	// Outputs are the templates themselves, headed for the guest; not pooled.

	ob.ps = ob.ps[:0]
	for j := 0; j < k; j++ {
		f := (start + j) % n
		ob.ps = append(ob.ps, ob.Pool.Clone(ob.OutAck[f]))
	}
	ob.pairs = ob.V.EgressBatch(ob.ps, ob.pairs[:0])
	for j := range ob.ps {
		out, extra := ob.pairs[2*j], ob.pairs[2*j+1]
		if out == nil && extra == nil {
			continue // egress may retain (see CloneEgress); never these
		}
		ob.Pool.Put(out)
		ob.Pool.Put(extra)
	}
}

// SenderStreamRound processes the next data/ACK pair of the sender train
// stream through the per-packet path. The stream visits each flow Train
// consecutive positions before moving to the next, so both the per-packet
// and the batch consumer of the same fixture see identical traffic; only
// the processing API differs.
func (ob *OverheadBench) SenderStreamRound() {
	n := len(ob.Acks)
	pos := ob.sCur
	ob.sCur = pos + 1
	f, j := (pos/ob.Train)%n, pos%ob.Train
	d := ob.Data[f*ob.Train+j]
	BumpSeq(d, uint32(ob.Train)*ob.payload)
	ob.V.EgressPath(d)
	BumpSeq(ob.Acks[f], 0)
	ob.CloneIngress(ob.Acks[f])
}

// SenderStreamBatch consumes the next k positions of the same stream through
// the batch path: one egress burst of data segments, one ingress burst of
// PACK-carrying ACKs.
func (ob *OverheadBench) SenderStreamBatch(k int) {
	n := len(ob.Acks)
	start := ob.sCur
	ob.sCur = start + k
	ob.ps = ob.ps[:0]
	for i := 0; i < k; i++ {
		pos := start + i
		f, j := (pos/ob.Train)%n, pos%ob.Train
		d := ob.Data[f*ob.Train+j]
		BumpSeq(d, uint32(ob.Train)*ob.payload)
		ob.ps = append(ob.ps, d)
	}
	ob.pairs = ob.V.EgressBatch(ob.ps, ob.pairs[:0])
	// Outputs are the in-place rewritten templates; nothing pooled to release.

	ob.ps = ob.ps[:0]
	for i := 0; i < k; i++ {
		f := ((start + i) / ob.Train) % n
		BumpSeq(ob.Acks[f], 0)
		ob.ps = append(ob.ps, ob.Pool.Clone(ob.Acks[f]))
	}
	ob.pairs = ob.V.IngressBatch(ob.ps, ob.pairs[:0])
	for j, q := range ob.ps {
		out, extra := ob.pairs[2*j], ob.pairs[2*j+1]
		if out == nil && extra == nil {
			ob.Pool.Put(q)
			continue
		}
		ob.Pool.Put(out)
		ob.Pool.Put(extra)
	}
}

// ReceiverStreamRound is SenderStreamRound for the receiver side: ingress
// the next data segment of the train stream, egress one ACK.
func (ob *OverheadBench) ReceiverStreamRound() {
	n := len(ob.OutAck)
	pos := ob.rCur
	ob.rCur = pos + 1
	f, j := (pos/ob.Train)%n, pos%ob.Train
	d := ob.InData[f*ob.Train+j]
	BumpSeq(d, uint32(ob.Train)*ob.payload)
	ob.V.IngressPath(d)
	ob.CloneEgress(ob.OutAck[f])
}

// ReceiverStreamBatch consumes the next k positions of the receiver stream
// through the batch path.
func (ob *OverheadBench) ReceiverStreamBatch(k int) {
	n := len(ob.OutAck)
	start := ob.rCur
	ob.rCur = start + k
	ob.ps = ob.ps[:0]
	for i := 0; i < k; i++ {
		pos := start + i
		f, j := (pos/ob.Train)%n, pos%ob.Train
		d := ob.InData[f*ob.Train+j]
		BumpSeq(d, uint32(ob.Train)*ob.payload)
		ob.ps = append(ob.ps, d)
	}
	ob.pairs = ob.V.IngressBatch(ob.ps, ob.pairs[:0])
	// Outputs are the templates themselves, headed for the guest; not pooled.

	ob.ps = ob.ps[:0]
	for i := 0; i < k; i++ {
		f := ((start + i) / ob.Train) % n
		ob.ps = append(ob.ps, ob.Pool.Clone(ob.OutAck[f]))
	}
	ob.pairs = ob.V.EgressBatch(ob.ps, ob.pairs[:0])
	for j := range ob.ps {
		out, extra := ob.pairs[2*j], ob.pairs[2*j+1]
		if out == nil && extra == nil {
			continue // egress may retain (see CloneEgress); never these
		}
		ob.Pool.Put(out)
		ob.Pool.Put(extra)
	}
}

// BaselineForward models what a plain vSwitch does per packet: validate and
// parse the headers to make a forwarding decision.
func BaselineForward(p *packet.Packet) (uint16, uint16) {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return 0, 0
	}
	t := ip.TCP()
	if !t.Valid() {
		return 0, 0
	}
	return t.SrcPort(), t.DstPort()
}
