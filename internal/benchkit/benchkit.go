// Package benchkit holds the datapath-overhead benchmark fixture shared by
// the repo-root Figure 11/12 benchmarks (`go test -bench`) and the
// cmd/acdcbench reporting binary, so both measure exactly the same loop.
package benchkit

import (
	"encoding/binary"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// OverheadBench is per-flow template traffic through one AC/DC vSwitch with
// an established flow table: the paper's Figure 11 (sender side) and Figure
// 12 (receiver side) per-segment overhead measurement.
type OverheadBench struct {
	V      *core.VSwitch
	Pool   *packet.Pool     // the host's packet pool (steady-state clones are free)
	Data   []*packet.Packet // egress data segment per flow (sender side)
	Acks   []*packet.Packet // ingress ACK with PACK per flow (sender side)
	InData []*packet.Packet // ingress data per flow (receiver side)
	OutAck []*packet.Packet // egress ACK per flow (receiver side)
}

// NewOverheadBench builds the fixture with nFlows established flows.
func NewOverheadBench(nFlows int) *OverheadBench {
	return NewOverheadBenchCfg(nFlows, nil)
}

// NewOverheadBenchCfg is NewOverheadBench with a Config hook, for ablations
// that flip datapath features (metrics, policing, …).
func NewOverheadBenchCfg(nFlows int, mutate func(*core.Config)) *OverheadBench {
	s := sim.New(1)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.Pool = packet.NewPool()
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	cfg := core.DefaultConfig()
	cfg.MTU = 1500 // the paper reports 1.5KB MTU (worst case: most packets)
	if mutate != nil {
		mutate(&cfg)
	}
	v := core.Attach(s, host, cfg)

	ob := &OverheadBench{V: v, Pool: host.Pool}
	for i := 0; i < nFlows; i++ {
		la := host.Addr
		ra := packet.MakeAddr(10, 0, byte(1+i/250), byte(1+i%250))
		sport := uint16(30000 + i%20000)
		// Establish state via the real datapath: egress SYN, ingress SYN-ACK.
		syn := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1000, Flags: packet.FlagSYN,
			Window: 65535, Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.Egress(syn)
		synack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5000, Ack: 1001,
			Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
			Options: packet.BuildSynOptions(1460, 7, true),
		}, 0)
		v.Ingress(synack)

		ob.Data = append(ob.Data, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1001, Ack: 5001,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
		}, 1460))
		ack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5001, Ack: 1001,
			Flags: packet.FlagACK, Window: 65535,
		}, 0)
		var opt [packet.PACKOptionLen]byte
		packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: 1460, MarkedBytes: 0})
		ack.Buf = packet.InsertTCPOption(ack.Buf, opt[:])
		ob.Acks = append(ob.Acks, ack)

		// Receiver-module traffic for the reverse direction.
		ob.InData = append(ob.InData, packet.Build(ra, la, packet.ECT0, packet.TCPFields{
			SrcPort: 5001, DstPort: sport, Seq: 5001, Ack: 1001,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
		}, 1460))
		ob.OutAck = append(ob.OutAck, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sport, DstPort: 5001, Seq: 1001, Ack: 6461,
			Flags: packet.FlagACK, Window: 65535,
		}, 0))
	}
	return ob
}

// BumpSeq advances a data packet's sequence number so connection tracking
// does real work each round (and fixes the checksum like a real sender).
func BumpSeq(p *packet.Packet, delta uint32) {
	t := p.TCP()
	seq := t.Seq() + delta
	binary.BigEndian.PutUint32(p.Buf[packet.IPv4HeaderLen+4:], seq)
	ip := p.IP()
	t.ComputeChecksum(ip.PseudoHeaderSum(ip.TotalLen() - uint16(ip.HeaderLen())))
}

// CloneIngress runs one pooled round trip through the ingress path: clone a
// template from the pool, process it, release whatever comes out. This is
// the steady-state shape of the real datapath (every packet a host
// terminates goes back to the same pool it was built from).
func (ob *OverheadBench) CloneIngress(tmpl *packet.Packet) {
	q := ob.Pool.Clone(tmpl)
	out, extra := ob.V.IngressPath(q)
	if out == nil && extra == nil {
		ob.Pool.Put(q)
		return
	}
	ob.Pool.Put(out)
	ob.Pool.Put(extra)
}

// CloneEgress is CloneIngress for the egress path.
func (ob *OverheadBench) CloneEgress(tmpl *packet.Packet) {
	q := ob.Pool.Clone(tmpl)
	out, extra := ob.V.EgressPath(q)
	if out == nil && extra == nil {
		return // egress hooks may retain; templates here never are, GC takes it
	}
	ob.Pool.Put(out)
	ob.Pool.Put(extra)
}

// SenderRound is one Figure 11 iteration for flow f: egress one data
// segment, ingress one PACK-carrying ACK.
func (ob *OverheadBench) SenderRound(f int) {
	BumpSeq(ob.Data[f], 1460)
	ob.V.EgressPath(ob.Data[f])
	BumpSeq(ob.Acks[f], 0)
	ob.CloneIngress(ob.Acks[f])
}

// ReceiverRound is one Figure 12 iteration for flow f: ingress one data
// segment, egress one ACK (PACK attach in place).
func (ob *OverheadBench) ReceiverRound(f int) {
	BumpSeq(ob.InData[f], 1460)
	ob.V.IngressPath(ob.InData[f])
	ob.CloneEgress(ob.OutAck[f])
}

// BaselineForward models what a plain vSwitch does per packet: validate and
// parse the headers to make a forwarding decision.
func BaselineForward(p *packet.Packet) (uint16, uint16) {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return 0, 0
	}
	t := ip.TCP()
	if !t.Valid() {
		return 0, 0
	}
	return t.SrcPort(), t.DstPort()
}
