package faults

import (
	"strings"
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

func TestParseNamedProfiles(t *testing.T) {
	for _, name := range Names() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("Parse(%q).Name = %q", name, p.Name)
		}
		if name == "none" {
			if p.Enabled() {
				t.Errorf("profile none is Enabled")
			}
		} else if !p.Enabled() {
			t.Errorf("profile %s is not Enabled", name)
		}
	}
	if _, ok := Lookup("no-such-profile"); ok {
		t.Error("Lookup accepted unknown name")
	}
}

func TestParseKeyValue(t *testing.T) {
	p, err := Parse("drop=0.01, jitter=100us, feedback-loss=0.5,reorder=0.02,reorder-delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.01 || p.DropFeedback != 0.5 || p.Reorder != 0.02 {
		t.Errorf("bad probabilities: %+v", p)
	}
	if p.Jitter != 100*sim.Microsecond || p.ReorderDelay != sim.Millisecond {
		t.Errorf("bad durations: %+v", p)
	}

	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Errorf("Parse(\"\") = %+v, %v", p, err)
	}
	for _, bad := range []string{
		"nope", "drop", "drop=1.5", "drop=-0.1", "drop=x",
		"jitter=5", "jitter=-1ms", "mystery=0.1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestProfileString(t *testing.T) {
	p, _ := Lookup("chaos")
	s := p.String()
	for _, want := range []string{"chaos(", "drop=0.005", "feedback-loss=0.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if got := (Profile{}).String(); got != "custom(none)" {
		t.Errorf("zero String() = %q", got)
	}
	if got := (Profile{Name: "none"}).String(); got != "none(none)" {
		t.Errorf("none String() = %q", got)
	}
}

func TestReorderDelayDefault(t *testing.T) {
	p := Profile{Reorder: 0.5}.withDefaults()
	if p.ReorderDelay != 200*sim.Microsecond {
		t.Errorf("ReorderDelay default = %v", p.ReorderDelay)
	}
}

// dataSegment builds a well-formed guest data segment with a timestamp-shaped
// option block.
func dataSegment() *packet.Packet {
	return packet.Build(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.ECT0, packet.TCPFields{
			SrcPort: 4000, DstPort: 5001, Seq: 100, Ack: 1,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
			Options: []byte{packet.OptNOP, packet.OptNOP, packet.OptTimestamps, 10, 0, 0, 0, 1, 0, 0, 0, 2},
		}, 1448)
}

// packACK builds a pure ACK carrying a piggybacked PACK option.
func packACK() *packet.Packet {
	var opt [packet.PACKOptionLen]byte
	packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: 9000, MarkedBytes: 3000})
	return packet.Build(packet.MakeAddr(10, 0, 0, 2), packet.MakeAddr(10, 0, 0, 1),
		packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: 4000, Seq: 1, Ack: 1548,
			Flags: packet.FlagACK, Window: 65535, Options: opt[:],
		}, 0)
}

// fack builds a dedicated FACK feedback packet (pure ACK, OptFACK payload).
func fack() *packet.Packet {
	opt := []byte{optFACK, 10, 0, 0, 0x30, 0x39, 0, 0, 0x01, 0x41}
	return packet.Build(packet.MakeAddr(10, 0, 0, 2), packet.MakeAddr(10, 0, 0, 1),
		packet.NotECT, packet.TCPFields{
			SrcPort: 5001, DstPort: 4000, Seq: 0, Ack: 0,
			Flags: packet.FlagACK, Window: 0, Options: opt,
		}, 0)
}

// runHook passes p through an injector hook and returns the delivered copies
// with their extra delays.
func runHook(in *Injector, p *packet.Packet) (out []*packet.Packet, extras []sim.Duration) {
	in.Hook(nil, p, func(q *packet.Packet, extra sim.Duration) {
		out = append(out, q)
		extras = append(extras, extra)
	})
	return
}

func TestHookDrop(t *testing.T) {
	in := NewInjector(Profile{Drop: 1}, 1)
	out, _ := runHook(in, dataSegment())
	if len(out) != 0 {
		t.Fatalf("Drop=1 delivered %d packets", len(out))
	}
	if in.drops.Value() != 1 || in.Total() != 1 {
		t.Errorf("drops=%d total=%d", in.drops.Value(), in.Total())
	}
}

func TestHookDup(t *testing.T) {
	in := NewInjector(Profile{Dup: 1}, 1)
	p := dataSegment()
	out, _ := runHook(in, p)
	if len(out) != 2 {
		t.Fatalf("Dup=1 delivered %d packets", len(out))
	}
	if out[0] == p {
		t.Error("duplicate is not a clone")
	}
	if string(out[0].Buf) != string(out[1].Buf) {
		t.Error("duplicate differs from original")
	}
}

func TestHookReorderAndJitter(t *testing.T) {
	prof := Profile{Reorder: 1, ReorderDelay: 300 * sim.Microsecond, Jitter: 50 * sim.Microsecond}
	in := NewInjector(prof, 7)
	_, extras := runHook(in, dataSegment())
	if len(extras) != 1 {
		t.Fatalf("delivered %d packets", len(extras))
	}
	if extras[0] < 300*sim.Microsecond || extras[0] > 350*sim.Microsecond {
		t.Errorf("extra delay %v outside [300us, 350us]", extras[0])
	}
	if in.reorders.Value() != 1 {
		t.Errorf("reorders=%d", in.reorders.Value())
	}
}

func TestHookCorrupt(t *testing.T) {
	in := NewInjector(Profile{Corrupt: 1}, 3)
	p := dataSegment()
	orig := p.Clone()
	out, _ := runHook(in, p)
	if len(out) != 1 {
		t.Fatalf("delivered %d packets", len(out))
	}
	got := out[0]
	if got.TCP().Checksum() == orig.TCP().Checksum() {
		t.Error("checksum not damaged")
	}
	// Addresses, ports, seq/ack must survive so the flow still completes.
	if got.IP().Src() != orig.IP().Src() || got.TCP().Seq() != orig.TCP().Seq() ||
		got.TCP().Ack() != orig.TCP().Ack() || got.TCP().SrcPort() != orig.TCP().SrcPort() {
		t.Error("corrupt damaged addressing/sequencing fields")
	}
	if in.corrupts.Value() != 1 {
		t.Errorf("corrupts=%d", in.corrupts.Value())
	}
}

func TestHookStripOptions(t *testing.T) {
	in := NewInjector(Profile{StripOptions: 1}, 3)
	p := dataSegment()
	origPayload := p.PayloadLen()
	out, _ := runHook(in, p)
	if len(out) != 1 {
		t.Fatalf("delivered %d packets", len(out))
	}
	got := out[0]
	ip := got.IP()
	tcp := ip.TCP()
	if !ip.Valid() || !tcp.Valid() {
		t.Fatal("stripped packet invalid")
	}
	if tcp.HeaderLen() != packet.TCPHeaderLen {
		t.Errorf("TCP header %dB after strip", tcp.HeaderLen())
	}
	if got.PayloadLen() != origPayload {
		t.Errorf("payload %d != %d after strip", got.PayloadLen(), origPayload)
	}
	if !ip.VerifyChecksum() {
		t.Error("IP checksum broken after strip")
	}
	if !tcp.VerifyChecksum(ip.PseudoHeaderSum(ip.TotalLen() - uint16(ip.HeaderLen()))) {
		t.Error("TCP checksum broken after strip")
	}
	if in.strips.Value() != 1 {
		t.Errorf("strips=%d", in.strips.Value())
	}

	// Option-less packets pass through uncounted.
	out2, _ := runHook(in, out[0].Clone())
	if len(out2) != 1 || in.strips.Value() != 1 {
		t.Error("bare packet was counted as stripped")
	}
}

func TestHookDropFeedback(t *testing.T) {
	in := NewInjector(Profile{DropFeedback: 1}, 9)

	// Dedicated FACK: dropped outright.
	out, _ := runHook(in, fack())
	if len(out) != 0 {
		t.Fatalf("FACK survived feedback-loss: %d delivered", len(out))
	}
	if in.fbDrops.Value() != 1 {
		t.Errorf("fbDrops=%d", in.fbDrops.Value())
	}

	// Piggybacked PACK: option stripped, ACK still delivered.
	out, _ = runHook(in, packACK())
	if len(out) != 1 {
		t.Fatalf("PACK-bearing ACK was dropped")
	}
	if packet.FindOption(out[0].TCP().Options(), packet.OptPACK) != nil {
		t.Error("PACK option survived feedback-loss")
	}
	if in.fbStrips.Value() != 1 {
		t.Errorf("fbStrips=%d", in.fbStrips.Value())
	}

	// Guest data segments pass untouched.
	p := dataSegment()
	want := string(p.Buf)
	out, _ = runHook(in, p)
	if len(out) != 1 || string(out[0].Buf) != want {
		t.Error("feedback-loss touched a guest data segment")
	}

	// SYNs pass untouched even with kind-254 present (OptECNEcho collision).
	syn := packet.Build(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.NotECT, packet.TCPFields{
			SrcPort: 4000, DstPort: 5001, Flags: packet.FlagSYN, Window: 65535,
			Options: []byte{packet.OptECNEcho, 2},
		}, 0)
	out, _ = runHook(in, syn)
	if len(out) != 1 {
		t.Error("feedback-loss dropped a SYN")
	}
}

// TestFACKKindMatchesCore pins the locally duplicated option kind to the
// datapath's via the one collision-safe witness we have: OptECNEcho shares
// the kind number by design (SYN-only vs pure-ACK-only).
func TestFACKKindMatchesCore(t *testing.T) {
	if optFACK != packet.OptECNEcho {
		t.Fatalf("optFACK = %d, want %d (see core.OptFACK)", optFACK, packet.OptECNEcho)
	}
}

func TestHookDeterminism(t *testing.T) {
	prof, _ := Lookup("chaos")
	mk := func(seed int64) (string, int64) {
		in := NewInjector(prof, seed)
		var trace strings.Builder
		for i := 0; i < 2000; i++ {
			var p *packet.Packet
			switch i % 3 {
			case 0:
				p = dataSegment()
			case 1:
				p = packACK()
			default:
				p = fack()
			}
			out, extras := runHook(in, p)
			trace.WriteByte(byte('0' + len(out)))
			for _, e := range extras {
				trace.WriteString(e.String())
			}
		}
		return trace.String(), in.Total()
	}
	t1, n1 := mk(42)
	t2, n2 := mk(42)
	if t1 != t2 || n1 != n2 {
		t.Fatal("same seed produced different fault sequences")
	}
	t3, _ := mk(43)
	if t1 == t3 {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
	if n1 == 0 {
		t.Fatal("chaos profile injected nothing over 2000 packets")
	}
}

func TestAttachRespectsDisabledProfile(t *testing.T) {
	s := sim.New(0)
	l := netsim.NewLink(s, "t", 1e9, sim.Microsecond, netsim.HandlerFunc(func(*packet.Packet) {}))
	NewInjector(Profile{}, 1).Attach(l)
	if l.Fault != nil {
		t.Error("disabled profile installed a hook")
	}
	NewInjector(Profile{Drop: 1}, 1).Attach(l)
	if l.Fault == nil {
		t.Error("enabled profile did not install a hook")
	}
}

// TestLinkFaultHookWiring drives a real link end to end: with Drop=1 nothing
// arrives, with an empty hook slot everything does.
func TestLinkFaultHookWiring(t *testing.T) {
	s := sim.New(0)
	var got int
	l := netsim.NewLink(s, "t", 1e9, sim.Microsecond, netsim.HandlerFunc(func(*packet.Packet) { got++ }))
	in := NewInjector(Profile{Drop: 1}, 5)
	in.Attach(l)
	for i := 0; i < 10; i++ {
		l.Send(dataSegment())
	}
	s.RunAll()
	if got != 0 {
		t.Fatalf("lossy link delivered %d packets", got)
	}
	l.Fault = nil
	for i := 0; i < 10; i++ {
		l.Send(dataSegment())
	}
	s.RunAll()
	if got != 10 {
		t.Fatalf("clean link delivered %d/10", got)
	}
}
