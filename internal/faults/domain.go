package faults

// Fabric fault domains. The Profile perturbs packets on a healthy link and
// RestartPlan kills the vSwitch process; what neither can express is the
// fabric itself failing — a link going dark, a ToR taking every attached
// port with it, a flapping spine uplink, or the nastiest production case,
// the gray link that stays "up" while silently dropping or delaying a
// fraction of traffic. A FaultDomain schedules those on the sim clock
// against links addressed by name, and the switches' ECMP re-hash steers
// surviving flows around the hole.
//
// Like every fault layer here, a domain run is a pure function of
// (topology, workload, plan, seed): gray loss draws from one PRNG seeded at
// construction, and down/up transitions are plain sim events.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// DomainKind selects the fabric fault.
type DomainKind uint8

const (
	// DomainLinkDown takes matching links down at At and back up at At+For.
	DomainLinkDown DomainKind = iota
	// DomainSwitchDown takes every link touching a named switch down for For
	// (ToR / aggregation failure).
	DomainSwitchDown
	// DomainFlap cycles matching links down for Down and up for Up, Count
	// times, starting at At.
	DomainFlap
	// DomainGray leaves matching links "up" but silently drops a Loss
	// fraction and delays survivors by Delay, from At until At+For (For=0:
	// the rest of the run).
	DomainGray
)

// String names the kind using the spec syntax.
func (k DomainKind) String() string {
	switch k {
	case DomainLinkDown:
		return "link-down"
	case DomainSwitchDown:
		return "switch-down"
	case DomainFlap:
		return "flap"
	case DomainGray:
		return "gray"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// FaultDomain declares one scheduled fabric fault.
type FaultDomain struct {
	Kind DomainKind
	// Link selects target links by name: exact match, or a prefix when the
	// pattern ends in '*' (e.g. "p0-agg0>*" = all of agg0's uplinks). Used
	// by link-down, flap, and gray.
	Link string
	// Switch names the switch whose attached links fail (switch-down).
	Switch string
	// At is when the domain activates (default 1ms).
	At sim.Duration
	// For is the outage length for link-down/switch-down (default 100µs)
	// and the gray window (default 0 = rest of run).
	For sim.Duration
	// Down/Up are the flap half-periods (defaults 100µs down, 1ms up).
	Down, Up sim.Duration
	// Count is the number of flap cycles (default 3).
	Count int
	// Loss is the gray silent-drop probability (default 0.01).
	Loss float64
	// Delay is the gray extra one-way delay for surviving packets.
	Delay sim.Duration
}

// withDefaults fills unset fields per kind.
func (d FaultDomain) withDefaults() FaultDomain {
	if d.At == 0 {
		d.At = sim.Millisecond
	}
	switch d.Kind {
	case DomainLinkDown, DomainSwitchDown:
		if d.For == 0 {
			d.For = 100 * sim.Microsecond
		}
	case DomainFlap:
		if d.Down == 0 {
			d.Down = 100 * sim.Microsecond
		}
		if d.Up == 0 {
			d.Up = sim.Millisecond
		}
		if d.Count == 0 {
			d.Count = 3
		}
	case DomainGray:
		if d.Loss == 0 && d.Delay == 0 {
			d.Loss = 0.01
		}
	}
	return d
}

// String renders the domain in the spec syntax it parses from.
func (d FaultDomain) String() string {
	var terms []string
	if d.Link != "" {
		terms = append(terms, "link="+d.Link)
	}
	if d.Switch != "" {
		terms = append(terms, "switch="+d.Switch)
	}
	switch d.Kind {
	case DomainLinkDown, DomainSwitchDown:
		terms = append(terms, fmt.Sprintf("for=%v", d.For))
	case DomainFlap:
		terms = append(terms, fmt.Sprintf("down=%v", d.Down),
			fmt.Sprintf("up=%v", d.Up), fmt.Sprintf("count=%d", d.Count))
	case DomainGray:
		if d.Loss > 0 {
			terms = append(terms, fmt.Sprintf("loss=%g", d.Loss))
		}
		if d.Delay > 0 {
			terms = append(terms, fmt.Sprintf("delay=%v", d.Delay))
		}
		if d.For > 0 {
			terms = append(terms, fmt.Sprintf("for=%v", d.For))
		}
	}
	s := fmt.Sprintf("%s@%v", d.Kind, d.At)
	if len(terms) > 0 {
		s += "," + strings.Join(terms, ",")
	}
	return s
}

// domainKinds maps spec names to kinds.
var domainKinds = map[string]DomainKind{
	"link-down":   DomainLinkDown,
	"switch-down": DomainSwitchDown,
	"flap":        DomainFlap,
	"gray":        DomainGray,
}

// DomainKinds returns the registered kind names, sorted.
func DomainKinds() []string {
	out := make([]string, 0, len(domainKinds))
	for n := range domainKinds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseDomains resolves a -fabric flag value: one or more ';'-separated
// domains, each "kind[@time][,key=value…]". Kinds: link-down, switch-down,
// flap, gray. Keys: link=<name|prefix*>, switch=<name>, for=<dur>,
// down=<dur>, up=<dur>, count=<n>, loss=<frac>, delay=<dur>. Examples:
//
//	link-down@2ms,link=p0-tor0>p0-agg0,for=500us
//	switch-down@5ms,switch=p1-tor0,for=5ms
//	flap@1ms,link=p0-agg0>core0,down=500us,up=2ms,count=5
//	gray@1ms,link=core1>p2-agg0,loss=0.02;link-down@4ms,link=p3-agg1>core3
func ParseDomains(s string) ([]FaultDomain, error) {
	var out []FaultDomain
	for _, spec := range strings.Split(s, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		d, err := parseDomain(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fabric: empty spec")
	}
	return out, nil
}

func parseDomain(spec string) (FaultDomain, error) {
	head, rest, hasOpts := strings.Cut(spec, ",")
	name, at, hasAt := strings.Cut(strings.TrimSpace(head), "@")
	name = strings.TrimSpace(name)
	kind, ok := domainKinds[name]
	if !ok {
		msg := fmt.Sprintf("fabric: unknown kind %q (have %s)", name, strings.Join(DomainKinds(), ", "))
		if near := Nearest(name, DomainKinds()); near != "" {
			msg += fmt.Sprintf("; did you mean %q?", near)
		}
		return FaultDomain{}, fmt.Errorf("%s", msg)
	}
	d := FaultDomain{Kind: kind}
	if hasAt {
		v, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil || v <= 0 {
			return FaultDomain{}, fmt.Errorf("fabric: bad time %q", at)
		}
		d.At = sim.Duration(v.Nanoseconds())
	}
	if hasOpts {
		for _, term := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
			if !ok {
				return FaultDomain{}, fmt.Errorf("fabric: bad term %q (want key=value)", term)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "link":
				d.Link = v
			case "switch":
				d.Switch = v
			case "for", "down", "up", "delay":
				dur, err := time.ParseDuration(v)
				if err != nil || dur < 0 {
					return FaultDomain{}, fmt.Errorf("fabric: bad duration %s=%q", k, v)
				}
				sd := sim.Duration(dur.Nanoseconds())
				switch k {
				case "for":
					d.For = sd
				case "down":
					d.Down = sd
				case "up":
					d.Up = sd
				case "delay":
					d.Delay = sd
				}
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					return FaultDomain{}, fmt.Errorf("fabric: bad count %q", v)
				}
				d.Count = n
			case "loss":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return FaultDomain{}, fmt.Errorf("fabric: bad loss %q (want 0..1)", v)
				}
				d.Loss = f
			default:
				return FaultDomain{}, fmt.Errorf("fabric: unknown key %q", k)
			}
		}
	}
	switch kind {
	case DomainSwitchDown:
		if d.Switch == "" {
			return FaultDomain{}, fmt.Errorf("fabric: %s needs switch=<name>", kind)
		}
	default:
		if d.Link == "" {
			return FaultDomain{}, fmt.Errorf("fabric: %s needs link=<name|prefix*>", kind)
		}
	}
	return d.withDefaults(), nil
}

// FabricView is the topology surface a Domains scheduler targets. topo.Net
// implements it; the interface keeps this package below internal/topo in
// the dependency graph (same pattern as RestartTarget).
type FabricView interface {
	// LinksMatching returns links whose name matches pattern (exact, or
	// prefix when pattern ends in '*').
	LinksMatching(pattern string) []*netsim.Link
	// SwitchLinks returns every link attached to the named switch: its
	// egress ports plus the links that deliver into it.
	SwitchLinks(name string) []*netsim.Link
}

// Domains schedules a set of fault domains against a fabric and counts what
// they did. All gray-loss randomness comes from one PRNG seeded at
// construction, so a run replays exactly.
type Domains struct {
	plans []FaultDomain
	rng   *rand.Rand
	reg   *metrics.Registry

	linkDowns  *metrics.Counter // fabric_link_downs_total
	linkUps    *metrics.Counter // fabric_link_ups_total
	grayDrops  *metrics.Counter // fabric_gray_drops_total
	grayDelays *metrics.Counter // fabric_gray_delays_total
}

// NewDomains builds a scheduler for plans with its own seeded PRNG.
func NewDomains(plans []FaultDomain, seed int64) *Domains {
	reg := metrics.NewRegistry()
	withDef := make([]FaultDomain, len(plans))
	for i, p := range plans {
		withDef[i] = p.withDefaults()
	}
	return &Domains{
		plans:      withDef,
		rng:        rand.New(rand.NewSource(seed)),
		reg:        reg,
		linkDowns:  reg.Counter("fabric_link_downs_total"),
		linkUps:    reg.Counter("fabric_link_ups_total"),
		grayDrops:  reg.Counter("fabric_gray_drops_total"),
		grayDelays: reg.Counter("fabric_gray_delays_total"),
	}
}

// Plans returns the scheduled domains (defaults applied).
func (ds *Domains) Plans() []FaultDomain { return ds.plans }

// Registry exposes the domain counters for telemetry merging.
func (ds *Domains) Registry() *metrics.Registry { return ds.reg }

// Schedule arms every plan on the sim clock. It resolves link patterns
// eagerly and panics on a pattern that matches nothing — a chaos plan that
// silently targets zero links would report a misleading all-clear.
func (ds *Domains) Schedule(s *sim.Simulator, view FabricView) {
	for _, p := range ds.plans {
		var links []*netsim.Link
		if p.Kind == DomainSwitchDown {
			links = view.SwitchLinks(p.Switch)
			if len(links) == 0 {
				panic(fmt.Sprintf("fabric: %s matches no links (unknown switch %q?)", p, p.Switch))
			}
		} else {
			links = view.LinksMatching(p.Link)
			if len(links) == 0 {
				panic(fmt.Sprintf("fabric: %s matches no links (pattern %q)", p, p.Link))
			}
		}
		switch p.Kind {
		case DomainLinkDown, DomainSwitchDown:
			ds.scheduleOutage(s, links, p.At, p.For)
		case DomainFlap:
			for i := 0; i < p.Count; i++ {
				ds.scheduleOutage(s, links, p.At+sim.Duration(i)*(p.Down+p.Up), p.Down)
			}
		case DomainGray:
			ds.scheduleGray(s, links, p)
		}
	}
}

// scheduleOutage downs links at `at` and brings them back `dur` later.
func (ds *Domains) scheduleOutage(s *sim.Simulator, links []*netsim.Link, at, dur sim.Duration) {
	s.Schedule(at, func() {
		for _, l := range links {
			if !l.IsDown() {
				l.Down()
				ds.linkDowns.Inc()
			}
		}
	})
	s.Schedule(at+dur, func() {
		for _, l := range links {
			if l.IsDown() {
				l.Up()
				ds.linkUps.Inc()
			}
		}
	})
}

// scheduleGray chains a silent drop/delay hook in front of whatever fault
// hook the link already has (profile injectors compose underneath), and
// removes it again at the window's end.
func (ds *Domains) scheduleGray(s *sim.Simulator, links []*netsim.Link, p FaultDomain) {
	s.Schedule(p.At, func() {
		for _, l := range links {
			prev := l.Fault
			l.Fault = ds.grayHook(prev, p.Loss, p.Delay)
			if p.For > 0 {
				restore := prev
				target := l
				s.Schedule(p.For, func() { target.Fault = restore })
			}
		}
	})
}

// grayHook builds the FaultHook for one gray link: drop with probability
// loss, else add delay, else fall through to the previous hook (or clean
// delivery).
func (ds *Domains) grayHook(prev netsim.FaultHook, loss float64, delay sim.Duration) netsim.FaultHook {
	return func(l *netsim.Link, p *packet.Packet, deliver func(q *packet.Packet, extra sim.Duration)) {
		if loss > 0 && ds.rng.Float64() < loss {
			ds.grayDrops.Inc()
			l.Stats.DropsFault++
			l.Pool.Put(p)
			return
		}
		if delay > 0 {
			ds.grayDelays.Inc()
			if prev != nil {
				prev(l, p, func(q *packet.Packet, extra sim.Duration) { deliver(q, extra+delay) })
				return
			}
			deliver(p, delay)
			return
		}
		if prev != nil {
			prev(l, p, deliver)
			return
		}
		deliver(p, 0)
	}
}
