package faults

import (
	"math/rand"

	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// optFACK mirrors core.OptFACK (the dedicated feedback packet's option
// kind). Duplicated here rather than imported so the fault layer stays below
// internal/core in the dependency graph; the datapath's own tests pin the
// two constants together.
const optFACK = 254

// Injector compiles a Profile into link fault hooks. All randomness comes
// from one PRNG seeded at construction, and the simulator executes events
// deterministically, so a chaos run is a pure function of (topology,
// workload, profile, seed) — a failing mix replays exactly.
type Injector struct {
	prof Profile
	rng  *rand.Rand
	reg  *metrics.Registry

	// Per-kind injection counters (fault_*_total).
	drops    *metrics.Counter
	reorders *metrics.Counter
	dups     *metrics.Counter
	jitters  *metrics.Counter
	corrupts *metrics.Counter
	strips   *metrics.Counter
	fbDrops  *metrics.Counter
	fbStrips *metrics.Counter
}

// NewInjector builds an injector for prof with its own seeded PRNG.
func NewInjector(prof Profile, seed int64) *Injector {
	reg := metrics.NewRegistry()
	return &Injector{
		prof:     prof.withDefaults(),
		rng:      rand.New(rand.NewSource(seed)),
		reg:      reg,
		drops:    reg.Counter("fault_drops_total"),
		reorders: reg.Counter("fault_reorders_total"),
		dups:     reg.Counter("fault_dups_total"),
		jitters:  reg.Counter("fault_jitter_total"),
		corrupts: reg.Counter("fault_corrupts_total"),
		strips:   reg.Counter("fault_optstrips_total"),
		fbDrops:  reg.Counter("fault_feedback_drops_total"),
		fbStrips: reg.Counter("fault_feedback_strips_total"),
	}
}

// Profile returns the injected profile.
func (in *Injector) Profile() Profile { return in.prof }

// SetProfile swaps the fault mix on a live injector — how a soak harness
// flips fault regimes mid-run without rebuilding the topology. The profile is
// read by Hook on the simulation goroutine, so SetProfile must run there too
// (a daemon marshals it through its command queue). Swapping in a disabled
// profile quiesces faults but keeps the hook attached, so a later swap can
// re-enable them; an injector built with a disabled profile never attached
// hooks and stays inert.
func (in *Injector) SetProfile(p Profile) { in.prof = p.withDefaults() }

// Registry exposes the injection counters for telemetry merging.
func (in *Injector) Registry() *metrics.Registry { return in.reg }

// Total sums every injected fault so far.
func (in *Injector) Total() int64 {
	var t int64
	for _, c := range []*metrics.Counter{
		in.drops, in.reorders, in.dups, in.jitters,
		in.corrupts, in.strips, in.fbDrops, in.fbStrips,
	} {
		t += c.Value()
	}
	return t
}

// Attach installs the injector's hook on a link. A disabled profile leaves
// the link untouched so fault-free runs stay on the exact pre-existing path.
func (in *Injector) Attach(l *netsim.Link) {
	if !in.prof.Enabled() {
		return
	}
	l.Fault = in.Hook
}

// Hook is the netsim.FaultHook: it draws from the seeded PRNG in packet
// order and applies the profile's fault mix. Faults compose in a fixed
// order (feedback-drop, loss, corruption, option-strip, duplication,
// reorder, jitter) so a given PRNG stream always produces the same run.
func (in *Injector) Hook(l *netsim.Link, p *packet.Packet, deliver func(q *packet.Packet, extra sim.Duration)) {
	prof := &in.prof

	if prof.DropFeedback > 0 && in.dropFeedback(p) {
		consume(l, p)
		return
	}
	if prof.Drop > 0 && in.rng.Float64() < prof.Drop {
		in.drops.Inc()
		consume(l, p)
		return
	}
	if prof.Corrupt > 0 && in.rng.Float64() < prof.Corrupt {
		in.corrupt(p)
	}
	if prof.StripOptions > 0 && in.rng.Float64() < prof.StripOptions {
		if stripAllOptions(p) {
			in.strips.Inc()
		}
	}
	if prof.Dup > 0 && in.rng.Float64() < prof.Dup {
		in.dups.Inc()
		deliver(p.Clone(), 0)
	}
	var extra sim.Duration
	if prof.Reorder > 0 && in.rng.Float64() < prof.Reorder {
		in.reorders.Inc()
		extra += prof.ReorderDelay
	}
	if prof.Jitter > 0 {
		if j := sim.Duration(in.rng.Int63n(int64(prof.Jitter) + 1)); j > 0 {
			in.jitters.Inc()
			extra += j
		}
	}
	deliver(p, extra)
}

// consume accounts a hook-dropped packet against the link and returns its
// buffer to the pool — the hook is the packet's sole owner at this point.
// l is nil only when unit tests drive a hook directly; then the packet just
// falls to the garbage collector.
func consume(l *netsim.Link, p *packet.Packet) {
	if l == nil {
		return
	}
	l.Stats.DropsFault++
	l.Pool.Put(p)
}

// dropFeedback kills AC/DC's congestion-feedback channel only: dedicated
// FACK packets are dropped, piggybacked PACK options are stripped in place.
// Guest segments and ACKs are never touched, so only the vSwitch sender
// module — not the guest — sees the outage. Reports whether the whole
// packet was consumed.
func (in *Injector) dropFeedback(p *packet.Packet) bool {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return false
	}
	t := ip.TCP()
	if !t.Valid() || t.HasFlags(packet.FlagSYN) {
		return false
	}
	opts := t.Options()
	if len(opts) == 0 {
		return false
	}
	// Dedicated FACK: a pure ACK whose only job is carrying feedback.
	if fb := packet.FindOption(opts, optFACK); fb != nil && len(fb) >= 8 {
		if in.rng.Float64() < in.prof.DropFeedback {
			in.fbDrops.Inc()
			return true
		}
		return false
	}
	if packet.FindOption(opts, packet.OptPACK) != nil {
		if in.rng.Float64() < in.prof.DropFeedback {
			if buf := packet.RemoveTCPOption(p.Buf, packet.OptPACK); len(buf) > 0 {
				p.Buf = buf
				in.fbStrips.Inc()
			}
		}
	}
	return false
}

// corrupt damages the TCP header the way flaky hardware does: the checksum
// field is inverted, and any option bytes are overwritten with PRNG garbage
// — truncated lengths, overlapping options, bogus kinds. The datapath must
// parse (or refuse to parse) the result without panicking and fail open.
func (in *Injector) corrupt(p *packet.Packet) {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return
	}
	t := ip.TCP()
	if !t.Valid() {
		return
	}
	in.corrupts.Inc()
	ihl := ip.HeaderLen()
	// Invert the TCP checksum field (bytes 16-17 of the TCP header).
	p.Buf[ihl+16] ^= 0xff
	p.Buf[ihl+17] ^= 0xff
	if opts := t.Options(); len(opts) > 0 {
		in.rng.Read(opts)
	}
}

// stripAllOptions removes the whole TCP option block, as option-intolerant
// middleboxes do, shrinking the header to 20 bytes and fixing lengths and
// checksums. Reports whether anything was removed.
func stripAllOptions(p *packet.Packet) bool {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return false
	}
	t := ip.TCP()
	if !t.Valid() || t.HeaderLen() <= packet.TCPHeaderLen {
		return false
	}
	ihl := ip.HeaderLen()
	hdr := t.HeaderLen()
	removed := hdr - packet.TCPHeaderLen
	buf := make([]byte, len(p.Buf)-removed)
	n := copy(buf, p.Buf[:ihl+packet.TCPHeaderLen])
	copy(buf[n:], p.Buf[ihl+hdr:])
	oip := packet.IPv4(buf)
	oip.SetTotalLen(ip.TotalLen() - uint16(removed))
	// Data offset: 5 words, preserving the reserved low nibble.
	buf[ihl+12] = 5<<4 | buf[ihl+12]&0x0f
	ot := oip.TCP()
	ot.ComputeChecksum(oip.PseudoHeaderSum(oip.TotalLen() - uint16(oip.HeaderLen())))
	p.Buf = buf
	return true
}
