// Chaos suite: every fault profile is driven through a full AC/DC dumbbell
// (guest stacks, vSwitches, switches, injected links) and the run must
// degrade gracefully — no panic, no deadlock, every application message
// delivered, and the enforced RWND never widened past what the guest
// advertised. The suite runs under -race in CI.
package faults_test

import (
	"testing"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

const (
	chaosPairs   = 3
	chaosMsgs    = 8
	chaosMsgSize = 64 << 10
	chaosBound   = 5 * sim.Second
)

// chaosOptions builds the AC/DC scheme used by every chaos run: CUBIC
// guests, vSwitch DCTCP, ECN marking on, bounded flow table, timed sweep —
// and the invariant auditor in panic mode, so any datapath invariant broken
// under fault pressure (including across restarts: the restart-chaos suite
// builds on these options) fails the suite at the violating packet instead
// of surfacing as a downstream symptom.
func chaosOptions(prof *faults.Profile, seed int64) topo.Options {
	ac := core.DefaultConfig()
	ac.MaxFlows = 64
	ac.SweepInterval = 10 * sim.Millisecond
	return topo.Options{
		Guest:  tcpstack.DefaultConfig(),
		ACDC:   &ac,
		RED:    netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
		Seed:   seed,
		Faults: prof,
		Audit:  &audit.Config{Panic: true},
	}
}

// watchRwnd wraps every host's datapath hooks to assert the enforcement
// invariant: a packet that comes out of the vSwitch with the same identity
// it went in with may only have its receive window lowered, never raised —
// under every fault profile. Returns a counter of violations.
func watchRwnd(net *topo.Net) *int64 {
	widened := new(int64)
	for _, h := range net.Hosts {
		wrapHostRwnd(h, widened)
	}
	return widened
}

// wrapHostRwnd installs the widen-watch on one host's current hooks. Restart
// tests re-invoke it after Reattach replaces the hooks.
func wrapHostRwnd(h *netsim.Host, widened *int64) {
	wrap := func(orig netsim.PathHook) netsim.PathHook {
		if orig == nil {
			return nil
		}
		return func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
			var before uint16
			checkable := false
			if ip := packet.IPv4(p.Buf); ip.Valid() && ip.Protocol() == packet.ProtoTCP {
				if tc := ip.TCP(); tc.Valid() {
					before, checkable = tc.Window(), true
				}
			}
			out, extra := orig(p)
			// Only the packet with the same identity it went in with is a
			// rewrite; a synthesized packet (FACK/dup-ACK) is not checked.
			if checkable && out == p {
				if ip := packet.IPv4(out.Buf); ip.Valid() && ip.Protocol() == packet.ProtoTCP {
					if tc := ip.TCP(); tc.Valid() && tc.Window() > before {
						*widened++
					}
				}
			}
			return out, extra
		}
	}
	h.Egress = wrap(h.Egress)
	h.Ingress = wrap(h.Ingress)

	// The batch hooks run the same invariant per burst element; bursts would
	// otherwise bypass the per-packet wrapper entirely.
	wrapBatch := func(orig netsim.BatchPathHook) netsim.BatchPathHook {
		if orig == nil {
			return nil
		}
		return func(ps, pairs []*packet.Packet) []*packet.Packet {
			type preWnd struct {
				wnd       uint16
				checkable bool
			}
			pre := make([]preWnd, len(ps))
			for i, p := range ps {
				if ip := packet.IPv4(p.Buf); ip.Valid() && ip.Protocol() == packet.ProtoTCP {
					if tc := ip.TCP(); tc.Valid() {
						pre[i] = preWnd{tc.Window(), true}
					}
				}
			}
			base := len(pairs)
			pairs = orig(ps, pairs)
			for i, p := range ps {
				out := pairs[base+2*i]
				if pre[i].checkable && out == p {
					if ip := packet.IPv4(out.Buf); ip.Valid() && ip.Protocol() == packet.ProtoTCP {
						if tc := ip.TCP(); tc.Valid() && tc.Window() > pre[i].wnd {
							*widened++
						}
					}
				}
			}
			return pairs
		}
	}
	h.EgressBatch = wrapBatch(h.EgressBatch)
	h.IngressBatch = wrapBatch(h.IngressBatch)
}

// chaosOutcome is everything a chaos run asserts on or compares across runs.
type chaosOutcome struct {
	completed  int
	delivered  []int64
	widened    int64
	maxTable   int
	faultTotal int64
	fleet      string           // merged vSwitch metrics snapshot text
	snap       metrics.Snapshot // the same snapshot, queryable by counter name
}

func runChaos(t *testing.T, prof *faults.Profile, seed int64) chaosOutcome {
	t.Helper()
	net := topo.Dumbbell(chaosPairs, chaosOptions(prof, seed))
	widened := watchRwnd(net)
	return driveChaos(net, widened)
}

// driveChaos runs the standard chaos workload (chaosPairs flows, chaosMsgs
// messages each) on an already-built net and collects the outcome. Restart
// tests build the net themselves so they can arm restart plans first.
func driveChaos(net *topo.Net, widened *int64) chaosOutcome {
	m := workload.NewManager(net)

	completed := 0
	flows := make([]*workload.Messenger, chaosPairs)
	for i := 0; i < chaosPairs; i++ {
		flows[i] = m.Open(i, chaosPairs+i)
		for j := 0; j < chaosMsgs; j++ {
			flows[i].SendMessage(chaosMsgSize, func(sim.Duration) { completed++ })
		}
	}

	// Sample the flow-table bound while the run is hot.
	maxTable := 0
	var tick func()
	tick = func() {
		for _, v := range net.ACDC {
			if v == nil {
				continue
			}
			if n := v.Table.Len(); n > maxTable {
				maxTable = n
			}
		}
		net.Sim.Schedule(10*sim.Millisecond, tick)
	}
	net.Sim.Schedule(10*sim.Millisecond, tick)

	net.Sim.RunFor(chaosBound)

	out := chaosOutcome{
		completed: completed,
		widened:   *widened,
		maxTable:  maxTable,
	}
	for _, f := range flows {
		out.delivered = append(out.delivered, f.Delivered())
	}
	var snaps []metrics.Snapshot
	for _, v := range net.ACDC {
		if v != nil && v.Metrics.Registry() != nil {
			snaps = append(snaps, v.Metrics.Snapshot())
		}
	}
	out.snap = metrics.Merge(snaps...)
	out.fleet = out.snap.Text()
	if net.Faults != nil {
		out.faultTotal = net.Faults.Total()
	}
	return out
}

// TestChaosProfiles is the acceptance gate: every built-in profile (and the
// two the issue singles out — feedback-loss-only and strip-options) must
// leave the fabric degraded but correct.
func TestChaosProfiles(t *testing.T) {
	for _, name := range []string{
		"loss", "heavy-loss", "reorder", "dup", "jitter",
		"corrupt", "strip-options", "feedback-loss", "chaos",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := faults.Lookup(name)
			if !ok {
				t.Fatalf("profile %q missing", name)
			}
			out := runChaos(t, &prof, 5)
			want := chaosPairs * chaosMsgs
			if out.completed != want {
				t.Fatalf("%d/%d messages completed under %s", out.completed, want, name)
			}
			for i, d := range out.delivered {
				if d < chaosMsgs*chaosMsgSize {
					t.Fatalf("flow %d delivered %d < %d", i, d, chaosMsgs*chaosMsgSize)
				}
			}
			if out.widened != 0 {
				t.Fatalf("vSwitch widened an advertised window %d times under %s",
					out.widened, name)
			}
			if out.maxTable > 64 {
				t.Fatalf("flow table reached %d > MaxFlows=64", out.maxTable)
			}
			if out.faultTotal == 0 {
				t.Fatalf("profile %s injected nothing", name)
			}
		})
	}
}

// TestChaosDeterminism: one profile, one seed — two runs must agree on every
// observable (the injector PRNG is the only randomness the faults add).
func TestChaosDeterminism(t *testing.T) {
	prof, _ := faults.Lookup("chaos")
	a := runChaos(t, &prof, 11)
	b := runChaos(t, &prof, 11)
	if a.completed != b.completed || a.faultTotal != b.faultTotal {
		t.Fatalf("replay diverged: completed %d/%d, faults %d/%d",
			a.completed, b.completed, a.faultTotal, b.faultTotal)
	}
	for i := range a.delivered {
		if a.delivered[i] != b.delivered[i] {
			t.Fatalf("flow %d delivered %d vs %d on replay", i, a.delivered[i], b.delivered[i])
		}
	}
	if a.fleet != b.fleet {
		t.Fatal("fleet metrics snapshots differ between identical chaos runs")
	}
	c := runChaos(t, &prof, 12)
	if c.faultTotal == a.faultTotal && c.fleet == a.fleet {
		t.Fatal("different fault seed produced an identical run")
	}
}

// TestDisabledFaultsAreByteIdentical: a nil profile and an explicit disabled
// profile must take the exact fault-free code path — no injector, identical
// delivery, identical metrics text.
func TestDisabledFaultsAreByteIdentical(t *testing.T) {
	none := faults.Profile{Name: "none"}
	a := runChaos(t, nil, 3)
	b := runChaos(t, &none, 3)
	if a.faultTotal != 0 || b.faultTotal != 0 {
		t.Fatal("disabled profile created an active injector")
	}
	for i := range a.delivered {
		if a.delivered[i] != b.delivered[i] {
			t.Fatalf("flow %d: nil profile delivered %d, disabled profile %d",
				i, a.delivered[i], b.delivered[i])
		}
	}
	if a.fleet != b.fleet {
		t.Fatal("metrics differ between nil and disabled fault profiles")
	}
	if a.widened != 0 || b.widened != 0 {
		t.Fatal("window widened in a fault-free run")
	}
}

// TestChaosFailOpenVisible: under the full chaos mix the degradation paths
// must be observable — the counters the operator would alert on are moving.
func TestChaosFailOpenVisible(t *testing.T) {
	prof, _ := faults.Lookup("chaos")
	net := topo.Dumbbell(chaosPairs, chaosOptions(&prof, 9))
	m := workload.NewManager(net)
	for i := 0; i < chaosPairs; i++ {
		ms := m.Open(i, chaosPairs+i)
		ms.SendBulk(2 << 20)
	}
	net.Sim.RunFor(sim.Second)

	var merged metrics.Snapshot
	var snaps []metrics.Snapshot
	for _, v := range net.ACDC {
		if v != nil && v.Metrics.Registry() != nil {
			snaps = append(snaps, v.Metrics.Snapshot())
		}
	}
	merged = metrics.Merge(snaps...)
	// The chaos profile corrupts options and drops feedback, so both
	// hardening paths must have fired somewhere in the fleet.
	if merged.Counter("malformed_options_total") == 0 {
		t.Fatal("corrupt faults never tripped the malformed-options fail-open")
	}
	if merged.Counter("fail_open_total") == 0 {
		t.Fatal("no fail-open events under the chaos profile")
	}
	fi := net.Faults.Registry().Snapshot()
	if fi.Counter("fault_feedback_drops_total")+fi.Counter("fault_feedback_strips_total") == 0 {
		t.Fatal("chaos profile never touched feedback")
	}
}
