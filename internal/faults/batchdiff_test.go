// Chaos batch differential: the batch datapath must stay observably identical
// to the per-packet datapath on *fault-shaped* traffic, not just on scripted
// mixes. Each catalog profile drives a real dumbbell run with batching
// disabled and every vSwitch input recorded in arrival order; the recorded
// per-host streams are then replayed into fresh vSwitches twice — packet at a
// time, and through EgressBatch/IngressBatch at several burst splits — and
// every observable (output bytes, drops, final stats, table size, audit event
// stream) must agree. Runs under -race in CI alongside the chaos suite.
package faults_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

const (
	bdiffPairs = 2
	bdiffBulk  = 512 << 10
	bdiffBound = sim.Second
)

// bdiffStep is one packet as it entered a vSwitch hook: direction plus a
// clone of the wire bytes taken before the datapath mutated them.
type bdiffStep struct {
	egress bool
	buf    []byte
}

// recordStreams runs the bulk workload under prof on a dumbbell with batch
// hooks removed (so the per-packet wrappers see every packet) and returns the
// in-order vSwitch input stream of each host. Faults act on the links, so the
// recorded streams carry whatever the profile did to the traffic — drops,
// dups, reordering, corrupted headers, stripped options.
func recordStreams(prof *faults.Profile, seed int64) [][]bdiffStep {
	net := topo.Dumbbell(bdiffPairs, chaosOptions(prof, seed))
	streams := make([][]bdiffStep, len(net.Hosts))
	for i, h := range net.Hosts {
		i := i
		h.EgressBatch, h.IngressBatch = nil, nil
		wrap := func(egress bool, orig netsim.PathHook) netsim.PathHook {
			if orig == nil {
				return nil
			}
			return func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
				streams[i] = append(streams[i], bdiffStep{
					egress: egress,
					buf:    append([]byte(nil), p.Buf...),
				})
				return orig(p)
			}
		}
		h.Egress = wrap(true, h.Egress)
		h.Ingress = wrap(false, h.Ingress)
	}
	m := workload.NewManager(net)
	for i := 0; i < bdiffPairs; i++ {
		m.Open(i, bdiffPairs+i).SendBulk(bdiffBulk)
	}
	net.Sim.RunFor(bdiffBound)
	return streams
}

// bdiffAuditor records every audit callback as a formatted line so the two
// replays can be compared event-for-event. All event structs are plain values.
type bdiffAuditor struct {
	log []string
}

func (a *bdiffAuditor) PacketEvent(v *core.VSwitch, dir core.AuditDir, pre core.PacketPre, out, extra *packet.Packet, outIsInput bool) {
	var ob, eb []byte
	if out != nil {
		ob = out.Buf
	}
	if extra != nil {
		eb = extra.Buf
	}
	a.log = append(a.log, fmt.Sprintf("pkt %v pre=%+v out=%x extra=%x in=%v", dir, pre, ob, eb, outIsInput))
}
func (a *bdiffAuditor) AckEvent(v *core.VSwitch, e core.AckEvent) {
	a.log = append(a.log, fmt.Sprintf("ack %+v", e))
}
func (a *bdiffAuditor) CutEvent(v *core.VSwitch, e core.CutEvent) {
	a.log = append(a.log, fmt.Sprintf("cut %+v", e))
}
func (a *bdiffAuditor) PoliceEvent(v *core.VSwitch, e core.PoliceEvent) {
	a.log = append(a.log, fmt.Sprintf("pol %+v", e))
}

// bdiffRow is the observable outcome for one replayed packet.
type bdiffRow struct {
	out, extra []byte
	dropped    bool
}

func bdiffRowOf(out, extra *packet.Packet) bdiffRow {
	r := bdiffRow{dropped: out == nil && extra == nil}
	if out != nil {
		r.out = append([]byte(nil), out.Buf...)
	}
	if extra != nil {
		r.extra = append([]byte(nil), extra.Buf...)
	}
	return r
}

// bdiffVSwitch builds a standalone replay vSwitch with the chaos suite's
// datapath config (bounded table, so pressure eviction is in play).
func bdiffVSwitch() (*core.VSwitch, *bdiffAuditor) {
	s := sim.New(7)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	cfg := core.DefaultConfig()
	cfg.MaxFlows = 64
	v := core.Attach(s, host, cfg)
	aud := &bdiffAuditor{}
	v.Audit = aud
	return v, aud
}

func bdiffSequential(v *core.VSwitch, steps []bdiffStep) []bdiffRow {
	rows := make([]bdiffRow, 0, len(steps))
	for _, st := range steps {
		p := &packet.Packet{Buf: append([]byte(nil), st.buf...)}
		var out, extra *packet.Packet
		if st.egress {
			out, extra = v.EgressPath(p)
		} else {
			out, extra = v.IngressPath(p)
		}
		rows = append(rows, bdiffRowOf(out, extra))
	}
	return rows
}

// bdiffBatched chops each run of consecutive same-direction packets into
// bursts of at most split and drives them through the batch entry points.
func bdiffBatched(v *core.VSwitch, steps []bdiffStep, split int) []bdiffRow {
	rows := make([]bdiffRow, 0, len(steps))
	var pairs []*packet.Packet
	for i := 0; i < len(steps); {
		j := i
		for j < len(steps) && steps[j].egress == steps[i].egress {
			j++
		}
		for i < j {
			n := j - i
			if n > split {
				n = split
			}
			burst := make([]*packet.Packet, n)
			for k, st := range steps[i : i+n] {
				burst[k] = &packet.Packet{Buf: append([]byte(nil), st.buf...)}
			}
			if steps[i].egress {
				pairs = v.EgressBatch(burst, pairs[:0])
			} else {
				pairs = v.IngressBatch(burst, pairs[:0])
			}
			for k := range burst {
				rows = append(rows, bdiffRowOf(pairs[2*k], pairs[2*k+1]))
			}
			i += n
		}
	}
	return rows
}

func bdiffCompare(t *testing.T, steps []bdiffStep, split int) {
	t.Helper()
	va, auda := bdiffVSwitch()
	vb, audb := bdiffVSwitch()
	rowsA := bdiffSequential(va, steps)
	rowsB := bdiffBatched(vb, steps, split)
	if len(rowsA) != len(rowsB) {
		t.Fatalf("split=%d: %d sequential rows vs %d batched", split, len(rowsA), len(rowsB))
	}
	for i := range rowsA {
		a, b := rowsA[i], rowsB[i]
		if a.dropped != b.dropped || !bytes.Equal(a.out, b.out) || !bytes.Equal(a.extra, b.extra) {
			t.Fatalf("split=%d: packet %d diverged\nseq:   drop=%v out=%x extra=%x\nbatch: drop=%v out=%x extra=%x",
				split, i, a.dropped, a.out, a.extra, b.dropped, b.out, b.extra)
		}
	}
	if sa, sb := va.Stats(), vb.Stats(); sa != sb {
		t.Fatalf("split=%d: stats diverged\nseq:   %+v\nbatch: %+v", split, sa, sb)
	}
	if va.Table.Len() != vb.Table.Len() {
		t.Fatalf("split=%d: table len %d vs %d", split, va.Table.Len(), vb.Table.Len())
	}
	if !reflect.DeepEqual(auda.log, audb.log) {
		n := len(auda.log)
		if len(audb.log) < n {
			n = len(audb.log)
		}
		for i := 0; i < n; i++ {
			if auda.log[i] != audb.log[i] {
				t.Fatalf("split=%d: audit event %d diverged\nseq:   %s\nbatch: %s",
					split, i, auda.log[i], audb.log[i])
			}
		}
		t.Fatalf("split=%d: audit stream length %d vs %d", split, len(auda.log), len(audb.log))
	}
}

// TestChaosBatchDifferential: for every catalog fault profile, replaying each
// host's recorded traffic batched must be indistinguishable from replaying it
// packet at a time.
func TestChaosBatchDifferential(t *testing.T) {
	for _, name := range []string{
		"loss", "heavy-loss", "reorder", "dup", "jitter",
		"corrupt", "strip-options", "feedback-loss", "chaos",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, ok := faults.Lookup(name)
			if !ok {
				t.Fatalf("profile %q missing", name)
			}
			streams := recordStreams(&prof, 21)
			total := 0
			for host, steps := range streams {
				total += len(steps)
				if len(steps) == 0 {
					continue
				}
				for _, split := range []int{1, 3, 32} {
					split := split
					t.Run(fmt.Sprintf("host=%d/split=%d", host, split), func(t *testing.T) {
						bdiffCompare(t, steps, split)
					})
				}
			}
			if total == 0 {
				t.Fatalf("profile %s recorded no traffic", name)
			}
		})
	}
}
