package faults

import (
	"fmt"
	"strings"
)

// ProfilesHelp renders the built-in fault profiles as the shared `-faults
// list` output. Every binary with a plan-style -faults flag (acdcsim,
// acdcreport) prints exactly this text, so discovery looks the same
// everywhere; cmd/acdcsuite prints it too for the Faults field of scenario
// specs.
func ProfilesHelp() string {
	var b strings.Builder
	b.WriteString("built-in fault profiles:\n")
	for _, name := range Names() {
		p, _ := Lookup(name)
		fmt.Fprintf(&b, "  %-14s %s\n", name, p.String())
	}
	b.WriteString("or a comma-separated k=v list: drop=0.01,reorder=0.02,jitter=50us,...\n")
	return b.String()
}

// RestartHelp renders the restart variants as the shared `-restart list`
// output (same convention as ProfilesHelp).
func RestartHelp() string {
	var b strings.Builder
	b.WriteString("vSwitch restart variants (mode[@time][,key=val...]):\n")
	for _, name := range RestartVariants() {
		p, _ := LookupRestart(name)
		fmt.Fprintf(&b, "  %-8s %s\n", name, p.String())
	}
	b.WriteString("keys: down=<dur> (outage window), age=<dur> (stale snapshot age),\n")
	b.WriteString("      every=<dur> (recur while flows remain), host=<idx> (repeatable)\n")
	b.WriteString("example: stale@1ms,age=500us,down=50us,host=0\n")
	return b.String()
}
