package faults

import (
	"fmt"
	"strings"
)

// ProfilesHelp renders the built-in fault profiles as the shared `-faults
// list` output. Every binary with a plan-style -faults flag (acdcsim,
// acdcreport) prints exactly this text, so discovery looks the same
// everywhere; cmd/acdcsuite prints it too for the Faults field of scenario
// specs.
func ProfilesHelp() string {
	var b strings.Builder
	b.WriteString("built-in fault profiles:\n")
	for _, name := range Names() {
		p, _ := Lookup(name)
		fmt.Fprintf(&b, "  %-14s %s\n", name, p.String())
	}
	b.WriteString("or a comma-separated k=v list: drop=0.01,reorder=0.02,jitter=50us,...\n")
	return b.String()
}

// RestartHelp renders the restart variants as the shared `-restart list`
// output (same convention as ProfilesHelp).
func RestartHelp() string {
	var b strings.Builder
	b.WriteString("vSwitch restart variants (mode[@time][,key=val...]):\n")
	for _, name := range RestartVariants() {
		p, _ := LookupRestart(name)
		fmt.Fprintf(&b, "  %-8s %s\n", name, p.String())
	}
	b.WriteString("keys: down=<dur> (outage window), age=<dur> (stale snapshot age),\n")
	b.WriteString("      every=<dur> (recur while flows remain), host=<idx> (repeatable)\n")
	b.WriteString("example: stale@1ms,age=500us,down=50us,host=0\n")
	return b.String()
}

// DomainHelp renders the fabric fault-domain syntax as the shared `-fabric
// list` output (same convention as ProfilesHelp/RestartHelp).
func DomainHelp() string {
	var b strings.Builder
	b.WriteString("fabric fault domains (kind[@time][,key=val...]; join several with ';'):\n")
	b.WriteString("  link-down    take matching links down for `for` (default 100us)\n")
	b.WriteString("  switch-down  take every link touching switch=<name> down for `for`\n")
	b.WriteString("  flap         cycle matching links: down=<dur>, up=<dur>, count=<n>\n")
	b.WriteString("  gray         link stays up, silently drops loss=<frac> and delays delay=<dur>\n")
	b.WriteString("keys: link=<name|prefix*>, switch=<name>, for=<dur>, down=<dur>, up=<dur>,\n")
	b.WriteString("      count=<n>, loss=<0..1>, delay=<dur>\n")
	b.WriteString("examples:\n")
	b.WriteString("  switch-down@5ms,switch=p1-tor0,for=5ms\n")
	b.WriteString("  flap@1ms,link=p0-agg0>core0,down=500us,up=2ms,count=5\n")
	b.WriteString("  gray@1ms,link=core1>p2-agg0,loss=0.02;link-down@4ms,link=p3-agg1>core3\n")
	return b.String()
}

// Nearest returns the candidate most plausibly meant by a mistyped name: the
// smallest edit distance at most 2, with prefix matches accepted at any
// length ("heavy" → "heavy-loss"). It returns "" when nothing is close —
// suggesting a wild guess is worse than listing the catalog. Shared by every
// unknown-name error path (fault profiles, scenario selection) so typo
// diagnostics look the same across binaries.
func Nearest(name string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if strings.HasPrefix(c, name) && name != "" {
			return c
		}
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
