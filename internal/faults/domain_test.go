package faults

import (
	"strings"
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

func TestParseDomains(t *testing.T) {
	cases := []struct {
		in   string
		want FaultDomain
	}{
		{"link-down,link=a>b", FaultDomain{Kind: DomainLinkDown, Link: "a>b",
			At: sim.Millisecond, For: 100 * sim.Microsecond}},
		{"link-down@2ms,link=a>b,for=500us", FaultDomain{Kind: DomainLinkDown, Link: "a>b",
			At: 2 * sim.Millisecond, For: 500 * sim.Microsecond}},
		{"switch-down@5ms,switch=p1-tor0,for=5ms", FaultDomain{Kind: DomainSwitchDown,
			Switch: "p1-tor0", At: 5 * sim.Millisecond, For: 5 * sim.Millisecond}},
		{"flap,link=up*", FaultDomain{Kind: DomainFlap, Link: "up*", At: sim.Millisecond,
			Down: 100 * sim.Microsecond, Up: sim.Millisecond, Count: 3}},
		{"flap@1ms,link=x,down=500us,up=2ms,count=5", FaultDomain{Kind: DomainFlap, Link: "x",
			At: sim.Millisecond, Down: 500 * sim.Microsecond, Up: 2 * sim.Millisecond, Count: 5}},
		{"gray,link=x", FaultDomain{Kind: DomainGray, Link: "x", At: sim.Millisecond, Loss: 0.01}},
		{"gray@1ms,link=x,loss=0.2,delay=10us,for=3ms", FaultDomain{Kind: DomainGray, Link: "x",
			At: sim.Millisecond, Loss: 0.2, Delay: 10 * sim.Microsecond, For: 3 * sim.Millisecond}},
	}
	for _, tc := range cases {
		got, err := ParseDomains(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if len(got) != 1 || got[0] != tc.want {
			t.Fatalf("%q: got %+v, want %+v", tc.in, got, tc.want)
		}
	}
	multi, err := ParseDomains("gray,link=a;link-down@4ms,link=b")
	if err != nil || len(multi) != 2 {
		t.Fatalf("multi-spec: %v %v", multi, err)
	}
}

func TestParseDomainsErrors(t *testing.T) {
	for _, in := range []string{
		"", ";", "bogus,link=x", "link-down", "switch-down@1ms", "flap,link=x,count=0",
		"gray,link=x,loss=2", "link-down@-1ms,link=x", "flap,link=x,nope=1",
		"link-down,link", "gray,link=x,delay=zzz",
	} {
		if _, err := ParseDomains(in); err == nil {
			t.Errorf("%q: no error", in)
		}
	}
	_, err := ParseDomains("grya,link=x")
	if err == nil || !strings.Contains(err.Error(), "gray") {
		t.Errorf("typo suggestion missing: %v", err)
	}
}

func TestDomainStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"link-down@2ms,link=a>b,for=500us",
		"switch-down@5ms,switch=tor0,for=5ms",
		"flap@1ms,link=x,down=500us,up=2ms,count=5",
		"gray@1ms,link=x,loss=0.2,delay=10us,for=3ms",
	} {
		d, err := ParseDomains(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseDomains(d[0].String())
		if err != nil {
			t.Fatalf("%q → %q unparsable: %v", in, d[0].String(), err)
		}
		if back[0] != d[0] {
			t.Fatalf("round trip drifted: %+v vs %+v", d[0], back[0])
		}
	}
}

// listView is a minimal FabricView over a flat link list.
type listView struct{ links []*netsim.Link }

func (v listView) LinksMatching(pattern string) []*netsim.Link {
	prefix, wild := strings.CutSuffix(pattern, "*")
	var out []*netsim.Link
	for _, l := range v.links {
		if (wild && strings.HasPrefix(l.Name, prefix)) || (!wild && l.Name == pattern) {
			out = append(out, l)
		}
	}
	return out
}

func (v listView) SwitchLinks(name string) []*netsim.Link {
	return v.LinksMatching(name + ">*")
}

type domSink struct{ got int }

func (k *domSink) HandlePacket(p *packet.Packet) { k.got++ }

func newDomLink(s *sim.Simulator, name string, pool *packet.Pool) *netsim.Link {
	l := netsim.NewLink(s, name, 1e9, sim.Microsecond, &domSink{})
	l.Pool = pool
	return l
}

func TestDomainsOutageAndFlap(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	a := newDomLink(s, "a>b", pool)
	c := newDomLink(s, "c>d", pool)
	plans, err := ParseDomains("link-down@10us,link=a>b,for=20us;flap@100us,link=c>d,down=10us,up=10us,count=2")
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDomains(plans, 1)
	ds.Schedule(s, listView{links: []*netsim.Link{a, c}})

	s.Run(15 * sim.Microsecond)
	if !a.IsDown() || c.IsDown() {
		t.Fatalf("at 15us: a down=%v c down=%v, want true/false", a.IsDown(), c.IsDown())
	}
	s.Run(40 * sim.Microsecond)
	if a.IsDown() {
		t.Fatal("a still down after the outage window")
	}
	s.RunAll()
	if c.Stats.DownEvents != 2 || c.Stats.UpEvents != 2 {
		t.Fatalf("flap edges: down=%d up=%d, want 2/2", c.Stats.DownEvents, c.Stats.UpEvents)
	}
	snap := ds.Registry().Snapshot()
	if snap.Counter("fabric_link_downs_total") != 3 || snap.Counter("fabric_link_ups_total") != 3 {
		t.Fatalf("registry: downs=%d ups=%d, want 3/3",
			snap.Counter("fabric_link_downs_total"), snap.Counter("fabric_link_ups_total"))
	}
}

func TestDomainsGrayLoss(t *testing.T) {
	run := func(seed int64) (delivered int, dropped int64) {
		s := sim.New(1)
		pool := packet.NewPool()
		k := &domSink{}
		l := netsim.NewLink(s, "g", 1e9, sim.Microsecond, k)
		l.Pool = pool
		plans, err := ParseDomains("gray@1us,link=g,loss=0.5,for=1ms")
		if err != nil {
			t.Fatal(err)
		}
		ds := NewDomains(plans, seed)
		ds.Schedule(s, listView{links: []*netsim.Link{l}})
		s.Run(2 * sim.Microsecond) // window open
		for i := 0; i < 200; i++ {
			l.Send(packet.BuildIn(pool, packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
				packet.ECT0, packet.TCPFields{SrcPort: uint16(i), DstPort: 2, Flags: packet.FlagACK}, 64))
			s.RunFor(sim.Microsecond)
		}
		s.RunAll()
		return k.got, ds.Registry().Snapshot().Counter("fabric_gray_drops_total")
	}
	got, dropped := run(7)
	if dropped == 0 || got == 0 {
		t.Fatalf("gray loss degenerate: delivered=%d dropped=%d", got, dropped)
	}
	if got+int(dropped) != 200 {
		t.Fatalf("accounting: delivered=%d dropped=%d, want sum 200", got, dropped)
	}
	got2, dropped2 := run(7)
	if got2 != got || dropped2 != dropped {
		t.Fatalf("gray loss not deterministic: %d/%d vs %d/%d", got, dropped, got2, dropped2)
	}
	got3, _ := run(8)
	if got3 == got {
		t.Log("different seed produced identical delivery count (possible, but suspicious)")
	}
}

// TestDomainsGrayWindowCloses: after For, the link is clean again and the
// previous hook (none here) is restored.
func TestDomainsGrayWindowCloses(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	k := &domSink{}
	l := netsim.NewLink(s, "g", 1e9, sim.Microsecond, k)
	l.Pool = pool
	plans, _ := ParseDomains("gray@1us,link=g,loss=1,for=10us")
	ds := NewDomains(plans, 1)
	ds.Schedule(s, listView{links: []*netsim.Link{l}})
	s.Run(2 * sim.Microsecond) // window open: loss=1 eats everything
	for i := 0; i < 5; i++ {
		l.Send(packet.BuildIn(pool, packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
			packet.ECT0, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK}, 64))
	}
	s.Run(20 * sim.Microsecond)
	if l.Fault != nil {
		t.Fatal("gray hook still installed after the window")
	}
	for i := 0; i < 10; i++ {
		l.Send(packet.BuildIn(pool, packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
			packet.ECT0, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK}, 64))
	}
	s.RunAll()
	if k.got != 10 {
		t.Fatalf("post-window delivery %d/10", k.got)
	}
	if l.Stats.DropsFault == 0 {
		t.Fatal("loss=1 window dropped nothing — schedule never fired")
	}
}

func TestDomainsSchedulePanicsOnNoMatch(t *testing.T) {
	s := sim.New(1)
	plans, _ := ParseDomains("link-down@1ms,link=missing")
	ds := NewDomains(plans, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a pattern matching zero links")
		}
	}()
	ds.Schedule(s, listView{})
}

func TestDomainHelpMentionsEveryKind(t *testing.T) {
	h := DomainHelp()
	for _, k := range DomainKinds() {
		if !strings.Contains(h, k) {
			t.Errorf("DomainHelp missing kind %q", k)
		}
	}
}
