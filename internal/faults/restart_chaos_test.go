// Restart chaos suite: vSwitches die and come back (cold / warm / stale /
// corrupt-checkpoint) while bulk transfers are in flight, and every transfer
// must still complete with the enforcement invariant intact — the RWND is
// never widened, not even by a vSwitch that just adopted the flow without a
// handshake. Runs under -race in CI alongside the link-fault chaos suite.
package faults_test

import (
	"testing"

	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/topo"
)

// Restart timing against the chaos workload: 3 pairs × 8 × 64 KiB needs
// >1 ms of sim time on the shared 10G trunk, the three-way handshakes finish
// within the first ~30 µs, so 300 µs is solidly mid-transfer and 7 µs lands
// while SYNs are still on the wire.
const (
	restartMid       = 300 * sim.Microsecond
	restartHandshake = 7 * sim.Microsecond
	restartDowntime  = 20 * sim.Microsecond
)

// watchedTarget delegates to the real vSwitch but re-installs the RWND
// widen-watch after Reattach, because Reattach replaces the host hooks the
// watch was wrapped around. This keeps the invariant armed across restarts —
// the window where a resyncing vSwitch could plausibly widen a window is
// exactly the post-restart one.
type watchedTarget struct {
	v       *core.VSwitch
	h       *netsim.Host
	widened *int64
}

func (w watchedTarget) SaveSnapshot() []byte { return w.v.SaveSnapshot() }
func (w watchedTarget) Detach()              { w.v.Detach() }
func (w watchedTarget) Restart(s []byte)     { w.v.Restart(s) }
func (w watchedTarget) FlowCount() int       { return w.v.FlowCount() }
func (w watchedTarget) Reattach() {
	w.v.Reattach()
	wrapHostRwnd(w.h, w.widened)
}

// runRestartChaos is runChaos plus a restart plan, armed through the same
// faults.RestartPlan.Schedule path topo uses, with widen-watched targets.
func runRestartChaos(t *testing.T, plan faults.RestartPlan, prof *faults.Profile, seed int64) chaosOutcome {
	t.Helper()
	net := topo.Dumbbell(chaosPairs, chaosOptions(prof, seed))
	widened := watchRwnd(net)
	var targets []faults.RestartTarget
	for i, v := range net.ACDC {
		if v != nil && plan.AppliesTo(i) {
			targets = append(targets, watchedTarget{v: v, h: net.Hosts[i], widened: widened})
		}
	}
	if len(targets) == 0 {
		t.Fatal("restart plan matched no AC/DC hosts")
	}
	plan.Schedule(net.Sim, targets)
	return driveChaos(net, widened)
}

// assertChaosComplete is the common acceptance bar: every message delivered,
// window never widened, flow table bounded.
func assertChaosComplete(t *testing.T, out chaosOutcome, label string) {
	t.Helper()
	want := chaosPairs * chaosMsgs
	if out.completed != want {
		t.Fatalf("%s: %d/%d messages completed", label, out.completed, want)
	}
	for i, d := range out.delivered {
		if d < chaosMsgs*chaosMsgSize {
			t.Fatalf("%s: flow %d delivered %d < %d", label, i, d, chaosMsgs*chaosMsgSize)
		}
	}
	if out.widened != 0 {
		t.Fatalf("%s: vSwitch widened an advertised window %d times", label, out.widened)
	}
	if out.maxTable > 64 {
		t.Fatalf("%s: flow table reached %d > MaxFlows=64", label, out.maxTable)
	}
}

// TestRestartMidTransfer is the tentpole acceptance: every recovery mode,
// fleet-wide restart in the middle of bulk transfers. Transfers complete,
// adopted/restored flows resynchronize, and no mode ever widens a window.
func TestRestartMidTransfer(t *testing.T) {
	cases := []struct {
		name        string
		mode        faults.RestartMode
		wantRestore bool // snapshot_restore_total > 0
		wantCorrupt bool // snapshot_corrupt_total > 0
		wantAdopted bool // flows_adopted_midstream_total > 0 (no state survived)
	}{
		{name: "cold", mode: faults.RestartCold, wantAdopted: true},
		{name: "warm", mode: faults.RestartWarm, wantRestore: true},
		{name: "stale", mode: faults.RestartStale, wantRestore: true},
		{name: "corrupt", mode: faults.RestartCorrupt, wantCorrupt: true, wantAdopted: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.RestartPlan{
				Mode:     tc.mode,
				At:       restartMid,
				Downtime: restartDowntime,
				StaleAge: 100 * sim.Microsecond,
			}
			out := runRestartChaos(t, plan, nil, 5)
			assertChaosComplete(t, out, tc.name)
			if got := out.snap.Counter("vswitch_restarts_total"); got != 2*chaosPairs {
				t.Fatalf("vswitch_restarts_total = %d, want %d (every host once)",
					got, 2*chaosPairs)
			}
			if out.snap.Counter("flows_resynced_total") == 0 {
				t.Fatal("no flow ever completed resync after the restart")
			}
			if tc.wantRestore && out.snap.Counter("snapshot_restore_total") == 0 {
				t.Fatal("warm/stale restart never restored a checkpoint")
			}
			if tc.wantCorrupt && out.snap.Counter("snapshot_corrupt_total") == 0 {
				t.Fatal("corrupt restart never tripped the fail-open decoder")
			}
			if tc.wantAdopted && out.snap.Counter("flows_adopted_midstream_total") == 0 {
				t.Fatal("cold restart never adopted a live flow midstream")
			}
			if tc.mode != faults.RestartCold && tc.mode != faults.RestartCorrupt {
				if out.snap.Counter("snapshot_save_total") == 0 {
					t.Fatal("no checkpoint was ever taken")
				}
			}
		})
	}
}

// TestRestartDuringHandshake kills every vSwitch while the SYNs are still on
// the wire: the flow state that dies is half-open, so the revived vSwitch
// sees SYN-ACKs (or final ACKs) for flows it never saw open.
func TestRestartDuringHandshake(t *testing.T) {
	for _, mode := range []faults.RestartMode{faults.RestartCold, faults.RestartWarm} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			plan := faults.RestartPlan{Mode: mode, At: restartHandshake, Downtime: 5 * sim.Microsecond}
			out := runRestartChaos(t, plan, nil, 5)
			assertChaosComplete(t, out, "handshake-"+mode.String())
		})
	}
}

// TestRestartDuringLossRecovery overlaps the restart with the heavy-loss
// link profile, so flows are in fast recovery / retransmission when their
// enforcement state vanishes.
func TestRestartDuringLossRecovery(t *testing.T) {
	prof, ok := faults.Lookup("heavy-loss")
	if !ok {
		t.Fatal("heavy-loss profile missing")
	}
	plan := faults.RestartPlan{Mode: faults.RestartWarm, At: restartMid, Downtime: restartDowntime}
	out := runRestartChaos(t, plan, &prof, 5)
	assertChaosComplete(t, out, "loss-recovery")
	if out.faultTotal == 0 {
		t.Fatal("heavy-loss profile injected nothing")
	}
	if out.snap.Counter("vswitch_restarts_total") == 0 {
		t.Fatal("no restart fired")
	}
}

// TestRestartBothEndpoints restarts exactly the two vSwitches of one pair at
// the same instant — sender and receiver lose state together, so the PACK
// feedback loop has to re-bootstrap from both ends at once. The other two
// pairs keep their vSwitches throughout and must be unaffected.
func TestRestartBothEndpoints(t *testing.T) {
	plan := faults.RestartPlan{
		Mode:     faults.RestartCold,
		At:       restartMid,
		Downtime: restartDowntime,
		Hosts:    []int{0, chaosPairs}, // pair 0: sender host 0, receiver host 3
	}
	out := runRestartChaos(t, plan, nil, 5)
	assertChaosComplete(t, out, "both-endpoints")
	if got := out.snap.Counter("vswitch_restarts_total"); got != 2 {
		t.Fatalf("vswitch_restarts_total = %d, want 2 (one pair only)", got)
	}
	if out.snap.Counter("flows_resynced_total") == 0 {
		t.Fatal("the restarted pair never resynchronized")
	}
}

// TestRestartPeerOnly restarts only the receiver-side vSwitches. The sender
// vSwitches keep their cumulative feedback counters, so when the restarted
// peers start counting from zero again the senders must take the regression
// re-baseline path (feedback_resets_total) instead of computing a garbage
// multi-gigabyte delta.
func TestRestartPeerOnly(t *testing.T) {
	plan := faults.RestartPlan{
		Mode:     faults.RestartCold,
		At:       restartMid,
		Downtime: restartDowntime,
		Hosts:    []int{chaosPairs, chaosPairs + 1, chaosPairs + 2},
	}
	out := runRestartChaos(t, plan, nil, 5)
	assertChaosComplete(t, out, "peer-only")
	if got := out.snap.Counter("vswitch_restarts_total"); got != chaosPairs {
		t.Fatalf("vswitch_restarts_total = %d, want %d (receiver side only)", got, chaosPairs)
	}
	if out.snap.Counter("feedback_resets_total") == 0 {
		t.Fatal("senders never re-baselined the regressed peer feedback")
	}
}

// TestRestartRecurring re-kills the fleet every 400µs for the whole run. The
// plan only re-arms while flows remain, so the sim still terminates, and the
// workload must still finish despite losing state over and over.
func TestRestartRecurring(t *testing.T) {
	plan := faults.RestartPlan{
		Mode:     faults.RestartWarm,
		At:       restartMid,
		Downtime: restartDowntime,
		Every:    400 * sim.Microsecond,
	}
	out := runRestartChaos(t, plan, nil, 5)
	assertChaosComplete(t, out, "recurring")
	if got := out.snap.Counter("vswitch_restarts_total"); got < 2*2*chaosPairs {
		t.Fatalf("vswitch_restarts_total = %d, want at least two rounds (%d)",
			got, 2*2*chaosPairs)
	}
}

// TestRestartDeterminism: a restart plan adds no randomness — same seed and
// plan must replay to the identical fleet state.
func TestRestartDeterminism(t *testing.T) {
	plan := faults.RestartPlan{Mode: faults.RestartStale, At: restartMid,
		Downtime: restartDowntime, StaleAge: 100 * sim.Microsecond}
	a := runRestartChaos(t, plan, nil, 11)
	b := runRestartChaos(t, plan, nil, 11)
	if a.fleet != b.fleet {
		t.Fatal("fleet metrics diverged between identical restart runs")
	}
	for i := range a.delivered {
		if a.delivered[i] != b.delivered[i] {
			t.Fatalf("flow %d delivered %d vs %d on replay", i, a.delivered[i], b.delivered[i])
		}
	}
}

// TestRestartViaTopoOptions drives the production wiring end to end: the
// plan rides in on topo.Options (as the CLIs set it) rather than being
// scheduled by the test, and the run must still complete and resync.
func TestRestartViaTopoOptions(t *testing.T) {
	plan := faults.RestartPlan{Mode: faults.RestartWarm, At: restartMid, Downtime: restartDowntime}
	opts := chaosOptions(nil, 5)
	opts.Restart = &plan
	net := topo.Dumbbell(chaosPairs, opts)
	widened := watchRwnd(net)
	out := driveChaos(net, widened)
	assertChaosComplete(t, out, "topo-options")
	if out.snap.Counter("vswitch_restarts_total") != 2*chaosPairs {
		t.Fatalf("vswitch_restarts_total = %d, want %d",
			out.snap.Counter("vswitch_restarts_total"), 2*chaosPairs)
	}
	if out.snap.Counter("flows_resynced_total") == 0 {
		t.Fatal("no flow resynced through the topo.Options wiring")
	}
}
