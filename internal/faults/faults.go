// Package faults is the deterministic fault-injection layer: it compiles a
// declarative FaultProfile into netsim link hooks driven by a seeded PRNG,
// so every chaos run is exactly reproducible from (profile, seed).
//
// The paper's core robustness claim (§5.2) is that AC/DC keeps working when
// it cannot trust its environment — arbitrary guest stacks, lossy fabrics,
// middleboxes that strip options, bounded vSwitch memory. This package
// manufactures those environments on demand: packet loss, reordering,
// duplication, delay jitter, checksum/option corruption, TCP-option
// stripping, and targeted loss of AC/DC's own PACK/FACK feedback channel.
// The vSwitch hardening it flushes out lives in internal/core; the chaos
// suite that asserts the invariants (no panic, no deadlock, flows complete,
// enforcement never widens a window) lives in this package's tests.
//
// Every injected fault increments a counter in the injector's metrics
// registry (fault_*_total), which internal/experiments merges into the fleet
// telemetry so `acdcreport -metrics` shows exactly what a chaos run did.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"acdc/internal/sim"
)

// Profile declares the fault mix applied to every link of a fabric.
// Probabilities are per packet in [0,1]; a zero Profile injects nothing.
type Profile struct {
	// Name labels the profile in reports ("" for ad-hoc profiles).
	Name string

	// Drop is the probability a packet is silently lost after
	// serialization (fabric loss beyond buffer overflow).
	Drop float64
	// Reorder is the probability a packet is held back by ReorderDelay so
	// packets behind it overtake (multi-path / pause-frame reordering).
	Reorder float64
	// ReorderDelay is the hold-back applied to reordered packets
	// (default 200µs when Reorder > 0).
	ReorderDelay sim.Duration
	// Dup is the probability a packet is delivered twice.
	Dup float64
	// Jitter adds a uniform random extra delay in [0, Jitter] to every
	// packet (oversubscribed/PFC-paused fabric).
	Jitter sim.Duration
	// Corrupt is the probability a packet's TCP header is damaged in
	// flight: the checksum field is inverted and, when the segment carries
	// options, the option bytes are scribbled with PRNG garbage — the
	// malformed-option input the datapath parsers must survive.
	Corrupt float64
	// StripOptions is the probability a middlebox strips all TCP options
	// from a segment (the §4 concern: AC/DC must degrade to passthrough
	// when its PACK option — or the guest's SACK/timestamps — vanish).
	StripOptions float64
	// DropFeedback is the probability AC/DC's own congestion feedback is
	// lost: PACK options are stripped from ACKs and dedicated FACK packets
	// are dropped, while all guest traffic passes untouched. This isolates
	// the sender module's lost-feedback tolerance.
	DropFeedback float64
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.Drop > 0 || p.Reorder > 0 || p.Dup > 0 || p.Jitter > 0 ||
		p.Corrupt > 0 || p.StripOptions > 0 || p.DropFeedback > 0
}

// String renders the active fault terms, e.g. "chaos(drop=0.005,dup=0.005)".
func (p Profile) String() string {
	var terms []string
	add := func(k string, v float64) {
		if v > 0 {
			terms = append(terms, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", p.Drop)
	add("reorder", p.Reorder)
	if p.Reorder > 0 && p.ReorderDelay > 0 {
		terms = append(terms, fmt.Sprintf("reorder-delay=%v", p.ReorderDelay))
	}
	add("dup", p.Dup)
	if p.Jitter > 0 {
		terms = append(terms, fmt.Sprintf("jitter=%v", p.Jitter))
	}
	add("corrupt", p.Corrupt)
	add("strip-options", p.StripOptions)
	add("feedback-loss", p.DropFeedback)
	name := p.Name
	if name == "" {
		name = "custom"
	}
	if len(terms) == 0 {
		return name + "(none)"
	}
	return name + "(" + strings.Join(terms, ",") + ")"
}

// withDefaults fills derived fields (reorder hold-back).
func (p Profile) withDefaults() Profile {
	if p.Reorder > 0 && p.ReorderDelay == 0 {
		p.ReorderDelay = 200 * sim.Microsecond
	}
	return p
}

// profiles is the named-profile registry: each stresses one recovery path,
// plus "chaos" mixing them all at rates a marginal-but-alive fabric shows.
var profiles = map[string]Profile{
	"none":          {},
	"loss":          {Drop: 0.01},
	"heavy-loss":    {Drop: 0.05},
	"reorder":       {Reorder: 0.02, ReorderDelay: 200 * sim.Microsecond},
	"dup":           {Dup: 0.01},
	"jitter":        {Jitter: 100 * sim.Microsecond},
	"corrupt":       {Corrupt: 0.01},
	"strip-options": {StripOptions: 1},
	"feedback-loss": {DropFeedback: 1},
	"chaos": {
		Drop: 0.005, Reorder: 0.01, ReorderDelay: 200 * sim.Microsecond,
		Dup: 0.005, Jitter: 50 * sim.Microsecond, Corrupt: 0.002,
		DropFeedback: 0.2,
	},
}

// Names returns the registered profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the named profile.
func Lookup(name string) (Profile, bool) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, false
	}
	p.Name = name
	return p.withDefaults(), true
}

// Parse resolves a -faults flag value: either a registered profile name
// (see Names) or a comma-separated key=value list, e.g.
// "drop=0.01,jitter=100us,feedback-loss=0.5". Duration-valued keys accept
// time.ParseDuration syntax; probability keys accept floats in [0,1].
func Parse(s string) (Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Profile{}, nil
	}
	if p, ok := Lookup(s); ok {
		return p, nil
	}
	if !strings.Contains(s, "=") {
		if near := Nearest(s, Names()); near != "" {
			return Profile{}, fmt.Errorf("faults: unknown profile %q (did you mean %q?)", s, near)
		}
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)", s, strings.Join(Names(), ", "))
	}
	var p Profile
	for _, term := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return Profile{}, fmt.Errorf("faults: bad term %q (want key=value)", term)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		switch k {
		case "jitter", "reorder-delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Profile{}, fmt.Errorf("faults: bad duration %s=%q", k, v)
			}
			if k == "jitter" {
				p.Jitter = sim.Duration(d.Nanoseconds())
			} else {
				p.ReorderDelay = sim.Duration(d.Nanoseconds())
			}
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return Profile{}, fmt.Errorf("faults: bad probability %s=%q (want [0,1])", k, v)
			}
			switch k {
			case "drop":
				p.Drop = f
			case "reorder":
				p.Reorder = f
			case "dup":
				p.Dup = f
			case "corrupt":
				p.Corrupt = f
			case "strip-options":
				p.StripOptions = f
			case "feedback-loss":
				p.DropFeedback = f
			default:
				return Profile{}, fmt.Errorf("faults: unknown key %q", k)
			}
		}
	}
	return p.withDefaults(), nil
}
