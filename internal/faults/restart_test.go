package faults

import (
	"bytes"
	"reflect"
	"testing"

	"acdc/internal/sim"
)

// fakeTarget records the scheduler's calls with their sim timestamps.
type fakeTarget struct {
	s          *sim.Simulator
	snap       []byte
	flows      int
	saves      []sim.Time
	detaches   []sim.Time
	reattaches []sim.Time
	restarts   []sim.Time
	restored   [][]byte
}

func (f *fakeTarget) SaveSnapshot() []byte {
	f.saves = append(f.saves, f.s.Now())
	// Hand out a copy so the corrupt mode's in-place flip can't touch f.snap.
	return append([]byte(nil), f.snap...)
}
func (f *fakeTarget) Detach()   { f.detaches = append(f.detaches, f.s.Now()) }
func (f *fakeTarget) Reattach() { f.reattaches = append(f.reattaches, f.s.Now()) }
func (f *fakeTarget) Restart(snap []byte) {
	f.restarts = append(f.restarts, f.s.Now())
	f.restored = append(f.restored, snap)
}
func (f *fakeTarget) FlowCount() int { return f.flows }

func TestParseRestart(t *testing.T) {
	cases := []struct {
		in   string
		want RestartPlan
	}{
		{"warm", RestartPlan{Mode: RestartWarm, At: sim.Millisecond}},
		{"cold@200us", RestartPlan{Mode: RestartCold, At: 200 * sim.Microsecond}},
		{"stale", RestartPlan{Mode: RestartStale, At: sim.Millisecond,
			StaleAge: 100 * sim.Microsecond}},
		{"stale@1ms,age=500us", RestartPlan{Mode: RestartStale, At: sim.Millisecond,
			StaleAge: 500 * sim.Microsecond}},
		{"warm@1ms,host=0,host=3,down=50us", RestartPlan{Mode: RestartWarm,
			At: sim.Millisecond, Downtime: 50 * sim.Microsecond, Hosts: []int{0, 3}}},
		{"corrupt,every=2ms", RestartPlan{Mode: RestartCorrupt, At: sim.Millisecond,
			Every: 2 * sim.Millisecond}},
		{" warm @ 2ms , down = 1us ", RestartPlan{Mode: RestartWarm,
			At: 2 * sim.Millisecond, Downtime: sim.Microsecond}},
	}
	for _, tc := range cases {
		got, err := ParseRestart(tc.in)
		if err != nil {
			t.Fatalf("ParseRestart(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseRestart(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseRestartErrors(t *testing.T) {
	for _, in := range []string{
		"", "bbr", "warm@", "warm@-1ms", "warm@nonsense",
		"warm,down", "warm,down=xyz", "warm,age=-5us", "warm,host=-1",
		"warm,host=a", "warm,color=red", "stale,age=0",
	} {
		if _, err := ParseRestart(in); err == nil {
			t.Fatalf("ParseRestart(%q) accepted", in)
		}
	}
}

func TestRestartPlanString(t *testing.T) {
	cases := []struct {
		plan RestartPlan
		want string
	}{
		{RestartPlan{Mode: RestartWarm, At: sim.Millisecond}, "warm@1.000ms"},
		{RestartPlan{Mode: RestartStale, At: sim.Millisecond,
			StaleAge: 100 * sim.Microsecond}, "stale@1.000ms(age=100.000us)"},
		{RestartPlan{Mode: RestartCold, At: 200 * sim.Microsecond,
			Downtime: 50 * sim.Microsecond, Every: 2 * sim.Millisecond,
			Hosts: []int{0, 3}}, "cold@200.000us(down=50.000us,every=2.000ms,hosts=0+3)"},
	}
	for _, tc := range cases {
		if got := tc.plan.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestRestartVariantsRegistry(t *testing.T) {
	want := []string{"cold", "corrupt", "stale", "warm"}
	if got := RestartVariants(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RestartVariants() = %v, want %v", got, want)
	}
	p, ok := LookupRestart("stale")
	if !ok || p.Mode != RestartStale || p.At != sim.Millisecond ||
		p.StaleAge != 100*sim.Microsecond {
		t.Fatalf("LookupRestart(stale) = %+v ok=%v", p, ok)
	}
	if _, ok := LookupRestart("hot"); ok {
		t.Fatal("LookupRestart accepted an unregistered variant")
	}
}

func TestAppliesTo(t *testing.T) {
	all := RestartPlan{}
	if !all.AppliesTo(0) || !all.AppliesTo(99) {
		t.Fatal("empty Hosts must match every index")
	}
	some := RestartPlan{Hosts: []int{1, 4}}
	if !some.AppliesTo(1) || !some.AppliesTo(4) || some.AppliesTo(0) || some.AppliesTo(2) {
		t.Fatal("Hosts filter mismatched")
	}
}

// TestScheduleWarm pins the event order and timing of one warm cycle:
// checkpoint and detach at At, restore-then-reattach after Downtime, with
// the checkpoint handed back intact.
func TestScheduleWarm(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTarget{s: s, snap: []byte("state"), flows: 1}
	RestartPlan{Mode: RestartWarm, At: sim.Millisecond,
		Downtime: 50 * sim.Microsecond}.Schedule(s, []RestartTarget{ft})
	s.RunFor(10 * sim.Millisecond)

	at := sim.Time(sim.Millisecond)
	up := at + sim.Time(50*sim.Microsecond)
	if !reflect.DeepEqual(ft.saves, []sim.Time{at}) {
		t.Fatalf("saves at %v, want [%v]", ft.saves, at)
	}
	if !reflect.DeepEqual(ft.detaches, []sim.Time{at}) {
		t.Fatalf("detaches at %v, want [%v]", ft.detaches, at)
	}
	if !reflect.DeepEqual(ft.restarts, []sim.Time{up}) ||
		!reflect.DeepEqual(ft.reattaches, []sim.Time{up}) {
		t.Fatalf("revival at restarts=%v reattaches=%v, want [%v]",
			ft.restarts, ft.reattaches, up)
	}
	if !bytes.Equal(ft.restored[0], []byte("state")) {
		t.Fatalf("warm restore got %q", ft.restored[0])
	}
}

// TestScheduleCold: no checkpoint is ever taken and the restore is nil.
func TestScheduleCold(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTarget{s: s, snap: []byte("state"), flows: 1}
	RestartPlan{Mode: RestartCold, At: sim.Millisecond}.Schedule(s, []RestartTarget{ft})
	s.RunFor(10 * sim.Millisecond)
	if len(ft.saves) != 0 {
		t.Fatalf("cold restart checkpointed %d times", len(ft.saves))
	}
	if len(ft.restored) != 1 || ft.restored[0] != nil {
		t.Fatalf("cold restore = %v, want [nil]", ft.restored)
	}
}

// TestScheduleStale: the checkpoint is taken StaleAge before the death, not
// at it.
func TestScheduleStale(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTarget{s: s, snap: []byte("old"), flows: 1}
	RestartPlan{Mode: RestartStale, At: sim.Millisecond,
		StaleAge: 300 * sim.Microsecond}.Schedule(s, []RestartTarget{ft})
	s.RunFor(10 * sim.Millisecond)
	pre := sim.Time(sim.Millisecond - 300*sim.Microsecond)
	if !reflect.DeepEqual(ft.saves, []sim.Time{pre}) {
		t.Fatalf("stale checkpoint at %v, want [%v]", ft.saves, pre)
	}
	if !bytes.Equal(ft.restored[0], []byte("old")) {
		t.Fatalf("stale restore got %q", ft.restored[0])
	}
}

// TestScheduleCorrupt: the restored buffer differs from the checkpoint by
// exactly the middle-byte flip.
func TestScheduleCorrupt(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTarget{s: s, snap: []byte("abcde"), flows: 1}
	RestartPlan{Mode: RestartCorrupt, At: sim.Millisecond}.Schedule(s, []RestartTarget{ft})
	s.RunFor(10 * sim.Millisecond)
	want := []byte("abcde")
	want[2] ^= 0xff
	if !bytes.Equal(ft.restored[0], want) {
		t.Fatalf("corrupt restore = %q, want %q", ft.restored[0], want)
	}
}

// TestScheduleRecurring: the plan re-arms every period while FlowCount > 0
// and goes quiet once the table drains.
func TestScheduleRecurring(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTarget{s: s, flows: 1}
	RestartPlan{Mode: RestartCold, At: sim.Millisecond,
		Every: sim.Millisecond}.Schedule(s, []RestartTarget{ft})
	// Drain the table between the 2nd revival (which arms the 3rd death at
	// 3ms) and the 3rd revival, so the 3rd revival declines to re-arm.
	s.Schedule(2500*sim.Microsecond, func() { ft.flows = 0 })
	s.RunFor(20 * sim.Millisecond)
	if len(ft.restarts) != 3 {
		t.Fatalf("recurring plan restarted %d times, want 3 (then drained)", len(ft.restarts))
	}
}

// TestScheduleMultipleTargets: one plan, several targets, same instant.
func TestScheduleMultipleTargets(t *testing.T) {
	s := sim.New(1)
	a := &fakeTarget{s: s, flows: 1}
	b := &fakeTarget{s: s, flows: 1}
	RestartPlan{Mode: RestartCold, At: sim.Millisecond}.Schedule(s,
		[]RestartTarget{a, b})
	s.RunFor(10 * sim.Millisecond)
	if len(a.restarts) != 1 || len(b.restarts) != 1 || a.restarts[0] != b.restarts[0] {
		t.Fatalf("targets restarted at %v / %v, want one simultaneous restart",
			a.restarts, b.restarts)
	}
}
