package faults

// vSwitch restart injection. The fault the link-level Profile cannot express
// is the vSwitch itself dying: in production the stateful middlebox is
// exactly the component that gets restarted (OVS upgrades, crashes, host
// agent redeploys), taking every per-flow enforcement state with it. A
// RestartPlan schedules that event on the sim clock, in three flavours of
// state recovery plus a corruption probe:
//
//	cold     the process loses everything; live flows are re-adopted
//	         mid-stream by the datapath and resynchronized conservatively.
//	warm     a checkpoint is taken at the instant of death and restored on
//	         the way up — the intended production path.
//	stale    the restored checkpoint is StaleAge old (checkpoints are
//	         periodic in practice, so the one on disk always lags the wire).
//	corrupt  the warm checkpoint is bit-flipped before restore; the decoder
//	         must fail open to a cold start (snapshot_corrupt_total).
//
// During the Downtime window between death and revival the datapath hooks
// are detached, so traffic crosses a hook-less host exactly like a dead OVS
// with fail-open flows — forwarded, unenforced, unobserved.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"acdc/internal/sim"
)

// RestartTarget is the surface the scheduler drives. *core.VSwitch
// implements it; the interface keeps this package below internal/core in
// the dependency graph (same reason optFACK is duplicated).
type RestartTarget interface {
	// SaveSnapshot checkpoints the flow table.
	SaveSnapshot() []byte
	// Detach removes the datapath hooks (the process is down).
	Detach()
	// Reattach reinstalls the datapath hooks (the process is back).
	Reattach()
	// Restart discards all flow state and, when snapshot is non-nil,
	// restores from it (corrupt snapshots fail open inside).
	Restart(snapshot []byte)
	// FlowCount reports the current flow-table size (used to let recurring
	// restarts go quiet on a drained fabric).
	FlowCount() int
}

// RestartMode selects how much state survives the restart.
type RestartMode uint8

const (
	// RestartCold restores nothing.
	RestartCold RestartMode = iota
	// RestartWarm restores a checkpoint taken at the instant of death.
	RestartWarm
	// RestartStale restores a checkpoint StaleAge older than the death.
	RestartStale
	// RestartCorrupt restores a bit-flipped warm checkpoint (must fail open).
	RestartCorrupt
)

// String names the mode.
func (m RestartMode) String() string {
	switch m {
	case RestartCold:
		return "cold"
	case RestartWarm:
		return "warm"
	case RestartStale:
		return "stale"
	case RestartCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("mode(%d)", m)
	}
}

// RestartPlan declares one scheduled vSwitch restart (optionally recurring).
type RestartPlan struct {
	Mode RestartMode
	// At is when (sim time) the vSwitch dies. Default 1ms.
	At sim.Duration
	// Downtime is how long the host runs hook-less before the vSwitch comes
	// back. Default 0 (instant revival, still an atomic state loss).
	Downtime sim.Duration
	// StaleAge is how far behind the wire the restored checkpoint is
	// (RestartStale only). Default 100µs.
	StaleAge sim.Duration
	// Every, when > 0, repeats the restart with this period for as long as
	// the target still tracks flows (a drained fabric stops restarting, so
	// run-to-completion simulations still terminate).
	Every sim.Duration
	// Hosts restricts the restart to these host indices; empty means every
	// host with an AC/DC module ("the whole fleet redeploys at once").
	Hosts []int
}

// restartVariants is the named-plan registry, mirroring the fault-profile
// registry: each name is a ready-to-run plan for the common cases.
var restartVariants = map[string]RestartPlan{
	"cold":    {Mode: RestartCold},
	"warm":    {Mode: RestartWarm},
	"stale":   {Mode: RestartStale},
	"corrupt": {Mode: RestartCorrupt},
}

// RestartVariants returns the registered variant names, sorted.
func RestartVariants() []string {
	out := make([]string, 0, len(restartVariants))
	for n := range restartVariants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LookupRestart returns the named variant with defaults applied.
func LookupRestart(name string) (RestartPlan, bool) {
	p, ok := restartVariants[name]
	if !ok {
		return RestartPlan{}, false
	}
	return p.withDefaults(), true
}

// withDefaults fills unset timing fields.
func (p RestartPlan) withDefaults() RestartPlan {
	if p.At == 0 {
		p.At = sim.Millisecond
	}
	if p.Mode == RestartStale && p.StaleAge == 0 {
		p.StaleAge = 100 * sim.Microsecond
	}
	return p
}

// AppliesTo reports whether host index i restarts under this plan.
func (p RestartPlan) AppliesTo(i int) bool {
	if len(p.Hosts) == 0 {
		return true
	}
	for _, h := range p.Hosts {
		if h == i {
			return true
		}
	}
	return false
}

// String renders the plan, e.g. "stale@1ms(age=100us)".
func (p RestartPlan) String() string {
	var terms []string
	if p.Mode == RestartStale {
		terms = append(terms, fmt.Sprintf("age=%v", p.StaleAge))
	}
	if p.Downtime > 0 {
		terms = append(terms, fmt.Sprintf("down=%v", p.Downtime))
	}
	if p.Every > 0 {
		terms = append(terms, fmt.Sprintf("every=%v", p.Every))
	}
	if len(p.Hosts) > 0 {
		hs := make([]string, len(p.Hosts))
		for i, h := range p.Hosts {
			hs[i] = strconv.Itoa(h)
		}
		terms = append(terms, "hosts="+strings.Join(hs, "+"))
	}
	s := fmt.Sprintf("%s@%v", p.Mode, p.At)
	if len(terms) > 0 {
		s += "(" + strings.Join(terms, ",") + ")"
	}
	return s
}

// ParseRestart resolves a -restart flag value: "mode[@time][,key=value…]"
// where mode is a registered variant (see RestartVariants) and keys are
// down=<dur>, age=<dur>, every=<dur>, host=<idx> (repeatable). Examples:
//
//	warm                  warm restart of every vSwitch at the default 1ms
//	cold@200us            cold restart at t=200µs
//	stale@1ms,age=500us   restore a checkpoint 500µs behind the wire
//	warm@1ms,host=0,host=3,down=50us
func ParseRestart(s string) (RestartPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return RestartPlan{}, fmt.Errorf("restart: empty spec")
	}
	head, rest, hasOpts := strings.Cut(s, ",")
	name, at, hasAt := strings.Cut(strings.TrimSpace(head), "@")
	p, ok := restartVariants[strings.TrimSpace(name)]
	if !ok {
		return RestartPlan{}, fmt.Errorf("restart: unknown variant %q (have %s)",
			name, strings.Join(RestartVariants(), ", "))
	}
	if hasAt {
		d, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil || d <= 0 {
			return RestartPlan{}, fmt.Errorf("restart: bad time %q", at)
		}
		p.At = sim.Duration(d.Nanoseconds())
	}
	ageSet := false
	if hasOpts {
		for _, term := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(term), "=")
			if !ok {
				return RestartPlan{}, fmt.Errorf("restart: bad term %q (want key=value)", term)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "down", "age", "every":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return RestartPlan{}, fmt.Errorf("restart: bad duration %s=%q", k, v)
				}
				switch k {
				case "down":
					p.Downtime = sim.Duration(d.Nanoseconds())
				case "age":
					p.StaleAge = sim.Duration(d.Nanoseconds())
					ageSet = true
				case "every":
					p.Every = sim.Duration(d.Nanoseconds())
				}
			case "host":
				h, err := strconv.Atoi(v)
				if err != nil || h < 0 {
					return RestartPlan{}, fmt.Errorf("restart: bad host index %q", v)
				}
				p.Hosts = append(p.Hosts, h)
			default:
				return RestartPlan{}, fmt.Errorf("restart: unknown key %q", k)
			}
		}
	}
	if p.Mode == RestartStale && ageSet && p.StaleAge == 0 {
		// An explicit age=0 would silently become the default; reject it.
		return RestartPlan{}, fmt.Errorf("restart: stale variant needs age > 0")
	}
	return p.withDefaults(), nil
}

// Schedule arms the plan on the sim clock for every target. Targets restart
// simultaneously (same event time), modelling a fleet-wide redeploy; use
// Hosts to restart a subset. The caller filters targets with AppliesTo.
func (p RestartPlan) Schedule(s *sim.Simulator, targets []RestartTarget) {
	p = p.withDefaults()
	for _, t := range targets {
		scheduleOne(s, p, t, p.At)
	}
}

// scheduleOne arms one restart cycle for one target at absolute-ish delay at
// (relative to now), and re-arms for recurring plans while the target still
// tracks flows.
func scheduleOne(s *sim.Simulator, p RestartPlan, t RestartTarget, at sim.Duration) {
	var snap []byte
	if p.Mode == RestartStale {
		pre := at - p.StaleAge
		if pre < 0 {
			pre = 0
		}
		s.Schedule(pre, func() { snap = t.SaveSnapshot() })
	}
	s.Schedule(at, func() {
		switch p.Mode {
		case RestartWarm:
			snap = t.SaveSnapshot()
		case RestartCorrupt:
			snap = t.SaveSnapshot()
			if len(snap) > 0 {
				snap[len(snap)/2] ^= 0xff
			}
		}
		t.Detach()
		s.Schedule(p.Downtime, func() {
			t.Restart(snap)
			t.Reattach()
			if p.Every > 0 && t.FlowCount() > 0 {
				// Re-arm only while the target still tracks flows, so a
				// drained run-to-completion simulation terminates.
				scheduleOne(s, p, t, p.Every)
			}
		})
	})
}
