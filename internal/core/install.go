package core

// Live per-flow policy installation — the vSwitch side of the daemon's
// policy control plane (cmd/acdcd streams FlowPolicy updates here).
//
// Overrides live in a copy-on-write map behind an atomic pointer: installs
// build a fresh map and CAS it in, so the datapath resolves policy at flow
// setup with one atomic load and is never blocked by — or racing — a push.
// Writers contend only with each other, and only on the CAS.
//
// Every accepted policy passes Validate (reject malformed input at the API
// boundary) and then the Sanitized choke point (belt and braces with the
// FlowPolicy and snapshot-restore paths), so a hostile update can never put
// β>1 — a window that GROWS on congestion — into the enforcement math.

// InstallPolicy validates p, records it as the live override for k, and
// applies it to the flow immediately if one is already tracked. It returns
// the policy as installed (post-sanitization). Safe to call from any
// goroutine while traffic flows.
func (v *VSwitch) InstallPolicy(k FlowKey, p Policy) (Policy, error) {
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	if !backendKnown(p.Backend) {
		// Unknown backend names are not an error on this surface (the
		// daemon's stream must keep making forward progress mid-flight);
		// Sanitized clamps to the default and the counter is the trace.
		v.Metrics.BackendUnknown.Inc()
	}
	p = p.Sanitized()
	for {
		old := v.overrides.Load()
		var next map[FlowKey]Policy
		if old == nil {
			next = make(map[FlowKey]Policy, 1)
		} else {
			next = make(map[FlowKey]Policy, len(*old)+1)
			for ok, op := range *old {
				next[ok] = op
			}
		}
		next[k] = p
		if v.overrides.CompareAndSwap(old, &next) {
			break
		}
	}
	v.applyToLive(k, p)
	v.Metrics.PolicyInstalls.Inc()
	return p, nil
}

// ClearPolicy removes the live override for k, reverting the flow to the
// configured FlowPolicy callback (or DefaultPolicy). It reports whether an
// override existed.
func (v *VSwitch) ClearPolicy(k FlowKey) bool {
	for {
		old := v.overrides.Load()
		if old == nil {
			return false
		}
		if _, ok := (*old)[k]; !ok {
			return false
		}
		next := make(map[FlowKey]Policy, len(*old)-1)
		for ok, op := range *old {
			if ok != k {
				next[ok] = op
			}
		}
		if v.overrides.CompareAndSwap(old, &next) {
			break
		}
	}
	// Re-resolve through the normal chain so a tracked flow reverts now
	// rather than on its next table miss.
	v.applyToLive(k, v.policy(k))
	return true
}

// PolicyOverride returns the live override for k, if any.
func (v *VSwitch) PolicyOverride(k FlowKey) (Policy, bool) {
	if m := v.overrides.Load(); m != nil {
		p, ok := (*m)[k]
		return p, ok
	}
	return Policy{}, false
}

// PolicyOverrides returns a copy of the live override table (admin listing).
func (v *VSwitch) PolicyOverrides() map[FlowKey]Policy {
	m := v.overrides.Load()
	if m == nil {
		return nil
	}
	out := make(map[FlowKey]Policy, len(*m))
	for k, p := range *m {
		out[k] = p
	}
	return out
}

// applyToLive pushes a resolved policy into an already-tracked flow under
// its mutex, swapping the virtual-CC law if the algorithm changed (the same
// mid-flight swap snapshot restore performs). Untracked keys are a no-op:
// the override map catches the flow at setup.
func (v *VSwitch) applyToLive(k FlowKey, p Policy) {
	f := v.Table.Get(k)
	if f == nil {
		return
	}
	f.mu.Lock()
	f.Policy = p
	if name := firstNonEmpty(p.VCC, v.Cfg.VCC); name != f.vcc.Name() {
		f.vcc = newVCCOrDefault(name)
		f.mCwnd, f.mAlpha = v.Metrics.flowHists(f.vcc.Name())
	}
	// Swap the enforcement backend the same way. No teardown is needed: a
	// pace flow's shaper keeps draining already-admitted segments on the
	// simulation goroutine (this path may run on a control-plane goroutine
	// and must not touch it), then idles for the GC.
	if be := newBackend(firstNonEmpty(p.Backend, v.Cfg.Backend)); be != f.be {
		f.be = be
	}
	f.mu.Unlock()
}
