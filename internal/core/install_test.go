package core

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"acdc/internal/packet"
)

func TestInstallPolicyRejectsMalformed(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	k := FlowKey{Src: host.Addr, Dst: packet.MakeAddr(10, 0, 0, 2), SPort: 1, DPort: 2}
	cases := []struct {
		name string
		p    Policy
	}{
		{"beta above one", Policy{Beta: 3}},
		{"beta negative", Policy{Beta: -0.5}},
		{"beta NaN", Policy{Beta: math.NaN()}},
		{"negative clamp", Policy{Beta: 1, RwndClampBytes: -1}},
		{"unknown vcc", Policy{Beta: 1, VCC: "bbr"}},
	}
	for _, tc := range cases {
		if _, err := v.InstallPolicy(k, tc.p); err == nil {
			t.Errorf("%s: InstallPolicy accepted %+v", tc.name, tc.p)
		}
	}
	if _, ok := v.PolicyOverride(k); ok {
		t.Fatal("a rejected policy left an override behind")
	}
	if got := v.Stats().PolicyInstalls; got != 0 {
		t.Fatalf("policy_installs_total = %d after only rejections", got)
	}
}

func TestInstallPolicyAppliesToNewAndLiveFlows(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	kNew := FlowKey{Src: host.Addr, Dst: peer, SPort: 10, DPort: 20}
	kLive := FlowKey{Src: host.Addr, Dst: peer, SPort: 11, DPort: 21}

	// A flow that exists before the install must pick up the policy in place.
	v.Egress(dataPkt(host.Addr, peer, kLive.SPort, kLive.DPort, 1, 100))
	if v.Table.Get(kLive) == nil {
		t.Fatal("live flow not tracked")
	}
	want := Policy{Beta: 0.25, RwndClampBytes: 4096}
	for _, k := range []FlowKey{kNew, kLive} {
		got, err := v.InstallPolicy(k, want)
		if err != nil {
			t.Fatalf("InstallPolicy(%v): %v", k, err)
		}
		if got != want {
			t.Fatalf("installed %+v, want %+v", got, want)
		}
	}
	if f := v.Table.Get(kLive); f.Policy != want {
		t.Fatalf("live flow policy = %+v, want %+v", f.Policy, want)
	}
	// A flow created after the install resolves the override at setup.
	v.Egress(dataPkt(host.Addr, peer, kNew.SPort, kNew.DPort, 1, 100))
	if f := v.Table.Get(kNew); f.Policy != want {
		t.Fatalf("new flow policy = %+v, want %+v", f.Policy, want)
	}
	if got := v.Stats().PolicyInstalls; got != 2 {
		t.Fatalf("policy_installs_total = %d, want 2", got)
	}
}

func TestInstallPolicySwapsVirtualCC(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig()) // default vcc: dctcp
	peer := packet.MakeAddr(10, 0, 0, 2)
	k := FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 2}
	v.Egress(dataPkt(host.Addr, peer, k.SPort, k.DPort, 1, 100))
	f := v.Table.Get(k)
	if f.vcc.Name() != "dctcp" {
		t.Fatalf("default vcc = %q", f.vcc.Name())
	}
	if _, err := v.InstallPolicy(k, Policy{Beta: 1, VCC: "reno"}); err != nil {
		t.Fatal(err)
	}
	if f.vcc.Name() != "reno" {
		t.Fatalf("vcc after install = %q, want reno", f.vcc.Name())
	}
}

func TestClearPolicyRevertsToConfiguredChain(t *testing.T) {
	cfg := DefaultConfig()
	base := Policy{Beta: 0.75}
	cfg.FlowPolicy = func(FlowKey) Policy { return base }
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	k := FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 2}
	v.Egress(dataPkt(host.Addr, peer, k.SPort, k.DPort, 1, 100))

	if _, err := v.InstallPolicy(k, Policy{Beta: 0.1}); err != nil {
		t.Fatal(err)
	}
	if f := v.Table.Get(k); f.Policy.Beta != 0.1 {
		t.Fatalf("override not applied: β=%v", f.Policy.Beta)
	}
	if !v.ClearPolicy(k) {
		t.Fatal("ClearPolicy found no override")
	}
	if v.ClearPolicy(k) {
		t.Fatal("second ClearPolicy reported an override")
	}
	if f := v.Table.Get(k); f.Policy != base {
		t.Fatalf("flow policy after clear = %+v, want FlowPolicy's %+v", f.Policy, base)
	}
	if _, ok := v.PolicyOverride(k); ok {
		t.Fatal("override survived ClearPolicy")
	}
}

// TestInstallPolicyConcurrentWithDatapath is the update-race regression: a
// controller goroutine streams installs while the simulation goroutine pushes
// packets through the flow. Run with -race.
func TestInstallPolicyConcurrentWithDatapath(t *testing.T) {
	v, host, s := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	k := FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 2}

	const minPackets = 2000
	const installs = 500
	var ctrlDone atomic.Bool
	seq := uint32(1)
	var tick func()
	n := 0
	tick = func() {
		v.Egress(dataPkt(host.Addr, peer, k.SPort, k.DPort, seq, 100))
		seq += 100
		v.Ingress(ackPkt(peer, host.Addr, k.DPort, k.SPort, seq, 65535))
		if n++; n < minPackets || !ctrlDone.Load() {
			s.ScheduleFunc(100, tick)
		}
	}
	s.ScheduleFunc(0, tick)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ctrlDone.Store(true)
		betas := []float64{0, 0.25, 0.5, 0.75, 1}
		for i := 0; i < installs; i++ {
			if _, err := v.InstallPolicy(k, Policy{Beta: betas[i%len(betas)]}); err != nil {
				t.Errorf("InstallPolicy: %v", err)
				return
			}
			if i%3 == 0 {
				v.ClearPolicy(k)
			}
		}
	}()
	s.RunAll()
	wg.Wait()

	if got := v.Table.Get(k); got == nil {
		t.Fatal("flow lost during concurrent installs")
	}
	if v.Stats().PolicyInstalls != installs {
		t.Fatalf("policy_installs_total = %d, want %d", v.Stats().PolicyInstalls, installs)
	}
}

// TestPolicyOverridesSnapshotIsCopy pins that the admin listing cannot be
// used to mutate the live override table.
func TestPolicyOverridesSnapshotIsCopy(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	k := FlowKey{Src: host.Addr, Dst: packet.MakeAddr(10, 0, 0, 2), SPort: 1, DPort: 2}
	if _, err := v.InstallPolicy(k, Policy{Beta: 0.5}); err != nil {
		t.Fatal(err)
	}
	m := v.PolicyOverrides()
	m[k] = Policy{Beta: 0} // mutate the copy
	if p, _ := v.PolicyOverride(k); p.Beta != 0.5 {
		t.Fatalf("live override changed through the listing copy: β=%v", p.Beta)
	}
}
