package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"acdc/internal/packet"
)

// TestSnapshotConcurrentWithDatapath is the warm-restart race regression: a
// control-plane goroutine loops SaveSnapshot / RestoreSnapshot — including
// corrupt restores, which reset the table in place — and flips Detach /
// Reattach, while the simulation goroutine pushes packets through several
// flows. Run with -race; the assertions pin that the accounting survives the
// interleaving (gauge == table size) with no torn flow state.
func TestSnapshotConcurrentWithDatapath(t *testing.T) {
	v, host, s := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)

	const flows = 8
	const minRounds = 1500
	const ctrlCycles = 200
	seqs := [flows]uint32{}
	for i := range seqs {
		seqs[i] = 1
	}
	// Traffic keeps flowing until the controller has finished its cycles, so
	// the two sides genuinely overlap no matter how the scheduler interleaves
	// the goroutines.
	var ctrlDone atomic.Bool
	n := 0
	var tick func()
	tick = func() {
		i := n % flows
		sp, dp := uint16(100+i), uint16(200+i)
		v.Egress(dataPkt(host.Addr, peer, sp, dp, seqs[i], 100))
		seqs[i] += 100
		v.Ingress(ackPkt(peer, host.Addr, dp, sp, seqs[i], 65535))
		if n++; n < minRounds || !ctrlDone.Load() {
			s.ScheduleFunc(100, tick)
		}
	}
	s.ScheduleFunc(0, tick)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ctrlDone.Store(true)
		var snap []byte
		for i := 0; i < ctrlCycles; i++ {
			switch i % 5 {
			case 0:
				snap = v.SaveSnapshot()
			case 1, 2:
				if snap != nil {
					if err := v.RestoreSnapshot(snap); err != nil {
						t.Errorf("restore of a saved snapshot failed: %v", err)
						return
					}
				}
			case 3:
				// Corrupt restore: must fail open (in-place table reset)
				// without disturbing concurrent traffic.
				if err := v.RestoreSnapshot([]byte("garbage")); err == nil {
					t.Error("corrupt restore did not error")
					return
				}
			case 4:
				v.Detach()
				v.Reattach()
			}
		}
	}()
	s.RunAll()
	wg.Wait()

	if !v.Attached() {
		// The flipper may have left the switch detached mid-cycle only if
		// stopped between the calls; Reattach is unconditional, so re-enable
		// for the consistency check.
		v.Reattach()
	}
	if gauge, tbl := v.Metrics.FlowTableSize.Value(), int64(v.Table.Len()); gauge != tbl {
		t.Fatalf("flow_table_size gauge %d != table len %d after concurrent restarts", gauge, tbl)
	}
	st := v.Stats()
	if st.SnapshotSaves == 0 || st.SnapshotRestores == 0 || st.SnapshotCorrupt == 0 {
		t.Fatalf("controller did not exercise all paths: %+v", st)
	}
}
