// Package core implements AC/DC TCP, the paper's contribution: per-flow
// congestion control enforced in the vSwitch. The sender module shadows each
// flow's TCP state, runs an administrator-chosen virtual congestion-control
// algorithm (DCTCP by default), and enforces the resulting window by
// overwriting the receive-window field of ACKs headed to the guest. The
// receiver module counts CE-marked bytes and feeds them back in a PACK
// option piggybacked on ACKs (or a dedicated FACK packet), stripping all ECN
// signals before they reach the guest.
package core

import (
	"fmt"
	"math"
	"sync"

	"acdc/internal/metrics"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// FlowKey identifies a flow by the 5-tuple of its *data* direction (the
// paper hashes on IPs, ports and VLAN; we have no VLANs).
type FlowKey struct {
	Src, Dst     packet.Addr
	SPort, DPort uint16
}

// Reverse returns the key of the opposite data direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SPort: k.DPort, DPort: k.SPort}
}

// Policy is the per-flow differentiation knob set (§3.4).
type Policy struct {
	// Beta is the priority in Equation 1, rwnd ← rwnd·(1 − (α − α·β/2)).
	// 1 = plain DCTCP; 0 = maximum back-off (bounded below by one MSS).
	Beta float64
	// RwndClampBytes caps the enforced window (bandwidth allocation, Fig 6);
	// 0 = no cap.
	RwndClampBytes int64
	// VCC overrides the virtual congestion-control algorithm for this flow
	// ("" = the vSwitch default).
	VCC string
	// Backend overrides the enforcement backend for this flow ("dctcp-cut",
	// "pace", "adaptive-k"; "" = the vSwitch default). Unknown names are
	// clamped to "" by sanitize — a backend name, unlike β, can never make
	// enforcement unsafe, so no install path treats it as an error.
	Backend string
	// Disable exempts the flow from enforcement entirely.
	Disable bool
}

// DefaultPolicy is plain DCTCP enforcement.
func DefaultPolicy() Policy { return Policy{Beta: 1} }

// Sanitized is the policy choke point: every path that installs a policy
// into a flow — the live FlowPolicy callback (VSwitch.policy), runtime
// installs (VSwitch.InstallPolicy), snapshot restore (flowRecord.sanitize),
// and scenario-spec policies (internal/scenario) — routes through it, so a
// hostile or malformed policy can never reach the enforcement math from any
// direction. See sanitize for the exact clamps.
func (p Policy) Sanitized() Policy { return p.sanitize() }

// Validate reports why a policy would be rejected at an API boundary (the
// daemon's policy stream, a config file). Sanitized silently clamps the same
// conditions for paths that must make forward progress (a restored snapshot,
// a callback's return value); Validate is for surfaces that can say no.
func (p Policy) Validate() error {
	if math.IsNaN(p.Beta) || p.Beta < 0 || p.Beta > 1 {
		return fmt.Errorf("policy: beta %v outside [0,1]", p.Beta)
	}
	if p.RwndClampBytes < 0 {
		return fmt.Errorf("policy: negative rwnd clamp %d", p.RwndClampBytes)
	}
	if !vccKnown(p.VCC) {
		return fmt.Errorf("policy: unknown vcc %q (want dctcp, reno, or empty)", p.VCC)
	}
	// Backend is deliberately NOT validated here: an unknown backend name
	// must fail open to the default mechanism mid-stream (sanitize clamps
	// it; backend_unknown_total counts it), never bounce a policy install.
	// Parse surfaces that can say no early use ParseBackend instead.
	return nil
}

// sanitize clamps a policy to the ranges the enforcement math tolerates:
// β ∈ [0,1] (Equation 1 is only a *decrease* there; β>1 would grow the
// window on congestion and NaN would poison every cut), a non-negative
// RwndClampBytes (negative would silently disable the cap), and a known
// virtual-CC name (an unknown one would panic flow setup; it degrades to
// the vSwitch default instead, exactly like snapshot restore). Shared by
// the live FlowPolicy path (VSwitch.policy) and snapshot restore
// (flowRecord.sanitize), so both installation paths enforce one contract.
func (p Policy) sanitize() Policy {
	if !(p.Beta >= 0) { // NaN fails this comparison too
		p.Beta = 1
	}
	if p.Beta > 1 {
		p.Beta = 1
	}
	if p.RwndClampBytes < 0 {
		p.RwndClampBytes = 0
	}
	if !vccKnown(p.VCC) {
		p.VCC = ""
	}
	if !backendKnown(p.Backend) {
		p.Backend = ""
	}
	return p
}

// Flow is one direction's connection-tracking entry (~the paper's 320-byte
// flow state). The same struct serves as sender-module state on the host
// that sources the data and receiver-module state on the host that sinks it.
type Flow struct {
	mu  sync.Mutex
	Key FlowKey

	Policy Policy
	vcc    VirtualCC
	// be is the enforcement backend (backend.go), resolved at flow setup
	// from Policy.Backend/Cfg.Backend and swapped in place by live policy
	// installs and snapshot restore; bes is its lazily-allocated per-flow
	// state (nil for the default dctcp-cut backend, which carries none).
	be  Backend
	bes *backendState
	// Per-algorithm CWND/α distribution handles, resolved at flow setup
	// and sampled once per RTT at each α update (nil when metrics are off).
	mCwnd, mAlpha *metrics.Histogram

	// --- handshake-learned ---
	// PeerWScale is the window scale applied to the RWND field of ACKs
	// flowing back to the data sender (announced by the data receiver).
	PeerWScale  uint8
	WScaleKnown bool
	// GuestECN records whether the guests negotiated ECN end to end; the
	// receiver module uses it to restore the original ECN semantics.
	GuestECN            bool
	synSeen, synAckSeen bool
	MSS                 int

	// --- sender module: connection tracking (§3.1) ---
	iss           uint32
	issValid      bool
	SndUna        int64 // absolute offsets, SYN at 0
	SndNxt        int64
	DupAcks       int
	CwndBytes     float64
	SsthreshBytes float64
	Alpha         float64
	// feedback accounting between α updates
	lastTotal, lastMarked     uint32
	windowTotal, windowMarked uint32
	alphaSeq                  int64   // next α-update boundary (abs)
	cutSeq                    int64   // window-cut guard (abs)
	prevCwndBytes             float64 // cwnd before last cut (policing slack)
	maxInflight               int64   // peak SndNxt−SndUna since the last ACK
	inactivity                *sim.Timer
	lastAckWire               uint32 // last ACK's seq field (dupack synthesis)
	// Last ACK's raw (pre-rewrite) window field: a duplicate ACK requires an
	// unchanged window, so pure window updates never count toward the
	// triple-dupack loss inference.
	lastWndRaw  uint16
	lastWndSeen bool
	VTimeouts   int64
	LossEvents  int64
	// Feedback-staleness tracking: when PACK/FACK feedback had been flowing
	// but stops (stripped by a middlebox, lost in the fabric), the sender
	// module freezes virtual-window growth rather than growing blind.
	lastFeedbackAt sim.Time // 0 until the first PACK/FACK arrives
	fbStaleMark    sim.Time // last time the stale condition was counted

	// --- receiver module (§3.2) ---
	TotalBytes  uint32 // cumulative payload bytes received
	MarkedBytes uint32 // cumulative CE-marked payload bytes

	// --- UDP tunnel (future-work extension; see tunnel.go) ---
	isUDP       bool
	tq          []*packet.Packet // sender-side tunnel queue
	tqBytes     int
	fbLastTotal uint32 // receiver side: TotalBytes at last feedback
	fbLastCE    bool

	// --- mid-flow resynchronization (resync.go) ---
	// resync is the conservative-mode state machine for flows adopted
	// without a handshake (mid-stream pickup, snapshot restore); while it
	// is not resyncNone, RWND enforcement and policing are suspended.
	resync resyncState
	// resyncSeq is the absolute sequence one clean feedback round must
	// cover before enforcement resumes.
	resyncSeq int64

	// --- lifecycle ---
	lastActive sim.Time
	finFwd     bool // FIN seen in the data direction
	finRev     bool // FIN seen in the reverse direction
}

// Snapshot is a consistent copy of the enforcement-relevant state, used by
// instrumentation (Figures 9 and 10).
type Snapshot struct {
	CwndBytes   float64
	Alpha       float64
	SndUna      int64
	SndNxt      int64
	TotalBytes  uint32
	MarkedBytes uint32
	// Resyncing reports conservative mode: the flow was adopted without a
	// handshake and enforcement is suspended until one clean feedback round
	// completes (resync.go).
	Resyncing bool
}

// Snapshot returns a locked copy of the flow's key state.
func (f *Flow) Snapshot() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Snapshot{
		CwndBytes: f.CwndBytes, Alpha: f.Alpha,
		SndUna: f.SndUna, SndNxt: f.SndNxt,
		TotalBytes: f.TotalBytes, MarkedBytes: f.MarkedBytes,
		Resyncing: f.resync != resyncNone,
	}
}

// absSeq maps a wire sequence number near ref into absolute offset space.
func (f *Flow) absSeq(wire uint32, ref int64) int64 {
	delta := int64(int32(wire - (f.iss + uint32(ref))))
	return ref + delta
}

// enforcedWindow applies the floor and per-flow clamp to the virtual cwnd
// and returns the window to advertise, in bytes.
func (f *Flow) enforcedWindow(minRwnd int64) int64 {
	w := int64(f.CwndBytes)
	if f.Policy.RwndClampBytes > 0 && w > f.Policy.RwndClampBytes {
		w = f.Policy.RwndClampBytes
	}
	if w < minRwnd {
		w = minRwnd
	}
	return w
}
