package core

import "acdc/internal/packet"

// Batch datapath: the OVS datapath the paper modifies processes packets in
// bursts so per-packet overheads (flow lookup, locking, stat updates)
// amortize; EgressBatch/IngressBatch are our equivalent. A batch call is
// semantically a loop of the per-packet path — same rewrites, same final
// metric values, same per-packet audit events — but it:
//
//   - classifies every packet up front (one header parse each),
//   - prefetches both flow directions for the whole burst through
//     Table.GetBatch, taking each touched shard's read lock once per burst
//     instead of twice per packet,
//   - folds the per-packet EgressSegs/IngressSegs increments into one Add,
//     and hoists the (asynchronous) sweep-arm consumption out of the loop.
//
// Prefetched flow pointers are hints, not truth: a hint is used only while
// the table's deletion generation is unchanged since the prefetch (eviction
// or GC mid-burst invalidates every outstanding hint), and a nil hint always
// falls back to the live lookup the sequential path would do — which covers
// flows created by an earlier packet of the same burst.
//
// Ownership follows netsim.PathHook exactly, per input packet: each input
// yields an (out, extra) pair appended to pairs.

// batchScratch is the VSwitch's reusable batch working set. It lives on the
// VSwitch (single datapath goroutine) so steady-state batches allocate
// nothing; re-entrant batch calls are routed to the per-packet path by the
// inBatch guard instead of corrupting it.
type batchScratch struct {
	meta  []pktMeta
	keys  []FlowKey // 2 slots per packet: forward key, reverse key
	flows []*Flow   // parallel to keys
	lk    lookupScratch
	// bytes is the burst's byte count (every class but bad-IP), summed during
	// classification so Egress/IngressBytes is one Add per burst.
	bytes  int64
	deltas batchDeltas
	// sink absorbs the lookahead touch loads so the compiler cannot
	// dead-code-eliminate them; the value itself is meaningless.
	sink uint64
}

// batchDeltas accumulates every-packet counter increments across a burst so
// the batch loop pays one striped-atomic Add per counter per burst instead
// of one per packet. Only hot-path counters fold here; cold ones (fail-open,
// malformed options, untracked segments) increment live in the run
// functions. The fold is invisible at batch boundaries — final counter
// values match a per-packet replay exactly — but an auditor reading Stats()
// from inside a PacketEvent callback sees the burst's deltas applied at the
// end of the batch rather than per packet.
type batchDeltas struct {
	ectMarks int64 // ECTMarks
	packs    int64 // PacksConsumed
}

// batchLookahead is how many packets ahead of the loop cursor the batch loop
// touches its prefetched flows. With 10k+ flows the burst's Flow structs are
// scattered cold cache lines; reading one word of each flow a few iterations
// early overlaps those misses with the current packet's processing — a
// software prefetch the sequential path (which learns the flow pointer only
// at the moment it needs it) cannot express.
const batchLookahead = 4

// touchFlows warms the flow pair for packet j (one word from each direction's
// Flow — the line holding the mutex and key words the datapath locks first).
func (b *batchScratch) touchFlows(j int) {
	if k := 2 * j; k < len(b.flows) {
		if f := b.flows[k]; f != nil {
			b.sink += uint64(f.Key.SPort)
		}
		if f := b.flows[k+1]; f != nil {
			b.sink += uint64(f.Key.SPort)
		}
	}
}

func (b *batchScratch) grow(n int) {
	if cap(b.meta) < n {
		b.meta = make([]pktMeta, n)
		b.keys = make([]FlowKey, 2*n)
		b.flows = make([]*Flow, 2*n)
	}
	b.meta = b.meta[:n]
	b.keys = b.keys[:2*n]
	b.flows = b.flows[:2*n]
}

// classifyBatch parses every packet and lays out the forward/reverse lookup
// keys. Non-TCP slots keep the zero key: the wasted map probe is cheaper
// than compacting, and the zero key can only collide with a flow whose
// packets are themselves classTCP, where the hint is simply unused.
func (v *VSwitch) classifyBatch(ps []*packet.Packet) {
	sc := &v.batch
	sc.grow(len(ps))
	sc.bytes = 0
	for i, p := range ps {
		m := &sc.meta[i]
		*m = pktMeta{}
		classify(p, v.Cfg.UDPTunnel, m)
		if m.class != classBadIP {
			sc.bytes += m.iplen
		}
		k := 2 * i
		if m.class == classTCP {
			sc.keys[k] = m.key
			sc.keys[k+1] = m.key.Reverse()
		} else {
			sc.keys[k] = FlowKey{}
			sc.keys[k+1] = FlowKey{}
		}
	}
}

// EgressBatch runs the egress datapath over a burst, appending one
// (out, extra) pair per input packet to pairs and returning it. Equivalent
// to calling EgressPath on each packet in order.
func (v *VSwitch) EgressBatch(ps []*packet.Packet, pairs []*packet.Packet) []*packet.Packet {
	if len(ps) <= 1 || v.inBatch {
		for _, p := range ps {
			out, extra := v.EgressPath(p)
			pairs = append(pairs, out, extra)
		}
		return pairs
	}
	v.inBatch = true
	defer func() { v.inBatch = false }()

	n := len(ps)
	v.Metrics.EgressSegs.Add(int64(n))
	v.consumeSweepArm()
	v.classifyBatch(ps)
	sc := &v.batch
	v.Metrics.EgressBytes.Add(sc.bytes)
	bd := &sc.deltas
	*bd = batchDeltas{}
	gen := v.Table.genNow()
	v.Table.GetBatch(sc.keys, sc.flows, &sc.lk)
	audit := v.Audit != nil
	for i, p := range ps {
		var pre PacketPre
		if audit {
			pre = v.CapturePre(p)
		}
		sc.touchFlows(i + batchLookahead)
		v.tickSweep()
		out, extra := v.egressRun(p, &sc.meta[i], sc.flows[2*i], sc.flows[2*i+1], gen, bd)
		if audit {
			v.Audit.PacketEvent(v, AuditEgress, pre, out, extra, out == p)
		}
		pairs = append(pairs, out, extra)
	}
	if bd.ectMarks != 0 {
		v.Metrics.ECTMarks.Add(bd.ectMarks)
	}
	if bd.packs != 0 {
		v.Metrics.PacksConsumed.Add(bd.packs)
	}
	return pairs
}

// IngressBatch is the ingress counterpart of EgressBatch.
func (v *VSwitch) IngressBatch(ps []*packet.Packet, pairs []*packet.Packet) []*packet.Packet {
	if len(ps) <= 1 || v.inBatch {
		for _, p := range ps {
			out, extra := v.IngressPath(p)
			pairs = append(pairs, out, extra)
		}
		return pairs
	}
	v.inBatch = true
	defer func() { v.inBatch = false }()

	n := len(ps)
	v.Metrics.IngressSegs.Add(int64(n))
	v.consumeSweepArm()
	v.classifyBatch(ps)
	sc := &v.batch
	v.Metrics.IngressBytes.Add(sc.bytes)
	bd := &sc.deltas
	*bd = batchDeltas{}
	gen := v.Table.genNow()
	v.Table.GetBatch(sc.keys, sc.flows, &sc.lk)
	audit := v.Audit != nil
	for i, p := range ps {
		var pre PacketPre
		if audit {
			pre = v.CapturePre(p)
		}
		sc.touchFlows(i + batchLookahead)
		v.tickSweep()
		out, extra := v.ingressRun(p, &sc.meta[i], sc.flows[2*i], sc.flows[2*i+1], gen, bd)
		if audit {
			v.Audit.PacketEvent(v, AuditIngress, pre, out, extra, out == p)
		}
		pairs = append(pairs, out, extra)
	}
	if bd.ectMarks != 0 {
		v.Metrics.ECTMarks.Add(bd.ectMarks)
	}
	if bd.packs != 0 {
		v.Metrics.PacksConsumed.Add(bd.packs)
	}
	return pairs
}

// egressBatchHook and ingressBatchHook are the stable batch hooks Attach
// installs on the host, gated on the same attached flag as the per-packet
// hooks. Detached, they pass every packet through untouched.
func (v *VSwitch) egressBatchHook(ps, pairs []*packet.Packet) []*packet.Packet {
	if !v.attached.Load() {
		for _, p := range ps {
			pairs = append(pairs, p, nil)
		}
		return pairs
	}
	return v.EgressBatch(ps, pairs)
}

func (v *VSwitch) ingressBatchHook(ps, pairs []*packet.Packet) []*packet.Packet {
	if !v.attached.Load() {
		for _, p := range ps {
			pairs = append(pairs, p, nil)
		}
		return pairs
	}
	return v.IngressBatch(ps, pairs)
}
