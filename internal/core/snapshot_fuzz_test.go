package core

import (
	"bytes"
	"math"
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// fuzzVSwitch is the restore victim: metrics on, default config. Rebuilt per
// iteration so fuzz inputs can't interfere through shared table state.
func fuzzVSwitch() *VSwitch {
	s := sim.New(1)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	return Attach(s, host, DefaultConfig())
}

// FuzzSnapshotRoundTrip encodes an arbitrary single-flow record and checks
// encode→decode is lossless and restore never panics — whatever the field
// values, including NaN floats smuggled in via bit patterns.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint32(0x0a000001), uint32(0x0a000002), uint16(100), uint16(200),
		uint8(7), byte(0x1f), int64(1000), int64(2000),
		uint64(0x40c5190000000000), // 10800.0
		uint64(0x3fe0000000000000), // 0.5
		uint32(9000), uint32(4500), "dctcp")
	f.Add(uint32(1), uint32(2), uint16(3), uint16(4),
		uint8(14), byte(0xff), int64(-5), int64(-10),
		uint64(0x7ff8000000000001), // NaN
		uint64(0xfff0000000000000), // -Inf
		uint32(0xffffffff), uint32(0), "reno")
	f.Add(uint32(0), uint32(0), uint16(0), uint16(0),
		uint8(0), byte(0), int64(0), int64(0),
		uint64(0), uint64(0), uint32(0), uint32(0), "")
	f.Fuzz(func(t *testing.T, src, dst uint32, sp, dp uint16,
		wscale uint8, flags byte, sndUna, sndNxt int64,
		cwndBits, alphaBits uint64, total, marked uint32, vcc string) {
		r := flowRecord{
			Key:           FlowKey{Src: packet.Addr(src), Dst: packet.Addr(dst), SPort: sp, DPort: dp},
			PeerWScale:    wscale,
			WScaleKnown:   flags&1 != 0,
			GuestECN:      flags&2 != 0,
			synSeen:       flags&4 != 0,
			synAckSeen:    flags&8 != 0,
			issValid:      flags&16 != 0,
			finFwd:        flags&32 != 0,
			finRev:        flags&64 != 0,
			MSS:           int(int32(total % 100_000)),
			iss:           marked,
			SndUna:        sndUna,
			SndNxt:        sndNxt,
			CwndBytes:     math.Float64frombits(cwndBits),
			SsthreshBytes: math.Float64frombits(alphaBits),
			Alpha:         math.Float64frombits(alphaBits),
			lastTotal:     total,
			lastMarked:    marked,
			TotalBytes:    total,
			MarkedBytes:   marked,
			VTimeouts:     sndUna,
			LossEvents:    sndNxt,
			Beta:          math.Float64frombits(cwndBits),
			RwndClamp:     sndNxt,
			PolVCC:        vcc,
			VCCName:       vcc,
		}
		enc := encodeSnapshot(7, []flowRecord{r})
		capturedAt, recs, err := decodeSnapshot(enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if capturedAt != 7 || len(recs) != 1 {
			t.Fatalf("capturedAt=%d records=%d", capturedAt, len(recs))
		}
		// Bit-exact round trip: re-encoding the decoded record must reproduce
		// the original bytes. (Struct equality would lie here — NaN != NaN —
		// and byte equality also covers the >255-byte string truncation.)
		if !bytes.Equal(encodeSnapshot(capturedAt, recs), enc) {
			t.Fatalf("re-encode of decoded record differs from original:\n%+v", recs[0])
		}
		// Restoring arbitrary (but well-framed) state must never panic; the
		// sanitize layer owns making it safe.
		v := fuzzVSwitch()
		if err := v.RestoreSnapshot(enc); err != nil {
			t.Fatalf("well-formed snapshot rejected: %v", err)
		}
	})
}

// FuzzSnapshotDecode feeds raw bytes to the decoder and the restore path.
// The invariants: never panic, never accept a CRC-invalid buffer, and fail
// open (empty table + counter) on every rejected input.
func FuzzSnapshotDecode(f *testing.F) {
	// Valid snapshots (empty and 1-flow) as seeds so the fuzzer starts near
	// the accepting region; mutations of these exercise every reject branch.
	f.Add(encodeSnapshot(0, nil))
	f.Add(encodeSnapshot(42, []flowRecord{{
		Key: FlowKey{Src: 0x0a000001, Dst: 0x0a000002, SPort: 1, DPort: 2},
		MSS: 1400, issValid: true, SndUna: 10, SndNxt: 20,
		CwndBytes: 14000, SsthreshBytes: 1 << 30, Alpha: 0.5, Beta: 1,
		PolVCC: "dctcp", VCCName: "dctcp",
	}}))
	f.Add([]byte{})
	f.Add([]byte("ACDCSNAP"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, recs, err := decodeSnapshot(data)
		if err == nil {
			// Accepted: framing must have been internally consistent.
			for _, r := range recs {
				_ = r
			}
		}
		v := fuzzVSwitch()
		rerr := v.RestoreSnapshot(data)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("decode err=%v but restore err=%v", err, rerr)
		}
		if rerr != nil {
			if n := v.Table.Len(); n != 0 {
				t.Fatalf("rejected snapshot left %d flows (must fail open)", n)
			}
			if v.Stats().SnapshotCorrupt != 1 {
				t.Fatalf("SnapshotCorrupt = %d after rejection", v.Stats().SnapshotCorrupt)
			}
		} else if v.Stats().SnapshotRestores != 1 {
			t.Fatalf("SnapshotRestores = %d after accept", v.Stats().SnapshotRestores)
		}
	})
}
