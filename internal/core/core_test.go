package core

import (
	"sync"
	"testing"
	"testing/quick"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
)

// bench: star topology with AC/DC attached to every host.
type bench struct {
	s      *sim.Simulator
	sw     *netsim.Switch
	hosts  []*netsim.Host
	stacks []*tcpstack.Stack
	acdc   []*VSwitch
}

func newBench(t *testing.T, n int, guest tcpstack.Config, acdcCfg *Config, red netsim.REDConfig, rate int64) *bench {
	t.Helper()
	s := sim.New(11)
	b := &bench{s: s, sw: netsim.NewSwitch(s, "tor", netsim.NewSharedBuffer(9<<20, 1.0))}
	for i := 0; i < n; i++ {
		addr := packet.MakeAddr(10, 0, 0, byte(i+1))
		h := netsim.NewHost(s, "h", addr)
		h.NIC = netsim.NewLink(s, "up", rate, 5*sim.Microsecond, b.sw)
		down := netsim.NewLink(s, "down", rate, 5*sim.Microsecond, h)
		b.sw.AddRoute(addr, b.sw.AddPort(down, red))
		b.hosts = append(b.hosts, h)
		b.stacks = append(b.stacks, tcpstack.NewStack(s, h, guest))
		if acdcCfg != nil {
			cfg := *acdcCfg
			b.acdc = append(b.acdc, Attach(s, h, cfg))
		}
	}
	return b
}

func cubicGuest() tcpstack.Config {
	cfg := tcpstack.DefaultConfig() // cubic, ECN off, 9K MTU
	return cfg
}

const testK = 90_000

func redK() netsim.REDConfig { return netsim.REDConfig{MarkThresholdBytes: testK} }

// longFlow starts a bulk flow and returns the client conn plus a holder for
// the server conn, which is populated once the simulator runs the handshake.
func (b *bench) longFlow(t *testing.T, from, to int) (*tcpstack.Conn, **tcpstack.Conn) {
	t.Helper()
	srv := new(*tcpstack.Conn)
	b.stacks[to].Listen(5001, func(c *tcpstack.Conn) { *srv = c })
	cli := b.stacks[from].Dial(b.hosts[to].Addr, 5001)
	cli.Send(1 << 40)
	return cli, srv
}

// --- the headline behaviour ---

func TestACDCEnforcesDCTCPOnCubicGuests(t *testing.T) {
	acdcCfg := DefaultConfig()
	b := newBench(t, 3, cubicGuest(), &acdcCfg, redK(), 10e9)
	b.longFlow(t, 0, 2)
	var srv2 *tcpstack.Conn
	b.stacks[2].Listen(5002, func(c *tcpstack.Conn) { srv2 = c })
	cli2 := b.stacks[1].Dial(b.hosts[2].Addr, 5002)
	cli2.Send(1 << 40)
	b.s.RunFor(100 * sim.Millisecond)
	_ = srv2

	bottleneck := b.sw.Port(2)
	if b.sw.TotalDrops() != 0 {
		t.Fatalf("AC/DC should avoid drops, got %d", b.sw.TotalDrops())
	}
	if bottleneck.Stats.Marks == 0 {
		t.Fatal("no CE marks: the ECN loop never engaged")
	}
	// CUBIC alone would drive this queue to megabytes; under AC/DC it must
	// stay bounded near K like native DCTCP.
	if q := bottleneck.Stats.MaxQueueBytes; q > 12*testK {
		t.Fatalf("max queue %dB under AC/DC, want ≈K=%d", q, testK)
	}
	if u := bottleneck.Utilization(); u < 0.85 {
		t.Fatalf("utilization %.2f, want high", u)
	}
	sv := b.acdc[0]
	if sv.Stats().RwndRewrites == 0 {
		t.Fatal("sender-side AC/DC never rewrote RWND")
	}
	if sv.Stats().PacksConsumed == 0 {
		t.Fatal("sender-side AC/DC never received PACK feedback")
	}
	if b.acdc[2].Stats().PacksAttached == 0 {
		t.Fatal("receiver-side AC/DC never attached PACKs")
	}
}

func TestGuestNeverSeesECNOrPACK(t *testing.T) {
	acdcCfg := DefaultConfig()
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)

	// Interpose on the stack demux to inspect what the guest receives.
	inner := b.hosts[1].Demux
	var sawECN, sawPACK bool
	b.hosts[1].Demux = netsim.HandlerFunc(func(p *packet.Packet) {
		if p.IP().ECN() != packet.NotECT {
			sawECN = true
		}
		if packet.FindOption(p.TCP().Options(), packet.OptPACK) != nil {
			sawPACK = true
		}
		inner.HandlePacket(p)
	})
	innerS := b.hosts[0].Demux
	var sawPACKSender bool
	b.hosts[0].Demux = netsim.HandlerFunc(func(p *packet.Packet) {
		if packet.FindOption(p.TCP().Options(), packet.OptPACK) != nil {
			sawPACKSender = true
		}
		innerS.HandlePacket(p)
	})

	_, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(50 * sim.Millisecond)
	srv := *srvp
	if srv == nil || srv.Delivered == 0 {
		t.Fatal("no data flowed")
	}
	if sawECN {
		t.Fatal("ECN-off guest received ECN-marked packet")
	}
	if sawPACK || sawPACKSender {
		t.Fatal("guest received a PACK option")
	}
}

func TestFlowTableLifecycle(t *testing.T) {
	acdcCfg := DefaultConfig()
	acdcCfg.GCInterval = 10 * sim.Millisecond
	acdcCfg.IdleTimeout = 50 * sim.Millisecond
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	var srv *tcpstack.Conn
	b.stacks[1].Listen(5001, func(c *tcpstack.Conn) {
		srv = c
		c.OnPeerClose = func() { c.Close() }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(100_000)
	b.s.Schedule(20*sim.Millisecond, cli.Close)
	b.s.RunFor(30 * sim.Millisecond)
	_ = srv
	// Two directions tracked on each host.
	if n := b.acdc[0].Table.Len(); n != 2 {
		t.Fatalf("host0 table has %d entries, want 2", n)
	}
	// Idle long enough for the lazy GC; drive traffic on another flow so the
	// datapath sweeps.
	b.stacks[1].Listen(5002, func(*tcpstack.Conn) {})
	c2 := b.stacks[0].Dial(b.hosts[1].Addr, 5002)
	c2.Send(1 << 30)
	b.s.RunFor(300 * sim.Millisecond)
	if b.acdc[0].Stats().FlowsRemoved == 0 {
		t.Fatal("GC never removed the finished flow")
	}
}

func TestThroughputMatchesNativeDCTCP(t *testing.T) {
	// One flow: AC/DC over CUBIC vs native DCTCP must land within a few
	// percent of each other (Table 1's equivalence).
	run := func(acdcOn bool) float64 {
		guest := cubicGuest()
		var cfgp *Config
		if acdcOn {
			c := DefaultConfig()
			cfgp = &c
		} else {
			guest.CC = "dctcp"
			guest.ECN = tcpstack.ECNDCTCP
		}
		b := newBench(t, 2, guest, cfgp, redK(), 10e9)
		_, srvp := b.longFlow(t, 0, 1)
		b.s.RunFor(100 * sim.Millisecond)
		return float64((*srvp).Delivered) * 8 / b.s.Now().Seconds()
	}
	acdc, native := run(true), run(false)
	if acdc < 0.9*native {
		t.Fatalf("AC/DC %.2fGbps vs native DCTCP %.2fGbps", acdc/1e9, native/1e9)
	}
}

func TestRwndRewriteRespectsWindowScale(t *testing.T) {
	acdcCfg := DefaultConfig()
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	cli, _ := b.longFlow(t, 0, 1)
	b.s.RunFor(50 * sim.Millisecond)
	// The guest's view of the peer window must track the vSwitch cwnd within
	// one scale quantum (2^7 = 128 bytes).
	f := b.acdc[0].Table.Get(FlowKey{
		Src: b.hosts[0].Addr, Dst: b.hosts[1].Addr,
		SPort: cli.LocalPort(), DPort: 5001,
	})
	if f == nil {
		t.Fatal("sender flow entry missing")
	}
	snap := f.Snapshot()
	got := cli.SndWnd()
	want := int64(snap.CwndBytes)
	if peerBuf := int64(4 << 20); want > peerBuf {
		want = peerBuf // the guest's own advertisement is the ceiling
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if !f.WScaleKnown {
		t.Fatal("window scale never learned from handshake")
	}
	// Tolerance: the cwnd moves by up to ~2 MSS between the last rewritten
	// ACK and the snapshot, plus the 2^7 scale quantum.
	if diff > 2*8960+128 {
		t.Fatalf("guest sndWnd %d vs vSwitch cwnd %d (diff %d)", got, want, diff)
	}
}

func TestRwndClampBoundsThroughput(t *testing.T) {
	// Figure 6's mechanism: clamping RWND caps throughput at clamp/RTT.
	acdcCfg := DefaultConfig()
	acdcCfg.FlowPolicy = func(FlowKey) Policy {
		p := DefaultPolicy()
		p.RwndClampBytes = 2 * 8960 // two segments
		return p
	}
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	_, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(50 * sim.Millisecond)
	rate := float64((*srvp).Delivered) * 8 / b.s.Now().Seconds()
	// Unclamped would be ~9.9G; 2 MSS per ~25us RTT ≈ 5.7G. Assert well
	// below line rate but nonzero.
	if rate > 8e9 || rate < 0.1e9 {
		t.Fatalf("clamped rate = %.2f Gbps", rate/1e9)
	}
}

func TestBetaDifferentiation(t *testing.T) {
	// Two flows, β=1 vs β=0.25: the high-β flow must get more bandwidth.
	acdcCfg := DefaultConfig()
	acdcCfg.FlowPolicy = func(k FlowKey) Policy {
		p := DefaultPolicy()
		if k.DPort == 5002 {
			p.Beta = 0.25
		}
		return p
	}
	b := newBench(t, 3, cubicGuest(), &acdcCfg, redK(), 10e9)
	var srv1, srv2 *tcpstack.Conn
	b.stacks[2].Listen(5001, func(c *tcpstack.Conn) { srv1 = c })
	b.stacks[2].Listen(5002, func(c *tcpstack.Conn) { srv2 = c })
	c1 := b.stacks[0].Dial(b.hosts[2].Addr, 5001)
	c2 := b.stacks[1].Dial(b.hosts[2].Addr, 5002)
	c1.Send(1 << 40)
	c2.Send(1 << 40)
	b.s.RunFor(150 * sim.Millisecond)
	if srv1 == nil || srv2 == nil {
		t.Fatal("flows not established")
	}
	if srv1.Delivered < srv2.Delivered*3/2 {
		t.Fatalf("β=1 flow got %d, β=0.25 flow got %d; want clear priority",
			srv1.Delivered, srv2.Delivered)
	}
	if srv2.Delivered == 0 {
		t.Fatal("low-β flow starved completely")
	}
}

func TestPolicingDropsNonConformingStack(t *testing.T) {
	guest := cubicGuest()
	guest.IgnoreRwnd = true // circumvents the standard
	acdcCfg := DefaultConfig()
	acdcCfg.Police = true
	// Two rogue flows share host 2's downlink so congestion (and hence a
	// virtual window worth enforcing) actually exists.
	b := newBench(t, 3, guest, &acdcCfg, redK(), 10e9)
	_, srvp := b.longFlow(t, 0, 2)
	var srv2 *tcpstack.Conn
	b.stacks[2].Listen(5002, func(c *tcpstack.Conn) { srv2 = c })
	cli2 := b.stacks[1].Dial(b.hosts[2].Addr, 5002)
	cli2.Send(1 << 40)
	b.s.RunFor(50 * sim.Millisecond)
	srv := *srvp
	_ = srv2
	if b.acdc[0].Stats().PolicingDrops == 0 && b.acdc[1].Stats().PolicingDrops == 0 {
		t.Fatal("policing never dropped for an RWND-ignoring stack")
	}
	if srv.Delivered == 0 {
		t.Fatal("policing starved the flow entirely")
	}
	// The bottleneck queue must stay far below what unpoliced rogue stacks
	// (which fill the multi-MB shared buffer) would produce.
	if q := b.sw.Port(2).Stats.MaxQueueBytes; q > 40*testK {
		t.Fatalf("rogue stack drove queue to %dB despite policing", q)
	}
}

func TestFACKFallbackPath(t *testing.T) {
	acdcCfg := DefaultConfig()
	acdcCfg.DisablePACK = true // ablation: dedicated feedback packets only
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	_, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(50 * sim.Millisecond)
	srv := *srvp
	if b.acdc[1].Stats().FacksSent == 0 {
		t.Fatal("no FACKs sent with PACK disabled")
	}
	if b.acdc[0].Stats().FacksConsumed == 0 {
		t.Fatal("no FACKs consumed at the sender")
	}
	if b.acdc[0].Stats().PacksConsumed != 0 {
		t.Fatal("PACKs seen despite DisablePACK")
	}
	if srv.Delivered == 0 {
		t.Fatal("no data delivered on FACK-only feedback")
	}
	// Queue still bounded: feedback loop works over FACKs.
	if q := b.sw.Port(1).Stats.MaxQueueBytes; q > 12*testK {
		t.Fatalf("queue %dB with FACK feedback", q)
	}
}

func TestLogOnlyModeDoesNotEnforce(t *testing.T) {
	acdcCfg := DefaultConfig()
	acdcCfg.EnforceRwnd = false
	b := newBench(t, 2, cubicGuest(), &acdcCfg, netsim.REDConfig{}, 10e9)
	samples := 0
	b.acdc[0].OnRwndComputed = func(f *Flow, rwnd int64, overwrote bool) {
		samples++
		if overwrote {
			t.Fatal("log-only mode overwrote RWND")
		}
	}
	b.longFlow(t, 0, 1)
	b.s.RunFor(30 * sim.Millisecond)
	if samples == 0 {
		t.Fatal("no RWND samples in log-only mode")
	}
	if b.acdc[0].Stats().RwndRewrites != 0 {
		t.Fatal("rewrites counted in log-only mode")
	}
}

func TestVTimeoutCollapsesWindow(t *testing.T) {
	acdcCfg := DefaultConfig()
	acdcCfg.VTimeout = 2 * sim.Millisecond
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	// Blackhole all traffic mid-flow: inactivity timer must fire.
	cli, _ := b.longFlow(t, 0, 1)
	b.s.RunFor(20 * sim.Millisecond)
	key := FlowKey{Src: b.hosts[0].Addr, Dst: b.hosts[1].Addr, SPort: cli.LocalPort(), DPort: 5001}
	f := b.acdc[0].Table.Get(key)
	before := f.Snapshot().CwndBytes

	hookOld := b.hosts[0].Egress
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		hookOld(p)      // vSwitch accounting runs (snd_nxt advances)…
		return nil, nil // …but nothing reaches the wire, so ACKs stop
	}
	b.hosts[0].EgressBatch = nil // bursts must hit the override too
	b.s.RunFor(20 * sim.Millisecond)
	if b.acdc[0].Stats().VTimeouts == 0 {
		t.Fatal("inactivity timer never fired")
	}
	after := f.Snapshot().CwndBytes
	if after >= before {
		t.Fatalf("cwnd not collapsed: %v → %v", before, after)
	}
}

func TestDupAckGeneration(t *testing.T) {
	acdcCfg := DefaultConfig()
	acdcCfg.VTimeout = 2 * sim.Millisecond
	acdcCfg.GenDupAcks = true
	guest := cubicGuest()
	guest.RTOMin = sim.Second // guest RTO far above AC/DC's timer
	guest.RTOInit = sim.Second
	b := newBench(t, 2, guest, &acdcCfg, redK(), 10e9)

	cli, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(10 * sim.Millisecond)
	srv := *srvp

	// Blackhole the network path (after vSwitch accounting).
	b.hosts[0].NIC.Policy = blackhole{}
	b.s.RunFor(10 * sim.Millisecond)
	b.hosts[0].NIC.Policy = nil
	b.s.RunFor(50 * sim.Millisecond)

	if b.acdc[0].Stats().DupAcksGenerated == 0 {
		t.Fatal("no synthesized dupacks")
	}
	if cli.FastRecoveries == 0 {
		t.Fatal("guest never fast-retransmitted off synthesized dupacks")
	}
	if cli.Timeouts != 0 {
		t.Fatal("guest hit its (huge) RTO anyway")
	}
	if srv.Delivered == 0 {
		t.Fatal("no delivery")
	}
}

type blackhole struct{}

func (blackhole) OnEnqueue(*netsim.Link, *packet.Packet) bool { return false }
func (blackhole) OnDequeue(*netsim.Link, *packet.Packet)      {}

// --- unit-level tests ---

func TestTableShardingAndSweep(t *testing.T) {
	tb := NewTable()
	mk := func(i int) FlowKey {
		return FlowKey{Src: packet.Addr(i), Dst: packet.Addr(i + 1), SPort: uint16(i), DPort: 80}
	}
	for i := 0; i < 1000; i++ {
		k := mk(i)
		f, created := tb.GetOrCreate(k, func() *Flow { return &Flow{Key: k} })
		if !created || f == nil {
			t.Fatal("create failed")
		}
	}
	if tb.Len() != 1000 {
		t.Fatalf("len = %d", tb.Len())
	}
	if f, created := tb.GetOrCreate(mk(5), func() *Flow { t.Fatal("re-init"); return nil }); created || f == nil {
		t.Fatal("GetOrCreate recreated existing flow")
	}
	n := 0
	tb.Range(func(*Flow) { n++ })
	if n != 1000 {
		t.Fatalf("Range visited %d", n)
	}
	removed := tb.Sweep(func(f *Flow) bool { return f.Key.SPort%2 == 0 })
	if removed != 500 || tb.Len() != 500 {
		t.Fatalf("sweep removed %d, len %d", removed, tb.Len())
	}
	tb.Delete(mk(2))
	if tb.Get(mk(2)) != nil {
		t.Fatal("delete failed")
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tb := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := FlowKey{Src: packet.Addr(i % 97), Dst: packet.Addr(g), SPort: uint16(i), DPort: 80}
				tb.GetOrCreate(k, func() *Flow { return &Flow{Key: k} })
				tb.Get(k)
				if i%100 == 0 {
					tb.Sweep(func(f *Flow) bool { return f.Key.SPort%7 != 0 })
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestEquationOneCutFactor(t *testing.T) {
	v := &VDCTCP{}
	f := &Flow{Alpha: 0.5, Policy: Policy{Beta: 1}}
	if got := v.CutFactor(f, false); got != 0.75 {
		t.Fatalf("β=1 α=0.5: factor %v, want 0.75 (DCTCP)", got)
	}
	f.Policy.Beta = 0
	if got := v.CutFactor(f, false); got != 0.5 {
		t.Fatalf("β=0 α=0.5: factor %v, want 0.5 (full α back-off)", got)
	}
	f.Alpha = 1
	if got := v.CutFactor(f, false); got != 0 {
		t.Fatalf("β=0 α=1: factor %v, want 0", got)
	}
	f.Policy.Beta = 1
	if got := v.CutFactor(f, false); got != 0.5 {
		t.Fatalf("β=1 α=1: factor %v, want 0.5", got)
	}
	f.Policy.Beta = 0.5
	// 1 − (1 − 1·0.5/2) = 0.25
	if got := v.CutFactor(f, false); got != 0.25 {
		t.Fatalf("β=0.5 α=1: factor %v, want 0.25", got)
	}
}

// Property: under arbitrary synthetic feedback, α stays in [0, 1] and the
// virtual window never goes below the floor.
func TestSenderCCInvariantsProperty(t *testing.T) {
	s := sim.New(3)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.NIC = netsim.NewLink(s, "up", 10e9, sim.Microsecond, netsim.HandlerFunc(func(*packet.Packet) {}))
	v := Attach(s, host, DefaultConfig())

	prop := func(ops []uint32) bool {
		key := FlowKey{Src: host.Addr, Dst: packet.MakeAddr(10, 0, 0, 2), SPort: 1, DPort: 2}
		f := v.newFlow(key)
		f.issValid = true
		f.SndUna, f.SndNxt = 1, 1
		f.alphaSeq = 1
		f.WScaleKnown = true
		f.PeerWScale = 7
		var total, marked uint32
		for _, op := range ops {
			// Synthesize data then an ACK with feedback.
			dataLen := int64(op%20000) + 1
			f.SndNxt += dataLen
			total += uint32(dataLen)
			if op%3 == 0 {
				marked += uint32(dataLen)
			}
			ackTo := f.SndUna + int64(op%uint32(dataLen+1))
			ack := packet.Build(key.Dst, key.Src, packet.NotECT, packet.TCPFields{
				SrcPort: key.DPort, DstPort: key.SPort,
				Seq: 777, Ack: f.iss + uint32(ackTo),
				Flags: packet.FlagACK, Window: 65535,
			}, 0)
			v.processFeedbackAndAck(f, ack, ack.TCP(), packet.PACKInfo{TotalBytes: total, MarkedBytes: marked}, true)
			if f.Alpha < 0 || f.Alpha > 1.0001 {
				return false
			}
			if f.CwndBytes < float64(v.minRwnd(f))-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowUpdateGeneration(t *testing.T) {
	acdcCfg := DefaultConfig()
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	cli, _ := b.longFlow(t, 0, 1)
	b.s.RunFor(20 * sim.Millisecond)
	key := FlowKey{Src: b.hosts[0].Addr, Dst: b.hosts[1].Addr, SPort: cli.LocalPort(), DPort: 5001}
	if !b.acdc[0].SendWindowUpdate(key) {
		t.Fatal("SendWindowUpdate failed for live flow")
	}
	if b.acdc[0].SendWindowUpdate(FlowKey{Src: 1, Dst: 2, SPort: 3, DPort: 4}) {
		t.Fatal("SendWindowUpdate succeeded for unknown flow")
	}
}

func TestDetachRestoresPassthrough(t *testing.T) {
	acdcCfg := DefaultConfig()
	b := newBench(t, 2, cubicGuest(), &acdcCfg, netsim.REDConfig{}, 10e9)
	b.acdc[0].Detach()
	b.acdc[1].Detach()
	_, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(20 * sim.Millisecond)
	if (*srvp).Delivered == 0 {
		t.Fatal("no data after detach")
	}
	if b.acdc[0].Stats().EgressSegs != 0 {
		t.Fatal("detached vSwitch still processing")
	}
}
