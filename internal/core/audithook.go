package core

import "acdc/internal/packet"

// Audit hook layer: the vSwitch can carry a pluggable oracle (internal/audit)
// that observes every packet and enforcement state transition and checks the
// paper's invariants — RWND never widened, ECT on egress, CE stripped before
// the guest, Equation (1) in bounds, sequence state monotone, policing never
// dropping in-window segments. The hooks are designed so a nil auditor costs
// the hot path exactly one predictable branch and zero allocations: event
// structs are only populated inside `if v.Audit != nil` guards and passed by
// value (stack-only).
//
// All flow-scoped events (AckEvent, CutEvent, PoliceEvent) are delivered
// with the flow lock held; implementations must not call back into the
// VSwitch, the Table, or the flow. Key is safe to read (immutable).

// AuditDir distinguishes the two datapath hooks in packet events.
type AuditDir uint8

const (
	// AuditEgress: guest → network (sender module, ECT marking).
	AuditEgress AuditDir = iota
	// AuditIngress: network → guest (receiver module, ECN strip, RWND rewrite).
	AuditIngress
)

// String names the direction for violation logs.
func (d AuditDir) String() string {
	if d == AuditEgress {
		return "egress"
	}
	return "ingress"
}

// Auditor is the oracle interface. internal/audit provides the checking
// implementation; core only emits events.
type Auditor interface {
	// PacketEvent fires after a full EgressPath/IngressPath traversal.
	// pre is the packet as it entered the vSwitch; out/extra are what came
	// back (either may be nil: consumed FACK, policed drop). outIsInput
	// reports pointer identity between the input packet and out — only then
	// do before/after comparisons (window widening) apply.
	PacketEvent(v *VSwitch, dir AuditDir, pre PacketPre, out, extra *packet.Packet, outIsInput bool)
	// AckEvent fires once per sender-module ACK processing pass, after all
	// state updates and the enforcement decision. Flow lock held.
	AckEvent(v *VSwitch, e AckEvent)
	// CutEvent fires on every multiplicative decrease. Flow lock held.
	CutEvent(v *VSwitch, e CutEvent)
	// PoliceEvent fires when policing drops an egress segment. Flow lock held.
	PoliceEvent(v *VSwitch, e PoliceEvent)
}

// PacketPre is the pre-traversal capture of the fields the packet-level
// invariants compare against.
type PacketPre struct {
	// Auditable mirrors the datapath's own fast-path conditions: valid IPv4,
	// TCP, valid header, well-formed options, and not a UDP-tunnel packet.
	// Packets that fail these conditions take a documented fail-open path
	// (passed through untouched) and are exempt from packet invariants.
	Auditable bool
	Wnd       uint16
	ECN       packet.ECN
	Payload   int
	Flags     uint8
	// FailOpenBefore snapshots fail_open_total before the traversal: a
	// traversal that increments it (e.g. flow table at capacity) legitimately
	// passes packets through untouched, so packet invariants are waived.
	FailOpenBefore int64
}

// CapturePre records the auditable view of p before the datapath runs.
// Exported so auditor implementations and their self-tests can synthesize
// packet events identical to the datapath's own.
func (v *VSwitch) CapturePre(p *packet.Packet) PacketPre {
	pre := PacketPre{FailOpenBefore: v.Metrics.FailOpen.Value()}
	ip := p.IP()
	if !ip.Valid() {
		return pre
	}
	if ip.Protocol() != packet.ProtoTCP {
		return pre
	}
	t := ip.TCP()
	if !t.Valid() || !packet.OptionsWellFormed(t.Options()) {
		return pre
	}
	pre.Auditable = true
	pre.Wnd = t.Window()
	pre.ECN = ip.ECN()
	pre.Payload = p.PayloadLen()
	pre.Flags = t.Flags()
	return pre
}

// AckEvent describes one completed sender-module ACK pass (Figure 5's loop
// body plus the §3.3 enforcement decision).
type AckEvent struct {
	Key FlowKey

	// Sequence state before and after the pass.
	PrevSndUna, PrevSndNxt int64
	SndUna, SndNxt         int64

	// Feedback accounting: the deltas actually credited into the α window
	// (zero when the ACK carried no feedback, was a resync re-baseline, or
	// was recognized as a peer-restart reset).
	HaveFeedback                  bool
	CreditedTotal, CreditedMarked uint32

	// α state after the pass; AlphaFrac is the marked fraction mixed into
	// the EWMA when AlphaUpdated (the once-per-RTT Eq. 1 input).
	Alpha        float64
	AlphaUpdated bool
	AlphaFrac    float64

	// Virtual window after the pass and the bounds it must respect.
	CwndBytes   float64
	MinRwnd     int64
	WScale      uint8
	WScaleKnown bool

	// Enforcement decision.
	Resyncing       bool   // conservative mode at enforcement time
	Enforce         bool   // Cfg.EnforceRwnd and the flow is not Policy.Disable
	Enforced        int64  // enforcedWindow(minRwnd) result in bytes
	OrigWnd, NewWnd uint16 // RWND field before/after
	Overwrote       bool
}

// CutEvent describes one multiplicative decrease (Figure 5 / Equation 1).
type CutEvent struct {
	Key               FlowKey
	Alg               string
	Loss              bool
	Alpha, Beta       float64
	Factor            float64
	PrevCwnd, NewCwnd float64
}

// PoliceEvent describes a §3.3 policing decision that dropped a segment.
type PoliceEvent struct {
	Key             FlowKey
	SegEnd, SndUna  int64
	Enforced, Slack int64
	Resyncing       bool
	Dropped         bool
}
