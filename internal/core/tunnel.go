package core

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// DCTCP-friendly UDP tunnels — the future work §3.3 sketches ("we believe
// it can be extended to handle UDP similar to prior schemes"). UDP has no
// ACK stream to piggyback on and no receive window to rewrite, so the
// tunnel supplies both halves itself:
//
//   - the sender vSwitch admits datagrams up to a virtual DCTCP window
//     (excess is buffered briefly, then dropped — the guest has no
//     congestion control to slow it down, so the tunnel is the backstop);
//   - the receiver vSwitch counts total/CE-marked bytes and streams them
//     back in dedicated FACK control packets;
//   - the sender runs the same Figure 5 machinery over those counters
//     (α EWMA, once-per-window cuts, NewReno growth) and drains its queue
//     as the window opens.
//
// All accounting is in wire bytes (UDP has no sequence numbers): SndNxt is
// bytes admitted to the network, SndUna is bytes the peer reported received.

// udpFeedbackBytes is how often the receiver module reports (every ~2
// jumbo datagrams), keeping the control loop at sub-RTT granularity.
const udpFeedbackBytes = 18_000

// udpTunnelQueueCap bounds the sender-side tunnel queue.
const udpTunnelQueueCap = 256 << 10

// udpEgress is the sender-module path for guest datagrams.
func (v *VSwitch) udpEgress(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	ip := p.IP()
	u := ip.UDP()
	if !u.Valid() {
		return p, nil
	}
	key := FlowKey{Src: ip.Src(), Dst: ip.Dst(), SPort: u.SrcPort(), DPort: u.DstPort()}
	f := v.flowFor(key)
	if f == nil {
		// Table full: the tunnel cannot admit-control this datagram, so it
		// passes through unwindowed rather than being dropped.
		return p, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.issValid {
		f.isUDP = true
		f.issValid = true
		// Tunnel accounting is in IP-length bytes, so the "MSS" (window
		// floor / growth quantum) is a full MTU-sized datagram.
		f.MSS = v.Cfg.MTU
		f.CwndBytes = v.Cfg.InitCwndPkts * float64(f.MSS)
		f.alphaSeq, f.cutSeq = 0, 0
	}
	f.lastActive = v.Sim.Now()
	size := int64(p.IPLen())

	if f.inactivity == nil {
		ff := f
		f.inactivity = sim.NewTimer(v.Sim, func() { v.onUDPTimeout(ff) })
	}
	f.inactivity.ArmIfIdle(v.Cfg.VTimeout)

	if len(f.tq) == 0 && f.SndNxt-f.SndUna+size <= int64(f.CwndBytes) {
		f.SndNxt += size
		if infl := f.SndNxt - f.SndUna; infl > f.maxInflight {
			f.maxInflight = infl
		}
		if v.Cfg.MarkECT && ip.ECN() == packet.NotECT {
			ip.SetECN(packet.ECT0)
		}
		return p, nil
	}
	if f.tqBytes+int(size) <= udpTunnelQueueCap {
		// Retained: the flow owns the datagram until the window opens (the
		// egress-hook contract lets a consumed packet be kept).
		f.tq = append(f.tq, p)
		f.tqBytes += int(size)
		return nil, nil
	}
	v.Metrics.PolicingDrops.Inc()
	return nil, nil
}

// udpIngress is the receiver-module path: count, strip ECN, and stream
// feedback back to the sender's vSwitch.
func (v *VSwitch) udpIngress(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	ip := p.IP()
	u := ip.UDP()
	if !u.Valid() {
		return p, nil
	}
	key := FlowKey{Src: ip.Src(), Dst: ip.Dst(), SPort: u.SrcPort(), DPort: u.DstPort()}
	f := v.flowFor(key)
	if f == nil {
		// Table full: deliver uncounted (no feedback stream for this flow).
		if v.Cfg.StripECN && ip.ECN() != packet.NotECT {
			ip.SetECN(packet.NotECT)
			v.Metrics.ECNStripped.Inc()
		}
		return p, nil
	}
	f.mu.Lock()
	f.isUDP = true
	f.lastActive = v.Sim.Now()
	f.TotalBytes += uint32(p.IPLen())
	v.Metrics.DataBytes.Add(int64(p.IPLen()))
	if ip.ECN() == packet.CE {
		f.MarkedBytes += uint32(p.IPLen())
		v.Metrics.CEBytes.Add(int64(p.IPLen()))
	}
	needFb := f.TotalBytes-f.fbLastTotal >= udpFeedbackBytes ||
		(ip.ECN() == packet.CE) != f.fbLastCE
	var fb *packet.Packet
	if needFb {
		f.fbLastTotal = f.TotalBytes
		f.fbLastCE = ip.ECN() == packet.CE
		fb = v.buildUDPFeedbackLocked(f)
		v.Metrics.FacksSent.Inc()
	}
	f.mu.Unlock()

	if v.Cfg.StripECN && ip.ECN() != packet.NotECT {
		ip.SetECN(packet.NotECT) // guest datagram sockets never negotiated ECN
		v.Metrics.ECNStripped.Inc()
	}
	if fb != nil {
		v.Host.InjectToWire(fb)
	}
	return p, nil
}

// buildUDPFeedbackLocked crafts the control packet: TCP-formatted (so the
// peer datapath parses it with the same machinery), carrying the counters
// in an OptFACK option, addressed so the peer's reverse lookup lands on the
// UDP flow entry. Caller holds f.mu.
func (v *VSwitch) buildUDPFeedbackLocked(f *Flow) *packet.Packet {
	var opt [packet.PACKOptionLen]byte
	opt[0] = OptFACK
	opt[1] = packet.PACKOptionLen
	putU32(opt[2:6], f.TotalBytes)
	putU32(opt[6:10], f.MarkedBytes)
	fb := packet.BuildIn(v.pool(), f.Key.Dst, f.Key.Src, packet.ECT0, packet.TCPFields{
		SrcPort: f.Key.DPort, DstPort: f.Key.SPort,
		Flags: packet.FlagACK, Window: 0, Options: opt[:],
	}, 0)
	return fb
}

// processUDPFeedback runs the virtual congestion control over tunnel
// feedback and drains the tunnel queue into the opened window.
func (v *VSwitch) processUDPFeedback(f *Flow, info packet.PACKInfo) {
	f.mu.Lock()
	f.lastActive = v.Sim.Now()
	totalDelta := info.TotalBytes - f.lastTotal
	markedDelta := info.MarkedBytes - f.lastMarked
	f.lastTotal = info.TotalBytes
	f.lastMarked = info.MarkedBytes
	f.windowTotal += totalDelta
	f.windowMarked += markedDelta

	f.SndUna += int64(totalDelta)
	if f.SndUna > f.SndNxt {
		f.SndUna = f.SndNxt
	}
	if f.inactivity != nil {
		f.inactivity.Reset(v.Cfg.VTimeout)
	}

	if f.SndUna >= f.alphaSeq {
		var frac float64
		if f.windowTotal > 0 {
			frac = float64(f.windowMarked) / float64(f.windowTotal)
			if frac > 1 { // corrupt feedback: marked can't exceed total
				frac = 1
			}
		}
		f.Alpha = (1-v.Cfg.G)*f.Alpha + v.Cfg.G*frac
		f.windowTotal, f.windowMarked = 0, 0
		f.alphaSeq = f.SndNxt
		f.mCwnd.Observe(f.CwndBytes)
		f.mAlpha.Observe(f.Alpha)
	}

	cwndLimited := float64(f.maxInflight) >= f.CwndBytes-float64(f.MSS)
	f.maxInflight = f.SndNxt - f.SndUna
	if markedDelta > 0 {
		v.cutWindow(f, f.SndUna, false) // once per window (guarded)
		if totalDelta > 0 && cwndLimited {
			f.vcc.OnAck(f, int64(totalDelta)) // keep growing between cuts
		}
	} else if totalDelta > 0 && cwndLimited {
		f.vcc.OnAck(f, int64(totalDelta))
	}
	v.clampFlow(f)
	out := v.drainTunnelLocked(f)
	f.mu.Unlock()
	for _, q := range out {
		v.Host.InjectToWire(q)
	}
}

// drainTunnelLocked releases queued datagrams into the opened window.
func (v *VSwitch) drainTunnelLocked(f *Flow) []*packet.Packet {
	var out []*packet.Packet
	for len(f.tq) > 0 {
		p := f.tq[0]
		size := int64(p.IPLen())
		if f.SndNxt-f.SndUna+size > int64(f.CwndBytes) {
			break
		}
		f.tq = f.tq[1:]
		f.tqBytes -= int(size)
		f.SndNxt += size
		if infl := f.SndNxt - f.SndUna; infl > f.maxInflight {
			f.maxInflight = infl
		}
		if v.Cfg.MarkECT && p.IP().ECN() == packet.NotECT {
			p.IP().SetECN(packet.ECT0)
		}
		out = append(out, p)
	}
	return out
}

// onUDPTimeout handles feedback silence: assume everything outstanding was
// lost (or the receiver vanished), collapse the window, restart.
func (v *VSwitch) onUDPTimeout(f *Flow) {
	f.mu.Lock()
	if f.SndUna >= f.SndNxt && len(f.tq) == 0 {
		f.mu.Unlock()
		return
	}
	v.Metrics.VTimeouts.Inc()
	f.VTimeouts++
	f.Alpha = v.Cfg.MaxAlpha
	f.vcc.OnTimeout(f)
	v.clampFlow(f)
	f.SndUna = f.SndNxt // write off outstanding bytes
	out := v.drainTunnelLocked(f)
	f.inactivity.Reset(v.Cfg.VTimeout)
	f.mu.Unlock()
	for _, q := range out {
		v.Host.InjectToWire(q)
	}
}
