package core

import (
	"bytes"
	"hash/crc32"
	"testing"

	"acdc/internal/packet"
)

// packAck builds an ACK carrying PACK feedback (cumulative counters), the
// packet that drives the sender module's α loop and the resync machine.
func packAck(src, dst packet.Addr, sp, dp uint16, ack uint32, wnd uint16, total, marked uint32) *packet.Packet {
	opt := make([]byte, packet.PACKOptionLen)
	packet.EncodePACK(opt, packet.PACKInfo{TotalBytes: total, MarkedBytes: marked})
	return packet.Build(src, dst, packet.NotECT, packet.TCPFields{
		SrcPort: sp, DstPort: dp, Seq: 1, Ack: ack,
		Flags: packet.FlagACK, Window: wnd, Options: opt,
	}, 0)
}

// populatedVSwitch builds a vSwitch carrying richly-varied flow state: one
// handshake flow with feedback history and learned window scale, one
// mid-stream adoption on a per-flow reno policy, and one receiver-module
// flow with CE-marked byte counters.
func populatedVSwitch(t *testing.T) (*VSwitch, packet.Addr, packet.Addr) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.FlowPolicy = func(k FlowKey) Policy {
		p := DefaultPolicy()
		if k.DPort == 443 {
			p.VCC = "reno"
			p.Beta = 0.5
			p.RwndClampBytes = 123_456
		}
		return p
	}
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)

	// Flow 1: full handshake (iss=0 keeps wire seq == absolute offset), one
	// data segment, PACK feedback with marked bytes (moves α, SndUna,
	// lastTotal/lastMarked and triggers a window cut).
	v.Egress(packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 10, DstPort: 20, Seq: 0, Flags: packet.FlagSYN, Window: 65535,
		Options: packet.BuildSynOptions(1400, 0, true),
	}, 0))
	v.Ingress(packet.Build(peer, host.Addr, packet.NotECT, packet.TCPFields{
		SrcPort: 20, DstPort: 10, Seq: 5000, Ack: 1,
		Flags: packet.FlagSYN | packet.FlagACK | packet.FlagECE, Window: 65535,
		Options: packet.BuildSynOptions(1400, 2, true),
	}, 0))
	v.Egress(dataPkt(host.Addr, peer, 10, 20, 1, 1400))
	v.Ingress(packAck(peer, host.Addr, 20, 10, 1401, 65535, 1400, 1400))

	// Flow 2: mid-stream adoption under the reno policy (no handshake seen).
	v.Egress(dataPkt(host.Addr, peer, 30, 443, 777_000, 1000))

	// Flow 3: receiver module counting CE-marked peer data.
	v.Ingress(packet.Build(peer, host.Addr, packet.CE, packet.TCPFields{
		SrcPort: 50, DstPort: 60, Seq: 1, Ack: 1,
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
	}, 900))

	if v.Table.Len() < 3 {
		t.Fatalf("expected ≥3 flows, have %d", v.Table.Len())
	}
	return v, host.Addr, peer
}

// records reads every non-UDP flow's serialized form, keyed for comparison.
func records(v *VSwitch) map[FlowKey]flowRecord {
	out := map[FlowKey]flowRecord{}
	v.Table.Range(func(f *Flow) {
		f.mu.Lock()
		if !f.isUDP {
			out[f.Key] = f.recordLocked()
		}
		f.mu.Unlock()
	})
	return out
}

func TestSnapshotRoundTripLossless(t *testing.T) {
	// Every enforcement-affecting field must survive save → restore exactly.
	// flowRecord is the pin: recordLocked() collects the full enforcement
	// state, and equality here fails if restore drops or distorts any of it.
	a, _, _ := populatedVSwitch(t)
	want := records(a)
	snap := a.SaveSnapshot()

	b, _, _ := loneVSwitch(t, DefaultConfig())
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got := records(b)
	if len(got) != len(want) {
		t.Fatalf("restored %d flows, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("flow %+v missing after restore", k)
		}
		if g != w {
			t.Errorf("flow %+v state drifted:\n got %+v\nwant %+v", k, g, w)
		}
	}
	st := b.Stats()
	if st.SnapshotRestores != 1 || st.SnapshotCorrupt != 0 {
		t.Fatalf("restore counters: %+v", st)
	}
	if a.Stats().SnapshotSaves != 1 {
		t.Fatalf("SnapshotSaves = %d", a.Stats().SnapshotSaves)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Identical tables must serialize to identical bytes (records are sorted
	// by key, not map order), so checkpoint diffing works.
	v, _, _ := populatedVSwitch(t)
	if !bytes.Equal(v.SaveSnapshot(), v.SaveSnapshot()) {
		t.Fatal("two snapshots of an unchanged table differ")
	}
}

func TestSnapshotCorruptFailsOpen(t *testing.T) {
	a, _, _ := populatedVSwitch(t)
	snap := a.SaveSnapshot()

	mutate := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"tiny":         func(b []byte) []byte { return b[:8] },
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped body": func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"flipped crc":  func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
	}
	for name, mut := range mutate {
		t.Run(name, func(t *testing.T) {
			// The victim already tracks a flow: fail-open must reset to a
			// fresh table, not leave half-restored or stale state behind.
			b, bhost, _ := loneVSwitch(t, DefaultConfig())
			v := append([]byte(nil), snap...)
			b.Egress(dataPkt(bhost.Addr, packet.MakeAddr(10, 9, 9, 9), 1, 2, 100, 100))
			if err := b.RestoreSnapshot(mut(v)); err == nil {
				t.Fatal("corrupt snapshot restored without error")
			}
			if n := b.Table.Len(); n != 0 {
				t.Fatalf("table has %d flows after corrupt restore, want 0 (fail open)", n)
			}
			st := b.Stats()
			if st.SnapshotCorrupt != 1 || st.SnapshotRestores != 0 {
				t.Fatalf("counters after corrupt restore: %+v", st)
			}
		})
	}
}

func TestSnapshotForwardCompat(t *testing.T) {
	// A snapshot from a hypothetical newer build — higher version, nonzero
	// reserved field, extra bytes appended inside each record's length frame
	// — must decode cleanly with the known fields intact.
	a, _, _ := populatedVSwitch(t)
	_, recs, err := decodeSnapshot(a.SaveSnapshot())
	if err != nil {
		t.Fatal(err)
	}

	e := &snapEncoder{}
	e.buf = append(e.buf, snapshotMagic[:]...)
	e.u16(SnapshotVersion + 1)
	e.u16(0xBEEF)
	e.i64(42)
	e.u32(uint32(len(recs)))
	for _, r := range recs {
		lenAt := len(e.buf)
		e.record(r)
		// A future writer appended four bytes of state we don't know about.
		e.buf = append(e.buf, 0xde, 0xad, 0xbe, 0xef)
		n := int(e.buf[lenAt])<<8 | int(e.buf[lenAt+1]) + 4
		e.buf[lenAt], e.buf[lenAt+1] = byte(n>>8), byte(n)
	}
	e.u32(crc32.ChecksumIEEE(e.buf))

	capturedAt, got, err := decodeSnapshot(e.buf)
	if err != nil {
		t.Fatalf("future-format snapshot rejected: %v", err)
	}
	if capturedAt != 42 || len(got) != len(recs) {
		t.Fatalf("capturedAt=%d records=%d", capturedAt, len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d drifted through future format:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}

	// And a restore of it must install the flows (not fail open).
	b, _, _ := loneVSwitch(t, DefaultConfig())
	if err := b.RestoreSnapshot(e.buf); err != nil {
		t.Fatal(err)
	}
	if b.Table.Len() != len(recs) {
		t.Fatalf("restored %d flows from future format, want %d", b.Table.Len(), len(recs))
	}
}

func TestRestoreEntersResyncThenReenforces(t *testing.T) {
	// A restored sender flow must come up in conservative mode — no RWND
	// rewrite — and return to enforcement only after one clean feedback
	// round. This is the tentpole invariant: the snapshot is always at least
	// one outage behind the wire.
	a, ahost, peer := populatedVSwitch(t)
	snap := a.SaveSnapshot()
	b, _, _ := loneVSwitch(t, DefaultConfig())
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	k := FlowKey{Src: ahost, Dst: peer, SPort: 10, DPort: 20}
	f := b.Table.Get(k)
	if f == nil {
		t.Fatal("handshake flow missing after restore")
	}
	if !f.Resyncing() {
		t.Fatal("restored flow not in resync")
	}

	// Plain ACK during resync: enforcement suspended, neither rewrite nor
	// noop counted, guest window untouched.
	p := ackPkt(peer, ahost, 20, 10, 1401, 65535)
	b.Ingress(p)
	if w := p.TCP().Window(); w != 65535 {
		t.Fatalf("resyncing flow rewrote RWND to %d", w)
	}
	if st := b.Stats(); st.RwndRewrites != 0 || st.RwndUnchanged != 0 {
		t.Fatalf("enforcement counters moved during resync: %+v", st)
	}

	// First feedback re-anchors (cumulative counters are unanchored across
	// the restore); the next feedback ACK covering snd_nxt completes the
	// round.
	b.Ingress(packAck(peer, ahost, 20, 10, 1401, 65535, 1400, 1400))
	if !f.Resyncing() {
		t.Fatal("one feedback packet should not complete resync")
	}
	b.Ingress(packAck(peer, ahost, 20, 10, 1401, 65535, 1400, 1400))
	if f.Resyncing() {
		t.Fatalf("resync never completed (state %s)", f.ResyncState())
	}
	if got := b.Stats().FlowsResynced; got != 1 {
		t.Fatalf("FlowsResynced = %d", got)
	}

	// Enforcement is live again (the completing ACK itself re-enters the
	// enforced path): the peer's marked feedback cut the window well under
	// 64KB, so the next wide ACK must be rewritten down.
	before := b.Stats().RwndRewrites
	p = ackPkt(peer, ahost, 20, 10, 1401, 65535)
	b.Ingress(p)
	if b.Stats().RwndRewrites != before+1 {
		t.Fatalf("RwndRewrites %d → %d after resync", before, b.Stats().RwndRewrites)
	}
	if w := p.TCP().Window(); w >= 65535 {
		t.Fatalf("post-resync ACK window %d not enforced", w)
	}
}

func TestRestoreRebaselinesFeedbackWithoutAlphaCredit(t *testing.T) {
	// The first feedback after a restore must not smear the peer's whole
	// cumulative history into the marked-byte window: it only re-anchors.
	a, ahost, peer := populatedVSwitch(t)
	snap := a.SaveSnapshot()
	b, _, _ := loneVSwitch(t, DefaultConfig())
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	f := b.Table.Get(FlowKey{Src: ahost, Dst: peer, SPort: 10, DPort: 20})
	// Feedback claiming 4GB-ish cumulative totals (a peer much further along
	// than our restored baseline).
	b.Ingress(packAck(peer, ahost, 20, 10, 1401, 65535, 3_000_000_000, 2_999_000_000))
	f.mu.Lock()
	wt, wm, lt := f.windowTotal, f.windowMarked, f.lastTotal
	f.mu.Unlock()
	if wt != 0 || wm != 0 {
		t.Fatalf("first post-restore feedback credited deltas: total=%d marked=%d", wt, wm)
	}
	if lt != 3_000_000_000 {
		t.Fatalf("lastTotal not re-anchored: %d", lt)
	}
}

func TestRestoreCapacityOverflowFailsOpen(t *testing.T) {
	a, _, _ := populatedVSwitch(t)
	snap := a.SaveSnapshot()
	cfg := DefaultConfig()
	cfg.MaxFlows = 1
	b, _, _ := loneVSwitch(t, cfg)
	if err := b.RestoreSnapshot(snap); err != nil {
		t.Fatalf("overflowing restore must not error (it fails open): %v", err)
	}
	if n := b.Table.Len(); n != 1 {
		t.Fatalf("table len %d, want MaxFlows=1", n)
	}
	if st := b.Stats(); st.FlowTableFull == 0 {
		t.Fatal("overflow flows not counted as table-full fail-open")
	}
}

func TestSnapshotSkipsUDPTunnelFlows(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 100, 100))
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 2})
	f.mu.Lock()
	f.isUDP = true
	f.mu.Unlock()
	_, recs, err := decodeSnapshot(v.SaveSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("UDP tunnel flow serialized: %d records", len(recs))
	}
}

func TestRestartColdWipesWarmRestores(t *testing.T) {
	a, _, _ := populatedVSwitch(t)
	n := a.Table.Len()
	snap := a.SaveSnapshot()

	a.Restart(nil) // cold
	if a.Table.Len() != 0 {
		t.Fatalf("cold restart left %d flows", a.Table.Len())
	}
	st := a.Stats()
	if st.Restarts != 1 || st.FlowsRemoved < int64(n) {
		t.Fatalf("cold restart accounting: %+v", st)
	}

	a.Restart(snap) // warm
	if a.Table.Len() != n {
		t.Fatalf("warm restart restored %d flows, want %d", a.Table.Len(), n)
	}
	if st = a.Stats(); st.Restarts != 2 || st.SnapshotRestores != 1 {
		t.Fatalf("warm restart accounting: %+v", st)
	}
	// The metrics registry models the host observability agent: it survives
	// the vSwitch process, so counters accumulate across restarts.
	if st.FlowsCreated < int64(2*n) {
		t.Fatalf("FlowsCreated = %d, want ≥ %d (restore recreates)", st.FlowsCreated, 2*n)
	}
}

func TestDetachReattachRoundTrip(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	v.Detach()
	if v.Attached() {
		t.Fatal("Detach left the datapath attached")
	}
	// Detached module: traffic passes untouched (fail open during downtime).
	p := dataPkt(host.Addr, packet.MakeAddr(10, 0, 0, 2), 1, 2, 100, 100)
	host.Output(p)
	if v.Table.Len() != 0 {
		t.Fatal("detached vSwitch still tracking flows")
	}
	v.Reattach()
	if !v.Attached() {
		t.Fatal("Reattach did not re-enable the datapath")
	}
	v.Egress(dataPkt(host.Addr, packet.MakeAddr(10, 0, 0, 2), 1, 2, 200, 100))
	if v.Table.Len() != 1 {
		t.Fatal("reattached vSwitch not tracking")
	}
}

func TestSanitizeClampsHostileRecords(t *testing.T) {
	// A forged record that passes CRC must still be neutralized field by
	// field before it can reach the enforcement math.
	cfg := DefaultConfig()
	nan := 0.0
	nan /= nan // NaN without importing math
	r := flowRecord{
		Key:           FlowKey{Src: 1, Dst: 2, SPort: 3, DPort: 4},
		MSS:           -7,
		CwndBytes:     nan,
		SsthreshBytes: -1,
		Alpha:         42,
		Beta:          -3,
		RwndClamp:     -9,
		SndUna:        100, // > SndNxt
		SndNxt:        50,
		VTimeouts:     -1,
		LossEvents:    -2,
		prevCwnd:      nan,
	}
	r.sanitize(&cfg)
	if r.MSS != cfg.MTU-40 {
		t.Fatalf("MSS = %d", r.MSS)
	}
	if !finitePositive(r.CwndBytes) || !finitePositive(r.SsthreshBytes) {
		t.Fatalf("cwnd=%v ssthresh=%v", r.CwndBytes, r.SsthreshBytes)
	}
	if r.Alpha < 0 || r.Alpha > 1 || r.Beta < 0 || r.Beta > 1 {
		t.Fatalf("alpha=%v beta=%v", r.Alpha, r.Beta)
	}
	if r.RwndClamp != 0 || r.SndUna > r.SndNxt || r.VTimeouts != 0 || r.LossEvents != 0 || r.prevCwnd != 0 {
		t.Fatalf("sanitize left hostile fields: %+v", r)
	}
}

func TestRestoreUnknownVCCNameDegradesToDefault(t *testing.T) {
	// A snapshot naming a vCC this build doesn't have (newer fleet) must
	// restore onto the default law, not panic.
	a, ahost, peer := populatedVSwitch(t)
	_, recs, err := decodeSnapshot(a.SaveSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].PolVCC = "bbr2"
		recs[i].VCCName = "bbr2"
	}
	b, _, _ := loneVSwitch(t, DefaultConfig())
	if err := b.RestoreSnapshot(encodeSnapshot(0, recs)); err != nil {
		t.Fatal(err)
	}
	f := b.Table.Get(FlowKey{Src: ahost, Dst: peer, SPort: 10, DPort: 20})
	if f == nil || f.vcc.Name() != "dctcp" {
		t.Fatalf("unknown vCC did not degrade to default")
	}
}
