package core

// Enforcement backends — the pluggable mechanism layer of §3.3.
//
// AC/DC's claim is that congestion control can be *enforced in the middle*;
// the paper's Eq. 1 RWND cut is one mechanism, not the only one. The
// VirtualCC interface (vcc.go) is the congestion *law* — how the virtual
// window moves. A Backend is the enforcement *mechanism* — how the chosen
// window is imposed on the guest. The two compose per flow: any law can run
// under any backend.
//
// Three backends ship:
//
//   - "dctcp-cut" (default): the paper's mechanism, verbatim. ACKs toward
//     the guest have their receive-window field overwritten with the virtual
//     window (§3.3), and egress segments beyond the window are policed. This
//     implementation is the exact code the sender module ran before the
//     backend interface existed; with it selected, output is byte-identical
//     by construction (pinned by TestBackendDctcpCutGoldenIdentical).
//   - "pace": per-flow token-bucket pacing built on netsim.Shaper. The
//     virtual window is converted to a rate (enforced window / smoothed
//     virtual RTT) and egress data is released at that rate; the RWND field
//     is never touched. This is the switch-assisted throttling family
//     (Abdelmoniem & Bensaou, PAPERS.md) realized at the vSwitch.
//   - "adaptive-k": the dynamic-ECN-threshold controller (SDN-controller
//     style, PAPERS.md). Enforcement is the same RWND rewrite + policing as
//     dctcp-cut, but the congestion *decision* adapts: a window only counts
//     as congested once its CE-marked bytes cross a per-flow threshold K,
//     and K tracks measured load (α) — heavy marking halves K toward maximum
//     sensitivity, light marking grows it so stray marks stop costing cuts.
//
// Every Backend method runs under f.mu on the simulation goroutine, at the
// exact points the hardcoded enforcement used to occupy; backends are
// stateless singletons, with per-flow state in the lazily-allocated
// Flow.bes (so the default backend's zero-alloc profile is untouched).
//
// Unknown backend names never error mid-stream: Policy.Sanitized clamps them
// to the default and backend_unknown_total counts the clamp (see
// backendKnown callers). Parse surfaces (CLI flags, scenario specs) reject
// early through ParseBackend, with a near-miss suggestion.

import (
	"fmt"
	"strings"

	"acdc/internal/faults"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Backend is the enforcement mechanism run on behalf of a flow. All methods
// are called with f.mu held, from the datapath (simulation) goroutine.
type Backend interface {
	Name() string
	// Congested decides whether this ACK's feedback constitutes a
	// congestion signal for the virtual CC (Figure 5's "ECN feedback?"
	// branch). totalDelta/markedDelta are the bytes credited from this
	// ACK's PACK/FACK feedback (both 0 without feedback).
	Congested(v *VSwitch, f *Flow, totalDelta, markedDelta uint32) bool
	// OnAck enforces the flow's computed window on an ACK headed to the
	// guest. enforced is enforcedWindow (floor and clamp applied); fbStale
	// reports the feedback-staleness freeze (sendercc.go) — a backend that
	// derives a rate from the window must not raise it on blind ACKs.
	// Called only while enforcement is live (EnforceRwnd, not Disabled,
	// resync complete). Returns whether the RWND field was overwritten.
	OnAck(v *VSwitch, f *Flow, t packet.TCP, enforced int64, fbStale bool) bool
	// OnEgress admits one outgoing data segment (policing, pacing). Called
	// only for non-resyncing, non-Disabled flows, before connection
	// tracking advances. Returning true consumes the packet (dropped, or
	// retained by a pacer queue that has already advanced snd_nxt);
	// returning false passes it to the normal path.
	OnEgress(v *VSwitch, f *Flow, p *packet.Packet, segEnd, plen int64) bool
	// DupAckWindow chooses the window field for vSwitch-synthesized ACKs
	// (dupack generation, SendWindowUpdate). enforcedField is the descaled
	// enforced window the default mechanism would advertise.
	DupAckWindow(v *VSwitch, f *Flow, enforcedField uint16) uint16
	// WindowLimited is the cwnd-validation gauge (sendercc.go): whether the
	// guest actually pressed against this backend's enforcement since the
	// previous ACK, i.e. whether virtual-window growth is earned.
	// maxInflight is the peak guest inflight over that interval. A
	// rewriting backend compares inflight against the virtual window (using
	// it from below, not draining a pre-cut window from above); a pacing
	// backend cannot — the guest's inflight rides its own stack's window,
	// far above the virtual one — so it answers from its token bucket:
	// growth is earned only when the bucket ran dry since the last ACK.
	WindowLimited(v *VSwitch, f *Flow, enforcing bool, maxInflight int64) bool
	// RoundAnchor returns the absolute sequence the next once-per-window
	// event (α update, cut guard) waits for, given the ACK that completed
	// the current round. The law's cadence is "once per window of data";
	// a rewriting backend anchors at snd_nxt, which equals one window ahead
	// because the rewrite bounds inflight to the window. A pacing backend
	// must anchor at ack + one virtual window instead: its guest's inflight
	// (own stack window, pacer backlog, fabric queue) can dwarf the virtual
	// window, and snd_nxt anchoring would stretch rounds by that ratio —
	// cuts arrive late while per-round growth keeps compounding, so the
	// window plateaus at whatever overload the stretched cadence sustains.
	RoundAnchor(v *VSwitch, f *Flow, absAck int64) int64
	// LossIsFabric decides whether a triple-dupack loss event is evidence
	// of fabric loss (Figure 5: α = max_alpha, then cut) or an artifact of
	// the backend's own throttling. A pacer that dropped a segment within
	// the last feedback horizon attributes the dupacks to itself: the guest
	// stack's loss recovery is already the enforcement response, and
	// collapsing the virtual window too locks the flow at the floor (the
	// collapsed rate guarantees the next overshoot drop, which pins α at
	// max_alpha again — a self-sustaining starvation loop).
	LossIsFabric(v *VSwitch, f *Flow) bool
	// SaveState returns the backend's one per-flow scalar for snapshots
	// (pace: pacing rate in bit/s; adaptive-k: current K in bytes).
	SaveState(f *Flow) float64
	// RestoreState seeds the per-flow scalar from a restored snapshot.
	RestoreState(v *VSwitch, f *Flow, state float64)
}

// backendState is the per-flow state of the non-default backends, allocated
// lazily so dctcp-cut flows stay allocation-free.
type backendState struct {
	// pace: the per-flow token-bucket pacer and its virtual RTT estimate.
	// The Shaper is touched only from the simulation goroutine; a flow
	// evicted with packets still queued leaves them to drain onto the wire
	// at the last configured rate (they were already admitted by egress).
	sh         *netsim.Shaper
	srtt       sim.Duration
	probeEnd   int64    // abs seq whose cumulative ack completes the RTT probe (0 = unarmed)
	probeAt    sim.Time // wire-release time of the probe segment
	lastDropAt sim.Time // most recent pacer queue-bound drop (loss attribution)
	throttled  bool     // bucket ran dry since the last ACK (growth gauge)

	// adaptive-k: the dynamic congestion threshold.
	kBytes      int64 // current K; marked bytes in a window below K are tolerated
	kRoundSeq   int64 // f.alphaSeq at the last K adaptation (once per α round)
	kCutSeq     int64 // f.cutSeq at the last accumulator reset
	markedAccum int64 // CE-marked bytes since the last cut

	restored    float64 // snapshot scalar, consumed at first use
	hasRestored bool
}

// beState returns the flow's backend state, allocating on first use. Caller
// holds f.mu.
func (f *Flow) beState() *backendState {
	if f.bes == nil {
		f.bes = &backendState{}
	}
	return f.bes
}

// The backend registry: stateless singletons, resolved by name.
var (
	backendDctcpCut  Backend = dctcpCutBackend{}
	backendPace      Backend = paceBackend{}
	backendAdaptiveK Backend = adaptiveKBackend{}
)

// BackendNames lists the selectable enforcement backends (stable order).
func BackendNames() []string { return []string{DefaultBackend, "pace", "adaptive-k"} }

// DefaultBackend is the backend an empty name resolves to: the paper's own
// enforcement mechanism.
const DefaultBackend = "dctcp-cut"

// backendKnown reports whether name resolves to a backend in this build
// ("" means the default dctcp-cut mechanism and is always known).
func backendKnown(name string) bool {
	switch name {
	case "", "dctcp-cut", "pace", "adaptive-k":
		return true
	}
	return false
}

// newBackend resolves a known backend name ("" = dctcp-cut). Callers must
// have sanitized the name first (backendFor is the counting fail-open path).
func newBackend(name string) Backend {
	switch name {
	case "", "dctcp-cut":
		return backendDctcpCut
	case "pace":
		return backendPace
	case "adaptive-k":
		return backendAdaptiveK
	default:
		panic(fmt.Sprintf("core: unknown enforcement backend %q", name))
	}
}

// backendFor resolves a backend name from a runtime surface (config, policy,
// snapshot). Unknown names fail open to the default mechanism — never an
// error mid-stream — and backend_unknown_total counts the clamp.
func (v *VSwitch) backendFor(name string) Backend {
	if !backendKnown(name) {
		v.Metrics.BackendUnknown.Inc()
		return backendDctcpCut
	}
	return newBackend(name)
}

// ParseBackend validates a backend name from a parse surface (a CLI -backend
// flag, a scenario spec). Unlike the runtime paths, a parse surface can say
// no: unknown names error out early, with a near-miss suggestion when the
// name looks like a typo. The empty string selects the default backend.
func ParseBackend(name string) (string, error) {
	if backendKnown(name) {
		return name, nil
	}
	all := strings.Join(BackendNames(), ", ")
	if s := faults.Nearest(name, BackendNames()); s != "" {
		return "", fmt.Errorf("unknown enforcement backend %q (did you mean %q? backends: %s)", name, s, all)
	}
	return "", fmt.Errorf("unknown enforcement backend %q (backends: %s)", name, all)
}

// ---------------------------------------------------------------------------
// dctcp-cut: the paper's mechanism (RWND rewrite + window policing).
// ---------------------------------------------------------------------------

type dctcpCutBackend struct{}

func (dctcpCutBackend) Name() string { return "dctcp-cut" }

// Congested implements Backend: any CE-marked byte in the feedback marks the
// window congested (Figure 5).
func (dctcpCutBackend) Congested(v *VSwitch, f *Flow, totalDelta, markedDelta uint32) bool {
	return markedDelta > 0
}

// OnAck implements Backend: overwrite the receive-window field with the
// enforced window under the peer's scale, never widening (§3.3).
func (dctcpCutBackend) OnAck(v *VSwitch, f *Flow, t packet.TCP, enforced int64, fbStale bool) bool {
	field := enforced >> f.PeerWScale
	if field == 0 {
		field = 1
	}
	if field > 65535 {
		field = 65535
	}
	if uint16(field) < t.Window() {
		t.SetWindow(uint16(field))
		v.Metrics.RwndRewrites.Inc()
		return true
	}
	v.Metrics.RwndUnchanged.Inc()
	return false
}

// OnEgress implements Backend: §3.3 policing — drop segments beyond the
// allowed window plus slack (the pre-cut window is still honored so a guest
// draining its old window is not punished for the cut).
func (dctcpCutBackend) OnEgress(v *VSwitch, f *Flow, p *packet.Packet, segEnd, plen int64) bool {
	if !v.Cfg.Police || plen <= 0 {
		return false
	}
	allowance := f.CwndBytes
	if f.prevCwndBytes > allowance {
		allowance = f.prevCwndBytes
	}
	slack := v.Cfg.PoliceSlackBytes
	if slack == 0 {
		slack = 2 * int64(f.MSS)
	}
	if segEnd-f.SndUna > int64(allowance)+slack {
		v.Metrics.PolicingDrops.Inc()
		if a := v.Audit; a != nil {
			a.PoliceEvent(v, PoliceEvent{Key: f.Key,
				SegEnd: segEnd, SndUna: f.SndUna,
				Enforced: f.enforcedWindow(v.minRwnd(f)), Slack: slack,
				Resyncing: f.resync != resyncNone, Dropped: true})
		}
		return true
	}
	return false
}

// DupAckWindow implements Backend: synthesized ACKs advertise the enforced
// window, exactly like rewritten real ACKs.
func (dctcpCutBackend) DupAckWindow(v *VSwitch, f *Flow, enforcedField uint16) uint16 {
	return enforcedField
}

// WindowLimited implements Backend: grow only while the flow actually uses
// the window (otherwise an uncongested or guest-limited flow would inflate
// the virtual window arbitrarily, defeating both tracking and policing) and
// is not overshooting it (right after a cut the guest still has the old
// window in flight; crediting that as growth would lift the equilibrium
// above the window the algorithm chose). The overshoot half only applies
// while enforcement is on: in observation mode the guest is not bound by
// the virtual window, and tracking requires growth to follow it upward.
func (dctcpCutBackend) WindowLimited(v *VSwitch, f *Flow, enforcing bool, maxInflight int64) bool {
	limited := float64(maxInflight) >= f.CwndBytes-float64(f.MSS)
	if enforcing {
		limited = limited && float64(maxInflight) <= f.CwndBytes+float64(f.MSS)
	}
	return limited
}

// RoundAnchor implements Backend: snd_nxt — with inflight bounded to the
// window by the rewrite, snd_nxt is one window ahead of the ack.
func (dctcpCutBackend) RoundAnchor(v *VSwitch, f *Flow, absAck int64) int64 {
	return f.SndNxt
}

// LossIsFabric implements Backend: the cut mechanism never consumes data
// segments itself (policing drops are window violations, which the slack
// already absolves), so dupacks mean the fabric lost something.
func (dctcpCutBackend) LossIsFabric(v *VSwitch, f *Flow) bool { return true }

// SaveState implements Backend: the cut mechanism has no per-flow state
// beyond what the flow record already carries.
func (dctcpCutBackend) SaveState(f *Flow) float64 { return 0 }

// RestoreState implements Backend.
func (dctcpCutBackend) RestoreState(v *VSwitch, f *Flow, state float64) {}

// ---------------------------------------------------------------------------
// pace: per-flow token-bucket pacing (no RWND rewrite).
// ---------------------------------------------------------------------------

const (
	// paceInitRTT seeds the virtual RTT estimate before the first measured
	// α round (≈ a few switch hops at datacenter latencies).
	paceInitRTT = 100 * sim.Microsecond
	// paceMinRTT floors RTT samples: a sub-5µs sample is a same-event
	// artifact. paceMaxRTT caps them (an idle gap inside a round is not
	// RTT) and is the drain horizon behind the rate floor — beyond 10ms
	// the guest's own RTO machinery owns the flow anyway.
	paceMinRTT = 5 * sim.Microsecond
	paceMaxRTT = 10 * sim.Millisecond
	// paceGain is the window→rate conversion gain (BBR's probe gain). It
	// must exceed 1, or the estimator deadlocks on its own throttle: at
	// exactly window/srtt the pacer clocks every round at srtt, every
	// sample confirms the estimate, and an overestimated seed never
	// corrects. With gain g a pacer-limited round takes srtt/g, so the
	// EWMA in OnAck decays geometrically until the fabric — not the
	// bucket — is what paces the flow; the marks → α → cut loop absorbs
	// the constant by holding the window g× lower at equilibrium.
	paceGain = 1.25
	// paceSrttWeight is the EWMA weight (new sample counts 1/weight).
	// 4 tracks queue buildup within a few rounds; the simulator's samples
	// are not noisy enough to need RFC 6298's 8.
	paceSrttWeight = 4
	// paceQueueDelay bounds the per-flow pacer backlog in *time* at the
	// current rate; beyond it the guest eats a drop and retransmits, like a
	// shallow-buffered NIC rate limiter. The bound must stay near the
	// fabric RTT, for two reasons: the backlog sits inside the CE feedback
	// loop (a deep queue delays the congestion signal past the point of
	// stability and the fleet sawtooths between an all-marked fabric and an
	// idle one), and it inflates guest inflight, which stretches the
	// sequence-anchored once-per-window cadence of α updates and cuts.
	paceQueueDelay = 200 * sim.Microsecond
	// paceQueueBytes caps the backlog bound from above, and
	// paceQueueMinMSS floors it: an initial-window burst (IW10) must queue
	// rather than drop, or every flow opens with a loss event.
	paceQueueBytes  = 256 << 10
	paceQueueMinMSS = 10
	// paceInitWindowMSS restarts the virtual window for the rate
	// conversion when the pacer first engages. The IW10 the rewriting
	// backends enforce is safe because ACK self-clocking spreads it over a
	// round trip; a token bucket turns window/RTT into an unclocked rate,
	// so a large initial window becomes a multi-gigabit blast before the
	// first feedback arrives — fatal in incast, where the fan-in multiplies
	// it. Pacing therefore re-earns its rate through slow start (the
	// throttled-gated growth doubles the window per round) from a couple of
	// segments, exactly like a fresh transport.
	paceInitWindowMSS = 2
	// paceBurstMSS sizes the token bucket (segments of headroom).
	paceBurstMSS = 2
	// paceMaxRate caps the converted rate so wait-time math never degrades
	// (1 Tb/s is "unshaped" for every fabric this simulator builds).
	paceMaxRate = int64(1e12)
)

type paceBackend struct{}

func (paceBackend) Name() string { return "pace" }

// Congested implements Backend: same CE sensitivity as the paper's
// mechanism — pace changes how the window is imposed, not when it moves.
func (paceBackend) Congested(v *VSwitch, f *Flow, totalDelta, markedDelta uint32) bool {
	return markedDelta > 0
}

// paceSink forwards pacer-released packets onto the wire. They already
// traversed the egress path (feedback/ECT handled at queue time), so they
// bypass the egress hook exactly like vSwitch-generated FACKs. Release is
// also where the RTT probe arms for queued segments: the clock starts when
// the segment actually hits the wire, so the sample excludes the flow's own
// pacer backlog (see paceArmProbeLocked).
type paceSink struct {
	v *VSwitch
	f *Flow
}

func (s paceSink) HandlePacket(p *packet.Packet) {
	s.v.Metrics.PaceReleased.Inc()
	s.f.mu.Lock()
	if bes := s.f.bes; bes != nil && bes.probeEnd == 0 {
		t := p.TCP()
		end := s.f.absSeq(t.Seq(), s.f.SndNxt) + int64(p.PayloadLen())
		paceArmProbeLocked(s.v, s.f, end)
	}
	s.f.mu.Unlock()
	s.v.Host.InjectToWire(p)
}

// paceArmProbeLocked starts a fabric-RTT probe on the segment ending at end:
// the sample completes when the cumulative ack covers it. One probe in
// flight at a time (Karn-style); caller holds f.mu at a wire-release point.
func paceArmProbeLocked(v *VSwitch, f *Flow, end int64) {
	bes := f.beState()
	if bes.probeEnd != 0 || end <= f.SndUna {
		return
	}
	bes.probeEnd = end
	bes.probeAt = v.Sim.Now()
}

// paceInitLocked builds the flow's pacer on first use. Caller holds f.mu.
func paceInitLocked(v *VSwitch, f *Flow) *backendState {
	bes := f.beState()
	if bes.sh == nil {
		bes.srtt = paceInitRTT
		// Slow-start ramp: drop the virtual window to a couple of segments
		// before converting it to a rate (see paceInitWindowMSS).
		if w := float64(paceInitWindowMSS * f.MSS); f.CwndBytes > w {
			f.CwndBytes = w
			if f.CwndBytes < float64(v.minRwnd(f)) {
				f.CwndBytes = float64(v.minRwnd(f))
			}
		}
		rate := paceRate(f.enforcedWindow(v.minRwnd(f)), bes.srtt, v.minRwnd(f))
		if bes.hasRestored && bes.restored > 0 {
			// A restored flow resumes at its checkpointed rate instead of
			// re-deriving from scratch (the window survived the outage too).
			if r := int64(bes.restored); r > 0 && r <= paceMaxRate {
				rate = r
			}
			bes.hasRestored = false
		}
		bes.sh = netsim.NewShaper(v.Sim, rate, paceBurstMSS*f.MSS, paceSink{v, f})
		bes.sh.MaxQueueBytes = paceQueueCap(rate, f.MSS)
	}
	return bes
}

// paceQueueCap sizes the backlog bound for a rate: paceQueueDelay's worth of
// bytes, floored at a small burst and capped at paceQueueBytes.
func paceQueueCap(rate int64, mss int) int {
	b := int(float64(rate) / 8 * paceQueueDelay.Seconds())
	if min := paceQueueMinMSS * mss; b < min {
		b = min
	}
	if b > paceQueueBytes {
		b = paceQueueBytes
	}
	return b
}

// paceRate converts an enforced window into a pacing rate (bit/s), floored
// so a collapsed window still drains at minRwnd per max-RTT.
func paceRate(enforced int64, srtt sim.Duration, minRwnd int64) int64 {
	if srtt <= 0 {
		srtt = paceInitRTT
	}
	rate := int64(paceGain * float64(enforced*8) / srtt.Seconds())
	floor := int64(float64(minRwnd*8) / paceMaxRTT.Seconds())
	if rate < floor {
		rate = floor
	}
	if rate > paceMaxRate {
		rate = paceMaxRate
	}
	return rate
}

// OnAck implements Backend: refresh the rate from the current enforced
// window and the smoothed virtual RTT. The RWND field is never touched. A
// stale-feedback flow (fbStale) keeps its last rate: the CE signal is gone,
// so blind ACKs must not refill the pacer any faster (the growth freeze in
// the sender module holds the window; this holds the rate derivation).
func (paceBackend) OnAck(v *VSwitch, f *Flow, t packet.TCP, enforced int64, fbStale bool) bool {
	bes := paceInitLocked(v, f)
	if !fbStale {
		if bes.probeEnd != 0 && f.SndUna >= bes.probeEnd {
			// The probe segment's ack came back: one wire-release-to-ack
			// sample of the FABRIC RTT (base + switch queueing), excluding
			// time in our own pacer backlog. Both exclusions matter. The
			// estimate is an EWMA that MUST track upward as well as down:
			// fabric queue delay is the stabilizing feedback of the whole
			// conversion — a standing queue stretches the sample, srtt
			// rises, rate = g·W/srtt falls, the queue drains (a min filter
			// remembers one pre-buildup sample forever and keeps converting
			// the floor window into gigabits against a full buffer). And
			// sampling rounds instead of wire time folds the flow's own
			// backlog delay into srtt, making rate ∝ 1/(own backlog): a
			// winner-take-all positive feedback loop where slow flows
			// measure themselves slow (incast collapses bimodally either
			// way, just through different loops).
			sample := v.Sim.Now() - bes.probeAt
			if sample < paceMinRTT {
				sample = paceMinRTT
			}
			if sample > paceMaxRTT {
				sample = paceMaxRTT
			}
			if sample < bes.srtt {
				// Snap down: a release→ack sample can only OVERshoot the
				// fabric RTT (a retransmission hole ahead of the probe
				// delays the cumulative ack — and the hole-filling segment
				// crawls through our own backlog, which at a collapsed rate
				// takes tens of ms), never undershoot it. A single clean
				// probe is therefore ground truth, and believing it
				// immediately is what breaks the starvation loop: inflated
				// srtt → floor rate → slow hole repair → inflated samples.
				bes.srtt = sample
			} else {
				bes.srtt = ((paceSrttWeight-1)*bes.srtt + sample) / paceSrttWeight
			}
			bes.probeEnd = 0
		}
		// Recompute the window rather than trusting the caller's snapshot:
		// on a first-ack init, paceInitLocked just re-seeded CwndBytes below
		// the pre-init value the snapshot was taken from, and converting the
		// stale IW-derived window would be exactly the unclocked blast the
		// re-seed exists to prevent.
		bes.sh.Rate = paceRate(f.enforcedWindow(v.minRwnd(f)), bes.srtt, v.minRwnd(f))
		bes.sh.MaxQueueBytes = paceQueueCap(bes.sh.Rate, f.MSS)
	}
	return false
}

// OnEgress implements Backend: admit the segment through the token bucket.
// Within budget it passes untouched; beyond budget it queues in the pacer
// (connection tracking advances now — the segment WILL go out) and is
// released onto the wire at the paced rate; beyond the queue bound it drops.
func (paceBackend) OnEgress(v *VSwitch, f *Flow, p *packet.Packet, segEnd, plen int64) bool {
	if plen <= 0 || !v.Cfg.EnforceRwnd {
		// Pure FIN/control segments pass; observation mode paces nothing.
		return false
	}
	bes := paceInitLocked(v, f)
	if segEnd <= f.SndNxt {
		// Retransmission (it advances nothing): the hole it fills is what
		// blocks every cumulative ack, while the backlog draining at the
		// collapsed rate sits BEHIND it in sequence space. Pacing it means
		// the repair crawls through our own queue; dropping it (the backlog
		// is fullest exactly when holes exist) sends the guest into RTO
		// backoff — a self-sustaining wedge. Debit the bucket if credit
		// allows and put it on the wire now either way.
		bes.sh.TryConsume(p.WireLen())
		return false
	}
	if bes.sh.TryConsume(p.WireLen()) {
		// Going to the wire right now: a pass-through segment can carry the
		// RTT probe directly.
		paceArmProbeLocked(v, f, segEnd)
		return false
	}
	bes.throttled = true
	if !bes.sh.CanQueue(p.WireLen()) {
		// Backlog bound hit: drop without advancing connection tracking,
		// exactly like a policing drop — the guest retransmits. The drop
		// time feeds LossIsFabric: the dupacks this provokes are ours.
		bes.lastDropAt = v.Sim.Now()
		v.Metrics.PaceDrops.Inc()
		return true
	}
	// The packet is leaving the normal path here, so the egress duties that
	// run after senderEgress (ECT marking) happen at queue time; feedback
	// piggybacking is skipped, like any consumed packet — pure ACKs carry it.
	v.noteSegmentLocked(f, segEnd)
	if v.Cfg.MarkECT {
		if ip := p.IP(); ip.ECN() == packet.NotECT {
			ip.SetECN(packet.ECT0)
			v.Metrics.ECTMarks.Inc()
		}
	}
	bes.sh.Enqueue(p)
	v.Metrics.PaceQueued.Inc()
	return true
}

// DupAckWindow implements Backend: pace never rewrites windows, so
// synthesized ACKs echo the guest's own last advertised window when known.
func (paceBackend) DupAckWindow(v *VSwitch, f *Flow, enforcedField uint16) uint16 {
	if f.lastWndSeen {
		return f.lastWndRaw
	}
	return enforcedField
}

// WindowLimited implements Backend: growth is earned when the token bucket
// was the binding constraint since the last ACK (a segment had to queue or
// drop). Comparing guest inflight against the virtual window — the
// rewriting backends' gauge — is meaningless here, and the stand-in must
// not be "always grow": with cuts paced once per guest window and growth
// credited per ACK, an unconditionally-growing window diverges until the
// rate stops shaping anything. Without enforcement there is no bucket, so
// fall back to the usage half of the inflight gauge for tracking.
func (paceBackend) WindowLimited(v *VSwitch, f *Flow, enforcing bool, maxInflight int64) bool {
	if !enforcing {
		return float64(maxInflight) >= f.CwndBytes-float64(f.MSS)
	}
	bes := f.beState()
	limited := bes.throttled
	bes.throttled = false
	return limited
}

// RoundAnchor implements Backend: one virtual window past the ack, capped
// at snd_nxt (a round cannot complete on data never sent). Anchoring at
// snd_nxt itself would let the guest's unbounded inflight stretch the law's
// cadence — see the interface comment.
func (paceBackend) RoundAnchor(v *VSwitch, f *Flow, absAck int64) int64 {
	anchor := absAck + f.enforcedWindow(v.minRwnd(f))
	if anchor > f.SndNxt {
		anchor = f.SndNxt
	}
	return anchor
}

// LossIsFabric implements Backend: dupacks within a feedback horizon of the
// pacer's own queue-bound drop are attributed to the pacer, not the fabric.
// The horizon is the time for the drop to surface as dupacks at this
// vSwitch: a round trip (plus the backlog the pacer itself adds), padded
// 4×. On an ECN fabric genuine overload surfaces as CE marks — which still
// cut through Congested — so the rare mis-attributed real loss costs one
// delayed reaction, while mis-attributing our own drops to the fabric locks
// the flow at the window floor permanently.
func (paceBackend) LossIsFabric(v *VSwitch, f *Flow) bool {
	bes := f.beState()
	if bes.lastDropAt == 0 {
		return true
	}
	horizon := 4*bes.srtt + paceQueueDelay
	return v.Sim.Now()-bes.lastDropAt > horizon
}

// SaveState implements Backend: checkpoint the pacing rate (bit/s).
func (paceBackend) SaveState(f *Flow) float64 {
	if f.bes != nil && f.bes.sh != nil {
		return float64(f.bes.sh.Rate)
	}
	return 0
}

// RestoreState implements Backend: seed the rate for the pacer's first use.
func (paceBackend) RestoreState(v *VSwitch, f *Flow, state float64) {
	if state > 0 {
		bes := f.beState()
		bes.restored = state
		bes.hasRestored = true
	}
}

// ---------------------------------------------------------------------------
// adaptive-k: dynamic-ECN-threshold congestion decision.
// ---------------------------------------------------------------------------

const (
	// akHighAlpha: above this measured load, K halves toward maximum
	// sensitivity (every marked byte counts, like plain DCTCP).
	akHighAlpha = 0.5
	// akLowAlpha: below this, K grows additively so isolated marks stop
	// costing a multiplicative cut.
	akLowAlpha = 0.05
	// akMaxKMSS caps K (in MSS units); beyond ~2 segments of marked bytes
	// per window the fabric is congested no matter what K says.
	akMaxKMSS = 2
)

// adaptiveKBackend enforces exactly like dctcp-cut (same rewrite, same
// policing — it embeds the same mechanism) but moves the congestion decision
// behind a load-adaptive threshold: a window only counts as congested once
// its CE-marked bytes reach K, and K tracks α once per round.
type adaptiveKBackend struct{ dctcpCutBackend }

func (adaptiveKBackend) Name() string { return "adaptive-k" }

// Congested implements Backend: accumulate marked bytes since the last cut
// and compare against the adaptive threshold.
func (adaptiveKBackend) Congested(v *VSwitch, f *Flow, totalDelta, markedDelta uint32) bool {
	bes := f.beState()
	if bes.kBytes == 0 {
		bes.kBytes = int64(f.MSS)
		if bes.hasRestored && bes.restored >= 1 {
			if k := int64(bes.restored); k >= 1 && k <= int64(akMaxKMSS*f.MSS) {
				bes.kBytes = k
			}
			bes.hasRestored = false
		}
		bes.kRoundSeq = f.alphaSeq
		bes.kCutSeq = f.cutSeq
	}
	if f.alphaSeq != bes.kRoundSeq {
		// Once per α round, adapt K to the measured load.
		bes.kRoundSeq = f.alphaSeq
		switch {
		case f.Alpha > akHighAlpha:
			if bes.kBytes > 1 {
				bes.kBytes /= 2
				if bes.kBytes < 1 {
					bes.kBytes = 1
				}
				v.Metrics.AdaptiveKAdjusts.Inc()
			}
		case f.Alpha < akLowAlpha:
			if max := int64(akMaxKMSS * f.MSS); bes.kBytes < max {
				bes.kBytes += int64(f.MSS / 4)
				if bes.kBytes > max {
					bes.kBytes = max
				}
				v.Metrics.AdaptiveKAdjusts.Inc()
			}
		}
	}
	if bes.kCutSeq != f.cutSeq {
		// A cut fired (cutSeq advanced): marked bytes start over.
		bes.kCutSeq = f.cutSeq
		bes.markedAccum = 0
	}
	bes.markedAccum += int64(markedDelta)
	return markedDelta > 0 && bes.markedAccum >= bes.kBytes
}

// SaveState implements Backend: checkpoint the current threshold K.
func (adaptiveKBackend) SaveState(f *Flow) float64 {
	if f.bes != nil && f.bes.kBytes > 0 {
		return float64(f.bes.kBytes)
	}
	return 0
}

// RestoreState implements Backend.
func (adaptiveKBackend) RestoreState(v *VSwitch, f *Flow, state float64) {
	if state >= 1 {
		bes := f.beState()
		bes.restored = state
		bes.hasRestored = true
	}
}
