package core

import (
	"testing"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

func tbKey(i int) FlowKey {
	return FlowKey{
		Src:   packet.MakeAddr(10, 0, byte(i>>8), byte(i)),
		Dst:   packet.MakeAddr(10, 1, 0, 1),
		SPort: uint16(1000 + i),
		DPort: 80,
	}
}

func tbTable(n int) *Table {
	tab := NewTable()
	for i := 0; i < n; i++ {
		k := tbKey(i)
		tab.GetOrCreate(k, func() *Flow { return &Flow{Key: k} })
	}
	return tab
}

// TestGetBatchMatchesGet: for a key mix covering every shape the batch
// datapath produces — present, absent, zero, and trains of duplicates at the
// fwd/rev stride (including duplicates of absent keys) — GetBatch must return
// exactly what per-key Get returns.
func TestGetBatchMatchesGet(t *testing.T) {
	tab := tbTable(50)
	var keys []FlowKey
	// Present and absent singles, with zero keys interleaved (non-TCP slots).
	for i := 0; i < 8; i++ {
		keys = append(keys, tbKey(i), tbKey(100+i)) // present, absent
		if i%3 == 0 {
			keys = append(keys, FlowKey{}, FlowKey{})
		}
	}
	// Trains: the [fwd, rev, fwd, rev, ...] layout of a per-flow packet run.
	// tbKey(3) is present, its reverse absent; tbKey(200) is absent entirely;
	// six repetitions exercise dup-of-dup propagation down the train.
	for _, base := range []FlowKey{tbKey(3), tbKey(200)} {
		for r := 0; r < 6; r++ {
			keys = append(keys, base, base.Reverse())
		}
	}
	// A direction flip mid-train breaks the stride: rev at an even offset.
	keys = append(keys, tbKey(5).Reverse(), tbKey(5), tbKey(5).Reverse(), tbKey(5))

	dst := make([]*Flow, len(keys))
	var sc lookupScratch
	tab.GetBatch(keys, dst, &sc)
	for i, k := range keys {
		if want := tab.Get(k); dst[i] != want {
			t.Fatalf("key %d (%+v): GetBatch %p, Get %p", i, k, dst[i], want)
		}
	}
}

// TestGetBatchScratchReuse: one scratch across growing and shrinking batches
// must not leak state between calls.
func TestGetBatchScratchReuse(t *testing.T) {
	tab := tbTable(64)
	var sc lookupScratch
	for _, n := range []int{16, 64, 2, 31, 1, 64} {
		keys := make([]FlowKey, n)
		for i := range keys {
			keys[i] = tbKey((i * 7) % 96) // mixes present (<64) and absent keys
		}
		dst := make([]*Flow, n)
		tab.GetBatch(keys, dst, &sc)
		for i, k := range keys {
			if want := tab.Get(k); dst[i] != want {
				t.Fatalf("n=%d key %d: GetBatch %p, Get %p", n, i, dst[i], want)
			}
		}
	}
}

// TestLenMatchesShardStats: the O(1) size counter must agree with a full
// shard scan through inserts, deletes, sweeps, and clears.
func TestLenMatchesShardStats(t *testing.T) {
	tab := NewTable()
	check := func(stage string) {
		t.Helper()
		total, maxShard := tab.ShardStats()
		if tab.Len() != total {
			t.Fatalf("%s: Len %d != ShardStats total %d", stage, tab.Len(), total)
		}
		if maxShard > total {
			t.Fatalf("%s: max shard %d > total %d", stage, maxShard, total)
		}
	}
	for i := 0; i < 500; i++ {
		k := tbKey(i)
		tab.GetOrCreate(k, func() *Flow { return &Flow{Key: k} })
	}
	check("insert")
	for i := 0; i < 500; i += 3 {
		tab.Delete(tbKey(i))
	}
	tab.Delete(tbKey(9999)) // absent: must not drift the counter
	check("delete")
	n := 0
	tab.Sweep(func(*Flow) bool { n++; return n%2 == 0 })
	check("sweep")
	tab.SweepRange(10, 30, func(*Flow) bool { return false })
	check("sweep-range")
	tab.Clear()
	check("clear")
	if tab.Len() != 0 {
		t.Fatalf("Len %d after Clear", tab.Len())
	}
}

// TestPressureSweepRateLimited: with the table full of provably live flows, a
// storm of new keys must pay for one barren eviction scan, then fail open on
// the cooldown instead of re-scanning per packet — and must never displace
// the live residents. Once the residents go idle past GCInterval, the next
// create re-scans, evicts, and succeeds.
func TestPressureSweepRateLimited(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFlows = 8
	cfg.GCInterval = 100 * sim.Millisecond
	cfg.SweepInterval = 1000 * sim.Second // keep the timed sweep out of the way
	cfg.IdleTimeout = 1000 * sim.Second
	v, host, s := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)

	key := func(i int) FlowKey {
		return FlowKey{Src: host.Addr, Dst: peer, SPort: uint16(100 + i), DPort: 200}
	}
	for i := 0; i < cfg.MaxFlows; i++ {
		if v.flowFor(key(i)) == nil {
			t.Fatalf("flow %d not created below capacity", i)
		}
	}

	const storm = 100
	for i := 0; i < storm; i++ {
		if f := v.flowFor(key(1000 + i)); f != nil {
			t.Fatalf("create %d tracked past MaxFlows", i)
		}
	}
	st := v.Stats()
	if st.PressureSweeps != 1 {
		t.Fatalf("PressureSweeps %d, want 1 (cooldown must rate-limit barren scans)", st.PressureSweeps)
	}
	if st.FlowTableFull != storm {
		t.Fatalf("FlowTableFull %d, want %d (every miss counted)", st.FlowTableFull, storm)
	}
	if st.FailOpen != storm {
		t.Fatalf("FailOpen %d, want %d", st.FailOpen, storm)
	}
	if v.Table.Len() != cfg.MaxFlows {
		t.Fatalf("table len %d, want %d", v.Table.Len(), cfg.MaxFlows)
	}
	for i := 0; i < cfg.MaxFlows; i++ {
		if v.Table.Get(key(i)) == nil {
			t.Fatalf("live resident %d evicted by pressure", i)
		}
	}

	// Residents now idle past GCInterval: the cooldown has expired, so the
	// next create re-scans, evicts, and tracks the new flow.
	s.RunFor(2 * cfg.GCInterval)
	if f := v.flowFor(key(5000)); f == nil {
		t.Fatal("create failed open though every resident was idle-evictable")
	}
	st = v.Stats()
	if st.PressureSweeps != 2 {
		t.Fatalf("PressureSweeps %d after idle eviction, want 2", st.PressureSweeps)
	}
	if st.FlowsEvicted == 0 {
		t.Fatal("FlowsEvicted not counted")
	}
	if v.Table.Len() > cfg.MaxFlows {
		t.Fatalf("table len %d exceeds MaxFlows after eviction", v.Table.Len())
	}
}

// TestPressureSweepCursorSpreads: consecutive pressure scans resume from the
// round-robin cursor instead of rescanning shard 0, so eviction cost spreads
// across the table. Observable effect: two scans with evictable entries in
// different shards both stop early (each frees something), and together they
// free entries from more than one shard.
func TestPressureSweepCursorSpreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFlows = 4
	cfg.GCInterval = 100 * sim.Millisecond
	cfg.SweepInterval = 1000 * sim.Second
	cfg.IdleTimeout = 1000 * sim.Second
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Pick resident keys that provably span several shards, so a scan that
	// stopped at its first shard could not have evicted them all.
	var resident []FlowKey
	seen := map[int]bool{}
	for port := uint16(100); len(resident) < cfg.MaxFlows; port++ {
		k := FlowKey{Src: host.Addr, Dst: peer, SPort: port, DPort: 200}
		if s := shardIndex(k); !seen[s] {
			seen[s] = true
			resident = append(resident, k)
		}
	}
	// Fill to capacity and close every resident (closed = always evictable).
	for i, k := range resident {
		f := v.flowFor(k)
		if f == nil {
			t.Fatalf("flow %d not created", i)
		}
		f.mu.Lock()
		f.finFwd, f.finRev = true, true
		f.mu.Unlock()
	}
	// Each create under pressure scans from the cursor and stops at the first
	// shard that frees anything; the cursor then resumes past it, so
	// successive scans free entries from distinct shards (4 rounds cannot
	// wrap 64 shards). Every create must succeed — something closed is always
	// evictable — and the bound must hold throughout.
	closed := append([]FlowKey(nil), resident...)
	for i := 0; i < cfg.MaxFlows; i++ {
		k := FlowKey{Src: host.Addr, Dst: peer, SPort: uint16(9000 + i), DPort: 200}
		f := v.flowFor(k)
		if f == nil {
			t.Fatalf("create %d failed open with closed flows evictable", i)
		}
		if v.Table.Len() > cfg.MaxFlows {
			t.Fatalf("table len %d exceeds MaxFlows mid-storm", v.Table.Len())
		}
		f.mu.Lock()
		f.finFwd, f.finRev = true, true
		f.mu.Unlock()
		closed = append(closed, k)
	}
	evictedShards := map[int]bool{}
	evicted := 0
	for _, k := range closed {
		if v.Table.Get(k) == nil {
			evicted++
			evictedShards[shardIndex(k)] = true
		}
	}
	if evicted < cfg.MaxFlows {
		t.Fatalf("%d entries evicted, want at least %d", evicted, cfg.MaxFlows)
	}
	if len(evictedShards) < 2 {
		t.Fatalf("evictions all came from one shard; cursor is not advancing (shards: %v)", evictedShards)
	}
	if st := v.Stats(); st.PressureSweeps == 0 {
		t.Fatal("no pressure sweeps recorded")
	}
}

// TestUpdateTableGauges: the control-plane shape snapshot must agree with the
// table and register its gauges in the metrics registry.
func TestUpdateTableGauges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMetrics = false
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	for i := 0; i < 10; i++ {
		v.flowFor(FlowKey{Src: host.Addr, Dst: peer, SPort: uint16(100 + i), DPort: 200})
	}
	shape := v.UpdateTableGauges()
	if shape.Flows != 10 || shape.Flows != v.Table.Len() {
		t.Fatalf("shape.Flows %d, table len %d, want 10", shape.Flows, v.Table.Len())
	}
	if shape.ShardMax < 1 || shape.ShardMax > 10 {
		t.Fatalf("shape.ShardMax %d out of range", shape.ShardMax)
	}
	if shape.ImbalancePermille < 1000 {
		t.Fatalf("imbalance %d below the balanced floor of 1000", shape.ImbalancePermille)
	}
	snap := v.Metrics.Snapshot()
	if got := snap.Gauge("flow_table_occupancy"); got != 10 {
		t.Fatalf("flow_table_occupancy gauge %d, want 10", got)
	}
	if got := snap.Gauge("flow_table_shard_max"); got != int64(shape.ShardMax) {
		t.Fatalf("flow_table_shard_max gauge %d, want %d", got, shape.ShardMax)
	}
	if got := snap.Gauge("flow_table_shard_imbalance_permille"); got != shape.ImbalancePermille {
		t.Fatalf("imbalance gauge %d, want %d", got, shape.ImbalancePermille)
	}
}
