package core

import "fmt"

// VirtualCC is the congestion-control law the vSwitch runs on behalf of the
// guest. Implementations mutate f.CwndBytes/f.SsthreshBytes; the surrounding
// machinery (α accounting, once-per-window guards, dupack detection,
// inactivity timers) lives in the sender module and calls these hooks.
type VirtualCC interface {
	Name() string
	Init(f *Flow)
	// OnAck runs for every ACK that advances snd_una; ackedBytes is the
	// newly acknowledged payload, congested reports whether this window has
	// seen ECN feedback (used by algorithms that cut on ECN).
	OnAck(f *Flow, ackedBytes int64)
	// CutFactor returns the multiplicative-decrease factor in (0,1] applied
	// at most once per window when congestion (ECN or loss) is detected.
	CutFactor(f *Flow, loss bool) float64
	// OnTimeout handles the inactivity (virtual RTO) event.
	OnTimeout(f *Flow)
}

// vccKnown reports whether name resolves to a virtual CC in this build
// ("" means the vSwitch default and is always known).
func vccKnown(name string) bool {
	switch name {
	case "", "dctcp", "reno":
		return true
	}
	return false
}

// NewVCC constructs a virtual CC by name ("dctcp" or "reno").
func NewVCC(name string) VirtualCC {
	switch name {
	case "", "dctcp":
		return &VDCTCP{}
	case "reno":
		return &VReno{}
	default:
		panic(fmt.Sprintf("core: unknown virtual congestion control %q", name))
	}
}

// VDCTCP is the paper's vSwitch DCTCP (Figure 5) with the β priority
// extension (Equation 1). α itself is maintained by the sender module (it
// needs PACK feedback plumbing); this type supplies growth and cut laws.
type VDCTCP struct{}

// Name implements VirtualCC.
func (*VDCTCP) Name() string { return "dctcp" }

// Init implements VirtualCC.
func (*VDCTCP) Init(f *Flow) {}

// OnAck implements VirtualCC: tcp_cong_avoid per Figure 5 — New Reno growth
// in byte units.
func (*VDCTCP) OnAck(f *Flow, acked int64) {
	renoGrowBytes(f, acked)
}

// CutFactor implements VirtualCC: Equation 1. With β=1 this is DCTCP's
// 1 − α/2; with β=0 the window backs off by the full α. On loss, α is
// pinned to max_alpha by the caller before the cut.
func (*VDCTCP) CutFactor(f *Flow, loss bool) float64 {
	beta := f.Policy.Beta
	factor := 1 - (f.Alpha - f.Alpha*beta/2)
	if factor < 0 {
		factor = 0
	}
	return factor
}

// OnTimeout implements VirtualCC: collapse to one MSS and slow-start.
func (*VDCTCP) OnTimeout(f *Flow) {
	f.SsthreshBytes = f.CwndBytes / 2
	if f.SsthreshBytes < float64(2*f.MSS) {
		f.SsthreshBytes = float64(2 * f.MSS)
	}
	f.CwndBytes = float64(f.MSS)
}

// VReno is a loss/ECN-halving virtual CC, demonstrating per-flow algorithm
// assignment (§3.4: e.g. WAN flows on a different law than DC flows).
type VReno struct{}

// Name implements VirtualCC.
func (*VReno) Name() string { return "reno" }

// Init implements VirtualCC.
func (*VReno) Init(f *Flow) {}

// OnAck implements VirtualCC.
func (*VReno) OnAck(f *Flow, acked int64) { renoGrowBytes(f, acked) }

// CutFactor implements VirtualCC: classic halving regardless of α.
func (*VReno) CutFactor(f *Flow, loss bool) float64 { return 0.5 }

// OnTimeout implements VirtualCC.
func (*VReno) OnTimeout(f *Flow) {
	f.SsthreshBytes = f.CwndBytes / 2
	if f.SsthreshBytes < float64(2*f.MSS) {
		f.SsthreshBytes = float64(2 * f.MSS)
	}
	f.CwndBytes = float64(f.MSS)
}

// renoGrowBytes is slow start + congestion avoidance in byte units.
func renoGrowBytes(f *Flow, acked int64) {
	if f.CwndBytes < f.SsthreshBytes {
		room := f.SsthreshBytes - f.CwndBytes
		grow := float64(acked)
		if grow > room {
			f.CwndBytes += room
			caGrowBytes(f, grow-room)
			return
		}
		f.CwndBytes += grow
		return
	}
	caGrowBytes(f, float64(acked))
}

func caGrowBytes(f *Flow, acked float64) {
	if f.CwndBytes <= 0 {
		f.CwndBytes = float64(f.MSS)
	}
	f.CwndBytes += float64(f.MSS) * acked / f.CwndBytes
}
