package core

import (
	"strings"
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// --- name resolution: parse surfaces say no, runtime surfaces fail open ---

func TestParseBackend(t *testing.T) {
	for _, ok := range []string{"", "dctcp-cut", "pace", "adaptive-k"} {
		if got, err := ParseBackend(ok); err != nil || got != ok {
			t.Errorf("ParseBackend(%q) = %q, %v; want it accepted verbatim", ok, got, err)
		}
	}
	_, err := ParseBackend("pase")
	if err == nil || !strings.Contains(err.Error(), `did you mean "pace"`) {
		t.Errorf("ParseBackend(\"pase\") error %v, want a near-miss suggestion", err)
	}
	_, err = ParseBackend("warp-speed")
	if err == nil || !strings.Contains(err.Error(), "dctcp-cut, pace, adaptive-k") {
		t.Errorf("ParseBackend(\"warp-speed\") error %v, want the backend list", err)
	}
}

// TestUnknownBackendFailsOpen covers every runtime install path: an unknown
// backend name must never error mid-stream — each clamps to the default
// mechanism and counts backend_unknown_total.
func TestUnknownBackendFailsOpen(t *testing.T) {
	peer := packet.MakeAddr(10, 0, 0, 2)
	key := func(host *netsim.Host) FlowKey {
		return FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200}
	}

	t.Run("config", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Backend = "warp-speed"
		v, host, _ := loneVSwitch(t, cfg)
		v.Egress(dataPkt(host.Addr, peer, 100, 200, 5000, 1000))
		f := v.Table.Get(key(host))
		if f == nil || f.be.Name() != DefaultBackend {
			t.Fatalf("flow backend %v, want fail-open to %s", f, DefaultBackend)
		}
		if n := v.Stats().BackendUnknown; n != 1 {
			t.Fatalf("backend_unknown_total = %d, want 1 (counted once at attach)", n)
		}
	})

	t.Run("flow policy callback", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.FlowPolicy = func(FlowKey) Policy { return Policy{Beta: 1, Backend: "warp-speed"} }
		v, host, _ := loneVSwitch(t, cfg)
		v.Egress(dataPkt(host.Addr, peer, 100, 200, 5000, 1000))
		f := v.Table.Get(key(host))
		if f == nil || f.be.Name() != DefaultBackend {
			t.Fatalf("flow backend %v, want fail-open to %s", f, DefaultBackend)
		}
		if f.Policy.Backend != "" {
			t.Fatalf("installed Policy.Backend %q, want clamped to default", f.Policy.Backend)
		}
		if n := v.Stats().BackendUnknown; n == 0 {
			t.Fatal("backend_unknown_total = 0, want the clamp counted")
		}
	})

	t.Run("live install", func(t *testing.T) {
		v, host, _ := loneVSwitch(t, DefaultConfig())
		installed, err := v.InstallPolicy(key(host), Policy{Beta: 1, Backend: "warp-speed"})
		if err != nil {
			t.Fatalf("InstallPolicy must not reject an unknown backend mid-stream: %v", err)
		}
		if installed.Backend != "" {
			t.Fatalf("installed Policy.Backend %q, want clamped to default", installed.Backend)
		}
		if n := v.Stats().BackendUnknown; n == 0 {
			t.Fatal("backend_unknown_total = 0, want the clamp counted")
		}
	})
}

// TestPolicyBackendOverridesConfig: Policy.Backend selects the flow's
// mechanism over the vSwitch-wide default.
func TestPolicyBackendOverridesConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowPolicy = func(FlowKey) Policy { return Policy{Beta: 1, Backend: "pace"} }
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 100, 200, 5000, 1000))
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
	if f == nil || f.be.Name() != "pace" {
		t.Fatalf("flow backend %v, want pace from Policy.Backend", f)
	}
}

// syntheticFlow builds a post-handshake flow ready for processFeedbackAndAck
// (the TestSenderCCInvariantsProperty pattern), bypassing resync.
func syntheticFlow(v *VSwitch, host *netsim.Host) *Flow {
	key := FlowKey{Src: host.Addr, Dst: packet.MakeAddr(10, 0, 0, 2), SPort: 1, DPort: 2}
	f := v.newFlow(key)
	f.issValid = true
	f.SndUna, f.SndNxt = 1, 1
	f.alphaSeq = 1
	f.WScaleKnown = true
	f.PeerWScale = 7
	return f
}

func feedbackAck(f *Flow, ackTo int64, wnd uint16) *packet.Packet {
	return packet.Build(f.Key.Dst, f.Key.Src, packet.NotECT, packet.TCPFields{
		SrcPort: f.Key.DPort, DstPort: f.Key.SPort,
		Seq: 777, Ack: f.iss + uint32(ackTo),
		Flags: packet.FlagACK, Window: wnd,
	}, 0)
}

// TestPaceFbStaleFreezesRate: once the peer's feedback goes quiet for a
// virtual timeout, blind ACKs must not refresh the pacer's rate — the CE
// signal is gone, so the last safe rate holds (the sender module freezes the
// window; this pins the conversion, PR 7's freeze extended to pace).
func TestPaceFbStaleFreezesRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "pace"
	v, host, s := loneVSwitch(t, cfg)
	f := syntheticFlow(v, host)
	// Move off t=0: lastFeedbackAt==0 doubles as the "never heard feedback"
	// sentinel, so feedback stamped at the epoch can never go stale.
	s.RunFor(sim.Millisecond)

	// One feedback-carrying ACK initializes the pacer and sets a rate.
	f.SndNxt += 10_000
	ack := feedbackAck(f, 5_000, 65535)
	v.processFeedbackAndAck(f, ack, ack.TCP(), packet.PACKInfo{TotalBytes: 10_000}, true)
	f.mu.Lock()
	if f.bes == nil || f.bes.sh == nil {
		f.mu.Unlock()
		t.Fatal("pace backend never built its token bucket")
	}
	rate0 := f.bes.sh.Rate
	// Double the virtual window: a live refresh would raise the rate.
	f.CwndBytes *= 2
	f.mu.Unlock()

	// Control: with fresh feedback, the refresh tracks the window.
	ack = feedbackAck(f, 6_000, 65535)
	v.processFeedbackAndAck(f, ack, ack.TCP(), packet.PACKInfo{TotalBytes: 10_000}, true)
	f.mu.Lock()
	rate1 := f.bes.sh.Rate
	f.mu.Unlock()
	if rate1 <= rate0 {
		t.Fatalf("live refresh did not track the doubled window: %d → %d bit/s", rate0, rate1)
	}

	// Feedback goes quiet past the virtual timeout: blind ACKs arrive, the
	// window is (artificially) doubled again — the rate must hold.
	s.RunFor(3 * v.Cfg.VTimeout)
	f.mu.Lock()
	f.CwndBytes *= 2
	f.mu.Unlock()
	ack = feedbackAck(f, 7_000, 65535)
	v.processFeedbackAndAck(f, ack, ack.TCP(), packet.PACKInfo{}, false)
	f.mu.Lock()
	rate2 := f.bes.sh.Rate
	f.mu.Unlock()
	if rate2 != rate1 {
		t.Fatalf("stale-feedback ACK refreshed the pacer rate: %d → %d bit/s", rate1, rate2)
	}
}

// TestPolicyDisableHonoredByEveryBackend: a Disable flow is observation-only
// under all three mechanisms — no RWND rewrites, no policing drops, no pacer
// interception — while traffic still flows.
func TestPolicyDisableHonoredByEveryBackend(t *testing.T) {
	for _, name := range BackendNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Backend = name
			cfg.FlowPolicy = func(FlowKey) Policy {
				p := DefaultPolicy()
				p.Disable = true
				return p
			}
			b := newBench(t, 2, cubicGuest(), &cfg, redK(), 10e9)
			_, srvp := b.longFlow(t, 0, 1)
			b.s.RunFor(30 * sim.Millisecond)
			if srv := *srvp; srv == nil || srv.Delivered == 0 {
				t.Fatal("no data flowed for a Disable flow")
			}
			st := b.acdc[0].Stats()
			if st.RwndRewrites != 0 {
				t.Fatalf("%d RWND rewrites on a Disable flow", st.RwndRewrites)
			}
			if st.PolicingDrops != 0 {
				t.Fatalf("%d policing drops on a Disable flow", st.PolicingDrops)
			}
			if st.PaceQueued != 0 || st.PaceDrops != 0 {
				t.Fatalf("pacer touched a Disable flow: queued=%d dropped=%d",
					st.PaceQueued, st.PaceDrops)
			}
		})
	}
}

// --- per-backend mechanism units ---

// TestDctcpCutWindowLimitedOvershootGate: the rewrite backends gate growth on
// peak inflight pressing against — but not overshooting — the virtual window.
func TestDctcpCutWindowLimitedOvershootGate(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	f := syntheticFlow(v, host)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.CwndBytes = 50_000
	be := f.be
	if !be.WindowLimited(v, f, true, 50_000) {
		t.Error("inflight at the window must count as limited")
	}
	if be.WindowLimited(v, f, true, 50_000+2*int64(f.MSS)) {
		t.Error("overshooting inflight must not earn growth while enforcing")
	}
	if !be.WindowLimited(v, f, false, 50_000+2*int64(f.MSS)) {
		t.Error("observation mode must not apply the overshoot gate")
	}
	if be.WindowLimited(v, f, true, 1000) {
		t.Error("an idle window must not earn growth")
	}
}

// TestPaceWindowLimitedThrottleFlag: pace earns growth from its token bucket
// running dry, not from inflight (which the guest, not pace, bounds).
func TestPaceWindowLimitedThrottleFlag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "pace"
	v, host, _ := loneVSwitch(t, cfg)
	f := syntheticFlow(v, host)
	f.mu.Lock()
	defer f.mu.Unlock()
	bes := f.beState()
	bes.throttled = true
	if !f.be.WindowLimited(v, f, true, 0) {
		t.Error("a throttled interval must earn growth")
	}
	if f.be.WindowLimited(v, f, true, 0) {
		t.Error("the throttled flag must reset after one reading")
	}
}

// TestPaceRoundAnchorBounded: pace anchors α/cut rounds one virtual window
// past the ack — never at snd_nxt, where the guest's unbounded inflight
// stretches the law's once-per-window cadence by the queue depth.
func TestPaceRoundAnchorBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "pace"
	v, host, _ := loneVSwitch(t, cfg)
	f := syntheticFlow(v, host)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.CwndBytes = 20_000
	f.SndUna, f.SndNxt = 100_000, 900_000 // 800 KB of guest inflight
	w := f.enforcedWindow(v.minRwnd(f))
	if got := f.be.RoundAnchor(v, f, 100_000); got != 100_000+w {
		t.Errorf("pace anchor %d, want ack+window = %d", got, 100_000+w)
	}
	// Never beyond what was actually sent.
	f.SndNxt = 100_000 + w/2
	if got := f.be.RoundAnchor(v, f, 100_000); got != f.SndNxt {
		t.Errorf("pace anchor %d beyond snd_nxt %d", got, f.SndNxt)
	}
	// dctcp-cut keeps the paper's anchor byte-identically.
	g := syntheticFlow(v, host)
	g.Key.DPort = 3
	g.mu.Lock()
	defer g.mu.Unlock()
	g.SndUna, g.SndNxt = 100_000, 900_000
	if got := (dctcpCutBackend{}).RoundAnchor(v, g, 100_000); got != g.SndNxt {
		t.Errorf("dctcp-cut anchor %d, want snd_nxt %d", got, g.SndNxt)
	}
}

// TestPaceLossAttributionHorizon: dupacks within a feedback horizon of a
// pacer queue-bound drop are the pacer's own doing and must not collapse the
// virtual window; fabric loss outside the horizon still must.
func TestPaceLossAttributionHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "pace"
	v, host, s := loneVSwitch(t, cfg)
	s.RunFor(sim.Millisecond) // move off t=0 (the "never dropped" sentinel)
	f := syntheticFlow(v, host)
	f.mu.Lock()
	defer f.mu.Unlock()
	bes := f.beState()
	bes.srtt = 100 * sim.Microsecond
	if !f.be.LossIsFabric(v, f) {
		t.Error("with no pacer drops ever, loss must be attributed to the fabric")
	}
	bes.lastDropAt = s.Now()
	if f.be.LossIsFabric(v, f) {
		t.Error("loss right after a pacer drop must be attributed to the pacer")
	}
	bes.lastDropAt = s.Now() - sim.Time(20*sim.Millisecond)
	if !f.be.LossIsFabric(v, f) {
		t.Error("loss far outside the drop horizon must be attributed to the fabric")
	}
}

// TestAdaptiveKThreshold: marked bytes below K are tolerated, K halves under
// sustained load and grows back when the fabric is quiet.
func TestAdaptiveKThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "adaptive-k"
	v, host, _ := loneVSwitch(t, cfg)
	f := syntheticFlow(v, host)
	f.mu.Lock()
	defer f.mu.Unlock()
	be := f.be
	mss := int64(f.MSS)

	if be.Congested(v, f, 10_000, uint32(mss/4)) {
		t.Error("marked bytes below K must not count as congestion")
	}
	if !be.Congested(v, f, 10_000, uint32(mss)) {
		t.Error("accumulated marked bytes at K must count as congestion")
	}
	k0 := f.bes.kBytes
	// High measured load across an α-round boundary halves K...
	f.Alpha = 0.9
	f.alphaSeq++
	be.Congested(v, f, 1000, 0)
	if f.bes.kBytes >= k0 {
		t.Errorf("K did not shrink under α=0.9: %d → %d", k0, f.bes.kBytes)
	}
	// ...and a quiet fabric grows it back.
	low := f.bes.kBytes
	f.Alpha = 0.01
	f.alphaSeq++
	be.Congested(v, f, 1000, 0)
	if f.bes.kBytes <= low {
		t.Errorf("K did not recover under α=0.01: %d → %d", low, f.bes.kBytes)
	}
}
