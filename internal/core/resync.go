package core

// Mid-flow resynchronization (the warm-restart companion to snapshot.go).
//
// A flow the vSwitch adopts without having observed its handshake — picked up
// mid-stream after a cold restart, or restored from a snapshot whose state
// may lag the wire — cannot be trusted for enforcement: the window scale may
// be unknown, snd_una/snd_nxt may be behind packets that were in flight
// during the outage, and the feedback baseline (lastTotal/lastMarked) may be
// unanchored relative to the peer's cumulative counters. Acting on that
// state could shrink the guest's window far below what the algorithm would
// have chosen, or police away conforming traffic.
//
// Such flows therefore run a small explicit state machine:
//
//	resyncNone ──adopt/restore──▶ resyncAwaitFeedback
//	resyncAwaitFeedback ──first PACK/FACK──▶ resyncAwaitRound
//	resyncAwaitRound ──feedback ACK covering resyncSeq──▶ resyncNone
//
// While the state is not resyncNone the flow is in conservative mode: the
// RWND field is never rewritten (the guest keeps its own advertised window),
// policing is disabled, but ECT marking, ECN stripping, feedback generation
// and connection tracking all stay on. The first PACK/FACK after adoption
// only re-baselines the cumulative feedback counters (no delta is credited —
// the peer's totals are unanchored relative to ours); the machine then waits
// until a later feedback-carrying ACK covers everything sent since that
// baseline (one clean round). Only then does enforcement resume, and
// flows_resynced_total counts the completed recovery.
//
// A flow whose peer never produces AC/DC feedback (a non-AC/DC peer, or a
// one-sided deployment) stays in conservative mode indefinitely — without
// feedback the virtual DCTCP loop has no congestion signal, so passthrough
// is the correct degradation, and it is exactly what a plain vSwitch does.

// resyncState is the per-flow position in the resynchronization machine.
type resyncState uint8

const (
	// resyncNone: normal operation; enforcement and policing are live.
	resyncNone resyncState = iota
	// resyncAwaitFeedback: adopted without a handshake (mid-stream pickup or
	// snapshot restore); waiting for the first PACK/FACK to re-anchor the
	// feedback baseline.
	resyncAwaitFeedback
	// resyncAwaitRound: baseline re-anchored; waiting for a feedback-carrying
	// ACK to cover resyncSeq (one clean round) before enforcing again.
	resyncAwaitRound
)

// String names the state for diagnostics and tests.
func (s resyncState) String() string {
	switch s {
	case resyncNone:
		return "none"
	case resyncAwaitFeedback:
		return "await-feedback"
	case resyncAwaitRound:
		return "await-round"
	default:
		return "invalid"
	}
}

// enterResyncLocked puts a flow into conservative mode. Caller holds f.mu.
// Idempotent: a flow already resynchronizing keeps its progress.
func (f *Flow) enterResyncLocked() {
	if f.resync != resyncNone {
		return
	}
	f.resync = resyncAwaitFeedback
	f.resyncSeq = 0
}

// resyncAdvanceLocked runs one transition of the machine for an ACK carrying
// (or not carrying) feedback, after absolute-ack resolution. Caller holds
// f.mu. At most one transition fires per ACK, so completing a resync takes at
// least two feedback events — a genuine round, never a single packet.
func (v *VSwitch) resyncAdvanceLocked(f *Flow, haveFeedback bool, absAck int64) {
	if !haveFeedback {
		return
	}
	switch f.resync {
	case resyncAwaitFeedback:
		f.resync = resyncAwaitRound
		f.resyncSeq = f.SndNxt
	case resyncAwaitRound:
		if absAck >= f.resyncSeq {
			f.resync = resyncNone
			f.resyncSeq = 0
			v.Metrics.FlowsResynced.Inc()
		}
	}
}

// Resyncing reports whether the flow is still in conservative mode.
func (f *Flow) Resyncing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resync != resyncNone
}

// ResyncState returns the state name ("none", "await-feedback",
// "await-round") for tests and instrumentation.
func (f *Flow) ResyncState() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resync.String()
}
