package core

import (
	"sync"
	"testing"

	"acdc/internal/faults"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// --- sweep timer ---

func TestSweepTimerRunsWithoutTraffic(t *testing.T) {
	// The lazy packet-driven sweep needs datapath ops to fire; the
	// SweepInterval timer must collect idle flows on a quiet vSwitch too.
	cfg := DefaultConfig()
	cfg.SweepInterval = sim.Millisecond
	cfg.GCInterval = sim.Millisecond
	cfg.IdleTimeout = 2 * sim.Millisecond
	v, host, s := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 100, 100))
	if v.Table.Len() != 1 {
		t.Fatalf("table len %d, want 1", v.Table.Len())
	}
	// No further datapath activity: only the timer can sweep.
	s.RunFor(20 * sim.Millisecond)
	if v.Table.Len() != 0 {
		t.Fatalf("idle flow survived %d sweep ticks", 20)
	}
	if v.Stats().FlowsRemoved == 0 {
		t.Fatal("FlowsRemoved not counted")
	}
	// With the table empty the timer must go quiet (drained sims terminate).
	if v.sweepTimer.Pending() {
		t.Fatal("sweep timer still armed with an empty table")
	}
}

func TestSweepTimerRearmsOnNewFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepInterval = sim.Millisecond
	cfg.IdleTimeout = 2 * sim.Millisecond
	v, host, s := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 100, 100))
	s.RunFor(20 * sim.Millisecond) // first generation swept, timer idle
	v.Egress(dataPkt(host.Addr, peer, 3, 4, 100, 100))
	if !v.sweepTimer.Pending() {
		t.Fatal("sweep timer not re-armed by the new flow")
	}
	s.RunFor(20 * sim.Millisecond)
	if v.Table.Len() != 0 {
		t.Fatal("second-generation flow never swept")
	}
}

// --- bounded table / fail-open ---

func TestFlowForEvictsClosedUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFlows = 2
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Fill the table with two closed flows.
	for i := uint16(0); i < 2; i++ {
		f := v.flowFor(FlowKey{Src: host.Addr, Dst: peer, SPort: 100 + i, DPort: 200})
		if f == nil {
			t.Fatalf("flow %d not created below capacity", i)
		}
		f.mu.Lock()
		f.finFwd, f.finRev = true, true
		f.mu.Unlock()
	}
	// At capacity, a new key must evict the closed entries rather than
	// fail open or grow past the bound.
	f := v.flowFor(FlowKey{Src: host.Addr, Dst: peer, SPort: 300, DPort: 200})
	if f == nil {
		t.Fatal("flowFor failed open even though closed flows were evictable")
	}
	if n := v.Table.Len(); n > cfg.MaxFlows {
		t.Fatalf("table grew to %d > MaxFlows=%d", n, cfg.MaxFlows)
	}
	st := v.Stats()
	if st.FlowsEvicted == 0 {
		t.Fatal("FlowsEvicted not counted")
	}
	if st.FlowTableFull != 0 {
		t.Fatalf("FlowTableFull = %d on an evictable table", st.FlowTableFull)
	}
}

func TestFlowForFailsOpenAtHardCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFlows = 2
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Two live (recently active, not closed) flows: nothing is evictable.
	v.Egress(dataPkt(host.Addr, peer, 100, 200, 100, 100))
	v.Egress(dataPkt(host.Addr, peer, 101, 200, 100, 100))
	if v.Table.Len() != 2 {
		t.Fatalf("table len %d, want 2", v.Table.Len())
	}
	// The third flow's traffic must still pass, untracked.
	p := dataPkt(host.Addr, peer, 102, 200, 100, 100)
	out := v.Egress(p)
	if len(out) != 1 || out[0] != p {
		t.Fatal("at-capacity egress did not pass the packet through")
	}
	if v.Table.Len() != 2 {
		t.Fatalf("table grew past MaxFlows: %d", v.Table.Len())
	}
	st := v.Stats()
	if st.FlowTableFull == 0 || st.FailOpen == 0 {
		t.Fatalf("fail-open not counted: FlowTableFull=%d FailOpen=%d",
			st.FlowTableFull, st.FailOpen)
	}
}

func TestConcurrentGetDeleteDuringSweep(t *testing.T) {
	// Race-detector test: Get/Delete/GetOrCreate racing a Sweep must be safe.
	tb := NewTable()
	keys := make([]FlowKey, 64)
	for i := range keys {
		keys[i] = FlowKey{Src: packet.MakeAddr(10, 0, 0, 1),
			Dst: packet.MakeAddr(10, 0, 0, 2), SPort: uint16(i), DPort: 80}
		tb.GetOrCreate(keys[i], func() *Flow { return &Flow{Key: keys[i]} })
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 500; iter++ {
				k := keys[(g*31+iter)%len(keys)]
				switch iter % 3 {
				case 0:
					tb.Get(k)
				case 1:
					tb.Delete(k)
				case 2:
					tb.GetOrCreate(k, func() *Flow { return &Flow{Key: k} })
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 200; iter++ {
			tb.Sweep(func(f *Flow) bool { return f.Key.SPort%2 == 0 })
		}
	}()
	wg.Wait()
	if n := tb.Len(); n < 0 || n > len(keys) {
		t.Fatalf("table len %d out of range after churn", n)
	}
}

// --- malformed options fail open ---

func TestMalformedOptionsFailOpen(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	// An option block with a length byte running past the end.
	bad := []byte{packet.OptMSS, 40, 0, 0}
	p := packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 1, DstPort: 2, Seq: 100, Ack: 1,
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65535, Options: bad,
	}, 100)
	out := v.Egress(p)
	if len(out) != 1 || out[0] != p {
		t.Fatal("malformed-options packet was not passed through")
	}
	if v.Table.Len() != 0 {
		t.Fatal("vSwitch tracked state parsed from a damaged option block")
	}
	out = v.Ingress(p)
	if len(out) != 1 || out[0] != p {
		t.Fatal("malformed-options ingress packet was not passed through")
	}
	st := v.Stats()
	if st.MalformedOptions != 2 || st.FailOpen != 2 {
		t.Fatalf("MalformedOptions=%d FailOpen=%d, want 2/2",
			st.MalformedOptions, st.FailOpen)
	}
}

// --- feedback loss tolerance ---

func TestFeedbackLossFreezesGrowthNotTraffic(t *testing.T) {
	// Once PACK/FACK feedback has flowed and then goes dark, the sender
	// module must freeze vCWND growth (stale congestion view) but keep
	// forwarding traffic; the event is counted. The injector's
	// feedback-loss profile on the receiver's uplink is the blackout.
	acdcCfg := DefaultConfig()
	b := newBench(t, 2, cubicGuest(), &acdcCfg, redK(), 10e9)
	_, srvp := b.longFlow(t, 0, 1)
	b.s.RunFor(20 * sim.Millisecond)
	if (*srvp) == nil || (*srvp).Delivered == 0 {
		t.Fatal("no data flowed during warmup")
	}
	if b.acdc[0].Stats().PacksConsumed == 0 {
		t.Fatal("no feedback consumed during warmup")
	}

	inj := faults.NewInjector(faults.Profile{Name: "blackout", DropFeedback: 1}, 7)
	inj.Attach(b.hosts[1].NIC) // receiver's uplink carries its feedback
	before := (*srvp).Delivered
	b.s.RunFor(100 * sim.Millisecond)

	if got := (*srvp).Delivered; got <= before {
		t.Fatalf("traffic stalled after feedback blackout: %d -> %d", before, got)
	}
	if b.acdc[0].Stats().FeedbackTimeouts == 0 {
		t.Fatal("feedback blackout never counted a FeedbackTimeout")
	}
	if inj.Total() == 0 {
		t.Fatal("injector attached but never fired")
	}
}
