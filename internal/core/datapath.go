package core

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// OptFACK marks a dedicated Fake ACK feedback packet; it carries the same
// 8-byte payload as a PACK but the packet must be consumed (dropped) by the
// sender module after the feedback is extracted.
const OptFACK = 254

// Egress adapts EgressPath to a slice return for tests and tools; the
// datapath itself is wired with EgressPath (no slice allocation).
func (v *VSwitch) Egress(p *packet.Packet) []*packet.Packet {
	return pairToSlice(v.EgressPath(p))
}

// Ingress adapts IngressPath to a slice return for tests and tools.
func (v *VSwitch) Ingress(p *packet.Packet) []*packet.Packet {
	return pairToSlice(v.IngressPath(p))
}

func pairToSlice(out, extra *packet.Packet) []*packet.Packet {
	switch {
	case out == nil && extra == nil:
		return nil
	case extra == nil:
		return []*packet.Packet{out}
	case out == nil:
		return []*packet.Packet{extra}
	default:
		return []*packet.Packet{out, extra}
	}
}

// pktClass is the fast-path disposition decided by one header parse.
type pktClass uint8

const (
	classBadIP   pktClass = iota // invalid IPv4: fail open
	classUDP                     // UDP with the tunnel enabled
	classPass                    // non-TCP passthrough
	classBadTCP                  // invalid TCP header: fail open
	classBadOpts                 // damaged option block: fail open
	classTCP                     // full TCP processing
)

// pktMeta is the per-packet parse result shared by the per-packet and batch
// entry points: headers are validated and the flow key extracted exactly
// once, then egressRun/ingressRun branch on the class without re-parsing.
type pktMeta struct {
	class         pktClass
	syn, ack, fin bool
	plen          int64
	iplen         int64
	key           FlowKey
}

// classify parses p once into m. It is side-effect free: the class-specific
// metric increments stay in egressRun/ingressRun so the per-packet and batch
// paths account identically.
func classify(p *packet.Packet, udpTunnel bool, m *pktMeta) {
	ip := p.IP()
	if !ip.Valid() {
		m.class = classBadIP
		return
	}
	m.iplen = int64(p.IPLen())
	proto := ip.Protocol()
	if proto != packet.ProtoTCP {
		if proto == packet.ProtoUDP && udpTunnel {
			m.class = classUDP
		} else {
			m.class = classPass
		}
		return
	}
	t := ip.TCP()
	if !t.Valid() {
		m.class = classBadTCP
		return
	}
	if !packet.OptionsWellFormed(t.Options()) {
		m.class = classBadOpts
		return
	}
	m.class = classTCP
	m.key = FlowKey{Src: ip.Src(), Dst: ip.Dst(), SPort: t.SrcPort(), DPort: t.DstPort()}
	fl := t.Flags()
	m.syn = fl&packet.FlagSYN != 0
	m.ack = fl&packet.FlagACK != 0
	m.fin = fl&packet.FlagFIN != 0
	m.plen = int64(p.PayloadLen())
}

// EgressPath is the vSwitch hook for packets leaving the guest stack (§4's
// ovs_dp_process_packet on the transmit side). With an auditor attached it
// brackets the traversal with a pre-capture and a PacketEvent; a nil auditor
// costs one branch.
func (v *VSwitch) EgressPath(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	if v.Audit == nil {
		return v.egressPath(p)
	}
	pre := v.CapturePre(p)
	out, extra := v.egressPath(p)
	v.Audit.PacketEvent(v, AuditEgress, pre, out, extra, out == p)
	return out, extra
}

func (v *VSwitch) egressPath(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	v.Metrics.EgressSegs.Inc()
	v.maybeSweep()
	var m pktMeta
	classify(p, v.Cfg.UDPTunnel, &m)
	return v.egressRun(p, &m, nil, nil, 0, nil)
}

// egressRun is the egress datapath body shared by the per-packet wrapper and
// EgressBatch. hfwd/hrev are batch-prefetched flow pointers for m.key and its
// reverse; a non-nil hint is used only while the table generation still
// equals gen (no deletion since the prefetch — eviction and GC both bump it),
// and a nil hint always falls back to a live lookup (the flow may have been
// created by an earlier packet of the same burst). With nil hints this is
// byte-for-byte the sequential path.
func (v *VSwitch) egressRun(p *packet.Packet, m *pktMeta, hfwd, hrev *Flow, gen uint64, bd *batchDeltas) (*packet.Packet, *packet.Packet) {
	// Byte accounting for every class but bad-IP; in a batch (bd non-nil) the
	// whole burst's bytes were already summed into one Add by classifyBatch.
	if bd == nil && m.class != classBadIP {
		v.Metrics.EgressBytes.Add(m.iplen)
	}
	switch m.class {
	case classBadIP:
		v.Metrics.FailOpen.Inc()
		return p, nil
	case classUDP:
		return v.udpEgress(p)
	case classPass:
		return p, nil
	case classBadTCP:
		v.Metrics.FailOpen.Inc()
		return p, nil
	case classBadOpts:
		// Damaged option block: acting on a partial parse could corrupt flow
		// state, so the segment passes through untouched.
		v.Metrics.MalformedOptions.Inc()
		v.Metrics.FailOpen.Inc()
		return p, nil
	}
	t := p.IP().TCP()
	out := p

	// --- sender module: track our data direction ---
	var fwd *Flow
	if hfwd != nil && !v.Table.genChanged(gen) {
		fwd = hfwd
	} else if m.syn || m.plen > 0 || m.fin {
		fwd = v.flowFor(m.key)
	} else {
		fwd = v.Table.Get(m.key)
	}
	if fwd != nil {
		if dropped := v.senderEgress(fwd, p, t, m.syn, m.plen); dropped {
			return nil, nil
		}
	}

	// --- receiver module: piggyback feedback on ACKs of the reverse flow ---
	var extra *packet.Packet
	if m.ack && !m.syn {
		var rev *Flow
		if hrev != nil && !v.Table.genChanged(gen) {
			rev = hrev
		} else {
			rev = v.Table.Get(m.key.Reverse())
		}
		if rev != nil {
			out, extra = v.attachFeedback(rev, out)
		}
	}

	// Mark everything ECN-capable so switches mark instead of dropping.
	if v.Cfg.MarkECT {
		oip := out.IP()
		if oip.ECN() == packet.NotECT {
			oip.SetECN(packet.ECT0)
			if bd != nil {
				bd.ectMarks++
			} else {
				v.Metrics.ECTMarks.Inc()
			}
		}
	}
	if extra != nil && v.Cfg.MarkECT {
		eip := extra.IP()
		if eip.ECN() == packet.NotECT {
			eip.SetECN(packet.ECT0)
			if bd != nil {
				bd.ectMarks++
			} else {
				v.Metrics.ECTMarks.Inc()
			}
		}
	}
	return out, extra
}

// senderEgress updates connection-tracking state for outgoing segments and
// applies policing. It reports whether the packet was dropped.
func (v *VSwitch) senderEgress(f *Flow, p *packet.Packet, t packet.TCP, syn bool, plen int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastActive = v.Sim.Now()

	if syn {
		f.iss = t.Seq()
		f.issValid = true
		f.SndUna, f.SndNxt = 1, 1
		f.alphaSeq, f.cutSeq = 1, 0
		f.synSeen = true
		so := packet.ParseSynOptions(t.Options())
		if so.MSS > 0 && int(so.MSS) < f.MSS {
			f.MSS = int(so.MSS)
			f.CwndBytes = v.Cfg.InitCwndPkts * float64(f.MSS)
		}
		ecnIntent := t.Flags()&(packet.FlagECE|packet.FlagCWR) != 0
		if t.HasFlags(packet.FlagACK) {
			// SYN-ACK (we are the data receiver becoming a sender too):
			// negotiation outcome is "accepted" iff ECE set here.
			f.GuestECN = t.HasFlags(packet.FlagECE)
			f.synAckSeen = true
		} else {
			f.GuestECN = ecnIntent
		}
		return false
	}

	if !f.issValid {
		// Adopted mid-stream (no handshake observed — vSwitch attached or
		// restarted under a live connection): anchor absolute space at this
		// segment and enter the conservative resync mode — the window scale
		// and feedback baseline are unknown, so enforcement and policing
		// stay off until one clean feedback round completes (resync.go).
		f.iss = t.Seq()
		f.issValid = true
		f.SndUna, f.SndNxt = 0, 0
		f.alphaSeq, f.cutSeq = 0, 0
		f.enterResyncLocked()
		v.Metrics.FlowsAdoptedMidstream.Inc()
	}

	if plen > 0 || t.HasFlags(packet.FlagFIN) {
		absSeq := f.absSeq(t.Seq(), f.SndNxt)
		segEnd := absSeq + plen
		if t.HasFlags(packet.FlagFIN) {
			segEnd++
			f.finFwd = true
		}

		// Egress enforcement (policing for the rewrite backends, admission
		// pacing for pace) trusts the tracked window; a resyncing flow's
		// window is exactly what cannot be trusted yet, so enforcement waits
		// with it. A Policy.Disable flow is exempt from enforcement, so
		// acting on its beyond-window segments would be exactly the harm it
		// opted out of — every backend sits behind this gate.
		if f.resync == resyncNone && !f.Policy.Disable {
			if f.be.OnEgress(v, f, p, segEnd, plen) {
				return true
			}
		}

		v.noteSegmentLocked(f, segEnd)
	}
	return false
}

// noteSegmentLocked advances connection tracking for an admitted outgoing
// data segment: snd_nxt, the per-ACK inflight peak, and the inactivity
// timer. Caller holds f.mu on the simulation goroutine. A backend that
// retains a segment in its own queue (pace) calls this itself — the segment
// WILL reach the wire, so tracking must advance at admission time.
func (v *VSwitch) noteSegmentLocked(f *Flow, segEnd int64) {
	if segEnd > f.SndNxt {
		f.SndNxt = segEnd
	}
	if infl := f.SndNxt - f.SndUna; infl > f.maxInflight {
		f.maxInflight = infl
	}
	// Arm the inactivity timer while data is outstanding.
	if f.inactivity == nil {
		ff := f
		f.inactivity = sim.NewTimer(v.Sim, func() { v.onVTimeout(ff) })
	}
	f.inactivity.Reset(v.Cfg.VTimeout)
}

// attachFeedback implements the receiver module's PACK/FACK emission: the
// running totals ride a TCP option on the real ACK, or a dedicated FACK when
// they do not fit (or when PACK is disabled for ablation).
func (v *VSwitch) attachFeedback(rev *Flow, ack *packet.Packet) (out, extra *packet.Packet) {
	rev.mu.Lock()
	info := packet.PACKInfo{TotalBytes: rev.TotalBytes, MarkedBytes: rev.MarkedBytes}
	rev.lastActive = v.Sim.Now()
	rev.mu.Unlock()
	if info.TotalBytes == 0 && info.MarkedBytes == 0 {
		return ack, nil
	}

	if !v.Cfg.DisablePACK {
		var opt [packet.PACKOptionLen]byte
		packet.EncodePACK(opt[:], info)
		if packet.InsertTCPOptionInPlace(ack, opt[:]) {
			v.Metrics.PacksAttached.Inc()
			return ack, nil
		}
	}

	// FACK fallback: a separate pure ACK carrying the feedback, consumed by
	// the peer's sender module.
	v.Metrics.FacksSent.Inc()
	t := ack.TCP()
	ip := ack.IP()
	var fopt [packet.PACKOptionLen]byte
	fopt[0] = OptFACK
	fopt[1] = packet.PACKOptionLen
	putU32(fopt[2:6], info.TotalBytes)
	putU32(fopt[6:10], info.MarkedBytes)
	fack := packet.BuildIn(v.pool(), ip.Src(), ip.Dst(), packet.NotECT, packet.TCPFields{
		SrcPort: t.SrcPort(), DstPort: t.DstPort(),
		Seq: t.Seq(), Ack: t.Ack(),
		Flags: packet.FlagACK, Window: t.Window(),
		Options: fopt[:],
	}, 0)
	fack.FlowTag = ack.FlowTag
	return ack, fack
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// IngressPath is the vSwitch hook for packets arriving from the network.
// Audit bracketing mirrors EgressPath.
func (v *VSwitch) IngressPath(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	if v.Audit == nil {
		return v.ingressPath(p)
	}
	pre := v.CapturePre(p)
	out, extra := v.ingressPath(p)
	v.Audit.PacketEvent(v, AuditIngress, pre, out, extra, out == p)
	return out, extra
}

func (v *VSwitch) ingressPath(p *packet.Packet) (*packet.Packet, *packet.Packet) {
	v.Metrics.IngressSegs.Inc()
	v.maybeSweep()
	var m pktMeta
	classify(p, v.Cfg.UDPTunnel, &m)
	return v.ingressRun(p, &m, nil, nil, 0, nil)
}

// ingressRun is the ingress datapath body shared by the per-packet wrapper
// and IngressBatch; the hint contract matches egressRun (hfwd for m.key, the
// peer's data direction; hrev for the reverse, ours).
func (v *VSwitch) ingressRun(p *packet.Packet, m *pktMeta, hfwd, hrev *Flow, gen uint64, bd *batchDeltas) (*packet.Packet, *packet.Packet) {
	// Byte accounting mirrors egressRun: folded into classifyBatch's one Add
	// when processing a burst.
	if bd == nil && m.class != classBadIP {
		v.Metrics.IngressBytes.Add(m.iplen)
	}
	switch m.class {
	case classBadIP:
		v.Metrics.FailOpen.Inc()
		return p, nil
	case classUDP:
		return v.udpIngress(p)
	case classPass:
		return p, nil
	case classBadTCP:
		v.Metrics.FailOpen.Inc()
		return p, nil
	case classBadOpts:
		v.Metrics.MalformedOptions.Inc()
		v.Metrics.FailOpen.Inc()
		return p, nil
	}
	t := p.IP().TCP()

	// fwdKey (m.key): peer's data direction (we are receiver). revKey: ours.
	revKey := m.key.Reverse()

	if m.syn {
		v.ingressHandshake(p, t, m.key, revKey)
	}

	// --- sender module: ACKs for our data direction ---
	if m.ack && !m.syn {
		if fb := packet.FindOption(t.Options(), OptFACK); fb != nil && len(fb) >= 8 {
			// Dedicated FACK: consume feedback, drop the packet.
			info := packet.PACKInfo{TotalBytes: getU32(fb[0:4]), MarkedBytes: getU32(fb[4:8])}
			f := hrev
			if f == nil || v.Table.genChanged(gen) {
				f = v.Table.Get(revKey)
			}
			if f != nil {
				if f.isUDP {
					v.processUDPFeedback(f, info)
				} else {
					v.processFeedbackAndAck(f, p, t, info, true)
				}
			}
			v.Metrics.FacksConsumed.Inc()
			// Consumed: the caller (Host.HandlePacket) recycles the packet.
			return nil, nil
		}
		f := hrev
		if f == nil || v.Table.genChanged(gen) {
			f = v.Table.Get(revKey)
		}
		if f != nil {
			var info packet.PACKInfo
			havePack := false
			if d := packet.FindOption(t.Options(), packet.OptPACK); d != nil {
				if pi, ok := packet.ParsePACK(d); ok {
					info = pi
					havePack = true
					if bd != nil {
						bd.packs++
					} else {
						v.Metrics.PacksConsumed.Inc()
					}
				}
			}
			v.processFeedbackAndAck(f, p, t, info, havePack)
			if havePack {
				// Strip the PACK so the guest never sees it. The in-place
				// strip overwrites the option with NOPs (no reallocation);
				// this runs post-wire, so the unchanged length is free.
				packet.StripTCPOptionInPlace(p, packet.OptPACK)
			}
		} else {
			v.Metrics.UntrackedSegs.Inc()
		}
	}

	// --- receiver module: count and strip for the peer's data direction ---
	if m.plen > 0 || m.fin || m.syn {
		f := hfwd
		if f == nil || v.Table.genChanged(gen) {
			f = v.Table.Get(m.key)
		}
		if f == nil && (m.plen > 0 || m.fin) {
			f = v.flowFor(m.key)
		}
		if f != nil {
			v.receiverIngress(f, p, t, m.plen)
		}
	} else if v.Cfg.StripECN {
		// Pure ACKs: remove the ECT we (or the peer's AC/DC) set.
		f := hfwd
		if f == nil || v.Table.genChanged(gen) {
			f = v.Table.Get(m.key)
		}
		v.stripECN(p, f)
	}

	return p, nil
}

// ingressHandshake learns window scales and guest ECN negotiation from
// handshake segments passing toward the guest.
func (v *VSwitch) ingressHandshake(p *packet.Packet, t packet.TCP, fwdKey, revKey FlowKey) {
	so := packet.ParseSynOptions(t.Options())
	// The peer's SYN/SYN-ACK announces the scale applied to the RWND fields
	// of the ACKs the peer will send — which our sender module rewrites.
	rev := v.flowFor(revKey)
	if rev == nil {
		return
	}
	rev.mu.Lock()
	if so.WScaleOK {
		rev.PeerWScale = so.WScale
		rev.WScaleKnown = true
	}
	if so.MSS > 0 && int(so.MSS) < rev.MSS {
		rev.MSS = int(so.MSS)
		if rev.SndNxt <= 1 { // before data: rescale IW
			rev.CwndBytes = v.Cfg.InitCwndPkts * float64(rev.MSS)
		}
	}
	if t.HasFlags(packet.FlagACK) {
		// SYN-ACK: ECN accepted iff ECE present.
		rev.GuestECN = t.HasFlags(packet.FlagECE)
		rev.synAckSeen = true
	}
	rev.lastActive = v.Sim.Now()
	rev.mu.Unlock()

	fwd := v.flowFor(fwdKey)
	if fwd == nil {
		return
	}
	fwd.mu.Lock()
	if t.HasFlags(packet.FlagACK) {
		fwd.GuestECN = t.HasFlags(packet.FlagECE)
		fwd.synAckSeen = true
	} else {
		fwd.GuestECN = t.Flags()&(packet.FlagECE|packet.FlagCWR) != 0
		fwd.synSeen = true
	}
	fwd.lastActive = v.Sim.Now()
	fwd.mu.Unlock()
}

// receiverIngress counts feedback totals and restores guest ECN semantics.
func (v *VSwitch) receiverIngress(f *Flow, p *packet.Packet, t packet.TCP, plen int64) {
	f.mu.Lock()
	f.lastActive = v.Sim.Now()
	if plen > 0 {
		f.TotalBytes += uint32(plen)
		v.Metrics.DataBytes.Add(plen)
		if p.IP().ECN() == packet.CE {
			f.MarkedBytes += uint32(plen)
			v.Metrics.CEBytes.Add(plen)
		}
	}
	if t.HasFlags(packet.FlagFIN) {
		f.finFwd = true
		if rev := v.Table.Get(f.Key.Reverse()); rev != nil {
			rev.finRev = true
		}
	}
	guestECN := f.GuestECN
	f.mu.Unlock()

	if v.Cfg.StripECN {
		ip := p.IP()
		switch {
		case !guestECN && ip.ECN() != packet.NotECT:
			ip.SetECN(packet.NotECT)
			v.Metrics.ECNStripped.Inc()
		case guestECN && ip.ECN() == packet.CE:
			// Hide CE so the guest's own loop (which would over-react or
			// double-react) never triggers; AC/DC reacts instead.
			ip.SetECN(packet.ECT0)
			v.Metrics.ECNStripped.Inc()
		}
	}
}

func (v *VSwitch) stripECN(p *packet.Packet, f *Flow) {
	guestECN := false
	if f != nil {
		f.mu.Lock()
		guestECN = f.GuestECN
		f.mu.Unlock()
	}
	ip := p.IP()
	switch {
	case !guestECN && ip.ECN() != packet.NotECT:
		ip.SetECN(packet.NotECT)
		v.Metrics.ECNStripped.Inc()
	case guestECN && ip.ECN() == packet.CE:
		ip.SetECN(packet.ECT0)
		v.Metrics.ECNStripped.Inc()
	}
}
