package core_test

import (
	"testing"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/udp"
	"acdc/internal/workload"
)

// udpBench: star with AC/DC (+UDP tunnels) and UDP endpoints everywhere.
func udpBench(t *testing.T, n int, tunnel bool) (*topo.Net, []*udp.Endpoint) {
	t.Helper()
	ac := core.DefaultConfig()
	ac.UDPTunnel = tunnel
	net := topo.Star(n, topo.Options{
		Guest: tcpstack.DefaultConfig(),
		ACDC:  &ac,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
		Seed:  3,
	})
	eps := make([]*udp.Endpoint, n)
	for i := range eps {
		eps[i] = udp.NewEndpoint(net.Sim, net.Hosts[i])
	}
	return net, eps
}

func TestUDPDeliveryThroughTunnel(t *testing.T) {
	net, eps := udpBench(t, 2, true)
	got := 0
	eps[1].OnRecv = func(src packet.Addr, sport, dport uint16, payload int) {
		if dport == 7000 {
			got += payload
		}
	}
	for i := 0; i < 20; i++ {
		eps[0].Send(net.Addr(1), 6000, 7000, 1000)
	}
	net.Sim.RunFor(50 * sim.Millisecond)
	if got != 20_000 {
		t.Fatalf("delivered %d", got)
	}
}

func TestUDPTunnelProtectsTCP(t *testing.T) {
	// A no-congestion-control UDP blaster shares a bottleneck with a DCTCP-
	// enforced TCP flow. Without the tunnel the blaster's Not-ECT datagrams
	// are dropped wholesale at the WRED threshold while still crowding the
	// queue; with the tunnel the UDP flow is congestion-controlled, network
	// drops disappear, and the TCP flow keeps a sane share.
	run := func(tunnel bool) (tcpGbps, udpGbps float64, netDrops int64) {
		net, eps := udpBench(t, 3, tunnel)
		m := workload.NewManager(net)
		f := workload.Bulk(m, 0, 2) // TCP via AC/DC
		var udpRecv int64
		eps[2].OnRecv = func(_ packet.Addr, _, _ uint16, payload int) {
			udpRecv += int64(payload)
		}
		// Host 1 blasts 9 Gbps of UDP at the shared 10G downlink.
		eps[1].Blast(net.Addr(2), 6000, 7000, 8960, 9e9, 300*sim.Millisecond)
		net.Sim.RunFor(300 * sim.Millisecond)
		secs := net.Sim.Now().Seconds()
		return float64(f.Delivered()) * 8 / secs / 1e9,
			float64(udpRecv) * 8 / secs / 1e9,
			net.TotalDrops()
	}

	tcpOff, udpOff, dropsOff := run(false)
	tcpOn, udpOn, dropsOn := run(true)
	t.Logf("no tunnel: tcp=%.2fG udp=%.2fG drops=%d", tcpOff, udpOff, dropsOff)
	t.Logf("tunnel:    tcp=%.2fG udp=%.2fG drops=%d", tcpOn, udpOn, dropsOn)

	if dropsOff == 0 {
		t.Fatal("untunnelled blast should drop at the switch")
	}
	if dropsOn != 0 {
		t.Fatalf("tunnel should eliminate network drops, got %d", dropsOn)
	}
	// With the tunnel both flows share: each lands well off the extremes.
	if tcpOn < 2 || udpOn < 2 {
		t.Fatalf("unfair tunnel split: tcp=%.2f udp=%.2f", tcpOn, udpOn)
	}
	if tcpOn+udpOn < 8.5 {
		t.Fatalf("tunnel wastes capacity: aggregate %.2f", tcpOn+udpOn)
	}
}

func TestUDPTunnelFairnessBetweenUDPFlows(t *testing.T) {
	net, eps := udpBench(t, 3, true)
	var r0, r1 int64
	eps[2].OnRecv = func(_ packet.Addr, sport, _ uint16, payload int) {
		if sport == 6000 {
			r0 += int64(payload)
		} else {
			r1 += int64(payload)
		}
	}
	eps[0].Blast(net.Addr(2), 6000, 7000, 8960, 9e9, 200*sim.Millisecond)
	eps[1].Blast(net.Addr(2), 6001, 7000, 8960, 9e9, 200*sim.Millisecond)
	net.Sim.RunFor(200 * sim.Millisecond)
	lo, hi := r0, r1
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || float64(lo)/float64(hi) < 0.5 {
		t.Fatalf("tunnel unfair: %d vs %d", r0, r1)
	}
	if net.TotalDrops() != 0 {
		t.Fatalf("drops %d", net.TotalDrops())
	}
}

func TestUDPTunnelQueueBoundsAndDrops(t *testing.T) {
	// Two blasters at a combined ~18G contend for one 10G port: the tunnels
	// must absorb the marks, shrink their windows, and shed the excess at
	// the vSwitch — never in the fabric.
	net, eps := udpBench(t, 3, true)
	eps[0].Blast(net.Addr(2), 6000, 7000, 8960, 9e9, 100*sim.Millisecond)
	eps[1].Blast(net.Addr(2), 6001, 7000, 8960, 9e9, 100*sim.Millisecond)
	net.Sim.RunFor(110 * sim.Millisecond)
	shed := net.ACDC[0].Stats().PolicingDrops + net.ACDC[1].Stats().PolicingDrops
	if shed == 0 {
		t.Fatal("tunnels never shed excess load")
	}
	if net.TotalDrops() != 0 {
		t.Fatalf("fabric dropped %d despite tunnels", net.TotalDrops())
	}
}

func TestUDPPassthroughWithoutTunnelFlag(t *testing.T) {
	net, eps := udpBench(t, 2, false)
	got := 0
	eps[1].OnRecv = func(_ packet.Addr, _, _ uint16, payload int) { got += payload }
	eps[0].Send(net.Addr(1), 6000, 7000, 500)
	net.Sim.RunFor(5 * sim.Millisecond)
	if got != 500 {
		t.Fatalf("passthrough delivered %d", got)
	}
	if net.ACDC[0].Table.Len() != 0 {
		t.Fatal("UDP tracked without the tunnel flag")
	}
}

func TestBuildUDPWireFormat(t *testing.T) {
	p := packet.BuildUDP(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.ECT0, 1234, 5678, 9000)
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoUDP {
		t.Fatal("bad IP header")
	}
	if !ip.VerifyChecksum() {
		t.Fatal("bad checksum")
	}
	u := ip.UDP()
	if u.SrcPort() != 1234 || u.DstPort() != 5678 {
		t.Fatalf("ports %d %d", u.SrcPort(), u.DstPort())
	}
	if u.Length() != packet.UDPHeaderLen+9000 {
		t.Fatalf("length %d", u.Length())
	}
	if p.IPLen() != packet.IPv4HeaderLen+packet.UDPHeaderLen+9000 {
		t.Fatalf("IPLen %d", p.IPLen())
	}
}
