package core

import (
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// loneVSwitch builds a vSwitch whose host NIC discards everything, for
// datapath unit tests that feed packets by hand.
func loneVSwitch(t *testing.T, cfg Config) (*VSwitch, *netsim.Host, *sim.Simulator) {
	t.Helper()
	s := sim.New(5)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	return Attach(s, host, cfg), host, s
}

func dataPkt(src, dst packet.Addr, sp, dp uint16, seq uint32, n int) *packet.Packet {
	return packet.Build(src, dst, packet.NotECT, packet.TCPFields{
		SrcPort: sp, DstPort: dp, Seq: seq, Ack: 1,
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
	}, n)
}

func ackPkt(src, dst packet.Addr, sp, dp uint16, ack uint32, wnd uint16) *packet.Packet {
	return packet.Build(src, dst, packet.NotECT, packet.TCPFields{
		SrcPort: sp, DstPort: dp, Seq: 1, Ack: ack,
		Flags: packet.FlagACK, Window: wnd,
	}, 0)
}

func TestMidstreamAdoptionResync(t *testing.T) {
	// A vSwitch attached to an already-running connection (no SYN observed)
	// must anchor its absolute sequence space at the first data segment, land
	// in the conservative resync mode (no RWND rewrite, no policing), and
	// only re-enter enforcement after one clean PACK/FACK feedback round.
	cases := []struct {
		name string
		// feedback ACKs (cumulative totals) fed after two data segments; nil
		// entries are plain ACKs with no PACK option.
		feedback []*uint32
		resynced bool // expect resync complete at the end
		rewrites int64
	}{
		{
			name:     "adoption alone stays conservative",
			feedback: nil,
			resynced: false,
		},
		{
			name:     "one feedback packet re-anchors but does not complete",
			feedback: []*uint32{u32p(1000)},
			resynced: false,
		},
		{
			name:     "clean feedback round restores enforcement",
			feedback: []*uint32{u32p(1000), u32p(2000)},
			resynced: true,
		},
		{
			name:     "non-AC/DC peer never completes resync",
			feedback: []*uint32{nil, nil, nil, nil},
			resynced: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, host, _ := loneVSwitch(t, DefaultConfig())
			peer := packet.MakeAddr(10, 0, 0, 2)
			v.Egress(dataPkt(host.Addr, peer, 100, 200, 777_000, 1000))
			f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
			if f == nil {
				t.Fatal("no flow created mid-stream")
			}
			if s := f.Snapshot(); s.SndNxt != 1000 {
				t.Fatalf("SndNxt = %d, want 1000 (anchored at first segment)", s.SndNxt)
			}
			if !f.Resyncing() {
				t.Fatal("mid-stream adoption must enter resync")
			}
			if got := v.Stats().FlowsAdoptedMidstream; got != 1 {
				t.Fatalf("FlowsAdoptedMidstream = %d", got)
			}
			v.Egress(dataPkt(host.Addr, peer, 100, 200, 778_000, 1000))
			if s := f.Snapshot(); s.SndNxt != 2000 {
				t.Fatalf("SndNxt = %d after second segment", s.SndNxt)
			}
			for i, total := range tc.feedback {
				ackAbs := uint32(778_000 + 1000) // covers both segments
				if total == nil {
					v.Ingress(ackPkt(peer, host.Addr, 200, 100, ackAbs, 65535))
				} else {
					v.Ingress(packAck(peer, host.Addr, 200, 100, ackAbs, 65535, *total, *total))
				}
				// The conservative invariant, checked at every step: an
				// unsynced flow must never have its RWND rewritten.
				if f.Resyncing() && v.Stats().RwndRewrites != 0 {
					t.Fatalf("RWND rewritten while resyncing (feedback %d)", i)
				}
			}
			if got := f.Resyncing(); got == tc.resynced {
				t.Fatalf("Resyncing = %v at end (state %s)", got, f.ResyncState())
			}
			wantResynced := int64(0)
			if tc.resynced {
				wantResynced = 1
			}
			if got := v.Stats().FlowsResynced; got != wantResynced {
				t.Fatalf("FlowsResynced = %d, want %d", got, wantResynced)
			}
		})
	}
}

func u32p(v uint32) *uint32 { return &v }

func TestPolicingSuspendedDuringResync(t *testing.T) {
	// Policing drops segments beyond the virtual window — but an adopted
	// flow's window is a guess until the first clean feedback round, so
	// resyncing flows must pass unpoliced (conservative mode).
	cfg := DefaultConfig()
	cfg.Police = true
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 777_000, 8960))
	// A burst far beyond IW+slack: would be dropped on an enforced flow
	// (TestPolicingSlackAllowsInFlightAfterCut), must pass on a resyncing one.
	if out := v.Egress(dataPkt(host.Addr, peer, 1, 2, 777_000+500_000, 8960)); len(out) != 1 {
		t.Fatal("resyncing flow was policed")
	}
	if v.Stats().PolicingDrops != 0 {
		t.Fatalf("PolicingDrops = %d during resync", v.Stats().PolicingDrops)
	}
}

func TestIngressAckWithoutFlowCountsUntracked(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 9)
	out := v.Ingress(ackPkt(peer, host.Addr, 9, 9, 42, 100))
	if len(out) != 1 {
		t.Fatal("untracked ACK should pass through")
	}
	if v.Stats().UntrackedSegs != 1 {
		t.Fatalf("UntrackedSegs = %d", v.Stats().UntrackedSegs)
	}
}

func TestNonTCPPacketsPassThrough(t *testing.T) {
	v, _, _ := loneVSwitch(t, DefaultConfig())
	// A UDP-ish packet: valid IP, protocol 17.
	p := dataPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2), 1, 2, 0, 10)
	p.Buf[9] = 17
	packet.IPv4(p.Buf).ComputeChecksum()
	if out := v.Egress(p); len(out) != 1 || out[0] != p {
		t.Fatal("non-TCP egress packet not passed through")
	}
	if out := v.Ingress(p); len(out) != 1 {
		t.Fatal("non-TCP ingress packet not passed through")
	}
	// Garbage buffers must not panic.
	junk := &packet.Packet{Buf: []byte{1, 2, 3}}
	if out := v.Egress(junk); len(out) != 1 {
		t.Fatal("junk egress not passed through")
	}
}

func TestFACKFallbackWhenOptionsFull(t *testing.T) {
	// An ACK whose TCP options area is already full forces the receiver
	// module onto the FACK path even with PACK enabled.
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Receiver-module state with counted bytes (peer → host data direction).
	dk := FlowKey{Src: peer, Dst: host.Addr, SPort: 200, DPort: 100}
	v.Ingress(dataPkt(peer, host.Addr, 200, 100, 5000, 1500))
	if v.Table.Get(dk) == nil {
		t.Fatal("receiver flow not created")
	}

	full := make([]byte, 40)
	for i := range full {
		full[i] = packet.OptNOP
	}
	ack := packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 100, DstPort: 200, Seq: 1, Ack: 6500,
		Flags: packet.FlagACK, Window: 65535, Options: full,
	}, 0)
	out := v.Egress(ack)
	if len(out) != 2 {
		t.Fatalf("expected real ACK + FACK, got %d packets", len(out))
	}
	if v.Stats().FacksSent != 1 {
		t.Fatalf("FacksSent = %d", v.Stats().FacksSent)
	}
	// The FACK carries the feedback under OptFACK.
	fb := packet.FindOption(out[1].TCP().Options(), OptFACK)
	if len(fb) < 8 || getU32(fb[0:4]) != 1500 {
		t.Fatalf("FACK payload wrong: %v", fb)
	}
}

func TestLazyGCSweepsIdleFlows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GCInterval = sim.Millisecond
	cfg.IdleTimeout = 2 * sim.Millisecond
	v, host, s := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 100, 100))
	if v.Table.Len() != 1 {
		t.Fatalf("table len %d", v.Table.Len())
	}
	// Advance time past the idle timeout (bounded run: the flow's
	// inactivity timer re-arms itself while data is outstanding), then push
	// enough packets on an unrelated flow to trigger the lazy sweep (every
	// 4096 datapath ops).
	s.RunFor(10 * sim.Millisecond)
	other := packet.MakeAddr(10, 0, 0, 3)
	for i := 0; i < 5000; i++ {
		v.Egress(dataPkt(host.Addr, other, 7, 8, uint32(1000+i*100), 100))
	}
	if v.Stats().FlowsRemoved == 0 {
		t.Fatal("idle flow never swept")
	}
}

func TestPolicingSlackAllowsInFlightAfterCut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Police = true
	cfg.PoliceSlackBytes = 2 * 8960
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Establish flow state via SYN.
	syn := packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 1, DstPort: 2, Seq: 999, Flags: packet.FlagSYN, Window: 65535,
		Options: packet.BuildSynOptions(8960, 7, true),
	}, 0)
	v.Egress(syn)
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 2})
	// Data within IW+slack passes.
	if out := v.Egress(dataPkt(host.Addr, peer, 1, 2, 1000, 8960)); len(out) != 1 {
		t.Fatal("conforming data dropped")
	}
	// Far beyond the window: dropped.
	if out := v.Egress(dataPkt(host.Addr, peer, 1, 2, 1000+500_000, 8960)); out != nil {
		t.Fatal("excess data not policed")
	}
	if v.Stats().PolicingDrops != 1 {
		t.Fatalf("PolicingDrops = %d", v.Stats().PolicingDrops)
	}
	_ = f
}

func TestEgressMarksEverythingECT(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	for _, p := range []*packet.Packet{
		dataPkt(host.Addr, peer, 1, 2, 100, 100),
		ackPkt(host.Addr, peer, 1, 2, 50, 10),
	} {
		out := v.Egress(p)
		if out[0].IP().ECN() != packet.ECT0 {
			t.Fatalf("egress packet not ECT: %v", out[0].IP().ECN())
		}
		if !out[0].IP().VerifyChecksum() {
			t.Fatal("marking broke checksum")
		}
	}
}

func TestIngressStripsCEForECNGuest(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	// Peer SYN with ECN negotiation (ECE|CWR), so GuestECN = true via
	// handshake observation, then SYN-ACK accepted.
	syn := packet.Build(peer, host.Addr, packet.NotECT, packet.TCPFields{
		SrcPort: 2, DstPort: 1, Seq: 0,
		Flags: packet.FlagSYN | packet.FlagECE | packet.FlagCWR, Window: 65535,
		Options: packet.BuildSynOptions(8960, 7, true),
	}, 0)
	v.Ingress(syn)
	ce := packet.Build(peer, host.Addr, packet.CE, packet.TCPFields{
		SrcPort: 2, DstPort: 1, Seq: 1, Ack: 1,
		Flags: packet.FlagACK | packet.FlagPSH, Window: 65535,
	}, 1000)
	out := v.Ingress(ce)
	if got := out[0].IP().ECN(); got != packet.ECT0 {
		t.Fatalf("CE toward ECN guest should become ECT(0), got %v", got)
	}
	// And the receiver module counted the marked bytes before stripping.
	f := v.Table.Get(FlowKey{Src: peer, Dst: host.Addr, SPort: 2, DPort: 1})
	if s := f.Snapshot(); s.MarkedBytes != 1000 || s.TotalBytes != 1000 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestVRenoVirtualCC(t *testing.T) {
	v := NewVCC("reno")
	f := &Flow{MSS: 1500, CwndBytes: 30000, SsthreshBytes: 1 << 40, Policy: DefaultPolicy()}
	if v.CutFactor(f, false) != 0.5 || v.CutFactor(f, true) != 0.5 {
		t.Fatal("vReno must halve")
	}
	v.OnAck(f, 1500)
	if f.CwndBytes != 31500 {
		t.Fatalf("slow start growth: %v", f.CwndBytes)
	}
	v.OnTimeout(f)
	if f.CwndBytes != 1500 {
		t.Fatalf("timeout should collapse to 1 MSS: %v", f.CwndBytes)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown vCC should panic")
		}
	}()
	NewVCC("bbr")
}

func TestPerFlowVCCOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowPolicy = func(k FlowKey) Policy {
		p := DefaultPolicy()
		if k.DPort == 443 {
			p.VCC = "reno" // e.g. WAN-bound flows on a loss-based law
		}
		return p
	}
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 1, 443, 100, 100))
	v.Egress(dataPkt(host.Addr, peer, 1, 80, 100, 100))
	wan := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 443})
	dc := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 1, DPort: 80})
	if wan.vcc.Name() != "reno" || dc.vcc.Name() != "dctcp" {
		t.Fatalf("per-flow vCC: wan=%s dc=%s", wan.vcc.Name(), dc.vcc.Name())
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SPort: 3, DPort: 4}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SPort != 4 || r.DPort != 3 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse not identity")
	}
}

func TestEnforcedWindowClampAndFloor(t *testing.T) {
	f := &Flow{CwndBytes: 100_000, Policy: Policy{Beta: 1, RwndClampBytes: 50_000}}
	if got := f.enforcedWindow(9000); got != 50_000 {
		t.Fatalf("clamp: %d", got)
	}
	f.CwndBytes = 100
	if got := f.enforcedWindow(9000); got != 9000 {
		t.Fatalf("floor: %d", got)
	}
}

func TestDupAckSynthesisTemplate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GenDupAcks = true
	cfg.VTimeout = sim.Millisecond
	v, host, s := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)

	var delivered []*packet.Packet
	host.Demux = netsim.HandlerFunc(func(p *packet.Packet) { delivered = append(delivered, p) })

	syn := packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 1, DstPort: 2, Seq: 0, Flags: packet.FlagSYN, Window: 65535,
		Options: packet.BuildSynOptions(8960, 7, true),
	}, 0)
	v.Egress(syn)
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 1, 8960))
	// Feed one real ACK so the template fields are known.
	v.Ingress(ackPkt(peer, host.Addr, 2, 1, 1+8960, 512))
	// More unacked data, then let the inactivity timer fire.
	v.Egress(dataPkt(host.Addr, peer, 1, 2, 1+8960, 8960))
	s.RunFor(5 * sim.Millisecond)

	if v.Stats().VTimeouts == 0 {
		t.Fatal("vTimeout never fired")
	}
	if len(delivered) < 3 {
		t.Fatalf("expected ≥3 synthesized dupacks, got %d", len(delivered))
	}
	d := delivered[0]
	tc := d.TCP()
	if tc.SrcPort() != 2 || tc.DstPort() != 1 {
		t.Fatalf("dupack ports reversed: %v", d)
	}
	if tc.Ack() != 1+8960 {
		t.Fatalf("dupack acks %d, want snd_una", tc.Ack())
	}
	if !d.IP().VerifyChecksum() {
		t.Fatal("synthesized dupack has bad checksum")
	}
}
