package core

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Flow-state checkpoint/restore (warm restart).
//
// The vSwitch is exactly the component that gets restarted in production —
// OVS upgrades, host-agent redeploys, crashes — and all of AC/DC's
// enforcement lives in its per-flow state (§3.2–3.3: seq tracking, the
// window scale learned from the SYN, vCWND, DCTCP α). This file gives that
// state a versioned, checksummed wire format so a restarting vSwitch can
// carry its flow table across the outage instead of silently re-enforcing
// with wrong assumptions.
//
// Format (big-endian):
//
//	magic    [8]byte  "ACDCSNAP"
//	version  uint16   (currently 1)
//	reserved uint16   (must decode as opaque; writers set 0)
//	captured int64    sim.Time of capture (staleness diagnostics)
//	count    uint32   number of flow records
//	records  count ×  (length uint16, fields…)
//	crc      uint32   IEEE CRC-32 over everything above
//
// Records are length-prefixed so decoding is forward compatible: a reader
// parses the fields it knows and skips any trailing bytes a newer writer
// appended. Truncated input, a bad magic, or a CRC mismatch is corruption:
// RestoreSnapshot then fails open — fresh empty table, traffic untouched,
// snapshot_corrupt_total incremented — because a wrong flow table is worse
// than no flow table. Decoded numeric fields are clamped to sane ranges so
// even a snapshot that collides with the CRC (or a fuzzer's forgery) cannot
// install NaN windows or inverted sequence state.
//
// UDP tunnel flows are deliberately not captured: their state includes a
// queue of in-flight guest datagrams that does not survive a process
// boundary, and the tunnel rebuilds itself from live traffic in one
// feedback interval.
//
// Every restored data-direction flow re-enters enforcement through the
// conservative resync machine (resync.go) — even a fresh ("warm") snapshot
// is one outage behind the wire.

// snapshotMagic identifies a flow-table snapshot.
var snapshotMagic = [8]byte{'A', 'C', 'D', 'C', 'S', 'N', 'A', 'P'}

// SnapshotVersion is the format version this build writes. Readers accept
// any version ≥ 1 (the record framing is the compatibility contract).
const SnapshotVersion = 1

const snapshotHeaderLen = 8 + 2 + 2 + 8 + 4 // magic, version, reserved, captured, count

// flowRecord is one flow's serialized state: every field that affects
// enforcement (pinned by TestSnapshotRoundTripLossless) plus the lifecycle
// bits needed to garbage-collect the restored entry correctly.
type flowRecord struct {
	Key FlowKey

	PeerWScale  uint8
	WScaleKnown bool
	GuestECN    bool
	synSeen     bool
	synAckSeen  bool
	issValid    bool
	finFwd      bool
	finRev      bool

	MSS           int
	iss           uint32
	SndUna        int64
	SndNxt        int64
	CwndBytes     float64
	SsthreshBytes float64
	Alpha         float64

	lastTotal    uint32
	lastMarked   uint32
	windowTotal  uint32
	windowMarked uint32
	alphaSeq     int64
	cutSeq       int64
	prevCwnd     float64

	TotalBytes  uint32
	MarkedBytes uint32

	VTimeouts  int64
	LossEvents int64

	Beta       float64
	RwndClamp  int64
	PolDisable bool
	PolVCC     string
	VCCName    string

	// Appended after VCCName (PR 10): the policy's enforcement backend and
	// the backend's one per-flow scalar (pace: rate bit/s; adaptive-k: K
	// bytes). Old snapshots simply lack them — the record framing makes the
	// addition invisible to old readers and optional for new ones.
	PolBackend string
	BeState    float64
}

// recordFixedLen is the length of the fixed-layout prefix of a record; the
// two trailing strings are variable. A record shorter than this is corrupt.
const recordFixedLen = 12 + // key
	1 + 1 + // flags, wscale
	4 + 4 + // mss, iss
	8 + 8 + // snd_una, snd_nxt
	8 + 8 + 8 + // cwnd, ssthresh, alpha
	4 + 4 + 4 + 4 + // lastTotal, lastMarked, windowTotal, windowMarked
	8 + 8 + 8 + // alphaSeq, cutSeq, prevCwnd
	4 + 4 + // totalBytes, markedBytes
	8 + 8 + // vtimeouts, lossEvents
	8 + 8 + 1 + // beta, rwndClamp, policy flags
	1 + 1 // two string length bytes

// recordLocked copies a flow into its serialized form. Caller holds f.mu.
func (f *Flow) recordLocked() flowRecord {
	return flowRecord{
		Key:         f.Key,
		PeerWScale:  f.PeerWScale,
		WScaleKnown: f.WScaleKnown,
		GuestECN:    f.GuestECN,
		synSeen:     f.synSeen,
		synAckSeen:  f.synAckSeen,
		issValid:    f.issValid,
		finFwd:      f.finFwd,
		finRev:      f.finRev,

		MSS:           f.MSS,
		iss:           f.iss,
		SndUna:        f.SndUna,
		SndNxt:        f.SndNxt,
		CwndBytes:     f.CwndBytes,
		SsthreshBytes: f.SsthreshBytes,
		Alpha:         f.Alpha,

		lastTotal:    f.lastTotal,
		lastMarked:   f.lastMarked,
		windowTotal:  f.windowTotal,
		windowMarked: f.windowMarked,
		alphaSeq:     f.alphaSeq,
		cutSeq:       f.cutSeq,
		prevCwnd:     f.prevCwndBytes,

		TotalBytes:  f.TotalBytes,
		MarkedBytes: f.MarkedBytes,

		VTimeouts:  f.VTimeouts,
		LossEvents: f.LossEvents,

		Beta:       f.Policy.Beta,
		RwndClamp:  f.Policy.RwndClampBytes,
		PolDisable: f.Policy.Disable,
		PolVCC:     f.Policy.VCC,
		VCCName:    f.vcc.Name(),

		PolBackend: f.Policy.Backend,
		BeState:    f.be.SaveState(f),
	}
}

// --- encoding ---

type snapEncoder struct{ buf []byte }

func (e *snapEncoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *snapEncoder) u16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }
func (e *snapEncoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (e *snapEncoder) u64(v uint64) {
	e.u32(uint32(v >> 32))
	e.u32(uint32(v))
}
func (e *snapEncoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *snapEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *snapEncoder) str(s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	e.u8(uint8(len(s)))
	e.buf = append(e.buf, s...)
}

// boolBit packs b into bit i of a flags byte.
func boolBit(b bool, i uint) uint8 {
	if b {
		return 1 << i
	}
	return 0
}

func (e *snapEncoder) record(r flowRecord) {
	// Reserve the length prefix, encode, then backfill.
	lenAt := len(e.buf)
	e.u16(0)
	start := len(e.buf)

	e.u32(uint32(r.Key.Src))
	e.u32(uint32(r.Key.Dst))
	e.u16(r.Key.SPort)
	e.u16(r.Key.DPort)
	e.u8(boolBit(r.WScaleKnown, 0) | boolBit(r.GuestECN, 1) |
		boolBit(r.synSeen, 2) | boolBit(r.synAckSeen, 3) |
		boolBit(r.issValid, 4) | boolBit(r.finFwd, 5) | boolBit(r.finRev, 6))
	e.u8(r.PeerWScale)
	e.u32(uint32(r.MSS))
	e.u32(r.iss)
	e.i64(r.SndUna)
	e.i64(r.SndNxt)
	e.f64(r.CwndBytes)
	e.f64(r.SsthreshBytes)
	e.f64(r.Alpha)
	e.u32(r.lastTotal)
	e.u32(r.lastMarked)
	e.u32(r.windowTotal)
	e.u32(r.windowMarked)
	e.i64(r.alphaSeq)
	e.i64(r.cutSeq)
	e.f64(r.prevCwnd)
	e.u32(r.TotalBytes)
	e.u32(r.MarkedBytes)
	e.i64(r.VTimeouts)
	e.i64(r.LossEvents)
	e.f64(r.Beta)
	e.i64(r.RwndClamp)
	e.u8(boolBit(r.PolDisable, 0))
	e.str(r.PolVCC)
	e.str(r.VCCName)
	e.str(r.PolBackend)
	e.f64(r.BeState)

	n := len(e.buf) - start
	e.buf[lenAt] = byte(n >> 8)
	e.buf[lenAt+1] = byte(n)
}

// encodeSnapshot renders records into the wire format. Records are encoded
// in the order given; SaveSnapshot sorts them so identical tables produce
// identical bytes.
func encodeSnapshot(capturedAt sim.Time, recs []flowRecord) []byte {
	e := &snapEncoder{buf: make([]byte, 0, snapshotHeaderLen+len(recs)*(recordFixedLen+16)+4)}
	e.buf = append(e.buf, snapshotMagic[:]...)
	e.u16(SnapshotVersion)
	e.u16(0) // reserved
	e.i64(int64(capturedAt))
	e.u32(uint32(len(recs)))
	for _, r := range recs {
		e.record(r)
	}
	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// --- decoding ---

type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *snapDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (want %d bytes of %d)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDecoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (d *snapDecoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}
func (d *snapDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func (d *snapDecoder) u64() uint64 { return uint64(d.u32())<<32 | uint64(d.u32()) }
func (d *snapDecoder) i64() int64  { return int64(d.u64()) }
func (d *snapDecoder) f64() float64 {
	return math.Float64frombits(d.u64())
}
func (d *snapDecoder) str() string {
	n := int(d.u8())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// decodeRecord parses one length-framed record. Trailing bytes beyond the
// known fields are skipped (forward compatibility).
func (d *snapDecoder) record() flowRecord {
	n := int(d.u16())
	body := d.take(n)
	if d.err != nil {
		return flowRecord{}
	}
	rd := &snapDecoder{buf: body}
	var r flowRecord
	r.Key.Src = packet.Addr(rd.u32())
	r.Key.Dst = packet.Addr(rd.u32())
	r.Key.SPort = rd.u16()
	r.Key.DPort = rd.u16()
	flags := rd.u8()
	r.WScaleKnown = flags&(1<<0) != 0
	r.GuestECN = flags&(1<<1) != 0
	r.synSeen = flags&(1<<2) != 0
	r.synAckSeen = flags&(1<<3) != 0
	r.issValid = flags&(1<<4) != 0
	r.finFwd = flags&(1<<5) != 0
	r.finRev = flags&(1<<6) != 0
	r.PeerWScale = rd.u8()
	r.MSS = int(rd.u32())
	r.iss = rd.u32()
	r.SndUna = rd.i64()
	r.SndNxt = rd.i64()
	r.CwndBytes = rd.f64()
	r.SsthreshBytes = rd.f64()
	r.Alpha = rd.f64()
	r.lastTotal = rd.u32()
	r.lastMarked = rd.u32()
	r.windowTotal = rd.u32()
	r.windowMarked = rd.u32()
	r.alphaSeq = rd.i64()
	r.cutSeq = rd.i64()
	r.prevCwnd = rd.f64()
	r.TotalBytes = rd.u32()
	r.MarkedBytes = rd.u32()
	r.VTimeouts = rd.i64()
	r.LossEvents = rd.i64()
	r.Beta = rd.f64()
	r.RwndClamp = rd.i64()
	pflags := rd.u8()
	r.PolDisable = pflags&1 != 0
	r.PolVCC = rd.str()
	r.VCCName = rd.str()
	// Backend fields appended by PR 10 writers: optional, so records from
	// older snapshots (which end at VCCName) still decode.
	if rd.err == nil && rd.off < len(rd.buf) {
		r.PolBackend = rd.str()
		if rd.err == nil && rd.off+8 <= len(rd.buf) {
			r.BeState = rd.f64()
		}
	}
	if rd.err != nil {
		d.fail("record too short (%d bytes)", n)
	}
	// Bytes past BeState belong to a newer writer: ignored by design.
	return r
}

// decodeSnapshot validates framing and checksum and returns the records.
// It never panics on arbitrary input (pinned by FuzzSnapshotDecode).
func decodeSnapshot(data []byte) (capturedAt sim.Time, recs []flowRecord, err error) {
	if len(data) < snapshotHeaderLen+4 {
		return 0, nil, fmt.Errorf("snapshot: %d bytes is shorter than header+crc", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	wantCRC := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 |
		uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return 0, nil, fmt.Errorf("snapshot: CRC mismatch (got %08x want %08x)", got, wantCRC)
	}
	d := &snapDecoder{buf: body}
	var magic [8]byte
	copy(magic[:], d.take(8))
	if magic != snapshotMagic {
		return 0, nil, fmt.Errorf("snapshot: bad magic %q", magic[:])
	}
	version := d.u16()
	if version < 1 {
		return 0, nil, fmt.Errorf("snapshot: bad version %d", version)
	}
	d.u16() // reserved
	capturedAt = sim.Time(d.i64())
	count := d.u32()
	// Each record costs at least its length prefix + fixed fields; refuse
	// counts the remaining bytes cannot possibly hold (bounds allocation).
	if int64(count)*(2+recordFixedLen) > int64(len(body)-d.off) {
		return 0, nil, fmt.Errorf("snapshot: count %d exceeds payload", count)
	}
	recs = make([]flowRecord, 0, count)
	for i := uint32(0); i < count; i++ {
		r := d.record()
		if d.err != nil {
			return 0, nil, d.err
		}
		recs = append(recs, r)
	}
	if d.off != len(body) {
		return 0, nil, fmt.Errorf("snapshot: %d trailing bytes after %d records", len(body)-d.off, count)
	}
	return capturedAt, recs, nil
}

// sanitize clamps decoded numerics to ranges the enforcement math tolerates.
// The CRC catches wire corruption; this catches forgeries and future-writer
// drift, so a restored flow can never carry NaN windows, inverted sequence
// state, or an out-of-range α into the datapath.
func (r *flowRecord) sanitize(cfg *Config) {
	if r.MSS < 64 || r.MSS > 65535 {
		r.MSS = cfg.MTU - 40
	}
	mss := float64(r.MSS)
	iw := cfg.InitCwndPkts * mss
	if !finitePositive(r.CwndBytes) {
		r.CwndBytes = iw
	}
	if !finitePositive(r.SsthreshBytes) {
		r.SsthreshBytes = 1 << 40
	}
	if !(r.prevCwnd >= 0) || math.IsInf(r.prevCwnd, 0) {
		r.prevCwnd = 0
	}
	if !(r.Alpha >= 0) { // NaN fails this too
		r.Alpha = cfg.InitAlpha
	}
	if r.Alpha > 1 {
		r.Alpha = 1
	}
	// Policy fields go through the same sanitizer as the live FlowPolicy
	// path (VSwitch.policy), so a restored flow and a fresh one obey one
	// contract: β ∈ [0,1], non-negative clamp, known vCC name.
	pol := Policy{Beta: r.Beta, RwndClampBytes: r.RwndClamp,
		VCC: r.PolVCC, Backend: r.PolBackend, Disable: r.PolDisable}.sanitize()
	r.Beta, r.RwndClamp, r.PolVCC = pol.Beta, pol.RwndClampBytes, pol.VCC
	r.PolBackend = pol.Backend
	if !(r.BeState >= 0) || math.IsInf(r.BeState, 0) {
		r.BeState = 0 // NaN/negative/∞: the backend re-derives from scratch
	}
	if r.SndUna > r.SndNxt {
		r.SndUna = r.SndNxt
	}
	if r.VTimeouts < 0 {
		r.VTimeouts = 0
	}
	if r.LossEvents < 0 {
		r.LossEvents = 0
	}
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// --- vSwitch API ---

// SaveSnapshot serializes the current flow table (checkpoint). The encoding
// is deterministic: records are sorted by flow key, so identical tables
// yield identical bytes. UDP tunnel flows are skipped (soft state; see the
// file comment).
func (v *VSwitch) SaveSnapshot() []byte {
	var recs []flowRecord
	v.Table.Range(func(f *Flow) {
		f.mu.Lock()
		if !f.isUDP {
			recs = append(recs, f.recordLocked())
		}
		f.mu.Unlock()
	})
	sort.Slice(recs, func(i, j int) bool { return lessKey(recs[i].Key, recs[j].Key) })
	v.Metrics.SnapshotSaves.Inc()
	return encodeSnapshot(v.Sim.Now(), recs)
}

func lessKey(a, b FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SPort != b.SPort {
		return a.SPort < b.SPort
	}
	return a.DPort < b.DPort
}

// RestoreSnapshot decodes data and installs the flows into the table.
// Corrupt input fails open: the table is reset to empty, traffic continues
// untouched, snapshot_corrupt_total is incremented, and the error is
// returned for logging. Every restored data-direction flow enters the
// conservative resync mode (resync.go) before enforcement resumes.
//
// Safe to call from a control-plane goroutine while the datapath processes
// packets: flow creation goes through flowForRestore (no timer operations,
// no pressure eviction), the policy fields route through the Sanitized
// choke point (flowRecord.sanitize), and per-flow state is written under
// each flow's mutex.
func (v *VSwitch) RestoreSnapshot(data []byte) error {
	_, recs, err := decodeSnapshot(data)
	if err != nil {
		v.resetTable()
		v.Metrics.SnapshotCorrupt.Inc()
		return err
	}
	now := v.Sim.Now()
	for i := range recs {
		r := &recs[i]
		if !backendKnown(r.PolBackend) {
			// A snapshot from a newer build naming a backend this one lacks:
			// fail open to the default mechanism, counted like every other
			// unknown-backend clamp (sanitize blanks the name below).
			v.Metrics.BackendUnknown.Inc()
		}
		r.sanitize(&v.Cfg)
		f := v.flowForRestore(r.Key)
		if f == nil {
			// Table at capacity (MaxFlows smaller than the snapshot): the
			// overflow flows fail open exactly like new flows at capacity.
			continue
		}
		f.mu.Lock()
		f.PeerWScale = r.PeerWScale
		f.WScaleKnown = r.WScaleKnown
		f.GuestECN = r.GuestECN
		f.synSeen = r.synSeen
		f.synAckSeen = r.synAckSeen
		f.issValid = r.issValid
		f.finFwd = r.finFwd
		f.finRev = r.finRev
		f.MSS = r.MSS
		f.iss = r.iss
		f.SndUna = r.SndUna
		f.SndNxt = r.SndNxt
		f.CwndBytes = r.CwndBytes
		f.SsthreshBytes = r.SsthreshBytes
		f.Alpha = r.Alpha
		f.lastTotal = r.lastTotal
		f.lastMarked = r.lastMarked
		f.windowTotal = r.windowTotal
		f.windowMarked = r.windowMarked
		f.alphaSeq = r.alphaSeq
		f.cutSeq = r.cutSeq
		f.prevCwndBytes = r.prevCwnd
		f.TotalBytes = r.TotalBytes
		f.MarkedBytes = r.MarkedBytes
		f.VTimeouts = r.VTimeouts
		f.LossEvents = r.LossEvents
		f.Policy = Policy{Beta: r.Beta, RwndClampBytes: r.RwndClamp,
			VCC: r.PolVCC, Backend: r.PolBackend, Disable: r.PolDisable}
		if name := firstNonEmpty(r.PolVCC, v.Cfg.VCC); name != f.vcc.Name() {
			f.vcc = newVCCOrDefault(name)
			f.mCwnd, f.mAlpha = v.Metrics.flowHists(f.vcc.Name())
		}
		// Swap the enforcement backend like applyToLive does and hand it its
		// checkpointed scalar (no-op for dctcp-cut). No simulator access:
		// restore may run on a control-plane goroutine.
		if be := newBackend(firstNonEmpty(r.PolBackend, v.Cfg.Backend)); be != f.be {
			f.be = be
		}
		f.be.RestoreState(v, f, r.BeState)
		f.maxInflight = f.SndNxt - f.SndUna
		f.lastActive = now
		if f.issValid {
			// Even a fresh snapshot is one outage behind the wire: packets
			// were in flight while the vSwitch was down. Re-enter
			// enforcement through the conservative resync round.
			f.enterResyncLocked()
		}
		f.mu.Unlock()
	}
	v.Metrics.SnapshotRestores.Inc()
	return nil
}

// newVCCOrDefault resolves a virtual-CC name from a snapshot. Unknown names
// (a profile from a newer build) degrade to the default DCTCP law instead of
// panicking — the decoder must survive any input.
func newVCCOrDefault(name string) VirtualCC {
	switch name {
	case "", "dctcp", "reno":
		return NewVCC(name)
	default:
		return NewVCC("")
	}
}

// resetTable empties the flow table in place, keeping the table-size gauge
// and churn counters consistent (restart is removal, as far as accounting
// goes). It deliberately does NOT stop per-flow inactivity timers — timer
// operations belong to the simulation goroutine, and resetTable may run from
// a control-plane goroutine during a live restore. Orphaned timers instead
// self-cancel when they fire: onVTimeout checks table membership and ignores
// flows that are no longer the tracked entry for their key.
func (v *VSwitch) resetTable() {
	dropped := int64(v.Table.Clear())
	if dropped > 0 {
		v.Metrics.FlowsRemoved.Add(dropped)
		v.Metrics.FlowTableSize.Add(-dropped)
	}
}

// Restart models the vSwitch process dying and coming back: all flow state
// is discarded, then — when snapshot is non-nil — restored from the
// checkpoint. A nil snapshot is a cold restart: the table starts empty and
// live flows are re-adopted mid-stream by the datapath (resync.go). The
// metrics registry survives (it models the host's observability agent, not
// the vSwitch process), so operators see restart counters, not a reset.
//
// Restart manipulates the sweep timer and must run on the simulation
// goroutine; a daemon marshals it through its command queue. (SaveSnapshot
// and RestoreSnapshot, by contrast, are safe from any goroutine.)
func (v *VSwitch) Restart(snapshot []byte) {
	v.resetTable()
	if v.sweepTimer != nil {
		v.sweepTimer.Stop()
	}
	v.Metrics.Restarts.Inc()
	if snapshot != nil {
		_ = v.RestoreSnapshot(snapshot) // corrupt input already failed open
		if v.sweepTimer != nil && v.Table.Len() > 0 {
			v.sweepTimer.ArmIfIdle(v.Cfg.SweepInterval)
		}
	}
}

// Reattach re-enables the datapath hooks after a Detach (the restart
// scheduler detaches during the outage window so in-flight traffic passes
// through a hook-less host, exactly like a dead OVS with fail-open flows).
// Like Detach, it only flips the attached flag — the stable hook functions
// Attach installed never move — so it is safe from any goroutine even with
// packets mid-hook.
func (v *VSwitch) Reattach() {
	v.attached.Store(true)
}

// FlowCount reports the current flow-table size (part of the restart-target
// surface: recurring restart plans stop re-arming on a drained table).
func (v *VSwitch) FlowCount() int { return v.Table.Len() }
