package core

import (
	"sync/atomic"

	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Config parameterizes one host's AC/DC module.
type Config struct {
	// VCC names the default virtual congestion control ("dctcp" or "reno").
	VCC string
	// Backend names the default enforcement backend ("dctcp-cut", "pace",
	// or "adaptive-k"; "" = dctcp-cut, the paper's RWND-rewrite mechanism).
	// Per-flow Policy.Backend overrides it. Unknown names fail open to the
	// default and are counted in backend_unknown_total (backend.go).
	Backend string
	// MTU sets the default MSS (MTU − 40) used before a handshake MSS
	// option is observed.
	MTU int
	// G is DCTCP's α EWMA gain (default 1/16).
	G float64
	// MaxAlpha is the α assigned on loss (Figure 5's max_alpha; default 1).
	MaxAlpha float64
	// InitAlpha seeds α for new flows (default 1, as in Linux DCTCP).
	InitAlpha float64
	// InitCwndPkts is the virtual initial window in MSS units (default 10).
	InitCwndPkts float64
	// MinRwndBytes floors the enforced window. 0 means one MSS — the bound
	// the paper applies at β=0 and the reason AC/DC beats host DCTCP's
	// 2-packet floor in deep incast (§5.2).
	MinRwndBytes int64
	// VTimeout is the per-flow inactivity timer used to infer guest
	// timeouts (§3.1).
	VTimeout sim.Duration
	// EnforceRwnd enables overwriting the receive window; when false with
	// LogRwnd set, the module runs in the Figure 9 measurement mode.
	EnforceRwnd bool
	// MarkECT makes all egress packets ECN-capable (§3.2).
	MarkECT bool
	// StripECN removes congestion signals before packets reach the guest.
	StripECN bool
	// DisablePACK forces all feedback onto dedicated FACK packets (ablation:
	// feedback piggybacking vs packet overhead).
	DisablePACK bool
	// UDPTunnel enables DCTCP-friendly UDP tunnels (the paper's §3.3
	// future work): guest datagrams are admitted through a virtual DCTCP
	// window with vSwitch-generated feedback. See tunnel.go.
	UDPTunnel bool
	// CutEveryAck disables Figure 5's once-per-window cut guard (ablation:
	// without it every marked ACK multiplies the window down and flows
	// collapse to the floor).
	CutEveryAck bool
	// Police drops egress segments beyond the allowed window (§3.3).
	Police bool
	// PoliceSlackBytes is the allowance above the window before policing
	// drops (default 2 MSS).
	PoliceSlackBytes int64
	// GenDupAcks synthesizes three duplicate ACKs to the guest when the
	// inactivity timer infers loss, triggering guest fast retransmit ahead
	// of a long guest RTO (§3.3).
	GenDupAcks bool
	// FlowPolicy assigns per-flow differentiation (β, clamps, algorithm);
	// nil means DefaultPolicy for everything.
	FlowPolicy func(FlowKey) Policy
	// DisableMetrics skips creating the datapath metrics registry; every
	// instrument update compiles to a nil-check branch. Exists for the
	// overhead ablation (BenchmarkDatapathWithMetrics) — production
	// deployments keep metrics on, which is the default.
	DisableMetrics bool
	// GCInterval/IdleTimeout drive the coarse-grained flow garbage
	// collector (swept lazily from the datapath, §4).
	GCInterval  sim.Duration
	IdleTimeout sim.Duration
	// MaxFlows bounds the flow table (the paper's ~320B/flow budget implies
	// a real capacity). 0 means unbounded. At capacity the datapath first
	// evicts closed/idle flows; if none qualify, the new flow is not tracked
	// and its packets pass through unmodified (fail-open, never dropped).
	MaxFlows int
	// SweepInterval, when >0, runs the garbage collector on a sim-clock
	// timer in addition to the lazy packet-driven sweep, so idle flows are
	// evicted even when the datapath goes quiet. The timer only stays armed
	// while the table is non-empty, so drained simulations still terminate.
	// 0 (default) keeps the pre-existing lazy-only behavior.
	SweepInterval sim.Duration
}

// DefaultConfig returns the paper's settings: DCTCP in the vSwitch, ECT
// marking, ECN stripping, RWND enforcement, IW=10, α EWMA gain 1/16.
func DefaultConfig() Config {
	return Config{
		VCC:          "dctcp",
		MTU:          9000,
		G:            1.0 / 16,
		MaxAlpha:     1,
		InitAlpha:    1,
		InitCwndPkts: 10,
		VTimeout:     10 * sim.Millisecond,
		EnforceRwnd:  true,
		MarkECT:      true,
		StripECN:     true,
		GCInterval:   sim.Second,
		IdleTimeout:  10 * sim.Second,
	}
}

// VSwitch is one host's AC/DC datapath instance (the OVS modification).
type VSwitch struct {
	Sim   *sim.Simulator
	Host  *netsim.Host
	Cfg   Config
	Table *Table
	// Metrics is the datapath observability layer: lock-free counters,
	// gauges, and per-algorithm CWND/α histograms updated from the hot
	// path. Read it via Metrics.Snapshot() or the Stats() convenience
	// method. Nil instruments (Cfg.DisableMetrics) are no-ops.
	Metrics *DatapathMetrics

	// OnRwndComputed, when set, observes every computed enforcement window
	// (flow, window bytes, whether the ACK's RWND was overwritten). Figures
	// 9 and 10 are built on this hook.
	OnRwndComputed func(f *Flow, rwndBytes int64, overwrote bool)

	// Audit, when non-nil, receives packet and state-transition events for
	// invariant checking (internal/audit). Set it before traffic flows (it
	// is read without synchronization from the datapath). Nil costs the hot
	// path one branch and zero allocations.
	Audit Auditor

	lastSweep  sim.Time
	sweepTick  int
	sweepTimer *sim.Timer // armed only when Cfg.SweepInterval > 0
	sweepGroup int        // next shard-group for the sharded timer GC

	// evictCursor round-robins pressure eviction across shards so a table at
	// MaxFlows never pays a full-table sweep per packet; evictRetryAt is the
	// cooldown set after a barren full cycle (nothing evictable), during
	// which flowFor fails open immediately instead of re-scanning.
	evictCursor  int
	evictRetryAt sim.Time

	// batch is the reusable scratch for EgressBatch/IngressBatch (batch.go);
	// inBatch guards it against re-entrant batch calls, which fall back to
	// the per-packet path. Both are touched only on the datapath goroutine.
	batch   batchScratch
	inBatch bool

	// attached gates the datapath hooks. Attach installs stable wrapper
	// funcs on the host exactly once and never swaps them again; Detach and
	// Reattach flip this flag instead, so a control-plane goroutine can
	// detach the module while packets are mid-hook without racing the
	// per-packet hook reads.
	attached atomic.Bool

	// overrides is the live per-flow policy table installed through
	// InstallPolicy (the daemon's policy stream). It is copy-on-write: the
	// datapath reads the current map with one atomic load at flow setup,
	// and installs swap in a fresh map, so a policy push never blocks or
	// races an in-flight Egress/Ingress batch.
	overrides atomic.Pointer[map[FlowKey]Policy]

	// sweepArm requests a sweep-timer arm from a goroutine that must not
	// touch the simulator (snapshot restore under live traffic). The
	// datapath consumes it in maybeSweep, on the simulation goroutine.
	sweepArm atomic.Bool
}

// Attach creates an AC/DC module on host and installs its datapath hooks.
func Attach(s *sim.Simulator, host *netsim.Host, cfg Config) *VSwitch {
	if cfg.G == 0 {
		cfg.G = 1.0 / 16
	}
	if cfg.MaxAlpha == 0 {
		cfg.MaxAlpha = 1
	}
	if cfg.InitCwndPkts == 0 {
		cfg.InitCwndPkts = 10
	}
	if cfg.MTU == 0 {
		cfg.MTU = 9000
	}
	if cfg.VTimeout == 0 {
		cfg.VTimeout = 10 * sim.Millisecond
	}
	if cfg.GCInterval == 0 {
		cfg.GCInterval = sim.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 10 * sim.Second
	}
	reg := metrics.NewRegistry()
	if cfg.DisableMetrics {
		reg = nil
	}
	v := &VSwitch{Sim: s, Host: host, Cfg: cfg, Table: NewTable(),
		Metrics: NewDatapathMetrics(reg)}
	if !backendKnown(v.Cfg.Backend) {
		// Unknown backend in the config: fail open to the default mechanism
		// (counted once here, not per flow) rather than refusing to attach.
		v.Metrics.BackendUnknown.Inc()
		v.Cfg.Backend = ""
	}
	if cfg.SweepInterval > 0 {
		v.sweepTimer = sim.NewTimer(s, v.onSweepTick)
	}
	v.attached.Store(true)
	host.Egress = v.egressHook
	host.Ingress = v.ingressHook
	host.EgressBatch = v.egressBatchHook
	host.IngressBatch = v.ingressBatchHook
	return v
}

// egressHook and ingressHook are the stable functions installed on the host.
// They stay installed for the vSwitch's lifetime; Detach/Reattach flip the
// attached flag, which costs the per-packet path one atomic load and makes
// live detach safe against concurrent traffic (a nil-ing field swap is not).
func (v *VSwitch) egressHook(p *packet.Packet) (out, extra *packet.Packet) {
	if !v.attached.Load() {
		return p, nil // detached: standard vSwitch passthrough
	}
	return v.EgressPath(p)
}

func (v *VSwitch) ingressHook(p *packet.Packet) (out, extra *packet.Packet) {
	if !v.attached.Load() {
		return p, nil
	}
	return v.IngressPath(p)
}

// pool returns the packet pool shared with the host (nil-safe: pool-less
// hosts fall back to plain allocation).
func (v *VSwitch) pool() *packet.Pool {
	if v.Host == nil {
		return nil
	}
	return v.Host.Pool
}

// Detach disables the datapath hooks (reverting to a standard vSwitch).
// Safe to call from any goroutine, even with packets in flight: the hooks
// themselves stay installed and gate on an atomic flag.
func (v *VSwitch) Detach() {
	v.attached.Store(false)
}

// Attached reports whether the datapath hooks are live.
func (v *VSwitch) Attached() bool { return v.attached.Load() }

// policy resolves the per-flow policy: a live InstallPolicy override wins,
// then the FlowPolicy callback, then DefaultPolicy. FlowPolicy callbacks
// must return a fully specified Policy (start from DefaultPolicy and
// override); β=0 is a legal value meaning maximum back-off. Every result is
// routed through the Sanitized choke point before it reaches the
// enforcement math: an operator callback returning β>1 would otherwise make
// Equation (1)'s cut factor exceed 1 — the window would GROW on congestion —
// and a negative clamp would silently disable capping. Snapshot restore
// sanitizes through the same choke point (flowRecord.sanitize).
func (v *VSwitch) policy(k FlowKey) Policy {
	if m := v.overrides.Load(); m != nil {
		if p, ok := (*m)[k]; ok {
			return p // already sanitized by InstallPolicy
		}
	}
	if v.Cfg.FlowPolicy == nil {
		return DefaultPolicy()
	}
	p := v.Cfg.FlowPolicy(k)
	if !backendKnown(p.Backend) {
		// sanitize clamps the name to the default backend; the counter is
		// the only trace the operator gets, so count before the clamp.
		v.Metrics.BackendUnknown.Inc()
	}
	return p.sanitize()
}

// flowFor is the capacity-aware GetOrCreate every datapath create site goes
// through. At MaxFlows it first evicts closed/idle entries; if the table is
// still full the flow is not tracked and the caller must pass the packet
// through unmodified (fail-open — a full table must never drop traffic).
func (v *VSwitch) flowFor(k FlowKey) *Flow {
	if v.Cfg.MaxFlows > 0 {
		if f := v.Table.Get(k); f != nil {
			return f
		}
		if v.Table.Len() >= v.Cfg.MaxFlows {
			v.evictForPressure()
			if v.Table.Len() >= v.Cfg.MaxFlows {
				v.Metrics.FlowTableFull.Inc()
				v.Metrics.FailOpen.Inc()
				return nil
			}
		}
	}
	f, _ := v.Table.GetOrCreate(k, func() *Flow { return v.newFlow(k) })
	return f
}

// flowForRestore is the restore-path counterpart of flowFor, callable from a
// control-plane goroutine while traffic flows. It never runs pressure
// eviction (evictForPressure stops per-flow timers, a simulation-goroutine
// operation) — at capacity the overflow records simply fail open, the same
// outcome a full table gives new traffic — and it creates flows through
// newFlowRestored, which defers sweep-timer arming to the datapath.
func (v *VSwitch) flowForRestore(k FlowKey) *Flow {
	if v.Cfg.MaxFlows > 0 {
		if f := v.Table.Get(k); f != nil {
			return f
		}
		if v.Table.Len() >= v.Cfg.MaxFlows {
			v.Metrics.FlowTableFull.Inc()
			v.Metrics.FailOpen.Inc()
			return nil
		}
	}
	f, _ := v.Table.GetOrCreate(k, func() *Flow { return v.newFlowRestored(k) })
	return f
}

// evictForPressure frees table space at capacity: closed flows go
// immediately, idle ones after GCInterval (a much tighter deadline than the
// ordinary IdleTimeout — under pressure, idleness is eviction).
//
// Eviction is incremental: shards are scanned round-robin from a cursor and
// the scan stops at the first shard that frees anything, so a create under
// pressure pays at most one full table pass — and only when nothing anywhere
// is evictable. That barren case arms a cooldown (GCInterval/4) during which
// further creates fail open immediately instead of re-scanning a table of
// provably live flows on every arriving packet.
func (v *VSwitch) evictForPressure() {
	now := v.Sim.Now()
	if v.evictRetryAt != 0 && now < v.evictRetryAt {
		return
	}
	v.evictRetryAt = 0
	v.Metrics.PressureSweeps.Inc()
	keep := func(f *Flow) bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.finFwd && f.finRev {
			f.stopTimer()
			return false
		}
		if now-f.lastActive > v.Cfg.GCInterval {
			f.stopTimer()
			return false
		}
		return true
	}
	removed := 0
	for scanned := 0; scanned < numShards; scanned++ {
		idx := v.evictCursor
		v.evictCursor = (v.evictCursor + 1) % numShards
		removed += v.Table.SweepShard(idx, keep)
		if removed > 0 {
			break
		}
	}
	if removed > 0 {
		v.Metrics.FlowsEvicted.Add(int64(removed))
		v.Metrics.FlowsRemoved.Add(int64(removed))
		v.Metrics.FlowTableSize.Add(-int64(removed))
		return
	}
	cooldown := v.Cfg.GCInterval / 4
	if cooldown <= 0 {
		cooldown = 1
	}
	v.evictRetryAt = now + cooldown
}

// newFlow creates a tracked flow from the datapath (simulation goroutine):
// it may arm the sweep timer directly.
func (v *VSwitch) newFlow(k FlowKey) *Flow {
	f := v.buildFlow(k)
	if v.sweepTimer != nil {
		v.sweepTimer.ArmIfIdle(v.Cfg.SweepInterval)
	}
	return f
}

// newFlowRestored creates a tracked flow from RestoreSnapshot, which may run
// on a control-plane goroutine while traffic flows: timer arming is deferred
// to the datapath via the sweepArm flag instead of touching the simulator.
func (v *VSwitch) newFlowRestored(k FlowKey) *Flow {
	f := v.buildFlow(k)
	if v.sweepTimer != nil {
		v.sweepArm.Store(true)
	}
	return f
}

// buildFlow is the shared flow construction: policy resolution, virtual-CC
// setup, initial window. Everything it touches is goroutine-safe (atomic
// policy overrides, striped counters, the metrics histogram mutex).
func (v *VSwitch) buildFlow(k FlowKey) *Flow {
	v.Metrics.FlowsCreated.Inc()
	v.Metrics.FlowTableSize.Add(1)
	pol := v.policy(k)
	f := &Flow{
		Key:    k,
		Policy: pol,
		MSS:    v.Cfg.MTU - 40,
		Alpha:  v.Cfg.InitAlpha,
	}
	f.vcc = NewVCC(firstNonEmpty(pol.VCC, v.Cfg.VCC))
	// Both the policy and the config backend fields are sanitized before
	// they reach here (Sanitized choke point / Attach), so this resolution
	// cannot panic; backendFor would double-count the clamp.
	f.be = newBackend(firstNonEmpty(pol.Backend, v.Cfg.Backend))
	f.mCwnd, f.mAlpha = v.Metrics.flowHists(f.vcc.Name())
	f.CwndBytes = v.Cfg.InitCwndPkts * float64(f.MSS)
	f.SsthreshBytes = 1 << 40
	f.vcc.Init(f)
	f.lastActive = v.Sim.Now()
	return f
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// minRwnd returns the enforcement floor for a flow.
func (v *VSwitch) minRwnd(f *Flow) int64 {
	if v.Cfg.MinRwndBytes > 0 {
		return v.Cfg.MinRwndBytes
	}
	return int64(f.MSS)
}

// maybeSweep runs the coarse-grained GC from the datapath (no timers, so
// drained simulations terminate). It also consumes deferred sweep-timer arm
// requests left by goroutines that cannot touch the simulator themselves.
// The batch path calls the two halves itself: consumeSweepArm once per burst
// (the flag is asynchronous anyway) and tickSweep once per packet, so the GC
// cadence matches the sequential path exactly.
func (v *VSwitch) maybeSweep() {
	v.consumeSweepArm()
	v.tickSweep()
}

// consumeSweepArm services deferred sweep-timer arm requests (snapshot
// restore on a control-plane goroutine cannot touch the simulator itself).
func (v *VSwitch) consumeSweepArm() {
	if v.sweepTimer != nil && v.sweepArm.Load() && v.sweepArm.CompareAndSwap(true, false) {
		v.sweepTimer.ArmIfIdle(v.Cfg.SweepInterval)
	}
}

// tickSweep advances the per-packet GC clock and runs the lazy sweep every
// 4096 packets once GCInterval has elapsed.
func (v *VSwitch) tickSweep() {
	v.sweepTick++
	if v.sweepTick&0xfff != 0 {
		return
	}
	now := v.Sim.Now()
	if now-v.lastSweep < v.Cfg.GCInterval {
		return
	}
	v.lastSweep = now
	v.sweepNow(now)
}

// gcKeep is the GC retention predicate shared by the lazy full-table sweep
// and the sharded timer sweep: closed flows go after GCInterval, idle ones
// after IdleTimeout.
func (v *VSwitch) gcKeep(now sim.Time) func(*Flow) bool {
	return func(f *Flow) bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.finFwd && f.finRev && now-f.lastActive > v.Cfg.GCInterval {
			f.stopTimer()
			return false
		}
		if now-f.lastActive > v.Cfg.IdleTimeout {
			f.stopTimer()
			return false
		}
		return true
	}
}

// sweepNow removes closed and idle flows across the whole table (the lazy
// packet-driven sweep, already rate-limited to once per GCInterval).
func (v *VSwitch) sweepNow(now sim.Time) {
	removed := v.Table.Sweep(v.gcKeep(now))
	v.Metrics.FlowsRemoved.Add(int64(removed))
	v.Metrics.FlowTableSize.Add(-int64(removed))
}

// sweepGroups divides the timer GC: each tick sweeps numShards/sweepGroups
// shards and the timer fires sweepGroups times per SweepInterval, so the
// whole table is still covered once per interval but no single timer
// callback ever write-locks all 64 shards at once.
const sweepGroups = 8

// onSweepTick is the SweepInterval timer body: sweep the next shard-group,
// then stay armed only while there are flows left to watch (an empty table
// lets the event queue drain and the simulation end).
func (v *VSwitch) onSweepTick() {
	now := v.Sim.Now()
	v.lastSweep = now
	g := v.sweepGroup
	v.sweepGroup = (v.sweepGroup + 1) % sweepGroups
	const per = numShards / sweepGroups
	removed := v.Table.SweepRange(g*per, (g+1)*per, v.gcKeep(now))
	v.Metrics.FlowsRemoved.Add(int64(removed))
	v.Metrics.FlowTableSize.Add(-int64(removed))
	if v.Table.Len() > 0 {
		tick := v.Cfg.SweepInterval / sweepGroups
		if tick <= 0 {
			tick = v.Cfg.SweepInterval
		}
		v.sweepTimer.Reset(tick)
	}
}

func (f *Flow) stopTimer() {
	if f.inactivity != nil {
		f.inactivity.Stop()
	}
}
