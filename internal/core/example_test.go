package core_test

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// Example demonstrates the minimal AC/DC deployment: stock CUBIC guests,
// DCTCP enforced in the vSwitch, ECN marking at the switch.
func Example() {
	guest := tcpstack.DefaultConfig() // CUBIC, no ECN — the tenant's stack
	acdc := core.DefaultConfig()      // DCTCP in the vSwitch

	net := topo.Star(3, topo.Options{
		Guest: guest,
		ACDC:  &acdc,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	})
	m := workload.NewManager(net)
	workload.Bulk(m, 0, 2)
	workload.Bulk(m, 1, 2)
	net.Sim.RunFor(100 * sim.Millisecond)

	fmt.Println("drops:", net.TotalDrops())
	fmt.Println("queue bounded:", net.Switches[0].Port(2).Stats.MaxQueueBytes < 12*topo.DefaultMarkThreshold)
	fmt.Println("windows enforced:", net.ACDC[0].Stats().RwndRewrites > 0)
	// Output:
	// drops: 0
	// queue bounded: true
	// windows enforced: true
}

// ExamplePolicy shows per-flow differentiation: β priorities and hard
// bandwidth caps assigned by the operator in the vSwitch (§3.4).
func ExamplePolicy() {
	cfg := core.DefaultConfig()
	cfg.FlowPolicy = func(k core.FlowKey) core.Policy {
		p := core.DefaultPolicy()
		switch k.DPort {
		case 443: // latency-sensitive service: full priority
			p.Beta = 1
		case 9000: // batch tier: aggressive back-off
			p.Beta = 0.25
		case 8080: // scavenger: hard cap at 4 segments per RTT
			p.RwndClampBytes = 4 * 8960
		}
		return p
	}
	fmt.Println(cfg.FlowPolicy(core.FlowKey{DPort: 9000}).Beta)
	// Output: 0.25
}

// ExampleVSwitch_Stats reads the datapath observability layer after pushing
// traffic: the quick Stats() view for assertions, and the full metrics
// snapshot (counters, gauges, per-algorithm CWND/α histograms) for
// operator-style reporting.
func ExampleVSwitch_Stats() {
	acdc := core.DefaultConfig()
	net := topo.Star(3, topo.Options{
		Guest: tcpstack.DefaultConfig(),
		ACDC:  &acdc,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	})
	m := workload.NewManager(net)
	workload.Bulk(m, 0, 2)
	workload.Bulk(m, 1, 2)
	net.Sim.RunFor(50 * sim.Millisecond)

	v := net.ACDC[0] // sender s1's vSwitch
	snap := v.Metrics.Snapshot()
	fmt.Println("segments flowed:", snap.Counter("egress_segments_total") > 0)
	fmt.Println("stats match snapshot:", v.Stats().EgressSegs == snap.Counter("egress_segments_total"))
	fmt.Println("flows tracked:", snap.Gauge("flow_table_size") > 0)
	recv := net.ACDC[2].Metrics.Snapshot() // receiver's vSwitch saw CE marks
	fmt.Println("fabric marked CE:", recv.Counter("rx_ce_bytes_total") > 0)
	fmt.Println("cwnd sampled:", snap.Histograms["vcc_cwnd_bytes{alg=dctcp}"].Count > 0)
	// Output:
	// segments flowed: true
	// stats match snapshot: true
	// flows tracked: true
	// fabric marked CE: true
	// cwnd sampled: true
}

// ExampleVSwitch_Detach shows turning the module off at runtime — the host
// behaves like a plain vSwitch (the hooks stay installed but pass traffic
// through untouched), and Detach is safe even with packets in flight.
func ExampleVSwitch_Detach() {
	s := sim.New(1)
	h := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	h.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	v := core.Attach(s, h, core.DefaultConfig())
	fmt.Println("attached:", v.Attached())
	v.Detach()
	fmt.Println("attached:", v.Attached())
	// Output:
	// attached: true
	// attached: false
}
