package core

import "sync"

// numShards for the flow table. The paper uses an RCU hash table because
// lookups vastly outnumber insertions; sharded RW-mutexes give the same
// read-mostly scaling in Go without unsafe tricks, and per-flow spinlocks
// become the per-Flow mutex.
const numShards = 64

type tableShard struct {
	mu    sync.RWMutex
	flows map[FlowKey]*Flow
}

// Table is the vSwitch's connection-tracking table: one entry per data
// direction, two per TCP connection.
type Table struct {
	shards [numShards]tableShard
}

// NewTable creates an empty flow table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].flows = make(map[FlowKey]*Flow)
	}
	return t
}

func (t *Table) shard(k FlowKey) *tableShard {
	// FNV-1a over the tuple, mixed down to a shard index.
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.Src))
	mix(uint64(k.Dst))
	mix(uint64(k.SPort)<<16 | uint64(k.DPort))
	return &t.shards[h%numShards]
}

// Get returns the flow for k, or nil.
func (t *Table) Get(k FlowKey) *Flow {
	s := t.shard(k)
	s.mu.RLock()
	f := s.flows[k]
	s.mu.RUnlock()
	return f
}

// GetOrCreate returns the flow for k, creating it with init if absent.
// created reports whether init ran.
func (t *Table) GetOrCreate(k FlowKey, init func() *Flow) (f *Flow, created bool) {
	s := t.shard(k)
	s.mu.RLock()
	f = s.flows[k]
	s.mu.RUnlock()
	if f != nil {
		return f, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f = s.flows[k]; f != nil {
		return f, false
	}
	f = init()
	s.flows[k] = f
	return f, true
}

// Delete removes the flow for k.
func (t *Table) Delete(k FlowKey) {
	s := t.shard(k)
	s.mu.Lock()
	delete(s.flows, k)
	s.mu.Unlock()
}

// Len counts entries across all shards.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].flows)
		t.shards[i].mu.RUnlock()
	}
	return n
}

// Range calls fn for every flow; fn must not mutate the table. Iteration
// holds one shard read-lock at a time.
func (t *Table) Range(fn func(*Flow)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, f := range s.flows {
			fn(f)
		}
		s.mu.RUnlock()
	}
}

// Clear empties every shard in place and returns how many flows were
// removed. Unlike swapping in a fresh Table, clearing in place is safe while
// another goroutine reads the table through the same pointer (warm restart
// under live traffic): each shard is emptied under its write lock.
func (t *Table) Clear() int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		removed += len(s.flows)
		clear(s.flows)
		s.mu.Unlock()
	}
	return removed
}

// Sweep removes flows failing keep and returns how many were removed.
func (t *Table) Sweep(keep func(*Flow) bool) int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, f := range s.flows {
			if !keep(f) {
				delete(s.flows, k)
				removed++
			}
		}
		s.mu.Unlock()
	}
	return removed
}
