package core

import (
	"sync"
	"sync/atomic"
)

// numShards for the flow table. The paper uses an RCU hash table because
// lookups vastly outnumber insertions; sharded RW-mutexes give the same
// read-mostly scaling in Go without unsafe tricks, and per-flow spinlocks
// become the per-Flow mutex.
const numShards = 64

type tableShard struct {
	mu    sync.RWMutex
	flows map[FlowKey]*Flow
}

// Table is the vSwitch's connection-tracking table: one entry per data
// direction, two per TCP connection.
type Table struct {
	shards [numShards]tableShard

	// size counts entries across all shards, maintained on every insert and
	// delete so Len — which the datapath consults on every flow create under
	// MaxFlows — is one atomic load instead of 64 lock acquisitions.
	size atomic.Int64

	// gen increments on every operation that removes entries (Delete, Sweep*,
	// Clear). The batch datapath prefetches flow pointers before processing a
	// burst; a prefetched pointer is only trusted while gen is unchanged, so
	// an eviction or GC sweep mid-burst invalidates all outstanding hints.
	gen atomic.Uint64
}

// NewTable creates an empty flow table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].flows = make(map[FlowKey]*Flow)
	}
	return t
}

// shardIndex hashes k (FNV-1a over the tuple) down to a shard number. The
// raw FNV multiply only carries entropy upward, so the low bits — all a
// power-of-two shard count keeps — would ignore every input bit above ~6;
// flows differing only in source port (many connections between one host
// pair, the common datacenter shape) would then pile into a single shard.
// The xor-fold finalizer mixes the high half back down before reduction.
func shardIndex(k FlowKey) int {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.Src))
	mix(uint64(k.Dst))
	mix(uint64(k.SPort)<<16 | uint64(k.DPort))
	h ^= h >> 32
	h ^= h >> 16
	return int(h % numShards)
}

func (t *Table) shard(k FlowKey) *tableShard {
	return &t.shards[shardIndex(k)]
}

// genNow snapshots the deletion generation for later genChanged checks.
func (t *Table) genNow() uint64 { return t.gen.Load() }

// genChanged reports whether any entry was removed since the g snapshot.
func (t *Table) genChanged(g uint64) bool { return t.gen.Load() != g }

// Get returns the flow for k, or nil.
func (t *Table) Get(k FlowKey) *Flow {
	s := t.shard(k)
	s.mu.RLock()
	f := s.flows[k]
	s.mu.RUnlock()
	return f
}

// lookupScratch is the reusable state for GetBatch's shard grouping; one per
// batching call site (the VSwitch owns one), never shared across goroutines.
type lookupScratch struct {
	count [numShards]int32
	start [numShards]int32
	shard []uint8
	order []int32
}

// dupStride is the alias distance GetBatch checks for repeated keys. The
// batch datapath lays keys out as [fwd0, rev0, fwd1, rev1, ...], so a train
// of back-to-back segments from one flow — the shape a ring drain of a
// sender's cwnd burst or a GRO-coalesced receive produces — repeats each key
// at distance 2.
const dupStride = 2

// dupShard marks a key slot as an alias of the slot dupStride earlier; it
// must not collide with a real shard number (numShards < 255).
const dupShard = 0xff

// GetBatch looks up keys[i] into dst[i] (nil when absent), grouping the
// lookups by shard so each touched shard's read lock is taken once per batch
// instead of once per key, and the map probes for one shard run back-to-back
// (better cache behavior than interleaving lookups with packet processing).
// A key equal to the key dupStride slots earlier reuses that slot's result
// instead of re-probing, so per-flow packet trains cost one probe per
// direction for the whole run. dst must be at least len(keys) long; sc is
// caller-owned scratch.
func (t *Table) GetBatch(keys []FlowKey, dst []*Flow, sc *lookupScratch) {
	n := len(keys)
	if cap(sc.shard) < n {
		sc.shard = make([]uint8, n)
		sc.order = make([]int32, n)
	}
	sc.shard = sc.shard[:n]
	sc.order = sc.order[:n]
	for i := range sc.count {
		sc.count[i] = 0
	}
	dups := false
	for i, k := range keys {
		if i >= dupStride && k == keys[i-dupStride] {
			sc.shard[i] = dupShard
			dups = true
			continue
		}
		s := shardIndex(k)
		sc.shard[i] = uint8(s)
		sc.count[s]++
	}
	// Counting sort: sc.order lists key indices grouped by shard.
	var sum int32
	for s := range sc.start {
		sc.start[s] = sum
		sum += sc.count[s]
	}
	for i := range keys {
		s := sc.shard[i]
		if s == dupShard {
			continue
		}
		sc.order[sc.start[s]] = int32(i)
		sc.start[s]++
	}
	pos := 0
	for s := range t.shards {
		cnt := int(sc.count[s])
		if cnt == 0 {
			continue
		}
		sh := &t.shards[s]
		sh.mu.RLock()
		for _, i := range sc.order[pos : pos+cnt] {
			dst[i] = sh.flows[keys[i]]
		}
		sh.mu.RUnlock()
		pos += cnt
	}
	if dups {
		// Ascending order propagates a probed result down a whole train.
		for i := dupStride; i < n; i++ {
			if sc.shard[i] == dupShard {
				dst[i] = dst[i-dupStride]
			}
		}
	}
}

// GetOrCreate returns the flow for k, creating it with init if absent.
// created reports whether init ran.
func (t *Table) GetOrCreate(k FlowKey, init func() *Flow) (f *Flow, created bool) {
	s := t.shard(k)
	s.mu.RLock()
	f = s.flows[k]
	s.mu.RUnlock()
	if f != nil {
		return f, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f = s.flows[k]; f != nil {
		return f, false
	}
	f = init()
	s.flows[k] = f
	t.size.Add(1)
	return f, true
}

// Delete removes the flow for k.
func (t *Table) Delete(k FlowKey) {
	s := t.shard(k)
	s.mu.Lock()
	if _, ok := s.flows[k]; ok {
		delete(s.flows, k)
		t.size.Add(-1)
		t.gen.Add(1)
	}
	s.mu.Unlock()
}

// Len reports the entry count: one atomic load, O(1) — the MaxFlows capacity
// check runs it on every flow create, so it must not scan shards.
func (t *Table) Len() int {
	return int(t.size.Load())
}

// ShardStats scans the shards once (read-locked one at a time) and reports
// the total entry count plus the longest shard, for the occupancy and
// imbalance gauges. Control-plane use only; the datapath never calls it.
func (t *Table) ShardStats() (total, maxShard int) {
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n := len(t.shards[i].flows)
		t.shards[i].mu.RUnlock()
		total += n
		if n > maxShard {
			maxShard = n
		}
	}
	return total, maxShard
}

// Range calls fn for every flow; fn must not mutate the table. Iteration
// holds one shard read-lock at a time.
func (t *Table) Range(fn func(*Flow)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, f := range s.flows {
			fn(f)
		}
		s.mu.RUnlock()
	}
}

// Clear empties every shard in place and returns how many flows were
// removed. Unlike swapping in a fresh Table, clearing in place is safe while
// another goroutine reads the table through the same pointer (warm restart
// under live traffic): each shard is emptied under its write lock.
func (t *Table) Clear() int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n := len(s.flows)
		if n > 0 {
			removed += n
			clear(s.flows)
			t.size.Add(-int64(n))
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		t.gen.Add(1)
	}
	return removed
}

// Sweep removes flows failing keep and returns how many were removed.
func (t *Table) Sweep(keep func(*Flow) bool) int {
	return t.SweepRange(0, numShards, keep)
}

// SweepShard sweeps one shard: the unit of incremental pressure eviction.
func (t *Table) SweepShard(i int, keep func(*Flow) bool) int {
	s := &t.shards[i]
	removed := 0
	s.mu.Lock()
	for k, f := range s.flows {
		if !keep(f) {
			delete(s.flows, k)
			removed++
		}
	}
	s.mu.Unlock()
	if removed > 0 {
		t.size.Add(-int64(removed))
		t.gen.Add(1)
	}
	return removed
}

// SweepRange sweeps shards [lo, hi): the unit of the sharded GC tick, which
// walks the table one shard-group at a time instead of locking all 64 shards
// in one timer callback.
func (t *Table) SweepRange(lo, hi int, keep func(*Flow) bool) int {
	removed := 0
	for i := lo; i < hi; i++ {
		removed += t.SweepShard(i, keep)
	}
	return removed
}
