package core

import (
	"acdc/internal/packet"
)

// processFeedbackAndAck is the sender module's per-ACK work (Figure 5):
// extract CC info, update connection tracking, update α once per RTT, react
// to congestion/loss at most once per window, otherwise grow, then enforce
// the resulting window by rewriting RWND.
func (v *VSwitch) processFeedbackAndAck(f *Flow, p *packet.Packet, t packet.TCP, info packet.PACKInfo, haveFeedback bool) {
	enforced, overwrote, ok := v.processAckLocked(f, p, t, info, haveFeedback)
	// The observation hook runs outside the flow lock so it may call
	// Snapshot or walk the table.
	if ok && v.OnRwndComputed != nil {
		v.OnRwndComputed(f, enforced, overwrote)
	}
}

func (v *VSwitch) processAckLocked(f *Flow, p *packet.Packet, t packet.TCP, info packet.PACKInfo, haveFeedback bool) (enforcedOut int64, overwroteOut, okOut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastActive = v.Sim.Now()
	if !f.issValid {
		// We never saw our guest send on this flow; nothing to enforce yet.
		return 0, false, false
	}
	audit := v.Audit
	var ev AckEvent
	if audit != nil {
		ev.Key = f.Key
		ev.PrevSndUna, ev.PrevSndNxt = f.SndUna, f.SndNxt
		ev.HaveFeedback = haveFeedback
	}

	// Feedback deltas (cumulative counters; uint32 wraparound-safe).
	now := v.Sim.Now()
	var totalDelta, markedDelta uint32
	if haveFeedback {
		if f.resync == resyncAwaitFeedback {
			// First feedback after a mid-stream adoption or snapshot
			// restore: the peer's cumulative counters are unanchored
			// relative to our state, so this packet only re-baselines —
			// crediting a delta here would smear stale history into α.
		} else {
			totalDelta = info.TotalBytes - f.lastTotal
			markedDelta = info.MarkedBytes - f.lastMarked
			if totalDelta >= 1<<31 || markedDelta >= 1<<31 {
				// The cumulative counters went backwards: the peer's
				// vSwitch restarted mid-flow (its receiver module restarted
				// counting from zero). Re-baseline with no delta instead of
				// crediting a wrapped ~4GB window of phantom bytes.
				totalDelta, markedDelta = 0, 0
				v.Metrics.FeedbackResets.Inc()
			}
			if markedDelta > totalDelta {
				// A report cannot have marked more bytes than it delivered;
				// corrupt feedback (fuzzed PACK payloads) is clamped here so
				// windowMarked can never exceed windowTotal.
				markedDelta = totalDelta
			}
			f.windowTotal += totalDelta
			f.windowMarked += markedDelta
		}
		f.lastTotal = info.TotalBytes
		f.lastMarked = info.MarkedBytes
		f.lastFeedbackAt = now
		f.fbStaleMark = 0
	}

	// Feedback staleness: the peer's receiver module had been reporting but
	// has gone quiet for a virtual timeout (PACK stripped by a middlebox,
	// FACKs lost). The CE signal is gone, so growth on these blind ACKs
	// would open the window into a possibly congested fabric — freeze it and
	// let the vtimeout/loss machinery handle anything worse. Flows that
	// never saw feedback (one-sided, baseline, non-AC/DC peer) are exempt:
	// for them growth on plain ACKs is the normal mode.
	fbStale := !haveFeedback && f.lastFeedbackAt > 0 &&
		now-f.lastFeedbackAt > v.Cfg.VTimeout
	if fbStale && now-f.fbStaleMark > v.Cfg.VTimeout {
		f.fbStaleMark = now
		v.Metrics.FeedbackTimeouts.Inc()
	}

	absAck := f.absSeq(t.Ack(), f.SndUna)
	if absAck > f.SndNxt {
		absAck = f.SndNxt
	}
	acked := absAck - f.SndUna

	loss := false
	switch {
	case acked > 0:
		f.SndUna = absAck
		f.DupAcks = 0
		if f.inactivity != nil {
			if f.SndUna < f.SndNxt {
				f.inactivity.Reset(v.Cfg.VTimeout)
			} else {
				f.inactivity.Stop()
			}
		}
	case acked == 0 && p.PayloadLen() == 0 && f.SndNxt > f.SndUna &&
		t.Flags()&(packet.FlagSYN|packet.FlagFIN) == 0 &&
		f.lastWndSeen && t.Window() == f.lastWndRaw:
		// A duplicate ACK per RFC 5681 also requires an unchanged window
		// field: a pure window update (the receiver opening or closing its
		// buffer) is not evidence of loss, and a burst of them must not fake
		// a triple-dupack, pin α to max_alpha, and collapse the virtual
		// window.
		f.DupAcks++
		if f.DupAcks == 3 {
			loss = true
			f.LossEvents++
		}
	}
	f.lastAckWire = t.Seq()
	f.lastWndRaw, f.lastWndSeen = t.Window(), true

	// One transition of the resync machine per feedback-carrying ACK
	// (resync.go): first feedback re-anchors, a later feedback ACK covering
	// resyncSeq completes the clean round and re-enables enforcement below.
	v.resyncAdvanceLocked(f, haveFeedback, absAck)

	// α update, roughly once per RTT (when the ACK passes the snapshot of
	// snd_nxt taken at the previous update).
	if absAck >= f.alphaSeq {
		var frac float64
		if f.windowTotal > 0 {
			frac = float64(f.windowMarked) / float64(f.windowTotal)
			if frac > 1 { // corrupt feedback: marked can't exceed total
				frac = 1
			}
		}
		f.Alpha = (1-v.Cfg.G)*f.Alpha + v.Cfg.G*frac
		if audit != nil {
			ev.AlphaUpdated, ev.AlphaFrac = true, frac
		}
		f.windowTotal, f.windowMarked = 0, 0
		f.alphaSeq = f.be.RoundAnchor(v, f, absAck)
		// Per-RTT distribution samples: the operator's view of where the
		// fleet's virtual windows and congestion estimates sit.
		f.mCwnd.Observe(f.CwndBytes)
		f.mAlpha.Observe(f.Alpha)
	}

	// Cwnd validation: the backend judges whether the guest actually
	// pressed against the enforcement since the previous ACK, so growth is
	// earned rather than free (backend.go WindowLimited — the rewriting
	// backends compare peak inflight against the virtual window, the pacer
	// asks its token bucket). The peak inflight since the previous ACK is
	// the gauge — the instantaneous value is zero whenever a delayed ACK
	// covers everything outstanding.
	// A Policy.Disable flow is observation-mode regardless of Cfg.EnforceRwnd:
	// the guest is not bound by the virtual window, so the overshoot gate must
	// not freeze growth (and the rewrite below is skipped entirely).
	enforcing := v.Cfg.EnforceRwnd && !f.Policy.Disable
	cwndLimited := f.be.WindowLimited(v, f, enforcing, f.maxInflight)
	f.maxInflight = f.SndNxt - f.SndUna

	// The enforcement backend owns the congestion decision: dctcp-cut and
	// pace react to any marked byte (Figure 5); adaptive-k gates the
	// reaction behind its load-adaptive threshold K (backend.go).
	congested := f.be.Congested(v, f, totalDelta, markedDelta)
	if loss && !f.be.LossIsFabric(v, f) {
		// Dupacks provoked by the backend's own throttling (a pacer
		// queue-bound drop): the guest's loss recovery is the response;
		// the fabric said nothing, so the virtual window says nothing.
		loss = false
	}
	switch {
	case loss:
		// Figure 5: Loss? yes → α = max_alpha, then cut.
		f.Alpha = v.Cfg.MaxAlpha
		v.cutWindow(f, absAck, true)
	case congested:
		v.cutWindow(f, absAck, false)
		if acked > 0 && cwndLimited {
			// DCTCP still grows between cuts within the window guard.
			f.vcc.OnAck(f, acked)
		}
	case acked > 0 && cwndLimited && !fbStale:
		f.vcc.OnAck(f, acked)
	}
	v.clampFlow(f)

	// --- enforcement (§3.3) ---
	// A resyncing flow stays in conservative mode: the guest keeps its own
	// advertised window untouched until the clean feedback round completes.
	enforced := f.enforcedWindow(v.minRwnd(f))
	overwrote := false
	origWnd := t.Window()
	if enforcing && f.resync == resyncNone {
		// The backend imposes the window its own way: dctcp-cut (and
		// adaptive-k) rewrite the RWND field; pace refreshes its token-
		// bucket rate and leaves the ACK untouched.
		overwrote = f.be.OnAck(v, f, t, enforced, fbStale)
	}
	if audit != nil {
		ev.SndUna, ev.SndNxt = f.SndUna, f.SndNxt
		ev.CreditedTotal, ev.CreditedMarked = totalDelta, markedDelta
		ev.Alpha = f.Alpha
		ev.CwndBytes = f.CwndBytes
		ev.MinRwnd = v.minRwnd(f)
		ev.WScale, ev.WScaleKnown = f.PeerWScale, f.WScaleKnown
		ev.Resyncing = f.resync != resyncNone
		ev.Enforce = enforcing
		ev.Enforced = enforced
		ev.OrigWnd, ev.NewWnd = origWnd, t.Window()
		ev.Overwrote = overwrote
		audit.AckEvent(v, ev)
	}
	return enforced, overwrote, true
}

// cutWindow applies the multiplicative decrease at most once per window
// (Figure 5's "cut wnd in this window before?" guard).
func (v *VSwitch) cutWindow(f *Flow, absAck int64, loss bool) {
	if absAck < f.cutSeq && !v.Cfg.CutEveryAck {
		return // already cut in this window
	}
	f.prevCwndBytes = f.CwndBytes
	factor := f.vcc.CutFactor(f, loss)
	f.CwndBytes *= factor
	f.SsthreshBytes = f.CwndBytes
	f.cutSeq = f.be.RoundAnchor(v, f, absAck)
	v.clampFlow(f)
	if a := v.Audit; a != nil {
		a.CutEvent(v, CutEvent{Key: f.Key, Alg: f.vcc.Name(), Loss: loss,
			Alpha: f.Alpha, Beta: f.Policy.Beta, Factor: factor,
			PrevCwnd: f.prevCwndBytes, NewCwnd: f.CwndBytes})
	}
}

// clampFlow floors the virtual window (β=0 flows are bounded by one MSS to
// avoid starvation; the default floor is also one MSS unless configured) and
// caps it at the largest value the RWND field can express under the peer's
// window scale — anything above that is unenforceable anyway.
func (v *VSwitch) clampFlow(f *Flow) {
	minW := float64(v.minRwnd(f))
	if f.CwndBytes < minW {
		f.CwndBytes = minW
	}
	if f.WScaleKnown {
		if maxW := float64(int64(65535) << f.PeerWScale); f.CwndBytes > maxW {
			f.CwndBytes = maxW
		}
	}
	// Unlike host stacks (2-packet floors), the virtual window is byte-
	// granular: ssthresh only needs to stay positive. This is what lets
	// AC/DC undercut host DCTCP's queue in deep incast (§5.2).
	if f.SsthreshBytes < float64(f.MSS) {
		f.SsthreshBytes = float64(f.MSS)
	}
}

// onVTimeout fires when a flow's inactivity timer expires with data
// outstanding: infer a guest timeout (§3.1), collapse the virtual window,
// and optionally synthesize duplicate ACKs so a guest with a long RTO
// retransmits promptly (§3.3).
func (v *VSwitch) onVTimeout(f *Flow) {
	// Membership guard: a warm restart under live traffic clears the table
	// without stopping per-flow timers (resetTable cannot touch the
	// simulator from a control-plane goroutine). An orphaned flow's timer
	// still fires once; it must neither count a timeout nor re-arm.
	if v.Table.Get(f.Key) != f {
		return
	}
	f.mu.Lock()
	if f.SndUna >= f.SndNxt {
		f.mu.Unlock()
		return
	}
	v.Metrics.VTimeouts.Inc()
	f.VTimeouts++
	f.Alpha = v.Cfg.MaxAlpha
	f.vcc.OnTimeout(f)
	v.clampFlow(f)
	f.cutSeq = f.SndNxt
	genDup := v.Cfg.GenDupAcks && f.issValid
	var dup *packet.Packet
	if genDup {
		dup = v.buildDupAckLocked(f)
	}
	f.inactivity.Reset(v.Cfg.VTimeout)
	f.mu.Unlock()

	if dup != nil {
		// Three dup ACKs, but only two clones: the third delivery hands the
		// original over (the guest side owns delivered packets).
		for i := 0; i < 2; i++ {
			v.Metrics.DupAcksGenerated.Inc()
			v.Host.DeliverLocal(v.pool().Clone(dup))
		}
		v.Metrics.DupAcksGenerated.Inc()
		v.Host.DeliverLocal(dup)
	}
}

// buildDupAckLocked crafts a duplicate ACK toward the guest for the flow's
// current snd_una, using header fields remembered from the last real ACK.
// Caller holds f.mu.
func (v *VSwitch) buildDupAckLocked(f *Flow) *packet.Packet {
	enforced := f.enforcedWindow(v.minRwnd(f))
	field := enforced >> f.PeerWScale
	if field == 0 {
		field = 1
	}
	if field > 65535 {
		field = 65535
	}
	// The backend chooses the advertised window: rewrite backends use the
	// enforced field; pace echoes the guest's own last window instead.
	wnd := f.be.DupAckWindow(v, f, uint16(field))
	return packet.BuildIn(v.pool(), f.Key.Dst, f.Key.Src, packet.NotECT, packet.TCPFields{
		SrcPort: f.Key.DPort, DstPort: f.Key.SPort,
		Seq: f.lastAckWire, Ack: f.iss + uint32(f.SndUna),
		Flags: packet.FlagACK, Window: wnd,
	}, 0)
}

// SendWindowUpdate synthesizes a TCP window-update ACK toward the local
// guest reflecting the flow's current enforced window (§3.3: "ACEDC can
// create these packets to update windows without relying on ACKs").
func (v *VSwitch) SendWindowUpdate(k FlowKey) bool {
	f := v.Table.Get(k)
	if f == nil {
		return false
	}
	f.mu.Lock()
	if !f.issValid {
		f.mu.Unlock()
		return false
	}
	upd := v.buildDupAckLocked(f)
	f.mu.Unlock()
	v.Host.DeliverLocal(upd)
	return true
}
