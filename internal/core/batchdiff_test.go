package core

// Differential tests for the batch datapath: EgressBatch/IngressBatch must be
// observably identical to running EgressPath/IngressPath over the same
// packets in the same order — same output bytes, same drops, same final
// metrics, same audit event stream — for every way of splitting the traffic
// into bursts. The deterministic test sweeps a scripted traffic mix covering
// every packet class; the fuzz target lets the fuzzer pick both the traffic
// and the burst boundaries.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// diffStep is one packet presented to one datapath direction.
type diffStep struct {
	egress bool
	buf    []byte // wire bytes; each replay works on its own copy
}

// diffAuditor records every audit callback as a formatted line so two replays
// can be compared event-for-event. All event structs are plain values.
type diffAuditor struct {
	log []string
}

func (a *diffAuditor) PacketEvent(v *VSwitch, dir AuditDir, pre PacketPre, out, extra *packet.Packet, outIsInput bool) {
	var ob, eb []byte
	if out != nil {
		ob = out.Buf
	}
	if extra != nil {
		eb = extra.Buf
	}
	a.log = append(a.log, fmt.Sprintf("pkt %v pre=%+v out=%x extra=%x in=%v", dir, pre, ob, eb, outIsInput))
}
func (a *diffAuditor) AckEvent(v *VSwitch, e AckEvent) {
	a.log = append(a.log, fmt.Sprintf("ack %+v", e))
}
func (a *diffAuditor) CutEvent(v *VSwitch, e CutEvent) {
	a.log = append(a.log, fmt.Sprintf("cut %+v", e))
}
func (a *diffAuditor) PoliceEvent(v *VSwitch, e PoliceEvent) {
	a.log = append(a.log, fmt.Sprintf("pol %+v", e))
}

// diffRow is the observable outcome for one input packet.
type diffRow struct {
	out, extra []byte
	dropped    bool
}

func rowOf(in *packet.Packet, out, extra *packet.Packet) diffRow {
	r := diffRow{dropped: out == nil && extra == nil}
	if out != nil {
		r.out = append([]byte(nil), out.Buf...)
	}
	if extra != nil {
		r.extra = append([]byte(nil), extra.Buf...)
	}
	return r
}

func diffVSwitch(t *testing.T) (*VSwitch, *diffAuditor) {
	t.Helper()
	s := sim.New(5)
	host := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	host.NIC = netsim.NewLink(s, "nic", 10e9, sim.Microsecond,
		netsim.HandlerFunc(func(*packet.Packet) {}))
	cfg := DefaultConfig()
	cfg.MTU = 1500
	cfg.MaxFlows = 8 // small cap so fuzzed traffic reaches the pressure path
	v := Attach(s, host, cfg)
	aud := &diffAuditor{}
	v.Audit = aud
	return v, aud
}

// replaySequential drives the steps one packet at a time.
func replaySequential(v *VSwitch, steps []diffStep) []diffRow {
	rows := make([]diffRow, 0, len(steps))
	for _, st := range steps {
		p := &packet.Packet{Buf: append([]byte(nil), st.buf...)}
		var out, extra *packet.Packet
		if st.egress {
			out, extra = v.EgressPath(p)
		} else {
			out, extra = v.IngressPath(p)
		}
		rows = append(rows, rowOf(p, out, extra))
	}
	return rows
}

// replayBatched drives the steps through the batch entry points: consecutive
// same-direction packets form a run, each run is chopped into bursts of at
// most split packets.
func replayBatched(v *VSwitch, steps []diffStep, split int) []diffRow {
	rows := make([]diffRow, 0, len(steps))
	var ps []*packet.Packet
	var pairs []*packet.Packet
	flush := func(egress bool) {
		for len(ps) > 0 {
			n := len(ps)
			if n > split {
				n = split
			}
			burst := ps[:n]
			if egress {
				pairs = v.EgressBatch(burst, pairs[:0])
			} else {
				pairs = v.IngressBatch(burst, pairs[:0])
			}
			for i, p := range burst {
				rows = append(rows, rowOf(p, pairs[2*i], pairs[2*i+1]))
			}
			ps = ps[n:]
		}
		ps = ps[:0]
	}
	for i := 0; i < len(steps); {
		j := i
		for j < len(steps) && steps[j].egress == steps[i].egress {
			j++
		}
		ps = ps[:0]
		for _, st := range steps[i:j] {
			ps = append(ps, &packet.Packet{Buf: append([]byte(nil), st.buf...)})
		}
		flush(steps[i].egress)
		i = j
	}
	return rows
}

// runDifferential replays steps sequentially and batched at the given split
// and fails on any observable divergence.
func runDifferential(t *testing.T, steps []diffStep, split int) {
	t.Helper()
	va, auda := diffVSwitch(t)
	vb, audb := diffVSwitch(t)

	rowsA := replaySequential(va, steps)
	rowsB := replayBatched(vb, steps, split)

	if len(rowsA) != len(rowsB) {
		t.Fatalf("split=%d: %d sequential rows vs %d batched", split, len(rowsA), len(rowsB))
	}
	for i := range rowsA {
		a, b := rowsA[i], rowsB[i]
		if a.dropped != b.dropped || !bytes.Equal(a.out, b.out) || !bytes.Equal(a.extra, b.extra) {
			t.Fatalf("split=%d: packet %d diverged\nseq:   drop=%v out=%x extra=%x\nbatch: drop=%v out=%x extra=%x",
				split, i, a.dropped, a.out, a.extra, b.dropped, b.out, b.extra)
		}
	}
	if sa, sb := va.Stats(), vb.Stats(); sa != sb {
		t.Fatalf("split=%d: stats diverged\nseq:   %+v\nbatch: %+v", split, sa, sb)
	}
	if va.Table.Len() != vb.Table.Len() {
		t.Fatalf("split=%d: table len %d vs %d", split, va.Table.Len(), vb.Table.Len())
	}
	if !reflect.DeepEqual(auda.log, audb.log) {
		n := len(auda.log)
		if len(audb.log) < n {
			n = len(audb.log)
		}
		for i := 0; i < n; i++ {
			if auda.log[i] != audb.log[i] {
				t.Fatalf("split=%d: audit event %d diverged\nseq:   %s\nbatch: %s",
					split, i, auda.log[i], audb.log[i])
			}
		}
		t.Fatalf("split=%d: audit stream length %d vs %d", split, len(auda.log), len(audb.log))
	}
}

// diffTraffic builds a scripted mix hitting every packet class the datapath
// distinguishes: handshakes, data both ways, plain and PACK-carrying ACKs,
// CE-marked arrivals, FINs, UDP, malformed options, truncated TCP, junk.
func diffTraffic() []diffStep {
	la := packet.MakeAddr(10, 0, 0, 1)
	var steps []diffStep
	add := func(egress bool, p *packet.Packet) {
		steps = append(steps, diffStep{egress: egress, buf: append([]byte(nil), p.Buf...)})
	}
	pack := func(total, marked uint32) []byte {
		var opt [packet.PACKOptionLen]byte
		packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: total, MarkedBytes: marked})
		return opt[:]
	}

	for f := 0; f < 12; f++ {
		ra := packet.MakeAddr(10, 0, 0, byte(2+f))
		sp, dp := uint16(100+f), uint16(5001)
		// Handshake.
		add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sp, DstPort: dp, Seq: 0, Flags: packet.FlagSYN, Window: 65535,
			Options: packet.BuildSynOptions(1460, 7, true)}, 0))
		add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
			SrcPort: dp, DstPort: sp, Seq: 0, Ack: 1,
			Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
			Options: packet.BuildSynOptions(1460, 7, true)}, 0))
		// Data out, feedback back (growing PACK totals, some marked).
		seq := uint32(1)
		for r := 0; r < 4; r++ {
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: seq, Ack: 1,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535}, 1000))
			seq += 1000
			marked := uint32(0)
			if r%2 == 1 {
				marked = 500 * uint32(r)
			}
			ack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: seq,
				Flags: packet.FlagACK, Window: 65535}, 0)
			ack.Buf = packet.InsertTCPOption(ack.Buf, pack(1000*uint32(r+1), marked))
			add(false, ack)
		}
		// Receiver side: data arriving (every third CE-marked), ACK leaving
		// (PACK attach in place).
		ecn := packet.ECT0
		if f%3 == 0 {
			ecn = packet.CE
		}
		add(false, packet.Build(ra, la, ecn, packet.TCPFields{
			SrcPort: dp, DstPort: sp, Seq: 1, Ack: seq,
			Flags: packet.FlagACK | packet.FlagPSH, Window: 65535}, 1200))
		add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: 1201,
			Flags: packet.FlagACK, Window: 65535}, 0))
		// Half the flows close.
		if f%2 == 0 {
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: seq, Ack: 1201,
				Flags: packet.FlagACK | packet.FlagFIN, Window: 65535}, 0))
			add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1201, Ack: seq + 1,
				Flags: packet.FlagACK | packet.FlagFIN, Window: 65535}, 0))
		}
	}

	// Fail-open classes, interleaved in both directions.
	ra := packet.MakeAddr(10, 0, 0, 99)
	udp := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
		SrcPort: 7, DstPort: 7, Seq: 1, Flags: packet.FlagACK, Window: 100}, 64)
	udp.Buf[9] = 17
	packet.IPv4(udp.Buf).ComputeChecksum()
	add(true, udp)
	add(false, udp)
	bad := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
		SrcPort: 8, DstPort: 8, Seq: 1, Flags: packet.FlagACK, Window: 100,
		Options: []byte{packet.OptMSS, 40, 0, 0}}, 64)
	add(true, bad)
	add(false, bad)
	add(true, &packet.Packet{Buf: []byte{1, 2, 3}})
	add(false, &packet.Packet{Buf: []byte{0x45, 0}})
	return steps
}

// TestBatchDifferential sweeps the scripted traffic over a range of burst
// splits, including degenerate (1), odd, and whole-run sizes.
func TestBatchDifferential(t *testing.T) {
	steps := diffTraffic()
	for _, split := range []int{1, 2, 3, 5, 8, 32, len(steps)} {
		split := split
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			runDifferential(t, steps, split)
		})
	}
}

// FuzzBatchDifferential lets the fuzzer choose traffic and burst boundaries.
// Each input byte encodes one step (packet kind, flow, direction); the split
// byte picks the burst size. Equivalence must hold for every input.
func FuzzBatchDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, byte(3))
	f.Add([]byte{2, 2, 2, 4, 4, 4, 2, 4, 2, 4}, byte(2))
	f.Add([]byte{0, 12, 24, 36, 48, 60, 72, 84, 96}, byte(4)) // distinct flows: pressure eviction
	f.Add([]byte{}, byte(1))
	f.Fuzz(func(t *testing.T, script []byte, splitB byte) {
		if len(script) > 96 {
			script = script[:96]
		}
		split := int(splitB)%16 + 1
		steps := fuzzTraffic(script)
		if len(steps) == 0 {
			return
		}
		runDifferential(t, steps, split)
	})
}

// fuzzTraffic decodes a fuzz script into steps: 12 packet kinds across a
// handful of flows, per-flow sequence cursors so later packets build on
// earlier state.
func fuzzTraffic(script []byte) []diffStep {
	la := packet.MakeAddr(10, 0, 0, 1)
	type cursor struct{ seq, acked uint32 }
	cur := map[int]*cursor{}
	var steps []diffStep
	add := func(egress bool, p *packet.Packet) {
		steps = append(steps, diffStep{egress: egress, buf: append([]byte(nil), p.Buf...)})
	}
	for _, b := range script {
		kind := int(b) % 12
		flow := (int(b) / 12) % 12 // 12 flows vs MaxFlows=8: guaranteed pressure
		ra := packet.MakeAddr(10, 0, 0, byte(2+flow))
		sp, dp := uint16(1000+flow), uint16(5001)
		c := cur[flow]
		if c == nil {
			c = &cursor{seq: 1}
			cur[flow] = c
		}
		switch kind {
		case 0: // SYN out
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: 0, Flags: packet.FlagSYN, Window: 65535,
				Options: packet.BuildSynOptions(1460, 7, true)}, 0))
		case 1: // SYN-ACK in
			add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 0, Ack: 1,
				Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
				Options: packet.BuildSynOptions(1460, 7, true)}, 0))
		case 2: // data out
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: c.seq, Ack: 1,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535}, 1000))
			c.seq += 1000
		case 3: // plain ACK in
			add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: c.seq,
				Flags: packet.FlagACK, Window: 65535}, 0))
		case 4: // PACK ACK in
			c.acked += 1000
			ack := packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: c.seq,
				Flags: packet.FlagACK, Window: 65535}, 0)
			var opt [packet.PACKOptionLen]byte
			packet.EncodePACK(opt[:], packet.PACKInfo{TotalBytes: c.acked, MarkedBytes: c.acked / 4})
			ack.Buf = packet.InsertTCPOption(ack.Buf, opt[:])
			add(false, ack)
		case 5: // data in, ECT
			add(false, packet.Build(ra, la, packet.ECT0, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: c.seq,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535}, 1200))
		case 6: // data in, CE-marked
			add(false, packet.Build(ra, la, packet.CE, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: c.seq,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65535}, 1200))
		case 7: // bare ACK out (receiver module, PACK attach)
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: c.seq, Ack: 1201,
				Flags: packet.FlagACK, Window: 65535}, 0))
		case 8: // FIN out
			add(true, packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: c.seq, Ack: 1,
				Flags: packet.FlagACK | packet.FlagFIN, Window: 65535}, 0))
		case 9: // FIN in
			add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1201, Ack: c.seq,
				Flags: packet.FlagACK | packet.FlagFIN, Window: 65535}, 0))
		case 10: // UDP out
			u := packet.Build(la, ra, packet.NotECT, packet.TCPFields{
				SrcPort: sp, DstPort: dp, Seq: 1, Flags: packet.FlagACK, Window: 100}, 64)
			u.Buf[9] = 17
			packet.IPv4(u.Buf).ComputeChecksum()
			add(true, u)
		case 11: // malformed options in
			add(false, packet.Build(ra, la, packet.NotECT, packet.TCPFields{
				SrcPort: dp, DstPort: sp, Seq: 1, Ack: c.seq,
				Flags: packet.FlagACK, Window: 65535,
				Options: []byte{packet.OptMSS, 40, 0, 0}}, 64))
		}
	}
	return steps
}
