package core

import (
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
)

// TestPACKCoexistsWithSACKOptions checks the tightest option-space case:
// an ACK already carrying the maximum 3 SACK blocks (2+24 bytes, padded to
// 28) still fits the 12-byte PACK — exactly filling the 40-byte TCP option
// space — and the guest sender still parses its SACK blocks after the peer
// vSwitch strips the PACK.
func TestPACKCoexistsWithSACKOptions(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)

	// Receiver-module state with counted bytes.
	v.Ingress(dataPkt(peer, host.Addr, 200, 100, 9000, 1500))

	sack := packet.EncodeSACK(nil, []packet.SACKBlock{
		{Start: 10_000, End: 11_000},
		{Start: 12_000, End: 13_000},
		{Start: 14_000, End: 15_000},
	})
	ack := packet.Build(host.Addr, peer, packet.NotECT, packet.TCPFields{
		SrcPort: 100, DstPort: 200, Seq: 1, Ack: 10_500,
		Flags: packet.FlagACK, Window: 65535, Options: sack,
	}, 0)
	out := v.Egress(ack)
	if len(out) != 1 {
		t.Fatalf("expected PACK piggyback (1 packet), got %d (FACK fallback?)", len(out))
	}
	tc := out[0].TCP()
	if tc.HeaderLen() != packet.MaxTCPHeaderLen {
		t.Fatalf("header len %d, want the full 60", tc.HeaderLen())
	}
	if packet.FindOption(tc.Options(), packet.OptPACK) == nil {
		t.Fatal("PACK missing")
	}
	blocks := packet.ParseSACK(packet.FindOption(tc.Options(), packet.OptSACK))
	if len(blocks) != 3 || blocks[0].Start != 10_000 {
		t.Fatalf("SACK blocks disturbed: %+v", blocks)
	}
	if !out[0].IP().VerifyChecksum() {
		t.Fatal("checksum broken")
	}

	// Simulate the peer's sender module stripping the PACK: SACK survives.
	stripped := packet.RemoveTCPOption(out[0].Buf, packet.OptPACK)
	st := packet.IPv4(stripped).TCP()
	blocks = packet.ParseSACK(packet.FindOption(st.Options(), packet.OptSACK))
	if len(blocks) != 3 || blocks[2].End != 15_000 {
		t.Fatalf("SACK lost after PACK strip: %+v", blocks)
	}
}

// TestEndToEndSACKUnderACDC: burst loss on an AC/DC-enforced flow recovers
// via guest SACK while the vSwitch rewrites windows on the same ACKs.
func TestEndToEndSACKUnderACDC(t *testing.T) {
	guest := tcpstack.DefaultConfig()
	guest.MTU = 1500
	acdcCfg := DefaultConfig()
	acdcCfg.MTU = 1500
	b := newBench(t, 2, guest, &acdcCfg, redK(), 10e9)

	count, dropped := 0, 0
	inner := b.hosts[0].Egress
	b.hosts[0].EgressBatch = nil // bursts must hit the override too
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		out, extra := inner(p)
		if p.PayloadLen() > 0 {
			count++
			if count >= 50 && dropped < 4 {
				dropped++
				return nil, nil
			}
		}
		return out, extra
	}
	var srvp = new(*tcpstack.Conn)
	b.stacks[1].Listen(5001, func(c *tcpstack.Conn) { *srvp = c })
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(2_000_000)
	b.s.RunFor(200 * sim.Millisecond)
	if (*srvp).Delivered != 2_000_000 {
		t.Fatalf("delivered %d", (*srvp).Delivered)
	}
	if cli.Timeouts != 0 {
		t.Fatalf("RTO under AC/DC+SACK burst loss (%d)", cli.Timeouts)
	}
	if b.acdc[0].Stats().RwndRewrites == 0 {
		t.Fatal("AC/DC idle")
	}
}

// TestTxDoneCallbacks: the NIC tx-completion and egress-free paths both fire.
func TestTxDoneCallbacks(t *testing.T) {
	s := sim.New(1)
	h := netsim.NewHost(s, "h", packet.MakeAddr(10, 0, 0, 1))
	sink := netsim.HandlerFunc(func(*packet.Packet) {})
	h.NIC = netsim.NewLink(s, "nic", 1e9, sim.Microsecond, sink)
	var done, freed int
	h.NIC.OnTxDone = func(*packet.Packet) { done++ }
	h.OnTxFree = func(*packet.Packet) { freed++ }

	p := dataPkt(h.Addr, packet.MakeAddr(10, 0, 0, 2), 1, 2, 0, 100)
	h.Output(p.Clone())
	s.RunAll()
	if done != 1 {
		t.Fatalf("OnTxDone = %d", done)
	}
	// Dropping egress hook → OnTxFree.
	h.Egress = func(*packet.Packet) (*packet.Packet, *packet.Packet) { return nil, nil }
	h.Output(p.Clone())
	if freed != 1 {
		t.Fatalf("OnTxFree = %d", freed)
	}
}
