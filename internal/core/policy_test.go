package core

import (
	"math"
	"testing"

	"acdc/internal/packet"
)

// TestFlowPolicySanitized is the regression test for the unvalidated live
// policy path: an operator FlowPolicy callback returning out-of-range values
// used to be installed verbatim, so β>1 made Equation (1)'s cut factor exceed
// 1 (the window GREW on congestion), a negative clamp silently disabled
// capping, and an unknown VCC name panicked flow setup. All three now route
// through the same sanitizer as snapshot restore.
func TestFlowPolicySanitized(t *testing.T) {
	cases := []struct {
		name    string
		hostile Policy
		want    Policy
	}{
		{"beta above 1", Policy{Beta: 3}, Policy{Beta: 1}},
		{"beta NaN", Policy{Beta: math.NaN()}, Policy{Beta: 1}},
		{"beta negative", Policy{Beta: -0.5}, Policy{Beta: 1}},
		{"negative clamp", Policy{Beta: 1, RwndClampBytes: -1}, Policy{Beta: 1}},
		{"unknown vcc", Policy{Beta: 1, VCC: "bogus"}, Policy{Beta: 1}},
		{"unknown backend", Policy{Beta: 1, Backend: "bogus"}, Policy{Beta: 1}},
		{"legal pace backend kept", Policy{Beta: 1, Backend: "pace"},
			Policy{Beta: 1, Backend: "pace"}},
		{"legal zero beta kept", Policy{Beta: 0, RwndClampBytes: 5000},
			Policy{Beta: 0, RwndClampBytes: 5000}},
		{"legal reno kept", Policy{Beta: 0.5, VCC: "reno"},
			Policy{Beta: 0.5, VCC: "reno"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.FlowPolicy = func(FlowKey) Policy { return tc.hostile }
			v, host, _ := loneVSwitch(t, cfg)
			peer := packet.MakeAddr(10, 0, 0, 2)
			// Flow setup must not panic even for unknown VCC names.
			v.Egress(dataPkt(host.Addr, peer, 100, 200, 5000, 1000))
			f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
			if f == nil {
				t.Fatal("no flow created")
			}
			if f.Policy != tc.want {
				t.Fatalf("installed policy %+v, want %+v", f.Policy, tc.want)
			}
		})
	}
}

// TestHostileBetaNeverGrowsWindowOnCut: the observable symptom of the β bug —
// a congestion cut must never increase the virtual window, whatever the
// operator callback returned.
func TestHostileBetaNeverGrowsWindowOnCut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowPolicy = func(FlowKey) Policy { return Policy{Beta: 3} }
	v, host, _ := loneVSwitch(t, cfg)
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 100, 200, 5000, 1000))
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
	before := f.Snapshot().CwndBytes
	v.cutWindow(f, 0, false) // α = InitAlpha = 1: an unclamped β=3 gives factor 1.5
	if after := f.Snapshot().CwndBytes; after > before {
		t.Fatalf("congestion cut grew the window: %v → %v", before, after)
	}
}

// TestWindowUpdateStormNoFakeLoss is the regression test for the dupack
// misclassification: zero-payload non-advancing ACKs whose *window field
// changed* are pure window updates, not duplicate ACKs. A storm of them used
// to fake a triple-dupack, pin α to max_alpha, and collapse the virtual
// window to the floor.
func TestWindowUpdateStormNoFakeLoss(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 100, 200, 777_000, 1000))
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
	if f == nil {
		t.Fatal("no flow created")
	}
	cwndBefore := f.Snapshot().CwndBytes
	// Four ACKs for the same (un-advanced) snd_una, each opening the receive
	// buffer a little further: a classic window-update storm.
	for i, wnd := range []uint16{1000, 2000, 3000, 4000} {
		v.Ingress(ackPkt(peer, host.Addr, 200, 100, 777_000, wnd))
		f.mu.Lock()
		dups, losses := f.DupAcks, f.LossEvents
		f.mu.Unlock()
		if dups != 0 || losses != 0 {
			t.Fatalf("after window update %d: DupAcks=%d LossEvents=%d, want 0/0",
				i+1, dups, losses)
		}
	}
	if got := f.Snapshot().CwndBytes; got != cwndBefore {
		t.Fatalf("window-update storm moved the virtual window: %v → %v",
			cwndBefore, got)
	}
}

// TestGenuineTripleDupackStillDetected: the control case — duplicate ACKs
// with an unchanged window field must still count toward the triple-dupack
// loss inference (the fix must not blind §3.1's loss detection).
func TestGenuineTripleDupackStillDetected(t *testing.T) {
	v, host, _ := loneVSwitch(t, DefaultConfig())
	peer := packet.MakeAddr(10, 0, 0, 2)
	v.Egress(dataPkt(host.Addr, peer, 100, 200, 777_000, 1000))
	f := v.Table.Get(FlowKey{Src: host.Addr, Dst: peer, SPort: 100, DPort: 200})
	// First ACK establishes the window baseline; the next three are true
	// duplicates (same ack, same window) and must trip the loss inference.
	for i := 0; i < 4; i++ {
		v.Ingress(ackPkt(peer, host.Addr, 200, 100, 777_000, 65535))
	}
	f.mu.Lock()
	dups, losses := f.DupAcks, f.LossEvents
	f.mu.Unlock()
	if dups != 3 || losses != 1 {
		t.Fatalf("DupAcks=%d LossEvents=%d, want 3/1", dups, losses)
	}
}
