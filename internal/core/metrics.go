package core

import (
	"sync"

	"acdc/internal/metrics"
)

// DatapathMetrics holds the pre-resolved instrument handles the vSwitch
// datapath updates. Handles are resolved once at Attach time so the
// Egress/Ingress hot path performs only branch-predictable nil checks and
// lock-free atomic updates — never a registry lookup.
//
// Counter names follow the `*_total` convention; everything is visible via
// Snapshot(), the text/JSON encoders in internal/metrics, and the telemetry
// timelines internal/experiments records.
type DatapathMetrics struct {
	reg *metrics.Registry

	// Packet and byte throughput through the two datapath hooks.
	EgressSegs   *metrics.Counter // egress_segments_total
	IngressSegs  *metrics.Counter // ingress_segments_total
	EgressBytes  *metrics.Counter // egress_bytes_total (IP length of valid packets)
	IngressBytes *metrics.Counter // ingress_bytes_total

	// Receiver-module congestion accounting: payload bytes counted toward
	// PACK feedback and the CE-marked subset. Their ratio is the fabric's
	// observed CE fraction — the operator's signal for tuning K and G.
	DataBytes *metrics.Counter // rx_data_bytes_total
	CEBytes   *metrics.Counter // rx_ce_bytes_total

	// ECN plumbing: packets stamped ECT on egress (§3.2 "mark all packets
	// ECN-capable") and packets whose ECN field was rewritten before
	// reaching the guest (CE hidden or ECT cleared).
	ECTMarks    *metrics.Counter // ect_marked_total
	ECNStripped *metrics.Counter // ecn_stripped_total

	// Enforcement: RWND overwrites applied vs. left as-is (the ACK already
	// carried a smaller window), and §3.3 policing drops.
	RwndRewrites  *metrics.Counter // rwnd_rewrites_total
	RwndUnchanged *metrics.Counter // rwnd_noop_total
	PolicingDrops *metrics.Counter // policing_drops_total

	// Feedback channel: PACK options piggybacked/consumed and dedicated
	// FACK packets emitted/consumed. A high FACK share means ACK option
	// space is tight (or DisablePACK is on) and the fabric is carrying
	// extra feedback packets.
	PacksAttached *metrics.Counter // packs_attached_total
	PacksConsumed *metrics.Counter // packs_consumed_total
	FacksSent     *metrics.Counter // facks_sent_total
	FacksConsumed *metrics.Counter // facks_consumed_total

	// Loss inference and recovery assists (§3.1, §3.3).
	VTimeouts        *metrics.Counter // vtimeouts_total
	DupAcksGenerated *metrics.Counter // dupacks_generated_total
	UntrackedSegs    *metrics.Counter // untracked_segments_total

	// Flow-table churn and size.
	FlowsCreated  *metrics.Counter // flows_created_total
	FlowsRemoved  *metrics.Counter // flows_removed_total
	FlowTableSize *metrics.Gauge   // flow_table_size

	// Degradation paths. These are lazy: they join the registry (and thus
	// snapshots, text encodings, and golden outputs) only when the event
	// actually fires, so a healthy run's telemetry is byte-identical to one
	// recorded before the fault machinery existed.
	FailOpen         *metrics.LazyCounter // fail_open_total: packets passed through untouched because the datapath could not safely process them
	MalformedOptions *metrics.LazyCounter // malformed_options_total: TCP option blocks that failed validation
	FlowTableFull    *metrics.LazyCounter // flow_table_full_total: flow creations refused at MaxFlows
	FlowsEvicted     *metrics.LazyCounter // flows_evicted_total: flows removed by capacity-pressure eviction
	PressureSweeps   *metrics.LazyCounter // pressure_sweeps_total: eviction scans started at MaxFlows (rate-limited; see evictForPressure)
	FeedbackTimeouts *metrics.LazyCounter // feedback_timeouts_total: ACKs processed while PACK/FACK feedback was stale

	// Warm restart and mid-flow resynchronization (snapshot.go, resync.go).
	// Lazy for the same reason: a run that never restarts keeps telemetry
	// byte-identical to a build without the restart machinery.
	Restarts              *metrics.LazyCounter // vswitch_restarts_total: Restart() invocations (cold or warm)
	SnapshotSaves         *metrics.LazyCounter // snapshot_save_total: flow-table checkpoints taken
	SnapshotRestores      *metrics.LazyCounter // snapshot_restore_total: checkpoints decoded and installed
	SnapshotCorrupt       *metrics.LazyCounter // snapshot_corrupt_total: checkpoints rejected (failed open to a fresh table)
	FlowsResynced         *metrics.LazyCounter // flows_resynced_total: flows that completed the conservative resync round
	FlowsAdoptedMidstream *metrics.LazyCounter // flows_adopted_midstream_total: sender flows adopted without a handshake
	FeedbackResets        *metrics.LazyCounter // feedback_resets_total: cumulative-feedback regressions re-baselined (peer vSwitch restarted mid-flow)

	// Live policy control plane (install.go). Lazy: a run that never streams
	// a policy update keeps its telemetry byte-identical to older builds.
	PolicyInstalls *metrics.LazyCounter // policy_installs_total: live per-flow policy overrides accepted

	// Enforcement backends (backend.go). Lazy: a run on the default
	// dctcp-cut backend keeps telemetry byte-identical to older builds.
	BackendUnknown   *metrics.LazyCounter // backend_unknown_total: unknown backend names clamped to the default (fail-open)
	PaceQueued       *metrics.LazyCounter // pace_queued_total: segments retained by a pace token bucket
	PaceReleased     *metrics.LazyCounter // pace_released_total: retained segments released onto the wire
	PaceDrops        *metrics.LazyCounter // pace_drops_total: segments dropped at the pace backlog bound
	AdaptiveKAdjusts *metrics.LazyCounter // adaptive_k_adjusts_total: per-flow threshold K moves (either direction)

	// Per-algorithm CWND/α distributions, sampled once per RTT at each α
	// update. Lazily created per virtual-CC name (not hot path: flow setup).
	mu         sync.Mutex
	cwndHists  map[string]*metrics.Histogram
	alphaHists map[string]*metrics.Histogram

	// Flow-table shape gauges, registered lazily on the first
	// UpdateTableGauges call (daemon /status and /metrics handlers) so runs
	// that never poll them keep telemetry byte-identical to older builds.
	tableOcc *metrics.Gauge // flow_table_occupancy: total tracked flows (== Table.Len)
	shardMax *metrics.Gauge // flow_table_shard_max: longest shard
	shardImb *metrics.Gauge // flow_table_shard_imbalance_permille: 1000 * max/mean shard length
}

// cwndBounds covers sub-MSS floors up to the largest window the RWND field
// can express under common scales, in powers of two.
var cwndBounds = metrics.ExponentialBounds(2048, 2, 14) // 2KB .. 16MB

// alphaBounds covers DCTCP's α ∈ [0,1] in 0.1 steps.
var alphaBounds = metrics.LinearBounds(0.1, 0.1, 10)

// NewDatapathMetrics resolves every instrument in reg. A nil reg yields
// all-nil instruments, i.e. a datapath with metrics compiled to no-ops.
func NewDatapathMetrics(reg *metrics.Registry) *DatapathMetrics {
	return &DatapathMetrics{
		reg:              reg,
		EgressSegs:       reg.Counter("egress_segments_total"),
		IngressSegs:      reg.Counter("ingress_segments_total"),
		EgressBytes:      reg.Counter("egress_bytes_total"),
		IngressBytes:     reg.Counter("ingress_bytes_total"),
		DataBytes:        reg.Counter("rx_data_bytes_total"),
		CEBytes:          reg.Counter("rx_ce_bytes_total"),
		ECTMarks:         reg.Counter("ect_marked_total"),
		ECNStripped:      reg.Counter("ecn_stripped_total"),
		RwndRewrites:     reg.Counter("rwnd_rewrites_total"),
		RwndUnchanged:    reg.Counter("rwnd_noop_total"),
		PolicingDrops:    reg.Counter("policing_drops_total"),
		PacksAttached:    reg.Counter("packs_attached_total"),
		PacksConsumed:    reg.Counter("packs_consumed_total"),
		FacksSent:        reg.Counter("facks_sent_total"),
		FacksConsumed:    reg.Counter("facks_consumed_total"),
		VTimeouts:        reg.Counter("vtimeouts_total"),
		DupAcksGenerated: reg.Counter("dupacks_generated_total"),
		UntrackedSegs:    reg.Counter("untracked_segments_total"),
		FlowsCreated:     reg.Counter("flows_created_total"),
		FlowsRemoved:     reg.Counter("flows_removed_total"),
		FlowTableSize:    reg.Gauge("flow_table_size"),
		FailOpen:         reg.Lazy("fail_open_total"),
		MalformedOptions: reg.Lazy("malformed_options_total"),
		FlowTableFull:    reg.Lazy("flow_table_full_total"),
		FlowsEvicted:     reg.Lazy("flows_evicted_total"),
		PressureSweeps:   reg.Lazy("pressure_sweeps_total"),
		FeedbackTimeouts: reg.Lazy("feedback_timeouts_total"),

		Restarts:              reg.Lazy("vswitch_restarts_total"),
		SnapshotSaves:         reg.Lazy("snapshot_save_total"),
		SnapshotRestores:      reg.Lazy("snapshot_restore_total"),
		SnapshotCorrupt:       reg.Lazy("snapshot_corrupt_total"),
		FlowsResynced:         reg.Lazy("flows_resynced_total"),
		FlowsAdoptedMidstream: reg.Lazy("flows_adopted_midstream_total"),
		FeedbackResets:        reg.Lazy("feedback_resets_total"),
		PolicyInstalls:        reg.Lazy("policy_installs_total"),
		BackendUnknown:        reg.Lazy("backend_unknown_total"),
		PaceQueued:            reg.Lazy("pace_queued_total"),
		PaceReleased:          reg.Lazy("pace_released_total"),
		PaceDrops:             reg.Lazy("pace_drops_total"),
		AdaptiveKAdjusts:      reg.Lazy("adaptive_k_adjusts_total"),

		cwndHists:  map[string]*metrics.Histogram{},
		alphaHists: map[string]*metrics.Histogram{},
	}
}

// Registry exposes the backing registry (nil when metrics are disabled).
func (m *DatapathMetrics) Registry() *metrics.Registry { return m.reg }

// Snapshot returns a point-in-time copy of every datapath metric.
func (m *DatapathMetrics) Snapshot() metrics.Snapshot { return m.reg.Snapshot() }

// flowHists resolves the per-algorithm CWND/α histograms for a new flow.
// Called from newFlow (flow setup, not per packet).
func (m *DatapathMetrics) flowHists(alg string) (cwnd, alpha *metrics.Histogram) {
	if m.reg == nil {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cwnd = m.cwndHists[alg]
	if cwnd == nil {
		cwnd = m.reg.Histogram("vcc_cwnd_bytes{alg="+alg+"}", cwndBounds)
		m.cwndHists[alg] = cwnd
	}
	alpha = m.alphaHists[alg]
	if alpha == nil {
		alpha = m.reg.Histogram("vcc_alpha{alg="+alg+"}", alphaBounds)
		m.alphaHists[alg] = alpha
	}
	return cwnd, alpha
}

// tableGauges lazily registers and returns the flow-table shape gauges.
// Nil registry (metrics disabled) yields nil gauges, whose Set is a no-op.
func (m *DatapathMetrics) tableGauges() (occ, max, imb *metrics.Gauge) {
	if m.reg == nil {
		return nil, nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tableOcc == nil {
		m.tableOcc = m.reg.Gauge("flow_table_occupancy")
		m.shardMax = m.reg.Gauge("flow_table_shard_max")
		m.shardImb = m.reg.Gauge("flow_table_shard_imbalance_permille")
	}
	return m.tableOcc, m.shardMax, m.shardImb
}

// TableShape is one control-plane observation of the flow table's size and
// shard balance, as published by UpdateTableGauges.
type TableShape struct {
	Flows             int   `json:"flows"`
	ShardMax          int   `json:"shard_max"`
	ImbalancePermille int64 `json:"shard_imbalance_permille"`
}

// UpdateTableGauges scans the flow table's shards once and publishes
// occupancy and imbalance gauges (registered lazily on first call). The
// imbalance is 1000·max/mean shard length: 1000 means perfectly balanced,
// numShards·1000 means everything hashed into one shard. Control-plane use
// (daemon /status and /metrics); the datapath never calls it.
func (v *VSwitch) UpdateTableGauges() TableShape {
	total, maxShard := v.Table.ShardStats()
	var imb int64
	if total > 0 {
		mean := float64(total) / numShards
		imb = int64(float64(maxShard)/mean*1000 + 0.5)
	}
	occ, mx, im := v.Metrics.tableGauges()
	occ.Set(int64(total))
	mx.Set(int64(maxShard))
	im.Set(imb)
	return TableShape{Flows: total, ShardMax: maxShard, ImbalancePermille: imb}
}

// Stats is a plain-value snapshot of the datapath event counters, kept for
// ergonomic assertions and quick printing; the metrics registry is the
// source of truth. Field names predate the metrics layer and are preserved.
type Stats struct {
	FlowsCreated, FlowsRemoved   int64
	PacksAttached, FacksSent     int64
	FacksConsumed, PacksConsumed int64
	RwndRewrites, RwndUnchanged  int64
	PolicingDrops                int64
	VTimeouts, DupAcksGenerated  int64
	UntrackedSegs                int64
	EgressSegs, IngressSegs      int64
	FailOpen, MalformedOptions   int64
	FlowTableFull, FlowsEvicted  int64
	PressureSweeps               int64
	FeedbackTimeouts             int64
	Restarts                     int64
	SnapshotSaves                int64
	SnapshotRestores             int64
	SnapshotCorrupt              int64
	FlowsResynced                int64
	FlowsAdoptedMidstream        int64
	FeedbackResets               int64
	PolicyInstalls               int64
	BackendUnknown               int64
	PaceQueued, PaceReleased     int64
	PaceDrops                    int64
	AdaptiveKAdjusts             int64
}

// Stats reads the current counter values into a Stats snapshot.
func (v *VSwitch) Stats() Stats {
	m := v.Metrics
	return Stats{
		FlowsCreated:     m.FlowsCreated.Value(),
		FlowsRemoved:     m.FlowsRemoved.Value(),
		PacksAttached:    m.PacksAttached.Value(),
		FacksSent:        m.FacksSent.Value(),
		FacksConsumed:    m.FacksConsumed.Value(),
		PacksConsumed:    m.PacksConsumed.Value(),
		RwndRewrites:     m.RwndRewrites.Value(),
		RwndUnchanged:    m.RwndUnchanged.Value(),
		PolicingDrops:    m.PolicingDrops.Value(),
		VTimeouts:        m.VTimeouts.Value(),
		DupAcksGenerated: m.DupAcksGenerated.Value(),
		UntrackedSegs:    m.UntrackedSegs.Value(),
		EgressSegs:       m.EgressSegs.Value(),
		IngressSegs:      m.IngressSegs.Value(),
		FailOpen:         m.FailOpen.Value(),
		MalformedOptions: m.MalformedOptions.Value(),
		FlowTableFull:    m.FlowTableFull.Value(),
		FlowsEvicted:     m.FlowsEvicted.Value(),
		PressureSweeps:   m.PressureSweeps.Value(),
		FeedbackTimeouts: m.FeedbackTimeouts.Value(),

		Restarts:              m.Restarts.Value(),
		SnapshotSaves:         m.SnapshotSaves.Value(),
		SnapshotRestores:      m.SnapshotRestores.Value(),
		SnapshotCorrupt:       m.SnapshotCorrupt.Value(),
		FlowsResynced:         m.FlowsResynced.Value(),
		FlowsAdoptedMidstream: m.FlowsAdoptedMidstream.Value(),
		FeedbackResets:        m.FeedbackResets.Value(),
		PolicyInstalls:        m.PolicyInstalls.Value(),
		BackendUnknown:        m.BackendUnknown.Value(),
		PaceQueued:            m.PaceQueued.Value(),
		PaceReleased:          m.PaceReleased.Value(),
		PaceDrops:             m.PaceDrops.Value(),
		AdaptiveKAdjusts:      m.AdaptiveKAdjusts.Value(),
	}
}
