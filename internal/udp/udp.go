// Package udp provides minimal unreliable datagram endpoints for the hosts:
// no congestion control, no recovery — exactly the kind of traffic the
// paper's §3.3 future-work discussion worries about, and the guest side of
// the vSwitch UDP tunnel implemented in internal/core.
package udp

import (
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Endpoint is one host's UDP layer. It coexists with a TCP stack on the
// same host by chaining the demux: TCP segments continue to the previous
// handler.
type Endpoint struct {
	Sim  *sim.Simulator
	Host *netsim.Host

	// OnRecv is called for every delivered datagram.
	OnRecv func(src packet.Addr, sport, dport uint16, payload int)

	// Counters.
	Sent, Received int64
	SentBytes      int64
	ReceivedBytes  int64

	next netsim.Handler
}

// NewEndpoint installs a UDP endpoint on host, chaining any existing demux
// (e.g. a tcpstack.Stack) for non-UDP traffic.
func NewEndpoint(s *sim.Simulator, host *netsim.Host) *Endpoint {
	e := &Endpoint{Sim: s, Host: host, next: host.Demux}
	host.Demux = e
	return e
}

// HandlePacket implements netsim.Handler.
func (e *Endpoint) HandlePacket(p *packet.Packet) {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoUDP {
		if e.next != nil {
			// Ownership passes to the chained demux (which releases it).
			e.next.HandlePacket(p)
			return
		}
		e.Host.Pool.Put(p)
		return
	}
	u := ip.UDP()
	if !u.Valid() {
		e.Host.Pool.Put(p)
		return
	}
	payload := int(ip.TotalLen()) - ip.HeaderLen() - packet.UDPHeaderLen
	e.Received++
	e.ReceivedBytes += int64(payload)
	if e.OnRecv != nil {
		e.OnRecv(ip.Src(), u.SrcPort(), u.DstPort(), payload)
	}
	e.Host.Pool.Put(p)
}

// Send emits one datagram of n payload bytes.
func (e *Endpoint) Send(dst packet.Addr, sport, dport uint16, n int) {
	p := packet.BuildUDPIn(e.Host.Pool, e.Host.Addr, dst, packet.NotECT, sport, dport, n)
	e.Sent++
	e.SentBytes += int64(n)
	e.Host.Output(p)
}

// Blast sends datagrams of size bytes at the given bit rate until the
// simulator passes `until`. It models a misbehaving constant-bit-rate
// application with no congestion control at all.
func (e *Endpoint) Blast(dst packet.Addr, sport, dport uint16, size int, rate int64, until sim.Time) {
	interval := sim.Duration(int64(size+packet.IPv4HeaderLen+packet.UDPHeaderLen+packet.FrameOverhead) * 8 *
		int64(sim.Second) / rate)
	var tick func()
	tick = func() {
		if e.Sim.Now() >= until {
			return
		}
		e.Send(dst, sport, dport, size)
		e.Sim.Schedule(interval, tick)
	}
	e.Sim.Schedule(0, tick)
}
