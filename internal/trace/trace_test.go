package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []*Dist{WebSearch(), DataMining()} {
		lo := int64(d.points[0].Bytes)
		hi := int64(d.points[len(d.points)-1].Bytes)
		for i := 0; i < 10000; i++ {
			s := d.Sample(rng)
			if s < lo/2 || s > hi {
				t.Fatalf("%s: sample %d outside [%d, %d]", d.Name, s, lo, hi)
			}
		}
	}
}

func TestEmpiricalCDFMatchesKnots(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := WebSearch()
	n := 200000
	var below133k int
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= 133_000 {
			below133k++
		}
	}
	got := float64(below133k) / float64(n)
	if got < 0.57 || got > 0.63 {
		t.Fatalf("P(size ≤ 133KB) = %.3f, want ≈0.60", got)
	}
}

func TestDataMiningHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := DataMining()
	n := 100000
	var mice int
	var total, tailBytes float64
	for i := 0; i < n; i++ {
		s := float64(d.Sample(rng))
		total += s
		if s <= 1000 {
			mice++
		}
		if s > 10_000_000 {
			tailBytes += s
		}
	}
	if frac := float64(mice) / float64(n); frac < 0.55 || frac > 0.65 {
		t.Fatalf("mice fraction %.3f, want ≈0.60", frac)
	}
	// The tail (>10MB flows) must carry most of the bytes.
	if tailBytes/total < 0.5 {
		t.Fatalf("tail bytes fraction %.3f, want >0.5 (heavy tail)", tailBytes/total)
	}
}

func TestMeanEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []*Dist{WebSearch(), DataMining()} {
		var sum float64
		n := 500000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		emp := sum / float64(n)
		ana := d.Mean()
		ratio := emp / ana
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("%s: empirical mean %.0f vs analytic %.0f", d.Name, emp, ana)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][]Point{
		{{100, 1}},               // too few
		{{100, 0.5}, {200, 0.4}}, // unsorted
		{{100, 0.5}, {200, 0.9}}, // doesn't end at 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", bad)
				}
			}()
			New("bad", bad)
		}()
	}
}

// Property: sampling is deterministic under a fixed seed.
func TestSampleDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		d := DataMining()
		a := d.Sample(rand.New(rand.NewSource(seed)))
		b := d.Sample(rand.New(rand.NewSource(seed)))
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
