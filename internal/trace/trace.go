// Package trace provides flow-size samplers for the paper's trace-driven
// workloads (§5.2): the web-search distribution from the DCTCP paper
// (Alizadeh et al. [3]) and the heavier-tailed data-mining distribution from
// VL2/CONGA ([2, 25]). The production traces themselves are proprietary;
// both papers publish the flow-size CDFs, which we reproduce as empirical
// distributions with log-linear interpolation — the standard substitution in
// the datacenter-transport literature (pFabric, pHost, Homa all evaluate on
// these same synthesized CDFs).
package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Point is one (size, cumulative probability) knot of an empirical CDF.
type Point struct {
	Bytes float64
	P     float64
}

// Dist is an empirical flow-size distribution.
type Dist struct {
	Name   string
	points []Point
}

// New builds a distribution from CDF knots. Knots must be sorted by P with
// the final P equal to 1; the function panics otherwise (configuration bug).
func New(name string, points []Point) *Dist {
	if len(points) < 2 {
		panic("trace: need at least two CDF points")
	}
	if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].P < points[j].P }) {
		panic("trace: CDF points must be sorted by probability")
	}
	if points[len(points)-1].P != 1 {
		panic("trace: CDF must end at P=1")
	}
	return &Dist{Name: name, points: points}
}

// Sample draws one flow size in bytes.
func (d *Dist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := d.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].P >= u })
	if i == 0 {
		return int64(pts[0].Bytes)
	}
	if i >= len(pts) {
		i = len(pts) - 1
	}
	lo, hi := pts[i-1], pts[i]
	if hi.P == lo.P {
		return int64(hi.Bytes)
	}
	frac := (u - lo.P) / (hi.P - lo.P)
	// Log-linear interpolation respects the multi-decade span of the sizes.
	logSize := math.Log(lo.Bytes) + frac*(math.Log(hi.Bytes)-math.Log(lo.Bytes))
	return int64(math.Exp(logSize))
}

// Mean returns the analytic mean of the interpolated distribution, estimated
// by numerical integration over the knots (used to compute offered load).
func (d *Dist) Mean() float64 {
	var mean float64
	pts := d.points
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		dp := hi.P - lo.P
		if dp <= 0 {
			continue
		}
		// Mean of a log-uniform segment: (b-a)/ln(b/a).
		if hi.Bytes > lo.Bytes {
			mean += dp * (hi.Bytes - lo.Bytes) / math.Log(hi.Bytes/lo.Bytes)
		} else {
			mean += dp * hi.Bytes
		}
	}
	return mean
}

// WebSearch returns the DCTCP-paper web-search flow-size distribution:
// mostly tens-of-KB query/response traffic with a moderate tail to ~30MB.
func WebSearch() *Dist {
	return New("web-search", []Point{
		{6_000, 0.10},
		{10_000, 0.15},
		{13_000, 0.20},
		{19_000, 0.30},
		{33_000, 0.40},
		{53_000, 0.53},
		{133_000, 0.60},
		{667_000, 0.70},
		{1_467_000, 0.80},
		{2_107_000, 0.90},
		{6_667_000, 0.97},
		{30_000_000, 1.00},
	})
}

// DataMining returns the VL2/CONGA data-mining distribution: the majority of
// flows are tiny (≤1KB) but most bytes live in a very heavy tail to 1GB.
func DataMining() *Dist {
	return New("data-mining", []Point{
		{100, 0.50},
		{300, 0.55},
		{1_000, 0.60},
		{2_000, 0.70},
		{10_000, 0.80},
		{100_000, 0.85},
		{1_000_000, 0.90},
		{10_000_000, 0.96},
		{100_000_000, 0.98},
		{1_000_000_000, 1.00},
	})
}
