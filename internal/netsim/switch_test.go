package netsim

import (
	"fmt"
	"testing"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// mkFlowPkt builds a packet for an arbitrary 5-tuple so ECMP tests can sweep
// flow identities.
func mkFlowPkt(src, dst packet.Addr, sport, dport uint16, payload int) *packet.Packet {
	return packet.Build(src, dst, packet.ECT0,
		packet.TCPFields{SrcPort: sport, DstPort: dport, Flags: packet.FlagACK, Window: 100}, payload)
}

// buildEcmpSwitch wires a switch with n uplink ports to per-port sinks and a
// default ECMP group over all of them.
func buildEcmpSwitch(s *sim.Simulator, n int) (*Switch, []*sink) {
	sw := NewSwitch(s, "ecmp", nil)
	sw.Pool = packet.NewPool()
	sinks := make([]*sink, n)
	ports := make([]int, n)
	for i := range sinks {
		sinks[i] = &sink{}
		ports[i] = sw.AddPort(NewLink(s, fmt.Sprintf("up%d", i), 10e9, sim.Microsecond, sinks[i]), REDConfig{})
	}
	sw.SetDefaultEcmp(ports...)
	return sw, sinks
}

func TestSwitchInvalidPacketCountsNoRoute(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "x", nil)
	sw.Pool = packet.NewPool()
	sw.AddPort(NewLink(s, "p", 1e9, 0, &sink{}), REDConfig{})
	sw.HandlePacket(&packet.Packet{Buf: []byte{1, 2, 3}})
	if sw.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", sw.Stats.NoRoute)
	}
}

// TestSwitchNoFlood pins the L3 contract: a destination miss is a counted
// drop, never a broadcast — no port may see the packet.
func TestSwitchNoFlood(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "x", nil)
	sw.Pool = packet.NewPool()
	sinks := make([]*sink, 3)
	for i := range sinks {
		sinks[i] = &sink{}
		sw.AddPort(NewLink(s, fmt.Sprintf("p%d", i), 1e9, 0, sinks[i]), REDConfig{})
	}
	sw.AddRoute(packet.MakeAddr(10, 0, 0, 1), 0)
	sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 9), packet.MakeAddr(10, 0, 0, 99), 1, 2, 10))
	s.RunAll()
	for i, k := range sinks {
		if len(k.got) != 0 {
			t.Fatalf("port %d saw %d packets for an unroutable destination", i, len(k.got))
		}
	}
	if sw.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", sw.Stats.NoRoute)
	}
}

func TestSwitchTTLExpiry(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "x", nil)
	sw.Pool = packet.NewPool()
	k := &sink{}
	sw.AddRoute(packet.MakeAddr(10, 0, 0, 2), sw.AddPort(NewLink(s, "p", 1e9, 0, k), REDConfig{}))
	p := mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2), 1, 2, 10)
	for p.IP().TTL() > 1 {
		if !p.IP().DecTTL() {
			break
		}
	}
	sw.HandlePacket(p)
	s.RunAll()
	if sw.Stats.TTLDrops != 1 || len(k.got) != 0 {
		t.Fatalf("TTLDrops=%d delivered=%d, want 1/0", sw.Stats.TTLDrops, len(k.got))
	}
}

// TestEcmpExactRouteWins: an exact AddRoute for a destination shadows both
// the per-destination group and the default group.
func TestEcmpExactRouteWins(t *testing.T) {
	s := sim.New(1)
	sw, sinks := buildEcmpSwitch(s, 4)
	dst := packet.MakeAddr(10, 0, 0, 7)
	sw.AddRoute(dst, 2)
	for i := 0; i < 32; i++ {
		sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 1, byte(i+1)), dst, uint16(1000+i), 80, 10))
	}
	s.RunAll()
	if len(sinks[2].got) != 32 {
		t.Fatalf("exact-route port got %d/32", len(sinks[2].got))
	}
	if sw.Stats.EcmpForwarded != 0 {
		t.Fatalf("EcmpForwarded = %d on exact-routed traffic", sw.Stats.EcmpForwarded)
	}
}

// TestEcmpFlowStickiness: one 5-tuple always hashes to one port, and the
// choice is a pure function of the seed (replay determinism).
func TestEcmpFlowStickiness(t *testing.T) {
	s := sim.New(1)
	sw, sinks := buildEcmpSwitch(s, 4)
	sw.EcmpSeed = 42
	for i := 0; i < 20; i++ {
		sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10))
	}
	s.RunAll()
	var nonEmpty int
	for _, k := range sinks {
		if len(k.got) > 0 {
			nonEmpty++
			if len(k.got) != 20 {
				t.Fatalf("flow split across ports: %d/20 on one port", len(k.got))
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("flow used %d ports, want exactly 1", nonEmpty)
	}
	if sw.Stats.EcmpForwarded != 20 {
		t.Fatalf("EcmpForwarded = %d, want 20", sw.Stats.EcmpForwarded)
	}
}

// TestEcmpDistribution sweeps distinct flows and requires every port to take
// a reasonable share. The sub-tests vary exactly one 5-tuple field with all
// others pinned — including low-bits-only sweeps of the ports and addresses,
// the shape that exposed PR 8's shardIndex degeneracy (a hash whose low bits
// ignore part of the key sends every such flow to one port).
func TestEcmpDistribution(t *testing.T) {
	const nPorts, flows = 8, 1024
	cases := []struct {
		name string
		pkt  func(i int) *packet.Packet
	}{
		{"sport-low-bits", func(i int) *packet.Packet {
			return mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), uint16(i), 80, 10)
		}},
		{"dport-low-bits", func(i int) *packet.Packet {
			return mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, uint16(i), 10)
		}},
		{"src-low-bits", func(i int) *packet.Packet {
			return mkFlowPkt(packet.MakeAddr(10, 0, byte(i/250), byte(i%250+1)), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10)
		}},
		{"dst-low-bits", func(i int) *packet.Packet {
			return mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 1, byte(i/250), byte(i%250+1)), 5001, 80, 10)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(1)
			sw, sinks := buildEcmpSwitch(s, nPorts)
			sw.EcmpSeed = 1
			for i := 0; i < flows; i++ {
				sw.HandlePacket(tc.pkt(i))
			}
			s.RunAll()
			// Expected 128 per port; a uniform hash stays well inside
			// [expected/2, expected*2], while a degenerate one concentrates.
			expected := flows / nPorts
			for i, k := range sinks {
				if len(k.got) < expected/2 || len(k.got) > expected*2 {
					counts := make([]int, nPorts)
					for j, kk := range sinks {
						counts[j] = len(kk.got)
					}
					t.Fatalf("port %d got %d flows (expected ~%d); distribution %v",
						i, len(k.got), expected, counts)
				}
			}
		})
	}
}

// TestEcmpSeedChangesSpread: different seeds produce different flow→port
// assignments (the property per-switch seeds rely on to avoid polarization).
func TestEcmpSeedChangesSpread(t *testing.T) {
	assign := func(seed uint64) []uint64 {
		out := make([]uint64, 256)
		for i := range out {
			out[i] = EcmpHash(seed, packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9),
				uint16(5000+i), 80, packet.ProtoTCP) % 4
		}
		return out
	}
	a, b := assign(1), assign(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed change left every flow on the same port")
	}
}

// TestEcmpFailover: when the hashed port is down the pick deterministically
// re-hashes onto a live member; when every member is down the packet is a
// counted blackhole returned to the pool.
func TestEcmpFailover(t *testing.T) {
	s := sim.New(1)
	sw, sinks := buildEcmpSwitch(s, 2)
	sw.EcmpSeed = 7
	p := mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10)
	sw.HandlePacket(p)
	s.RunAll()
	primary := 0
	if len(sinks[1].got) == 1 {
		primary = 1
	}
	other := 1 - primary

	sw.Port(primary).Down()
	sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10))
	s.RunAll()
	if len(sinks[other].got) != 1 {
		t.Fatalf("failover flow not delivered on surviving port (got %d)", len(sinks[other].got))
	}
	if sw.Stats.EcmpFailovers != 1 {
		t.Fatalf("EcmpFailovers = %d, want 1", sw.Stats.EcmpFailovers)
	}

	sw.Port(other).Down()
	puts := sw.Pool.Puts
	sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10))
	s.RunAll()
	if sw.Stats.Blackholes != 1 {
		t.Fatalf("Blackholes = %d, want 1", sw.Stats.Blackholes)
	}
	if sw.Pool.Puts != puts+1 {
		t.Fatalf("blackholed packet not returned to pool (puts %d -> %d)", puts, sw.Pool.Puts)
	}

	// Recovery: the primary comes back and the flow lands on it again.
	sw.Port(primary).Up()
	sw.Port(other).Up()
	sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 9, 9), 5001, 80, 10))
	s.RunAll()
	if len(sinks[primary].got) != 2 {
		t.Fatalf("recovered flow not re-hashed to primary (got %d)", len(sinks[primary].got))
	}
}

// TestEcmpPerDestinationGroup: AddEcmpRoute restricts a destination to its
// own group while others fall back to the default.
func TestEcmpPerDestinationGroup(t *testing.T) {
	s := sim.New(1)
	sw, sinks := buildEcmpSwitch(s, 4)
	dst := packet.MakeAddr(10, 0, 9, 9)
	sw.AddEcmpRoute(dst, 0, 1)
	for i := 0; i < 64; i++ {
		sw.HandlePacket(mkFlowPkt(packet.MakeAddr(10, 0, 0, 1), dst, uint16(4000+i), 80, 10))
	}
	s.RunAll()
	if n := len(sinks[2].got) + len(sinks[3].got); n != 0 {
		t.Fatalf("restricted group leaked %d flows onto out-of-group ports", n)
	}
	if len(sinks[0].got) == 0 || len(sinks[1].got) == 0 {
		t.Fatalf("group ports unused: %d/%d", len(sinks[0].got), len(sinks[1].got))
	}
}

func TestEcmpGroupValidation(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "x", nil)
	sw.AddPort(NewLink(s, "p", 1e9, 0, &sink{}), REDConfig{})
	for name, fn := range map[string]func(){
		"empty-group":  func() { sw.SetDefaultEcmp() },
		"bad-port":     func() { sw.SetDefaultEcmp(3) },
		"bad-per-dest": func() { sw.AddEcmpRoute(packet.MakeAddr(10, 0, 0, 1), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzECMPHash checks, for arbitrary 5-tuples and seeds, that the hash is
// deterministic and that a low-bit sweep of any single field never
// degenerates to one bucket — the property a masked or truncated hash (like
// PR 8's shardIndex bug) would violate with near certainty.
func FuzzECMPHash(f *testing.F) {
	f.Add(uint64(1), uint32(0x0a000001), uint32(0x0a000909), uint16(5001), uint16(80), uint8(6))
	f.Add(uint64(0), uint32(0), uint32(0), uint16(0), uint16(0), uint8(0))
	f.Add(uint64(0xffffffffffffffff), uint32(0xffffffff), uint32(0xffffffff), uint16(0xffff), uint16(0xffff), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, src, dst uint32, sport, dport uint16, proto uint8) {
		h := EcmpHash(seed, packet.Addr(src), packet.Addr(dst), sport, dport, proto)
		if h2 := EcmpHash(seed, packet.Addr(src), packet.Addr(dst), sport, dport, proto); h2 != h {
			t.Fatalf("non-deterministic: %x vs %x", h, h2)
		}
		const nPorts = 4
		buckets := map[uint64]bool{}
		for i := 0; i < 64; i++ {
			buckets[EcmpHash(seed, packet.Addr(src), packet.Addr(dst), sport+uint16(i), dport, proto)%nPorts] = true
		}
		if len(buckets) < 2 {
			t.Fatalf("64 consecutive source ports all hashed to one of %d buckets", nPorts)
		}
		buckets = map[uint64]bool{}
		for i := 0; i < 64; i++ {
			buckets[EcmpHash(seed, packet.Addr(src+uint32(i)), packet.Addr(dst), sport, dport, proto)%nPorts] = true
		}
		if len(buckets) < 2 {
			t.Fatalf("64 consecutive source addresses all hashed to one of %d buckets", nPorts)
		}
	})
}
