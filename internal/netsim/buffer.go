package netsim

import "acdc/internal/packet"

// SharedBuffer models a switch's shared packet memory with the classic
// Dynamic Threshold algorithm (Choudhury & Hahne): a port may queue at most
// Alpha × (free buffer) bytes, so a single congested port can take roughly
// Alpha/(1+Alpha) of the pool while idle ports keep headroom. The paper's
// G8264 has a 9MB buffer shared by 48 ports and "dynamic buffer allocation",
// which this reproduces.
type SharedBuffer struct {
	Total int // bytes in the pool
	Alpha float64
	used  int
}

// NewSharedBuffer creates a pool of total bytes with dynamic threshold alpha.
func NewSharedBuffer(total int, alpha float64) *SharedBuffer {
	return &SharedBuffer{Total: total, Alpha: alpha}
}

// Used returns the bytes currently held.
func (b *SharedBuffer) Used() int { return b.used }

// Free returns the unallocated bytes.
func (b *SharedBuffer) Free() int { return b.Total - b.used }

// Admit reports whether a port currently holding portBytes may queue n more
// bytes, and reserves them if so.
func (b *SharedBuffer) Admit(portBytes, n int) bool {
	if b == nil {
		return true
	}
	free := b.Total - b.used
	if n > free {
		return false
	}
	if float64(portBytes+n) > b.Alpha*float64(free) {
		return false
	}
	b.used += n
	return true
}

// Release returns n bytes to the pool.
func (b *SharedBuffer) Release(n int) {
	if b == nil {
		return
	}
	b.used -= n
	if b.used < 0 {
		panic("netsim: SharedBuffer released more than admitted")
	}
}

// REDConfig configures a port's marking/drop behaviour, mirroring the
// single-threshold WRED/ECN setup the paper uses (DCTCP-style "mark above K").
type REDConfig struct {
	// MarkThresholdBytes is K: when the instantaneous queue length meets or
	// exceeds K, arriving ECT packets are CE-marked and arriving Not-ECT
	// packets are dropped. Zero disables marking (plain drop-tail), which is
	// the paper's CUBIC baseline configuration.
	MarkThresholdBytes int
}

// PortQueue is the QueuePolicy for one switch egress port: single-threshold
// ECN marking plus shared-buffer admission.
type PortQueue struct {
	Red    REDConfig
	Buffer *SharedBuffer // nil means unlimited memory
}

// OnEnqueue implements QueuePolicy.
func (q *PortQueue) OnEnqueue(l *Link, p *packet.Packet) bool {
	size := p.WireLen()
	if q.Red.MarkThresholdBytes > 0 && l.QueueBytes() >= q.Red.MarkThresholdBytes {
		ip := p.IP()
		switch ip.ECN() {
		case packet.ECT0, packet.ECT1:
			ip.SetECN(packet.CE)
			l.Stats.Marks++
		case packet.CE:
			// already marked upstream
		default:
			// Not-ECT above threshold: WRED drops it. This is the ECN
			// coexistence failure mode from Judd [36] / Wu [72].
			return false
		}
	}
	if q.Buffer != nil && !q.Buffer.Admit(l.QueueBytes(), size) {
		return false
	}
	return true
}

// OnDequeue implements QueuePolicy.
func (q *PortQueue) OnDequeue(l *Link, p *packet.Packet) {
	if q.Buffer != nil {
		q.Buffer.Release(p.WireLen())
	}
}
