package netsim

import (
	"fmt"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// SwitchStats aggregates forwarding counters.
type SwitchStats struct {
	Forwarded int64
	NoRoute   int64
	TTLDrops  int64
}

// Switch is an output-queued L3 switch: packets are routed by destination
// address to an egress port (a Link), whose PortQueue enforces the shared
// buffer and ECN marking. This mirrors the paper's single-chip ToR switches.
type Switch struct {
	Sim    *sim.Simulator
	Name   string
	Buffer *SharedBuffer
	Stats  SwitchStats

	// FwdDelay models the switch pipeline latency applied to every packet.
	FwdDelay sim.Duration

	// Pool recycles packets the switch terminates (route/TTL/queue drops);
	// nil degrades to garbage collection.
	Pool *packet.Pool

	ports  []*Link
	routes map[packet.Addr]int
}

// NewSwitch creates a switch with a shared buffer pool (nil = infinite).
func NewSwitch(s *sim.Simulator, name string, buffer *SharedBuffer) *Switch {
	return &Switch{Sim: s, Name: name, Buffer: buffer, routes: make(map[packet.Addr]int)}
}

// AddPort attaches an egress link and returns its port index. The link's
// policy is replaced with a PortQueue wired to this switch's shared buffer
// and the given marking config.
func (sw *Switch) AddPort(l *Link, red REDConfig) int {
	l.Policy = &PortQueue{Red: red, Buffer: sw.Buffer}
	sw.ports = append(sw.ports, l)
	return len(sw.ports) - 1
}

// Port returns the egress link at index i.
func (sw *Switch) Port(i int) *Link { return sw.ports[i] }

// NumPorts returns the number of attached egress links.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// AddRoute directs packets for dst out of port index i.
func (sw *Switch) AddRoute(dst packet.Addr, port int) {
	if port < 0 || port >= len(sw.ports) {
		panic(fmt.Sprintf("netsim: switch %s: route to invalid port %d", sw.Name, port))
	}
	sw.routes[dst] = port
}

// HandlePacket implements Handler: route and enqueue on the egress port.
func (sw *Switch) HandlePacket(p *packet.Packet) {
	ip := p.IP()
	if !ip.Valid() {
		sw.Stats.NoRoute++
		sw.Pool.Put(p)
		return
	}
	port, ok := sw.routes[ip.Dst()]
	if !ok {
		sw.Stats.NoRoute++
		sw.Pool.Put(p)
		return
	}
	if !ip.DecTTL() {
		sw.Stats.TTLDrops++
		sw.Pool.Put(p)
		return
	}
	p.Hops++
	sw.Stats.Forwarded++
	out := sw.ports[port]
	if sw.FwdDelay > 0 {
		sw.Sim.Schedule(sw.FwdDelay, func() {
			if !out.Send(p) {
				sw.Pool.Put(p)
			}
		})
		return
	}
	if !out.Send(p) {
		// Queue-policy drop: the packet dies at this switch.
		sw.Pool.Put(p)
	}
}

// TotalDrops sums drops across all egress ports.
func (sw *Switch) TotalDrops() int64 {
	var n int64
	for _, l := range sw.ports {
		n += l.Stats.Drops
	}
	return n
}

// TotalSent sums forwarded packets across all egress ports.
func (sw *Switch) TotalSent() int64 {
	var n int64
	for _, l := range sw.ports {
		n += l.Stats.SentPackets
	}
	return n
}

// DropRate returns drops / (drops + sent) across the switch, the metric the
// paper reports from switch counters.
func (sw *Switch) DropRate() float64 {
	d, s := sw.TotalDrops(), sw.TotalSent()
	if d+s == 0 {
		return 0
	}
	return float64(d) / float64(d+s)
}
