package netsim

import (
	"fmt"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// SwitchStats aggregates forwarding counters.
type SwitchStats struct {
	Forwarded     int64
	NoRoute       int64
	TTLDrops      int64
	EcmpForwarded int64 // packets steered by ECMP hash (no exact route matched)
	EcmpFailovers int64 // hash picked a down port and the pick was re-hashed to a live one
	Blackholes    int64 // every port in the matching ECMP group was down (packet dropped)
}

// Switch is an output-queued L3 switch: packets are routed by destination
// address to an egress port (a Link), whose PortQueue enforces the shared
// buffer and ECN marking. This mirrors the paper's single-chip ToR switches.
type Switch struct {
	Sim    *sim.Simulator
	Name   string
	Buffer *SharedBuffer
	Stats  SwitchStats

	// FwdDelay models the switch pipeline latency applied to every packet.
	FwdDelay sim.Duration

	// Pool recycles packets the switch terminates (route/TTL/queue drops);
	// nil degrades to garbage collection.
	Pool *packet.Pool

	// EcmpSeed perturbs the 5-tuple hash so different runs (and different
	// switches, if desired) spread flows differently while any one run
	// replays deterministically. Zero is a valid seed.
	EcmpSeed uint64

	ports  []*Link
	routes map[packet.Addr]int

	// ecmp maps a destination to an equal-cost port group consulted when no
	// exact route matches; defaultEcmp is the fallback group for destinations
	// with neither (a fat-tree ToR's "everything remote goes up" rule).
	// Lookup order: routes → ecmp → defaultEcmp → NoRoute drop.
	ecmp        map[packet.Addr][]int
	defaultEcmp []int
	liveBuf     []int // scratch for failover re-hash; avoids per-packet allocs
}

// NewSwitch creates a switch with a shared buffer pool (nil = infinite).
func NewSwitch(s *sim.Simulator, name string, buffer *SharedBuffer) *Switch {
	return &Switch{Sim: s, Name: name, Buffer: buffer, routes: make(map[packet.Addr]int)}
}

// AddPort attaches an egress link and returns its port index. The link's
// policy is replaced with a PortQueue wired to this switch's shared buffer
// and the given marking config.
func (sw *Switch) AddPort(l *Link, red REDConfig) int {
	l.Policy = &PortQueue{Red: red, Buffer: sw.Buffer}
	sw.ports = append(sw.ports, l)
	return len(sw.ports) - 1
}

// Port returns the egress link at index i.
func (sw *Switch) Port(i int) *Link { return sw.ports[i] }

// NumPorts returns the number of attached egress links.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// AddRoute directs packets for dst out of port index i.
func (sw *Switch) AddRoute(dst packet.Addr, port int) {
	if port < 0 || port >= len(sw.ports) {
		panic(fmt.Sprintf("netsim: switch %s: route to invalid port %d", sw.Name, port))
	}
	sw.routes[dst] = port
}

// AddEcmpRoute directs packets for dst over an equal-cost group of ports,
// selected per packet by the seeded 5-tuple hash. An exact AddRoute for the
// same destination takes precedence.
func (sw *Switch) AddEcmpRoute(dst packet.Addr, ports ...int) {
	sw.checkGroup(ports)
	if sw.ecmp == nil {
		sw.ecmp = make(map[packet.Addr][]int)
	}
	sw.ecmp[dst] = append([]int(nil), ports...)
}

// SetDefaultEcmp installs the fallback equal-cost group used for any
// destination with no exact or per-destination ECMP route — the fat-tree
// "default route points up" rule.
func (sw *Switch) SetDefaultEcmp(ports ...int) {
	sw.checkGroup(ports)
	sw.defaultEcmp = append([]int(nil), ports...)
}

func (sw *Switch) checkGroup(ports []int) {
	if len(ports) == 0 {
		panic(fmt.Sprintf("netsim: switch %s: empty ECMP group", sw.Name))
	}
	for _, port := range ports {
		if port < 0 || port >= len(sw.ports) {
			panic(fmt.Sprintf("netsim: switch %s: ECMP route to invalid port %d", sw.Name, port))
		}
	}
}

// ecmpMix64 is the splitmix64 finalizer: full-avalanche, so every input bit
// affects every output bit — in particular the low bits used for modulo port
// selection (the property PR 8's shardIndex lacked).
func ecmpMix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// EcmpHash is the seeded 5-tuple flow hash used for ECMP port selection.
// It is a pure function of (seed, 5-tuple), so a flow stays on one path for
// its lifetime and replays land on the same path for the same seed.
func EcmpHash(seed uint64, src, dst packet.Addr, sport, dport uint16, proto uint8) uint64 {
	a := uint64(src)<<32 | uint64(dst)
	b := uint64(sport)<<32 | uint64(dport)<<16 | uint64(proto)
	return ecmpMix64(ecmpMix64(a^seed) ^ b)
}

// ecmpSelect picks a port from group for packet ip. If the hashed pick is
// down it deterministically re-hashes over the live members (EcmpFailovers);
// ok is false when every member is down (the caller counts a blackhole).
func (sw *Switch) ecmpSelect(group []int, ip packet.IPv4) (port int, ok bool) {
	var sport, dport uint16
	proto := ip.Protocol()
	if proto == packet.ProtoTCP || proto == packet.ProtoUDP {
		// TCP and UDP both lead with source then destination port.
		if pay := ip.Payload(); len(pay) >= 4 {
			sport = uint16(pay[0])<<8 | uint16(pay[1])
			dport = uint16(pay[2])<<8 | uint16(pay[3])
		}
	}
	h := EcmpHash(sw.EcmpSeed, ip.Src(), ip.Dst(), sport, dport, proto)
	port = group[h%uint64(len(group))]
	if !sw.ports[port].IsDown() {
		return port, true
	}
	live := sw.liveBuf[:0]
	for _, q := range group {
		if !sw.ports[q].IsDown() {
			live = append(live, q)
		}
	}
	sw.liveBuf = live[:0]
	if len(live) == 0 {
		return 0, false
	}
	sw.Stats.EcmpFailovers++
	return live[h%uint64(len(live))], true
}

// HandlePacket implements Handler: route and enqueue on the egress port.
func (sw *Switch) HandlePacket(p *packet.Packet) {
	ip := p.IP()
	if !ip.Valid() {
		sw.Stats.NoRoute++
		sw.Pool.Put(p)
		return
	}
	port, ok := sw.routes[ip.Dst()]
	if !ok {
		group := sw.ecmp[ip.Dst()]
		if group == nil {
			group = sw.defaultEcmp
		}
		if len(group) == 0 {
			sw.Stats.NoRoute++
			sw.Pool.Put(p)
			return
		}
		if port, ok = sw.ecmpSelect(group, ip); !ok {
			sw.Stats.Blackholes++
			sw.Pool.Put(p)
			return
		}
		sw.Stats.EcmpForwarded++
	}
	if !ip.DecTTL() {
		sw.Stats.TTLDrops++
		sw.Pool.Put(p)
		return
	}
	p.Hops++
	sw.Stats.Forwarded++
	out := sw.ports[port]
	if sw.FwdDelay > 0 {
		sw.Sim.Schedule(sw.FwdDelay, func() {
			if !out.Send(p) {
				sw.Pool.Put(p)
			}
		})
		return
	}
	if !out.Send(p) {
		// Queue-policy drop: the packet dies at this switch.
		sw.Pool.Put(p)
	}
}

// TotalDrops sums drops across all egress ports.
func (sw *Switch) TotalDrops() int64 {
	var n int64
	for _, l := range sw.ports {
		n += l.Stats.Drops
	}
	return n
}

// TotalSent sums forwarded packets across all egress ports.
func (sw *Switch) TotalSent() int64 {
	var n int64
	for _, l := range sw.ports {
		n += l.Stats.SentPackets
	}
	return n
}

// DropRate returns drops / (drops + sent) across the switch, the metric the
// paper reports from switch counters.
func (sw *Switch) DropRate() float64 {
	d, s := sw.TotalDrops(), sw.TotalSent()
	if d+s == 0 {
		return 0
	}
	return float64(d) / float64(d+s)
}
