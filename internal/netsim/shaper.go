package netsim

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Shaper is a token-bucket rate limiter interposed on a path, modelling the
// NIC/switch rate limiters the paper's Figure 2 experiment uses ("CUBIC
// RL=2Gbps") and the §2.3 discussion of VM-level bandwidth allocation.
// Packets are released at Rate bits/sec with up to Burst bytes of credit;
// excess packets queue (the limiter's own buffer — exactly where CUBIC's
// RTT inflation comes from) up to MaxQueueBytes, then drop.
type Shaper struct {
	Sim   *sim.Simulator
	Rate  int64 // bits per second
	Burst int   // bucket depth, bytes
	Dst   Handler

	// MaxQueueBytes bounds the backlog; 0 = unlimited.
	MaxQueueBytes int

	// Stats.
	Shaped  int64 // packets released
	Dropped int64

	tokens     float64 // bytes of credit
	lastRefill sim.Time
	queue      []*packet.Packet
	queueBytes int
	pending    bool
}

// NewShaper creates a token-bucket shaper forwarding to dst.
func NewShaper(s *sim.Simulator, rate int64, burst int, dst Handler) *Shaper {
	return &Shaper{Sim: s, Rate: rate, Burst: burst, Dst: dst, tokens: float64(burst)}
}

// QueueBytes returns the current backlog.
func (sh *Shaper) QueueBytes() int { return sh.queueBytes }

// sendThreshold returns the credit required to release a packet needing
// `need` bytes: a full bucket always suffices (borrowing), so packets larger
// than the burst still drain at the configured rate instead of wedging.
func (sh *Shaper) sendThreshold(need float64) float64 {
	if b := float64(sh.Burst); need > b {
		return b
	}
	return need
}

// HandlePacket implements Handler.
func (sh *Shaper) HandlePacket(p *packet.Packet) {
	sh.refill()
	need := float64(p.WireLen())
	if len(sh.queue) == 0 && sh.tokens >= sh.sendThreshold(need) {
		sh.tokens -= need
		sh.Shaped++
		sh.Dst.HandlePacket(p)
		return
	}
	if sh.MaxQueueBytes > 0 && sh.queueBytes+p.WireLen() > sh.MaxQueueBytes {
		sh.Dropped++
		return
	}
	sh.queue = append(sh.queue, p)
	sh.queueBytes += p.WireLen()
	sh.schedule()
}

func (sh *Shaper) refill() {
	now := sh.Sim.Now()
	dt := now - sh.lastRefill
	if dt > 0 {
		sh.tokens += float64(sh.Rate) / 8 * dt.Seconds()
		if sh.tokens > float64(sh.Burst) {
			sh.tokens = float64(sh.Burst)
		}
		sh.lastRefill = now
	}
}

func (sh *Shaper) schedule() {
	if sh.pending || len(sh.queue) == 0 {
		return
	}
	sh.pending = true
	deficit := sh.sendThreshold(float64(sh.queue[0].WireLen())) - sh.tokens
	var wait sim.Duration
	if deficit > 0 {
		wait = sim.Duration(deficit * 8 / float64(sh.Rate) * float64(sim.Second))
		if wait < 1 {
			wait = 1
		}
	}
	sh.Sim.Schedule(wait, sh.release)
}

func (sh *Shaper) release() {
	sh.pending = false
	sh.refill()
	for len(sh.queue) > 0 {
		p := sh.queue[0]
		need := float64(p.WireLen())
		if sh.tokens < sh.sendThreshold(need) {
			break
		}
		sh.tokens -= need // may go negative (borrowing); refill repays
		sh.queue = sh.queue[1:]
		sh.queueBytes -= p.WireLen()
		sh.Shaped++
		sh.Dst.HandlePacket(p)
	}
	sh.schedule()
}
