package netsim

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Shaper is a token-bucket rate limiter interposed on a path, modelling the
// NIC/switch rate limiters the paper's Figure 2 experiment uses ("CUBIC
// RL=2Gbps") and the §2.3 discussion of VM-level bandwidth allocation.
// Packets are released at Rate bits/sec with up to Burst bytes of credit;
// excess packets queue (the limiter's own buffer — exactly where CUBIC's
// RTT inflation comes from) up to MaxQueueBytes, then drop.
//
// The same bucket backs the per-flow "pace" enforcement backend
// (internal/core), which drives it through TryConsume/CanQueue/Enqueue
// instead of HandlePacket so the passing-vs-queued decision stays with the
// caller. All methods must run on the simulation goroutine.
type Shaper struct {
	Sim   *sim.Simulator
	Rate  int64 // bits per second
	Burst int   // bucket depth, bytes
	Dst   Handler

	// MaxQueueBytes bounds the backlog; 0 = unlimited.
	MaxQueueBytes int

	// Stats.
	Shaped  int64 // packets released
	Dropped int64

	// tokens is the credit in bytes. It only ever holds multiples of ⅛
	// (whole bits), so the float64 representation is exact at any bucket
	// depth this simulator uses — see refill for why that matters.
	tokens     float64
	lastRefill sim.Time
	// carry is the sub-bit accrual remainder in bit-nanoseconds, so credit
	// earned between refills is exact over any horizon.
	carry      int64
	queue      []*packet.Packet
	queueBytes int
	pending    bool
}

// NewShaper creates a token-bucket shaper forwarding to dst.
func NewShaper(s *sim.Simulator, rate int64, burst int, dst Handler) *Shaper {
	return &Shaper{Sim: s, Rate: rate, Burst: burst, Dst: dst, tokens: float64(burst)}
}

// QueueBytes returns the current backlog.
func (sh *Shaper) QueueBytes() int { return sh.queueBytes }

// sendThreshold returns the credit required to release a packet needing
// `need` bytes: a full bucket always suffices (borrowing), so packets larger
// than the burst still drain at the configured rate instead of wedging.
func (sh *Shaper) sendThreshold(need float64) float64 {
	if b := float64(sh.Burst); need > b {
		return b
	}
	return need
}

// HandlePacket implements Handler.
func (sh *Shaper) HandlePacket(p *packet.Packet) {
	if sh.TryConsume(p.WireLen()) {
		sh.Dst.HandlePacket(p)
		return
	}
	sh.Enqueue(p)
}

// TryConsume refills the bucket and, if the backlog is empty and credit
// covers a packet of n bytes, spends it and reports true: the caller may
// send the packet immediately. False means the packet must queue (Enqueue)
// or be dropped — credit is untouched.
func (sh *Shaper) TryConsume(n int) bool {
	sh.refill()
	need := float64(n)
	if len(sh.queue) == 0 && sh.tokens >= sh.sendThreshold(need) {
		sh.tokens -= need
		sh.Shaped++
		return true
	}
	return false
}

// CanQueue reports whether a packet of n bytes fits under MaxQueueBytes.
func (sh *Shaper) CanQueue(n int) bool {
	return sh.MaxQueueBytes <= 0 || sh.queueBytes+n <= sh.MaxQueueBytes
}

// Enqueue adds p to the backlog, scheduling a release when credit accrues.
// It reports false (and counts a drop) when the backlog bound rejects p; the
// caller owns a rejected packet.
func (sh *Shaper) Enqueue(p *packet.Packet) bool {
	if !sh.CanQueue(p.WireLen()) {
		sh.Dropped++
		return false
	}
	sh.queue = append(sh.queue, p)
	sh.queueBytes += p.WireLen()
	sh.schedule()
	return true
}

const nsPerSec = int64(sim.Second)

func (sh *Shaper) refill() {
	now := sh.Sim.Now()
	dt := now - sh.lastRefill
	if dt <= 0 {
		return
	}
	sh.lastRefill = now
	if sh.Rate <= 0 {
		return
	}
	// Accrue credit in exact integer arithmetic: earned bits = Rate·dt/1e9
	// with the remainder carried in bit-nanoseconds. The former float64
	// accumulation (Rate/8 · dt.Seconds()) rounded every refill, and on
	// soak-length runs billions of refills let that rounding drift the
	// delivered rate away from Rate; the integer path cannot drift by even
	// one bit over any horizon. tokens then only ever moves in whole bits
	// (⅛-byte steps) and stays ≤ Burst, where float64 is exact.
	//
	// An idle gap longer than the bucket-fill time is clamped first — the
	// bucket is full either way (this is the idle clamp: credit never
	// exceeds Burst no matter how long the shaper sat idle) — which also
	// keeps Rate·dt far from int64 overflow; the carry resets with it.
	if fill := (int64(sh.Burst)*8*nsPerSec + sh.Rate - 1) / sh.Rate; int64(dt) > fill {
		dt = sim.Duration(fill)
		sh.carry = 0
	}
	total := sh.Rate*int64(dt) + sh.carry
	earnedBits := total / nsPerSec
	sh.carry = total - earnedBits*nsPerSec
	sh.tokens += float64(earnedBits) / 8
	if sh.tokens > float64(sh.Burst) {
		sh.tokens = float64(sh.Burst)
	}
}

func (sh *Shaper) schedule() {
	if sh.pending || len(sh.queue) == 0 {
		return
	}
	sh.pending = true
	deficit := sh.sendThreshold(float64(sh.queue[0].WireLen())) - sh.tokens
	var wait sim.Duration
	if deficit > 0 {
		wait = sim.Duration(deficit * 8 / float64(sh.Rate) * float64(sim.Second))
		if wait < 1 {
			wait = 1
		}
	}
	sh.Sim.Schedule(wait, sh.release)
}

func (sh *Shaper) release() {
	sh.pending = false
	sh.refill()
	for len(sh.queue) > 0 {
		p := sh.queue[0]
		need := float64(p.WireLen())
		if sh.tokens < sh.sendThreshold(need) {
			break
		}
		sh.tokens -= need // may go negative (borrowing); refill repays
		sh.queue[0] = nil // drop the reference: the backing array outlives the pop
		sh.queue = sh.queue[1:]
		sh.queueBytes -= p.WireLen()
		sh.Shaped++
		sh.Dst.HandlePacket(p)
	}
	sh.schedule()
}
