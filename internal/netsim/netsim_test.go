package netsim

import (
	"testing"
	"testing/quick"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
	s     *sim.Simulator
	onPkt func() // optional: invoked after each delivery
}

func (c *collector) HandlePacket(p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.s.Now())
	if c.onPkt != nil {
		c.onPkt()
	}
}

func mkPkt(payload int) *packet.Packet {
	return packet.Build(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.ECT0, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, Window: 100}, payload)
}

func mkPktTo(dst packet.Addr, ecn packet.ECN, payload int) *packet.Packet {
	return packet.Build(packet.MakeAddr(10, 0, 0, 1), dst, ecn,
		packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, Window: 100}, payload)
}

func TestLinkSerializationAndDelay(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	// 1 Gbps, 10us delay.
	l := NewLink(s, "t", 1e9, 10*sim.Microsecond, c)
	p := mkPkt(1000)
	wire := p.WireLen()
	l.Send(p)
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	wantTx := sim.Duration(int64(wire) * 8) // 1 byte = 8ns at 1 Gbps
	want := wantTx + 10*sim.Microsecond
	if c.times[0] != want {
		t.Fatalf("delivery at %v, want %v", c.times[0], want)
	}
}

func TestLinkFIFOAndBackToBack(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	p1, p2 := mkPkt(1000), mkPkt(500)
	l.Send(p1)
	l.Send(p2)
	if l.QueueLen() != 2 {
		t.Fatalf("queue len = %d", l.QueueLen())
	}
	s.RunAll()
	if len(c.pkts) != 2 || c.pkts[0] != p1 || c.pkts[1] != p2 {
		t.Fatal("FIFO order violated")
	}
	// Second delivery = tx(p1) + tx(p2), back-to-back.
	want := l.TxTime(p1.WireLen()) + l.TxTime(p2.WireLen())
	if c.times[1] != want {
		t.Fatalf("p2 at %v, want %v", c.times[1], want)
	}
	if l.Stats.SentPackets != 2 || l.QueueBytes() != 0 {
		t.Fatalf("stats: %+v qbytes=%d", l.Stats, l.QueueBytes())
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 10e9, sim.Microsecond, c)
	// Saturate for 10ms.
	n := 0
	var offer func()
	offer = func() {
		if s.Now() >= 10*sim.Millisecond {
			return
		}
		if l.QueueLen() < 4 {
			l.Send(mkPkt(8948))
			n++
		}
		s.Schedule(sim.Microsecond, offer)
	}
	s.Schedule(0, offer)
	s.Run(10 * sim.Millisecond)
	util := l.Utilization()
	if util < 0.95 || util > 1.0001 {
		t.Fatalf("utilization = %v, want ~1.0 (sent %d)", util, n)
	}
}

type dropAll struct{}

func (dropAll) OnEnqueue(*Link, *packet.Packet) bool { return false }
func (dropAll) OnDequeue(*Link, *packet.Packet)      {}

func TestLinkPolicyDrop(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	l.Policy = dropAll{}
	if l.Send(mkPkt(100)) {
		t.Fatal("Send should report drop")
	}
	s.RunAll()
	if len(c.pkts) != 0 || l.Stats.Drops != 1 {
		t.Fatal("dropped packet delivered or not counted")
	}
}

func TestSharedBufferDynamicThreshold(t *testing.T) {
	b := NewSharedBuffer(1000, 1.0)
	// Empty pool: a port may take up to alpha*free = 1000.
	if !b.Admit(0, 600) {
		t.Fatal("admit 600 into empty pool failed")
	}
	if b.Used() != 600 || b.Free() != 400 {
		t.Fatalf("used=%d free=%d", b.Used(), b.Free())
	}
	// Same port now holds 600, free=400: 600+300 > 1*400 → reject.
	if b.Admit(600, 300) {
		t.Fatal("DT should reject when port exceeds alpha*free")
	}
	// A different empty port can still take up to 400.
	if !b.Admit(0, 200) {
		t.Fatal("second port admit failed")
	}
	// Pool exhaustion.
	if b.Admit(0, 300) {
		t.Fatal("admitted beyond remaining free")
	}
	b.Release(200)
	if b.Used() != 600 {
		t.Fatalf("used=%d after release", b.Used())
	}
}

func TestSharedBufferReleasePanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSharedBuffer(10, 1).Release(1)
}

// Property: used never exceeds total and never goes negative under any
// admit/release sequence.
func TestSharedBufferInvariantProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		b := NewSharedBuffer(10000, 2.0)
		var held []int
		for _, op := range ops {
			n := int(op%997) + 1
			if op%2 == 0 {
				if b.Admit(0, n) {
					held = append(held, n)
				}
			} else if len(held) > 0 {
				b.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if b.Used() < 0 || b.Used() > b.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPortQueueMarksECT(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	l.Policy = &PortQueue{Red: REDConfig{MarkThresholdBytes: 1}} // mark everything after first
	p1 := mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.ECT0, 1000)
	p2 := mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.ECT0, 1000)
	l.Send(p1)
	l.Send(p2) // queue nonempty → mark
	s.RunAll()
	if c.pkts[0].IP().ECN() != packet.ECT0 {
		t.Fatal("first packet should be unmarked")
	}
	if c.pkts[1].IP().ECN() != packet.CE {
		t.Fatal("second packet should be CE")
	}
	if !c.pkts[1].IP().VerifyChecksum() {
		t.Fatal("marking broke IP checksum")
	}
	if l.Stats.Marks != 1 {
		t.Fatalf("marks = %d", l.Stats.Marks)
	}
}

func TestPortQueueDropsNonECTAboveThreshold(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	l.Policy = &PortQueue{Red: REDConfig{MarkThresholdBytes: 1}}
	l.Send(mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.NotECT, 1000))
	ok := l.Send(mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.NotECT, 1000))
	if ok {
		t.Fatal("Not-ECT packet above threshold should drop")
	}
	if l.Stats.DropsNonECT != 1 {
		t.Fatalf("DropsNonECT = %d", l.Stats.DropsNonECT)
	}
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
}

func TestPortQueueCEPassesThrough(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "t", 1e9, 0, &collector{s: s})
	l.Policy = &PortQueue{Red: REDConfig{MarkThresholdBytes: 1}}
	l.Send(mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.CE, 1000))
	if !l.Send(mkPktTo(packet.MakeAddr(10, 0, 0, 9), packet.CE, 1000)) {
		t.Fatal("CE packet should be admitted above threshold")
	}
	if l.Stats.Marks != 0 {
		t.Fatal("CE packet should not be re-marked")
	}
}

func TestPortQueueSharedBufferDrop(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	buf := NewSharedBuffer(3000, 1.0)
	l.Policy = &PortQueue{Buffer: buf}
	p := mkPkt(1000)
	if !l.Send(p) {
		t.Fatal("first packet rejected")
	}
	l.Send(mkPkt(1000))
	// Port holds ~2100B, free ~900 → DT rejects next 1000B packet.
	if l.Send(mkPkt(1000)) {
		t.Fatal("should exceed dynamic threshold")
	}
	s.RunAll()
	if buf.Used() != 0 {
		t.Fatalf("buffer leak: used=%d", buf.Used())
	}
}

func buildStar(t *testing.T, s *sim.Simulator, n int, red REDConfig) (*Switch, []*Host) {
	t.Helper()
	sw := NewSwitch(s, "tor", NewSharedBuffer(9<<20, 1.0))
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		addr := packet.MakeAddr(10, 0, 0, byte(i+1))
		h := NewHost(s, "h", addr)
		h.NIC = NewLink(s, "up", 10e9, sim.Microsecond, sw)
		down := NewLink(s, "down", 10e9, sim.Microsecond, h)
		port := sw.AddPort(down, red)
		sw.AddRoute(addr, port)
		hosts[i] = h
	}
	return sw, hosts
}

type sink struct{ got []*packet.Packet }

func (k *sink) HandlePacket(p *packet.Packet) { k.got = append(k.got, p) }

func TestSwitchRouting(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildStar(t, s, 3, REDConfig{})
	k0, k2 := &sink{}, &sink{}
	hosts[0].Demux = k0
	hosts[2].Demux = k2
	p := mkPktTo(hosts[2].Addr, packet.ECT0, 100)
	hosts[0].Output(p)
	s.RunAll()
	if len(k2.got) != 1 || len(k0.got) != 0 {
		t.Fatalf("routing failed: h2=%d h0=%d", len(k2.got), len(k0.got))
	}
	if sw.Stats.Forwarded != 1 {
		t.Fatalf("forwarded = %d", sw.Stats.Forwarded)
	}
	if k2.got[0].Hops != 1 {
		t.Fatalf("hops = %d", k2.got[0].Hops)
	}
	if k2.got[0].IP().TTL() != 63 {
		t.Fatalf("TTL = %d", k2.got[0].IP().TTL())
	}
}

func TestSwitchNoRoute(t *testing.T) {
	s := sim.New(1)
	sw, hosts := buildStar(t, s, 2, REDConfig{})
	hosts[0].Output(mkPktTo(packet.MakeAddr(99, 9, 9, 9), packet.ECT0, 10))
	s.RunAll()
	if sw.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", sw.Stats.NoRoute)
	}
}

func TestSwitchDropRate(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, "x", nil)
	l := NewLink(s, "p", 1e9, 0, &sink{})
	sw.AddPort(l, REDConfig{})
	l.Stats.Drops = 1
	l.Stats.SentPackets = 3
	if got := sw.DropRate(); got != 0.25 {
		t.Fatalf("drop rate = %v", got)
	}
}

func TestHostHooks(t *testing.T) {
	s := sim.New(1)
	_, hosts := buildStar(t, s, 2, REDConfig{})
	k := &sink{}
	hosts[1].Demux = k

	var egressSeen, ingressSeen int
	hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		egressSeen++
		return p, nil
	}
	hosts[1].Ingress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		ingressSeen++
		return p, nil
	}
	hosts[0].Output(mkPktTo(hosts[1].Addr, packet.ECT0, 10))
	s.RunAll()
	if egressSeen != 1 || ingressSeen != 1 || len(k.got) != 1 {
		t.Fatalf("hooks: egress=%d ingress=%d delivered=%d", egressSeen, ingressSeen, len(k.got))
	}
}

func TestHostHookDropAndMultiply(t *testing.T) {
	s := sim.New(1)
	_, hosts := buildStar(t, s, 2, REDConfig{})
	k := &sink{}
	hosts[1].Demux = k

	// Egress hook that duplicates every packet (FACK-style).
	hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		return p, p.Clone()
	}
	hosts[0].Output(mkPktTo(hosts[1].Addr, packet.ECT0, 10))
	s.RunAll()
	if len(k.got) != 2 {
		t.Fatalf("duplication: delivered=%d", len(k.got))
	}

	// Ingress hook that drops everything (policing).
	k.got = nil
	hosts[1].Ingress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) { return nil, nil }
	hosts[0].Output(mkPktTo(hosts[1].Addr, packet.ECT0, 10))
	s.RunAll()
	if len(k.got) != 0 || hosts[1].IngressDropped != 2 {
		t.Fatalf("policing: delivered=%d dropped=%d", len(k.got), hosts[1].IngressDropped)
	}
}

func TestDeliverLocalBypassesIngress(t *testing.T) {
	s := sim.New(1)
	_, hosts := buildStar(t, s, 2, REDConfig{})
	k := &sink{}
	hosts[0].Demux = k
	hosts[0].Ingress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) { return nil, nil }
	hosts[0].DeliverLocal(mkPkt(0))
	if len(k.got) != 1 {
		t.Fatal("DeliverLocal did not bypass ingress hook")
	}
}

func TestCongestedPortBuildsQueueAndMarks(t *testing.T) {
	// Two senders blast one receiver at 10G each over a 10G egress: the
	// egress queue must grow to the mark threshold and CE-mark ECT packets.
	s := sim.New(1)
	red := REDConfig{MarkThresholdBytes: 80_000}
	sw, hosts := buildStar(t, s, 3, red)
	k := &sink{}
	hosts[2].Demux = k
	var offered int
	var offer func()
	offer = func() {
		if s.Now() >= 5*sim.Millisecond {
			return
		}
		hosts[0].Output(mkPktTo(hosts[2].Addr, packet.ECT0, 8948))
		hosts[1].Output(mkPktTo(hosts[2].Addr, packet.ECT0, 8948))
		offered += 2
		s.Schedule(7200*sim.Nanosecond, offer) // each sender ~10G offered
	}
	s.Schedule(0, offer)
	s.Run(6 * sim.Millisecond)
	down := sw.Port(2)
	if down.Stats.Marks == 0 {
		t.Fatal("no CE marks under 2:1 overload")
	}
	if down.Stats.MaxQueueBytes < red.MarkThresholdBytes {
		t.Fatalf("max queue %d below threshold", down.Stats.MaxQueueBytes)
	}
	var marked int
	for _, p := range k.got {
		if p.IP().ECN() == packet.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no CE-marked packets delivered")
	}
}

func TestAvgQueueAndUtilization(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 0, c)
	l.Send(mkPkt(1000))
	s.RunAll()
	if l.AvgQueueBytes() <= 0 {
		t.Fatal("avg queue should be positive after traffic")
	}
	if u := l.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("utilization = %v", u)
	}
}
