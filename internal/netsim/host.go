package netsim

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// PathHook is a vSwitch datapath interception point. It receives one packet
// and returns the packets that continue along the path: the same packet
// (possibly mutated or replaced), additional generated packets (e.g. AC/DC
// FACKs), or none (policing drop). A nil hook is a passthrough.
type PathHook func(p *packet.Packet) []*packet.Packet

// Host is a server: a guest stack above a vSwitch above a NIC. The guest
// TCP endpoints (internal/tcpstack) register as the Demux; the AC/DC module
// (internal/core) installs Egress/Ingress hooks exactly where OVS sits —
// between the stack and the NIC.
type Host struct {
	Sim  *sim.Simulator
	Name string
	Addr packet.Addr

	// NIC is the egress link toward the first-hop switch.
	NIC *Link

	// Egress processes packets leaving the guest stack before they reach the
	// NIC; Ingress processes packets arriving from the NIC before the stack.
	Egress  PathHook
	Ingress PathHook

	// Demux delivers packets to the guest transport layer.
	Demux Handler

	// OnTxFree, when set, is called for packets that leave the egress path
	// without reaching the wire (dropped by the egress hook or the NIC
	// queue), so TSQ accounting in the stack does not leak.
	OnTxFree func(p *packet.Packet)

	// Counters.
	SentPackets, RecvPackets      int64
	SentBytes, RecvBytes          int64
	EgressDropped, IngressDropped int64
}

// NewHost creates a host with the given address. Attach the NIC afterwards.
func NewHost(s *sim.Simulator, name string, addr packet.Addr) *Host {
	return &Host{Sim: s, Name: name, Addr: addr}
}

// Output sends a guest-stack packet through the egress hook and onto the NIC.
func (h *Host) Output(p *packet.Packet) {
	pkts := applyHook(h.Egress, p)
	if len(pkts) == 0 {
		h.EgressDropped++
		if h.OnTxFree != nil {
			h.OnTxFree(p)
		}
		return
	}
	for _, q := range pkts {
		h.SentPackets++
		h.SentBytes += int64(q.IPLen())
		if !h.NIC.Send(q) && h.OnTxFree != nil {
			h.OnTxFree(q)
		}
	}
}

// HandlePacket implements Handler: packets arriving from the network pass
// the ingress hook and are delivered to the guest stack.
func (h *Host) HandlePacket(p *packet.Packet) {
	pkts := applyHook(h.Ingress, p)
	if len(pkts) == 0 {
		h.IngressDropped++
		return
	}
	for _, q := range pkts {
		h.RecvPackets++
		h.RecvBytes += int64(q.IPLen())
		if h.Demux != nil {
			h.Demux.HandlePacket(q)
		}
	}
}

// DeliverLocal injects a vSwitch-generated packet (e.g. a window update or a
// duplicate ACK) directly into the guest stack, bypassing the ingress hook.
func (h *Host) DeliverLocal(p *packet.Packet) {
	if h.Demux != nil {
		h.Demux.HandlePacket(p)
	}
}

// InjectToWire puts a vSwitch-generated packet (e.g. a FACK) directly on the
// NIC, bypassing the egress hook.
func (h *Host) InjectToWire(p *packet.Packet) {
	h.SentPackets++
	h.SentBytes += int64(p.IPLen())
	h.NIC.Send(p)
}

func applyHook(hook PathHook, p *packet.Packet) []*packet.Packet {
	if hook == nil {
		return []*packet.Packet{p}
	}
	return hook(p)
}
