package netsim

import (
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// PathHook is a vSwitch datapath interception point. It receives one packet
// and returns the packets that continue along the path as a pair: out is the
// input packet (possibly mutated or replaced) or nil if the hook consumed it
// (policing drop, absorbed feedback, retained for later injection), and
// extra is at most one additional generated packet (e.g. a coalesced AC/DC
// window probe) — no datapath in this repository produces more than one. The
// pair form keeps the per-packet hot path free of slice allocations. A nil
// hook is a passthrough.
//
// Ownership: the hook owns the input while it runs. Returning it (as out)
// hands it back to the caller; returning nil,nil means the hook consumed it
// — an ingress hook must not retain the packet in that case (the host
// recycles it), while an egress hook may (the host only credits TSQ and
// leaves the packet to its new owner or the GC).
type PathHook func(p *packet.Packet) (out, extra *packet.Packet)

// BatchPathHook is the burst form of PathHook: it processes every packet of
// ps and appends one (out, extra) pair per input to pairs — pairs[2i] and
// pairs[2i+1] belong to ps[i] — returning the extended slice. Semantics and
// ownership are exactly a loop of PathHook calls in slice order; the batch
// form exists so the hook can amortize lookups and lock acquisitions across
// the burst (internal/core's EgressBatch/IngressBatch).
//
// Invariant: a Host's batch hook, when non-nil, must agree with its
// per-packet hook. Code that replaces Egress/Ingress at runtime (tests,
// tracing wrappers) must also replace or nil the corresponding batch hook,
// otherwise bursts bypass the override.
type BatchPathHook func(ps, pairs []*packet.Packet) []*packet.Packet

// Host is a server: a guest stack above a vSwitch above a NIC. The guest
// TCP endpoints (internal/tcpstack) register as the Demux; the AC/DC module
// (internal/core) installs Egress/Ingress hooks exactly where OVS sits —
// between the stack and the NIC.
type Host struct {
	Sim  *sim.Simulator
	Name string
	Addr packet.Addr

	// NIC is the egress link toward the first-hop switch.
	NIC *Link

	// Egress processes packets leaving the guest stack before they reach the
	// NIC; Ingress processes packets arriving from the NIC before the stack.
	Egress  PathHook
	Ingress PathHook

	// EgressBatch/IngressBatch are the burst forms used by OutputBatch and
	// HandleBatch; nil falls back to the per-packet hooks. See BatchPathHook
	// for the consistency invariant with Egress/Ingress.
	EgressBatch  BatchPathHook
	IngressBatch BatchPathHook

	// Demux delivers packets to the guest transport layer.
	Demux Handler

	// Pool recycles packet buffers for everything attached to this host's
	// simulator (one shared Pool per topology). Nil is valid and falls back
	// to garbage-collected allocation everywhere.
	Pool *packet.Pool

	// OnTxFree, when set, is called for packets that leave the egress path
	// without reaching the wire (dropped by the egress hook or the NIC
	// queue), so TSQ accounting in the stack does not leak.
	OnTxFree func(p *packet.Packet)

	// Counters.
	SentPackets, RecvPackets      int64
	SentBytes, RecvBytes          int64
	EgressDropped, IngressDropped int64

	// pairScratch recycles the (out, extra) pair buffers OutputBatch and
	// HandleBatch hand to the batch hooks. It is a stack, not a single
	// buffer, because dispatching a batch can re-enter batch dispatch: a
	// NIC-rejected packet's OnTxFree credit can resume the guest stack,
	// which may flush a fresh burst for another connection mid-loop.
	pairScratch [][]*packet.Packet
}

// NewHost creates a host with the given address. Attach the NIC afterwards.
func NewHost(s *sim.Simulator, name string, addr packet.Addr) *Host {
	return &Host{Sim: s, Name: name, Addr: addr}
}

// Output sends a guest-stack packet through the egress hook and onto the NIC.
func (h *Host) Output(p *packet.Packet) {
	out, extra := applyHook(h.Egress, p)
	if out == nil && extra == nil {
		h.EgressDropped++
		if h.OnTxFree != nil {
			// Credit TSQ for the packet that never reached the wire. The
			// packet itself is not recycled here: the egress hook may have
			// retained it (UDP tunnel queueing), and policing drops are rare
			// enough that leaving the rest to the GC is fine.
			h.OnTxFree(p)
		}
		return
	}
	h.sendOne(out)
	h.sendOne(extra)
}

func (h *Host) sendOne(q *packet.Packet) {
	if q == nil {
		return
	}
	h.SentPackets++
	h.SentBytes += int64(q.IPLen())
	if !h.NIC.Send(q) {
		// NIC queue rejected it: the packet dies here.
		if h.OnTxFree != nil {
			h.OnTxFree(q)
		}
		h.Pool.Put(q)
	}
}

// HandlePacket implements Handler: packets arriving from the network pass
// the ingress hook and are delivered to the guest stack.
func (h *Host) HandlePacket(p *packet.Packet) {
	out, extra := applyHook(h.Ingress, p)
	if out == nil && extra == nil {
		// Consumed by the hook (absorbed FACK, policing drop). Per the
		// PathHook contract the hook did not retain it, so recycle.
		h.IngressDropped++
		h.Pool.Put(p)
		return
	}
	h.deliverOne(out)
	h.deliverOne(extra)
}

func (h *Host) deliverOne(q *packet.Packet) {
	if q == nil {
		return
	}
	h.RecvPackets++
	h.RecvBytes += int64(q.IPLen())
	if h.Demux != nil {
		h.Demux.HandlePacket(q)
	} else {
		h.Pool.Put(q)
	}
}

// DeliverLocal injects a vSwitch-generated packet (e.g. a window update or a
// duplicate ACK) directly into the guest stack, bypassing the ingress hook.
// Ownership of p transfers to the guest side.
func (h *Host) DeliverLocal(p *packet.Packet) {
	if h.Demux != nil {
		h.Demux.HandlePacket(p)
	} else {
		h.Pool.Put(p)
	}
}

// InjectToWire puts a vSwitch-generated packet (e.g. a FACK) directly on the
// NIC, bypassing the egress hook.
func (h *Host) InjectToWire(p *packet.Packet) {
	h.SentPackets++
	h.SentBytes += int64(p.IPLen())
	if !h.NIC.Send(p) {
		h.Pool.Put(p)
	}
}

func applyHook(hook PathHook, p *packet.Packet) (out, extra *packet.Packet) {
	if hook == nil {
		return p, nil
	}
	return hook(p)
}

// OutputBatch sends a burst of guest-stack packets through the egress batch
// hook and onto the NIC. Per-packet accounting (EgressDropped, OnTxFree, TSQ
// credit) is identical to calling Output on each packet in order; only the
// hook traversal is batched.
func (h *Host) OutputBatch(ps []*packet.Packet) {
	if len(ps) == 0 {
		return
	}
	if h.EgressBatch == nil || len(ps) == 1 {
		for _, p := range ps {
			h.Output(p)
		}
		return
	}
	pairs := h.EgressBatch(ps, h.getPairs())
	for i, p := range ps {
		out, extra := pairs[2*i], pairs[2*i+1]
		if out == nil && extra == nil {
			// Same contract as Output: credit TSQ, do not recycle (the
			// egress hook may have retained the packet).
			h.EgressDropped++
			if h.OnTxFree != nil {
				h.OnTxFree(p)
			}
			continue
		}
		h.sendOne(out)
		h.sendOne(extra)
	}
	h.putPairs(pairs)
}

// HandleBatch implements BatchHandler: a burst arriving from the network
// passes the ingress batch hook once, then each surviving packet is
// delivered to the guest stack. Per-packet accounting matches HandlePacket.
func (h *Host) HandleBatch(ps []*packet.Packet) {
	if len(ps) == 0 {
		return
	}
	if h.IngressBatch == nil || len(ps) == 1 {
		for _, p := range ps {
			h.HandlePacket(p)
		}
		return
	}
	pairs := h.IngressBatch(ps, h.getPairs())
	for i, p := range ps {
		out, extra := pairs[2*i], pairs[2*i+1]
		if out == nil && extra == nil {
			// Consumed by the hook; per the PathHook contract it did not
			// retain the packet, so recycle.
			h.IngressDropped++
			h.Pool.Put(p)
			continue
		}
		h.deliverOne(out)
		h.deliverOne(extra)
	}
	h.putPairs(pairs)
}

func (h *Host) getPairs() []*packet.Packet {
	if n := len(h.pairScratch); n > 0 {
		s := h.pairScratch[n-1]
		h.pairScratch = h.pairScratch[:n-1]
		return s
	}
	return nil
}

func (h *Host) putPairs(s []*packet.Packet) {
	clear(s) // drop packet references; the buffer outlives the batch
	h.pairScratch = append(h.pairScratch, s[:0])
}
