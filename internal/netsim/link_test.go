package netsim

import (
	"testing"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// mkPoolPkt draws a packet from the pool so lifecycle tests can balance
// Gets against Puts.
func mkPoolPkt(pool *packet.Pool, payload int) *packet.Packet {
	return packet.BuildIn(pool, packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.ECT0, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, Window: 100}, payload)
}

// TestLinkDownDrainsQueueWithAccounting pins Down()'s contract: the pending
// tx timer is cancelled, every queued packet is discarded with DropsDown
// accounting, shared-buffer bytes are released, TSQ credit flows through
// OnTxDone, and ownership returns to the pool.
func TestLinkDownDrainsQueueWithAccounting(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	buf := NewSharedBuffer(1<<20, 1.0)
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 10*sim.Microsecond, c)
	l.Policy = &PortQueue{Buffer: buf}
	l.Pool = pool
	var txDone int
	l.OnTxDone = func(p *packet.Packet) { txDone++ }

	const n = 5
	for i := 0; i < n; i++ {
		if !l.Send(mkPoolPkt(pool, 1000)) {
			t.Fatalf("send %d refused on a healthy link", i)
		}
	}
	if buf.Used() == 0 {
		t.Fatal("shared buffer untouched by enqueue")
	}
	putsBefore := pool.Puts
	l.Down()
	if !l.IsDown() {
		t.Fatal("IsDown false after Down")
	}
	if l.QueueLen() != 0 || l.QueueBytes() != 0 {
		t.Fatalf("queue not drained: len=%d bytes=%d", l.QueueLen(), l.QueueBytes())
	}
	if l.Stats.DropsDown != n {
		t.Fatalf("DropsDown = %d, want %d", l.Stats.DropsDown, n)
	}
	if buf.Used() != 0 {
		t.Fatalf("shared buffer holds %dB after Down", buf.Used())
	}
	if txDone != n {
		t.Fatalf("OnTxDone credited %d packets, want %d (TSQ budget leak)", txDone, n)
	}
	if pool.Puts != putsBefore+n {
		t.Fatalf("pool puts %d -> %d, want +%d (packet ownership leak)", putsBefore, pool.Puts, n)
	}
	if l.Stats.DownEvents != 1 {
		t.Fatalf("DownEvents = %d", l.Stats.DownEvents)
	}

	// Sends while down are refused and counted; the caller keeps ownership.
	p := mkPoolPkt(pool, 100)
	if l.Send(p) {
		t.Fatal("Send succeeded on a down link")
	}
	pool.Put(p)
	if l.Stats.DropsDown != n+1 {
		t.Fatalf("DropsDown = %d after refused send, want %d", l.Stats.DropsDown, n+1)
	}

	// No stray tx event may fire after the drain.
	s.RunAll()
	if len(c.pkts) != 0 {
		t.Fatalf("%d packets delivered from a drained link", len(c.pkts))
	}

	l.Up()
	if l.IsDown() || l.Stats.UpEvents != 1 {
		t.Fatalf("Up failed: down=%v ups=%d", l.IsDown(), l.Stats.UpEvents)
	}
	if !l.Send(mkPoolPkt(pool, 1000)) {
		t.Fatal("send refused after Up")
	}
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d after recovery, want 1", len(c.pkts))
	}
}

// TestLinkDownLeavesWireInFlight: a packet that finished serialization is on
// the wire; taking the link down must not claw it back.
func TestLinkDownLeavesWireInFlight(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 100*sim.Microsecond, c)
	l.Pool = pool
	l.Send(mkPoolPkt(pool, 1000)) // tx takes 8.24us at 1Gbps
	s.Run(50 * sim.Microsecond)   // past serialization, mid-propagation
	l.Down()
	s.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("in-flight packet lost: delivered %d", len(c.pkts))
	}
	if l.Stats.DropsDown != 0 {
		t.Fatalf("DropsDown = %d for an empty queue", l.Stats.DropsDown)
	}
}

// TestLinkDownUpIdempotent: repeated transitions in the same direction are
// no-ops — the event counters see each edge once.
func TestLinkDownUpIdempotent(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "t", 1e9, 0, &sink{})
	l.Pool = packet.NewPool()
	l.Down()
	l.Down()
	l.Up()
	l.Up()
	if l.Stats.DownEvents != 1 || l.Stats.UpEvents != 1 {
		t.Fatalf("events down=%d up=%d, want 1/1", l.Stats.DownEvents, l.Stats.UpEvents)
	}
}

// TestLinkFlapPoolBalance runs repeated down/up cycles under traffic and
// checks that every pooled packet the link consumed was returned: the pool's
// Gets equal its Puts once the run drains.
func TestLinkFlapPoolBalance(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	c := &collector{s: s}
	l := NewLink(s, "t", 1e9, 5*sim.Microsecond, c)
	l.Pool = pool
	delivered := 0
	refused := 0
	for cycle := 0; cycle < 10; cycle++ {
		for i := 0; i < 8; i++ {
			p := mkPoolPkt(pool, 500)
			if !l.Send(p) {
				pool.Put(p)
				refused++
			}
		}
		s.RunFor(2 * sim.Microsecond)
		l.Down()
		s.RunFor(2 * sim.Microsecond)
		l.Up()
	}
	s.RunAll()
	delivered = len(c.pkts)
	for _, p := range c.pkts {
		pool.Put(p)
	}
	if pool.Gets != pool.Puts {
		t.Fatalf("pool imbalance after flaps: gets=%d puts=%d (delivered=%d refused=%d dropsDown=%d)",
			pool.Gets, pool.Puts, delivered, refused, l.Stats.DropsDown)
	}
	if l.Stats.DownEvents != 10 || l.Stats.UpEvents != 10 {
		t.Fatalf("flap events down=%d up=%d, want 10/10", l.Stats.DownEvents, l.Stats.UpEvents)
	}
	if l.Stats.DropsDown == 0 {
		t.Fatal("flap cycles never caught a queued packet — test lost its teeth")
	}
}
