// Package netsim is the network substrate: full-duplex links with
// store-and-forward serialization, output-queued switches with a shared
// dynamically-allocated buffer pool and WRED/ECN marking, and hosts with
// vSwitch hook points on their ingress and egress paths.
//
// It stands in for the paper's physical testbed (10GbE NICs, IBM G8264
// switches with 9MB shared buffers); see DESIGN.md §2 for the substitution
// argument.
package netsim

import (
	"fmt"

	"acdc/internal/packet"
	"acdc/internal/sim"
)

// Handler consumes packets delivered by a link.
type Handler interface {
	HandlePacket(p *packet.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *packet.Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(p *packet.Packet) { f(p) }

// BatchHandler is implemented by destinations (hosts) that accept a burst of
// packets in one call, letting the receiver's vSwitch amortize per-packet
// costs. Semantics must equal calling HandlePacket on each packet in order.
type BatchHandler interface {
	HandleBatch(ps []*packet.Packet)
}

// FaultHook intercepts a packet after it finishes serialization and before
// propagation. deliver hands a packet to the link's destination after the
// propagation delay plus extra; the hook may call it zero times (loss), once
// (passthrough, jitter, corruption in place), or several times (duplication
// — clones, so downstream mutation stays per-copy). A nil hook is the
// ordinary lossless link. internal/faults compiles fault profiles into this
// hook; it exists so chaos runs exercise the datapath's recovery paths
// without touching the switch/queue model.
type FaultHook func(l *Link, p *packet.Packet, deliver func(q *packet.Packet, extra sim.Duration))

// QueuePolicy lets a switch impose admission control and ECN marking on a
// link's queue. OnEnqueue runs before a packet is queued and may mutate it
// (set CE) or reject it (drop); OnDequeue runs when serialization of a packet
// completes and its buffer is released.
type QueuePolicy interface {
	OnEnqueue(l *Link, p *packet.Packet) bool
	OnDequeue(l *Link, p *packet.Packet)
}

// LinkStats counts link-level events. Drops are split by reason so fabric
// telemetry can tell queue pressure (Drops: admission/WRED rejects) from
// injected faults (DropsFault) from lifecycle loss (DropsDown: sends refused
// and queued packets discarded while the link is down).
type LinkStats struct {
	SentPackets    int64
	SentBytes      int64
	Drops          int64 // queue-policy rejects (overflow / WRED)
	DropsNonECT    int64 // drops of Not-ECT packets by the marking policy
	DropsFault     int64 // packets consumed by the fault hook (loss, gray failure)
	DropsDown      int64 // packets refused or discarded because the link was down
	Marks          int64 // CE marks applied by the policy
	DownEvents     int64 // Down() transitions
	UpEvents       int64 // Up() transitions
	MaxQueueBytes  int
	EnquedPackets  int64
	QueueByteTicks float64 // integral of queue bytes over time (for avg occupancy)
	lastChange     sim.Time
}

// Link is a simplex link: packets are serialized at Rate bits/sec, then
// propagate for Delay before delivery to Dst. A FIFO queue forms at the head;
// a QueuePolicy (set by switches) governs admission and marking.
type Link struct {
	Sim   *sim.Simulator
	Name  string
	Rate  int64 // bits per second
	Delay sim.Duration
	Dst   Handler

	// Policy is consulted on enqueue/dequeue; nil means unlimited FIFO.
	Policy QueuePolicy

	// Fault, when set, intercepts packets between serialization and
	// propagation (fault injection for chaos testing); nil is a clean wire.
	Fault FaultHook

	// OnTxDone, when set, is called as each packet finishes serialization
	// (the NIC tx-completion interrupt) — and for each queued packet a
	// Down() discards, because TSQ budget must be credited for packets
	// "dropped before the wire" exactly like tcpstack's host drop path.
	OnTxDone func(p *packet.Packet)

	// Pool, when set, receives ownership of packets the link discards
	// internally (the serialization queue cleared by Down). Without it those
	// packets leak from the free-list's perspective.
	Pool *packet.Pool

	Stats LinkStats

	// queue is the serialization FIFO and flight the propagation FIFO, both
	// rings: the serializer strictly drains head-first and (fault-free) every
	// packet propagates for the same Delay, so delivery order matches
	// completion order. Rings + the two bound callbacks below keep the
	// per-packet path free of closure allocations.
	queue      pktRing
	flight     pktRing
	queueBytes int
	busy       bool
	down       bool
	txEv       *sim.Event // pending tx completion; cancelled by Down

	txDoneF   func()
	deliverF  func()
	faultDelF func(q *packet.Packet, extra sim.Duration)

	// dstBatch is Dst's batch interface, asserted once at construction; when
	// non-nil, deliverHead drains every due in-flight packet into batchBuf
	// and delivers the burst in one HandleBatch call.
	dstBatch BatchHandler
	batchBuf []*packet.Packet
}

// NewLink creates a link with the given rate (bits/sec) and one-way
// propagation delay.
func NewLink(s *sim.Simulator, name string, rate int64, delay sim.Duration, dst Handler) *Link {
	l := &Link{Sim: s, Name: name, Rate: rate, Delay: delay, Dst: dst}
	l.txDoneF = l.txDone
	l.deliverF = l.deliverHead
	l.faultDelF = l.faultDeliver
	l.dstBatch, _ = dst.(BatchHandler)
	return l
}

// pktRing is a growable FIFO ring of packets.
type pktRing struct {
	buf  []*packet.Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		grown := make([]*packet.Packet, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) peek() *packet.Packet { return r.buf[r.head] }

func (r *pktRing) pop() *packet.Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// QueueBytes returns the bytes currently queued (including the packet being
// serialized).
func (l *Link) QueueBytes() int { return l.queueBytes }

// QueueLen returns the number of queued packets (including in-flight).
func (l *Link) QueueLen() int { return l.queue.len() }

// TxTime returns the serialization time for n wire bytes.
func (l *Link) TxTime(n int) sim.Duration {
	return sim.Duration(int64(n) * 8 * int64(sim.Second) / l.Rate)
}

// Send offers a packet to the link. It returns false if the link is down or
// the queue policy dropped it (the packet is then owned by the caller).
func (l *Link) Send(p *packet.Packet) bool {
	if l.down {
		l.Stats.DropsDown++
		return false
	}
	if l.Policy != nil && !l.Policy.OnEnqueue(l, p) {
		l.Stats.Drops++
		if p.IP().ECN() == packet.NotECT {
			l.Stats.DropsNonECT++
		}
		return false
	}
	l.accumQueueTicks()
	p.EnqueuedAt = int64(l.Sim.Now())
	l.queue.push(p)
	l.queueBytes += p.WireLen()
	l.Stats.EnquedPackets++
	if l.queueBytes > l.Stats.MaxQueueBytes {
		l.Stats.MaxQueueBytes = l.queueBytes
	}
	if !l.busy {
		l.startNext()
	}
	return true
}

func (l *Link) startNext() {
	if l.queue.len() == 0 {
		l.busy = false
		l.txEv = nil
		return
	}
	l.busy = true
	tx := l.TxTime(l.queue.peek().WireLen())
	l.txEv = l.Sim.Schedule(tx, l.txDoneF)
}

// txDone completes serialization of the queue head (the serializer is
// strictly FIFO, so the head is always the packet whose tx timer fired).
func (l *Link) txDone() {
	l.txEv = nil // fired; never Cancel a consumed handle (it may be recycled)
	l.accumQueueTicks()
	p := l.queue.pop()
	l.queueBytes -= p.WireLen()
	l.Stats.SentPackets++
	l.Stats.SentBytes += int64(p.WireLen())
	if l.Policy != nil {
		l.Policy.OnDequeue(l, p)
	}
	if l.OnTxDone != nil {
		l.OnTxDone(p)
	}
	p.SentAt = int64(l.Sim.Now())
	if l.Fault != nil {
		l.Fault(l, p, l.faultDelF)
	} else {
		// Clean wire: constant Delay means delivery order == completion
		// order, so the flight ring plus one bound callback replaces the
		// per-packet closures.
		l.flight.push(p)
		l.Sim.ScheduleFunc(l.Delay, l.deliverF)
	}
	l.startNext()
}

// deliverHead hands due in-flight packets to the destination. For a plain
// Handler it pops exactly one packet per firing (the callback is scheduled
// once per packet). For a BatchHandler destination it drains every packet
// whose propagation completed by now into one burst — packets serialize at
// distinct times on a finite-rate link, so bursts >1 only form when TxTime
// rounds to zero or a fault path compresses timing; the later firings for
// drained packets then find them already delivered and no-op. Either way
// each packet is delivered exactly once, at exactly SentAt+Delay.
func (l *Link) deliverHead() {
	if l.dstBatch == nil {
		l.Dst.HandlePacket(l.flight.pop())
		return
	}
	now := int64(l.Sim.Now())
	if l.flight.len() == 0 || l.flight.peek().SentAt+int64(l.Delay) > now {
		return // already delivered by an earlier firing's drain
	}
	l.batchBuf = l.batchBuf[:0]
	for l.flight.len() > 0 && l.flight.peek().SentAt+int64(l.Delay) <= now {
		l.batchBuf = append(l.batchBuf, l.flight.pop())
	}
	l.dstBatch.HandleBatch(l.batchBuf)
	clear(l.batchBuf)
}

// IsDown reports whether the link is administratively down.
func (l *Link) IsDown() bool { return l.down }

// Down takes the link out of service: the pending serialization timer is
// cancelled, every queued packet is discarded with full accounting (buffer
// bytes released via the queue policy, TSQ budget credited via OnTxDone,
// ownership returned to Pool), and subsequent Sends are refused until Up.
// Packets already past serialization (in the flight ring, or re-scheduled by
// a fault hook) are on the wire and still deliver — a failing link loses
// what it was holding, not what it already transmitted. Idempotent.
func (l *Link) Down() {
	if l.down {
		return
	}
	l.down = true
	l.Stats.DownEvents++
	l.accumQueueTicks()
	if l.txEv != nil {
		l.Sim.Cancel(l.txEv)
		l.txEv = nil
	}
	l.busy = false
	for l.queue.len() > 0 {
		p := l.queue.pop()
		l.queueBytes -= p.WireLen()
		l.Stats.DropsDown++
		if l.Policy != nil {
			l.Policy.OnDequeue(l, p)
		}
		if l.OnTxDone != nil {
			l.OnTxDone(p)
		}
		l.Pool.Put(p)
	}
}

// Up returns the link to service. The queue is necessarily empty (Down
// cleared it and Send refused everything since), so the serializer restarts
// on the next Send. Idempotent.
func (l *Link) Up() {
	if !l.down {
		return
	}
	l.down = false
	l.Stats.UpEvents++
	l.accumQueueTicks()
	if !l.busy {
		l.startNext()
	}
}

// faultDeliver is the deliver callback handed to FaultHooks; jitter (extra)
// breaks the FIFO invariant, so this path schedules a per-packet closure.
func (l *Link) faultDeliver(q *packet.Packet, extra sim.Duration) {
	l.Sim.Schedule(l.Delay+extra, func() { l.Dst.HandlePacket(q) })
}

func (l *Link) accumQueueTicks() {
	now := l.Sim.Now()
	dt := now - l.Stats.lastChange
	if dt > 0 {
		l.Stats.QueueByteTicks += float64(l.queueBytes) * float64(dt)
	}
	l.Stats.lastChange = now
}

// AvgQueueBytes returns the time-averaged queue occupancy up to now.
func (l *Link) AvgQueueBytes() float64 {
	l.accumQueueTicks()
	if l.Sim.Now() == 0 {
		return 0
	}
	return l.Stats.QueueByteTicks / float64(l.Sim.Now())
}

// Utilization returns the fraction of capacity used over [0, now].
func (l *Link) Utilization() float64 {
	now := l.Sim.Now()
	if now == 0 {
		return 0
	}
	sentBits := float64(l.Stats.SentBytes) * 8
	capBits := float64(l.Rate) * now.Seconds()
	return sentBits / capBits
}

func (l *Link) String() string {
	return fmt.Sprintf("link(%s %dbps q=%dB)", l.Name, l.Rate, l.queueBytes)
}
