package netsim

import (
	"testing"

	"acdc/internal/sim"
)

func TestShaperEnforcesRate(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e9, 10_000, c) // 1 Gbps
	// Offer 2 Gbps for 10 ms.
	var offer func()
	offer = func() {
		if s.Now() >= 10*sim.Millisecond {
			return
		}
		sh.HandlePacket(mkPkt(1000))
		s.Schedule(4*sim.Microsecond, offer) // ~2 Gbps offered
	}
	s.Schedule(0, offer)
	s.Run(12 * sim.Millisecond)
	gotBits := 0
	for _, p := range c.pkts {
		gotBits += p.WireLen() * 8
	}
	rate := float64(gotBits) / 0.012
	if rate > 1.15e9 {
		t.Fatalf("shaped rate %.2f Gbps exceeds 1 Gbps", rate/1e9)
	}
	if rate < 0.8e9 {
		t.Fatalf("shaped rate %.2f Gbps too low (work-conserving?)", rate/1e9)
	}
	if sh.QueueBytes() == 0 && len(sh.queue) == 0 && s.Pending() == 0 {
		// fine: drained after offering stopped
		_ = sh
	}
}

func TestShaperPassesUnderRate(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 10e9, 100_000, c)
	// Offer well under rate: every packet should pass with ~no delay.
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(sim.Duration(i)*100*sim.Microsecond, func() {
			sh.HandlePacket(mkPkt(1000))
		})
	}
	s.RunAll()
	if len(c.pkts) != 5 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	for i, at := range c.times {
		want := sim.Duration(i) * 100 * sim.Microsecond
		if at-want > sim.Microsecond {
			t.Fatalf("packet %d delayed %v", i, at-want)
		}
	}
}

func TestShaperBurstAllowance(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 5000, c) // slow rate, 5KB bucket
	// An instantaneous burst within the bucket passes immediately.
	for i := 0; i < 4; i++ {
		sh.HandlePacket(mkPkt(1000))
	}
	if len(c.pkts) != 4 {
		t.Fatalf("burst not passed: %d", len(c.pkts))
	}
	// The next packet waits for tokens.
	sh.HandlePacket(mkPkt(1000))
	if len(c.pkts) != 4 {
		t.Fatal("over-burst packet passed immediately")
	}
	s.RunAll()
	if len(c.pkts) != 5 {
		t.Fatalf("queued packet never released: %d", len(c.pkts))
	}
}

func TestShaperDropsBeyondQueueLimit(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 1000, c)
	sh.MaxQueueBytes = 3000
	for i := 0; i < 20; i++ {
		sh.HandlePacket(mkPkt(1000))
	}
	if sh.Dropped == 0 {
		t.Fatal("no drops beyond queue limit")
	}
	if sh.QueueBytes() > 3000 {
		t.Fatalf("queue %d beyond limit", sh.QueueBytes())
	}
}

// TestShaperLongHorizonRateConformance is the regression test for the
// float64 credit-accrual drift: the old refill accumulated Rate/8·dt.Seconds()
// per call, and over soak-length horizons (millions of refills at an odd rate)
// the per-refill rounding compounded into a measurable rate error. The integer
// bit-nanosecond carry cannot drift by even one bit, so a saturated shaper
// must deliver Rate·horizon bits to within one packet. The rate is chosen so
// neither bits-per-nanosecond nor the per-packet wait divides evenly —
// worst case for any floating-point path.
func TestShaperLongHorizonRateConformance(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	const rate = 997_000_001 // ~1 Gbps, prime-ish: maximal rounding pressure
	sh := NewShaper(s, rate, 10_000, c)
	// Keep the shaper saturated edge-triggered: top the backlog back up at
	// every release instead of polling on a timer, so the queue never runs
	// dry and every refill interval is the shaper's own (irregular) choice.
	pkt := 1000
	c.onPkt = func() {
		for sh.QueueBytes() < 4*pkt {
			sh.HandlePacket(mkPkt(pkt - 40)) // mkPkt adds 40B of headers
		}
	}
	c.onPkt()
	const horizon = 15 * sim.Second // ~1.9M releases/refills at this rate
	s.Run(horizon)
	gotBits := int64(0)
	for _, p := range c.pkts {
		gotBits += int64(p.WireLen()) * 8
	}
	wantBits := int64(float64(rate) * horizon.Seconds())
	// The bucket starts full, so up to one Burst of credit rides on top of
	// the accrued rate; beyond that, any surplus or deficit larger than one
	// packet is genuine accrual drift.
	gotBits -= int64(sh.Burst) * 8
	if diff := gotBits - wantBits; diff > int64(pkt*8) || diff < -int64(pkt*8) {
		t.Fatalf("delivered %d bits over %v at %d bit/s, want %d (drift %d bits = %.1f packets)",
			gotBits, horizon, int64(rate), wantBits, diff, float64(diff)/float64(pkt*8))
	}
}

// TestShaperIdleRefillClampedToBurst: credit accrual across an arbitrarily
// long idle gap must saturate at the bucket depth — an hour of idling buys
// exactly one Burst of instantaneous credit, not an hour's worth.
func TestShaperIdleRefillClampedToBurst(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 5000, c) // 1 Mbps, 5 KB bucket
	// Prime lastRefill, then idle for an hour of virtual time.
	sh.TryConsume(0)
	s.Run(sim.Duration(3600) * sim.Second)
	passed := 0
	for sh.TryConsume(1000) {
		passed++
	}
	if passed != 5 {
		t.Fatalf("idle shaper passed %d KB instantly, want exactly the 5 KB burst", passed)
	}
}

func TestShaperFIFO(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 100, c)
	p1, p2 := mkPkt(500), mkPkt(200)
	sh.HandlePacket(p1)
	sh.HandlePacket(p2)
	s.RunAll()
	if len(c.pkts) != 2 || c.pkts[0] != p1 || c.pkts[1] != p2 {
		t.Fatal("shaper reordered packets")
	}
}
