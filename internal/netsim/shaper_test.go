package netsim

import (
	"testing"

	"acdc/internal/sim"
)

func TestShaperEnforcesRate(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e9, 10_000, c) // 1 Gbps
	// Offer 2 Gbps for 10 ms.
	var offer func()
	offer = func() {
		if s.Now() >= 10*sim.Millisecond {
			return
		}
		sh.HandlePacket(mkPkt(1000))
		s.Schedule(4*sim.Microsecond, offer) // ~2 Gbps offered
	}
	s.Schedule(0, offer)
	s.Run(12 * sim.Millisecond)
	gotBits := 0
	for _, p := range c.pkts {
		gotBits += p.WireLen() * 8
	}
	rate := float64(gotBits) / 0.012
	if rate > 1.15e9 {
		t.Fatalf("shaped rate %.2f Gbps exceeds 1 Gbps", rate/1e9)
	}
	if rate < 0.8e9 {
		t.Fatalf("shaped rate %.2f Gbps too low (work-conserving?)", rate/1e9)
	}
	if sh.QueueBytes() == 0 && len(sh.queue) == 0 && s.Pending() == 0 {
		// fine: drained after offering stopped
		_ = sh
	}
}

func TestShaperPassesUnderRate(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 10e9, 100_000, c)
	// Offer well under rate: every packet should pass with ~no delay.
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(sim.Duration(i)*100*sim.Microsecond, func() {
			sh.HandlePacket(mkPkt(1000))
		})
	}
	s.RunAll()
	if len(c.pkts) != 5 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	for i, at := range c.times {
		want := sim.Duration(i) * 100 * sim.Microsecond
		if at-want > sim.Microsecond {
			t.Fatalf("packet %d delayed %v", i, at-want)
		}
	}
}

func TestShaperBurstAllowance(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 5000, c) // slow rate, 5KB bucket
	// An instantaneous burst within the bucket passes immediately.
	for i := 0; i < 4; i++ {
		sh.HandlePacket(mkPkt(1000))
	}
	if len(c.pkts) != 4 {
		t.Fatalf("burst not passed: %d", len(c.pkts))
	}
	// The next packet waits for tokens.
	sh.HandlePacket(mkPkt(1000))
	if len(c.pkts) != 4 {
		t.Fatal("over-burst packet passed immediately")
	}
	s.RunAll()
	if len(c.pkts) != 5 {
		t.Fatalf("queued packet never released: %d", len(c.pkts))
	}
}

func TestShaperDropsBeyondQueueLimit(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 1000, c)
	sh.MaxQueueBytes = 3000
	for i := 0; i < 20; i++ {
		sh.HandlePacket(mkPkt(1000))
	}
	if sh.Dropped == 0 {
		t.Fatal("no drops beyond queue limit")
	}
	if sh.QueueBytes() > 3000 {
		t.Fatalf("queue %d beyond limit", sh.QueueBytes())
	}
}

func TestShaperFIFO(t *testing.T) {
	s := sim.New(1)
	c := &collector{s: s}
	sh := NewShaper(s, 1e6, 100, c)
	p1, p2 := mkPkt(500), mkPkt(200)
	sh.HandlePacket(p1)
	sh.HandlePacket(p2)
	s.RunAll()
	if len(c.pkts) != 2 || c.pkts[0] != p1 || c.pkts[1] != p2 {
		t.Fatal("shaper reordered packets")
	}
}
