package sim

// Timer is a restartable one-shot timer bound to a Simulator, modelled after
// the kernel timers TCP uses for retransmission and delayed ACKs. Unlike raw
// Events, a Timer can be reset repeatedly and remembers its callback.
type Timer struct {
	sim *Simulator
	fn  func()
	ev  *Event
	// fireFn is t.fire bound once at construction; taking the method value
	// inside Reset would allocate a fresh closure on every (re)arm.
	fireFn func()
}

// NewTimer creates a stopped timer that runs fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after d, cancelling any pending expiry.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.sim.Schedule(d, t.fireFn)
}

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.Stop()
	t.ev = t.sim.At(at, t.fireFn)
}

// ArmIfIdle arms the timer for d only if it is not already pending.
func (t *Timer) ArmIfIdle(d Duration) {
	if !t.Pending() {
		t.Reset(d)
	}
}

// Stop cancels a pending expiry. Safe on stopped timers.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.ev != nil }

// Deadline returns the expiry time of a pending timer; valid only when
// Pending() is true.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.When()
}

// fire clears the pending handle before running the callback: the event has
// fired and been recycled, so holding the stale pointer any longer would
// violate the Event lifetime contract (see package comment).
func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}
