package sim

// Timer is a restartable one-shot timer bound to a Simulator, modelled after
// the kernel timers TCP uses for retransmission and delayed ACKs. Unlike raw
// Events, a Timer can be reset repeatedly and remembers its callback.
//
// Rearming is lazy, the way kernel TCP keepalive timers are: Reset only
// records the new logical deadline when the already-pending event fires no
// later than it, and the expiry handler re-arms to the recorded deadline
// instead of running the callback early. Per-segment timers (inactivity,
// delayed ACK) are reset on every packet but almost never fire, so the common
// case — deadline pushed further out — costs two stores instead of a
// heap-sift over every pending event in the simulation.
type Timer struct {
	sim *Simulator
	fn  func()
	ev  *Event
	// deadline is the logical expiry; ev.when may be earlier (a stale,
	// not-yet-collapsed arm), in which case fire re-arms instead of running fn.
	deadline Time
	// fireFn is t.fire bound once at construction; taking the method value
	// inside Reset would allocate a fresh closure on every (re)arm.
	fireFn func()
}

// NewTimer creates a stopped timer that runs fn when it expires.
func NewTimer(s *Simulator, fn func()) *Timer {
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after d, superseding any pending expiry.
func (t *Timer) Reset(d Duration) {
	if d < 0 {
		d = 0
	}
	t.ResetAt(t.sim.Now() + d)
}

// ResetAt (re)arms the timer to fire at absolute time at. fire clears t.ev
// before the handle can go stale, so a non-nil t.ev is always still pending.
func (t *Timer) ResetAt(at Time) {
	t.deadline = at
	if t.ev != nil {
		if t.ev.when <= at {
			// The pending event fires no later than the new deadline; fire
			// will notice the deadline moved and re-arm. Deferring the heap
			// update to then is what makes the per-packet rearm O(1).
			return
		}
		// Moving earlier: the pending event is too late, sift it in place.
		t.sim.moveTo(t.ev, at)
		return
	}
	t.ev = t.sim.At(at, t.fireFn)
}

// ArmIfIdle arms the timer for d only if it is not already pending.
func (t *Timer) ArmIfIdle(d Duration) {
	if !t.Pending() {
		t.Reset(d)
	}
}

// Stop cancels a pending expiry. Safe on stopped timers.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.ev != nil }

// Deadline returns the expiry time of a pending timer; valid only when
// Pending() is true.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return 0
	}
	return t.deadline
}

// fire runs at the scheduled event's expiry. If Reset pushed the logical
// deadline past the event that just fired, this is a stale wakeup: re-arm at
// the real deadline and stay silent. Otherwise clear the pending handle (the
// event has been recycled; holding the stale pointer would violate the Event
// lifetime contract, see package comment) and run the callback.
func (t *Timer) fire() {
	t.ev = nil
	if d := t.deadline; d > t.sim.Now() {
		t.ev = t.sim.At(d, t.fireFn)
		return
	}
	t.fn()
}
