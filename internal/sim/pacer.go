package sim

import (
	"sync/atomic"
	"time"
)

// Pacer drives a Simulator against a wall clock: each Advance runs the
// simulation up to the virtual time the elapsed wall time maps to under a
// configurable scale. It is what turns the batch simulator into something a
// long-lived daemon can keep continuously current — the service-mode
// equivalent of a production vSwitch that is always "now".
//
// Catch-up is bounded: if the process stalls (GC pause, a slow admin
// command, the scheduler starving the loop), the pacer refuses to replay
// more than MaxCatchUp of virtual time in one Advance and forgives the
// remaining lag instead, rebasing its wall anchor. A daemon that fell a
// minute behind must degrade (run slightly slow, report the forgiven lag)
// rather than freeze serving requests while it replays the minute.
//
// A Pacer is owned by the simulation goroutine: Advance runs events.
// Forgiven is an atomic read, safe from any goroutine (the daemon's status
// endpoint reads it while the loop runs); everything else belongs to the
// owning goroutine.
type Pacer struct {
	sim *Simulator
	// scale is virtual nanoseconds advanced per wall nanosecond. 1.0 paces
	// the simulation at real time; a heavy topology typically needs < 1.
	scale float64
	// maxCatchUp bounds the virtual time one Advance may replay.
	maxCatchUp Duration
	// clock returns elapsed wall time; injectable so tests are
	// deterministic. The zero pacer uses the monotonic system clock.
	clock func() time.Duration

	wallBase time.Duration // clock() at the last rebase
	simBase  Time          // sim.Now() at the last rebase
	forgiven atomic.Int64  // total virtual ns dropped by bounded catch-up
}

// NewPacer creates a pacer anchored at the simulator's current time. scale
// ≤ 0 defaults to 1.0 (real time); maxCatchUp ≤ 0 defaults to 100ms of
// virtual time per Advance.
func NewPacer(s *Simulator, scale float64, maxCatchUp Duration) *Pacer {
	if scale <= 0 {
		scale = 1.0
	}
	if maxCatchUp <= 0 {
		maxCatchUp = 100 * Millisecond
	}
	start := time.Now()
	p := &Pacer{
		sim:        s,
		scale:      scale,
		maxCatchUp: maxCatchUp,
		clock:      func() time.Duration { return time.Since(start) },
	}
	p.rebase()
	return p
}

// SetClock replaces the wall-clock source (tests). The pacer is rebased so
// the new clock's current reading maps to the simulator's current time.
func (p *Pacer) SetClock(clock func() time.Duration) {
	p.clock = clock
	p.rebase()
}

// rebase re-anchors the wall→virtual mapping at the present.
func (p *Pacer) rebase() {
	p.wallBase = p.clock()
	p.simBase = p.sim.Now()
}

// Target returns the virtual time the simulation should have reached by now.
func (p *Pacer) Target() Time {
	elapsed := p.clock() - p.wallBase
	return p.simBase + Time(float64(elapsed)*p.scale)
}

// Advance runs the simulation toward Target, replaying at most MaxCatchUp of
// virtual time; any further backlog is forgiven (counted, not replayed). It
// returns the virtual time actually reached.
func (p *Pacer) Advance() Time {
	target := p.Target()
	now := p.sim.Now()
	if target <= now {
		return now
	}
	if lag := target - now; lag > p.maxCatchUp {
		p.forgiven.Add(int64(lag - p.maxCatchUp))
		target = now + p.maxCatchUp
		// Rebase after the clamp so the forgiven backlog does not carry
		// into every subsequent Advance.
		defer p.rebase()
	}
	p.sim.Run(target)
	return p.sim.Now()
}

// Forgiven returns the total virtual time dropped by bounded catch-up — the
// daemon's "how far behind real time have I been" gauge. Safe from any
// goroutine.
func (p *Pacer) Forgiven() Duration { return Duration(p.forgiven.Load()) }
