package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.RunAll()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events not FIFO: %v", got)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(10, func() { fired = true })
	s.Cancel(ev)
	s.Cancel(ev) // double-cancel is a no-op
	s.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if s.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", s.Processed)
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(20, func() { fired = true })
	s.Schedule(10, func() { s.Cancel(ev) })
	s.RunAll()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestRunHorizon(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(10, func() { ran++ })
	s.Schedule(100, func() { ran++ })
	s.Run(50)
	if ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want horizon 50", s.Now())
	}
	s.Run(200)
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestRunAdvancesToHorizonOnDrain(t *testing.T) {
	s := New(1)
	s.Schedule(5, func() {})
	s.Run(1000)
	if s.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000 after drain", s.Now())
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := New(1)
	var at Time = -1
	s.Schedule(100, func() {
		s.At(10, func() { at = s.Now() }) // 10 < now=100
	})
	s.RunAll()
	if at != 100 {
		t.Fatalf("past-scheduled event fired at %v, want clamped to 100", at)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.Schedule(-5, func() { fired = s.Now() })
	s.RunAll()
	if fired != 0 {
		t.Fatalf("negative delay fired at %v, want 0", fired)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(1, func() { ran++; s.Stop() })
	s.Schedule(2, func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
	// A subsequent Run picks the remaining event up.
	s.RunAll()
	if ran != 2 {
		t.Fatalf("run after Stop did not resume: ran=%d", ran)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New(1)
	var order []Time
	s.Schedule(10, func() {
		order = append(order, s.Now())
		s.Schedule(5, func() { order = append(order, s.Now()) })
	})
	s.RunAll()
	if len(order) != 2 || order[0] != 10 || order[1] != 15 {
		t.Fatalf("nested scheduling broken: %v", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var fired []Time
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 1000; i++ {
			s.Schedule(Duration(rng.Int63n(1_000_000)), func() {
				fired = append(fired, s.Now())
			})
		}
		s.RunAll()
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: executing any batch of randomly timed events yields a
// non-decreasing observation of the clock.
func TestMonotoneClockProperty(t *testing.T) {
	prop := func(delays []uint32) bool {
		s := New(3)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			s.Schedule(Duration(d%10_000_000), func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.RunAll()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap ordering matches sort order for arbitrary times.
func TestHeapMatchesSortProperty(t *testing.T) {
	prop := func(delays []uint32) bool {
		s := New(3)
		var fired []Time
		want := make([]Time, 0, len(delays))
		for _, d := range delays {
			at := Time(d % 1_000_000)
			want = append(want, at)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.RunAll()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetStop(t *testing.T) {
	s := New(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Reset(10)
	tm.Reset(20) // supersedes
	s.Run(15)
	if fired != 0 {
		t.Fatal("superseded timer fired early")
	}
	s.Run(25)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	tm.Reset(5)
	tm.Stop()
	s.Run(100)
	if fired != 1 {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerArmIfIdle(t *testing.T) {
	s := New(1)
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.ArmIfIdle(10)
	tm.ArmIfIdle(1) // ignored: already armed
	s.Run(5)
	if fired != 0 {
		t.Fatal("ArmIfIdle rearmed a pending timer")
	}
	s.Run(20)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
}

func TestTimerDeadline(t *testing.T) {
	s := New(1)
	tm := NewTimer(s, func() {})
	tm.Reset(123)
	if got := tm.Deadline(); got != 123 {
		t.Fatalf("Deadline = %v, want 123", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestReschedule(t *testing.T) {
	s := New(1)
	fired := 0
	ev := s.Schedule(10, func() { fired++ })
	s.Schedule(5, func() { s.Reschedule(ev, 100) })
	s.Run(50)
	if fired != 0 {
		t.Fatal("rescheduled event fired at original time")
	}
	s.Run(200)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Duration(i%1000), func() {})
		if s.Pending() > 10000 {
			s.Run(s.Now() + 500)
		}
	}
	s.RunAll()
}

// TestScheduleFireReuseZeroAlloc pins the event free list: once the pool is
// warm, a schedule→fire→recycle round trip performs no heap allocations.
func TestScheduleFireReuseZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	round := func() {
		s.ScheduleFunc(Microsecond, fn)
		s.ScheduleFunc(2*Microsecond, fn)
		s.RunAll()
	}
	round() // warm the free list
	if n := testing.AllocsPerRun(500, round); n != 0 {
		t.Errorf("schedule/fire/reuse: %v allocs/op, want 0", n)
	}
}

// TestEventRecycling checks the free list actually recycles: after many
// sequential schedule→fire cycles the simulator has allocated only as many
// events as the peak number simultaneously pending.
func TestEventRecycling(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		s.ScheduleFunc(Duration(i)*Microsecond, func() {})
	}
	s.RunAll()
	if got := s.Allocated(); got > 1000 {
		t.Fatalf("allocated %d events for 1000 pending", got)
	}
	before := s.Allocated()
	for i := 0; i < 10000; i++ {
		s.ScheduleFunc(Microsecond, func() {})
		s.RunAll()
	}
	if got := s.Allocated(); got != before {
		t.Fatalf("sequential cycles grew the event population %d -> %d", before, got)
	}
}
