// Package sim provides the discrete-event simulation core used by every
// substrate in this repository: a nanosecond virtual clock, a binary-heap
// event scheduler with cancellable timers, and a deterministic RNG.
//
// The simulator is single-threaded: all events run on the goroutine that
// calls Run. Determinism is guaranteed by ordering events first by time and
// then by insertion sequence, so two events scheduled for the same instant
// fire in the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Handy duration units, mirroring time.Nanosecond etc. but for simulated time.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// String renders t with an adaptive unit, e.g. "1.250ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It is returned by Schedule/At so callers can
// cancel pending timers (e.g. retransmission timers that are reset on ACKs).
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index; -1 when not queued
	fn       func()
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// When returns the simulated time the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now     Time
	pq      eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// Processed counts events executed; useful for perf accounting in tests.
	Processed uint64
}

// New creates a simulator whose RNG is seeded with seed (deterministic runs).
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation RNG. All stochastic behaviour (workload
// arrivals, hash seeds) must draw from it so runs are reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// At runs fn at absolute time t. Scheduling in the past fires at the current
// time (events never run retroactively).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.pq, ev)
	return ev
}

// Cancel marks ev so it will not fire. Safe to call multiple times and on
// events that already fired (no-op).
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&s.pq, ev.index)
	}
}

// Reschedule cancels ev (if pending) and schedules fn-preserving copy at
// now+d, returning the new event.
func (s *Simulator) Reschedule(ev *Event, d Duration) *Event {
	fn := ev.fn
	s.Cancel(ev)
	return s.Schedule(d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Run executes events in time order until the queue drains, Stop is called,
// or the next event would fire after `until` (pass a huge value to run to
// completion). The clock is left at the time of the last executed event, or
// at `until` if the run was cut short by the horizon.
func (s *Simulator) Run(until Time) {
	s.stopped = false
	for len(s.pq) > 0 && !s.stopped {
		ev := s.pq[0]
		if ev.when > until {
			s.now = until
			return
		}
		heap.Pop(&s.pq)
		s.now = ev.when
		if !ev.canceled {
			s.Processed++
			ev.fn()
		}
	}
	if s.now < until && s.stopped {
		return
	}
	if s.now < until && len(s.pq) == 0 {
		// Queue drained before the horizon: advance to the horizon so
		// callers measuring rates over [0, until] divide by the right span.
		s.now = until
	}
}

// RunFor is shorthand for Run(Now()+d).
func (s *Simulator) RunFor(d Duration) { s.Run(s.now + d) }

// RunAll drains the queue completely (or until Stop), leaving the clock at
// the time of the last executed event. Unlike Run, it never advances the
// clock past the final event.
func (s *Simulator) RunAll() {
	s.stopped = false
	for len(s.pq) > 0 && !s.stopped {
		ev := heap.Pop(&s.pq).(*Event)
		s.now = ev.when
		if !ev.canceled {
			s.Processed++
			ev.fn()
		}
	}
}

// eventHeap is a min-heap ordered by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
