// Package sim provides the discrete-event simulation core used by every
// substrate in this repository: a nanosecond virtual clock, a binary-heap
// event scheduler with cancellable timers, and a deterministic RNG.
//
// The simulator is single-threaded: all events run on the goroutine that
// calls Run. Determinism is guaranteed by ordering events first by time and
// then by insertion sequence, so two events scheduled for the same instant
// fire in the order they were scheduled.
//
// Two read paths are safe from other goroutines, which is what lets a
// long-lived service (cmd/acdcd, internal/soak) observe and interrupt a
// running simulation: Now and Allocated are atomic loads, and Stop may be
// called concurrently to make Run return after the current event. Every
// other method — scheduling, cancelling, Run itself — remains owned by the
// simulation goroutine.
//
// # Event recycling
//
// Event structs are pooled on a per-Simulator free list: firing or cancelling
// an event returns it to the pool, and the next Schedule/At reuses it. In the
// steady state a sim workload therefore schedules with zero allocations. The
// contract this imposes on callers: an *Event handle is valid only while the
// event is pending. Once it has fired or been cancelled, the handle must be
// dropped (nil it out, as Timer does) — calling Cancel or Reschedule through
// a stale handle is a no-op at best and can target an unrelated reused event
// at worst.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in nanoseconds.
type Duration = Time

// Handy duration units, mirroring time.Nanosecond etc. but for simulated time.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// String renders t with an adaptive unit, e.g. "1.250ms".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It is returned by Schedule/At so callers can
// cancel pending timers (e.g. retransmission timers that are reset on ACKs).
// Handles are only valid while the event is pending; see the package comment.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index; -1 when not queued
	fn       func()
	canceled bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// When returns the simulated time the event fires (or fired).
func (e *Event) When() Time { return e.when }

// maxFreeEvents bounds the event free list so a one-off scheduling burst does
// not pin memory for the lifetime of the simulator.
const maxFreeEvents = 1 << 14

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	// now is the virtual clock. It is written only by the simulation
	// goroutine but read (via Now) by observers on other goroutines — an
	// admin API reporting status, a flow snapshot taken mid-run — so it is
	// an atomic Time in nanoseconds.
	now     atomic.Int64
	pq      []*Event // monomorphic binary min-heap ordered by (when, seq)
	free    []*Event // recycled events, reused by At/Schedule
	seq     uint64
	rng     *rand.Rand
	stopped atomic.Bool
	// Processed counts events executed; useful for perf accounting in tests.
	Processed uint64
	// allocated counts Event structs ever heap-allocated (free-list misses).
	// Atomic so soak harnesses can watch the high-water mark while running.
	allocated atomic.Int64
}

// Allocated returns the number of Event structs this simulator has ever
// heap-allocated — the free-list miss count. In steady state it stops
// growing, which TestEventRecycling pins. Safe to call from any goroutine.
func (s *Simulator) Allocated() int64 { return s.allocated.Load() }

// New creates a simulator whose RNG is seeded with seed (deterministic runs).
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time. Safe to call from any goroutine;
// observers on other goroutines see the time of the most recent event.
func (s *Simulator) Now() Time { return Time(s.now.Load()) }

// setNow advances the clock (simulation goroutine only).
func (s *Simulator) setNow(t Time) { s.now.Store(int64(t)) }

// Rand returns the simulation RNG. All stochastic behaviour (workload
// arrivals, hash seeds) must draw from it so runs are reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (s *Simulator) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.Now()+d, fn)
}

// ScheduleFunc runs fn after delay d, fire-and-forget: no Event handle is
// returned, so the event can never be cancelled. Use it for callbacks that
// always run (transmission completions, workload ticks) — it makes the
// no-handle intent explicit at the call site.
func (s *Simulator) ScheduleFunc(d Duration, fn func()) {
	s.Schedule(d, fn)
}

// At runs fn at absolute time t. Scheduling in the past fires at the current
// time (events never run retroactively).
func (s *Simulator) At(t Time, fn func()) *Event {
	if now := s.Now(); t < now {
		t = now
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &Event{}
		s.allocated.Add(1)
	}
	ev.when, ev.seq, ev.fn, ev.canceled = t, s.seq, fn, false
	s.push(ev)
	return ev
}

// recycle returns a no-longer-pending event to the free list.
func (s *Simulator) recycle(ev *Event) {
	ev.fn = nil
	ev.index = -1
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, ev)
	}
}

// moveTo reschedules a still-pending event to fire at time t without the
// remove/push round trip a cancel+schedule pair would pay: the event keeps
// its heap slot identity, takes a fresh sequence number (so its order among
// same-time events is exactly what a cancel+schedule would produce), and
// sifts to its new position in one pass. The caller (Timer.Reset) guarantees
// ev is pending. Times in the past clamp to now, like At.
func (s *Simulator) moveTo(ev *Event, t Time) {
	if now := s.Now(); t < now {
		t = now
	}
	s.seq++
	ev.when, ev.seq = t, s.seq
	if !s.siftDown(ev.index) {
		s.siftUp(ev.index)
	}
}

// Cancel removes a pending event so it will not fire and recycles it. Safe to
// call with nil or on events that already fired or were cancelled (no-op) —
// but see the package comment: a stale handle may alias a reused event.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.canceled = true
	s.remove(ev.index)
	s.recycle(ev)
}

// Reschedule cancels ev (if pending) and schedules its callback afresh at
// now+d, returning the new event. A nil or already-fired event (whose
// callback is gone) reschedules nothing and returns nil.
func (s *Simulator) Reschedule(ev *Event, d Duration) *Event {
	if ev == nil {
		return nil
	}
	fn := ev.fn
	s.Cancel(ev)
	if fn == nil {
		return nil
	}
	return s.Schedule(d, fn)
}

// Stop makes Run return after the currently executing event completes. Safe
// to call from any goroutine (e.g. a daemon shutting its pacer loop down).
func (s *Simulator) Stop() { s.stopped.Store(true) }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Run executes events in time order until the queue drains, Stop is called,
// or the next event would fire after `until` (pass a huge value to run to
// completion). The clock is left at the time of the last executed event, or
// at `until` if the queue was exhausted (or cut short by the horizon) so
// callers measuring rates over [0, until] divide by the right span. A Stop
// leaves the clock at the stopping event.
func (s *Simulator) Run(until Time) {
	s.stopped.Store(false)
	for len(s.pq) > 0 && !s.stopped.Load() {
		ev := s.pq[0]
		if ev.when > until {
			s.setNow(until)
			return
		}
		s.popHead()
		s.setNow(ev.when)
		fn := ev.fn
		s.Processed++
		s.recycle(ev)
		fn()
	}
	if !s.stopped.Load() && s.Now() < until {
		s.setNow(until)
	}
}

// RunFor is shorthand for Run(Now()+d).
func (s *Simulator) RunFor(d Duration) { s.Run(s.Now() + d) }

// RunAll drains the queue completely (or until Stop), leaving the clock at
// the time of the last executed event. Unlike Run, it never advances the
// clock past the final event.
func (s *Simulator) RunAll() {
	s.stopped.Store(false)
	for len(s.pq) > 0 && !s.stopped.Load() {
		ev := s.pq[0]
		s.popHead()
		s.setNow(ev.when)
		fn := ev.fn
		s.Processed++
		s.recycle(ev)
		fn()
	}
}

// less orders the heap by (when, seq): time first, insertion order second.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push inserts ev into the heap.
func (s *Simulator) push(ev *Event) {
	ev.index = len(s.pq)
	s.pq = append(s.pq, ev)
	s.siftUp(ev.index)
}

// popHead removes the heap minimum (the caller already read s.pq[0]).
func (s *Simulator) popHead() {
	n := len(s.pq) - 1
	head := s.pq[0]
	s.pq[0] = s.pq[n]
	s.pq[0].index = 0
	s.pq[n] = nil
	s.pq = s.pq[:n]
	head.index = -1
	if n > 1 {
		s.siftDown(0)
	}
}

// remove deletes the event at heap index i.
func (s *Simulator) remove(i int) {
	n := len(s.pq) - 1
	ev := s.pq[i]
	if i != n {
		s.pq[i] = s.pq[n]
		s.pq[i].index = i
	}
	s.pq[n] = nil
	s.pq = s.pq[:n]
	ev.index = -1
	if i < n {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

// siftUp restores the heap property upward from index i.
func (s *Simulator) siftUp(i int) {
	ev := s.pq[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, s.pq[parent]) {
			break
		}
		s.pq[i] = s.pq[parent]
		s.pq[i].index = i
		i = parent
	}
	s.pq[i] = ev
	ev.index = i
}

// siftDown restores the heap property downward from index i; it reports
// whether the element moved.
func (s *Simulator) siftDown(i int) bool {
	ev := s.pq[i]
	start := i
	n := len(s.pq)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(s.pq[r], s.pq[child]) {
			child = r
		}
		if !eventLess(s.pq[child], ev) {
			break
		}
		s.pq[i] = s.pq[child]
		s.pq[i].index = i
		i = child
	}
	s.pq[i] = ev
	ev.index = i
	return i > start
}
