package sim

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced wall clock for deterministic pacer tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) read() time.Duration  { return c.now }
func (c *fakeClock) tick(d time.Duration) { c.now += d }

func TestPacerTracksWallClock(t *testing.T) {
	s := New(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*Millisecond, func() { fired++ })
	}
	p := NewPacer(s, 1.0, Second)
	clk := &fakeClock{}
	p.SetClock(clk.read)

	clk.tick(5 * time.Millisecond)
	if got := p.Advance(); got != 5*Millisecond {
		t.Fatalf("Advance reached %v, want 5ms", got)
	}
	if fired != 5 {
		t.Fatalf("fired %d events by 5ms, want 5", fired)
	}
	clk.tick(5 * time.Millisecond)
	p.Advance()
	if fired != 10 {
		t.Fatalf("fired %d events by 10ms, want 10", fired)
	}
	if p.Forgiven() != 0 {
		t.Fatalf("forgave %v with no stall", p.Forgiven())
	}
}

func TestPacerScale(t *testing.T) {
	s := New(1)
	p := NewPacer(s, 0.5, Second)
	clk := &fakeClock{}
	p.SetClock(clk.read)

	clk.tick(10 * time.Millisecond)
	if got := p.Advance(); got != 5*Millisecond {
		t.Fatalf("scale 0.5: 10ms wall advanced sim to %v, want 5ms", got)
	}
}

func TestPacerBoundsCatchUp(t *testing.T) {
	s := New(1)
	p := NewPacer(s, 1.0, 10*Millisecond)
	clk := &fakeClock{}
	p.SetClock(clk.read)

	// A 1-second stall: only MaxCatchUp is replayed, the rest is forgiven.
	clk.tick(time.Second)
	if got := p.Advance(); got != 10*Millisecond {
		t.Fatalf("stall replayed to %v, want the 10ms bound", got)
	}
	if want := Second - 10*Millisecond; p.Forgiven() != want {
		t.Fatalf("forgiven %v, want %v", p.Forgiven(), want)
	}
	// After the rebase, normal pacing resumes without re-counting the lag.
	clk.tick(2 * time.Millisecond)
	if got := p.Advance(); got != 12*Millisecond {
		t.Fatalf("post-stall advance reached %v, want 12ms", got)
	}
	if want := Second - 10*Millisecond; p.Forgiven() != want {
		t.Fatalf("forgiven grew to %v after recovery, want %v", p.Forgiven(), want)
	}
}

func TestPacerIdleWhenAhead(t *testing.T) {
	s := New(1)
	s.RunFor(5 * Millisecond)
	p := NewPacer(s, 1.0, Second)
	clk := &fakeClock{}
	p.SetClock(clk.read)
	// No wall time has passed: the sim must not move.
	if got := p.Advance(); got != 5*Millisecond {
		t.Fatalf("idle Advance moved the clock to %v", got)
	}
}

// TestStopFromAnotherGoroutine pins the cross-goroutine contract a daemon
// relies on: Stop interrupts a running Run, and Now is readable while the
// simulation advances.
func TestStopFromAnotherGoroutine(t *testing.T) {
	s := New(1)
	var reschedule func()
	reschedule = func() { s.Schedule(Microsecond, reschedule) }
	reschedule()

	done := make(chan struct{})
	go func() {
		// Concurrent observers: Now and Allocated are atomic reads.
		for s.Now() < 100*Microsecond {
			_ = s.Allocated()
		}
		s.Stop()
		close(done)
	}()
	s.Run(Second) // would run for a virtual second without the Stop
	<-done
	if now := s.Now(); now >= Second {
		t.Fatalf("Stop did not interrupt Run (now=%v)", now)
	}
}
