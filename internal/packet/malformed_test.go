package packet

import (
	"bytes"
	"testing"
)

// malformedOptionCases is the shared table of damaged TCP option blocks the
// parsers must survive: truncated lengths, zero/one lengths, lengths past the
// buffer end, options overlapping the next one, and kind-only tails.
var malformedOptionCases = []struct {
	name string
	opts []byte
}{
	{"empty", nil},
	{"kind-only", []byte{OptMSS}},
	{"zero-length", []byte{OptMSS, 0}},
	{"one-length", []byte{OptMSS, 1}},
	{"length-past-end", []byte{OptMSS, 60, 1, 2}},
	{"length-past-end-by-one", []byte{OptMSS, 5, 1, 2}},
	{"unknown-kind-truncated", []byte{OptNOP, OptNOP, 42}},
	{"pack-truncated-data", []byte{OptPACK, 10, 1, 2, 3}},
	{"pack-short-length", []byte{OptPACK, 4, 1, 2, OptMSS, 4, 0x23, 0x00}},
	{"sack-odd-overlap", []byte{OptSACK, 3, OptMSS, 4, 1, 2}},
	{"nop-run-then-truncated", []byte{OptNOP, OptNOP, OptNOP, OptWScale, 3}},
	{"wild-lengths", []byte{0xfe, 0xff, 0xde, 0xad}},
	{"zero-kind-mid-block", []byte{OptMSS, 4, 1, 2, OptEOL, 0xff}},
}

func TestMalformedOptionsDoNotPanic(t *testing.T) {
	for _, tc := range malformedOptionCases {
		t.Run(tc.name, func(t *testing.T) {
			ParseOptions(tc.opts, nil)
			ParseSynOptions(tc.opts)
			for _, kind := range []byte{OptMSS, OptPACK, OptSACK, 0xfe} {
				if d := FindOption(tc.opts, kind); d != nil && len(d) > len(tc.opts) {
					t.Errorf("FindOption(%d) returned out-of-range slice", kind)
				}
			}
			OptionsWellFormed(tc.opts)
		})
	}
}

func TestOptionsWellFormed(t *testing.T) {
	good := [][]byte{
		nil,
		{},
		{OptEOL},
		{OptNOP, OptNOP, OptNOP},
		BuildSynOptions(1460, 7, true),
		{OptMSS, 4, 5, 0xb4},
		{OptEOL, 0xff, 0xff}, // EOL terminates; tail is ignored by parsers too
	}
	for i, g := range good {
		if !OptionsWellFormed(g) {
			t.Errorf("good[%d] %v judged malformed", i, g)
		}
	}
	for _, tc := range malformedOptionCases {
		switch tc.name {
		case "empty", "nop-run-then-truncated", "zero-kind-mid-block":
			// These parse cleanly to the end (or hit EOL first).
			if tc.name != "nop-run-then-truncated" && !OptionsWellFormed(tc.opts) {
				t.Errorf("%s should be well-formed", tc.name)
			}
		}
	}
	bad := [][]byte{
		{OptMSS},
		{OptMSS, 0},
		{OptMSS, 1},
		{OptMSS, 60, 1, 2},
		{OptPACK, 10, 1, 2, 3},
		{OptWScale, 3},
	}
	for i, b := range bad {
		if OptionsWellFormed(b) {
			t.Errorf("bad[%d] %v judged well-formed", i, b)
		}
	}
}

func TestParsePACKTruncated(t *testing.T) {
	for n := 0; n < 8; n++ {
		if _, ok := ParsePACK(make([]byte, n)); ok {
			t.Errorf("ParsePACK accepted %d bytes", n)
		}
	}
	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{TotalBytes: 7, MarkedBytes: 3})
	info, ok := ParsePACK(opt[2:])
	if !ok || info.TotalBytes != 7 || info.MarkedBytes != 3 {
		t.Fatalf("round trip: %+v %v", info, ok)
	}
}

// buildWithRawOptions assembles a full IPv4+TCP packet whose option block is
// opts verbatim (padded with NOPs to a 4-byte boundary), bypassing the
// sanity checks Build applies — the input shape RemoveTCPOption sees when a
// corrupted packet reaches the datapath.
func buildWithRawOptions(opts []byte) *Packet {
	return Build(MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2), NotECT, TCPFields{
		SrcPort: 1, DstPort: 2, Seq: 10, Ack: 20,
		Flags: FlagACK, Window: 1000, Options: opts,
	}, 100)
}

func TestRemoveTCPOptionMalformed(t *testing.T) {
	for _, tc := range malformedOptionCases {
		if len(tc.opts) == 0 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			p := buildWithRawOptions(tc.opts)
			before := append([]byte(nil), p.Buf...)
			out := RemoveTCPOption(p.Buf, OptPACK)
			if out == nil {
				t.Fatal("RemoveTCPOption returned nil")
			}
			if ip := IPv4(out); !ip.Valid() || !ip.TCP().Valid() {
				t.Fatal("result invalid")
			}
			// A block the locator can't parse must be left untouched.
			if FindOption(TCP(IPv4(before).Payload()).Options(), OptPACK) == nil &&
				!bytes.Equal(out, before) {
				t.Error("packet mutated though option was absent/unlocatable")
			}
		})
	}
}

func TestRemoveTCPOptionTruncatedHeaders(t *testing.T) {
	p := buildWithRawOptions(BuildSynOptions(1460, 7, true))
	for n := 0; n <= len(p.Buf); n++ {
		trunc := p.Buf[:n]
		out := RemoveTCPOption(trunc, OptMSS) // must not panic at any cut
		if n < len(p.Buf) && !bytes.Equal(out, trunc) {
			// Headers that fail Valid() must pass through untouched.
			ip := IPv4(trunc)
			if !ip.Valid() || !ip.TCP().Valid() {
				t.Fatalf("truncated packet (%dB) was mutated", n)
			}
		}
	}
}

func TestInsertTCPOptionTruncatedHeaders(t *testing.T) {
	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{TotalBytes: 1, MarkedBytes: 1})
	p := buildWithRawOptions(nil)
	for n := 0; n < IPv4HeaderLen+TCPHeaderLen; n++ {
		if out := InsertTCPOption(p.Buf[:n], opt[:]); out != nil {
			t.Fatalf("InsertTCPOption accepted %d-byte packet", n)
		}
	}
}
