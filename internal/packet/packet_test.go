package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func testPacket(t *testing.T, opts []byte, payload int) *Packet {
	t.Helper()
	p := Build(MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2), ECT0, TCPFields{
		SrcPort: 40000, DstPort: 5001,
		Seq: 1000, Ack: 2000,
		Flags:   FlagACK,
		Window:  0x1234,
		Options: opts,
	}, payload)
	if !p.IP().Valid() || !p.TCP().Valid() {
		t.Fatal("Build produced invalid packet")
	}
	return p
}

func TestBuildRoundTrip(t *testing.T) {
	p := testPacket(t, nil, 1448)
	ip, tc := p.IP(), p.TCP()
	if ip.Src() != MakeAddr(10, 0, 0, 1) || ip.Dst() != MakeAddr(10, 0, 0, 2) {
		t.Fatalf("addresses: %v > %v", ip.Src(), ip.Dst())
	}
	if ip.Protocol() != ProtoTCP {
		t.Fatalf("protocol = %d", ip.Protocol())
	}
	if ip.ECN() != ECT0 {
		t.Fatalf("ECN = %v", ip.ECN())
	}
	if tc.SrcPort() != 40000 || tc.DstPort() != 5001 || tc.Seq() != 1000 || tc.Ack() != 2000 {
		t.Fatal("TCP fields mismatch")
	}
	if tc.Window() != 0x1234 {
		t.Fatalf("window = %#x", tc.Window())
	}
	if !tc.HasFlags(FlagACK) || tc.HasFlags(FlagSYN) {
		t.Fatalf("flags = %#x", tc.Flags())
	}
	if p.PayloadLen() != 1448 {
		t.Fatalf("payload = %d", p.PayloadLen())
	}
	if p.IPLen() != IPv4HeaderLen+TCPHeaderLen+1448 {
		t.Fatalf("IPLen = %d", p.IPLen())
	}
	if p.WireLen() != p.IPLen()+FrameOverhead {
		t.Fatalf("WireLen = %d", p.WireLen())
	}
	if !ip.VerifyChecksum() {
		t.Fatal("IP checksum invalid")
	}
	if !tc.VerifyChecksum(ip.PseudoHeaderSum(tcpLenOf(ip))) {
		t.Fatal("TCP checksum invalid")
	}
}

func TestAddrString(t *testing.T) {
	if s := MakeAddr(192, 168, 1, 200).String(); s != "192.168.1.200" {
		t.Fatalf("Addr.String() = %q", s)
	}
}

func TestSetWindowIncrementalChecksum(t *testing.T) {
	p := testPacket(t, nil, 0)
	ip := p.IP()
	ps := ip.PseudoHeaderSum(tcpLenOf(ip))
	tc := p.TCP()
	for _, w := range []uint16{0, 1, 0xffff, 42, 0x8000} {
		tc.SetWindow(w)
		if tc.Window() != w {
			t.Fatalf("window = %d, want %d", tc.Window(), w)
		}
		if !tc.VerifyChecksum(ps) {
			t.Fatalf("checksum broken after SetWindow(%d)", w)
		}
	}
}

func TestSetClearFlagsChecksum(t *testing.T) {
	p := testPacket(t, nil, 0)
	ip := p.IP()
	ps := ip.PseudoHeaderSum(tcpLenOf(ip))
	tc := p.TCP()
	tc.SetFlags(FlagECE | FlagCWR)
	if !tc.HasFlags(FlagECE|FlagCWR) || !tc.VerifyChecksum(ps) {
		t.Fatal("SetFlags broke header")
	}
	tc.ClearFlags(FlagECE)
	if tc.HasFlags(FlagECE) || !tc.HasFlags(FlagCWR) || !tc.VerifyChecksum(ps) {
		t.Fatal("ClearFlags broke header")
	}
}

func TestSetECNIncrementalChecksum(t *testing.T) {
	p := testPacket(t, nil, 100)
	ip := p.IP()
	for _, e := range []ECN{NotECT, ECT0, ECT1, CE} {
		ip.SetECN(e)
		if ip.ECN() != e {
			t.Fatalf("ECN = %v, want %v", ip.ECN(), e)
		}
		if !ip.VerifyChecksum() {
			t.Fatalf("IP checksum broken after SetECN(%v)", e)
		}
	}
}

func TestSetTotalLenChecksum(t *testing.T) {
	p := testPacket(t, nil, 100)
	ip := p.IP()
	ip.SetTotalLen(9000)
	if ip.TotalLen() != 9000 || !ip.VerifyChecksum() {
		t.Fatal("SetTotalLen broke header")
	}
}

func TestDecTTL(t *testing.T) {
	p := testPacket(t, nil, 0)
	ip := p.IP()
	start := ip.TTL()
	for i := 0; i < int(start)-1; i++ {
		if !ip.DecTTL() {
			t.Fatalf("DecTTL returned false at TTL=%d", ip.TTL())
		}
		if !ip.VerifyChecksum() {
			t.Fatalf("checksum broken at TTL=%d", ip.TTL())
		}
	}
	if ip.DecTTL() {
		t.Fatal("DecTTL should report expiry at zero")
	}
}

func TestECNStrings(t *testing.T) {
	for e, want := range map[ECN]string{NotECT: "Not-ECT", ECT0: "ECT(0)", ECT1: "ECT(1)", CE: "CE"} {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := Build(MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2), ECT0, TCPFields{
		SrcPort: 1, DstPort: 2, Flags: FlagSYN | FlagACK, Window: 100,
	}, 0)
	s := p.String()
	for _, want := range []string{"10.0.0.1:1", "10.0.0.2:2", "SA", "win=100", "ECT(0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if bad := (&Packet{Buf: []byte{1, 2}}).String(); !strings.Contains(bad, "invalid") {
		t.Errorf("invalid packet String() = %q", bad)
	}
}

func TestClone(t *testing.T) {
	p := testPacket(t, nil, 0)
	q := p.Clone()
	q.TCP().SetWindow(9999)
	if p.TCP().Window() == 9999 {
		t.Fatal("Clone shares the buffer")
	}
}

func TestValidRejectsShortBuffers(t *testing.T) {
	if IPv4([]byte{0x45}).Valid() {
		t.Fatal("1-byte IPv4 considered valid")
	}
	if TCP(make([]byte, 10)).Valid() {
		t.Fatal("10-byte TCP considered valid")
	}
	// Version 6 is not valid IPv4.
	b := make([]byte, 20)
	b[0] = 0x65
	if IPv4(b).Valid() {
		t.Fatal("version-6 header considered valid IPv4")
	}
	// Claimed IHL longer than the buffer.
	b[0] = 0x4f
	if IPv4(b).Valid() {
		t.Fatal("IHL-beyond-buffer considered valid")
	}
}

// Property: Build always produces packets whose checksums verify and whose
// fields round-trip, across arbitrary ports/seqs/windows/payload sizes.
func TestBuildProperty(t *testing.T) {
	prop := func(sp, dp, win uint16, seq, ack uint32, payload uint16, flags uint8) bool {
		p := Build(MakeAddr(10, 0, 1, 1), MakeAddr(10, 0, 2, 2), ECT0, TCPFields{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, Window: win,
		}, int(payload%30000))
		ip, tc := p.IP(), p.TCP()
		return ip.VerifyChecksum() &&
			tc.VerifyChecksum(ip.PseudoHeaderSum(tcpLenOf(ip))) &&
			tc.SrcPort() == sp && tc.DstPort() == dp &&
			tc.Seq() == seq && tc.Ack() == ack &&
			tc.Window() == win && tc.Flags() == flags &&
			p.PayloadLen() == int(payload%30000)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildDataPacket(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2), ECT0, TCPFields{
			SrcPort: 40000, DstPort: 5001, Seq: uint32(i), Flags: FlagACK, Window: 65535,
		}, 8948)
	}
}

func BenchmarkParseAndRewriteWindow(b *testing.B) {
	p := Build(MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2), ECT0, TCPFields{
		SrcPort: 40000, DstPort: 5001, Flags: FlagACK, Window: 65535,
	}, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ip := p.IP()
		tc := ip.TCP()
		tc.SetWindow(uint16(i))
	}
}
