package packet

import "fmt"

// FrameOverhead is the per-packet link-layer cost added when timing a packet
// onto a wire: Ethernet preamble (8) + header (14) + FCS (4) + minimum
// inter-frame gap (12).
const FrameOverhead = 38

// Packet is the unit moved through the simulated network. Buf holds real
// wire-format IPv4+TCP header bytes (which the AC/DC datapath parses and
// rewrites exactly as OVS would); payload bytes are virtual and accounted by
// the IP total-length field.
type Packet struct {
	// Buf is the materialized IPv4 header + TCP header (+options). Payload
	// bytes are not materialized.
	Buf []byte
	// FlowTag is an opaque workload identifier used by tracing and stats.
	FlowTag uint32
	// EnqueuedAt/SentAt are bookkeeping timestamps (ns) set by the network
	// layer for queue-delay accounting.
	EnqueuedAt int64
	SentAt     int64
	// Hops counts switch traversals, for loop detection in tests.
	Hops int
	// pooled marks a packet currently sitting on a Pool free list, so a
	// double release panics instead of corrupting a reused packet.
	pooled bool
}

// IP returns the IPv4 view of the packet.
func (p *Packet) IP() IPv4 { return IPv4(p.Buf) }

// TCP returns the TCP view of the packet.
func (p *Packet) TCP() TCP { return p.IP().TCP() }

// PayloadLen returns the virtual TCP payload length in bytes.
func (p *Packet) PayloadLen() int {
	ip := p.IP()
	return int(ip.TotalLen()) - ip.HeaderLen() - p.TCP().HeaderLen()
}

// IPLen returns the IP total length (headers + virtual payload).
func (p *Packet) IPLen() int { return int(p.IP().TotalLen()) }

// WireLen returns the bytes a link serializes for this packet, including
// link-layer overhead.
func (p *Packet) WireLen() int { return p.IPLen() + FrameOverhead }

// Clone deep-copies the packet (the datapath clones before mutating packets
// that are also retained elsewhere, e.g. retransmission queues).
func (p *Packet) Clone() *Packet {
	q := *p
	q.Buf = append([]byte(nil), p.Buf...)
	return &q
}

// String renders a compact human-readable summary for traces and test
// failures, e.g. "10.0.0.1:40000>10.0.0.2:5001 SA seq=1 ack=1 win=65535 len=0".
func (p *Packet) String() string {
	ip := p.IP()
	if !ip.Valid() {
		return fmt.Sprintf("invalid-ip(%d bytes)", len(p.Buf))
	}
	t := ip.TCP()
	if !t.Valid() {
		return fmt.Sprintf("%v>%v proto=%d", ip.Src(), ip.Dst(), ip.Protocol())
	}
	fl := t.Flags()
	var fb [7]byte // at most one byte per rendered flag; stack-allocated
	fs := fb[:0]
	for _, f := range [...]struct {
		bit  uint8
		name byte
	}{{FlagSYN, 'S'}, {FlagFIN, 'F'}, {FlagRST, 'R'}, {FlagPSH, 'P'}, {FlagACK, 'A'}, {FlagECE, 'E'}, {FlagCWR, 'C'}} {
		if fl&f.bit != 0 {
			fs = append(fs, f.name)
		}
	}
	return fmt.Sprintf("%v:%d>%v:%d %s seq=%d ack=%d win=%d len=%d %s",
		ip.Src(), t.SrcPort(), ip.Dst(), t.DstPort(), fs, t.Seq(), t.Ack(),
		t.Window(), p.PayloadLen(), ip.ECN())
}

// Build constructs a complete packet with the given addresses, TCP fields and
// virtual payload length. The IP ECN codepoint is ecn; checksums are valid.
func Build(src, dst Addr, ecn ECN, f TCPFields, payloadLen int) *Packet {
	optLen := (len(f.Options) + 3) &^ 3
	tcpHdr := TCPHeaderLen + optLen
	total := IPv4HeaderLen + tcpHdr + payloadLen
	buf := make([]byte, IPv4HeaderLen+tcpHdr)
	ip := InitIPv4(buf, src, dst, uint16(total), ecn)
	EncodeTCP(buf[IPv4HeaderLen:], f, ip.PseudoHeaderSum(uint16(tcpHdr+payloadLen)))
	return &Packet{Buf: buf}
}
