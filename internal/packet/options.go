package packet

import "encoding/binary"

// TCP option kinds.
const (
	OptEOL        = 0
	OptNOP        = 1
	OptMSS        = 2 // length 4
	OptWScale     = 3 // length 3
	OptSACKPerm   = 4 // length 2
	OptSACK       = 5 // variable
	OptTimestamps = 8 // length 10
	// OptPACK is AC/DC's Piggy-backed ACK congestion-feedback option
	// (experimental kind per RFC 4727). It carries the receiver module's
	// running totals of received and CE-marked bytes: 8 bytes of data, as in
	// the paper ("adding an additional 8 bytes as a TCP Option").
	OptPACK = 253 // length 10
	// OptECNEcho marks a reserved-bit substitute: AC/DC uses a reserved
	// header bit to remember whether the guest's SYN negotiated ECN; we
	// carry it as a 2-byte option on SYN packets only.
	OptECNEcho = 254 // length 2
)

// Option is one parsed TCP option.
type Option struct {
	Kind byte
	Data []byte // option payload, excluding kind and length bytes
}

// ParseOptions appends all options in opts (a TCP header's option bytes) to
// dst and returns it. Malformed trailing bytes are ignored, matching the
// lenient parsing real stacks use.
func ParseOptions(opts []byte, dst []Option) []Option {
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEOL:
			return dst
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return dst
			}
			l := int(opts[1])
			if l < 2 || l > len(opts) {
				return dst
			}
			dst = append(dst, Option{Kind: kind, Data: opts[2:l]})
			opts = opts[l:]
		}
	}
	return dst
}

// FindOption returns the payload of the first option with the given kind, or
// nil if absent. It allocates nothing.
func FindOption(opts []byte, kind byte) []byte {
	for len(opts) > 0 {
		k := opts[0]
		switch k {
		case OptEOL:
			return nil
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return nil
			}
			l := int(opts[1])
			if l < 2 || l > len(opts) {
				return nil
			}
			if k == kind {
				return opts[2:l]
			}
			opts = opts[l:]
		}
	}
	return nil
}

// OptionsWellFormed reports whether opts parses cleanly to its end: only
// NOP/EOL appear as single-byte kinds and every other option's length byte
// is at least 2 and within bounds. The parsers in this package never read
// out of range on malformed input — they silently ignore the bad tail — so
// the datapath uses this check to detect damaged option blocks up front and
// fail open rather than act on a partial parse.
func OptionsWellFormed(opts []byte) bool {
	for len(opts) > 0 {
		switch opts[0] {
		case OptEOL:
			return true
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return false
			}
			l := int(opts[1])
			if l < 2 || l > len(opts) {
				return false
			}
			opts = opts[l:]
		}
	}
	return true
}

// SynOptions holds the handshake options AC/DC and the endpoints care about.
type SynOptions struct {
	MSS        uint16
	WScale     uint8
	WScaleOK   bool
	SACKPerm   bool
	GuestECN   bool // OptECNEcho present: guest stack negotiated ECN
	HasGuestEC bool
}

// ParseSynOptions extracts handshake options from a SYN/SYN-ACK's options.
func ParseSynOptions(opts []byte) SynOptions {
	var so SynOptions
	for len(opts) > 0 {
		k := opts[0]
		if k == OptEOL {
			break
		}
		if k == OptNOP {
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			break
		}
		l := int(opts[1])
		if l < 2 || l > len(opts) {
			break
		}
		data := opts[2:l]
		switch k {
		case OptMSS:
			if len(data) >= 2 {
				so.MSS = binary.BigEndian.Uint16(data)
			}
		case OptWScale:
			if len(data) >= 1 {
				so.WScale = data[0]
				so.WScaleOK = true
			}
		case OptSACKPerm:
			so.SACKPerm = true
		case OptECNEcho:
			so.GuestECN = true
			so.HasGuestEC = true
		}
		opts = opts[l:]
	}
	return so
}

// BuildSynOptions encodes handshake options (MSS, window scale, SACK
// permitted) in the layout Linux uses.
func BuildSynOptions(mss uint16, wscale uint8, sackPerm bool) []byte {
	n := 8 // MSS(4) + NOP + WScale(3)
	if sackPerm {
		n += 4 // NOP + NOP + SACKPerm(2)
	}
	b := make([]byte, 0, n)
	b = append(b, OptMSS, 4, byte(mss>>8), byte(mss))
	b = append(b, OptNOP, OptWScale, 3, wscale)
	if sackPerm {
		b = append(b, OptNOP, OptNOP, OptSACKPerm, 2)
	}
	return b
}

// PACKInfo is the congestion feedback carried in a PACK/FACK: running totals
// of bytes received and bytes received with CE marks for one flow direction.
type PACKInfo struct {
	TotalBytes  uint32
	MarkedBytes uint32
}

// PACKOptionLen is the wire length of a PACK option (kind + len + 8 data).
const PACKOptionLen = 10

// EncodePACK writes a PACK option into dst and returns the bytes written.
func EncodePACK(dst []byte, info PACKInfo) int {
	_ = dst[PACKOptionLen-1]
	dst[0] = OptPACK
	dst[1] = PACKOptionLen
	binary.BigEndian.PutUint32(dst[2:6], info.TotalBytes)
	binary.BigEndian.PutUint32(dst[6:10], info.MarkedBytes)
	return PACKOptionLen
}

// ParsePACK decodes a PACK option payload (as returned by FindOption).
func ParsePACK(data []byte) (PACKInfo, bool) {
	if len(data) < 8 {
		return PACKInfo{}, false
	}
	return PACKInfo{
		TotalBytes:  binary.BigEndian.Uint32(data[0:4]),
		MarkedBytes: binary.BigEndian.Uint32(data[4:8]),
	}, true
}

// InsertTCPOption returns a new packet buffer equal to pkt (a full IPv4+TCP
// packet) with opt appended to the TCP options, padded to a 4-byte boundary.
// IP total length, data offset, and both checksums are fixed up. It fails
// (returns nil) if the resulting TCP header would exceed MaxTCPHeaderLen —
// the caller should then fall back to a dedicated FACK packet.
func InsertTCPOption(pkt []byte, opt []byte) []byte {
	ip := IPv4(pkt)
	if !ip.Valid() || ip.Protocol() != ProtoTCP {
		return nil
	}
	t := ip.TCP()
	if !t.Valid() {
		return nil
	}
	if !optionsAppendable(t.Options()) {
		return nil
	}
	// A total length smaller than the headers (or one the grown packet would
	// overflow) cannot be rewritten consistently.
	if int(ip.TotalLen()) < ip.HeaderLen()+t.HeaderLen() {
		return nil
	}
	padded := (len(opt) + 3) &^ 3
	newTCPHdr := t.HeaderLen() + padded
	if newTCPHdr > MaxTCPHeaderLen || int(ip.TotalLen())+padded > 65535 {
		return nil
	}
	ihl := ip.HeaderLen()
	out := make([]byte, len(pkt)+padded)
	// IP header + TCP header incl. existing options.
	n := copy(out, pkt[:ihl+t.HeaderLen()])
	// New option + NOP padding.
	n += copy(out[n:], opt)
	for i := 0; i < padded-len(opt); i++ {
		out[n] = OptNOP
		n++
	}
	// Any trailing (materialized) payload bytes.
	copy(out[n:], pkt[ihl+t.HeaderLen():])

	oip := IPv4(out)
	oip.SetTotalLen(ip.TotalLen() + uint16(padded))
	ot := oip.TCP()
	ot.setHeaderLen(newTCPHdr)
	ot.ComputeChecksum(oip.PseudoHeaderSum(tcpLenOf(oip)))
	return out
}

// InsertTCPOptionInPlace appends opt to p's TCP options like InsertTCPOption,
// but mutates p.Buf directly, extending the slice within its existing
// capacity when possible (pooled buffers carry spare capacity for exactly
// this). It reports whether the insert happened; on false p is untouched and
// the caller should fall back to a dedicated feedback packet.
func InsertTCPOptionInPlace(p *Packet, opt []byte) bool {
	pkt := p.Buf
	ip := IPv4(pkt)
	if !ip.Valid() || ip.Protocol() != ProtoTCP {
		return false
	}
	t := ip.TCP()
	if !t.Valid() {
		return false
	}
	if !optionsAppendable(t.Options()) {
		return false
	}
	if int(ip.TotalLen()) < ip.HeaderLen()+t.HeaderLen() {
		return false
	}
	padded := (len(opt) + 3) &^ 3
	newTCPHdr := t.HeaderLen() + padded
	if newTCPHdr > MaxTCPHeaderLen || int(ip.TotalLen())+padded > 65535 {
		return false
	}
	ihl := ip.HeaderLen()
	hdrEnd := ihl + t.HeaderLen()
	var out []byte
	if len(pkt)+padded <= cap(pkt) {
		out = pkt[:len(pkt)+padded]
		// Slide any trailing (materialized) payload bytes out of the way.
		copy(out[hdrEnd+padded:], pkt[hdrEnd:])
	} else {
		out = make([]byte, len(pkt)+padded)
		copy(out, pkt[:hdrEnd])
		copy(out[hdrEnd+padded:], pkt[hdrEnd:])
	}
	n := hdrEnd + copy(out[hdrEnd:], opt)
	for i := 0; i < padded-len(opt); i++ {
		out[n] = OptNOP
		n++
	}
	oip := IPv4(out)
	oip.SetTotalLen(ip.TotalLen() + uint16(padded))
	ot := oip.TCP()
	ot.setHeaderLen(newTCPHdr)
	ot.ComputeChecksum(oip.PseudoHeaderSum(tcpLenOf(oip)))
	p.Buf = out
	return true
}

// StripTCPOptionInPlace overwrites the first option of the given kind with
// NOPs directly in p.Buf and fixes the TCP checksum — the zero-allocation
// sibling of RemoveTCPOption for post-wire use (the header does not shrink,
// so wire timing is unaffected; this runs at ingress, after the packet has
// left the fabric). It reports whether an option was stripped.
func StripTCPOptionInPlace(p *Packet, kind byte) bool {
	ip := IPv4(p.Buf)
	if !ip.Valid() || ip.Protocol() != ProtoTCP {
		return false
	}
	t := ip.TCP()
	if !t.Valid() {
		return false
	}
	if int(ip.TotalLen()) < ip.HeaderLen()+t.HeaderLen() {
		return false
	}
	opts := t.Options()
	start, length := locateOption(opts, kind)
	if start < 0 {
		return false
	}
	for i := start; i < start+length; i++ {
		opts[i] = OptNOP
	}
	t.ComputeChecksum(ip.PseudoHeaderSum(tcpLenOf(ip)))
	return true
}

// RemoveTCPOption returns a new packet buffer with the first option of the
// given kind removed from the TCP header (header shrinks; lengths and
// checksums fixed). If the option is absent the original buffer is returned
// unchanged.
func RemoveTCPOption(pkt []byte, kind byte) []byte {
	ip := IPv4(pkt)
	if !ip.Valid() || ip.Protocol() != ProtoTCP {
		return pkt
	}
	t := ip.TCP()
	if !t.Valid() {
		return pkt
	}
	// A total length smaller than the headers is a lying header; shrinking
	// it would underflow, so the packet passes through untouched.
	if int(ip.TotalLen()) < ip.HeaderLen()+t.HeaderLen() {
		return pkt
	}
	opts := t.Options()
	start, length := locateOption(opts, kind)
	if start < 0 {
		return pkt
	}
	// Extend the cut over adjacent NOP padding until the removed span is a
	// 4-byte multiple, so the shrunken header stays aligned.
	end := start + length
	for (end-start)%4 != 0 && end < len(opts) && opts[end] == OptNOP {
		end++
	}
	for (end-start)%4 != 0 && start > 0 && opts[start-1] == OptNOP {
		start--
	}
	removed := end - start
	if removed%4 != 0 {
		// Not alignable: overwrite with NOPs in place (no resize).
		out := make([]byte, len(pkt))
		copy(out, pkt)
		oip := IPv4(out)
		ot := oip.TCP()
		oo := ot.Options()
		oStart, oLen := locateOption(oo, kind)
		for i := oStart; i < oStart+oLen; i++ {
			oo[i] = OptNOP
		}
		ot.ComputeChecksum(oip.PseudoHeaderSum(tcpLenOf(oip)))
		return out
	}
	ihl := ip.HeaderLen()
	optAbs := ihl + TCPHeaderLen
	out := make([]byte, 0, len(pkt)-removed)
	out = append(out, pkt[:optAbs+start]...)
	out = append(out, pkt[optAbs+end:]...)
	oip := IPv4(out)
	oip.SetTotalLen(ip.TotalLen() - uint16(removed))
	ot := oip.TCP()
	ot.setHeaderLen(t.HeaderLen() - removed)
	ot.ComputeChecksum(oip.PseudoHeaderSum(tcpLenOf(oip)))
	return out
}

// optionsAppendable reports whether an option appended after opts would be
// reachable by the parsers: the block must parse cleanly and must not be
// terminated by an EOL, behind which an appended option is invisible. When
// it is not, InsertTCPOption refuses and the datapath falls back to a
// dedicated FACK packet instead of emitting dead feedback.
func optionsAppendable(opts []byte) bool {
	for len(opts) > 0 {
		switch opts[0] {
		case OptEOL:
			return false
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return false
			}
			l := int(opts[1])
			if l < 2 || l > len(opts) {
				return false
			}
			opts = opts[l:]
		}
	}
	return true
}

// locateOption returns the byte offset and wire length of the first option
// with the given kind inside opts, or (-1, 0).
func locateOption(opts []byte, kind byte) (int, int) {
	i := 0
	for i < len(opts) {
		k := opts[i]
		switch k {
		case OptEOL:
			return -1, 0
		case OptNOP:
			if k == kind {
				return i, 1
			}
			i++
		default:
			if i+1 >= len(opts) {
				return -1, 0
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return -1, 0
			}
			if k == kind {
				return i, l
			}
			i += l
		}
	}
	return -1, 0
}

// tcpLenOf returns the TCP length for the pseudo-header: the IP total length
// minus the IP header. Because payloads are virtual, this may exceed the
// bytes materialized in the buffer; the checksum covers only materialized
// header bytes (NIC-offload model), but the pseudo-header still carries the
// true segment length so RWND rewrites can't silently change it.
func tcpLenOf(ip IPv4) uint16 {
	return ip.TotalLen() - uint16(ip.HeaderLen())
}
