// Package packet implements the wire formats the AC/DC datapath operates on:
// IPv4 and TCP headers with typed, zero-copy accessors over []byte (in the
// style of gopacket's layer views), TCP options including the AC/DC PACK
// congestion-feedback option, and Internet checksums with incremental update.
//
// Simulation note: packets carry real header bytes but payload bytes are not
// materialized — a Packet records its payload length only. Consequently the
// TCP checksum is defined over pseudo-header + TCP header, mirroring a NIC
// with checksum offload (the paper's prototype also offloads TCP checksums).
package packet

import (
	"encoding/binary"
	"fmt"
)

// Addr is an IPv4 address in host byte order (e.g. 10.0.0.1 = 0x0a000001).
type Addr uint32

// MakeAddr builds an Addr from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ECN is the 2-bit ECN codepoint in the IPv4 TOS field (RFC 3168).
type ECN uint8

const (
	// NotECT marks a packet from a non-ECN-capable transport.
	NotECT ECN = 0b00
	// ECT1 is ECN-capable transport, codepoint 1.
	ECT1 ECN = 0b01
	// ECT0 is ECN-capable transport, codepoint 0 (the common one).
	ECT0 ECN = 0b10
	// CE is Congestion Experienced, set by switches above the mark threshold.
	CE ECN = 0b11
)

func (e ECN) String() string {
	switch e {
	case NotECT:
		return "Not-ECT"
	case ECT0:
		return "ECT(0)"
	case ECT1:
		return "ECT(1)"
	default:
		return "CE"
	}
}

// IPv4HeaderLen is the length of the fixed IPv4 header (we never emit IP
// options, as is universal in datacenter traffic).
const IPv4HeaderLen = 20

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// IPv4 is a zero-copy view over an IPv4 packet (header + payload).
type IPv4 []byte

// Valid reports whether the buffer is long enough to hold the header it
// claims and is IP version 4.
func (p IPv4) Valid() bool {
	return len(p) >= IPv4HeaderLen && p[0]>>4 == 4 && p.HeaderLen() >= IPv4HeaderLen && len(p) >= p.HeaderLen()
}

// HeaderLen returns the header length in bytes (IHL * 4).
func (p IPv4) HeaderLen() int { return int(p[0]&0x0f) * 4 }

// TotalLen returns the IP total length field. In this simulator it counts
// header bytes plus the *virtual* payload length (payload bytes are not
// materialized in the buffer).
func (p IPv4) TotalLen() uint16 { return binary.BigEndian.Uint16(p[2:4]) }

// SetTotalLen sets the total length and incrementally fixes the checksum.
func (p IPv4) SetTotalLen(v uint16) {
	old := p.TotalLen()
	binary.BigEndian.PutUint16(p[2:4], v)
	p.setChecksum(UpdateChecksum16(p.Checksum(), old, v))
}

// TOS returns the type-of-service byte (DSCP + ECN).
func (p IPv4) TOS() uint8 { return p[1] }

// ECN returns the ECN codepoint.
func (p IPv4) ECN() ECN { return ECN(p[1] & 0x3) }

// SetECN sets the ECN codepoint and incrementally fixes the checksum.
func (p IPv4) SetECN(e ECN) {
	old := p[1]
	p[1] = (p[1] &^ 0x3) | uint8(e)
	p.setChecksum(UpdateChecksum8Pair(p.Checksum(), old, p[1], false))
}

// TTL returns the time-to-live field.
func (p IPv4) TTL() uint8 { return p[8] }

// DecTTL decrements TTL, fixing the checksum; returns false if TTL hit zero.
func (p IPv4) DecTTL() bool {
	if p[8] == 0 {
		return false
	}
	old := p[8]
	p[8]--
	p.setChecksum(UpdateChecksum8Pair(p.Checksum(), old, p[8], true))
	return p[8] > 0
}

// Protocol returns the transport protocol number.
func (p IPv4) Protocol() uint8 { return p[9] }

// Src returns the source address.
func (p IPv4) Src() Addr { return Addr(binary.BigEndian.Uint32(p[12:16])) }

// Dst returns the destination address.
func (p IPv4) Dst() Addr { return Addr(binary.BigEndian.Uint32(p[16:20])) }

// SetSrc rewrites the source address and recomputes the header checksum.
// (Used by NAT-style tests; the AC/DC datapath itself never rewrites
// addresses.) Note: the TCP pseudo-header checksum must be fixed separately.
func (p IPv4) SetSrc(a Addr) {
	binary.BigEndian.PutUint32(p[12:16], uint32(a))
	p.ComputeChecksum()
}

// SetDst rewrites the destination address and recomputes the header checksum.
func (p IPv4) SetDst(a Addr) {
	binary.BigEndian.PutUint32(p[16:20], uint32(a))
	p.ComputeChecksum()
}

// Checksum returns the header checksum field.
func (p IPv4) Checksum() uint16 { return binary.BigEndian.Uint16(p[10:12]) }

func (p IPv4) setChecksum(v uint16) { binary.BigEndian.PutUint16(p[10:12], v) }

// ComputeChecksum recomputes the header checksum from scratch and stores it.
func (p IPv4) ComputeChecksum() {
	p.setChecksum(0)
	p.setChecksum(Checksum(p[:p.HeaderLen()]))
}

// VerifyChecksum reports whether the stored header checksum is correct.
func (p IPv4) VerifyChecksum() bool {
	return Checksum(p[:p.HeaderLen()]) == 0
}

// Payload returns the bytes after the IP header (the TCP segment).
func (p IPv4) Payload() []byte { return p[p.HeaderLen():] }

// TCP returns the TCP view of the payload. The caller must have checked
// Protocol() == ProtoTCP.
func (p IPv4) TCP() TCP { return TCP(p.Payload()) }

// PseudoHeaderSum returns the partial checksum of the TCP pseudo-header
// (src, dst, zero+proto, TCP length) for use in TCP checksum computation.
func (p IPv4) PseudoHeaderSum(tcpLen uint16) uint32 {
	var ph [12]byte
	copy(ph[0:4], p[12:16])
	copy(ph[4:8], p[16:20])
	ph[8] = 0
	ph[9] = p.Protocol()
	binary.BigEndian.PutUint16(ph[10:12], tcpLen)
	return PartialSum(ph[:], 0)
}

// InitIPv4 writes a fresh IPv4 header into b (which must be at least
// IPv4HeaderLen bytes), with the given addresses, total length and ECN
// codepoint, protocol TCP, TTL 64, and a valid checksum.
func InitIPv4(b []byte, src, dst Addr, totalLen uint16, ecn ECN) IPv4 {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = uint8(ecn)
	binary.BigEndian.PutUint16(b[2:4], totalLen)
	binary.BigEndian.PutUint16(b[4:6], 0) // identification
	binary.BigEndian.PutUint16(b[6:8], 0x4000)
	b[8] = 64 // TTL
	b[9] = ProtoTCP
	binary.BigEndian.PutUint16(b[10:12], 0)
	binary.BigEndian.PutUint32(b[12:16], uint32(src))
	binary.BigEndian.PutUint32(b[16:20], uint32(dst))
	p := IPv4(b[:IPv4HeaderLen])
	p.ComputeChecksum()
	return IPv4(b)
}
