package packet

import "encoding/binary"

// Pool is a free-list-backed allocator for Packets and their header buffers.
// The simulator is single-threaded per sim.Simulator, so the pool needs no
// locking (and deliberately avoids sync.Pool's per-P overhead); one Pool is
// shared by everything attached to one simulator and must not be touched from
// other goroutines.
//
// Ownership rules (see ARCHITECTURE.md "Performance model" for the full
// walk-through): a packet obtained from Get/Clone/BuildIn/BuildUDPIn is owned
// by whoever holds the pointer; handing it to Send/Output/HandlePacket
// transfers ownership; whoever terminates a packet (delivers it to a guest
// endpoint, or drops it) calls Put exactly once. Code that retains packets
// past a handoff (retransmission-style queues, the UDP tunnel's token queue)
// owns them until it reinjects or drops them. A nil *Pool is valid
// everywhere and degrades to plain garbage-collected allocation, so unit
// tests and pool-less datapaths keep their exact old behaviour.
type Pool struct {
	free []*Packet
	// Gets/Puts/News count pool traffic; News is the free-list miss count
	// (fresh heap allocations), so Gets-News is the number of reuses.
	Gets, Puts, News int64
}

// poolBufCap is the buffer capacity given to every pooled packet. Payloads
// are virtual, so a buffer only ever holds IPv4 (20) + TCP (≤60) header
// bytes; rounding up to 128 leaves room for in-place option insertion to
// extend the slice without reallocating.
const poolBufCap = 128

// maxFreePackets bounds the free list so a burst (e.g. an incast wave) does
// not pin its high-water mark of buffers forever.
const maxFreePackets = 1 << 14

// NewPool creates an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a packet whose Buf has length n and zeroed bookkeeping fields.
// The buffer bytes are NOT zeroed — callers are expected to overwrite the
// full header range (every builder in this package does). Safe on a nil
// pool: falls back to a plain allocation.
func (pl *Pool) Get(n int) *Packet {
	if pl == nil {
		return &Packet{Buf: make([]byte, n, poolBufCap)}
	}
	pl.Gets++
	if f := len(pl.free); f > 0 && n <= poolBufCap {
		p := pl.free[f-1]
		pl.free[f-1] = nil
		pl.free = pl.free[:f-1]
		p.Buf = p.Buf[:n]
		p.FlowTag, p.EnqueuedAt, p.SentAt, p.Hops = 0, 0, 0, 0
		p.pooled = false
		return p
	}
	pl.News++
	c := poolBufCap
	if n > c {
		c = n
	}
	return &Packet{Buf: make([]byte, n, c)}
}

// Put returns p to the pool. Safe with a nil pool or nil packet (no-op).
// Releasing the same packet twice panics — a double release means two owners
// believe they hold the packet and the second would corrupt whatever the
// reuse turned it into.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic("packet: double release to pool")
	}
	pl.Puts++
	if cap(p.Buf) < poolBufCap || len(pl.free) >= maxFreePackets {
		// Oversized or foreign buffer, or the pool is full: let GC take it.
		return
	}
	p.pooled = true
	pl.free = append(pl.free, p)
}

// Clone deep-copies p using a pooled buffer. Safe on a nil pool (falls back
// to Packet.Clone).
func (pl *Pool) Clone(p *Packet) *Packet {
	if pl == nil {
		return p.Clone()
	}
	q := pl.Get(len(p.Buf))
	copy(q.Buf, p.Buf)
	q.FlowTag, q.EnqueuedAt, q.SentAt, q.Hops = p.FlowTag, p.EnqueuedAt, p.SentAt, p.Hops
	return q
}

// BuildIn is Build drawing its packet from pl (nil pl ⇒ identical to Build).
func BuildIn(pl *Pool, src, dst Addr, ecn ECN, f TCPFields, payloadLen int) *Packet {
	optLen := (len(f.Options) + 3) &^ 3
	tcpHdr := TCPHeaderLen + optLen
	total := IPv4HeaderLen + tcpHdr + payloadLen
	p := pl.Get(IPv4HeaderLen + tcpHdr)
	ip := InitIPv4(p.Buf, src, dst, uint16(total), ecn)
	EncodeTCP(p.Buf[IPv4HeaderLen:], f, ip.PseudoHeaderSum(uint16(tcpHdr+payloadLen)))
	return p
}

// BuildUDPIn is BuildUDP drawing its packet from pl (nil pl ⇒ identical to
// BuildUDP).
func BuildUDPIn(pl *Pool, src, dst Addr, ecn ECN, sport, dport uint16, payloadLen int) *Packet {
	total := IPv4HeaderLen + UDPHeaderLen + payloadLen
	p := pl.Get(IPv4HeaderLen + UDPHeaderLen)
	buf := p.Buf
	InitIPv4(buf, src, dst, uint16(total), ecn)
	buf[9] = ProtoUDP
	IPv4(buf).ComputeChecksum()
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+0:], sport)
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+2:], dport)
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+4:], uint16(UDPHeaderLen+payloadLen))
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+6:], 0)
	return p
}
