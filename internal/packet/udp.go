package packet

import "encoding/binary"

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// UDP is a zero-copy view over a UDP datagram (header + payload).
type UDP []byte

// Valid reports whether the buffer holds a UDP header.
func (u UDP) Valid() bool { return len(u) >= UDPHeaderLen }

// SrcPort returns the source port.
func (u UDP) SrcPort() uint16 { return binary.BigEndian.Uint16(u[0:2]) }

// DstPort returns the destination port.
func (u UDP) DstPort() uint16 { return binary.BigEndian.Uint16(u[2:4]) }

// Length returns the UDP length field (header + payload).
func (u UDP) Length() uint16 { return binary.BigEndian.Uint16(u[4:6]) }

// UDP returns the UDP view of an IPv4 packet's payload. The caller must
// have checked Protocol() == ProtoUDP.
func (p IPv4) UDP() UDP { return UDP(p.Payload()) }

// BuildUDP constructs a UDP packet with a virtual payload of payloadLen
// bytes (as with TCP, payload bytes are not materialized; the checksum
// covers the materialized header, mirroring NIC offload).
func BuildUDP(src, dst Addr, ecn ECN, sport, dport uint16, payloadLen int) *Packet {
	total := IPv4HeaderLen + UDPHeaderLen + payloadLen
	buf := make([]byte, IPv4HeaderLen+UDPHeaderLen)
	InitIPv4(buf, src, dst, uint16(total), ecn)
	buf[9] = ProtoUDP
	IPv4(buf).ComputeChecksum()
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+0:], sport)
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+2:], dport)
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+4:], uint16(UDPHeaderLen+payloadLen))
	binary.BigEndian.PutUint16(buf[IPv4HeaderLen+6:], 0)
	return &Packet{Buf: buf}
}
