package packet

import (
	"bytes"
	"testing"
)

// FuzzParseOptions drives every option-block parser with arbitrary bytes.
// The parsers are lenient by design (malformed tails are ignored), so the
// invariants are memory-safety ones: no panics, no out-of-range slices, and
// agreement between OptionsWellFormed and a clean parse.
func FuzzParseOptions(f *testing.F) {
	f.Add([]byte{})
	f.Add(BuildSynOptions(1460, 7, true))
	f.Add([]byte{OptMSS, 60, 1, 2})
	f.Add([]byte{OptPACK, 10, 0, 0, 0, 9, 0, 0, 0, 3})
	f.Add([]byte{OptNOP, OptNOP, OptEOL, 0xff})
	f.Add([]byte{0xfe, 0xff, 0xde, 0xad})
	f.Fuzz(func(t *testing.T, opts []byte) {
		parsed := ParseOptions(opts, nil)
		for _, o := range parsed {
			if len(o.Data) > len(opts) {
				t.Fatalf("option %d data longer than input", o.Kind)
			}
		}
		ParseSynOptions(opts)
		for _, kind := range []byte{OptMSS, OptWScale, OptSACK, OptPACK, OptECNEcho} {
			if d := FindOption(opts, kind); len(d) > len(opts) {
				t.Fatalf("FindOption(%d) data longer than input", kind)
			}
		}
		if d := FindOption(opts, OptPACK); d != nil {
			ParsePACK(d)
		}
		OptionsWellFormed(opts)
	})
}

// FuzzPACKRoundTrip checks Encode→Find→Parse is lossless for every counter
// pair and that attaching/stripping the option from a real packet preserves
// header validity and the virtual payload length.
func FuzzPACKRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(9000), uint32(3000))
	f.Add(uint32(0xffffffff), uint32(1))
	f.Fuzz(func(t *testing.T, total, marked uint32) {
		var opt [PACKOptionLen]byte
		EncodePACK(opt[:], PACKInfo{TotalBytes: total, MarkedBytes: marked})
		info, ok := ParsePACK(opt[2:])
		if !ok || info.TotalBytes != total || info.MarkedBytes != marked {
			t.Fatalf("round trip: got %+v ok=%v", info, ok)
		}

		ack := Build(MakeAddr(10, 0, 0, 2), MakeAddr(10, 0, 0, 1), NotECT, TCPFields{
			SrcPort: 5001, DstPort: 4000, Seq: 1, Ack: 100,
			Flags: FlagACK, Window: 65535,
		}, 0)
		buf := InsertTCPOption(ack.Buf, opt[:])
		if buf == nil {
			t.Fatal("InsertTCPOption failed on a bare ACK")
		}
		d := FindOption(IPv4(buf).TCP().Options(), OptPACK)
		info2, ok := ParsePACK(d)
		if !ok || info2 != info {
			t.Fatalf("after insert: got %+v ok=%v", info2, ok)
		}
		out := RemoveTCPOption(buf, OptPACK)
		if FindOption(IPv4(out).TCP().Options(), OptPACK) != nil {
			t.Fatal("PACK survived removal")
		}
		if !bytes.Equal(out, ack.Buf) {
			t.Fatal("insert+remove is not identity")
		}
	})
}

// FuzzRemoveTCPOption feeds arbitrary buffers straight into the option
// rewriter — the exact input shape a corrupted packet presents on the
// datapath. Invalid headers must pass through untouched; valid ones must
// stay valid with their virtual payload length intact.
func FuzzRemoveTCPOption(f *testing.F) {
	ack := Build(MakeAddr(1, 2, 3, 4), MakeAddr(5, 6, 7, 8), ECT0, TCPFields{
		SrcPort: 1, DstPort: 2, Seq: 9, Ack: 8, Flags: FlagACK, Window: 512,
		Options: BuildSynOptions(1460, 7, true),
	}, 1448)
	f.Add(ack.Buf, byte(OptMSS))
	f.Add(ack.Buf, byte(OptPACK))
	f.Add([]byte{}, byte(OptPACK))
	f.Add(ack.Buf[:21], byte(OptMSS))
	f.Fuzz(func(t *testing.T, pkt []byte, kind byte) {
		in := append([]byte(nil), pkt...)
		out := RemoveTCPOption(in, kind)
		if out == nil && len(pkt) > 0 {
			t.Fatal("RemoveTCPOption returned nil")
		}
		if !bytes.Equal(in, pkt) {
			t.Fatal("input buffer was mutated")
		}
		ip := IPv4(pkt)
		if !ip.Valid() || ip.Protocol() != ProtoTCP || !ip.TCP().Valid() {
			if !bytes.Equal(out, in) {
				t.Fatal("invalid packet was rewritten")
			}
			return
		}
		oip := IPv4(out)
		if !oip.Valid() || !oip.TCP().Valid() {
			t.Fatal("valid packet became invalid after removal")
		}
		inPay := int(ip.TotalLen()) - ip.HeaderLen() - ip.TCP().HeaderLen()
		outPay := int(oip.TotalLen()) - oip.HeaderLen() - oip.TCP().HeaderLen()
		if inPay != outPay {
			t.Fatalf("virtual payload changed: %d -> %d", inPay, outPay)
		}
	})
}

// FuzzInsertTCPOption checks the attach path against arbitrary base packets:
// either a clean refusal (nil) or a valid packet containing the new option.
func FuzzInsertTCPOption(f *testing.F) {
	ack := Build(MakeAddr(1, 2, 3, 4), MakeAddr(5, 6, 7, 8), NotECT, TCPFields{
		SrcPort: 1, DstPort: 2, Flags: FlagACK, Window: 512,
	}, 0)
	f.Add(ack.Buf)
	f.Add([]byte{})
	f.Add(ack.Buf[:27])
	f.Fuzz(func(t *testing.T, pkt []byte) {
		var opt [PACKOptionLen]byte
		EncodePACK(opt[:], PACKInfo{TotalBytes: 42, MarkedBytes: 7})
		out := InsertTCPOption(pkt, opt[:])
		if out == nil {
			return
		}
		oip := IPv4(out)
		if !oip.Valid() || !oip.TCP().Valid() {
			t.Fatal("insert produced invalid packet")
		}
		// Insert only succeeds when the result is reachable: an EOL or
		// malformed block makes InsertTCPOption refuse instead.
		if FindOption(oip.TCP().Options(), OptPACK) == nil {
			t.Fatal("inserted option not findable")
		}
	})
}
