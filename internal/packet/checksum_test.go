package packet

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style vector: header from Wikipedia's IPv4 checksum
	// example, whose checksum is 0xb861.
	h := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum(h); got != 0xb861 {
		t.Fatalf("Checksum = %#04x, want 0xb861", got)
	}
	// With the checksum in place, the sum verifies to zero.
	binary.BigEndian.PutUint16(h[10:12], 0xb861)
	if got := Checksum(h); got != 0 {
		t.Fatalf("verify = %#04x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data is padded with a zero byte.
	if Checksum([]byte{0x01}) != Checksum([]byte{0x01, 0x00}) {
		t.Fatal("odd-length checksum does not match zero-padded checksum")
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

// Property: incremental 16-bit update equals full recomputation, for any
// buffer, field position and new value.
func TestIncrementalUpdateProperty(t *testing.T) {
	prop := func(data []byte, posSeed uint16, newVal uint16) bool {
		if len(data) < 4 {
			data = append(data, 0, 0, 0, 0)
		}
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		pos := int(posSeed) % (len(data) / 2) * 2
		old := Checksum(data)
		from := binary.BigEndian.Uint16(data[pos : pos+2])
		binary.BigEndian.PutUint16(data[pos:pos+2], newVal)
		full := Checksum(data)
		inc := UpdateChecksum16(old, from, newVal)
		// Equivalence is modulo the 0x0000/0xffff ambiguity of one's
		// complement zero: both encode sum 0.
		return inc == full || (inc == 0xffff && full == 0x0000) || (inc == 0x0000 && full == 0xffff)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateChecksum8Pair(t *testing.T) {
	data := []byte{0x12, 0x34, 0x56, 0x78}
	old := Checksum(data)

	// Change the high octet of word 1.
	data[2] = 0xaa
	want := Checksum(data)
	got := UpdateChecksum8Pair(old, 0x56, 0xaa, true)
	if got != want {
		t.Fatalf("hi-octet incremental = %#04x, want %#04x", got, want)
	}

	// Change the low octet of word 0.
	old = want
	data[1] = 0x01
	want = Checksum(data)
	got = UpdateChecksum8Pair(old, 0x34, 0x01, false)
	if got != want {
		t.Fatalf("lo-octet incremental = %#04x, want %#04x", got, want)
	}
}

func TestPartialSumComposition(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	whole := Checksum(append(append([]byte{}, a...), b...))
	composed := FinishSum(PartialSum(b, PartialSum(a, 0)))
	if whole != composed {
		t.Fatalf("composed = %#04x, want %#04x", composed, whole)
	}
}

func BenchmarkChecksumFull60(b *testing.B) {
	buf := make([]byte, 60)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkChecksumIncremental(b *testing.B) {
	b.ReportAllocs()
	cs := uint16(0x1234)
	for i := 0; i < b.N; i++ {
		cs = UpdateChecksum16(cs, uint16(i), uint16(i+1))
	}
	_ = cs
}
