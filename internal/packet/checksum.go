package packet

// Internet checksum (RFC 1071) plus incremental update (RFC 1624). The AC/DC
// datapath rewrites single header fields (RWND, ECN bits) on the fast path,
// so incremental updates matter: they touch 2 bytes instead of re-summing the
// whole header.

// Checksum computes the Internet checksum over b. An odd trailing byte is
// padded with zero, per RFC 1071.
func Checksum(b []byte) uint16 {
	return finish(sum(b, 0))
}

// ChecksumWith computes the Internet checksum over b with an initial partial
// sum (e.g. a pseudo-header sum).
func ChecksumWith(b []byte, initial uint32) uint16 {
	return finish(sum(b, initial))
}

// PartialSum accumulates b into a running 32-bit partial sum that can later
// be finished with FinishSum. b must have even length unless it is the final
// fragment.
func PartialSum(b []byte, acc uint32) uint32 { return sum(b, acc) }

// FinishSum folds a partial sum and complements it.
func FinishSum(acc uint32) uint16 { return finish(acc) }

func sum(b []byte, acc uint32) uint32 {
	n := len(b)
	i := 0
	for ; i+1 < n; i += 2 {
		acc += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < n {
		acc += uint32(b[i]) << 8
	}
	return acc
}

func finish(acc uint32) uint16 {
	for acc > 0xffff {
		acc = (acc >> 16) + (acc & 0xffff)
	}
	return ^uint16(acc)
}

// UpdateChecksum16 incrementally updates checksum old when a 16-bit field
// changes from from to to (RFC 1624, eqn. 3: HC' = ~(~HC + ~m + m')).
func UpdateChecksum16(old, from, to uint16) uint16 {
	acc := uint32(^old&0xffff) + uint32(^from&0xffff) + uint32(to)
	for acc > 0xffff {
		acc = (acc >> 16) + (acc & 0xffff)
	}
	return ^uint16(acc)
}

// UpdateChecksum8Pair incrementally updates a checksum when a 16-bit-aligned
// byte pair changes. hi reports whether the changed byte is the high octet of
// its 16-bit word.
func UpdateChecksum8Pair(old uint16, from, to byte, hi bool) uint16 {
	if hi {
		return UpdateChecksum16(old, uint16(from)<<8, uint16(to)<<8)
	}
	return UpdateChecksum16(old, uint16(from), uint16(to))
}
