package packet

import (
	"encoding/binary"
)

// TCP header flags.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
	FlagECE uint8 = 1 << 6
	FlagCWR uint8 = 1 << 7
)

// TCPHeaderLen is the length of the fixed TCP header (no options).
const TCPHeaderLen = 20

// MaxTCPHeaderLen is the largest encodable TCP header (data offset 15).
const MaxTCPHeaderLen = 60

// TCP is a zero-copy view over a TCP segment (header + options + payload).
type TCP []byte

// Valid reports whether the buffer holds at least the header it claims.
func (t TCP) Valid() bool {
	return len(t) >= TCPHeaderLen && t.HeaderLen() >= TCPHeaderLen && len(t) >= t.HeaderLen()
}

// SrcPort returns the source port.
func (t TCP) SrcPort() uint16 { return binary.BigEndian.Uint16(t[0:2]) }

// DstPort returns the destination port.
func (t TCP) DstPort() uint16 { return binary.BigEndian.Uint16(t[2:4]) }

// Seq returns the sequence number.
func (t TCP) Seq() uint32 { return binary.BigEndian.Uint32(t[4:8]) }

// Ack returns the acknowledgement number.
func (t TCP) Ack() uint32 { return binary.BigEndian.Uint32(t[8:12]) }

// HeaderLen returns the header length in bytes (DataOffset * 4).
func (t TCP) HeaderLen() int { return int(t[12]>>4) * 4 }

// setHeaderLen sets the data-offset field; n must be a multiple of 4.
func (t TCP) setHeaderLen(n int) { t[12] = uint8(n/4) << 4 }

// Flags returns the flag byte (CWR..FIN).
func (t TCP) Flags() uint8 { return t[13] }

// HasFlags reports whether all flags in mask are set.
func (t TCP) HasFlags(mask uint8) bool { return t[13]&mask == mask }

// SetFlags sets the flags in mask, incrementally fixing the TCP checksum.
func (t TCP) SetFlags(mask uint8) {
	old := t[13]
	t[13] |= mask
	t.setChecksum(UpdateChecksum8Pair(t.Checksum(), old, t[13], false))
}

// ClearFlags clears the flags in mask, incrementally fixing the checksum.
func (t TCP) ClearFlags(mask uint8) {
	old := t[13]
	t[13] &^= mask
	t.setChecksum(UpdateChecksum8Pair(t.Checksum(), old, t[13], false))
}

// SetSeq overwrites the sequence number, incrementally fixing the checksum
// (two 16-bit word substitutions, RFC 1624 style — same arithmetic as
// SetWindow).
func (t TCP) SetSeq(v uint32) {
	old := binary.BigEndian.Uint32(t[4:8])
	binary.BigEndian.PutUint32(t[4:8], v)
	c := UpdateChecksum16(t.Checksum(), uint16(old>>16), uint16(v>>16))
	t.setChecksum(UpdateChecksum16(c, uint16(old), uint16(v)))
}

// Window returns the (unscaled) receive window field.
func (t TCP) Window() uint16 { return binary.BigEndian.Uint16(t[14:16]) }

// SetWindow overwrites the receive window field, incrementally fixing the
// checksum. This is AC/DC's enforcement primitive.
func (t TCP) SetWindow(w uint16) {
	old := t.Window()
	binary.BigEndian.PutUint16(t[14:16], w)
	t.setChecksum(UpdateChecksum16(t.Checksum(), old, w))
}

// Checksum returns the TCP checksum field.
func (t TCP) Checksum() uint16 { return binary.BigEndian.Uint16(t[16:18]) }

func (t TCP) setChecksum(v uint16) { binary.BigEndian.PutUint16(t[16:18], v) }

// Options returns the raw options bytes.
func (t TCP) Options() []byte { return t[TCPHeaderLen:t.HeaderLen()] }

// Payload returns bytes after the header. In this simulator payloads are not
// materialized, so this is normally empty; it exists for completeness and for
// tests that build full packets.
func (t TCP) Payload() []byte { return t[t.HeaderLen():] }

// ComputeChecksum recomputes the TCP checksum over the pseudo-header and the
// TCP header bytes present in the buffer (payload is virtual; see package
// comment) and stores it.
func (t TCP) ComputeChecksum(pseudoSum uint32) {
	t.setChecksum(0)
	t.setChecksum(ChecksumWith(t[:t.HeaderLen()], pseudoSum))
}

// VerifyChecksum reports whether the stored checksum is consistent with the
// header bytes and pseudo-header sum.
func (t TCP) VerifyChecksum(pseudoSum uint32) bool {
	return ChecksumWith(t[:t.HeaderLen()], pseudoSum) == 0
}

// TCPFields collects the values needed to build a TCP header.
type TCPFields struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Options          []byte // already-encoded options, padded to 4n by Encode
}

// EncodeTCP writes a TCP header (+options) into b and returns the view. The
// checksum is computed with the given pseudo-header sum. b must be large
// enough for TCPHeaderLen + padded options.
func EncodeTCP(b []byte, f TCPFields, pseudoSum uint32) TCP {
	optLen := (len(f.Options) + 3) &^ 3
	hdrLen := TCPHeaderLen + optLen
	_ = b[hdrLen-1]
	binary.BigEndian.PutUint16(b[0:2], f.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], f.DstPort)
	binary.BigEndian.PutUint32(b[4:8], f.Seq)
	binary.BigEndian.PutUint32(b[8:12], f.Ack)
	t := TCP(b)
	t.setHeaderLen(hdrLen)
	b[13] = f.Flags
	binary.BigEndian.PutUint16(b[14:16], f.Window)
	binary.BigEndian.PutUint16(b[16:18], 0)
	binary.BigEndian.PutUint16(b[18:20], 0) // urgent pointer
	copy(b[TCPHeaderLen:], f.Options)
	for i := TCPHeaderLen + len(f.Options); i < hdrLen; i++ {
		b[i] = OptNOP
	}
	t.ComputeChecksum(pseudoSum)
	return t
}
