package packet

import "encoding/binary"

// SACK option support (RFC 2018). A SACK block is a [start, end) pair of
// wire sequence numbers describing an island of received data above the
// cumulative ACK.

// SACKBlock is one half-open wire-sequence range.
type SACKBlock struct {
	Start, End uint32
}

// MaxSACKBlocks is the most blocks we emit; with AC/DC's 12-byte PACK also
// on the ACK, three blocks (2+3·8 = 26 bytes) still fit the 40-byte option
// space.
const MaxSACKBlocks = 3

// EncodeSACK appends a SACK option for the given blocks to dst and returns
// the extended slice. No more than MaxSACKBlocks are encoded.
func EncodeSACK(dst []byte, blocks []SACKBlock) []byte {
	if len(blocks) == 0 {
		return dst
	}
	if len(blocks) > MaxSACKBlocks {
		blocks = blocks[:MaxSACKBlocks]
	}
	l := 2 + 8*len(blocks)
	dst = append(dst, OptSACK, byte(l))
	for _, b := range blocks {
		var w [8]byte
		binary.BigEndian.PutUint32(w[0:4], b.Start)
		binary.BigEndian.PutUint32(w[4:8], b.End)
		dst = append(dst, w[:]...)
	}
	return dst
}

// ParseSACK decodes the payload of a SACK option (as returned by
// FindOption) into blocks.
func ParseSACK(data []byte) []SACKBlock {
	n := len(data) / 8
	if n == 0 {
		return nil
	}
	if n > 4 {
		n = 4
	}
	out := make([]SACKBlock, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, SACKBlock{
			Start: binary.BigEndian.Uint32(data[i*8 : i*8+4]),
			End:   binary.BigEndian.Uint32(data[i*8+4 : i*8+8]),
		})
	}
	return out
}
