package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuildAndParseSynOptions(t *testing.T) {
	opts := BuildSynOptions(8960, 9, true)
	so := ParseSynOptions(opts)
	if so.MSS != 8960 || !so.WScaleOK || so.WScale != 9 || !so.SACKPerm {
		t.Fatalf("round trip: %+v", so)
	}
	if so.GuestECN {
		t.Fatal("GuestECN set without option")
	}
}

func TestParseSynOptionsNoSack(t *testing.T) {
	so := ParseSynOptions(BuildSynOptions(1460, 7, false))
	if so.SACKPerm {
		t.Fatal("SACKPerm set")
	}
	if so.MSS != 1460 || so.WScale != 7 {
		t.Fatalf("got %+v", so)
	}
}

func TestParseOptionsMalformed(t *testing.T) {
	// Truncated length, zero length, length beyond buffer — parser must not
	// panic and must ignore the garbage.
	cases := [][]byte{
		{OptMSS},                        // kind with no length
		{OptMSS, 0},                     // zero length
		{OptMSS, 60, 1, 2},              // length beyond buffer
		{OptNOP, OptNOP, 42},            // unknown kind, truncated
		{OptEOL, OptMSS, 4, 0x12, 0x34}, // EOL terminates parsing
	}
	for i, c := range cases {
		got := ParseOptions(c, nil)
		if i == 4 && len(got) != 0 {
			t.Errorf("case %d: EOL did not terminate: %v", i, got)
		}
	}
	if FindOption([]byte{OptMSS, 60, 1}, OptMSS) != nil {
		t.Fatal("FindOption returned data from malformed option")
	}
}

func TestFindOption(t *testing.T) {
	opts := BuildSynOptions(1460, 7, true)
	if d := FindOption(opts, OptMSS); len(d) != 2 || d[0] != 0x05 || d[1] != 0xb4 {
		t.Fatalf("MSS data = %v", d)
	}
	if d := FindOption(opts, OptWScale); len(d) != 1 || d[0] != 7 {
		t.Fatalf("WScale data = %v", d)
	}
	if FindOption(opts, OptTimestamps) != nil {
		t.Fatal("found absent option")
	}
}

func TestPACKRoundTrip(t *testing.T) {
	var buf [PACKOptionLen]byte
	n := EncodePACK(buf[:], PACKInfo{TotalBytes: 123456, MarkedBytes: 7890})
	if n != PACKOptionLen {
		t.Fatalf("encoded %d bytes", n)
	}
	info, ok := ParsePACK(buf[2:n])
	if !ok || info.TotalBytes != 123456 || info.MarkedBytes != 7890 {
		t.Fatalf("round trip: %+v ok=%v", info, ok)
	}
	if _, ok := ParsePACK(buf[2:6]); ok {
		t.Fatal("short PACK accepted")
	}
}

func mustACK(t *testing.T, opts []byte) *Packet {
	t.Helper()
	return Build(MakeAddr(10, 0, 0, 2), MakeAddr(10, 0, 0, 1), NotECT, TCPFields{
		SrcPort: 5001, DstPort: 40000, Seq: 2000, Ack: 1500,
		Flags: FlagACK, Window: 0xfff0, Options: opts,
	}, 0)
}

func verifyWhole(t *testing.T, pkt []byte, what string) {
	t.Helper()
	ip := IPv4(pkt)
	if !ip.Valid() {
		t.Fatalf("%s: invalid IP", what)
	}
	if !ip.VerifyChecksum() {
		t.Fatalf("%s: bad IP checksum", what)
	}
	tc := ip.TCP()
	if !tc.Valid() {
		t.Fatalf("%s: invalid TCP", what)
	}
	if !tc.VerifyChecksum(ip.PseudoHeaderSum(tcpLenOf(ip))) {
		t.Fatalf("%s: bad TCP checksum", what)
	}
}

func TestInsertAndRemovePACK(t *testing.T) {
	p := mustACK(t, nil)
	orig := append([]byte(nil), p.Buf...)

	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{TotalBytes: 9000, MarkedBytes: 4500})
	withPack := InsertTCPOption(p.Buf, opt[:])
	if withPack == nil {
		t.Fatal("InsertTCPOption failed")
	}
	verifyWhole(t, withPack, "after insert")

	ip := IPv4(withPack)
	tc := ip.TCP()
	if tc.HeaderLen() != TCPHeaderLen+12 {
		t.Fatalf("TCP header len = %d, want %d", tc.HeaderLen(), TCPHeaderLen+12)
	}
	if int(ip.TotalLen()) != len(orig)+12 {
		t.Fatalf("IP total len = %d", ip.TotalLen())
	}
	data := FindOption(tc.Options(), OptPACK)
	info, ok := ParsePACK(data)
	if !ok || info.TotalBytes != 9000 || info.MarkedBytes != 4500 {
		t.Fatalf("PACK after insert: %+v ok=%v", info, ok)
	}
	// Other fields undisturbed.
	if tc.Seq() != 2000 || tc.Ack() != 1500 || tc.Window() != 0xfff0 {
		t.Fatal("insert disturbed TCP fields")
	}

	stripped := RemoveTCPOption(withPack, OptPACK)
	verifyWhole(t, stripped, "after remove")
	if !bytes.Equal(stripped, orig) {
		t.Fatalf("remove(insert(p)) != p:\n got %x\nwant %x", stripped, orig)
	}
}

func TestInsertPACKAlongsideExistingOptions(t *testing.T) {
	// An ACK that already carries a timestamp-like 10-byte option.
	ts := make([]byte, 10)
	ts[0] = OptTimestamps
	ts[1] = 10
	p := mustACK(t, ts)

	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{TotalBytes: 1, MarkedBytes: 1})
	out := InsertTCPOption(p.Buf, opt[:])
	verifyWhole(t, out, "insert alongside ts")
	tc := IPv4(out).TCP()
	if FindOption(tc.Options(), OptTimestamps) == nil {
		t.Fatal("existing option lost")
	}
	if FindOption(tc.Options(), OptPACK) == nil {
		t.Fatal("PACK not inserted")
	}

	// Removing PACK restores the original exactly.
	back := RemoveTCPOption(out, OptPACK)
	if !bytes.Equal(back, p.Buf) {
		t.Fatal("remove did not restore original")
	}
}

func TestInsertTCPOptionOverflow(t *testing.T) {
	// Fill the options area to the max (40 bytes) and verify insert fails,
	// signalling the FACK fallback.
	full := make([]byte, 40)
	for i := range full {
		full[i] = OptNOP
	}
	p := mustACK(t, full)
	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{})
	if InsertTCPOption(p.Buf, opt[:]) != nil {
		t.Fatal("insert into full header should fail")
	}
}

func TestRemoveAbsentOption(t *testing.T) {
	p := mustACK(t, nil)
	out := RemoveTCPOption(p.Buf, OptPACK)
	if !bytes.Equal(out, p.Buf) {
		t.Fatal("removing absent option changed packet")
	}
}

func TestRemoveUnalignableOptionNops(t *testing.T) {
	// A 3-byte option between two non-NOP 4-aligned neighbours cannot be
	// shrunk; it must be NOP-ed in place.
	opts := []byte{
		OptMSS, 4, 0x01, 0x02, // 4 bytes
		OptWScale, 3, 9, // 3 bytes, unaligned
		OptSACKPerm, 2, OptEOL, OptEOL, OptEOL, // fills to 12
	}
	p := mustACK(t, opts)
	before := IPv4(p.Buf).TCP().HeaderLen()
	out := RemoveTCPOption(p.Buf, OptWScale)
	verifyWhole(t, out, "nop-fallback")
	tc := IPv4(out).TCP()
	if tc.HeaderLen() != before {
		t.Fatalf("header resized in NOP fallback: %d != %d", tc.HeaderLen(), before)
	}
	if FindOption(tc.Options(), OptWScale) != nil {
		t.Fatal("option still present")
	}
	if FindOption(tc.Options(), OptMSS) == nil {
		t.Fatal("unrelated option lost")
	}
}

// Property: insert-then-remove is the identity for arbitrary PACK payloads.
func TestInsertRemoveIdentityProperty(t *testing.T) {
	prop := func(total, marked uint32, win uint16) bool {
		p := Build(MakeAddr(10, 0, 0, 2), MakeAddr(10, 0, 0, 1), NotECT, TCPFields{
			SrcPort: 5001, DstPort: 40000, Flags: FlagACK, Window: win,
		}, 0)
		var opt [PACKOptionLen]byte
		EncodePACK(opt[:], PACKInfo{TotalBytes: total, MarkedBytes: marked})
		ins := InsertTCPOption(p.Buf, opt[:])
		if ins == nil {
			return false
		}
		got, ok := ParsePACK(FindOption(IPv4(ins).TCP().Options(), OptPACK))
		if !ok || got.TotalBytes != total || got.MarkedBytes != marked {
			return false
		}
		return bytes.Equal(RemoveTCPOption(ins, OptPACK), p.Buf)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertPACK(b *testing.B) {
	p := Build(MakeAddr(10, 0, 0, 2), MakeAddr(10, 0, 0, 1), NotECT, TCPFields{
		SrcPort: 5001, DstPort: 40000, Flags: FlagACK, Window: 65535,
	}, 0)
	var opt [PACKOptionLen]byte
	EncodePACK(opt[:], PACKInfo{TotalBytes: 1 << 20, MarkedBytes: 1 << 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InsertTCPOption(p.Buf, opt[:])
	}
}
