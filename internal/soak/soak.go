// Package soak hammers the long-lived service mode (internal/daemon) the way
// months of production would: tenant-churn and flash-crowd workloads keep
// flows arriving and dying while a hostile controller goroutine streams
// seeded-random policy updates (including ones that must be rejected), warm
// and cold restarts, and fault-profile flips — and a set of leak gates checks
// that nothing accumulates.
//
// The gates, each of which fails the run:
//
//   - Flow-table leak: after the workloads stop and the simulation drains
//     past the idle timeout, every vSwitch flow table must be empty. An
//     entry that survives the drain has no connection behind it — state that
//     would pin memory for the lifetime of a real hypervisor.
//   - Monotone-counter drift: datapath counters only count up. A sampler
//     scrapes the merged metrics during the run; any counter that regresses
//     between samples is corruption (double accounting, a racy reset).
//   - Event free-list leak: sim.Allocated() is the simulator's event
//     allocation high-water mark and plateaus in steady state. Growth after
//     warm-up beyond AllocSlack means events are being held, not recycled.
//   - Goroutine leak: after Stop, the process goroutine count must return to
//     its pre-soak baseline (within GoroutineSlack).
//   - Audit violations: the sampling invariant auditor runs throughout; any
//     violation fails the run.
//   - Activity floors: a soak that did fewer than MinUpdates policy updates
//     or MinRestarts restarts wasn't soaking — the run fails rather than
//     vacuously passing.
//
// Defect injectors (Config.Inject) seed the failures the gates exist to
// catch, so the harness's detection power is itself under test; see
// soak_test.go.
package soak

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"acdc/internal/core"
	"acdc/internal/daemon"
	"acdc/internal/faults"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/workload"
)

// Defect selects a deliberately seeded bug for harness self-tests.
type Defect string

const (
	// DefectNone runs clean.
	DefectNone Defect = ""
	// DefectUndeadFlow keeps one synthetic flow-table entry alive forever —
	// a keepalive event refreshes it through the datapath with no connection
	// behind it, so it survives the drain. Models a broken removal path.
	DefectUndeadFlow Defect = "undead-flow"
	// DefectCounterRegress subtracts a billion from a datapath counter
	// mid-run. Models double accounting or a racy counter reset.
	DefectCounterRegress Defect = "counter-regress"
	// DefectHostileBeta writes β=3 straight into live flows, bypassing the
	// Policy sanitize/validate choke point. The next congestion cut grows
	// the window (Eq. 1 factor > 1) and the always-on state-transition
	// audit catches it. Models an unsanitized policy install path.
	DefectHostileBeta Defect = "hostile-beta"
)

// Config parameterizes a soak run. The zero value is a sensible short soak;
// CI smoke and cmd/acdcsuite raise Duration.
type Config struct {
	// Duration is the wall-clock soak length (default 5s).
	Duration time.Duration
	// Seed drives both the simulation and the hostile controller (default 1).
	Seed int64
	// Scale is virtual seconds advanced per wall second (default 0.2).
	Scale float64
	// Tenants and HostsPerTenant size the churn workload (defaults 3 and 4;
	// the topology gets Tenants*HostsPerTenant hosts).
	Tenants, HostsPerTenant int
	// UpdateEvery is the wall interval between hostile-controller policy
	// bursts (default 10ms), UpdatesPerBurst the burst size (default 4).
	UpdateEvery     time.Duration
	UpdatesPerBurst int
	// RestartEvery is the wall interval between vSwitch restarts (default
	// 1s; mostly warm, occasionally cold).
	RestartEvery time.Duration
	// FaultFlipEvery is the wall interval between fault-profile flips
	// (default 2s).
	FaultFlipEvery time.Duration
	// SampleEvery is the wall interval between metric scrapes for the
	// drift/allocation gates (default 250ms).
	SampleEvery time.Duration
	// MinUpdates and MinRestarts are the activity floors (defaults 100, 1).
	MinUpdates, MinRestarts int64
	// GoroutineSlack is the allowed goroutine-count growth after Stop
	// (default 4).
	GoroutineSlack int
	// AllocSlack is the allowed sim.Allocated() growth after warm-up
	// (default 16384, one free-list's worth).
	AllocSlack int64
	// Inject seeds a deliberate defect (harness self-tests).
	Inject Defect
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.2
	}
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.HostsPerTenant <= 0 {
		c.HostsPerTenant = 4
	}
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = 10 * time.Millisecond
	}
	if c.UpdatesPerBurst <= 0 {
		c.UpdatesPerBurst = 4
	}
	if c.RestartEvery <= 0 {
		c.RestartEvery = time.Second
	}
	if c.FaultFlipEvery <= 0 {
		c.FaultFlipEvery = 2 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.MinUpdates <= 0 {
		c.MinUpdates = 100
	}
	if c.MinRestarts <= 0 {
		c.MinRestarts = 1
	}
	if c.GoroutineSlack <= 0 {
		c.GoroutineSlack = 4
	}
	if c.AllocSlack <= 0 {
		c.AllocSlack = 16384
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Report is the outcome of a soak run. Failures is empty iff every gate
// passed.
type Report struct {
	WallDuration time.Duration
	VirtualEnd   sim.Time
	Forgiven     sim.Duration

	Updates, Rejects  int64 // accepted / rejected policy installs
	HostileAttempts   int64 // malformed installs streamed on purpose (must reject)
	FailOpenAttempts  int64 // unknown-backend installs streamed on purpose (must clamp, not reject)
	Restarts          int64
	FaultFlips        int64
	Arrivals, Departs int // tenant churn events
	FlowsHighWater    int
	LeakedFlows       int
	AllocatedWarm     int64 // sim.Allocated() after warm-up
	AllocatedEnd      int64
	GoroutineBase     int
	GoroutineEnd      int
	AuditViolations   int64
	Drift             []string // counter regressions, e.g. "egress_segments_total: 12 -> 3"
	Failures          []string
}

// Failed reports whether any gate tripped.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// String renders the leak report the way `acdcsuite -soak` prints it.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: %v wall, %v virtual (forgiven %v)\n",
		r.WallDuration.Round(time.Millisecond), r.VirtualEnd, sim.Time(r.Forgiven))
	fmt.Fprintf(&b, "  control plane: %d updates, %d rejects (%d hostile, %d fail-open streamed), %d restarts, %d fault flips\n",
		r.Updates, r.Rejects, r.HostileAttempts, r.FailOpenAttempts, r.Restarts, r.FaultFlips)
	fmt.Fprintf(&b, "  churn: %d arrivals, %d departures, flow high-water %d\n",
		r.Arrivals, r.Departs, r.FlowsHighWater)
	fmt.Fprintf(&b, "  gates: leaked-flows=%d drift=%d alloc=%d->%d goroutines=%d->%d audit=%d\n",
		r.LeakedFlows, len(r.Drift), r.AllocatedWarm, r.AllocatedEnd,
		r.GoroutineBase, r.GoroutineEnd, r.AuditViolations)
	if !r.Failed() {
		b.WriteString("  PASS: no leaks, no drift, no violations\n")
		return b.String()
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL: %s\n", f)
	}
	return b.String()
}

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// flipProfiles is the hostile controller's fault-regime rotation: mild
// impairments the datapath must absorb without audit violations, plus clean
// interludes.
var flipProfiles = []string{"none", "jitter", "dup", "reorder", "loss", "none"}

// Run executes one soak and returns its report. The run is a pure function
// of Config for the simulated side (seeded PRNGs everywhere); wall-clock
// scheduling jitter only shifts when control-plane ops land, not what they
// may legally do.
func Run(cfg Config) *Report {
	cfg = cfg.withDefaults()
	start := time.Now()
	r := &Report{GoroutineBase: runtime.NumGoroutine()}

	hosts := cfg.Tenants * cfg.HostsPerTenant
	startProf, _ := faults.Lookup("jitter")
	d := daemon.New(daemon.Config{
		Hosts: hosts,
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
		// Short catch-up bursts keep the sim loop responsive to marshaled
		// control ops even when the fabric can't sustain Scale.
		MaxCatchUp: 5 * sim.Millisecond,
		Faults:     &startProf,
		Tune: func(c *core.Config) {
			// Shorten the flow lifecycle so churned flows age out within the
			// run and the drain finishes fast; the leak gate depends on idle
			// entries actually being swept.
			c.IdleTimeout = 150 * sim.Millisecond
			c.GCInterval = 50 * sim.Millisecond
			c.SweepInterval = 50 * sim.Millisecond
		},
	})

	// Workloads are built before Start (construction schedules sim events,
	// which is only safe while the loop isn't running).
	m := workload.NewManager(d.Net())
	churn := workload.NewTenantChurn(m, workload.TenantChurnConfig{
		Tenants:        cfg.Tenants,
		HostsPerTenant: cfg.HostsPerTenant,
		ChurnPeriod:    5 * sim.Millisecond,
	})
	churn.Start()
	crowdSenders := make([]int, 0, cfg.HostsPerTenant)
	for i := hosts - cfg.HostsPerTenant; i < hosts; i++ {
		crowdSenders = append(crowdSenders, i)
	}
	crowd := workload.NewFlashCrowd(m, workload.FlashCrowdConfig{
		Senders: crowdSenders,
		Hot:     0,
	})
	crowd.Start()
	if cfg.Inject == DefectUndeadFlow {
		injectUndeadFlow(d.Net().ACDC[0], d.Net().Sim)
	}

	d.Start()
	runControl(cfg, d, r)

	// Drain: stop the workloads, then run the simulation past the idle
	// timeout so every flow backed by a (now quiet) connection is swept.
	// Both touch sim state, so they are marshaled onto the sim loop.
	if err := d.Exec(func() { churn.Stop(); crowd.Stop() }); err != nil {
		r.failf("stopping workloads: %v", err)
	}
	if err := d.Exec(func() { d.Net().Sim.RunFor(600 * sim.Millisecond) }); err != nil {
		r.failf("drain: %v", err)
	}

	st := d.StatusNow()
	r.VirtualEnd = d.Net().Sim.Now()
	r.Forgiven = sim.Duration(st.ForgivenNanos)
	r.Updates, r.Rejects = st.PolicyUpdates, st.PolicyRejects
	r.Restarts = st.Restarts
	r.LeakedFlows = st.Flows
	r.AllocatedEnd = d.Net().Sim.Allocated()
	r.AuditViolations = st.AuditTotal

	d.Stop()
	r.Arrivals, r.Departs = churn.Arrivals, churn.Departures

	// Goroutines unwind asynchronously after Stop; give them a moment.
	deadline := time.Now().Add(3 * time.Second)
	for {
		r.GoroutineEnd = runtime.NumGoroutine()
		if r.GoroutineEnd <= r.GoroutineBase+cfg.GoroutineSlack || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	r.WallDuration = time.Since(start)
	gate(cfg, r)
	cfg.Log("%s", r.String())
	return r
}

// gate applies the pass/fail criteria to the collected evidence.
func gate(cfg Config, r *Report) {
	if r.LeakedFlows > 0 {
		r.failf("flow-table leak: %d entries survived the post-workload drain", r.LeakedFlows)
	}
	for _, dr := range r.Drift {
		r.failf("counter drift: %s", dr)
	}
	if r.AllocatedWarm > 0 && r.AllocatedEnd-r.AllocatedWarm > cfg.AllocSlack {
		r.failf("event free-list leak: sim.Allocated grew %d past warm-up (slack %d)",
			r.AllocatedEnd-r.AllocatedWarm, cfg.AllocSlack)
	}
	if r.GoroutineEnd > r.GoroutineBase+cfg.GoroutineSlack {
		r.failf("goroutine leak: %d before, %d after stop (slack %d)",
			r.GoroutineBase, r.GoroutineEnd, cfg.GoroutineSlack)
	}
	if r.AuditViolations > 0 {
		r.failf("audit: %d invariant violations", r.AuditViolations)
	}
	if r.Updates < cfg.MinUpdates {
		r.failf("too idle: %d policy updates applied, need >= %d", r.Updates, cfg.MinUpdates)
	}
	if r.Restarts < cfg.MinRestarts {
		r.failf("too idle: %d restarts, need >= %d", r.Restarts, cfg.MinRestarts)
	}
}

// runControl is the hostile controller plus the drift/allocation sampler: a
// wall-clock loop that streams policy updates, restarts, and fault flips at
// their configured cadences until the soak deadline.
func runControl(cfg Config, d *daemon.Daemon, r *Report) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x50ac))
	hosts := cfg.Tenants * cfg.HostsPerTenant
	deadline := time.Now().Add(cfg.Duration)
	warmup := time.Now().Add(cfg.Duration / 3)
	injectAt := time.Now().Add(cfg.Duration / 2)
	injected := false

	nextUpdate := time.Now()
	nextRestart := time.Now().Add(cfg.RestartEvery)
	nextFlip := time.Now().Add(cfg.FaultFlipEvery)
	nextSample := time.Now().Add(cfg.SampleEvery)
	prev := map[string]int64{}

	for now := time.Now(); now.Before(deadline); now = time.Now() {
		if !now.Before(nextUpdate) {
			nextUpdate = now.Add(cfg.UpdateEvery)
			for i := 0; i < cfg.UpdatesPerBurst; i++ {
				streamOne(d, rng, hosts, r)
			}
		}
		if !now.Before(nextRestart) {
			nextRestart = now.Add(cfg.RestartEvery)
			warm := rng.Float64() < 0.8
			if err := d.Restart(rng.Intn(hosts), warm); err != nil {
				r.failf("restart: %v", err)
			}
		}
		if !now.Before(nextFlip) {
			nextFlip = now.Add(cfg.FaultFlipEvery)
			p, _ := faults.Lookup(flipProfiles[rng.Intn(len(flipProfiles))])
			if err := d.SetFaultProfile(p); err != nil {
				r.failf("fault flip: %v", err)
			} else {
				r.FaultFlips++
			}
		}
		if !now.Before(nextSample) {
			nextSample = now.Add(cfg.SampleEvery)
			sample(d, prev, r)
			if r.AllocatedWarm == 0 && now.After(warmup) {
				r.AllocatedWarm = d.Net().Sim.Allocated()
			}
			if injected && cfg.Inject == DefectHostileBeta {
				// Re-poison each sampling interval: churn keeps replacing
				// the poisoned flows with clean ones.
				injectMidRun(cfg.Inject, d, r)
			}
		}
		if cfg.Inject != DefectNone && !injected && now.After(injectAt) {
			injected = true
			injectMidRun(cfg.Inject, d, r)
		}
		time.Sleep(time.Millisecond)
	}
}

// streamOne issues one seeded-random policy operation against a live flow.
// Roughly one in ten is deliberately hostile (β outside [0,1]) and must be
// rejected; one in ten clears instead of installing.
func streamOne(d *daemon.Daemon, rng *rand.Rand, hosts int, r *Report) {
	host := rng.Intn(hosts)
	v := d.Net().ACDC[host]
	var keys []core.FlowKey
	v.Table.Range(func(f *core.Flow) { keys = append(keys, f.Key) })
	if len(keys) == 0 {
		return
	}
	k := keys[rng.Intn(len(keys))]
	switch roll := rng.Float64(); {
	case roll < 0.1:
		r.HostileAttempts++
		p := core.Policy{Beta: 1.5 + 2*rng.Float64()}
		if _, err := d.InstallPolicy(host, k, p); err == nil {
			r.failf("hostile policy (beta=%g) was accepted on host %d", p.Beta, host)
		}
	case roll < 0.15:
		// An unknown backend name is the one hostile input that must NOT be
		// rejected: the stream has to keep making forward progress, so the
		// vSwitch clamps to the default and counts backend_unknown_total.
		r.FailOpenAttempts++
		p := core.Policy{Beta: rng.Float64(), Backend: "no-such-backend"}
		installed, err := d.InstallPolicy(host, k, p)
		if err != nil {
			r.failf("unknown backend must fail open, got error: %v", err)
		} else if installed.Backend != "" {
			r.failf("unknown backend %q survived sanitization as %q", p.Backend, installed.Backend)
		}
	case roll < 0.25:
		if _, err := d.ClearPolicy(host, k); err != nil {
			r.failf("clear policy: %v", err)
		}
	default:
		p := core.Policy{Beta: rng.Float64()}
		if rng.Float64() < 0.3 {
			p.RwndClampBytes = int64(64<<10 + rng.Intn(1<<20))
		}
		if rng.Float64() < 0.2 {
			p.VCC = []string{"dctcp", "reno"}[rng.Intn(2)]
		}
		if rng.Float64() < 0.3 {
			// Flip enforcement mechanisms mid-flight: the swap is a reference
			// change under the flow lock, and any orphaned pace shaper just
			// drains on the sim goroutine.
			p.Backend = core.BackendNames()[rng.Intn(len(core.BackendNames()))]
		}
		if _, err := d.InstallPolicy(host, k, p); err != nil {
			r.failf("benign policy rejected: %v", err)
		}
	}
}

// sample scrapes the merged counters and records any regression — counters
// are monotone by contract, so cur < prev is corruption, not noise. Reads of
// different counters are not one consistent cut, but each counter is compared
// only with its own earlier value, which monotonicity makes sound.
func sample(d *daemon.Daemon, prev map[string]int64, r *Report) {
	snap := d.MetricsSnapshot()
	if f := d.StatusNow().Flows; f > r.FlowsHighWater {
		r.FlowsHighWater = f
	}
	for name, cur := range snap.Counters {
		if pv, ok := prev[name]; ok && cur < pv {
			r.Drift = append(r.Drift, fmt.Sprintf("%s: %d -> %d", name, pv, cur))
		}
		prev[name] = cur
	}
}

// injectUndeadFlow schedules a keepalive that refreshes one synthetic flow
// through host 0's egress every 50ms of virtual time — forever, including
// through the drain. No connection backs the entry, so a correct harness
// must flag it as leaked. Scheduled before the daemon starts (sim-goroutine
// rule); the event then reschedules itself from inside the simulation.
func injectUndeadFlow(v *core.VSwitch, s *sim.Simulator) {
	src := packet.MakeAddr(10, 99, 99, 1)
	dst := packet.MakeAddr(10, 99, 99, 2)
	var seq uint32 = 1000
	var keepalive func()
	keepalive = func() {
		p := packet.Build(src, dst, packet.NotECT, packet.TCPFields{
			SrcPort: 49999, DstPort: 49998,
			Seq: seq, Ack: 1, Flags: packet.FlagACK | packet.FlagPSH,
			Window: 65535,
		}, 1000)
		seq += 1000
		v.Egress(p) // midstream adoption creates (and refreshes) the entry
		s.ScheduleFunc(50*sim.Millisecond, keepalive)
	}
	s.ScheduleFunc(0, keepalive)
}

// injectMidRun applies the wall-clock-timed defects from the controller
// loop, marshaled onto the sim goroutine.
func injectMidRun(defect Defect, d *daemon.Daemon, r *Report) {
	var err error
	switch defect {
	case DefectCounterRegress:
		v := d.Net().ACDC[0]
		err = d.Exec(func() { v.Metrics.EgressSegs.Add(-1_000_000_000) })
	case DefectHostileBeta:
		err = d.Exec(func() {
			for _, v := range d.Net().ACDC {
				v.Table.Range(func(f *core.Flow) { f.Policy.Beta = 3 })
			}
		})
	}
	if err != nil {
		r.failf("defect injection %q: %v", defect, err)
	}
}
