package soak

import (
	"strings"
	"testing"
	"time"
)

// dur shrinks soak lengths under -short while keeping enough runway for the
// activity floors and the mid-run defect injection point (Duration/2).
func dur(t *testing.T, full time.Duration) time.Duration {
	if testing.Short() {
		return full / 2
	}
	return full
}

// hasFailure reports whether any gate failure mentions substr.
func hasFailure(r *Report, substr string) bool {
	for _, f := range r.Failures {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestCleanSoakPasses(t *testing.T) {
	r := Run(Config{Duration: dur(t, 4*time.Second), Log: t.Logf})
	if r.Failed() {
		t.Fatalf("clean soak failed:\n%s", r)
	}
	// The run must actually have soaked: live updates streamed, hostile ones
	// streamed and rejected, restarts and fault flips landed, flows churned.
	if r.Updates < 100 {
		t.Errorf("only %d policy updates", r.Updates)
	}
	if r.HostileAttempts == 0 || r.Rejects < r.HostileAttempts {
		t.Errorf("hostile attempts %d, rejects %d — the reject path was not exercised",
			r.HostileAttempts, r.Rejects)
	}
	// Unknown-backend installs must have streamed AND been clamped rather
	// than rejected: streamOne records a gate failure if one errors, so here
	// it is enough that the path was exercised on a passing run.
	if r.FailOpenAttempts == 0 {
		t.Error("no unknown-backend installs streamed — the fail-open path was not exercised")
	}
	if r.Restarts == 0 {
		t.Error("no restarts")
	}
	if r.FaultFlips == 0 {
		t.Error("no fault flips")
	}
	if r.Arrivals == 0 || r.Departs == 0 {
		t.Errorf("churn did not run: %d arrivals, %d departures", r.Arrivals, r.Departs)
	}
	if r.FlowsHighWater == 0 {
		t.Error("no flows were ever tracked")
	}
	if r.VirtualEnd == 0 {
		t.Error("virtual clock never advanced")
	}
}

func TestSoakCatchesUndeadFlow(t *testing.T) {
	r := Run(Config{Duration: dur(t, 2*time.Second), Inject: DefectUndeadFlow, Log: t.Logf})
	if !hasFailure(r, "flow-table leak") {
		t.Fatalf("undead flow not detected:\n%s", r)
	}
	if r.LeakedFlows == 0 {
		t.Fatalf("leak reported without a leaked-flow count:\n%s", r)
	}
}

func TestSoakCatchesCounterRegress(t *testing.T) {
	r := Run(Config{Duration: dur(t, 2*time.Second), Inject: DefectCounterRegress, Log: t.Logf})
	if !hasFailure(r, "counter drift") {
		t.Fatalf("counter regression not detected:\n%s", r)
	}
	if !hasFailure(r, "egress_segments_total") {
		t.Fatalf("drift report does not name the regressed counter:\n%s", r)
	}
}

func TestSoakCatchesHostileBeta(t *testing.T) {
	r := Run(Config{Duration: dur(t, 3*time.Second), Inject: DefectHostileBeta, Log: t.Logf})
	if !hasFailure(r, "audit") {
		t.Fatalf("unsanitized live policy not detected:\n%s", r)
	}
	if r.AuditViolations == 0 {
		t.Fatalf("audit failure without a violation count:\n%s", r)
	}
}
