// Package experiments is the reproduction harness: one Experiment per table
// or figure in the paper's evaluation (§5). Each experiment builds its
// topology, drives the paper's workload, and reports the same rows/series
// the paper plots, alongside the paper's published expectation so the two
// can be compared. Absolute numbers differ (our substrate is a simulator,
// not the authors' 10GbE testbed); the reproduced artifact is the *shape* —
// who wins, by roughly what factor, and where crossovers fall.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// RunConfig adjusts experiment scale.
type RunConfig struct {
	// Long runs closer-to-paper durations (~10× the quick defaults).
	Long bool
	// Seed seeds all randomness.
	Seed int64
	// Faults, when non-nil and enabled, installs the fault profile on every
	// link of every topology the experiment builds (chaos runs). nil or a
	// disabled profile leaves the fault-free code path untouched, so default
	// runs stay byte-identical.
	Faults *faults.Profile
	// Restart, when non-nil, schedules a vSwitch restart (cold/warm/stale/
	// corrupt; see faults.ParseRestart) in every topology the experiment
	// builds. Only hosts with an AC/DC module are affected, so CUBIC/DCTCP
	// baseline schemes run unchanged. Nil keeps the restart machinery cold.
	Restart *faults.RestartPlan
	// Audit, when non-nil, attaches a datapath invariant auditor
	// (internal/audit) to every AC/DC module in every topology the experiment
	// builds. Violations surface through the auditor's counters/log (or a
	// panic in test mode); report output is unaffected on a clean run. Nil
	// keeps the hot path on the audit-free branch.
	Audit *audit.Config
	// Fabric, when non-empty, arms fabric fault domains (link/switch outages,
	// flaps, gray loss; see faults.ParseDomains) in every topology the
	// experiment builds. Link names are topology-specific (a dumbbell's trunk
	// is "left>right"), so a plan written for one figure may not match
	// another's links — Schedule panics on zero-match patterns rather than
	// silently running a clean fabric. Empty keeps the lifecycle machinery
	// cold and report output byte-identical.
	Fabric []faults.FaultDomain
	// Backend selects the enforcement backend (core.BackendNames) on every
	// AC/DC module the experiment builds, for head-to-head mechanism
	// comparisons. Empty keeps the default (dctcp-cut) and report output
	// byte-identical. Callers validate via core.ParseBackend; unknown names
	// that reach here fail open to the default at Attach.
	Backend string
}

func (c RunConfig) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// scale stretches a base duration in Long mode.
func (c RunConfig) scale(d sim.Duration) sim.Duration {
	if c.Long {
		return d * 10
	}
	return d
}

// Result is an experiment's output.
type Result struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Sections are formatted text blocks (tables, CDF summaries).
	Sections []string
	// Telemetry holds per-scheme datapath metrics timelines (fleet-wide
	// vSwitch counters sampled on an interval; see telemetry.go). Rendered
	// after Sections.
	Telemetry []*Telemetry
	// Metrics are headline numbers, used by tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

func newResult(id, title, paper string) *Result {
	return &Result{ID: id, Title: title, Paper: paper, Metrics: map[string]float64{}}
}

func (r *Result) section(format string, args ...any) {
	r.Sections = append(r.Sections, fmt.Sprintf(format, args...))
}

func (r *Result) table(t *stats.Table) { r.Sections = append(r.Sections, t.String()) }

// telemetry finalizes a recorder and attaches it to the result. nil (a run
// without AC/DC vSwitches) is ignored, so call sites stay scheme-agnostic.
func (r *Result) telemetry(tl *Telemetry) {
	if tl == nil {
		return
	}
	tl.Finish()
	r.Telemetry = append(r.Telemetry, tl)
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", r.Paper)
	for _, s := range r.Sections {
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	for _, tl := range r.Telemetry {
		b.WriteString(tl.String())
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("metrics:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-40s %g\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) *Result
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"fig1", "Different congestion controls lead to unfairness", Fig1},
	{"fig2", "CUBIC fills buffers; DCTCP keeps RTT low", Fig2},
	{"fig6", "Bounding RWND is equivalent to bounding CWND", Fig6},
	{"fig8", "Dumbbell: AC/DC matches DCTCP throughput and RTT", Fig8},
	{"parkinglot", "Parking lot: multi-bottleneck tput/fairness/RTT", ParkingLot},
	{"fig9", "AC/DC's computed RWND tracks DCTCP's CWND", Fig9},
	{"fig10", "AC/DC's RWND is the limiting window over CUBIC", Fig10},
	{"fig13", "QoS: β-based differentiated throughput", Fig13},
	{"fig14", "Convergence: flows join/leave every interval", Fig14},
	{"fig15", "ECN coexistence: CUBIC vs DCTCP on one fabric", Fig15},
	{"fig17", "Five different stacks made fair by AC/DC", Fig17},
	{"fig18", "Incast: throughput, fairness, RTT, drops", Fig18},
	{"fig20", "All ports congested: RTT through the hot port", Fig20},
	{"fig21", "Concurrent stride FCTs", Fig21},
	{"fig22", "Shuffle FCTs", Fig22},
	{"fig23", "Trace-driven (web-search, data-mining) mice FCTs", Fig23},
	{"table1", "AC/DC under many host congestion controls", Table1},
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// --- schemes ---

// Scheme is one of the paper's three configurations (§5 "Experiment
// details"): CUBIC (baseline, WRED off), DCTCP (native, WRED on), and AC/DC
// (CUBIC guests + vSwitch DCTCP, WRED on).
type Scheme struct {
	Name  string
	Guest tcpstack.Config
	ACDC  *core.Config
	RED   netsim.REDConfig
}

func guestCfg(mtu int, cc string, ecn tcpstack.ECNMode) tcpstack.Config {
	g := tcpstack.DefaultConfig()
	g.MTU = mtu
	g.CC = cc
	g.ECN = ecn
	return g
}

// SchemeCUBIC is the paper's baseline: CUBIC guests, standard vSwitch,
// switch WRED/ECN off (drop-tail into the shared buffer).
func SchemeCUBIC(mtu int) Scheme {
	return Scheme{Name: "CUBIC", Guest: guestCfg(mtu, "cubic", tcpstack.ECNOff)}
}

// SchemeDCTCP is the target: DCTCP guests, standard vSwitch, WRED/ECN on.
func SchemeDCTCP(mtu int) Scheme {
	return Scheme{
		Name:  "DCTCP",
		Guest: guestCfg(mtu, "dctcp", tcpstack.ECNDCTCP),
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	}
}

// SchemeACDC is the contribution: guests run hostCC (CUBIC unless stated),
// AC/DC runs DCTCP in the vSwitch, WRED/ECN on.
func SchemeACDC(mtu int, hostCC string, hostECN tcpstack.ECNMode) Scheme {
	ac := core.DefaultConfig()
	ac.MTU = mtu
	return Scheme{
		Name:  "AC/DC",
		Guest: guestCfg(mtu, hostCC, hostECN),
		ACDC:  &ac,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	}
}

// ThreeSchemes returns the standard comparison set at the given MTU.
func ThreeSchemes(mtu int) []Scheme {
	return []Scheme{SchemeCUBIC(mtu), SchemeDCTCP(mtu), SchemeACDC(mtu, "cubic", tcpstack.ECNOff)}
}

func (s Scheme) options(cfg RunConfig, seed int64) topo.Options {
	return topo.Options{
		Guest: s.Guest, ACDC: s.ACDC, RED: s.RED, Seed: seed,
		// FaultSeed pins the chaos mix to the run seed even when an
		// experiment perturbs the per-topology seed (e.g. per-iteration
		// seed offsets), so one -faults run replays deterministically.
		Faults: cfg.Faults, FaultSeed: cfg.seed(),
		Restart: cfg.Restart, Audit: cfg.Audit,
		// FabricSeed is pinned like FaultSeed: gray-loss draws replay under
		// per-iteration seed offsets too.
		Fabric: cfg.Fabric, FabricSeed: cfg.seed(),
		Backend: cfg.Backend,
	}
}

// --- shared measurement helpers ---

// dumbbellFlows starts one bulk flow per sender pair on a dumbbell Net and
// returns the messengers.
func dumbbellFlows(net *topo.Net, pairs int) (*workload.Manager, []*workload.Messenger) {
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, pairs)
	for i := 0; i < pairs; i++ {
		flows[i] = workload.Bulk(m, i, pairs+i)
	}
	return m, flows
}

// flowRates converts delivered bytes into per-flow Gbps over a window.
func flowRates(flows []*workload.Messenger, startBytes []int64, window sim.Duration) []float64 {
	out := make([]float64, len(flows))
	for i, f := range flows {
		out[i] = float64(f.Delivered()-startBytes[i]) * 8 / window.Seconds() / 1e9
	}
	return out
}

func snapshotDelivered(flows []*workload.Messenger) []int64 {
	out := make([]int64, len(flows))
	for i, f := range flows {
		out[i] = f.Delivered()
	}
	return out
}

func gbps(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.2f", x)
	}
	return out
}

// rttSummary formats an RTT sample in the paper's units (ms percentiles).
func rttSummary(s *stats.Sample) string {
	return fmt.Sprintf("p50=%.3fms p95=%.3fms p99=%.3fms p99.9=%.3fms",
		s.Percentile(50)/1e6, s.Percentile(95)/1e6, s.Percentile(99)/1e6, s.Percentile(99.9)/1e6)
}

// cdfBlock renders a compact CDF (value unit transformed by div) for dumping.
func cdfBlock(name string, s *stats.Sample, div float64, unit string, points int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s CDF (n=%d):\n", name, s.N())
	for _, p := range s.CDF(points) {
		fmt.Fprintf(&b, "  %10.3f%s  F=%.3f\n", p[0]/div, unit, p[1])
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
