package experiments

import (
	"fmt"
	"strings"

	"acdc/internal/metrics"
	"acdc/internal/sim"
	"acdc/internal/topo"
)

// Telemetry is a per-interval timeline of fleet-wide datapath metrics for
// one scheme's run: the merged snapshot of every attached vSwitch's registry,
// sampled on a simulated-time tick, plus the final aggregate. It is the
// operator's view of a run — how much the fabric marked, how hard the
// vSwitches squeezed windows, how the flow tables churned — alongside the
// experiment's headline numbers.
type Telemetry struct {
	Label    string
	Interval sim.Duration
	Times    []sim.Time
	Samples  []metrics.Snapshot // cumulative fleet aggregate at each tick
	Final    metrics.Snapshot   // aggregate taken at Finish

	net *topo.Net
	ev  *sim.Event
}

// fleetSnapshot merges every attached vSwitch's registry into one view,
// plus the fault injector's counters when a chaos profile is active and the
// fabric's link-lifecycle/ECMP counters when the topology has one, so
// injected degradation shows up next to the datapath reaction it caused.
// ok is false when the net has no AC/DC modules (the CUBIC/DCTCP baselines)
// or metrics are disabled on all of them.
func fleetSnapshot(net *topo.Net) (snap metrics.Snapshot, ok bool) {
	var snaps []metrics.Snapshot
	for _, v := range net.ACDC {
		if v != nil && v.Metrics.Registry() != nil {
			snaps = append(snaps, v.Metrics.Snapshot())
		}
	}
	if len(snaps) == 0 {
		return metrics.Snapshot{}, false
	}
	if net.Faults != nil {
		snaps = append(snaps, net.Faults.Registry().Snapshot())
	}
	if net.HasFabric() {
		snaps = append(snaps, net.FabricSnapshot())
	}
	return metrics.Merge(snaps...), true
}

// watchFleet starts a telemetry recorder ticking every interval of simulated
// time. Returns nil when the net has no AC/DC vSwitches; every Telemetry
// method is nil-safe so callers need not branch on the scheme.
//
// The recorder reschedules itself forever, which is safe because every
// experiment bounds execution with RunFor; Finish cancels the pending tick
// so a drained simulator can still terminate.
func watchFleet(net *topo.Net, label string, interval sim.Duration) *Telemetry {
	if _, ok := fleetSnapshot(net); !ok {
		return nil
	}
	tl := &Telemetry{Label: label, Interval: interval, net: net}
	var tick func()
	tick = func() {
		snap, _ := fleetSnapshot(net)
		tl.Times = append(tl.Times, net.Sim.Now())
		tl.Samples = append(tl.Samples, snap)
		tl.ev = net.Sim.Schedule(interval, tick)
	}
	tl.ev = net.Sim.Schedule(interval, tick)
	return tl
}

// Finish stops the recorder and captures the final fleet aggregate.
func (tl *Telemetry) Finish() {
	if tl == nil {
		return
	}
	if tl.ev != nil {
		tl.net.Sim.Cancel(tl.ev)
		tl.ev = nil
	}
	tl.Final, _ = fleetSnapshot(tl.net)
}

// CEFraction returns CE-marked over total received payload bytes in the
// final aggregate — the fabric's observed congestion-marking rate.
func (tl *Telemetry) CEFraction() float64 {
	if tl == nil {
		return 0
	}
	total := tl.Final.Counter("rx_data_bytes_total")
	if total == 0 {
		return 0
	}
	return float64(tl.Final.Counter("rx_ce_bytes_total")) / float64(total)
}

// RwndRewrites returns the final count of enforced window overwrites.
func (tl *Telemetry) RwndRewrites() int64 {
	if tl == nil {
		return 0
	}
	return tl.Final.Counter("rwnd_rewrites_total")
}

// maxTimelineRows bounds the rendered timeline; long runs are strided.
const maxTimelineRows = 12

// String renders the timeline (per-interval deltas of the headline counters)
// followed by the full final snapshot, indented for embedding in reports.
func (tl *Telemetry) String() string {
	if tl == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry [%s] — fleet aggregate, tick %v, CE fraction %.1f%%:\n",
		tl.Label, tl.Interval, 100*tl.CEFraction())
	fmt.Fprintf(&b, "  %12s %14s %10s %8s %12s %8s\n",
		"t", "egress segs/t", "rx MB/t", "CE %", "rewrites/t", "flows")
	stride := 1
	if len(tl.Samples) > maxTimelineRows {
		stride = (len(tl.Samples) + maxTimelineRows - 1) / maxTimelineRows
	}
	prev := metrics.Snapshot{}
	prevIdx := -1
	for i := 0; i < len(tl.Samples); i += stride {
		s := tl.Samples[i]
		d := s.Delta(prev)
		cePct := 0.0
		if rx := d.Counter("rx_data_bytes_total"); rx > 0 {
			cePct = 100 * float64(d.Counter("rx_ce_bytes_total")) / float64(rx)
		}
		fmt.Fprintf(&b, "  %12v %14d %10.2f %8.1f %12d %8d\n",
			tl.Times[i], d.Counter("egress_segments_total"),
			float64(d.Counter("rx_data_bytes_total"))/1e6, cePct,
			d.Counter("rwnd_rewrites_total"), s.Gauge("flow_table_size"))
		prev, prevIdx = s, i
	}
	if stride > 1 {
		fmt.Fprintf(&b, "  (%d of %d ticks shown)\n", prevIdx/stride+1, len(tl.Samples))
	}
	fmt.Fprintf(&b, "final datapath metrics [%s]:\n", tl.Label)
	for _, line := range strings.Split(strings.TrimRight(tl.Final.Text(), "\n"), "\n") {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}
