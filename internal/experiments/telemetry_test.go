package experiments

import (
	"strings"
	"testing"

	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

func TestTelemetryRecordsFleetMetrics(t *testing.T) {
	t.Parallel()
	scheme := SchemeACDC(9000, "cubic", tcpstack.ECNOff)
	net := topo.Star(3, scheme.options(RunConfig{}, 1))
	m := workload.NewManager(net)
	workload.Bulk(m, 0, 2)
	workload.Bulk(m, 1, 2)

	tl := watchFleet(net, "test", 10*sim.Millisecond)
	if tl == nil {
		t.Fatal("watchFleet returned nil for an AC/DC net")
	}
	net.Sim.RunFor(100 * sim.Millisecond)
	tl.Finish()

	if got := len(tl.Samples); got < 8 {
		t.Fatalf("only %d samples after 10 ticks", got)
	}
	if len(tl.Times) != len(tl.Samples) {
		t.Fatalf("times/samples mismatch: %d vs %d", len(tl.Times), len(tl.Samples))
	}
	if tl.Final.Counter("egress_segments_total") == 0 {
		t.Error("no egress segments in final aggregate")
	}
	if tl.RwndRewrites() == 0 {
		t.Error("no RWND rewrites recorded on a congested star")
	}
	if f := tl.CEFraction(); f <= 0 || f >= 1 {
		t.Errorf("CE fraction %.3f outside (0,1) on a marking bottleneck", f)
	}
	// Cumulative samples must be monotone in every counter.
	last := tl.Samples[len(tl.Samples)-1]
	if last.Counter("egress_segments_total") > tl.Final.Counter("egress_segments_total") {
		t.Error("final aggregate behind last sample")
	}
	for i := 1; i < len(tl.Samples); i++ {
		if tl.Samples[i].Counter("egress_segments_total") < tl.Samples[i-1].Counter("egress_segments_total") {
			t.Fatalf("sample %d not monotone", i)
		}
	}
	out := tl.String()
	for _, want := range []string{"telemetry [test]", "rwnd_rewrites_total", "final datapath metrics"} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry render missing %q:\n%s", want, out)
		}
	}

	// A baseline net without AC/DC yields a nil (and fully inert) recorder.
	base := topo.Star(2, SchemeCUBIC(9000).options(RunConfig{}, 1))
	if tlNil := watchFleet(base, "none", sim.Millisecond); tlNil != nil {
		t.Fatal("watchFleet should return nil without vSwitches")
	}
	var nilTL *Telemetry
	nilTL.Finish()
	if nilTL.String() != "" || nilTL.CEFraction() != 0 || nilTL.RwndRewrites() != 0 {
		t.Error("nil Telemetry methods not inert")
	}
}
