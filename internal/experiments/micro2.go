package experiments

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// Fig9 reproduces Figure 9: with DCTCP in the guests and AC/DC in
// observation mode (computing but not enforcing RWND), the vSwitch's
// calculated window must track the guest's CWND closely.
func Fig9(cfg RunConfig) *Result {
	r := newResult("fig9", "AC/DC's computed RWND tracks DCTCP's CWND",
		"RWND and CWND overlap both instantaneously (first 100 ms) and in 100 ms moving average (1.5KB MTU)")
	scheme := SchemeDCTCP(1500)
	ac := core.DefaultConfig()
	ac.MTU = 1500
	ac.EnforceRwnd = false // log, don't overwrite (the paper's methodology)
	ac.StripECN = false    // the guest's own DCTCP loop stays in control
	ac.MarkECT = false
	scheme.ACDC = &ac
	scheme.Name = "DCTCP+log"

	net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, 5)
	for i := 0; i < 5; i++ {
		flows[i] = workload.Bulk(m, i, 5+i)
	}

	// Track flow s1→r1: vSwitch window samples against guest cwnd.
	var relErr stats.Sample
	var series []string
	cli := flows[0].Cli
	net.ACDC[0].OnRwndComputed = func(f *core.Flow, rwnd int64, _ bool) {
		if f.Key.Dst != net.Addr(5) {
			return
		}
		cwndBytes := float64(cli.Cwnd()) * float64(cli.MSS())
		if cwndBytes <= 0 {
			return
		}
		e := (float64(rwnd) - cwndBytes) / cwndBytes
		if e < 0 {
			e = -e
		}
		relErr.Add(e)
		if len(series) < 25 && net.Sim.Now() > 20*sim.Millisecond {
			series = append(series, fmt.Sprintf("  t=%v rwnd=%d cwnd=%.0f",
				net.Sim.Now(), rwnd, cwndBytes))
		}
	}
	net.Sim.RunFor(cfg.scale(300 * sim.Millisecond))

	r.section("sampled vSwitch RWND vs guest CWND (flow s1→r1):\n%s", joinLines(series))
	r.Metrics["tracking_rel_err_p50"] = relErr.Percentile(50)
	r.Metrics["tracking_rel_err_p90"] = relErr.Percentile(90)
	r.Metrics["samples"] = float64(relErr.N())
	return r
}

func joinLines(ls []string) string {
	out := ""
	for _, l := range ls {
		out += l + "\n"
	}
	return out
}

// Fig10 reproduces Figure 10: with CUBIC guests under full AC/DC
// enforcement, the vSwitch window is the limiting factor — the computed
// RWND sits below the guest's CWND nearly always (ECN feedback is hidden
// from the guest, so its CWND floats high).
func Fig10(cfg RunConfig) *Result {
	r := newResult("fig10", "AC/DC's RWND is the limiting window over CUBIC",
		"AC/DC's RWND < CUBIC's CWND essentially always once the flow leaves slow start")
	scheme := SchemeACDC(1500, "cubic", tcpstack.ECNOff)
	net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, 5)
	for i := 0; i < 5; i++ {
		flows[i] = workload.Bulk(m, i, 5+i)
	}
	cli := flows[0].Cli

	var limited, total int64
	var overwrites int64
	net.ACDC[0].OnRwndComputed = func(f *core.Flow, rwnd int64, over bool) {
		if f.Key.Dst != net.Addr(5) || net.Sim.Now() < 50*sim.Millisecond {
			return
		}
		total++
		if float64(rwnd) < cli.Cwnd()*float64(cli.MSS()) {
			limited++
		}
		if over {
			overwrites++
		}
	}
	net.Sim.RunFor(cfg.scale(300 * sim.Millisecond))
	if total == 0 {
		r.section("no samples — flow never left warmup")
		return r
	}
	r.section("samples=%d  rwnd<guest-cwnd: %.1f%%  ACK rwnd overwritten: %.1f%%",
		total, 100*float64(limited)/float64(total), 100*float64(overwrites)/float64(total))
	r.Metrics["frac_rwnd_limiting"] = float64(limited) / float64(total)
	r.Metrics["frac_overwritten"] = float64(overwrites) / float64(total)
	return r
}

// fig13Combos are the β assignments (on the paper's 4-point scale) per flow.
var fig13Combos = [][]float64{
	{2, 2, 2, 2, 2},
	{2, 2, 1, 1, 1},
	{2, 2, 2, 1, 1},
	{3, 2, 2, 1, 1},
	{3, 3, 2, 2, 1},
	{4, 4, 4, 0, 0},
}

// Fig13 reproduces Figure 13: differentiated throughput via the β-modified
// DCTCP law (Equation 1). Flows with equal β share equally; higher β earns
// more bandwidth; β=0 flows are pinned near the one-MSS floor.
func Fig13(cfg RunConfig) *Result {
	r := newResult("fig13", "QoS: β-based differentiated throughput",
		"Equal β ⇒ equal shares; higher β ⇒ more throughput; [4,4,4,0,0]/4 starves the β=0 flows to near zero")
	warm, measure := cfg.scale(150*sim.Millisecond), cfg.scale(300*sim.Millisecond)
	t := stats.NewTable("betas(/4)", "F1", "F2", "F3", "F4", "F5")
	var monotonic = 0.0
	for ci, combo := range fig13Combos {
		scheme := SchemeACDC(9000, "cubic", tcpstack.ECNOff)
		o := scheme.options(cfg, cfg.seed()+int64(ci))
		base := *scheme.ACDC
		o.ACDCFor = func(host int) *core.Config {
			c := base
			if host < 5 {
				beta := combo[host] / 4
				c.FlowPolicy = func(core.FlowKey) core.Policy {
					p := core.DefaultPolicy()
					p.Beta = beta
					return p
				}
			}
			return &c
		}
		net := topo.Dumbbell(5, o)
		_, flows := dumbbellFlows(net, 5)
		net.Sim.RunFor(warm)
		start := snapshotDelivered(flows)
		net.Sim.RunFor(measure)
		rates := flowRates(flows, start, measure)
		row := []any{fmt.Sprintf("%v", combo)}
		for _, g := range gbps(rates) {
			row = append(row, g)
		}
		t.Row(row...)
		// Shape check: β_i > β_j should imply rate_i >= rate_j (tolerantly).
		ok := true
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if combo[i] > combo[j] && rates[i] < rates[j]*0.8 {
					ok = false
				}
			}
		}
		if ok {
			monotonic++
		}
		r.Metrics[fmt.Sprintf("combo%d_f1_gbps", ci)] = rates[0]
		r.Metrics[fmt.Sprintf("combo%d_f5_gbps", ci)] = rates[4]
	}
	r.table(t)
	r.Metrics["combos_monotonic"] = monotonic
	r.Metrics["combos_total"] = float64(len(fig13Combos))
	return r
}

// Fig14 reproduces Figure 14: the convergence test. A flow joins the
// bottleneck every interval until five run, then they leave one by one.
// DCTCP and AC/DC converge to equal shares at each step; CUBIC struggles.
func Fig14(cfg RunConfig) *Result {
	r := newResult("fig14", "Convergence: flows join/leave every interval",
		"DCTCP and AC/DC step cleanly to fair shares (drop rate 0%); CUBIC converges poorly (drop rate 0.17%)")
	step := cfg.scale(300 * sim.Millisecond)
	win := step / 3
	t := stats.NewTable("scheme", "fairness@5flows", "drop rate", "aggregate Gbps@5flows")
	for _, scheme := range ThreeSchemes(9000) {
		net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
		m := workload.NewManager(net)
		flows := make([]*workload.Messenger, 5)
		// Staggered joins.
		for i := 0; i < 5; i++ {
			i := i
			net.Sim.Schedule(sim.Duration(i)*step, func() {
				flows[i] = workload.Bulk(m, i, 5+i)
			})
		}
		// Run the joining phase.
		net.Sim.RunFor(4 * step)
		// Measurement window with all 5 active (skip transient).
		net.Sim.RunFor(step - win)
		start := snapshotDelivered(flows)
		net.Sim.RunFor(win)
		rates := flowRates(flows, start, win)
		fair := stats.JainFairness(rates)
		var agg float64
		for _, x := range rates {
			agg += x
		}
		t.Row(scheme.Name, fair, net.DropRate(), agg)
		key := schemeKey(scheme.Name)
		r.Metrics[key+"_fairness_5flows"] = fair
		r.Metrics[key+"_droprate"] = net.DropRate()
	}
	r.table(t)
	return r
}

// Fig15 reproduces Figures 15 and 16: ECN coexistence. A CUBIC (no ECN)
// flow and a DCTCP (ECN) flow share a marking bottleneck. Natively the
// switch drops the CUBIC flow's Not-ECT packets above the threshold and it
// starves with huge RTTs; AC/DC marks everything ECN-capable and restores
// the fair share.
func Fig15(cfg RunConfig) *Result {
	r := newResult("fig15", "ECN coexistence: CUBIC vs DCTCP on one fabric",
		"Fig 15a: CUBIC gets little throughput vs DCTCP (loss 0.18%); Fig 15b: near-equal shares under AC/DC; Fig 16: CUBIC RTT collapses from ~10–100 ms to µs-scale")
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)

	run := func(withACDC bool) (cubicG, dctcpG float64, cubicRTT *stats.Sample, drop float64) {
		scheme := SchemeDCTCP(9000) // WRED on
		o := scheme.options(cfg, cfg.seed())
		cubicGuest := guestCfg(9000, "cubic", tcpstack.ECNOff)
		o.GuestFor = func(h int) *tcpstack.Config {
			if h == 0 {
				return &cubicGuest
			}
			return nil
		}
		if withACDC {
			ac := core.DefaultConfig()
			o.ACDC = &ac
		}
		net := topo.Star(3, o)
		m := workload.NewManager(net)
		fC := workload.Bulk(m, 0, 2) // CUBIC, no ECN
		fD := workload.Bulk(m, 1, 2) // DCTCP, ECN
		rtt := &stats.Sample{}
		fC.Cli.OnRTTSample = func(ns int64) {
			if net.Sim.Now() >= warm {
				rtt.Add(float64(ns))
			}
		}
		net.Sim.RunFor(warm)
		s := snapshotDelivered([]*workload.Messenger{fC, fD})
		net.Sim.RunFor(measure)
		rates := flowRates([]*workload.Messenger{fC, fD}, s, measure)
		return rates[0], rates[1], rtt, net.DropRate()
	}

	cN, dN, rttN, dropN := run(false)
	cA, dA, rttA, dropA := run(true)
	t := stats.NewTable("config", "CUBIC Gbps", "DCTCP Gbps", "CUBIC RTT p50 ms", "CUBIC RTT p99 ms", "drop rate")
	t.Row("native", cN, dN, rttN.Percentile(50)/1e6, rttN.Percentile(99)/1e6, dropN)
	t.Row("AC/DC", cA, dA, rttA.Percentile(50)/1e6, rttA.Percentile(99)/1e6, dropA)
	r.table(t)
	r.Metrics["native_cubic_gbps"] = cN
	r.Metrics["native_dctcp_gbps"] = dN
	r.Metrics["acdc_cubic_gbps"] = cA
	r.Metrics["acdc_dctcp_gbps"] = dA
	r.Metrics["native_droprate"] = dropN
	r.Metrics["acdc_droprate"] = dropA
	r.Metrics["native_cubic_rtt_p99_ms"] = rttN.Percentile(99) / 1e6
	r.Metrics["acdc_cubic_rtt_p99_ms"] = rttA.Percentile(99) / 1e6
	return r
}

// Fig17 reproduces Figure 17: the Figure 1 stack zoo, but now under AC/DC —
// the five heterogeneous stacks behave like five DCTCP flows.
func Fig17(cfg RunConfig) *Result {
	r := newResult("fig17", "Five different stacks made fair by AC/DC",
		"AC/DC over {Illinois, CUBIC, Reno, Vegas, HighSpeed} matches all-DCTCP: tight max/min spread, fairness ≈0.99")
	tests := 5
	if cfg.Long {
		tests = 10
	}
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)

	run := func(name string, scheme Scheme, senderCC []string, seedOff int64) float64 {
		t := stats.NewTable("test", "max", "min", "mean", "median")
		var fairs []float64
		for test := 0; test < tests; test++ {
			rates, _ := runDumbbellOnce(scheme, senderCC, cfg, cfg.seed()+seedOff+int64(test), warm, measure)
			var s stats.Sample
			for _, x := range rates {
				s.Add(x)
			}
			t.Row(test+1, s.Max(), s.Min(), s.Mean(), s.Median())
			fairs = append(fairs, stats.JainFairness(rates))
		}
		r.section("%s:", name)
		r.table(t)
		return mean(fairs)
	}

	dctcp := run("Fig 17a — all DCTCP", SchemeDCTCP(9000),
		[]string{"dctcp", "dctcp", "dctcp", "dctcp", "dctcp"}, 0)
	acdc := run("Fig 17b — five different CCs under AC/DC",
		SchemeACDC(9000, "cubic", tcpstack.ECNOff), fig1CCs, 100)
	r.Metrics["dctcp_fairness"] = dctcp
	r.Metrics["acdc_mixed_fairness"] = acdc
	return r
}

// table1Rows lists Table 1's configurations.
var table1Rows = []struct {
	label  string
	scheme func(mtu int) Scheme
}{
	{"CUBIC*", func(mtu int) Scheme { return SchemeCUBIC(mtu) }},
	{"DCTCP*", func(mtu int) Scheme { return SchemeDCTCP(mtu) }},
	{"CUBIC", func(mtu int) Scheme { return SchemeACDC(mtu, "cubic", tcpstack.ECNOff) }},
	{"Reno", func(mtu int) Scheme { return SchemeACDC(mtu, "reno", tcpstack.ECNOff) }},
	{"DCTCP", func(mtu int) Scheme { return SchemeACDC(mtu, "dctcp", tcpstack.ECNDCTCP) }},
	{"Illinois", func(mtu int) Scheme { return SchemeACDC(mtu, "illinois", tcpstack.ECNOff) }},
	{"HighSpeed", func(mtu int) Scheme { return SchemeACDC(mtu, "highspeed", tcpstack.ECNOff) }},
	{"Vegas", func(mtu int) Scheme { return SchemeACDC(mtu, "vegas", tcpstack.ECNOff) }},
}

// Table1 reproduces Table 1: dumbbell RTT percentiles, throughput and
// fairness for CUBIC and DCTCP baselines and for AC/DC over six different
// host stacks, at both MTUs. Every AC/DC row should look like DCTCP*.
func Table1(cfg RunConfig) *Result {
	r := newResult("table1", "AC/DC under many host congestion controls",
		"All AC/DC rows ≈ DCTCP*: p50 RTT ~120–150 µs, p99 ~215–266 µs, 1.88–1.98 Gbps, fairness 0.99; CUBIC* ~3.2–3.4 ms RTT, fairness 0.85–0.98")
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(200*sim.Millisecond)
	mtus := []int{9000}
	if cfg.Long {
		mtus = []int{1500, 9000}
	}
	for _, mtu := range mtus {
		t := stats.NewTable("config", "RTT p50 us", "RTT p99 us", "avg Gbps", "fairness")
		for _, row := range table1Rows {
			scheme := row.scheme(mtu)
			net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
			m, flows := dumbbellFlows(net, 5)
			net.Sim.RunFor(warm)
			p := workload.NewProber(m, 0, 5)
			p.Start()
			start := snapshotDelivered(flows)
			net.Sim.RunFor(measure)
			p.Stop()
			rates := flowRates(flows, start, measure)
			fair := stats.JainFairness(rates)
			t.Row(row.label, p.Samples.Percentile(50)/1e3, p.Samples.Percentile(99)/1e3,
				mean(rates), fair)
			tag := fmt.Sprintf("%s_mtu%d", sanitize(row.label), mtu)
			r.Metrics[tag+"_rtt_p50_us"] = p.Samples.Percentile(50) / 1e3
			r.Metrics[tag+"_tput_gbps"] = mean(rates)
			r.Metrics[tag+"_fairness"] = fair
		}
		r.section("MTU %d:", mtu)
		r.table(t)
	}
	return r
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		case c == '*':
			out = append(out, 's')
		}
	}
	return string(out)
}
