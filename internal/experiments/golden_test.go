package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden experiment reports")

// TestDumbbellFiguresGolden pins the rendered reports of the single-path
// dumbbell figures (fig8, fig18, fig20) at seed 1 to checked-in golden
// files. The simulator is deterministic, so any diff means a behaviour
// change in the packet/link/switch layer — most recently guarded against
// the ECMP/link-lifecycle refactor, which must leave single-path
// forwarding byte-identical. Regenerate deliberately with
//
//	go test ./internal/experiments/ -run TestDumbbellFiguresGolden -update
//
// and justify the diff in the PR.
func TestDumbbellFiguresGolden(t *testing.T) {
	for _, id := range []string{"fig8", "fig18", "fig20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ByID(id)
			if e == nil {
				t.Fatalf("experiment %q not registered", id)
			}
			got := e.Run(RunConfig{Seed: 1}).String()
			path := filepath.Join("testdata", id+"_seed1.golden")
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s report diverged from golden %s\n--- golden ---\n%s\n--- got ---\n%s",
					id, path, want, got)
			}
		})
	}
}

// TestBackendDctcpCutGoldenIdentical is the differential gate for the
// enforcement-backend extraction: selecting "dctcp-cut" explicitly must
// reproduce the default path byte-for-byte on the same golden files the
// default run is pinned to. The refactor moved the congestion test, the
// RWND overwrite, and the round/cut anchors behind the Backend interface;
// this proves the indirection is free — any divergence means the extracted
// backend no longer computes what the inlined code computed.
func TestBackendDctcpCutGoldenIdentical(t *testing.T) {
	for _, id := range []string{"fig8", "fig18", "fig20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ByID(id)
			if e == nil {
				t.Fatalf("experiment %q not registered", id)
			}
			got := e.Run(RunConfig{Seed: 1, Backend: "dctcp-cut"}).String()
			path := filepath.Join("testdata", id+"_seed1.golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run the default golden test with -update first): %v", err)
			}
			if got != string(want) {
				t.Fatalf("explicit dctcp-cut diverged from the default-path golden %s\n--- golden ---\n%s\n--- got ---\n%s",
					path, want, got)
			}
		})
	}
}
