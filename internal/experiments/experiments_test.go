package experiments

import (
	"strings"
	"testing"
)

// These tests assert the *shape* of each reproduced artifact: who wins, by
// roughly what factor, and where the qualitative crossovers fall. They run
// the quick (non -long) configurations.

func run(t *testing.T, id string) *Result {
	t.Helper()
	e := ByID(id)
	if e == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	r := e.Run(RunConfig{Seed: 1})
	t.Logf("\n%s", r.String())
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig6", "fig8", "parkinglot", "fig9", "fig10",
		"fig13", "fig14", "fig15", "fig17", "fig18", "fig20", "fig21", "fig22",
		"fig23", "table1"}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
	if ByID("nope") != nil {
		t.Error("ByID returned something for an unknown id")
	}
}

func TestResultString(t *testing.T) {
	r := newResult("x", "tit", "pap")
	r.section("hello %d", 7)
	r.Metrics["m"] = 1.5
	s := r.String()
	for _, want := range []string{"=== x: tit ===", "paper: pap", "hello 7", "m"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig1")
	// Heterogeneous stacks must be markedly less fair than all-CUBIC.
	if r.Metrics["mixed_fairness"] >= r.Metrics["cubic_fairness"]-0.05 {
		t.Errorf("mixed fairness %.3f not below all-CUBIC %.3f",
			r.Metrics["mixed_fairness"], r.Metrics["cubic_fairness"])
	}
	// Aggressive HighSpeed beats delay-based Vegas by a wide margin.
	if r.Metrics["highspeed_mean_gbps"] < 3*r.Metrics["vegas_mean_gbps"] {
		t.Errorf("highspeed %.2f not ≫ vegas %.2f",
			r.Metrics["highspeed_mean_gbps"], r.Metrics["vegas_mean_gbps"])
	}
}

func TestFig2Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig2")
	// Both rate-limited and unlimited CUBIC must dwarf DCTCP's RTT.
	for _, k := range []string{"CUBIC_RL_p50_ms", "CUBIC_p50_ms"} {
		if r.Metrics[k] < 5*r.Metrics["DCTCP_p50_ms"] {
			t.Errorf("%s %.3fms not ≫ DCTCP %.3fms", k, r.Metrics[k], r.Metrics["DCTCP_p50_ms"])
		}
	}
	if r.Metrics["DCTCP_p50_ms"] > 1 {
		t.Errorf("DCTCP p50 %.3fms should be sub-millisecond", r.Metrics["DCTCP_p50_ms"])
	}
}

func TestFig6Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig6")
	// The CWND-bound and RWND-bound curves must coincide within 15%.
	for _, k := range []string{"max_rel_diff_mtu1500", "max_rel_diff_mtu9000"} {
		if r.Metrics[k] > 0.15 {
			t.Errorf("%s = %.3f, want ≤ 0.15", k, r.Metrics[k])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig8")
	// Equal throughput across schemes (±10%).
	for _, k := range []string{"cubic_avg_gbps", "dctcp_avg_gbps", "acdc_avg_gbps"} {
		if r.Metrics[k] < 1.7 || r.Metrics[k] > 2.1 {
			t.Errorf("%s = %.2f, want ≈ 1.98", k, r.Metrics[k])
		}
	}
	// AC/DC tracks DCTCP's RTT (within 3x either way) and both beat CUBIC
	// by at least 5x at the median.
	a, d, c := r.Metrics["acdc_rtt_p50_ms"], r.Metrics["dctcp_rtt_p50_ms"], r.Metrics["cubic_rtt_p50_ms"]
	if a > 3*d || d > 3*a {
		t.Errorf("AC/DC p50 %.3f vs DCTCP %.3f diverge", a, d)
	}
	if c < 5*d {
		t.Errorf("CUBIC p50 %.3f not ≫ DCTCP %.3f", c, d)
	}
	if r.Metrics["acdc_fairness"] < 0.95 {
		t.Errorf("AC/DC fairness %.3f", r.Metrics["acdc_fairness"])
	}
}

func TestParkingLotShape(t *testing.T) {
	t.Parallel()
	r := run(t, "parkinglot")
	if r.Metrics["acdc_fairness"] < 0.95 || r.Metrics["dctcp_fairness"] < 0.9 {
		t.Errorf("fairness: acdc %.3f dctcp %.3f", r.Metrics["acdc_fairness"], r.Metrics["dctcp_fairness"])
	}
	if r.Metrics["cubic_fairness"] > r.Metrics["acdc_fairness"] {
		t.Errorf("CUBIC fairness %.3f should trail AC/DC %.3f",
			r.Metrics["cubic_fairness"], r.Metrics["acdc_fairness"])
	}
	if r.Metrics["cubic_rtt_p50_ms"] < 3*r.Metrics["acdc_rtt_p50_ms"] {
		t.Errorf("CUBIC RTT %.3f not ≫ AC/DC %.3f",
			r.Metrics["cubic_rtt_p50_ms"], r.Metrics["acdc_rtt_p50_ms"])
	}
}

func TestFig9Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig9")
	if r.Metrics["samples"] < 1000 {
		t.Fatalf("only %v tracking samples", r.Metrics["samples"])
	}
	// Median tracking error within 10%, p90 within 25%.
	if r.Metrics["tracking_rel_err_p50"] > 0.10 {
		t.Errorf("median tracking error %.3f", r.Metrics["tracking_rel_err_p50"])
	}
	if r.Metrics["tracking_rel_err_p90"] > 0.25 {
		t.Errorf("p90 tracking error %.3f", r.Metrics["tracking_rel_err_p90"])
	}
}

func TestFig10Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig10")
	if r.Metrics["frac_rwnd_limiting"] < 0.95 {
		t.Errorf("RWND limiting only %.3f of the time", r.Metrics["frac_rwnd_limiting"])
	}
	if r.Metrics["frac_overwritten"] < 0.95 {
		t.Errorf("RWND overwritten only %.3f of ACKs", r.Metrics["frac_overwritten"])
	}
}

func TestFig13Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig13")
	if r.Metrics["combos_monotonic"] < r.Metrics["combos_total"]-1 {
		t.Errorf("β ordering held in only %v/%v combos",
			r.Metrics["combos_monotonic"], r.Metrics["combos_total"])
	}
	// In [4,4,4,0,0]/4 the β=1 flows must clearly beat the β=0 flows.
	if r.Metrics["combo5_f1_gbps"] < 1.2*r.Metrics["combo5_f5_gbps"] {
		t.Errorf("β=1 flow %.2f not above β=0 flow %.2f",
			r.Metrics["combo5_f1_gbps"], r.Metrics["combo5_f5_gbps"])
	}
}

func TestFig14Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig14")
	if r.Metrics["dctcp_fairness_5flows"] < 0.95 || r.Metrics["acdc_fairness_5flows"] < 0.95 {
		t.Errorf("convergence fairness: dctcp %.3f acdc %.3f",
			r.Metrics["dctcp_fairness_5flows"], r.Metrics["acdc_fairness_5flows"])
	}
	if r.Metrics["cubic_fairness_5flows"] > r.Metrics["acdc_fairness_5flows"]-0.05 {
		t.Errorf("CUBIC fairness %.3f should clearly trail AC/DC %.3f",
			r.Metrics["cubic_fairness_5flows"], r.Metrics["acdc_fairness_5flows"])
	}
	if r.Metrics["cubic_droprate"] <= 0 {
		t.Error("CUBIC should drop during convergence")
	}
	if r.Metrics["acdc_droprate"] != 0 || r.Metrics["dctcp_droprate"] != 0 {
		t.Error("DCTCP/AC-DC should not drop during convergence")
	}
}

func TestFig15Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig15")
	// Native: ECN-incapable CUBIC starves against DCTCP.
	if r.Metrics["native_cubic_gbps"] > 0.2*r.Metrics["native_dctcp_gbps"] {
		t.Errorf("native CUBIC %.2f should starve vs DCTCP %.2f",
			r.Metrics["native_cubic_gbps"], r.Metrics["native_dctcp_gbps"])
	}
	if r.Metrics["native_droprate"] <= 0 {
		t.Error("native coexistence should drop Not-ECT packets")
	}
	// AC/DC: near-equal shares, no drops.
	ratio := r.Metrics["acdc_cubic_gbps"] / r.Metrics["acdc_dctcp_gbps"]
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("AC/DC share ratio %.2f, want ≈1", ratio)
	}
	if r.Metrics["acdc_droprate"] != 0 {
		t.Error("AC/DC coexistence should not drop")
	}
	if r.Metrics["acdc_cubic_rtt_p99_ms"] > r.Metrics["native_cubic_rtt_p99_ms"] {
		t.Error("AC/DC should reduce the CUBIC flow's tail RTT")
	}
}

func TestFig17Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig17")
	if r.Metrics["acdc_mixed_fairness"] < 0.97 {
		t.Errorf("AC/DC mixed-stack fairness %.3f, want ≈0.99", r.Metrics["acdc_mixed_fairness"])
	}
	if r.Metrics["dctcp_fairness"] < 0.97 {
		t.Errorf("all-DCTCP fairness %.3f", r.Metrics["dctcp_fairness"])
	}
}

func TestFig18Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig18")
	// Comparable throughput at 47 senders.
	for _, k := range []string{"cubic_47_avg_mbps", "dctcp_47_avg_mbps", "acdc_47_avg_mbps"} {
		if r.Metrics[k] < 150 || r.Metrics[k] > 260 {
			t.Errorf("%s = %.0f, want ≈ 210", k, r.Metrics[k])
		}
	}
	// DCTCP and AC/DC slash median RTT vs CUBIC (paper: −82% / −97%).
	c47 := r.Metrics["cubic_47_rtt_p50_ms"]
	if r.Metrics["dctcp_47_rtt_p50_ms"] > 0.4*c47 || r.Metrics["acdc_47_rtt_p50_ms"] > 0.4*c47 {
		t.Errorf("incast RTT: cubic %.2f dctcp %.2f acdc %.2f",
			c47, r.Metrics["dctcp_47_rtt_p50_ms"], r.Metrics["acdc_47_rtt_p50_ms"])
	}
	// DCTCP's RTT grows with fan-in (the 2-packet floor effect).
	if r.Metrics["dctcp_47_rtt_p50_ms"] < r.Metrics["dctcp_16_rtt_p50_ms"] {
		t.Error("DCTCP incast RTT should grow with sender count")
	}
	// Zero drops for the ECN schemes; CUBIC drops.
	if r.Metrics["dctcp_47_droprate"] != 0 || r.Metrics["acdc_47_droprate"] != 0 {
		t.Error("ECN schemes dropped in incast")
	}
	if r.Metrics["cubic_47_droprate"] <= 0 {
		t.Error("CUBIC should drop in incast")
	}
	if r.Metrics["acdc_47_fairness"] < 0.95 {
		t.Errorf("AC/DC incast fairness %.3f", r.Metrics["acdc_47_fairness"])
	}
	// Datapath telemetry: deep incast must show the fabric marking CE and
	// the vSwitches actively squeezing windows.
	if r.Metrics["acdc_ce_fraction"] <= 0 {
		t.Error("AC/DC incast telemetry shows zero CE fraction")
	}
	if r.Metrics["acdc_rwnd_rewrites"] <= 0 {
		t.Error("AC/DC incast telemetry shows zero RWND rewrites")
	}
	if len(r.Telemetry) == 0 {
		t.Error("fig18 recorded no telemetry")
	}
}

func TestFig20Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig20")
	// Tail RTT through the hot port: CUBIC ≫ DCTCP ≈ AC/DC.
	if r.Metrics["cubic_rtt_p999_ms"] < 5*r.Metrics["acdc_rtt_p999_ms"] {
		t.Errorf("CUBIC p99.9 %.2f not ≫ AC/DC %.2f",
			r.Metrics["cubic_rtt_p999_ms"], r.Metrics["acdc_rtt_p999_ms"])
	}
	if r.Metrics["cubic_droprate"] <= 0 {
		t.Error("CUBIC should drop on the hot port")
	}
	if r.Metrics["dctcp_droprate"] != 0 || r.Metrics["acdc_droprate"] != 0 {
		t.Error("ECN schemes dropped")
	}
}

func macroShape(t *testing.T, r *Result, prefix string) {
	t.Helper()
	c, d, a := r.Metrics[prefix+"cubic_mice_p50_ms"], r.Metrics[prefix+"dctcp_mice_p50_ms"], r.Metrics[prefix+"acdc_mice_p50_ms"]
	if d > 0.6*c || a > 0.6*c {
		t.Errorf("%smice p50: cubic %.3f dctcp %.3f acdc %.3f — expected ≥40%% reduction",
			prefix, c, d, a)
	}
	// AC/DC within 2x of DCTCP (they should be near-identical).
	if a > 2*d {
		t.Errorf("%sAC/DC mice p50 %.3f diverges from DCTCP %.3f", prefix, a, d)
	}
}

func TestFig21Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig21")
	macroShape(t, r, "")
}

func TestFig22Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig22")
	// Shuffle mice tails: the ECN schemes avoid CUBIC's loss-driven tail.
	if r.Metrics["dctcp_mice_p999_ms"] > 0.5*r.Metrics["cubic_mice_p999_ms"] {
		t.Errorf("shuffle tail: dctcp %.2f vs cubic %.2f",
			r.Metrics["dctcp_mice_p999_ms"], r.Metrics["cubic_mice_p999_ms"])
	}
	if r.Metrics["acdc_mice_p999_ms"] > 0.5*r.Metrics["cubic_mice_p999_ms"] {
		t.Errorf("shuffle tail: acdc %.2f vs cubic %.2f",
			r.Metrics["acdc_mice_p999_ms"], r.Metrics["cubic_mice_p999_ms"])
	}
}

func TestFig23Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "fig23")
	macroShape(t, r, "web-search_")
	macroShape(t, r, "data-mining_")
}

func TestTable1Shape(t *testing.T) {
	t.Parallel()
	r := run(t, "table1")
	// Every AC/DC host stack must land in DCTCP*'s regime at 9K MTU.
	base := r.Metrics["dctcps_mtu9000_rtt_p50_us"]
	for _, cc := range []string{"cubic", "reno", "dctcp", "illinois", "highspeed", "vegas"} {
		got := r.Metrics[cc+"_mtu9000_rtt_p50_us"]
		if got > 3*base {
			t.Errorf("AC/DC+%s p50 RTT %.0fus vs DCTCP* %.0fus", cc, got, base)
		}
		if f := r.Metrics[cc+"_mtu9000_fairness"]; f < 0.95 {
			t.Errorf("AC/DC+%s fairness %.3f", cc, f)
		}
		if tp := r.Metrics[cc+"_mtu9000_tput_gbps"]; tp < 1.7 {
			t.Errorf("AC/DC+%s tput %.2f", cc, tp)
		}
	}
	// And CUBIC* must be an order of magnitude worse on RTT.
	if r.Metrics["cubics_mtu9000_rtt_p50_us"] < 5*base {
		t.Errorf("CUBIC* p50 %.0fus not ≫ DCTCP* %.0fus",
			r.Metrics["cubics_mtu9000_rtt_p50_us"], base)
	}
}
