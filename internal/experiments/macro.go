package experiments

import (
	"fmt"

	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/topo"
	"acdc/internal/trace"
	"acdc/internal/workload"
)

// Fig18 reproduces Figures 18 and 19: many-to-one incast with 16/32/40/47
// senders. DCTCP and AC/DC keep throughput and fairness at CUBIC's level
// while slashing RTT and eliminating drops; at high fan-in AC/DC's
// byte-granularity RWND floor (1 MSS) beats host DCTCP's 2-packet CWND
// floor, so AC/DC's RTT stays lower as senders scale.
func Fig18(cfg RunConfig) *Result {
	r := newResult("fig18", "Incast: throughput, fairness, RTT, drops",
		"Tput/fairness comparable across schemes (fairness >0.99); at 47 senders DCTCP cuts median RTT 82%, AC/DC 97% vs CUBIC; drop rate 0% for DCTCP and AC/DC")
	fanins := []int{16, 32, 40, 47}
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(200*sim.Millisecond)
	schemes := ThreeSchemes(9000)
	// §5.2: "ACEDC controls RWND (which is in bytes) … RWND's lowest value
	// can be much smaller than 2*MSS". Give AC/DC the sub-MSS floor its
	// byte-granular windows permit; host DCTCP is stuck at 2 packets.
	schemes[2].ACDC.MinRwndBytes = int64((9000 - 40) / 2)
	for _, scheme := range schemes {
		t := stats.NewTable("senders", "avg Mbps", "fairness", "RTT p50 ms", "RTT p99.9 ms", "drop %")
		for _, n := range fanins {
			// n senders, 1 receiver, plus 1 prober host through the same
			// congested downlink.
			net := topo.Star(n+2, scheme.options(cfg, cfg.seed()+int64(n)))
			m := workload.NewManager(net)
			senders := make([]int, n)
			for i := range senders {
				senders[i] = i
			}
			recv := n
			// Dial the prober before congestion exists (sockperf's
			// connection is long-lived in the paper's runs).
			p := workload.NewProber(m, n+1, recv)
			flows := workload.Incast(m, senders, recv)
			net.Sim.RunFor(warm)
			p.Start()
			start := snapshotDelivered(flows)
			// Record the datapath-metrics timeline at the deepest fan-in —
			// the run where ECN marking and window squeezing peak.
			var tl *Telemetry
			if n == fanins[len(fanins)-1] {
				tl = watchFleet(net, fmt.Sprintf("%s incast %d:1", scheme.Name, n), measure/6)
			}
			net.Sim.RunFor(measure)
			p.Stop()
			if tl != nil {
				r.telemetry(tl)
				key := schemeKey(scheme.Name)
				r.Metrics[key+"_ce_fraction"] = tl.CEFraction()
				r.Metrics[key+"_rwnd_rewrites"] = float64(tl.RwndRewrites())
			}
			rates := flowRates(flows, start, measure)
			fair := stats.JainFairness(rates)
			t.Row(n, mean(rates)*1000, fair,
				p.Samples.Percentile(50)/1e6, p.Samples.Percentile(99.9)/1e6,
				net.DropRate()*100)
			key := fmt.Sprintf("%s_%d", schemeKey(scheme.Name), n)
			r.Metrics[key+"_avg_mbps"] = mean(rates) * 1000
			r.Metrics[key+"_fairness"] = fair
			r.Metrics[key+"_rtt_p50_ms"] = p.Samples.Percentile(50) / 1e6
			r.Metrics[key+"_rtt_p999_ms"] = p.Samples.Percentile(99.9) / 1e6
			r.Metrics[key+"_droprate"] = net.DropRate()
		}
		r.section("%s:", scheme.Name)
		r.table(t)
	}
	return r
}

// Fig20 reproduces Figure 20: congest 47 of 48 ports (46 hosts in group A
// send all-to-all plus a 46-to-1 incast into B1) and measure RTT from B2 to
// B1 through the hottest port. CUBIC's 99.9th percentile explodes with its
// ~4% hot-port drop rate; DCTCP and AC/DC stay flat with zero drops.
func Fig20(cfg RunConfig) *Result {
	r := newResult("fig20", "All ports congested: RTT through the hot port",
		"Avg tput ≈ equal (214/214/201 Mbps); CUBIC p99.9 RTT ~100 ms (0.34% loss, 4% on hot port); DCTCP/AC-DC: 0% loss, p99.9 in the low ms")
	groupA := 16
	if cfg.Long {
		groupA = 46
	}
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(200*sim.Millisecond)
	t := stats.NewTable("scheme", "avg flow Mbps", "fairness", "RTT p50 ms", "RTT p99 ms", "RTT p99.9 ms", "drop %")
	for _, scheme := range ThreeSchemes(9000) {
		net := topo.Star(groupA+2, scheme.options(cfg, cfg.seed()))
		m := workload.NewManager(net)
		b1, b2 := groupA, groupA+1
		var flows []*workload.Messenger
		for i := 0; i < groupA; i++ {
			// 4 intra-A flows + 1 incast flow into B1 per host.
			for j := 1; j <= 4; j++ {
				flows = append(flows, workload.Bulk(m, i, (i+j)%groupA))
			}
			flows = append(flows, workload.Bulk(m, i, b1))
		}
		p := workload.NewProber(m, b2, b1) // dialed before congestion
		net.Sim.RunFor(warm)
		p.Start()
		start := snapshotDelivered(flows)
		tl := watchFleet(net, scheme.Name+" all-ports", measure/6)
		net.Sim.RunFor(measure)
		p.Stop()
		r.telemetry(tl)
		rates := flowRates(flows, start, measure)
		fair := stats.JainFairness(rates)
		t.Row(scheme.Name, mean(rates)*1000, fair,
			p.Samples.Percentile(50)/1e6, p.Samples.Percentile(99)/1e6,
			p.Samples.Percentile(99.9)/1e6, net.DropRate()*100)
		key := schemeKey(scheme.Name)
		r.Metrics[key+"_avg_mbps"] = mean(rates) * 1000
		r.Metrics[key+"_rtt_p50_ms"] = p.Samples.Percentile(50) / 1e6
		r.Metrics[key+"_rtt_p999_ms"] = p.Samples.Percentile(99.9) / 1e6
		r.Metrics[key+"_droprate"] = net.DropRate()
	}
	r.table(t)
	return r
}

// macroFCT runs one of the FCT workloads under the three schemes and
// reports mice/background percentiles.
func macroFCT(r *Result, cfg RunConfig, launch func(m *workload.Manager, fcts *workload.FCTs), runFor sim.Duration) {
	t := stats.NewTable("scheme", "mice p50 ms", "mice p99.9 ms", "bg p50 ms", "bg p99.9 ms", "mice n", "bg n")
	for _, scheme := range ThreeSchemes(9000) {
		net := topo.Star(17, scheme.options(cfg, cfg.seed()))
		m := workload.NewManager(net)
		var fcts workload.FCTs
		launch(m, &fcts)
		tl := watchFleet(net, scheme.Name+" fct", runFor/8)
		net.Sim.RunFor(runFor)
		r.telemetry(tl)
		t.Row(scheme.Name,
			fcts.Mice.Percentile(50)/1e6, fcts.Mice.Percentile(99.9)/1e6,
			fcts.Background.Percentile(50)/1e6, fcts.Background.Percentile(99.9)/1e6,
			fcts.Mice.N(), fcts.Background.N())
		key := schemeKey(scheme.Name)
		r.Metrics[key+"_mice_p50_ms"] = fcts.Mice.Percentile(50) / 1e6
		r.Metrics[key+"_mice_p999_ms"] = fcts.Mice.Percentile(99.9) / 1e6
		r.Metrics[key+"_bg_p50_ms"] = fcts.Background.Percentile(50) / 1e6
		r.Sections = append(r.Sections, cdfBlock(scheme.Name+" mice FCT", &fcts.Mice, 1e6, "ms", 10))
	}
	r.table(t)
}

// Fig21 reproduces Figure 21: the concurrent stride workload. DCTCP and
// AC/DC cut mice FCTs by ~75% at the median and >90% at the 99.9th
// percentile; background FCTs are similar or better.
func Fig21(cfg RunConfig) *Result {
	r := newResult("fig21", "Concurrent stride FCTs",
		"Mice: DCTCP/AC-DC reduce median FCT 77%/76% and p99.9 91%/93% vs CUBIC; background flows comparable")
	// Scaled stride: 16MB background (vs 512MB), mice every 2ms (vs 100ms).
	strideCfg := workload.StrideConfig{
		N: 17, BgBytes: 16 << 20, MiceBytes: 16 << 10, MicePeriod: cfg.scale(2 * sim.Millisecond),
	}
	if cfg.Long {
		strideCfg.BgBytes = 128 << 20
	}
	macroFCT(r, cfg, func(m *workload.Manager, fcts *workload.FCTs) {
		workload.Stride(m, strideCfg, fcts)
	}, cfg.scale(400*sim.Millisecond))
	return r
}

// Fig22 reproduces Figure 22: the shuffle workload. Mice improve like
// stride (median −72%, tail −55/−73%); the 512MB shuffle transfers
// themselves complete in near-identical time across schemes.
func Fig22(cfg RunConfig) *Result {
	r := newResult("fig22", "Shuffle FCTs",
		"Mice: DCTCP/AC-DC reduce median FCT 72%/71%, p99.9 55%/73%; large-transfer FCTs almost identical across schemes")
	shufCfg := workload.ShuffleConfig{
		N: 17, BgBytes: 8 << 20, Concurrency: 2,
		MiceBytes: 16 << 10, MicePeriod: cfg.scale(2 * sim.Millisecond),
	}
	if cfg.Long {
		shufCfg.BgBytes = 64 << 20
	}
	macroFCT(r, cfg, func(m *workload.Manager, fcts *workload.FCTs) {
		workload.Shuffle(m, shufCfg, fcts, nil)
	}, cfg.scale(400*sim.Millisecond))
	return r
}

// Fig23 reproduces Figure 23: closed-loop trace-driven workloads over the
// web-search and data-mining flow-size distributions; mice (<10KB) FCT CDFs.
func Fig23(cfg RunConfig) *Result {
	r := newResult("fig23", "Trace-driven (web-search, data-mining) mice FCTs",
		"Web-search: median mice FCT −77%/−76% (DCTCP/AC-DC), p99.9 −50%/−55%; data-mining: median −72%/−73%, p99.9 −36%/−53%")
	for _, d := range []*trace.Dist{trace.WebSearch(), trace.DataMining()} {
		r.section("--- %s workload ---", d.Name)
		tcfg := workload.TraceConfig{N: 17, AppsPerServer: 5, Dist: d, MiceCutoff: 10 << 10}
		macroFCT(r, cfg, func(m *workload.Manager, fcts *workload.FCTs) {
			workload.TraceDriven(m, tcfg, fcts)
		}, cfg.scale(400*sim.Millisecond))
		// Re-key the metrics by distribution (macroFCT wrote generic keys).
		for _, k := range []string{"cubic", "dctcp", "acdc"} {
			for _, suffix := range []string{"_mice_p50_ms", "_mice_p999_ms", "_bg_p50_ms"} {
				if v, ok := r.Metrics[k+suffix]; ok {
					r.Metrics[d.Name+"_"+k+suffix] = v
					delete(r.Metrics, k+suffix)
				}
			}
		}
	}
	return r
}
