package experiments

import (
	"runtime"
	"sync"

	"acdc/internal/metrics"
)

// Parallel experiment engine. Every experiment builds its own topo.Net with
// its own sim.Simulator, packet.Pool, and metric registries, so runs share no
// mutable state and can execute on separate goroutines. The engine is a
// fixed worker pool over an index-addressed result slice: output order is
// the input order regardless of which worker finishes first, so a parallel
// run's report is byte-identical to a sequential one.

// Job is one experiment invocation in a batch.
type Job struct {
	Exp Experiment
	Cfg RunConfig
}

// Workers normalizes a worker-count request: n > 0 is taken as-is, anything
// else means one worker per CPU.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Sweep runs the jobs over `workers` goroutines and returns results in job
// order. workers <= 1 runs inline on the calling goroutine — the sequential
// path spawns nothing, so single-threaded determinism needs no qualifiers.
// onDone, when non-nil, is invoked on the calling goroutine strictly in job
// order (not completion order) as each result becomes available — suitable
// for streaming a report while later experiments still run.
func Sweep(jobs []Job, workers int, onDone func(i int, r *Result)) []*Result {
	results := make([]*Result, len(jobs))
	if Workers(workers) <= 1 || len(jobs) <= 1 {
		for i, j := range jobs {
			results[i] = j.Exp.Run(j.Cfg)
			if onDone != nil {
				onDone(i, results[i])
			}
		}
		return results
	}

	w := Workers(workers)
	if w > len(jobs) {
		w = len(jobs)
	}
	next := make(chan int) // job indices, handed out in order
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = jobs[i].Exp.Run(jobs[i].Cfg)
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range jobs {
			next <- i
		}
		close(next)
	}()
	// Consume strictly in job order so onDone streams a deterministic report.
	for i := range jobs {
		<-done[i]
		if onDone != nil {
			onDone(i, results[i])
		}
	}
	wg.Wait()
	return results
}

// RunAll runs each experiment with the same config over `workers` workers.
func RunAll(exps []Experiment, cfg RunConfig, workers int, onDone func(i int, r *Result)) []*Result {
	jobs := make([]Job, len(exps))
	for i, e := range exps {
		jobs[i] = Job{Exp: e, Cfg: cfg}
	}
	return Sweep(jobs, workers, onDone)
}

// MergeTelemetry folds the final fleet snapshots of every telemetry stream
// in the given results (in result order, then stream order) into one
// aggregate — the whole batch's datapath totals. Snapshot merging is
// key-wise summation, so the result is independent of worker scheduling.
func MergeTelemetry(results []*Result) metrics.Snapshot {
	var snaps []metrics.Snapshot
	for _, r := range results {
		if r == nil {
			continue
		}
		for _, tl := range r.Telemetry {
			if tl != nil {
				snaps = append(snaps, tl.Final)
			}
		}
	}
	return metrics.Merge(snaps...)
}
