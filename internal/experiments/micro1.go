package experiments

import (
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// fig1CCs is the paper's Figure 1 stack assortment.
var fig1CCs = []string{"illinois", "cubic", "reno", "vegas", "highspeed"}

// runDumbbellOnce builds a dumbbell with per-sender guest configs, runs bulk
// flows with a warmup, and returns per-flow Gbps over the measurement window
// plus the net (for counters).
func runDumbbellOnce(scheme Scheme, senderCC []string, cfg RunConfig, testSeed int64,
	warm, measure sim.Duration) ([]float64, *topo.Net) {
	pairs := len(senderCC)
	o := scheme.options(cfg, testSeed)
	if senderCC != nil {
		base := scheme.Guest
		o.GuestFor = func(h int) *tcpstack.Config {
			if h < pairs && senderCC[h] != "" {
				g := base
				g.CC = senderCC[h]
				if senderCC[h] == "dctcp" && scheme.ACDC == nil {
					g.ECN = tcpstack.ECNDCTCP
				}
				return &g
			}
			return nil
		}
	}
	net := topo.Dumbbell(pairs, o)
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, pairs)
	// Jittered starts: repeated tests differ, as they do on hardware.
	for i := 0; i < pairs; i++ {
		i := i
		net.Sim.Schedule(sim.Duration(net.Sim.Rand().Int63n(int64(2*sim.Millisecond))), func() {
			flows[i] = workload.Bulk(m, i, pairs+i)
		})
	}
	net.Sim.RunFor(warm)
	start := snapshotDelivered(flows)
	net.Sim.RunFor(measure)
	return flowRates(flows, start, measure), net
}

// Fig1 reproduces Figure 1: five flows with five different congestion
// controls on the dumbbell (a), versus all flows CUBIC (b). Aggressive
// stacks (Illinois, HighSpeed) grab bandwidth; homogeneous CUBIC is fairer.
func Fig1(cfg RunConfig) *Result {
	r := newResult("fig1", "Different congestion controls lead to unfairness",
		"Fig 1a: Illinois/HighSpeed ≈ 3-4 Gbps while Vegas/Reno starve; Fig 1b: all-CUBIC roughly fair around 2 Gbps")
	tests := 5
	if cfg.Long {
		tests = 10
	}
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)

	ta := stats.NewTable(append([]string{"test"}, fig1CCs...)...)
	var mixFair, perCC = []float64{}, map[string][]float64{}
	for test := 0; test < tests; test++ {
		rates, _ := runDumbbellOnce(SchemeCUBIC(9000), fig1CCs, cfg, cfg.seed()+int64(test), warm, measure)
		row := make([]any, 0, 6)
		row = append(row, test+1)
		for i, g := range gbps(rates) {
			row = append(row, g)
			perCC[fig1CCs[i]] = append(perCC[fig1CCs[i]], rates[i])
		}
		ta.Row(row...)
		mixFair = append(mixFair, stats.JainFairness(rates))
	}
	r.section("Fig 1a — five different CCs, per-flow Gbps:")
	r.table(ta)

	tb := stats.NewTable("test", "max", "min", "mean", "median")
	var cubicFair []float64
	for test := 0; test < tests; test++ {
		rates, _ := runDumbbellOnce(SchemeCUBIC(9000), []string{"cubic", "cubic", "cubic", "cubic", "cubic"},
			cfg, cfg.seed()+100+int64(test), warm, measure)
		var s stats.Sample
		for _, x := range rates {
			s.Add(x)
		}
		tb.Row(test+1, s.Max(), s.Min(), s.Mean(), s.Median())
		cubicFair = append(cubicFair, stats.JainFairness(rates))
	}
	r.section("Fig 1b — all CUBIC, per-test spread (Gbps):")
	r.table(tb)

	r.Metrics["mixed_fairness"] = mean(mixFair)
	r.Metrics["cubic_fairness"] = mean(cubicFair)
	r.Metrics["illinois_mean_gbps"] = mean(perCC["illinois"])
	r.Metrics["vegas_mean_gbps"] = mean(perCC["vegas"])
	r.Metrics["highspeed_mean_gbps"] = mean(perCC["highspeed"])
	return r
}

// Fig2 reproduces Figure 2: even when CUBIC is rate-limited to its exact
// 2 Gbps fair share (the paper uses hardware limiters; we interpose a
// token-bucket Shaper per sender), it fills the limiter/switch buffers and
// RTT spreads over milliseconds, while DCTCP — with no rate limiting at all
// — keeps RTT in the microseconds.
func Fig2(cfg RunConfig) *Result {
	r := newResult("fig2", "CUBIC fills buffers; DCTCP keeps RTT low",
		"CUBIC (RL=2Gbps) RTT spread over 1–10 ms; DCTCP concentrated well below 1 ms")
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)
	configs := []struct {
		name   string
		scheme Scheme
		shaped bool
	}{
		{"CUBIC (RL=2Gbps)", SchemeCUBIC(9000), true},
		{"CUBIC (unlimited)", SchemeCUBIC(9000), false},
		{"DCTCP", SchemeDCTCP(9000), false},
	}
	for _, c := range configs {
		rtt := runDumbbellRTT(c.scheme, cfg, warm, measure, c.shaped)
		r.section("%s: %s", c.name, rttSummary(rtt))
		r.Sections = append(r.Sections, cdfBlock(c.name+" RTT", rtt, 1e6, "ms", 10))
		key := c.name
		if c.shaped {
			key = "CUBIC_RL"
		} else if c.name == "CUBIC (unlimited)" {
			key = "CUBIC"
		}
		r.Metrics[key+"_p50_ms"] = rtt.Percentile(50) / 1e6
		r.Metrics[key+"_p99_ms"] = rtt.Percentile(99) / 1e6
	}
	return r
}

// runDumbbellRTT runs 5 bulk flows and an RTT prober across the bottleneck,
// returning RTT samples from the measurement window. With shaped set, each
// sender's uplink passes a 2 Gbps token-bucket limiter with a 2MB buffer
// (a hardware rate limiter's queue).
func runDumbbellRTT(scheme Scheme, cfg RunConfig, warm, measure sim.Duration, shaped bool) *stats.Sample {
	net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
	if shaped {
		for i := 0; i < 5; i++ {
			nic := net.Hosts[i].NIC
			sh := netsim.NewShaper(net.Sim, 2e9, 64<<10, nic.Dst)
			sh.MaxQueueBytes = 512 << 10
			nic.Dst = sh
		}
	}
	m, _ := dumbbellFlows(net, 5)
	net.Sim.RunFor(warm)
	p := workload.NewProber(m, 0, 5) // s1 → r1 across the trunk
	p.Start()
	net.Sim.RunFor(measure)
	p.Stop()
	return p.Samples
}

// Fig6 reproduces Figure 6: the throughput of a single flow on an otherwise
// idle path when (a) the host bounds CWND via snd_cwnd_clamp versus (b)
// AC/DC bounds RWND — the two mechanisms must produce the same curve.
func Fig6(cfg RunConfig) *Result {
	r := newResult("fig6", "Bounding RWND is equivalent to bounding CWND",
		"Throughput rises with the clamp until it saturates the link; CWND and RWND curves coincide (both MTUs)")
	// Sweeps start at 2 MSS: the host stack cannot express cwnd=1 (Linux
	// floors at 2 packets outside timeout recovery), so there is no
	// host-side point to compare the RWND bound against below 2.
	for _, mtu := range []int{1500, 9000} {
		var clamps []int
		if mtu == 1500 {
			clamps = []int{2, 5, 10, 25, 50, 100, 150, 200, 250}
		} else {
			clamps = []int{2, 3, 4, 6, 8, 10, 12, 16}
		}
		t := stats.NewTable("clamp(MSS)", "cwnd-bound Gbps", "rwnd-bound Gbps")
		var maxRel float64
		for _, c := range clamps {
			a := fig6Tput(cfg, mtu, c, false)
			b := fig6Tput(cfg, mtu, c, true)
			t.Row(c, a, b)
			rel := (a - b) / a
			if rel < 0 {
				rel = -rel
			}
			if rel > maxRel {
				maxRel = rel
			}
		}
		r.section("MTU %d:", mtu)
		r.table(t)
		r.Metrics[fmt.Sprintf("max_rel_diff_mtu%d", mtu)] = maxRel
	}
	return r
}

func fig6Tput(cfg RunConfig, mtu, clampMSS int, viaRwnd bool) float64 {
	guest := guestCfg(mtu, "cubic", tcpstack.ECNOff)
	o := topo.Options{Guest: guest, Seed: cfg.seed(), Audit: cfg.Audit}
	if viaRwnd {
		ac := core.DefaultConfig()
		ac.MTU = mtu
		mss := int64(mtu - 40)
		ac.FlowPolicy = func(core.FlowKey) core.Policy {
			p := core.DefaultPolicy()
			p.RwndClampBytes = int64(clampMSS) * mss
			return p
		}
		o.ACDC = &ac
	} else {
		guest.CwndClamp = float64(clampMSS)
		o.Guest = guest
	}
	net := topo.Star(2, o)
	m := workload.NewManager(net)
	f := workload.Bulk(m, 0, 1)
	warm, measure := cfg.scale(30*sim.Millisecond), cfg.scale(100*sim.Millisecond)
	net.Sim.RunFor(warm)
	start := f.Delivered()
	net.Sim.RunFor(measure)
	return float64(f.Delivered()-start) * 8 / measure.Seconds() / 1e9
}

// Fig8 reproduces Figure 8 and the §5.1 "canonical topologies" text: on the
// dumbbell, AC/DC's per-flow throughput equals CUBIC's and DCTCP's
// (~2 Gbps), while its RTT matches DCTCP and beats CUBIC by an order of
// magnitude.
func Fig8(cfg RunConfig) *Result {
	r := newResult("fig8", "Dumbbell: AC/DC matches DCTCP throughput and RTT",
		"All schemes ≈1.98 Gbps per flow; RTT: CUBIC ~3 ms, DCTCP and AC/DC ~100–300 µs")
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)
	t := stats.NewTable("scheme", "avg Gbps", "fairness", "RTT p50 ms", "RTT p99.9 ms", "drop rate")
	for _, scheme := range ThreeSchemes(9000) {
		net := topo.Dumbbell(5, scheme.options(cfg, cfg.seed()))
		m, flows := dumbbellFlows(net, 5)
		net.Sim.RunFor(warm)
		p := workload.NewProber(m, 0, 5)
		p.Start()
		start := snapshotDelivered(flows)
		tl := watchFleet(net, scheme.Name+" dumbbell", measure/6)
		net.Sim.RunFor(measure)
		p.Stop()
		r.telemetry(tl)
		rates := flowRates(flows, start, measure)
		t.Row(scheme.Name, mean(rates), stats.JainFairness(rates),
			p.Samples.Percentile(50)/1e6, p.Samples.Percentile(99.9)/1e6, net.DropRate())
		r.Sections = append(r.Sections, cdfBlock(scheme.Name+" RTT", p.Samples, 1e6, "ms", 10))
		key := schemeKey(scheme.Name)
		r.Metrics[key+"_avg_gbps"] = mean(rates)
		r.Metrics[key+"_fairness"] = stats.JainFairness(rates)
		r.Metrics[key+"_rtt_p50_ms"] = p.Samples.Percentile(50) / 1e6
		r.Metrics[key+"_rtt_p999_ms"] = p.Samples.Percentile(99.9) / 1e6
	}
	r.table(t)
	return r
}

func schemeKey(name string) string {
	switch name {
	case "AC/DC":
		return "acdc"
	case "DCTCP":
		return "dctcp"
	default:
		return "cubic"
	}
}

// ParkingLot reproduces the §5.1 parking-lot numbers: flows crossing
// different numbers of bottlenecks still share fairly under DCTCP/AC-DC
// (index 0.99) while CUBIC is less fair, and RTTs mirror Figure 8.
func ParkingLot(cfg RunConfig) *Result {
	r := newResult("parkinglot", "Parking lot: multi-bottleneck tput/fairness/RTT",
		"CUBIC: fairness 0.94, RTT ~3.3 ms; DCTCP/AC-DC: fairness 0.99, p50 RTT 124–136 µs")
	warm, measure := cfg.scale(100*sim.Millisecond), cfg.scale(300*sim.Millisecond)
	t := stats.NewTable("scheme", "avg Gbps", "fairness", "RTT p50 ms", "RTT p99.9 ms")
	for _, scheme := range ThreeSchemes(9000) {
		net := topo.ParkingLot(scheme.options(cfg, cfg.seed()))
		m := workload.NewManager(net)
		flows := make([]*workload.Messenger, 5)
		for i := 0; i < 5; i++ {
			flows[i] = workload.Bulk(m, i+1, 0)
		}
		net.Sim.RunFor(warm)
		p := workload.NewProber(m, 5, 0) // deepest sender → receiver
		p.Start()
		start := snapshotDelivered(flows)
		net.Sim.RunFor(measure)
		p.Stop()
		rates := flowRates(flows, start, measure)
		t.Row(scheme.Name, mean(rates), stats.JainFairness(rates),
			p.Samples.Percentile(50)/1e6, p.Samples.Percentile(99.9)/1e6)
		key := schemeKey(scheme.Name)
		r.Metrics[key+"_fairness"] = stats.JainFairness(rates)
		r.Metrics[key+"_rtt_p50_ms"] = p.Samples.Percentile(50) / 1e6
	}
	r.table(t)
	return r
}
