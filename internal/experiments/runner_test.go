package experiments

import (
	"fmt"
	"sync"
	"testing"
)

// expByID fails the test rather than returning nil for a typo'd ID.
func expByID(t *testing.T, id string) Experiment {
	t.Helper()
	e := ByID(id)
	if e == nil {
		t.Fatalf("experiment %q not in registry", id)
	}
	return *e
}

// TestParallelMatchesSequential is the engine's core guarantee: running
// experiments on a worker pool yields byte-identical reports (and therefore
// identical metrics) to running them one at a time, in the same order.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full experiments twice")
	}
	exps := []Experiment{expByID(t, "fig8"), expByID(t, "fig18"), expByID(t, "fig20")}
	cfg := RunConfig{Seed: 1}

	var seqOrder []string
	seq := RunAll(exps, cfg, 1, func(i int, r *Result) {
		seqOrder = append(seqOrder, r.ID)
	})
	var parOrder []string
	par := RunAll(exps, cfg, 4, func(i int, r *Result) {
		parOrder = append(parOrder, r.ID)
	})

	if len(seq) != len(par) {
		t.Fatalf("result count: seq %d, par %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("result %d: order diverged: seq %s, par %s", i, seq[i].ID, par[i].ID)
		}
		s, p := seq[i].String(), par[i].String()
		if s != p {
			t.Errorf("%s: parallel report differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				seq[i].ID, s, p)
		}
		for k, v := range seq[i].Metrics {
			if pv, ok := par[i].Metrics[k]; !ok || pv != v {
				t.Errorf("%s: metric %s: seq %g, par %g (ok=%v)", seq[i].ID, k, v, pv, ok)
			}
		}
	}
	for i := range seqOrder {
		if seqOrder[i] != parOrder[i] {
			t.Fatalf("onDone order diverged at %d: seq %v, par %v", i, seqOrder, parOrder)
		}
	}
}

// TestSweepOrderAndConcurrency drives the pool with synthetic jobs: results
// land at their job index, onDone sees strictly increasing indices, and the
// per-job configs are not mixed up between workers.
func TestSweepOrderAndConcurrency(t *testing.T) {
	const n = 37
	jobs := make([]Job, n)
	for i := range jobs {
		seed := int64(i + 1)
		jobs[i] = Job{
			Exp: Experiment{
				ID: fmt.Sprintf("job%d", i),
				Run: func(cfg RunConfig) *Result {
					r := newResult(fmt.Sprintf("job%d", seed-1), "synthetic", "")
					r.Metrics["seed"] = float64(cfg.Seed)
					return r
				},
			},
			Cfg: RunConfig{Seed: seed},
		}
	}
	var mu sync.Mutex
	var order []int
	res := Sweep(jobs, 8, func(i int, r *Result) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if want := fmt.Sprintf("job%d", i); r.ID != want {
			t.Errorf("result %d: ID %s, want %s", i, r.ID, want)
		}
		if got := r.Metrics["seed"]; got != float64(i+1) {
			t.Errorf("result %d: ran with seed %g, want %d", i, got, i+1)
		}
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("onDone visited %v: not in job order", order)
		}
	}
}

// TestMergeTelemetryDeterministic checks that the batch-wide fleet aggregate
// is the same no matter how the runs were scheduled.
func TestMergeTelemetryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment twice")
	}
	exps := []Experiment{expByID(t, "fig8")}
	cfg := RunConfig{Seed: 1}
	a := MergeTelemetry(RunAll(exps, cfg, 1, nil))
	b := MergeTelemetry(RunAll(exps, cfg, 3, nil))
	if len(a.Counters) == 0 {
		t.Fatal("fig8 produced no telemetry counters; merge test is vacuous")
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Errorf("counter %s: seq %d, par %d", k, v, b.Counters[k])
		}
	}
	for k, v := range b.Counters {
		if _, ok := a.Counters[k]; !ok {
			t.Errorf("counter %s (=%d) only present in parallel merge", k, v)
		}
	}
}

// TestWorkers pins the normalization rule.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Errorf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Errorf("Workers(0)=%d Workers(-1)=%d; want >= 1", Workers(0), Workers(-1))
	}
}
