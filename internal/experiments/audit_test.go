package experiments

import (
	"testing"

	"acdc/internal/audit"
)

// TestAuditCleanAndByteIdentical reruns representative experiments (the
// dumbbell, the incast sweep, and the all-ports-congested hot port — the
// three that exercise RWND enforcement, ECN plumbing, policing, and deep
// window cuts hardest) with the invariant auditor attached in panic mode.
// Two properties are asserted at once:
//
//   - zero violations: the full datapath honors every audited invariant on
//     the paper's own workloads (any violation panics at the offending
//     packet, failing the test with the rule name and flow key);
//   - the observer effect is nil: the rendered report is byte-identical to
//     the audit-off run, i.e. attaching the auditor changes no simulation
//     outcome and (violation-free) registers no metrics.
func TestAuditCleanAndByteIdentical(t *testing.T) {
	for _, id := range []string{"fig8", "fig18", "fig20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e := ByID(id)
			if e == nil {
				t.Fatalf("experiment %q not registered", id)
			}
			plain := e.Run(RunConfig{Seed: 1}).String()
			audited := e.Run(RunConfig{Seed: 1, Audit: &audit.Config{Panic: true}}).String()
			if audited != plain {
				t.Fatalf("%s: audited report differs from plain report\n--- plain ---\n%s\n--- audited ---\n%s",
					id, plain, audited)
			}
		})
	}
}
