package topo

import (
	"testing"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
)

func opts() Options {
	return Options{
		Guest: tcpstack.DefaultConfig(),
		RED:   netsim.REDConfig{MarkThresholdBytes: DefaultMarkThreshold},
	}
}

func xfer(t *testing.T, n *Net, from, to int, bytes int64, d sim.Duration) int64 {
	t.Helper()
	srv := new(*tcpstack.Conn)
	port := uint16(6000 + from)
	n.Stacks[to].Listen(port, func(c *tcpstack.Conn) { *srv = c })
	cli := n.Stacks[from].Dial(n.Addr(to), port)
	cli.Send(bytes)
	n.Sim.RunFor(d)
	if *srv == nil {
		t.Fatalf("no connection %d→%d", from, to)
	}
	return (*srv).Delivered
}

func TestStarConnectivity(t *testing.T) {
	n := Star(4, opts())
	if got := xfer(t, n, 0, 3, 100_000, 20*sim.Millisecond); got != 100_000 {
		t.Fatalf("delivered %d", got)
	}
	if got := xfer(t, n, 3, 1, 50_000, 20*sim.Millisecond); got != 50_000 {
		t.Fatalf("reverse delivered %d", got)
	}
}

func TestDumbbellConnectivityAndBottleneck(t *testing.T) {
	n := Dumbbell(5, opts())
	// Each sender i reaches receiver 5+i across the trunk.
	for i := 0; i < 5; i++ {
		if got := xfer(t, n, i, 5+i, 10_000, 20*sim.Millisecond); got != 10_000 {
			t.Fatalf("pair %d delivered %d", i, got)
		}
	}
	bp := n.BottleneckPort()
	if bp.Stats.SentPackets == 0 {
		t.Fatal("no traffic crossed the trunk")
	}
}

func TestDumbbellSharedBottleneck(t *testing.T) {
	n := Dumbbell(5, opts())
	guest := tcpstack.DefaultConfig()
	guest.CC = "dctcp"
	guest.ECN = tcpstack.ECNDCTCP
	// Rebuild with DCTCP guests for a clean fairness check.
	o := opts()
	o.Guest = guest
	n = Dumbbell(5, o)
	srvs := make([]**tcpstack.Conn, 5)
	for i := 0; i < 5; i++ {
		srvs[i] = new(*tcpstack.Conn)
		si := srvs[i]
		n.Stacks[5+i].Listen(5001, func(c *tcpstack.Conn) { *si = c })
		cli := n.Stacks[i].Dial(n.Addr(5+i), 5001)
		cli.Send(1 << 40)
	}
	n.Sim.RunFor(100 * sim.Millisecond)
	var total int64
	for i, s := range srvs {
		if *s == nil {
			t.Fatalf("flow %d missing", i)
		}
		total += (*s).Delivered
	}
	rate := float64(total) * 8 / n.Sim.Now().Seconds()
	// Five flows share the single 10G trunk.
	if rate < 8.5e9 || rate > 10.1e9 {
		t.Fatalf("aggregate %.2f Gbps, want ≈10 (shared trunk)", rate/1e9)
	}
}

func TestParkingLotConnectivity(t *testing.T) {
	n := ParkingLot(opts())
	// Host 0 is the receiver; hosts 1..5 are senders along the chain.
	for i := 1; i <= 5; i++ {
		if got := xfer(t, n, i, 0, 10_000, 50*sim.Millisecond); got != 10_000 {
			t.Fatalf("sender %d delivered %d", i, got)
		}
	}
	// Reverse path (ACK direction as data) also works.
	if got := xfer(t, n, 0, 5, 10_000, 50*sim.Millisecond); got != 10_000 {
		t.Fatalf("receiver→s5 delivered %d", got)
	}
}

func TestACDCAttachmentViaOptions(t *testing.T) {
	o := opts()
	ac := core.DefaultConfig()
	o.ACDC = &ac
	n := Star(2, o)
	if n.ACDC[0] == nil || n.ACDC[1] == nil {
		t.Fatal("AC/DC not attached")
	}
	if got := xfer(t, n, 0, 1, 200_000, 20*sim.Millisecond); got != 200_000 {
		t.Fatalf("delivered %d with AC/DC attached", got)
	}
	if n.ACDC[0].Stats().EgressSegs == 0 {
		t.Fatal("AC/DC datapath idle")
	}
}

func TestNetAggregates(t *testing.T) {
	n := Star(2, opts())
	if n.TotalDrops() != 0 || n.DropRate() != 0 {
		t.Fatal("fresh net reports drops")
	}
}
