// Package topo builds the paper's experiment topologies (Figure 7): the
// dumbbell, the multi-hop multi-bottleneck parking lot, and the single-switch
// star used by the incast and macrobenchmark workloads. Each builder wires
// hosts, switches, links, routes, guest TCP stacks, and (optionally) AC/DC
// modules, and returns a Net handle the workloads drive.
package topo

import (
	"fmt"
	"strings"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/metrics"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
)

// Options configures a topology build.
type Options struct {
	// LinkRate is every link's rate in bits/sec (default 10 Gbps).
	LinkRate int64
	// LinkDelay is the one-way propagation delay per link (default 5µs).
	LinkDelay sim.Duration
	// BufferBytes is each switch's shared buffer (default 9MB, the G8264).
	BufferBytes int
	// BufferAlpha is the dynamic-threshold α (default 1.0).
	BufferAlpha float64
	// RED configures every switch port's marking behaviour.
	RED netsim.REDConfig
	// Guest is the guest TCP stack configuration for every host.
	Guest tcpstack.Config
	// GuestFor, when set, overrides the guest config per host index — the
	// mixed-stack experiments (Figures 1, 15, 17; Table 1) need different
	// congestion controls on different hosts.
	GuestFor func(host int) *tcpstack.Config
	// ACDC, when non-nil, attaches an AC/DC module to every host.
	ACDC *core.Config
	// ACDCFor, when set, overrides the AC/DC config per host (e.g. per-host
	// β policies in the QoS experiment). Returning nil skips attachment for
	// that host even when ACDC is set.
	ACDCFor func(host int) *core.Config
	// Seed seeds the simulation RNG (default 1).
	Seed int64
	// Faults, when non-nil and enabled, installs a deterministic fault
	// injector on every link of the fabric (chaos runs). A nil or disabled
	// profile leaves every link on the exact fault-free code path.
	Faults *faults.Profile
	// FaultSeed seeds the injector's PRNG (default: Seed), independent of
	// the simulation RNG so the same chaos mix replays across workloads.
	FaultSeed int64
	// Restart, when non-nil, schedules a vSwitch restart (cold/warm/stale/
	// corrupt) on the hosts the plan selects. Hosts without an AC/DC module
	// are unaffected. Nil leaves the restart machinery entirely cold.
	Restart *faults.RestartPlan
	// Audit, when non-nil, attaches a datapath invariant auditor
	// (internal/audit) to every AC/DC module. Nil keeps the hot path on the
	// audit-free branch (zero overhead, byte-identical telemetry).
	Audit *audit.Config
	// Fabric, when non-empty, schedules fabric fault domains (link/switch
	// outages, flaps, gray loss; see faults.ParseDomains) against the built
	// topology's links by name. Empty leaves the lifecycle machinery cold.
	Fabric []faults.FaultDomain
	// FabricSeed seeds gray-loss randomness (default: Seed), independent of
	// the simulation RNG so the same fabric chaos replays across workloads.
	FabricSeed int64
	// Backend, when non-empty, overrides the enforcement backend on every
	// attached AC/DC module ("dctcp-cut", "pace", "adaptive-k") — the knob
	// the head-to-head comparison runs turn. Empty leaves each config's own
	// Backend field (usually "", the paper's RWND-rewrite mechanism).
	Backend string
}

// Defaults fills zero fields with the paper's testbed values.
func (o Options) withDefaults() Options {
	if o.LinkRate == 0 {
		o.LinkRate = 10e9
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = 5 * sim.Microsecond
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 9 << 20
	}
	if o.BufferAlpha == 0 {
		o.BufferAlpha = 1.0
	}
	if o.Guest.MTU == 0 {
		o.Guest = tcpstack.DefaultConfig()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultMarkThreshold returns the WRED/ECN threshold used when marking is
// on: 90KB at 10Gbps (≈65 1.5K packets / 10 jumbo packets, the DCTCP-style
// K the testbed switches were configured with).
const DefaultMarkThreshold = 90_000

// Net is a built topology.
type Net struct {
	Sim      *sim.Simulator
	Pool     *packet.Pool // shared packet free list for everything on Sim
	Switches []*netsim.Switch
	Hosts    []*netsim.Host
	Stacks   []*tcpstack.Stack
	ACDC     []*core.VSwitch  // nil entries when AC/DC is not attached
	Audits   []*audit.Auditor // parallel to ACDC; nil when Opts.Audit is nil
	Faults   *faults.Injector // nil when no fault profile is active
	Links    []*netsim.Link   // every link in creation order (fault-domain targets)
	Domains  *faults.Domains  // nil when no fabric fault domains are armed
	Opts     Options
	fabric   bool // true for multi-path builders (fat-tree / leaf-spine)
}

// Stack returns host i's guest stack.
func (n *Net) Stack(i int) *tcpstack.Stack { return n.Stacks[i] }

// Addr returns host i's address.
func (n *Net) Addr(i int) packet.Addr { return n.Hosts[i].Addr }

// TotalDrops sums packet drops over all switches.
func (n *Net) TotalDrops() int64 {
	var d int64
	for _, sw := range n.Switches {
		d += sw.TotalDrops()
	}
	return d
}

// DropRate aggregates the drop rate over all switches.
func (n *Net) DropRate() float64 {
	var d, s int64
	for _, sw := range n.Switches {
		d += sw.TotalDrops()
		s += sw.TotalSent()
	}
	if d+s == 0 {
		return 0
	}
	return float64(d) / float64(d+s)
}

// AuditViolations sums recorded invariant violations over every attached
// auditor. 0 when auditing is off.
func (n *Net) AuditViolations() int64 {
	var t int64
	for _, a := range n.Audits {
		if a != nil {
			t += a.Total()
		}
	}
	return t
}

// newNet allocates the container and simulator.
func newNet(o Options) *Net {
	o = o.withDefaults()
	n := &Net{Sim: sim.New(o.Seed), Pool: packet.NewPool(), Opts: o}
	if o.Faults != nil && o.Faults.Enabled() {
		seed := o.FaultSeed
		if seed == 0 {
			seed = o.Seed
		}
		n.Faults = faults.NewInjector(*o.Faults, seed)
	}
	return n
}

// newLink creates a link and attaches the fault injector when one is active.
// Every link is registered in Links so fault domains can address it by name.
func (n *Net) newLink(name string, dst netsim.Handler) *netsim.Link {
	l := netsim.NewLink(n.Sim, name, n.Opts.LinkRate, n.Opts.LinkDelay, dst)
	l.Pool = n.Pool
	if n.Faults != nil {
		n.Faults.Attach(l)
	}
	n.Links = append(n.Links, l)
	return l
}

func (n *Net) addSwitch(name string) *netsim.Switch {
	sw := netsim.NewSwitch(n.Sim, name,
		netsim.NewSharedBuffer(n.Opts.BufferBytes, n.Opts.BufferAlpha))
	sw.Pool = n.Pool
	n.Switches = append(n.Switches, sw)
	return sw
}

// addHost creates a host attached to sw and returns its index.
func (n *Net) addHost(sw *netsim.Switch, addr packet.Addr, name string) int {
	o := n.Opts
	h := netsim.NewHost(n.Sim, name, addr)
	h.Pool = n.Pool
	h.NIC = n.newLink(name+".up", sw)
	down := n.newLink(name+".down", h)
	sw.AddRoute(addr, sw.AddPort(down, o.RED))
	n.Hosts = append(n.Hosts, h)
	idx := len(n.Hosts) - 1
	guest := o.Guest
	if o.GuestFor != nil {
		if g := o.GuestFor(idx); g != nil {
			guest = *g
		}
	}
	n.Stacks = append(n.Stacks, tcpstack.NewStack(n.Sim, h, guest))
	acdcCfg := o.ACDC
	if o.ACDCFor != nil {
		acdcCfg = o.ACDCFor(idx)
	}
	if acdcCfg != nil {
		cfg := *acdcCfg
		if o.Backend != "" {
			cfg.Backend = o.Backend
		}
		v := core.Attach(n.Sim, h, cfg)
		n.ACDC = append(n.ACDC, v)
		if o.Audit != nil {
			n.Audits = append(n.Audits, audit.Attach(v, *o.Audit))
		} else {
			n.Audits = append(n.Audits, nil)
		}
	} else {
		n.ACDC = append(n.ACDC, nil)
		n.Audits = append(n.Audits, nil)
	}
	return idx
}

// connectSwitches wires a bidirectional trunk between two switches.
func (n *Net) connectSwitches(a, b *netsim.Switch) (portAtoB, portBtoA int) {
	o := n.Opts
	ab := n.newLink(a.Name+">"+b.Name, b)
	ba := n.newLink(b.Name+">"+a.Name, a)
	return a.AddPort(ab, o.RED), b.AddPort(ba, o.RED)
}

// Star builds n hosts around a single switch (the macrobenchmark fabric; 48
// hosts model the 48-port G8264 with one flow per NIC).
func Star(n int, o Options) *Net {
	net := newNet(o)
	sw := net.addSwitch("tor")
	for i := 0; i < n; i++ {
		net.addHost(sw, hostAddr(i), fmt.Sprintf("h%d", i))
	}
	net.scheduleRestart()
	net.scheduleFabric()
	return net
}

// Dumbbell builds the Figure 7a topology: `pairs` senders on one switch,
// `pairs` receivers on another, one shared bottleneck trunk. Hosts 0..pairs-1
// are senders s1..sN; hosts pairs..2*pairs-1 are receivers r1..rN.
func Dumbbell(pairs int, o Options) *Net {
	net := newNet(o)
	left := net.addSwitch("left")
	right := net.addSwitch("right")
	lr, rl := net.connectSwitches(left, right)
	for i := 0; i < pairs; i++ {
		net.addHost(left, hostAddr(i), fmt.Sprintf("s%d", i+1))
	}
	for i := 0; i < pairs; i++ {
		idx := net.addHost(right, hostAddr(pairs+i), fmt.Sprintf("r%d", i+1))
		// Senders reach receivers over the trunk.
		left.AddRoute(net.Hosts[idx].Addr, lr)
	}
	for i := 0; i < pairs; i++ {
		right.AddRoute(net.Hosts[i].Addr, rl)
	}
	net.scheduleRestart()
	net.scheduleFabric()
	return net
}

// BottleneckPort returns the dumbbell's congested egress (left→right trunk).
func (n *Net) BottleneckPort() *netsim.Link {
	if len(n.Switches) < 2 {
		// Star: caller should use the receiver's downlink instead.
		panic("topo: BottleneckPort on non-dumbbell topology")
	}
	// connectSwitches added the trunk as the first port of the left switch.
	return n.Switches[0].Port(0)
}

// ParkingLot builds the Figure 7b multi-hop, multi-bottleneck chain:
// switches SW0–SW3, the receiver on SW0 (host index 0), and five senders
// spread along the chain (1@SW1, 2@SW2, 2@SW3) so flows cross different
// numbers of bottlenecks.
func ParkingLot(o Options) *Net {
	net := newNet(o)
	sws := make([]*netsim.Switch, 4)
	for i := range sws {
		sws[i] = net.addSwitch(fmt.Sprintf("sw%d", i))
	}
	// Chain trunks sw3→sw2→sw1→sw0 (toward the receiver) and reverse.
	type trunk struct{ fwd, rev int }
	trunks := make([]trunk, 3) // trunks[i] connects sws[i] and sws[i+1]
	for i := 0; i < 3; i++ {
		f, r := net.connectSwitches(sws[i], sws[i+1])
		trunks[i] = trunk{fwd: f, rev: r}
	}
	recv := net.addHost(sws[0], hostAddr(0), "recv")
	placement := []int{1, 2, 2, 3, 3}
	for i, swIdx := range placement {
		net.addHost(sws[swIdx], hostAddr(i+1), fmt.Sprintf("s%d", i+1))
	}
	// Routes: every switch forwards the receiver's address down-chain and
	// each sender's address up-chain.
	for i := 1; i < 4; i++ {
		sws[i].AddRoute(net.Hosts[recv].Addr, trunks[i-1].rev)
	}
	for i, swIdx := range placement {
		addr := net.Hosts[i+1].Addr
		for s := 0; s < swIdx; s++ {
			sws[s].AddRoute(addr, trunks[s].fwd)
		}
	}
	net.scheduleRestart()
	net.scheduleFabric()
	return net
}

// scheduleRestart arms Opts.Restart once every host (and its AC/DC module,
// where attached) exists. Called at the end of each topology builder.
func (n *Net) scheduleRestart() {
	p := n.Opts.Restart
	if p == nil {
		return
	}
	var targets []faults.RestartTarget
	for i, v := range n.ACDC {
		if v != nil && p.AppliesTo(i) {
			targets = append(targets, v)
		}
	}
	p.Schedule(n.Sim, targets)
}

// scheduleFabric arms Opts.Fabric once every link exists. Called at the end
// of each topology builder, after scheduleRestart.
func (n *Net) scheduleFabric() {
	if len(n.Opts.Fabric) == 0 {
		return
	}
	seed := n.Opts.FabricSeed
	if seed == 0 {
		seed = n.Opts.Seed
	}
	n.Domains = faults.NewDomains(n.Opts.Fabric, seed)
	n.Domains.Schedule(n.Sim, n)
}

// LinksMatching implements faults.FabricView: links whose name matches
// pattern exactly, or by prefix when the pattern ends in '*'.
func (n *Net) LinksMatching(pattern string) []*netsim.Link {
	prefix, wild := strings.CutSuffix(pattern, "*")
	var out []*netsim.Link
	for _, l := range n.Links {
		if (wild && strings.HasPrefix(l.Name, prefix)) || (!wild && l.Name == pattern) {
			out = append(out, l)
		}
	}
	return out
}

// SwitchLinks implements faults.FabricView: every link attached to the named
// switch — its egress ports plus the links delivering into it — so a
// switch-down domain isolates the box in both directions.
func (n *Net) SwitchLinks(name string) []*netsim.Link {
	var sw *netsim.Switch
	for _, s := range n.Switches {
		if s.Name == name {
			sw = s
			break
		}
	}
	if sw == nil {
		return nil
	}
	var out []*netsim.Link
	for i := 0; i < sw.NumPorts(); i++ {
		out = append(out, sw.Port(i))
	}
	for _, l := range n.Links {
		if dst, ok := l.Dst.(*netsim.Switch); ok && dst == sw {
			out = append(out, l)
		}
	}
	return out
}

// HasFabric reports whether this topology has multi-path forwarding or
// armed fault domains — the signal for telemetry layers to include the
// fabric snapshot. Single-path builders without domains return false, so
// their reports stay byte-identical to pre-fabric output.
func (n *Net) HasFabric() bool { return n.fabric || n.Domains != nil }

// FabricSnapshot renders link-lifecycle, per-reason drop, and ECMP counters
// as a metrics snapshot, merged with the fault-domain scheduler's own
// counters. Per-link and per-switch entries appear only when non-zero, so a
// healthy fabric stays compact.
func (n *Net) FabricSnapshot() metrics.Snapshot {
	c := map[string]int64{}
	add := func(name string, v int64) {
		if v != 0 {
			c[name] += v
		}
	}
	var queue, fault, down int64
	for _, l := range n.Links {
		queue += l.Stats.Drops
		fault += l.Stats.DropsFault
		down += l.Stats.DropsDown
		add(fmt.Sprintf("link_down_events_total{link=%s}", l.Name), l.Stats.DownEvents)
		add(fmt.Sprintf("link_up_events_total{link=%s}", l.Name), l.Stats.UpEvents)
		add(fmt.Sprintf("link_drops_total{link=%s,reason=queue}", l.Name), l.Stats.Drops)
		add(fmt.Sprintf("link_drops_total{link=%s,reason=fault}", l.Name), l.Stats.DropsFault)
		add(fmt.Sprintf("link_drops_total{link=%s,reason=down}", l.Name), l.Stats.DropsDown)
	}
	add("link_drops_total{reason=queue}", queue)
	add("link_drops_total{reason=fault}", fault)
	add("link_drops_total{reason=down}", down)
	for _, sw := range n.Switches {
		add("ecmp_forwarded_total", sw.Stats.EcmpForwarded)
		add("ecmp_failovers_total", sw.Stats.EcmpFailovers)
		add("ecmp_blackholes_total", sw.Stats.Blackholes)
		add(fmt.Sprintf("ecmp_failovers_total{switch=%s}", sw.Name), sw.Stats.EcmpFailovers)
		add(fmt.Sprintf("ecmp_blackholes_total{switch=%s}", sw.Name), sw.Stats.Blackholes)
	}
	snap := metrics.Snapshot{Counters: c}
	if n.Domains != nil {
		snap = metrics.Merge(snap, n.Domains.Registry().Snapshot())
	}
	return snap
}

func hostAddr(i int) packet.Addr {
	return packet.MakeAddr(10, 0, byte(i/250), byte(i%250+1))
}
