// Package topo builds the paper's experiment topologies (Figure 7): the
// dumbbell, the multi-hop multi-bottleneck parking lot, and the single-switch
// star used by the incast and macrobenchmark workloads. Each builder wires
// hosts, switches, links, routes, guest TCP stacks, and (optionally) AC/DC
// modules, and returns a Net handle the workloads drive.
package topo

import (
	"fmt"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
)

// Options configures a topology build.
type Options struct {
	// LinkRate is every link's rate in bits/sec (default 10 Gbps).
	LinkRate int64
	// LinkDelay is the one-way propagation delay per link (default 5µs).
	LinkDelay sim.Duration
	// BufferBytes is each switch's shared buffer (default 9MB, the G8264).
	BufferBytes int
	// BufferAlpha is the dynamic-threshold α (default 1.0).
	BufferAlpha float64
	// RED configures every switch port's marking behaviour.
	RED netsim.REDConfig
	// Guest is the guest TCP stack configuration for every host.
	Guest tcpstack.Config
	// GuestFor, when set, overrides the guest config per host index — the
	// mixed-stack experiments (Figures 1, 15, 17; Table 1) need different
	// congestion controls on different hosts.
	GuestFor func(host int) *tcpstack.Config
	// ACDC, when non-nil, attaches an AC/DC module to every host.
	ACDC *core.Config
	// ACDCFor, when set, overrides the AC/DC config per host (e.g. per-host
	// β policies in the QoS experiment). Returning nil skips attachment for
	// that host even when ACDC is set.
	ACDCFor func(host int) *core.Config
	// Seed seeds the simulation RNG (default 1).
	Seed int64
	// Faults, when non-nil and enabled, installs a deterministic fault
	// injector on every link of the fabric (chaos runs). A nil or disabled
	// profile leaves every link on the exact fault-free code path.
	Faults *faults.Profile
	// FaultSeed seeds the injector's PRNG (default: Seed), independent of
	// the simulation RNG so the same chaos mix replays across workloads.
	FaultSeed int64
	// Restart, when non-nil, schedules a vSwitch restart (cold/warm/stale/
	// corrupt) on the hosts the plan selects. Hosts without an AC/DC module
	// are unaffected. Nil leaves the restart machinery entirely cold.
	Restart *faults.RestartPlan
	// Audit, when non-nil, attaches a datapath invariant auditor
	// (internal/audit) to every AC/DC module. Nil keeps the hot path on the
	// audit-free branch (zero overhead, byte-identical telemetry).
	Audit *audit.Config
}

// Defaults fills zero fields with the paper's testbed values.
func (o Options) withDefaults() Options {
	if o.LinkRate == 0 {
		o.LinkRate = 10e9
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = 5 * sim.Microsecond
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 9 << 20
	}
	if o.BufferAlpha == 0 {
		o.BufferAlpha = 1.0
	}
	if o.Guest.MTU == 0 {
		o.Guest = tcpstack.DefaultConfig()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultMarkThreshold returns the WRED/ECN threshold used when marking is
// on: 90KB at 10Gbps (≈65 1.5K packets / 10 jumbo packets, the DCTCP-style
// K the testbed switches were configured with).
const DefaultMarkThreshold = 90_000

// Net is a built topology.
type Net struct {
	Sim      *sim.Simulator
	Pool     *packet.Pool // shared packet free list for everything on Sim
	Switches []*netsim.Switch
	Hosts    []*netsim.Host
	Stacks   []*tcpstack.Stack
	ACDC     []*core.VSwitch  // nil entries when AC/DC is not attached
	Audits   []*audit.Auditor // parallel to ACDC; nil when Opts.Audit is nil
	Faults   *faults.Injector // nil when no fault profile is active
	Opts     Options
}

// Stack returns host i's guest stack.
func (n *Net) Stack(i int) *tcpstack.Stack { return n.Stacks[i] }

// Addr returns host i's address.
func (n *Net) Addr(i int) packet.Addr { return n.Hosts[i].Addr }

// TotalDrops sums packet drops over all switches.
func (n *Net) TotalDrops() int64 {
	var d int64
	for _, sw := range n.Switches {
		d += sw.TotalDrops()
	}
	return d
}

// DropRate aggregates the drop rate over all switches.
func (n *Net) DropRate() float64 {
	var d, s int64
	for _, sw := range n.Switches {
		d += sw.TotalDrops()
		s += sw.TotalSent()
	}
	if d+s == 0 {
		return 0
	}
	return float64(d) / float64(d+s)
}

// AuditViolations sums recorded invariant violations over every attached
// auditor. 0 when auditing is off.
func (n *Net) AuditViolations() int64 {
	var t int64
	for _, a := range n.Audits {
		if a != nil {
			t += a.Total()
		}
	}
	return t
}

// newNet allocates the container and simulator.
func newNet(o Options) *Net {
	o = o.withDefaults()
	n := &Net{Sim: sim.New(o.Seed), Pool: packet.NewPool(), Opts: o}
	if o.Faults != nil && o.Faults.Enabled() {
		seed := o.FaultSeed
		if seed == 0 {
			seed = o.Seed
		}
		n.Faults = faults.NewInjector(*o.Faults, seed)
	}
	return n
}

// newLink creates a link and attaches the fault injector when one is active.
func (n *Net) newLink(name string, dst netsim.Handler) *netsim.Link {
	l := netsim.NewLink(n.Sim, name, n.Opts.LinkRate, n.Opts.LinkDelay, dst)
	if n.Faults != nil {
		n.Faults.Attach(l)
	}
	return l
}

func (n *Net) addSwitch(name string) *netsim.Switch {
	sw := netsim.NewSwitch(n.Sim, name,
		netsim.NewSharedBuffer(n.Opts.BufferBytes, n.Opts.BufferAlpha))
	sw.Pool = n.Pool
	n.Switches = append(n.Switches, sw)
	return sw
}

// addHost creates a host attached to sw and returns its index.
func (n *Net) addHost(sw *netsim.Switch, addr packet.Addr, name string) int {
	o := n.Opts
	h := netsim.NewHost(n.Sim, name, addr)
	h.Pool = n.Pool
	h.NIC = n.newLink(name+".up", sw)
	down := n.newLink(name+".down", h)
	sw.AddRoute(addr, sw.AddPort(down, o.RED))
	n.Hosts = append(n.Hosts, h)
	idx := len(n.Hosts) - 1
	guest := o.Guest
	if o.GuestFor != nil {
		if g := o.GuestFor(idx); g != nil {
			guest = *g
		}
	}
	n.Stacks = append(n.Stacks, tcpstack.NewStack(n.Sim, h, guest))
	acdcCfg := o.ACDC
	if o.ACDCFor != nil {
		acdcCfg = o.ACDCFor(idx)
	}
	if acdcCfg != nil {
		cfg := *acdcCfg
		v := core.Attach(n.Sim, h, cfg)
		n.ACDC = append(n.ACDC, v)
		if o.Audit != nil {
			n.Audits = append(n.Audits, audit.Attach(v, *o.Audit))
		} else {
			n.Audits = append(n.Audits, nil)
		}
	} else {
		n.ACDC = append(n.ACDC, nil)
		n.Audits = append(n.Audits, nil)
	}
	return idx
}

// connectSwitches wires a bidirectional trunk between two switches.
func (n *Net) connectSwitches(a, b *netsim.Switch) (portAtoB, portBtoA int) {
	o := n.Opts
	ab := n.newLink(a.Name+">"+b.Name, b)
	ba := n.newLink(b.Name+">"+a.Name, a)
	return a.AddPort(ab, o.RED), b.AddPort(ba, o.RED)
}

// Star builds n hosts around a single switch (the macrobenchmark fabric; 48
// hosts model the 48-port G8264 with one flow per NIC).
func Star(n int, o Options) *Net {
	net := newNet(o)
	sw := net.addSwitch("tor")
	for i := 0; i < n; i++ {
		net.addHost(sw, hostAddr(i), fmt.Sprintf("h%d", i))
	}
	net.scheduleRestart()
	return net
}

// Dumbbell builds the Figure 7a topology: `pairs` senders on one switch,
// `pairs` receivers on another, one shared bottleneck trunk. Hosts 0..pairs-1
// are senders s1..sN; hosts pairs..2*pairs-1 are receivers r1..rN.
func Dumbbell(pairs int, o Options) *Net {
	net := newNet(o)
	left := net.addSwitch("left")
	right := net.addSwitch("right")
	lr, rl := net.connectSwitches(left, right)
	for i := 0; i < pairs; i++ {
		net.addHost(left, hostAddr(i), fmt.Sprintf("s%d", i+1))
	}
	for i := 0; i < pairs; i++ {
		idx := net.addHost(right, hostAddr(pairs+i), fmt.Sprintf("r%d", i+1))
		// Senders reach receivers over the trunk.
		left.AddRoute(net.Hosts[idx].Addr, lr)
	}
	for i := 0; i < pairs; i++ {
		right.AddRoute(net.Hosts[i].Addr, rl)
	}
	net.scheduleRestart()
	return net
}

// BottleneckPort returns the dumbbell's congested egress (left→right trunk).
func (n *Net) BottleneckPort() *netsim.Link {
	if len(n.Switches) < 2 {
		// Star: caller should use the receiver's downlink instead.
		panic("topo: BottleneckPort on non-dumbbell topology")
	}
	// connectSwitches added the trunk as the first port of the left switch.
	return n.Switches[0].Port(0)
}

// ParkingLot builds the Figure 7b multi-hop, multi-bottleneck chain:
// switches SW0–SW3, the receiver on SW0 (host index 0), and five senders
// spread along the chain (1@SW1, 2@SW2, 2@SW3) so flows cross different
// numbers of bottlenecks.
func ParkingLot(o Options) *Net {
	net := newNet(o)
	sws := make([]*netsim.Switch, 4)
	for i := range sws {
		sws[i] = net.addSwitch(fmt.Sprintf("sw%d", i))
	}
	// Chain trunks sw3→sw2→sw1→sw0 (toward the receiver) and reverse.
	type trunk struct{ fwd, rev int }
	trunks := make([]trunk, 3) // trunks[i] connects sws[i] and sws[i+1]
	for i := 0; i < 3; i++ {
		f, r := net.connectSwitches(sws[i], sws[i+1])
		trunks[i] = trunk{fwd: f, rev: r}
	}
	recv := net.addHost(sws[0], hostAddr(0), "recv")
	placement := []int{1, 2, 2, 3, 3}
	for i, swIdx := range placement {
		net.addHost(sws[swIdx], hostAddr(i+1), fmt.Sprintf("s%d", i+1))
	}
	// Routes: every switch forwards the receiver's address down-chain and
	// each sender's address up-chain.
	for i := 1; i < 4; i++ {
		sws[i].AddRoute(net.Hosts[recv].Addr, trunks[i-1].rev)
	}
	for i, swIdx := range placement {
		addr := net.Hosts[i+1].Addr
		for s := 0; s < swIdx; s++ {
			sws[s].AddRoute(addr, trunks[s].fwd)
		}
	}
	net.scheduleRestart()
	return net
}

// scheduleRestart arms Opts.Restart once every host (and its AC/DC module,
// where attached) exists. Called at the end of each topology builder.
func (n *Net) scheduleRestart() {
	p := n.Opts.Restart
	if p == nil {
		return
	}
	var targets []faults.RestartTarget
	for i, v := range n.ACDC {
		if v != nil && p.AppliesTo(i) {
			targets = append(targets, v)
		}
	}
	p.Schedule(n.Sim, targets)
}

func hostAddr(i int) packet.Addr {
	return packet.MakeAddr(10, 0, byte(i/250), byte(i%250+1))
}
