package topo

// Multi-path fabric builders: the k-ary fat-tree (Al-Fares et al.) and the
// two-tier leaf-spine, both forwarding over seeded ECMP at every switch with
// equal-cost uplinks. These are the topologies where the fabric fault
// domains (Options.Fabric) become interesting: a downed uplink re-hashes
// surviving flows onto live paths instead of severing the only route.

import (
	"fmt"

	"acdc/internal/netsim"
)

// FatTreeConfig parameterizes the k-ary fat-tree.
type FatTreeConfig struct {
	// K is the switch radix: K pods, each with K/2 ToRs and K/2 aggregation
	// switches, and (K/2)² cores. Must be even and ≥ 2.
	K int
	// HostsPerTor is the number of hosts under each ToR (default K/2, the
	// canonical rearrangeably-nonblocking fat-tree). Values above K/2
	// oversubscribe the ToR uplinks by HostsPerTor/(K/2):1 — the common
	// datacenter cost/performance trade.
	HostsPerTor int
}

func (c FatTreeConfig) withDefaults() FatTreeConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.K < 2 || c.K%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree K must be even and >= 2, got %d", c.K))
	}
	if c.HostsPerTor == 0 {
		c.HostsPerTor = c.K / 2
	}
	return c
}

// Hosts returns the total host count the config builds.
func (c FatTreeConfig) Hosts() int {
	c = c.withDefaults()
	return c.K * (c.K / 2) * c.HostsPerTor
}

// HostIndex returns the host index for (pod, tor, slot) — hosts are added
// pod-major, then ToR, then slot.
func (c FatTreeConfig) HostIndex(pod, tor, slot int) int {
	c = c.withDefaults()
	return (pod*(c.K/2)+tor)*c.HostsPerTor + slot
}

// FatTree builds the k-ary fat-tree. Switch names are "p{pod}-tor{t}",
// "p{pod}-agg{a}", and "core{c}"; trunk links are named "a>b" by the
// switches they connect (e.g. "p0-tor1>p0-agg0", "p2-agg1>core3"), the
// addresses fault domains target.
//
// Routing is static: exact down-routes everywhere a single path exists
// (core→pod, agg→ToR, ToR→host) and a default ECMP group up (ToR→aggs,
// agg→its core group), hashed per flow with a per-switch seed derived from
// Options.Seed — distinct per switch so consecutive tiers don't polarize
// onto one path, deterministic per seed so replays take identical paths.
// There is no routing protocol: a fault on a link the ECMP group can route
// around fails over; a fault that severs the only down-path blackholes
// (counted at the switch) until the link returns.
func FatTree(cfg FatTreeConfig, o Options) *Net {
	cfg = cfg.withDefaults()
	k, half := cfg.K, cfg.K/2
	net := newNet(o)
	net.fabric = true

	core := make([]*switchRef, half*half)
	for c := 0; c < half*half; c++ {
		core[c] = &switchRef{sw: net.addSwitch(fmt.Sprintf("core%d", c))}
	}
	tor := make([][]*switchRef, k)
	agg := make([][]*switchRef, k)
	for p := 0; p < k; p++ {
		tor[p] = make([]*switchRef, half)
		agg[p] = make([]*switchRef, half)
		for i := 0; i < half; i++ {
			tor[p][i] = &switchRef{sw: net.addSwitch(fmt.Sprintf("p%d-tor%d", p, i))}
		}
		for i := 0; i < half; i++ {
			agg[p][i] = &switchRef{sw: net.addSwitch(fmt.Sprintf("p%d-agg%d", p, i))}
		}
	}

	// Pod wiring: every ToR to every agg in its pod.
	aggDownToTor := make([][][]int, k) // [pod][agg][tor] = agg's port to that ToR
	for p := 0; p < k; p++ {
		aggDownToTor[p] = make([][]int, half)
		for a := 0; a < half; a++ {
			aggDownToTor[p][a] = make([]int, half)
		}
		for t := 0; t < half; t++ {
			for a := 0; a < half; a++ {
				up, down := net.connectSwitches(tor[p][t].sw, agg[p][a].sw)
				tor[p][t].uplinks = append(tor[p][t].uplinks, up)
				aggDownToTor[p][a][t] = down
			}
		}
	}

	// Core wiring: agg a of every pod connects to core group a — cores
	// [a*half, (a+1)*half).
	coreDownToPod := make([][]int, half*half) // [core][pod] = core's port to that pod's agg
	for c := range coreDownToPod {
		coreDownToPod[c] = make([]int, k)
	}
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				c := a*half + j
				up, down := net.connectSwitches(agg[p][a].sw, core[c].sw)
				agg[p][a].uplinks = append(agg[p][a].uplinks, up)
				coreDownToPod[c][p] = down
			}
		}
	}

	// Hosts, pod-major. addHost installs the ToR's exact down-route.
	for p := 0; p < k; p++ {
		for t := 0; t < half; t++ {
			for s := 0; s < cfg.HostsPerTor; s++ {
				idx := cfg.HostIndex(p, t, s)
				net.addHost(tor[p][t].sw, hostAddr(idx), fmt.Sprintf("h%d", idx))
			}
		}
	}

	// Down-routes and ECMP groups. Exact routes win over ECMP inside the
	// switch, so each tier only needs its own tier's reachability.
	for p := 0; p < k; p++ {
		for t := 0; t < half; t++ {
			tor[p][t].sw.SetDefaultEcmp(tor[p][t].uplinks...)
		}
		for a := 0; a < half; a++ {
			for t := 0; t < half; t++ {
				for s := 0; s < cfg.HostsPerTor; s++ {
					addr := hostAddr(cfg.HostIndex(p, t, s))
					agg[p][a].sw.AddRoute(addr, aggDownToTor[p][a][t])
				}
			}
			agg[p][a].sw.SetDefaultEcmp(agg[p][a].uplinks...)
		}
	}
	for c := 0; c < half*half; c++ {
		for p := 0; p < k; p++ {
			for t := 0; t < half; t++ {
				for s := 0; s < cfg.HostsPerTor; s++ {
					addr := hostAddr(cfg.HostIndex(p, t, s))
					core[c].sw.AddRoute(addr, coreDownToPod[c][p])
				}
			}
		}
	}

	net.seedEcmp()
	net.scheduleRestart()
	net.scheduleFabric()
	return net
}

// switchRef pairs a switch with its accumulated uplink port indices.
type switchRef struct {
	sw      *netsim.Switch
	uplinks []int
}

// LeafSpine builds a two-tier Clos: `leaves` ToRs each hosting
// hostsPerLeaf hosts, fully meshed to `spines` spine switches. Leaves ECMP
// over every spine; spines hold exact down-routes. Names: "leaf{i}",
// "spine{j}", hosts "h{idx}" with idx = leaf*hostsPerLeaf + slot.
func LeafSpine(leaves, spines, hostsPerLeaf int, o Options) *Net {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic(fmt.Sprintf("topo: leaf-spine needs leaves/spines/hostsPerLeaf >= 1, got %d/%d/%d",
			leaves, spines, hostsPerLeaf))
	}
	net := newNet(o)
	net.fabric = true
	leaf := make([]*switchRef, leaves)
	for i := range leaf {
		leaf[i] = &switchRef{sw: net.addSwitch(fmt.Sprintf("leaf%d", i))}
	}
	spine := make([]*switchRef, spines)
	for j := range spine {
		spine[j] = &switchRef{sw: net.addSwitch(fmt.Sprintf("spine%d", j))}
	}
	spineDownToLeaf := make([][]int, spines)
	for j := range spineDownToLeaf {
		spineDownToLeaf[j] = make([]int, leaves)
	}
	for i := 0; i < leaves; i++ {
		for j := 0; j < spines; j++ {
			up, down := net.connectSwitches(leaf[i].sw, spine[j].sw)
			leaf[i].uplinks = append(leaf[i].uplinks, up)
			spineDownToLeaf[j][i] = down
		}
	}
	for i := 0; i < leaves; i++ {
		for s := 0; s < hostsPerLeaf; s++ {
			idx := i*hostsPerLeaf + s
			net.addHost(leaf[i].sw, hostAddr(idx), fmt.Sprintf("h%d", idx))
		}
		leaf[i].sw.SetDefaultEcmp(leaf[i].uplinks...)
	}
	for j := 0; j < spines; j++ {
		for i := 0; i < leaves; i++ {
			for s := 0; s < hostsPerLeaf; s++ {
				spine[j].sw.AddRoute(hostAddr(i*hostsPerLeaf+s), spineDownToLeaf[j][i])
			}
		}
	}
	net.seedEcmp()
	net.scheduleRestart()
	net.scheduleFabric()
	return net
}

// seedEcmp gives every switch a distinct hash seed derived from the run
// seed: same run seed ⇒ identical path choices (replay), distinct per
// switch ⇒ no hash polarization between tiers (a ToR and the agg above it
// must not always agree on the low bits).
func (n *Net) seedEcmp() {
	for i, sw := range n.Switches {
		sw.EcmpSeed = uint64(n.Opts.Seed)*0x9e3779b97f4a7c15 + uint64(i)
	}
}
