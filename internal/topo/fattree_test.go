package topo

import (
	"fmt"
	"testing"

	"acdc/internal/faults"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

type sink struct{ got []*packet.Packet }

func (k *sink) HandlePacket(p *packet.Packet) { k.got = append(k.got, p) }

func TestFatTreeShape(t *testing.T) {
	for _, tc := range []struct {
		k, hpt                 int
		hosts, switches, links int
	}{
		// k=4: 4 cores + 8 ToR + 8 agg = 20 switches; 16 hosts;
		// links = 2 per host + 2*16 pod trunks + 2*16 core trunks = 96.
		{4, 0, 16, 20, 96},
		// Oversubscribed 4:2 at the ToR: double the hosts, same fabric.
		{4, 4, 32, 20, 128},
		// k=6: 9 cores + 18+18 = 45 switches; 54 hosts;
		// trunks: 2*(6*9) pod + 2*(6*9) core = 216; links = 108+216.
		{6, 0, 54, 45, 324},
	} {
		cfg := FatTreeConfig{K: tc.k, HostsPerTor: tc.hpt}
		if got := cfg.Hosts(); got != tc.hosts {
			t.Fatalf("k=%d hpt=%d: Hosts() = %d, want %d", tc.k, tc.hpt, got, tc.hosts)
		}
		net := FatTree(cfg, Options{})
		if len(net.Hosts) != tc.hosts {
			t.Fatalf("k=%d: built %d hosts, want %d", tc.k, len(net.Hosts), tc.hosts)
		}
		if len(net.Switches) != tc.switches {
			t.Fatalf("k=%d: built %d switches, want %d", tc.k, len(net.Switches), tc.switches)
		}
		if len(net.Links) != tc.links {
			t.Fatalf("k=%d: built %d links, want %d", tc.k, len(net.Links), tc.links)
		}
		if !net.HasFabric() {
			t.Fatal("fat-tree does not report HasFabric")
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd K")
		}
	}()
	FatTree(FatTreeConfig{K: 3}, Options{})
}

// sendRaw injects a routed packet at host from's NIC toward host to and
// returns it for further use; callers drain the sim and inspect sinks.
func sendRaw(n *Net, from, to, sport int) {
	p := packet.BuildIn(n.Pool, n.Addr(from), n.Addr(to), packet.ECT0,
		packet.TCPFields{SrcPort: uint16(sport), DstPort: 80, Flags: packet.FlagACK, Window: 100}, 100)
	n.Hosts[from].Output(p)
}

// TestFatTreeAllPairsConnectivity: every host can reach every other host
// through the static routes + default ECMP groups.
func TestFatTreeAllPairsConnectivity(t *testing.T) {
	net := FatTree(FatTreeConfig{K: 4}, Options{})
	sinks := make([]*sink, len(net.Hosts))
	for i, h := range net.Hosts {
		sinks[i] = &sink{}
		h.Demux = sinks[i]
	}
	want := make([]int, len(net.Hosts))
	for i := range net.Hosts {
		for j := range net.Hosts {
			if i == j {
				continue
			}
			sendRaw(net, i, j, 5000+i)
			want[j]++
		}
	}
	net.Sim.RunAll()
	for j, k := range sinks {
		if len(k.got) != want[j] {
			t.Fatalf("host %d received %d packets, want %d", j, len(k.got), want[j])
		}
		for _, p := range k.got {
			net.Pool.Put(p)
		}
	}
	for _, sw := range net.Switches {
		if sw.Stats.NoRoute != 0 || sw.Stats.Blackholes != 0 {
			t.Fatalf("switch %s: NoRoute=%d Blackholes=%d on a healthy fabric",
				sw.Name, sw.Stats.NoRoute, sw.Stats.Blackholes)
		}
	}
}

// TestFatTreeEcmpSpreadsUplinks: many distinct cross-pod flows must use
// more than one ToR uplink and more than one core switch.
func TestFatTreeEcmpSpreadsUplinks(t *testing.T) {
	cfg := FatTreeConfig{K: 4}
	net := FatTree(cfg, Options{})
	for i, h := range net.Hosts {
		_ = i
		h.Demux = &sink{}
	}
	src := cfg.HostIndex(0, 0, 0)
	dst := cfg.HostIndex(2, 1, 1)
	for f := 0; f < 64; f++ {
		sendRaw(net, src, dst, 4000+f)
	}
	net.Sim.RunAll()
	uplinks := net.LinksMatching("p0-tor0>*")
	if len(uplinks) != 2 {
		t.Fatalf("ToR uplink pattern matched %d links, want 2", len(uplinks))
	}
	for _, l := range uplinks {
		if l.Stats.SentPackets == 0 {
			t.Fatalf("uplink %s unused across 64 flows — ECMP not spreading", l.Name)
		}
	}
	var coresUsed int
	for _, sw := range net.Switches {
		if len(sw.Name) > 4 && sw.Name[:4] == "core" && sw.Stats.Forwarded > 0 {
			coresUsed++
		}
	}
	if coresUsed < 2 {
		t.Fatalf("only %d cores carried traffic across 64 flows", coresUsed)
	}
}

// TestFatTreeDeterministicReplay: the same seed builds a fabric whose path
// choices are byte-for-byte repeatable (per-link packet counts identical);
// a different seed spreads differently.
func TestFatTreeDeterministicReplay(t *testing.T) {
	run := func(seed int64) map[string]int64 {
		cfg := FatTreeConfig{K: 4}
		net := FatTree(cfg, Options{Seed: seed})
		for _, h := range net.Hosts {
			h.Demux = &sink{}
		}
		for f := 0; f < 32; f++ {
			sendRaw(net, 0, 12, 4000+f)
		}
		net.Sim.RunAll()
		out := map[string]int64{}
		for _, l := range net.Links {
			out[l.Name] = l.Stats.SentPackets
		}
		return out
	}
	a, b := run(1), run(1)
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("replay diverged on %s: %d vs %d", name, v, b[name])
		}
	}
	c := run(2)
	same := true
	for name, v := range a {
		if c[name] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change left every per-link count identical — seed not feeding the hash")
	}
}

func TestLeafSpineShapeAndConnectivity(t *testing.T) {
	net := LeafSpine(3, 2, 2, Options{})
	if len(net.Hosts) != 6 || len(net.Switches) != 5 {
		t.Fatalf("leaf-spine built %d hosts / %d switches", len(net.Hosts), len(net.Switches))
	}
	sinks := make([]*sink, len(net.Hosts))
	for i, h := range net.Hosts {
		sinks[i] = &sink{}
		h.Demux = sinks[i]
	}
	for i := range net.Hosts {
		for j := range net.Hosts {
			if i != j {
				sendRaw(net, i, j, 5000+i)
			}
		}
	}
	net.Sim.RunAll()
	for j, k := range sinks {
		if len(k.got) != len(net.Hosts)-1 {
			t.Fatalf("host %d received %d, want %d", j, len(k.got), len(net.Hosts)-1)
		}
	}
}

func TestLinksMatchingAndSwitchLinks(t *testing.T) {
	net := FatTree(FatTreeConfig{K: 4}, Options{})
	if got := net.LinksMatching("p0-tor0>p0-agg0"); len(got) != 1 {
		t.Fatalf("exact match found %d links", len(got))
	}
	if got := net.LinksMatching("core0>*"); len(got) != 4 {
		t.Fatalf("core0 downlink prefix matched %d links, want 4", len(got))
	}
	if got := net.LinksMatching("nope*"); len(got) != 0 {
		t.Fatalf("bogus prefix matched %d links", len(got))
	}
	// p1-tor0: 2 hosts down + 2 agg uplinks as egress ports... egress = 2
	// host downlinks + 2 trunks to aggs = 4; ingress = 2 host uplinks + 2
	// trunks from aggs = 4.
	if got := net.SwitchLinks("p1-tor0"); len(got) != 8 {
		names := make([]string, len(got))
		for i, l := range got {
			names[i] = l.Name
		}
		t.Fatalf("SwitchLinks(p1-tor0) = %d links %v, want 8", len(got), names)
	}
	if got := net.SwitchLinks("missing"); got != nil {
		t.Fatalf("unknown switch returned %d links", len(got))
	}
}

// TestFatTreeToRFailureFailsOver is the tentpole's mechanism test: flows
// from pod 0 to pod 1 keep completing while a core-facing aggregation
// uplink flaps, because the agg re-hashes onto its surviving core uplink.
func TestFatTreeToRFailureFailsOver(t *testing.T) {
	domains, err := faults.ParseDomains("flap@40us,link=p0-agg0>core0,down=40us,up=40us,count=3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FatTreeConfig{K: 4}
	net := FatTree(cfg, Options{Fabric: domains})
	sinks := make([]*sink, len(net.Hosts))
	for i, h := range net.Hosts {
		sinks[i] = &sink{}
		h.Demux = sinks[i]
	}
	src := cfg.HostIndex(0, 0, 0)
	dst := cfg.HostIndex(1, 0, 0)
	sent := 0
	for wave := 0; wave < 40; wave++ {
		for f := 0; f < 8; f++ {
			sendRaw(net, src, dst, 4000+wave*8+f)
			sent++
		}
		net.Sim.RunFor(10 * sim.Microsecond)
	}
	net.Sim.RunAll()
	var failovers int64
	for _, sw := range net.Switches {
		failovers += sw.Stats.EcmpFailovers
	}
	if failovers == 0 {
		t.Fatal("no ECMP failovers despite a flapping uplink carrying hashed flows")
	}
	snap := net.FabricSnapshot()
	if snap.Counter("fabric_link_downs_total") != 3 || snap.Counter("fabric_link_ups_total") != 3 {
		t.Fatalf("flap counters: downs=%d ups=%d, want 3/3",
			snap.Counter("fabric_link_downs_total"), snap.Counter("fabric_link_ups_total"))
	}
	if snap.Counter("ecmp_failovers_total") != failovers {
		t.Fatalf("snapshot failovers %d != switch stats %d",
			snap.Counter("ecmp_failovers_total"), failovers)
	}
	// Every packet either arrived or died accountably (down-drain at the
	// flapped link); none vanished.
	delivered := len(sinks[dst].got)
	var downDrops int64
	for _, l := range net.Links {
		downDrops += l.Stats.DropsDown
	}
	if delivered+int(downDrops) != sent {
		t.Fatalf("accounting leak: sent=%d delivered=%d downDrops=%d", sent, delivered, downDrops)
	}
}

// TestFabricSnapshotQuietOnSinglePath: dumbbells without domains must not
// report fabric state, keeping their telemetry byte-identical.
func TestFabricSnapshotQuietOnSinglePath(t *testing.T) {
	net := Dumbbell(2, Options{})
	if net.HasFabric() {
		t.Fatal("dumbbell reports HasFabric")
	}
	// But arming a domain on a dumbbell link works and flips the signal.
	domains, err := faults.ParseDomains(fmt.Sprintf("link-down@1ms,link=%s,for=100us", "left>right"))
	if err != nil {
		t.Fatal(err)
	}
	net2 := Dumbbell(2, Options{Fabric: domains})
	if !net2.HasFabric() {
		t.Fatal("dumbbell with armed domains does not report HasFabric")
	}
}
