package cc

import "math"

// Cubic implements CUBIC (Ha, Rhee, Xu; Linux's default since 2.6.19). The
// window grows as a cubic function of time since the last reduction,
// W(t) = C·(t-K)³ + Wmax, with a TCP-friendly lower bound, β=0.7
// multiplicative decrease, and fast convergence.
type Cubic struct{ Base }

type cubicState struct {
	wMax       float64 // window before last reduction (MSS)
	wLastMax   float64 // for fast convergence
	epochStart int64   // ns; 0 = no epoch
	originK    float64 // K in seconds
	originW    float64 // cwnd at epoch start
	tcpCwnd    float64 // TCP-friendly estimate
	ackCnt     float64
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Name implements Algorithm.
func (*Cubic) Name() string { return "cubic" }

// Init implements Algorithm.
func (*Cubic) Init(c *Ctx) { c.priv = &cubicState{} }

func (cb *Cubic) state(c *Ctx) *cubicState {
	s, ok := c.priv.(*cubicState)
	if !ok {
		s = &cubicState{}
		c.priv = s
	}
	return s
}

// CongAvoid implements Algorithm.
func (cb *Cubic) CongAvoid(c *Ctx, acked int) {
	s := cb.state(c)
	if c.InSlowStart() {
		renoGrow(c, acked)
		return
	}
	ackedPkts := float64(acked) / float64(c.MSS)
	if s.epochStart == 0 {
		s.epochStart = c.Now
		s.originW = c.Cwnd
		if c.Cwnd < s.wMax {
			// K = cbrt(Wmax·(1-β)/C)
			s.originK = math.Cbrt(s.wMax * (1 - cubicBeta) / cubicC)
			s.originW = c.Cwnd
		} else {
			s.originK = 0
			s.wMax = c.Cwnd
		}
		s.ackCnt = 0
		s.tcpCwnd = c.Cwnd
	}
	// Target window a fixed look-ahead (one SRTT) in the future, like Linux.
	t := float64(c.Now-s.epochStart)/1e9 + float64(c.SRTT)/1e9
	d := t - s.originK
	target := s.wMax + cubicC*d*d*d
	if s.originK == 0 {
		target = s.originW + cubicC*t*t*t
	}
	if target > c.Cwnd {
		c.Cwnd += (target - c.Cwnd) / c.Cwnd * ackedPkts
	} else {
		c.Cwnd += 0.01 * ackedPkts / c.Cwnd // minimal growth, tcp_cubic's 1/(100·cwnd)
	}
	// TCP-friendly region: emulate Reno's throughput with β=0.7:
	// W_tcp grows by 3(1-β)/(1+β) per RTT ≈ 0.529.
	s.ackCnt += ackedPkts
	if s.tcpCwnd > 0 {
		delta := c.Cwnd / (3 * (1 - cubicBeta) / (1 + cubicBeta))
		for s.ackCnt > delta && delta > 0 {
			s.ackCnt -= delta
			s.tcpCwnd++
		}
	}
	if s.tcpCwnd > c.Cwnd {
		c.Cwnd = s.tcpCwnd
	}
}

// SsthreshOnLoss implements Algorithm: β=0.7 decrease with fast convergence.
func (cb *Cubic) SsthreshOnLoss(c *Ctx) float64 {
	s := cb.state(c)
	s.epochStart = 0
	if c.Cwnd < s.wLastMax {
		// Fast convergence: release bandwidth to newcomers faster.
		s.wLastMax = c.Cwnd
		s.wMax = c.Cwnd * (1 + cubicBeta) / 2
	} else {
		s.wLastMax = c.Cwnd
		s.wMax = c.Cwnd
	}
	return max(c.Cwnd*cubicBeta, 2)
}

// OnRTO implements Algorithm: reset the epoch.
func (cb *Cubic) OnRTO(c *Ctx) {
	s := cb.state(c)
	s.epochStart = 0
	s.wMax = c.Cwnd
}
