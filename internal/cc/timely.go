package cc

// Timely implements a window-based adaptation of TIMELY (Mittal et al.,
// SIGCOMM 2015), the RTT-gradient congestion control the paper cites
// alongside DCTCP as the state of the art for datacenters. TIMELY is
// natively rate-based; as in several research ports, rate is expressed here
// as a window (rate ≈ cwnd/RTT) so it plugs into a window-clocked stack:
//
//   - RTT below Tlow: additive increase (the queue is empty enough).
//   - RTT above Thigh: multiplicative decrease proportional to overshoot.
//   - Otherwise: steer by the normalized RTT gradient — increase (with HAI
//     after several consecutive negative gradients) when RTTs are falling,
//     back off proportionally when they are rising.
type Timely struct {
	Base
	// TlowNS/ThighNS frame the target queueing band; zero values default to
	// 50µs/500µs (the paper's small-scale settings).
	TlowNS, ThighNS int64
}

type timelyState struct {
	prevRTT    int64
	rttDiff    float64 // EWMA of RTT differences, ns
	negCount   int     // consecutive negative-gradient completions (HAI)
	haveSample bool
}

const (
	timelyAlpha     = 0.875 // EWMA weight on the previous rttDiff
	timelyBeta      = 0.8   // multiplicative decrease factor
	timelyAddend    = 1.0   // additive increase, MSS per RTT
	timelyHAIThresh = 5
)

// Name implements Algorithm.
func (*Timely) Name() string { return "timely" }

// Init implements Algorithm.
func (t *Timely) Init(c *Ctx) { c.priv = &timelyState{} }

func (t *Timely) state(c *Ctx) *timelyState {
	s, ok := c.priv.(*timelyState)
	if !ok {
		s = &timelyState{}
		c.priv = s
	}
	return s
}

func (t *Timely) tLow() int64 {
	if t.TlowNS > 0 {
		return t.TlowNS
	}
	return 50_000
}

func (t *Timely) tHigh() int64 {
	if t.ThighNS > 0 {
		return t.ThighNS
	}
	return 500_000
}

// PktsAcked implements Algorithm: the whole control law runs on RTT samples.
func (t *Timely) PktsAcked(c *Ctx, rtt int64) {
	if rtt <= 0 {
		return
	}
	s := t.state(c)
	if !s.haveSample {
		s.prevRTT = rtt
		s.haveSample = true
		return
	}
	diff := float64(rtt - s.prevRTT)
	s.prevRTT = rtt
	s.rttDiff = timelyAlpha*s.rttDiff + (1-timelyAlpha)*diff
	minRTT := float64(c.MinRTT)
	if minRTT <= 0 {
		minRTT = float64(rtt)
	}
	gradient := s.rttDiff / minRTT

	// Leave slow start as soon as queueing appears (TIMELY has no loss
	// signal to cap ssthresh, so the RTT band does it).
	if rtt > t.tLow() && c.InSlowStart() {
		c.Ssthresh = c.Cwnd
	}

	perAck := 1.0 / c.Cwnd // scale per-ACK so the law applies ≈once per RTT

	switch {
	case rtt < t.tLow():
		s.negCount = 0
		c.Cwnd += timelyAddend * perAck
	case rtt > t.tHigh():
		s.negCount = 0
		// Back off by how far the RTT overshoots Thigh.
		f := 1 - timelyBeta*(1-float64(t.tHigh())/float64(rtt))*perAck
		c.Cwnd *= f
	case gradient <= 0:
		s.negCount++
		n := 1.0
		if s.negCount >= timelyHAIThresh {
			n = 5 // hyperactive increase
		}
		c.Cwnd += n * timelyAddend * perAck
	default:
		s.negCount = 0
		f := 1 - timelyBeta*gradient*perAck
		if f < 0.5 {
			f = 0.5
		}
		c.Cwnd *= f
	}
	if c.Cwnd < 2 {
		c.Cwnd = 2
	}
}

// CongAvoid implements Algorithm: slow start only; steady-state growth is
// RTT-driven in PktsAcked.
func (t *Timely) CongAvoid(c *Ctx, acked int) {
	if c.InSlowStart() {
		renoGrow(c, acked)
	}
}

// SsthreshOnLoss implements Algorithm: TIMELY's networks are mostly
// lossless; on actual loss fall back to halving.
func (*Timely) SsthreshOnLoss(c *Ctx) float64 { return max(c.Cwnd/2, 2) }
