package cc

import "math"

// HighSpeed implements HighSpeed TCP (RFC 3649): above a window of 38
// packets, the additive-increase a(w) grows and the multiplicative-decrease
// b(w) shrinks with the window, following the RFC's response function
// p(w) = 0.078/w^1.2 anchored at (38, 0.5) and (83000, 0.1).
type HighSpeed struct{ Base }

const (
	hsLowWindow  = 38.0
	hsHighWindow = 83000.0
	hsHighDecr   = 0.1
	hsLowDecr    = 0.5
)

// Name implements Algorithm.
func (*HighSpeed) Name() string { return "highspeed" }

// hsB returns the decrease factor b(w) per RFC 3649 §5.
func hsB(w float64) float64 {
	if w <= hsLowWindow {
		return hsLowDecr
	}
	if w >= hsHighWindow {
		return hsHighDecr
	}
	return (hsHighDecr-hsLowDecr)*(math.Log(w)-math.Log(hsLowWindow))/
		(math.Log(hsHighWindow)-math.Log(hsLowWindow)) + hsLowDecr
}

// hsA returns the additive increase a(w) per RFC 3649 §5:
// a(w) = w² · p(w) · 2·b(w) / (2 − b(w)), with p(w) = 0.078 / w^1.2.
func hsA(w float64) float64 {
	if w <= hsLowWindow {
		return 1
	}
	b := hsB(w)
	p := 0.078 / math.Pow(w, 1.2)
	a := w * w * p * 2 * b / (2 - b)
	if a < 1 {
		return 1
	}
	return a
}

// CongAvoid implements Algorithm.
func (*HighSpeed) CongAvoid(c *Ctx, acked int) {
	if c.InSlowStart() {
		renoGrow(c, acked)
		return
	}
	ackedPkts := float64(acked) / float64(c.MSS)
	c.Cwnd += hsA(c.Cwnd) * ackedPkts / c.Cwnd
}

// SsthreshOnLoss implements Algorithm: cwnd·(1−b(w)).
func (*HighSpeed) SsthreshOnLoss(c *Ctx) float64 {
	return max(c.Cwnd*(1-hsB(c.Cwnd)), 2)
}
