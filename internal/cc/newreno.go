package cc

// NewReno is the classic AIMD algorithm (RFC 5681/6582): slow start,
// one-MSS-per-RTT congestion avoidance, halve on loss.
type NewReno struct{ Base }

// Name implements Algorithm.
func (*NewReno) Name() string { return "reno" }

// CongAvoid implements Algorithm.
func (*NewReno) CongAvoid(c *Ctx, acked int) { renoGrow(c, acked) }

// SsthreshOnLoss implements Algorithm: half the window, floor 2 MSS.
func (*NewReno) SsthreshOnLoss(c *Ctx) float64 { return max(c.Cwnd/2, 2) }
