package cc

// DCTCP (Alizadeh et al., SIGCOMM 2010) scales the window cut to the
// fraction of ECN-marked bytes: cwnd ← cwnd·(1 − α/2), with α an EWMA
// (gain 1/16) of the per-window marking fraction. Growth follows Reno.
// Requires ECN with per-packet echo (the stack provides DCTCP-style
// accurate ECE feedback when this algorithm is selected).
type DCTCP struct {
	Base
	// G is the EWMA gain; Linux uses 1/16. Zero means 1/16.
	G float64
}

type dctcpState struct {
	alpha       float64
	ackedBytes  int64
	markedBytes int64
	windowEnd   bool // set by stack boundary below via bytes heuristic
}

// DefaultDCTCPAlpha is the initial α (Linux starts at 1.0 so the first
// congestion event halves, then α adapts).
const DefaultDCTCPAlpha = 1.0

// Name implements Algorithm.
func (*DCTCP) Name() string { return "dctcp" }

// Init implements Algorithm.
func (d *DCTCP) Init(c *Ctx) {
	c.priv = &dctcpState{alpha: DefaultDCTCPAlpha}
}

func (d *DCTCP) state(c *Ctx) *dctcpState {
	s, ok := c.priv.(*dctcpState)
	if !ok {
		s = &dctcpState{alpha: DefaultDCTCPAlpha}
		c.priv = s
	}
	return s
}

func (d *DCTCP) gain() float64 {
	if d.G > 0 {
		return d.G
	}
	return 1.0 / 16
}

// Alpha exposes the current marking-fraction estimate (for tests and the
// harness).
func (d *DCTCP) Alpha(c *Ctx) float64 { return d.state(c).alpha }

// CongAvoid implements Algorithm: Reno growth.
func (*DCTCP) CongAvoid(c *Ctx, acked int) { renoGrow(c, acked) }

// AckedWithECN implements Algorithm: accumulate the marking fraction inputs.
func (d *DCTCP) AckedWithECN(c *Ctx, acked int, ece bool) {
	s := d.state(c)
	s.ackedBytes += int64(acked)
	if ece {
		s.markedBytes += int64(acked)
	}
}

// WindowBoundary is called by the stack once per RTT (when snd_una passes
// the boundary snapshot): fold the window's marking fraction into α.
func (d *DCTCP) WindowBoundary(c *Ctx) {
	s := d.state(c)
	var frac float64
	if s.ackedBytes > 0 {
		frac = float64(s.markedBytes) / float64(s.ackedBytes)
	}
	g := d.gain()
	s.alpha = (1-g)*s.alpha + g*frac
	s.ackedBytes, s.markedBytes = 0, 0
}

// SsthreshOnLoss implements Algorithm: cwnd·(1 − α/2), floor 2 MSS (the
// Linux lower bound the paper calls out in the incast analysis).
func (d *DCTCP) SsthreshOnLoss(c *Ctx) float64 {
	s := d.state(c)
	return max(c.Cwnd*(1-s.alpha/2), 2)
}

// OnRTO implements Algorithm: Linux dctcp resets α to the max on timeout via
// loss handling; keep α as-is (EWMA) matching tcp_dctcp.c which leaves α.
func (d *DCTCP) OnRTO(c *Ctx) {}
