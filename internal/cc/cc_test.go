package cc

import (
	"math"
	"testing"
	"testing/quick"
)

func newCtx(mss int) *Ctx {
	return &Ctx{MSS: mss, Cwnd: 10, Ssthresh: math.Inf(1)}
}

func TestNewRegistry(t *testing.T) {
	for _, name := range Names() {
		a := New(name)
		if a == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		c := newCtx(1500)
		a.Init(c)
		a.CongAvoid(c, 1500)
	}
	// Aliases.
	if New("newreno").Name() != "reno" {
		t.Fatal("newreno alias broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown name should panic")
		}
	}()
	New("bbr")
}

func TestRenoSlowStartDoublesPerRTT(t *testing.T) {
	a := New("reno")
	c := newCtx(1500)
	a.Init(c)
	// One window's worth of ACKs in slow start ≈ doubles cwnd.
	start := c.Cwnd
	for i := 0; i < int(start); i++ {
		a.CongAvoid(c, 1500)
	}
	if math.Abs(c.Cwnd-2*start) > 0.01 {
		t.Fatalf("slow start: cwnd = %v, want %v", c.Cwnd, 2*start)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	a := New("reno")
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 10, 5 // in CA
	// One window of ACKs grows cwnd by ~1 MSS.
	before := c.Cwnd
	for i := 0; i < 10; i++ {
		a.CongAvoid(c, 1500)
	}
	if c.Cwnd-before < 0.9 || c.Cwnd-before > 1.1 {
		t.Fatalf("CA growth per RTT = %v, want ~1", c.Cwnd-before)
	}
}

func TestRenoSlowStartExitsAtSsthresh(t *testing.T) {
	a := New("reno")
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 9.5, 10
	a.CongAvoid(c, 3000) // 2 MSS acked crosses ssthresh
	// 0.5 consumed by slow start, remaining 1.5 in CA: 10 + 1.5/10.
	if math.Abs(c.Cwnd-10.15) > 0.01 {
		t.Fatalf("cwnd = %v, want 10.15", c.Cwnd)
	}
}

func TestRenoLossHalves(t *testing.T) {
	a := New("reno")
	c := newCtx(1500)
	c.Cwnd = 20
	if got := a.SsthreshOnLoss(c); got != 10 {
		t.Fatalf("ssthresh = %v", got)
	}
	c.Cwnd = 2
	if got := a.SsthreshOnLoss(c); got != 2 {
		t.Fatalf("floor: ssthresh = %v", got)
	}
}

func TestCtxClamp(t *testing.T) {
	c := newCtx(1500)
	c.Cwnd, c.CwndClamp = 100, 50
	c.ClampCwnd(2)
	if c.Cwnd != 50 {
		t.Fatalf("clamp ceiling: %v", c.Cwnd)
	}
	c.Cwnd = 0.5
	c.ClampCwnd(2)
	if c.Cwnd != 2 {
		t.Fatalf("clamp floor: %v", c.Cwnd)
	}
}

func TestCubicConvexGrowthAfterPlateau(t *testing.T) {
	a := New("cubic").(*Cubic)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 100, 1 // CA
	c.SRTT = int64(100e3)       // 100us

	// Simulate a loss then growth over time: window should first grow
	// slowly (concave toward wMax) then accelerate (convex).
	c.Ssthresh = a.SsthreshOnLoss(c)
	c.Cwnd = c.Ssthresh // 70
	// K = cbrt(Wmax·0.3/0.4) ≈ 4.2s for Wmax=100; run well past it.
	var deltas []float64
	prev := c.Cwnd
	for step := 0; step < 60; step++ {
		c.Now += int64(150e6) // 150ms steps → 9s total
		for i := 0; i < 10; i++ {
			a.CongAvoid(c, 1500)
		}
		deltas = append(deltas, c.Cwnd-prev)
		prev = c.Cwnd
	}
	// Growth near the end (past K, convex region) must exceed growth at the
	// plateau (around K).
	kIdx := 28 // ≈4.2s
	if deltas[len(deltas)-1] <= deltas[kIdx] {
		t.Fatalf("cubic growth not accelerating: plateau=%v end=%v", deltas[kIdx], deltas[len(deltas)-1])
	}
	if c.Cwnd <= 100 {
		t.Fatalf("cubic did not recover past wMax: %v", c.Cwnd)
	}
}

func TestCubicBetaDecrease(t *testing.T) {
	a := New("cubic")
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd = 100
	got := a.SsthreshOnLoss(c)
	if math.Abs(got-70) > 0.01 {
		t.Fatalf("cubic ssthresh = %v, want 70", got)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	a := New("cubic").(*Cubic)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd = 100
	a.SsthreshOnLoss(c) // wLastMax = 100
	c.Cwnd = 80         // second loss below previous max
	a.SsthreshOnLoss(c)
	s := c.priv.(*cubicState)
	if s.wMax >= 80 {
		t.Fatalf("fast convergence should set wMax below cwnd: %v", s.wMax)
	}
}

func TestDCTCPAlphaConvergesToMarkingFraction(t *testing.T) {
	a := New("dctcp").(*DCTCP)
	c := newCtx(1500)
	a.Init(c)
	// 30% of bytes marked, many windows: α → 0.3.
	for w := 0; w < 200; w++ {
		a.AckedWithECN(c, 7000, false)
		a.AckedWithECN(c, 3000, true)
		a.WindowBoundary(c)
	}
	if math.Abs(a.Alpha(c)-0.3) > 0.01 {
		t.Fatalf("alpha = %v, want 0.3", a.Alpha(c))
	}
}

func TestDCTCPSsthreshScalesWithAlpha(t *testing.T) {
	a := New("dctcp").(*DCTCP)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd = 100
	// Fresh state: α=1 → halve.
	if got := a.SsthreshOnLoss(c); got != 50 {
		t.Fatalf("initial ssthresh = %v, want 50", got)
	}
	// Drive α to ~0.2: cut should be cwnd·0.9.
	for w := 0; w < 300; w++ {
		a.AckedWithECN(c, 8000, false)
		a.AckedWithECN(c, 2000, true)
		a.WindowBoundary(c)
	}
	got := a.SsthreshOnLoss(c)
	if math.Abs(got-90) > 1 {
		t.Fatalf("ssthresh = %v, want ~90 at α≈0.2", got)
	}
}

func TestDCTCPZeroMarksDecaysAlpha(t *testing.T) {
	a := New("dctcp").(*DCTCP)
	c := newCtx(1500)
	a.Init(c)
	for w := 0; w < 100; w++ {
		a.AckedWithECN(c, 10000, false)
		a.WindowBoundary(c)
	}
	if a.Alpha(c) > 0.01 {
		t.Fatalf("alpha should decay to ~0: %v", a.Alpha(c))
	}
}

func TestVegasHoldsQueueBetweenAlphaBeta(t *testing.T) {
	a := New("vegas").(*Vegas)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 10, 1 // CA
	base := int64(100e3)

	// RTT == baseRTT: no queue → grow.
	a.PktsAcked(c, base)
	before := c.Cwnd
	a.WindowBoundary(c)
	if c.Cwnd != before+1 {
		t.Fatalf("no-queue: cwnd = %v, want +1", c.Cwnd)
	}

	// Heavy queueing (diff >> β): all of this window's samples are high
	// (baseRTT persists from the earlier window).
	a.PktsAcked(c, 2*base) // rtt doubled → diff = cwnd/2 > 4
	before = c.Cwnd
	a.WindowBoundary(c)
	if c.Cwnd >= before {
		t.Fatalf("queueing: cwnd = %v, want decrease from %v", c.Cwnd, before)
	}

	// Moderate diff in [α, β]: hold. cwnd≈10, need diff in (2,4): rtt such
	// that cwnd·(rtt-base)/rtt ≈ 3 → rtt = base/0.7.
	a.PktsAcked(c, int64(float64(base)/0.7))
	before = c.Cwnd
	a.WindowBoundary(c)
	if c.Cwnd != before {
		t.Fatalf("hold region: cwnd = %v, want %v", c.Cwnd, before)
	}
}

func TestVegasSlowStartExitOnDelay(t *testing.T) {
	a := New("vegas").(*Vegas)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 10, 100 // slow start
	// Window 1 establishes baseRTT; window 2 sees only inflated RTTs.
	a.PktsAcked(c, 100e3)
	a.WindowBoundary(c)
	a.PktsAcked(c, 150e3) // diff = 11*(50/150) = 3.67 > γ=1
	a.WindowBoundary(c)
	if c.Ssthresh > 10 {
		t.Fatalf("vegas should exit slow start: ssthresh = %v", c.Ssthresh)
	}
}

func TestIllinoisAlphaRespondsToDelay(t *testing.T) {
	a := New("illinois").(*Illinois)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 10, 1
	base := int64(100e3)

	// Establish base and max RTT (max 10x base).
	a.PktsAcked(c, base)
	a.PktsAcked(c, 10*base)
	a.WindowBoundary(c)

	// Low delay for θ=5 consecutive windows → α = αmax.
	for i := 0; i < 6; i++ {
		a.PktsAcked(c, base)
		a.WindowBoundary(c)
	}
	s := c.priv.(*illinoisState)
	if s.alpha != illAlphaMax {
		t.Fatalf("low-delay α = %v, want %v", s.alpha, illAlphaMax)
	}
	if s.beta != illBetaMin {
		t.Fatalf("low-delay β = %v, want %v", s.beta, illBetaMin)
	}

	// High delay → α small, β large.
	a.PktsAcked(c, 9*base)
	a.WindowBoundary(c)
	if s.alpha > 1.0 {
		t.Fatalf("high-delay α = %v, want < 1", s.alpha)
	}
	if s.beta != illBetaMax {
		t.Fatalf("high-delay β = %v, want %v", s.beta, illBetaMax)
	}
}

func TestIllinoisGrowthUsesAlpha(t *testing.T) {
	a := New("illinois").(*Illinois)
	c := newCtx(1500)
	a.Init(c)
	c.Cwnd, c.Ssthresh = 10, 1
	s := c.priv.(*illinoisState)
	s.alpha = 10
	before := c.Cwnd
	for i := 0; i < 10; i++ { // one window of ACKs
		a.CongAvoid(c, 1500)
	}
	// Growth ≈ α per RTT.
	if c.Cwnd-before < 5 {
		t.Fatalf("illinois growth = %v, want ~10", c.Cwnd-before)
	}
}

func TestHighSpeedResponseFunction(t *testing.T) {
	// At and below w=38 HighSpeed must behave exactly like Reno.
	if hsA(38) != 1 || hsB(38) != 0.5 {
		t.Fatalf("a(38)=%v b(38)=%v", hsA(38), hsB(38))
	}
	if hsA(10) != 1 || hsB(10) != 0.5 {
		t.Fatal("below lowWindow must be Reno")
	}
	// a grows and b shrinks with w.
	if !(hsA(1000) > hsA(100) && hsA(100) > 1) {
		t.Fatalf("a not increasing: a(100)=%v a(1000)=%v", hsA(100), hsA(1000))
	}
	if !(hsB(1000) < hsB(100) && hsB(100) < 0.5) {
		t.Fatalf("b not decreasing: b(100)=%v b(1000)=%v", hsB(100), hsB(1000))
	}
	if math.Abs(hsB(83000)-0.1) > 1e-9 {
		t.Fatalf("b(83000) = %v, want 0.1", hsB(83000))
	}
	// RFC 3649 anchor: a(83000) ≈ 72-73.
	if hsA(83000) < 60 || hsA(83000) > 80 {
		t.Fatalf("a(83000) = %v, want ~72", hsA(83000))
	}
}

func TestHighSpeedMoreAggressiveThanReno(t *testing.T) {
	hs, rn := New("highspeed"), New("reno")
	ch, cr := newCtx(1500), newCtx(1500)
	hs.Init(ch)
	rn.Init(cr)
	ch.Cwnd, ch.Ssthresh = 200, 1
	cr.Cwnd, cr.Ssthresh = 200, 1
	for i := 0; i < 200; i++ {
		hs.CongAvoid(ch, 1500)
		rn.CongAvoid(cr, 1500)
	}
	if ch.Cwnd <= cr.Cwnd {
		t.Fatalf("highspeed %v not more aggressive than reno %v", ch.Cwnd, cr.Cwnd)
	}
	// And loses less on decrease.
	if hs.SsthreshOnLoss(ch) <= rn.SsthreshOnLoss(cr)*ch.Cwnd/cr.Cwnd {
		t.Fatal("highspeed decrease not milder than reno")
	}
}

// Property: no algorithm ever produces a non-positive or NaN window under
// random ACK/loss sequences.
func TestAlgorithmsStayFiniteProperty(t *testing.T) {
	for _, name := range Names() {
		name := name
		prop := func(ops []byte) bool {
			a := New(name)
			c := newCtx(1500)
			c.Ssthresh = 64
			a.Init(c)
			for i, op := range ops {
				c.Now += int64(i) * 1e6
				switch op % 5 {
				case 0, 1, 2:
					a.CongAvoid(c, int(op)*100+1)
				case 3:
					c.Ssthresh = a.SsthreshOnLoss(c)
					c.Cwnd = c.Ssthresh
				case 4:
					a.PktsAcked(c, int64(op)*1000+1)
					a.AckedWithECN(c, 1500, op%2 == 0)
				}
				c.ClampCwnd(1)
				if math.IsNaN(c.Cwnd) || math.IsInf(c.Cwnd, 0) || c.Cwnd < 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: SsthreshOnLoss never exceeds the current window and never goes
// below the 2-MSS floor.
func TestSsthreshBoundsProperty(t *testing.T) {
	for _, name := range Names() {
		a := New(name)
		prop := func(w uint16) bool {
			c := newCtx(1500)
			a.Init(c)
			c.Cwnd = float64(w%5000) + 2
			got := a.SsthreshOnLoss(c)
			return got >= 2 && got <= c.Cwnd+1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestUndoCwnd(t *testing.T) {
	a := New("reno")
	c := newCtx(1500)
	c.Cwnd, c.Ssthresh = 5, 10
	if got := a.UndoCwnd(c); got != 20 {
		t.Fatalf("undo = %v, want 20", got)
	}
}
