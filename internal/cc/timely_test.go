package cc

import (
	"math"
	"testing"
)

func timelyCtx() (*Timely, *Ctx) {
	a := New("timely").(*Timely)
	c := &Ctx{MSS: 1500, Cwnd: 10, Ssthresh: 1} // out of slow start
	a.Init(c)
	c.MinRTT = 100_000
	return a, c
}

func TestTimelyAdditiveIncreaseBelowTlow(t *testing.T) {
	a, c := timelyCtx()
	before := c.Cwnd
	for i := 0; i < 10; i++ { // one window of ACKs at a low RTT
		a.PktsAcked(c, 40_000) // < Tlow=50µs
	}
	// ≈ +1 MSS per RTT.
	if c.Cwnd-before < 0.7 || c.Cwnd-before > 1.3 {
		t.Fatalf("low-RTT growth per RTT = %v, want ≈1", c.Cwnd-before)
	}
}

func TestTimelyMultiplicativeDecreaseAboveThigh(t *testing.T) {
	a, c := timelyCtx()
	before := c.Cwnd
	for i := 0; i < 10; i++ {
		a.PktsAcked(c, 1_000_000) // ≫ Thigh=500µs
	}
	if c.Cwnd >= before {
		t.Fatalf("high-RTT: cwnd %v did not decrease from %v", c.Cwnd, before)
	}
}

func TestTimelyGradientSteering(t *testing.T) {
	a, c := timelyCtx()
	// Rising RTTs inside the band → back off.
	rtt := int64(100_000)
	a.PktsAcked(c, rtt)
	before := c.Cwnd
	for i := 0; i < 20; i++ {
		rtt += 15_000
		a.PktsAcked(c, rtt)
	}
	if c.Cwnd >= before {
		t.Fatalf("rising gradient: cwnd %v did not decrease from %v", c.Cwnd, before)
	}

	// Falling RTTs → grow again (with HAI after a streak).
	before = c.Cwnd
	for i := 0; i < 20; i++ {
		rtt -= 9_000
		if rtt < 110_000 {
			rtt = 110_000
		}
		a.PktsAcked(c, rtt)
	}
	if c.Cwnd <= before {
		t.Fatalf("falling gradient: cwnd %v did not grow from %v", c.Cwnd, before)
	}
}

func TestTimelyFloorsAtTwo(t *testing.T) {
	a, c := timelyCtx()
	c.Cwnd = 2.1
	for i := 0; i < 200; i++ {
		a.PktsAcked(c, 5_000_000)
	}
	if c.Cwnd < 2 || math.IsNaN(c.Cwnd) {
		t.Fatalf("cwnd %v below floor", c.Cwnd)
	}
}

func TestTimelyConvergesToStableRTT(t *testing.T) {
	// Closed loop toy model: RTT = base + queue, queue ∝ (cwnd − BDP).
	a, c := timelyCtx()
	base := 50_000.0 // = Tlow: below band when queue empty
	bdp := 20.0
	c.MinRTT = int64(base)
	for i := 0; i < 5000; i++ {
		q := (c.Cwnd - bdp) / bdp
		if q < 0 {
			q = 0
		}
		rtt := int64(base * (1 + q*4))
		a.PktsAcked(c, rtt)
	}
	// The loop must stabilize somewhere sane: above BDP/2, below 10×BDP,
	// with RTT inside or near the band.
	if c.Cwnd < bdp/2 || c.Cwnd > bdp*10 {
		t.Fatalf("TIMELY equilibrium cwnd %v implausible for BDP %v", c.Cwnd, bdp)
	}
}
