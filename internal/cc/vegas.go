package cc

// Vegas (Brakmo & Peterson, 1994) is delay-based: it compares the expected
// rate (cwnd/baseRTT) with the actual rate (cwnd/RTT) and holds the
// difference between α=2 and β=4 packets of queueing.
type Vegas struct{ Base }

type vegasState struct {
	baseRTT int64 // min RTT seen, ns
	minRTT  int64 // min RTT this cwnd-epoch
	cntRTT  int
}

const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 1
)

// Name implements Algorithm.
func (*Vegas) Name() string { return "vegas" }

// Init implements Algorithm.
func (*Vegas) Init(c *Ctx) {
	c.priv = &vegasState{baseRTT: 1 << 62, minRTT: 1 << 62}
}

func (v *Vegas) state(c *Ctx) *vegasState {
	s, ok := c.priv.(*vegasState)
	if !ok {
		s = &vegasState{baseRTT: 1 << 62, minRTT: 1 << 62}
		c.priv = s
	}
	return s
}

// PktsAcked implements Algorithm: collect RTT samples.
func (v *Vegas) PktsAcked(c *Ctx, rtt int64) {
	if rtt <= 0 {
		return
	}
	s := v.state(c)
	if rtt < s.baseRTT {
		s.baseRTT = rtt
	}
	if rtt < s.minRTT {
		s.minRTT = rtt
	}
	s.cntRTT++
}

// CongAvoid implements Algorithm. Vegas adjusts once per RTT; the stack
// calls WindowBoundary at that cadence, so per-ACK we only slow-start when
// below the γ threshold.
func (v *Vegas) CongAvoid(c *Ctx, acked int) {
	s := v.state(c)
	if s.cntRTT == 0 {
		// No samples yet: behave like Reno.
		renoGrow(c, acked)
	}
}

// WindowBoundary runs the once-per-RTT Vegas update.
func (v *Vegas) WindowBoundary(c *Ctx) {
	s := v.state(c)
	if s.cntRTT < 1 || s.baseRTT >= 1<<62 {
		return
	}
	rtt := s.minRTT
	// diff = cwnd·(rtt - baseRTT)/rtt, in packets of queue occupancy.
	diff := c.Cwnd * float64(rtt-s.baseRTT) / float64(rtt)
	if c.InSlowStart() {
		if diff > vegasGamma {
			// Too much queueing: leave slow start.
			c.Ssthresh = min(c.Ssthresh, c.Cwnd-1)
			c.Cwnd = c.Cwnd - c.Cwnd/8
		} else {
			c.Cwnd++
		}
	} else {
		switch {
		case diff < vegasAlpha:
			c.Cwnd++
		case diff > vegasBeta:
			c.Cwnd--
			if c.Ssthresh > c.Cwnd {
				c.Ssthresh = c.Cwnd
			}
		}
	}
	if c.Cwnd < 2 {
		c.Cwnd = 2
	}
	s.minRTT = 1 << 62
	s.cntRTT = 0
}

// SsthreshOnLoss implements Algorithm: Reno-style halving.
func (*Vegas) SsthreshOnLoss(c *Ctx) float64 { return max(c.Cwnd/2, 2) }
