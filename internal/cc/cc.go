// Package cc implements the host (guest-VM) TCP congestion-control variants
// the paper evaluates — NewReno, CUBIC, DCTCP, Vegas, Illinois, HighSpeed —
// plus a window-based TIMELY (the paper's other cited datacenter CC). Each
// is modelled on its Linux implementation's control law where one exists. The TCP
// endpoint (internal/tcpstack) owns the connection state and calls into the
// Algorithm at the same points Linux calls its congestion-ops vtable.
package cc

import "fmt"

// Ctx is the view of connection state an Algorithm operates on. Cwnd and
// Ssthresh are in MSS units (Linux counts packets); times are nanoseconds of
// simulated time.
type Ctx struct {
	MSS      int
	Cwnd     float64
	Ssthresh float64

	// SRTT and MinRTT are the smoothed and minimum observed RTT in ns
	// (0 until the first sample).
	SRTT   int64
	MinRTT int64

	// Now is the current simulated time, refreshed by the stack before any
	// algorithm call.
	Now int64

	// CwndClamp caps Cwnd in MSS units when > 0 (snd_cwnd_clamp).
	CwndClamp float64

	// priv holds algorithm-private state.
	priv any
}

// InSlowStart reports whether the connection is in slow start.
func (c *Ctx) InSlowStart() bool { return c.Cwnd < c.Ssthresh }

// ClampCwnd applies the floor (minCwnd) and the optional CwndClamp ceiling.
func (c *Ctx) ClampCwnd(minCwnd float64) {
	if c.CwndClamp > 0 && c.Cwnd > c.CwndClamp {
		c.Cwnd = c.CwndClamp
	}
	if c.Cwnd < minCwnd {
		c.Cwnd = minCwnd
	}
}

// Algorithm is the congestion-control vtable, mirroring Linux's
// tcp_congestion_ops: CongAvoid grows the window on ACKs, SsthreshOnLoss
// returns the window target after a loss/ECE event, PktsAcked receives RTT
// samples, AckedWithECN feeds DCTCP-style byte accounting, and OnRTO resets
// algorithm state after a timeout.
type Algorithm interface {
	Name() string
	Init(c *Ctx)
	// CongAvoid is called for each ACK that advances snd_una while the
	// connection is in open state; acked is the number of newly acked bytes.
	CongAvoid(c *Ctx, acked int)
	// SsthreshOnLoss returns the new ssthresh (in MSS) reacting to loss or
	// an ECN echo. The stack sets Cwnd separately per its recovery logic.
	SsthreshOnLoss(c *Ctx) float64
	// PktsAcked delivers an RTT sample (ns) for delay-based algorithms.
	PktsAcked(c *Ctx, rtt int64)
	// AckedWithECN reports acked bytes and whether the ACK carried an ECN
	// echo; DCTCP uses it to estimate the marking fraction.
	AckedWithECN(c *Ctx, acked int, ece bool)
	// OnRTO notifies of a retransmission timeout.
	OnRTO(c *Ctx)
	// UndoCwnd returns the window to restore on spurious loss detection.
	UndoCwnd(c *Ctx) float64
}

// Base provides no-op implementations of the optional hooks.
type Base struct{}

// Init implements Algorithm.
func (Base) Init(*Ctx) {}

// PktsAcked implements Algorithm.
func (Base) PktsAcked(*Ctx, int64) {}

// AckedWithECN implements Algorithm.
func (Base) AckedWithECN(*Ctx, int, bool) {}

// OnRTO implements Algorithm.
func (Base) OnRTO(*Ctx) {}

// UndoCwnd implements Algorithm: restore to 2x current ssthresh like Linux's
// default tcp_reno_undo_cwnd.
func (Base) UndoCwnd(c *Ctx) float64 { return max(c.Cwnd, c.Ssthresh*2) }

// New constructs an algorithm by name ("cubic", "reno", "dctcp", "vegas",
// "illinois", "highspeed", "timely"). It panics on unknown names —
// configuration errors in experiments should fail loudly.
func New(name string) Algorithm {
	switch name {
	case "reno", "newreno":
		return &NewReno{}
	case "cubic":
		return &Cubic{}
	case "dctcp":
		return &DCTCP{}
	case "vegas":
		return &Vegas{}
	case "illinois":
		return &Illinois{}
	case "highspeed":
		return &HighSpeed{}
	case "timely":
		return &Timely{}
	default:
		panic(fmt.Sprintf("cc: unknown congestion control %q", name))
	}
}

// Names lists the available algorithms in the order the paper's Figure 1
// uses them, plus the extras (DCTCP, TIMELY).
func Names() []string {
	return []string{"illinois", "cubic", "reno", "vegas", "highspeed", "dctcp", "timely"}
}

// renoGrow implements the classic slow-start + congestion-avoidance growth
// shared by NewReno-style algorithms: exponential below ssthresh, then one
// MSS per RTT (approximated per-byte as Linux does).
func renoGrow(c *Ctx, acked int) {
	ackedPkts := float64(acked) / float64(c.MSS)
	if c.InSlowStart() {
		// Slow start: cwnd grows by one MSS per acked MSS, not beyond
		// ssthresh mid-ACK (Linux tcp_slow_start).
		room := c.Ssthresh - c.Cwnd
		grow := ackedPkts
		if grow > room {
			grow = room
			// Remainder is consumed by congestion avoidance below.
			c.Cwnd += grow
			caGrow(c, ackedPkts-grow)
			return
		}
		c.Cwnd += grow
		return
	}
	caGrow(c, ackedPkts)
}

func caGrow(c *Ctx, ackedPkts float64) {
	if c.Cwnd <= 0 {
		c.Cwnd = 1
	}
	c.Cwnd += ackedPkts / c.Cwnd
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
