package cc

// Illinois (Liu, Başar, Srikant, 2008) is a loss-delay hybrid: additive
// increase α(da) shrinks and multiplicative decrease β(da) grows as the
// average queueing delay da rises, concave in between. Constants follow
// Linux's tcp_illinois.c.
type Illinois struct{ Base }

type illinoisState struct {
	sumRTT   int64
	cntRTT   int
	baseRTT  int64
	maxRTT   int64
	alpha    float64
	beta     float64
	rttAbove bool
	rttLow   int
}

const (
	illAlphaMin = 0.1  // ALPHA_MIN = 1/10 pkt
	illAlphaMax = 10.0 // ALPHA_MAX
	illBetaMin  = 0.125
	illBetaMax  = 0.5
	illTheta    = 5
)

// Name implements Algorithm.
func (*Illinois) Name() string { return "illinois" }

// Init implements Algorithm.
func (*Illinois) Init(c *Ctx) {
	c.priv = &illinoisState{baseRTT: 1 << 62, alpha: illAlphaMax, beta: illBetaMin}
}

func (il *Illinois) state(c *Ctx) *illinoisState {
	s, ok := c.priv.(*illinoisState)
	if !ok {
		s = &illinoisState{baseRTT: 1 << 62, alpha: illAlphaMax, beta: illBetaMin}
		c.priv = s
	}
	return s
}

// PktsAcked implements Algorithm.
func (il *Illinois) PktsAcked(c *Ctx, rtt int64) {
	if rtt <= 0 {
		return
	}
	s := il.state(c)
	if rtt < s.baseRTT {
		s.baseRTT = rtt
	}
	if rtt > s.maxRTT {
		s.maxRTT = rtt
	}
	s.sumRTT += rtt
	s.cntRTT++
}

// WindowBoundary recomputes α and β from the average queueing delay, once
// per RTT.
func (il *Illinois) WindowBoundary(c *Ctx) {
	s := il.state(c)
	if s.cntRTT == 0 || s.baseRTT >= 1<<62 {
		return
	}
	avgRTT := s.sumRTT / int64(s.cntRTT)
	da := avgRTT - s.baseRTT   // current queueing delay
	dm := s.maxRTT - s.baseRTT // max queueing delay
	s.sumRTT, s.cntRTT = 0, 0
	if dm <= 0 {
		s.alpha = illAlphaMax
		s.beta = illBetaMin
		return
	}
	// α: max when da below 5% of dm, then decaying hyperbolically.
	d1 := dm / 100 * illTheta
	if da <= d1 {
		s.rttLow++
		if s.rttLow >= illTheta {
			s.alpha = illAlphaMax
		}
	} else {
		s.rttLow = 0
		// α(da) = κ1/(κ2 + da) with κ chosen so α(d1)=αmax, α(dm)=αmin.
		k1 := float64(dm-d1) * illAlphaMin * illAlphaMax / (illAlphaMax - illAlphaMin)
		k2 := k1/illAlphaMax - float64(d1)
		s.alpha = k1 / (k2 + float64(da))
		if s.alpha > illAlphaMax {
			s.alpha = illAlphaMax
		}
		if s.alpha < illAlphaMin {
			s.alpha = illAlphaMin
		}
	}
	// β: linear between d2=0.1dm and d3=0.8dm.
	d2 := float64(dm) * 0.1
	d3 := float64(dm) * 0.8
	switch {
	case float64(da) <= d2:
		s.beta = illBetaMin
	case float64(da) >= d3:
		s.beta = illBetaMax
	default:
		s.beta = illBetaMin + (illBetaMax-illBetaMin)*(float64(da)-d2)/(d3-d2)
	}
}

// CongAvoid implements Algorithm: slow start, then cwnd += α/cwnd per ACK.
func (il *Illinois) CongAvoid(c *Ctx, acked int) {
	s := il.state(c)
	if c.InSlowStart() {
		renoGrow(c, acked)
		return
	}
	ackedPkts := float64(acked) / float64(c.MSS)
	c.Cwnd += s.alpha * ackedPkts / c.Cwnd
}

// SsthreshOnLoss implements Algorithm: cwnd·(1−β).
func (il *Illinois) SsthreshOnLoss(c *Ctx) float64 {
	s := il.state(c)
	return max(c.Cwnd*(1-s.beta), 2)
}

// OnRTO implements Algorithm: reset delay tracking.
func (il *Illinois) OnRTO(c *Ctx) {
	s := il.state(c)
	s.alpha = illAlphaMax
	s.beta = illBetaMin
	s.rttLow = 0
}
